// Compares a bench JSON against a committed baseline and exits nonzero on
// regression. CI runs this as the bench gate (.github/workflows/ci.yml).
//
//   bench_diff --baseline=BENCH_fig9_fps.json --current=fresh.json \
//              [--default-tol=0.15] [--tol=key:rel,key:rel,...] \
//              [--tol-abs=key:abs,...]
//
// Exit codes: 0 = within tolerance, 1 = regression, 2 = usage/IO error.
// Direction rules live in common/benchcmp.h: *_fps and speedup* keys are
// higher-better, *diff*/_ms/_us/_seconds/_bytes keys are lower-better,
// everything else is informational.

#include <cstdlib>
#include <iostream>
#include <string>

#include "common/benchcmp.h"
#include "common/flags.h"
#include "common/table_printer.h"

namespace {

using ::eventhit::BenchDirection;
using ::eventhit::Flags;
using ::eventhit::Fmt;
using ::eventhit::TablePrinter;

int Usage() {
  std::cerr <<
      "usage: bench_diff --baseline=PATH --current=PATH\n"
      "  --default-tol=R   relative tolerance for gated keys (default "
      "0.15)\n"
      "  --tol=key:R,...   per-key relative tolerance overrides\n"
      "  --tol-abs=key:A,...  per-key absolute tolerances (win over\n"
      "                    relative; required for zero baselines)\n"
      "exit: 0 pass, 1 regression, 2 usage/IO error\n";
  return 2;
}

// Parses "key:value,key:value" into the map; returns false on bad syntax.
bool ParseKeyValueList(const std::string& text,
                       std::map<std::string, double>* out) {
  size_t pos = 0;
  while (pos < text.size()) {
    size_t comma = text.find(',', pos);
    if (comma == std::string::npos) comma = text.size();
    const std::string item = text.substr(pos, comma - pos);
    const size_t colon = item.rfind(':');
    if (colon == std::string::npos || colon == 0) return false;
    char* end = nullptr;
    const std::string value_text = item.substr(colon + 1);
    const double value = std::strtod(value_text.c_str(), &end);
    if (end == value_text.c_str() || *end != '\0') return false;
    (*out)[item.substr(0, colon)] = value;
    pos = comma + 1;
  }
  return true;
}

const char* DirectionGlyph(BenchDirection direction) {
  switch (direction) {
    case BenchDirection::kHigherBetter: return "higher";
    case BenchDirection::kLowerBetter: return "lower";
    case BenchDirection::kInformational: return "info";
  }
  return "info";
}

}  // namespace

int main(int argc, char** argv) {
  const auto flags = Flags::Parse(argc - 1, argv + 1);
  if (!flags.ok()) {
    std::cerr << flags.status() << "\n";
    return Usage();
  }
  const std::string baseline_path = flags.value().GetString("baseline", "");
  const std::string current_path = flags.value().GetString("current", "");
  if (baseline_path.empty() || current_path.empty()) return Usage();

  eventhit::BenchToleranceSpec spec;
  const auto default_tol = flags.value().GetDouble("default-tol", 0.15);
  if (!default_tol.ok() || default_tol.value() < 0.0) {
    std::cerr << "bad --default-tol\n";
    return 2;
  }
  spec.default_rel_tol = default_tol.value();
  if (!ParseKeyValueList(flags.value().GetString("tol", ""),
                         &spec.rel_tol) ||
      !ParseKeyValueList(flags.value().GetString("tol-abs", ""),
                         &spec.abs_tol)) {
    std::cerr << "bad --tol/--tol-abs (want key:value[,key:value...])\n";
    return 2;
  }

  const auto baseline = eventhit::LoadBenchJson(baseline_path);
  if (!baseline.ok()) {
    std::cerr << baseline.status() << "\n";
    return 2;
  }
  const auto current = eventhit::LoadBenchJson(current_path);
  if (!current.ok()) {
    std::cerr << current.status() << "\n";
    return 2;
  }

  const eventhit::BenchDiff diff =
      eventhit::DiffBenchJson(baseline.value(), current.value(), spec);

  TablePrinter table(
      {"Metric", "Baseline", "Current", "Change", "Dir", "Status"});
  for (const eventhit::BenchDelta& delta : diff.deltas) {
    table.AddRow({delta.key, Fmt(delta.baseline, 4), Fmt(delta.current, 4),
                  Fmt(delta.rel_change * 100.0, 2) + "%",
                  DirectionGlyph(delta.direction),
                  !delta.gated ? "-"
                               : (delta.regressed ? "REGRESSED" : "ok")});
  }
  table.Print(std::cout);
  for (const std::string& key : diff.missing_keys) {
    std::cout << "MISSING: gated metric '" << key
              << "' absent from current run\n";
  }
  for (const std::string& key : diff.new_keys) {
    const auto found = current.value().find(key);
    std::cout << "NEW: metric '" << key << "' = "
              << Fmt(found->second, 4)
              << " has no baseline yet (passes; commit a refreshed "
                 "baseline to start gating it)\n";
  }
  if (diff.regressed) {
    std::cout << "bench_diff: REGRESSION vs " << baseline_path << "\n";
    return 1;
  }
  std::cout << "bench_diff: ok (within tolerance of " << baseline_path
            << ")\n";
  return 0;
}
