// Command-line front end for the library.
//
//   eventhit_cli stats   [--dataset=VIRAT|THUMOS|Breakfast] [--seed=N]
//                         [--load=PATH]
//   eventhit_cli generate --dataset=... --out=PATH [--frames=N] [--seed=N]
//   eventhit_cli evaluate --task=TA1 [--confidence=0.9] [--coverage=0.5]
//                         [--seed=N] [--model-out=path]
//   eventhit_cli evaluate --drift-profile=precursor-shift --recal=on|off
//                         [--seed=N]   (drift-recovery lab; ignores --task)
//   eventhit_cli sweep    --task=TA1 [--seed=N] [--csv=path]
//   eventhit_cli hypersearch --task=TA10 [--seed=N] [--samples=N]
//   eventhit_cli fleet    --task=TA10 [--streams=N] [--seed=N] [--frames=N]
//                         [--batch=B] [--max-delay=T] [--wave=W]
//                         [--threads=N] [--verify-solo=K]
//
// Every subcommand builds the synthetic environment for the chosen task,
// so results are reproducible from the seed alone.
//
// Telemetry (docs/TELEMETRY.md) works on every subcommand:
//   --metrics-out=PATH   write the metrics snapshot as JSON
//   --trace-out=PATH     write trace spans as Chrome trace-event JSON
//                        (loads in chrome://tracing / Perfetto)
//   --openmetrics-out=PATH  write the final snapshot as OpenMetrics text
//   --log-out=PATH       write the structured log as JSONL
//   --log-level=LVL      debug|info|warn|error (default info)
//   --print-metrics      pretty-print the metrics snapshot on exit
// `stats` additionally prints a telemetry section by default, and
// `evaluate` emits the simulated per-stage horizon spans of its EHCR
// operating point, from which Fig. 10-style shares can be re-derived.
// `evaluate` also runs the online guarantee auditor over the EHCR
// decisions (audit.* metrics, breach spans) and, with --metrics-jsonl,
// writes a labeled time series of per-record metric deltas.

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <memory>

#include "adapt/recovery_lab.h"
#include "baselines/oracle.h"
#include "cloud/cloud_service.h"
#include "cloud/cost_model.h"
#include "cloud/relay.h"
#include "common/csv_writer.h"
#include "core/marshaller.h"
#include "sim/fault_injector.h"
#include "common/flags.h"
#include "common/table_printer.h"
#include "common/thread_pool.h"
#include "core/strategies.h"
#include "data/tasks.h"
#include "eval/curves.h"
#include "fleet/stream_fleet.h"
#include "eval/hyper_search.h"
#include "eval/runner.h"
#include "nn/backend.h"
#include "obs/audit.h"
#include "obs/export.h"
#include "obs/log.h"
#include "obs/metrics.h"
#include "obs/openmetrics.h"
#include "obs/schema.h"
#include "obs/timeseries.h"
#include "obs/trace.h"
#include "sched/collect_policy.h"
#include "sched/cost_model.h"
#include "sim/datasets.h"
#include "sim/drift_scenario.h"
#include "sim/video_io.h"

namespace {

using ::eventhit::Flags;
using ::eventhit::Fmt;
using ::eventhit::TablePrinter;
namespace adapt = ::eventhit::adapt;
namespace cloud = ::eventhit::cloud;
namespace obs = ::eventhit::obs;
namespace eval = ::eventhit::eval;
namespace core = ::eventhit::core;
namespace data = ::eventhit::data;
namespace sim = ::eventhit::sim;
namespace fleet = ::eventhit::fleet;
namespace nn = ::eventhit::nn;
namespace sched = ::eventhit::sched;

// The full flag reference. Kept in sync with the implemented flags by
// tests/cli_help_sync_test.cc: every Get*("flag") in this file must appear
// below as --flag, and every --flag below must be implemented.
void PrintUsage(std::ostream& os) {
  os <<
      "usage: eventhit_cli "
      "<stats|generate|evaluate|sweep|hypersearch|fleet|explain|help> "
      "[flags]\n"
      "  stats        --dataset=VIRAT|THUMOS|Breakfast [--seed=N]\n"
      "               [--load=PATH]  dataset statistics (Table I); --load\n"
      "               reads a stream written by `generate` instead of\n"
      "               generating one\n"
      "  generate     --dataset=... --out=PATH [--frames=N] [--seed=N]\n"
      "               generate a synthetic stream and save it to --out\n"
      "  evaluate     --task=TA1 [--confidence=C] [--coverage=A] [--seed=N]\n"
      "               [--model-out=PATH] [--threads=N] [--predict-batch=B]\n"
      "               [--nn-backend=K] [--collect-policy=P]\n"
      "               [--drift-profile=NAME --recal=on|off]  drift-recovery\n"
      "               lab (DESIGN.md 5j; ignores --task): stream a seeded\n"
      "               regime shift (precursor-shift, duration-shift or\n"
      "               detector-degrade) through a live marshaller and\n"
      "               auditor with the breach-triggered recalibration loop\n"
      "               armed (on) or disarmed (off), and print the breach ->\n"
      "               hot swap -> coverage-restored chain with recal.*\n"
      "               accounting\n"
      "  sweep        --task=TA1 [--seed=N] [--csv=PATH] [--threads=N]\n"
      "               [--predict-batch=B] [--nn-backend=K]\n"
      "  hypersearch  --task=TA10 [--samples=N] [--seed=N] [--threads=N]\n"
      "  fleet        --task=TA10 [--streams=N] [--seed=N] [--frames=N]\n"
      "               [--batch=B] [--max-delay=T] [--wave=W] [--threads=N]\n"
      "               [--confidence=C] [--coverage=A] [--nn-backend=K]\n"
      "               [--fault-profile=NAME] [--fault-seed=N]\n"
      "               [--degraded-mode=drop|buffer] [--collect-policy=P]\n"
      "               [--budget-cap-usd=X] [--verify-solo=K] [--recal=on|off]\n"
      "               run N tenant streams through the cross-stream\n"
      "               dynamic batcher (DESIGN.md 5g); --verify-solo=K\n"
      "               re-runs the first K streams solo and checks\n"
      "               bit-exact digests against the fleet run;\n"
      "               --recal=on arms a per-stream recalibration loop\n"
      "               (breach/drift triggered conformal rebuilds hot-swap\n"
      "               into that stream's private strategy only)\n"
      "               [--provenance=on|off]  arm the per-stream decision\n"
      "               provenance ledger (default on; docs/TELEMETRY.md)\n"
      "               [--health-report] print the per-tenant fleet health\n"
      "               rollup (worst streams first: breaches, breaker state,\n"
      "               duty cycle, miss/miscoverage rates, relay drops,\n"
      "               batch residency p50/p99, spend)\n"
      "               [--health-out=PATH] write one JSON health row per\n"
      "               stream as JSONL\n"
      "  explain      --decision=ID | --frame=F [--stream=S] [--task=TA10]\n"
      "               [--seed=N] [--frames=N] [--confidence=C]\n"
      "               [--coverage=A] [--nn-backend=K] [--collect-policy=P]\n"
      "               [--fault-profile=NAME] [--fault-seed=N]\n"
      "               [--degraded-mode=drop|buffer] [--recal=on|off]\n"
      "               [--json-out=PATH]  replay one stream deterministically\n"
      "               and print the full causal chain of one marshalling\n"
      "               boundary: collect-policy verdict, batch placement,\n"
      "               inference backend + conformal generation, decision,\n"
      "               relay/breaker outcome, and the auditor's verdict.\n"
      "               --decision takes the decision id carried by metric\n"
      "               exemplars (audit.misses et al.); --frame resolves the\n"
      "               boundary whose horizon covers frame F on --stream.\n"
      "               Pass the same task/seed/knobs as the fleet run being\n"
      "               explained — the replay is bit-identical to it.\n"
      "  help         print this reference and exit 0\n"
      "  --threads=N  worker threads for evaluation/calibration/search\n"
      "               (default 1; 0 = all hardware threads). Results are\n"
      "               identical for every N.\n"
      "  --predict-batch=B  records per batch for the batched GEMM\n"
      "               inference path (default 32; scores are identical\n"
      "               for every B >= 1)\n"
      "  --nn-backend=scalar|blocked|simd|int8|auto  inference kernel\n"
      "               backend (default blocked; docs/BACKENDS.md). simd\n"
      "               needs AVX2+FMA and falls back to blocked elsewhere;\n"
      "               auto picks simd when available. int8 quantizes the\n"
      "               weights and recalibrates the conformal thresholds\n"
      "               on int8 scores. Scores differ across backends\n"
      "               within documented bounds; all backends are\n"
      "               deterministic and batch-invariant.\n"
      "  --collect-policy=full|duty:<d>|adaptive  collection scheduling\n"
      "               policy (evaluate + fleet; DESIGN.md 5i). full scores\n"
      "               every prediction boundary (default; byte-identical\n"
      "               to the legacy path). duty:<d> scores a fixed\n"
      "               fraction d in (0,1] of boundaries; adaptive drops\n"
      "               cadence while recent existence scores stay below a\n"
      "               hysteresis band and snaps back the moment they\n"
      "               rise. Skipped boundaries reuse the last decision\n"
      "               without feature extraction or a model forward;\n"
      "               conformal thresholds are calibrated under the same\n"
      "               policy. evaluate adds a stream-cadence policy\n"
      "               section with sched.* accounting; fleet installs\n"
      "               the policy in every stream's marshaller.\n"
      "  resilience (evaluate + fleet; see DESIGN.md 5f):\n"
      "  --fault-profile=none|flaky|latency|blackout  replay the test\n"
      "               slice through the resilient cloud relay under the\n"
      "               named deterministic fault schedule\n"
      "  --fault-seed=N      seed of the fault schedule (default 1234)\n"
      "  --degraded-mode=drop|buffer  outage policy: drop-with-accounting\n"
      "               or buffer-and-replay within the horizon\n"
      "  --budget-cap-usd=X  fleet only: stop relaying once the summed\n"
      "               cloud spend crosses X dollars (0 = no cap)\n"
      "  telemetry (all subcommands; see docs/TELEMETRY.md):\n"
      "  --metrics-out=PATH  write the metrics snapshot as JSON\n"
      "  --trace-out=PATH    write Chrome trace-event JSON for\n"
      "                      chrome://tracing / Perfetto\n"
      "  --openmetrics-out=PATH  write the snapshot as OpenMetrics text\n"
      "  --log-out=PATH      write the structured log as JSONL\n"
      "  --log-level=LVL     debug|info|warn|error (default info)\n"
      "  --print-metrics     pretty-print the metrics snapshot on exit\n"
      "  auditing / time series (evaluate only):\n"
      "  --metrics-jsonl=PATH  write per-record metric-delta JSONL while\n"
      "                      the guarantee auditor replays the test slice\n"
      "  --metrics-every=N   records between JSONL snapshots (default 25)\n";
}

int Usage() {
  PrintUsage(std::cerr);
  return 2;
}

// Display names per task event: paper numbering ("E5") when the task
// carries it, else the auditor's "event<k>" fallback.
std::vector<std::string> EventLabels(const data::Task& task) {
  std::vector<std::string> labels;
  labels.reserve(task.global_events.size());
  for (const int global : task.global_events) {
    labels.push_back("E" + std::to_string(global));
  }
  return labels;
}

// --threads=N: N >= 2 enables the worker pool, 0 resolves to the hardware
// thread count (or EVENTHIT_THREADS), 1 (the default) stays serial.
eventhit::Result<eventhit::ExecutionContext> ParseThreads(const Flags& flags,
                                                          uint64_t seed) {
  const auto threads = flags.GetInt("threads", 1);
  if (!threads.ok()) return threads.status();
  if (threads.value() < 0) {
    return eventhit::InvalidArgumentError("--threads must be >= 0");
  }
  const int resolved = threads.value() == 0
                           ? eventhit::ThreadPool::DefaultThreads()
                           : static_cast<int>(threads.value());
  return eventhit::ExecutionContext(resolved, seed);
}

eventhit::Result<sim::DatasetId> ParseDataset(const std::string& name) {
  if (name == "VIRAT") return sim::DatasetId::kVirat;
  if (name == "THUMOS") return sim::DatasetId::kThumos;
  if (name == "Breakfast") return sim::DatasetId::kBreakfast;
  return eventhit::InvalidArgumentError("unknown dataset: " + name);
}

int RunStats(const Flags& flags) {
  const std::string load_path = flags.GetString("load", "");
  sim::SyntheticVideo video = [&] {
    obs::TraceSpan span(obs::names::kSpanCliGenerateStream);
    if (!load_path.empty()) {
      auto loaded = sim::LoadVideo(load_path);
      if (!loaded.ok()) {
        std::cerr << loaded.status() << "\n";
        std::exit(1);
      }
      return std::move(loaded).value();
    }
    const auto dataset = ParseDataset(flags.GetString("dataset", "VIRAT"));
    if (!dataset.ok()) {
      std::cerr << dataset.status() << "\n";
      std::exit(1);
    }
    const auto seed =
        static_cast<uint64_t>(flags.GetInt("seed", 42).value_or(42));
    return sim::SyntheticVideo::Generate(
        sim::MakeDatasetSpec(dataset.value()), seed);
  }();
  const sim::DatasetSpec& spec = video.spec();
  TablePrinter table({"Event", "Occurrences", "DurMean", "DurStd"});
  for (const auto& stats : sim::ComputeEventStats(video)) {
    table.AddRow({stats.name, Fmt(stats.occurrences),
                  Fmt(stats.duration_mean, 1), Fmt(stats.duration_std, 1)});
  }
  std::cout << spec.name << " (" << spec.num_frames << " frames, D="
            << spec.FeatureDim() << ", M=" << spec.collection_window
            << ", H=" << spec.horizon << ")\n";
  table.Print(std::cout);

  // Telemetry snapshot of this run (spans so far + any counters).
  std::cout << "\n=== Telemetry snapshot ===\n";
  obs::PrintMetricsTable(obs::MetricsRegistry::Global().Snapshot(),
                         std::cout);
  TablePrinter spans({"Span", "Count", "TotalMs"});
  for (const auto& aggregate :
       obs::TraceBuffer::Global().AggregateByName()) {
    spans.AddRow({aggregate.name, Fmt(aggregate.count),
                  Fmt(static_cast<double>(aggregate.total_us) / 1000.0, 2)});
  }
  if (spans.num_rows() > 0) {
    std::cout << "\n";
    spans.Print(std::cout);
  }
  return 0;
}

int RunGenerate(const Flags& flags) {
  const auto dataset = ParseDataset(flags.GetString("dataset", "VIRAT"));
  if (!dataset.ok()) {
    std::cerr << dataset.status() << "\n";
    return 1;
  }
  const std::string out = flags.GetString("out", "");
  if (out.empty()) {
    std::cerr << "--out is required\n";
    return 1;
  }
  sim::DatasetSpec spec = sim::MakeDatasetSpec(dataset.value());
  const auto frames = flags.GetInt("frames", 0).value_or(0);
  if (frames > 0) spec.num_frames = frames;
  const auto seed =
      static_cast<uint64_t>(flags.GetInt("seed", 42).value_or(42));
  std::cerr << "generating " << spec.num_frames << " frames of " << spec.name
            << "...\n";
  const sim::SyntheticVideo video = sim::SyntheticVideo::Generate(spec, seed);
  if (const auto status = sim::SaveVideo(video, out); !status.ok()) {
    std::cerr << status << "\n";
    return 1;
  }
  std::cout << "wrote " << out << "\n";
  return 0;
}

struct TrainedTask {
  eval::TaskEnvironment env;
  eval::TrainedEventHit trained;
  eventhit::ExecutionContext exec;
};

eventhit::Result<TrainedTask> BuildAndTrain(const Flags& flags) {
  const std::string task_name = flags.GetString("task", "");
  if (task_name.empty()) {
    return eventhit::InvalidArgumentError("--task is required");
  }
  auto task = data::FindTask(task_name);
  if (!task.ok()) return task.status();
  eval::RunnerConfig config;
  const auto seed = flags.GetInt("seed", 42);
  if (!seed.ok()) return seed.status();
  config.seed = static_cast<uint64_t>(seed.value());
  const auto predict_batch =
      flags.GetInt("predict-batch",
                   static_cast<int64_t>(core::kDefaultPredictBatch));
  if (!predict_batch.ok()) return predict_batch.status();
  if (predict_batch.value() < 1) {
    return eventhit::InvalidArgumentError("--predict-batch must be >= 1");
  }
  config.predict_batch = static_cast<size_t>(predict_batch.value());
  const auto backend =
      nn::ParseBackendKind(flags.GetString("nn-backend", "blocked"));
  if (!backend.ok()) return backend.status();
  config.nn_backend = backend.value();
  const auto policy =
      sched::ParseCollectPolicy(flags.GetString("collect-policy", "full"));
  if (!policy.ok()) return policy.status();
  config.collect_policy = policy.value();
  auto exec = ParseThreads(flags, config.seed);
  if (!exec.ok()) return exec.status();
  std::cerr << "building environment + training on " << task_name << " ("
            << exec.value().threads() << " thread(s), "
            << nn::GetBackend(config.nn_backend).name << " backend)...\n";
  eval::TaskEnvironment env = eval::TaskEnvironment::Build(task.value(), config);
  eval::TrainedEventHit trained =
      eval::TrainEventHit(env, config, 0.5, exec.value());
  return TrainedTask{std::move(env), std::move(trained), exec.value()};
}

// `--fault-profile=NAME`: streams the test slice through the Marshaller
// and the resilient cloud relay under a deterministic fault schedule, and
// prints the relay/breaker accounting next to what an ideal (fault-free)
// link would have delivered. Reproducible from (--seed, --fault-seed).
int RunFaultReplay(const Flags& flags, const eval::TaskEnvironment& env,
                   const eval::TrainedEventHit& trained, double confidence,
                   double coverage) {
  const std::string profile_name = flags.GetString("fault-profile", "");
  if (profile_name.empty()) return 0;
  const auto fault_seed = flags.GetInt("fault-seed", 1234);
  if (!fault_seed.ok()) {
    std::cerr << fault_seed.status() << "\n";
    return 1;
  }
  const auto profile = sim::MakeFaultProfile(
      profile_name, static_cast<uint64_t>(fault_seed.value()));
  if (!profile.ok()) {
    std::cerr << profile.status() << "\n";
    return 1;
  }
  const std::string mode_name = flags.GetString("degraded-mode", "drop");
  if (mode_name != "drop" && mode_name != "buffer") {
    std::cerr << "--degraded-mode must be drop or buffer\n";
    return 1;
  }
  const sim::FaultInjector injector(profile.value());

  core::EventHitStrategyOptions options;
  options.use_cclassify = true;
  options.use_cregress = true;
  options.confidence = confidence;
  options.coverage = coverage;
  const core::EventHitStrategy strategy(
      trained.model.get(), trained.cclassify.get(), trained.cregress.get(),
      options);
  const size_t num_events = env.task().event_indices.size();
  core::Marshaller marshaller(&strategy, env.collection_window(),
                              env.horizon(), env.video().feature_dim(),
                              num_events, /*metrics=*/nullptr,
                              EventLabels(env.task()));

  cloud::CloudService service(&env.video(), cloud::CloudConfig{},
                              static_cast<uint64_t>(fault_seed.value()) + 1);
  cloud::RelayConfig relay_config;
  relay_config.degraded_mode = mode_name == "buffer"
                                   ? cloud::DegradedMode::kBufferAndReplay
                                   : cloud::DegradedMode::kDropWithAccounting;
  relay_config.replay_horizon_frames = env.horizon();
  cloud::CloudRelay relay(&service, relay_config,
                          static_cast<uint64_t>(fault_seed.value()),
                          &injector, /*metrics=*/nullptr,
                          &obs::TraceBuffer::Global());

  int64_t detected_event_frames = 0;
  relay.set_delivery_callback([&](const cloud::RelayDelivery& delivery) {
    for (const bool hit : delivery.detections) {
      detected_event_frames += hit ? 1 : 0;
    }
  });

  const int64_t base_frame = env.splits().test.start;
  const int64_t stream_end = env.splits().test.end - env.horizon();
  int64_t rel_now = 0;  // Stream clock: frames since the slice start.
  marshaller.set_relay_callback([&](const core::RelayOrder& order) {
    const sim::Interval absolute{order.frames.start + base_frame,
                                 order.frames.end + base_frame};
    if (absolute.end >= env.video().num_frames()) return;
    relay.Submit(env.task().event_indices[order.event], absolute, rel_now);
  });
  for (int64_t frame = base_frame; frame < stream_end; ++frame) {
    rel_now = frame - base_frame;
    if (marshaller.PushFrame(env.video().FrameFeatures(frame))) {
      relay.AdvanceTo(rel_now);
    }
  }
  relay.Flush(stream_end - base_frame);

  const cloud::RelayStats& stats = relay.stats();
  std::cout << "\n=== Fault replay (profile=" << profile_name
            << ", mode=" << mode_name << ") ===\n";
  TablePrinter table({"Quantity", "Value"});
  table.AddRow({"orders submitted", Fmt(stats.orders_submitted)});
  table.AddRow({"orders delivered", Fmt(stats.orders_delivered)});
  table.AddRow({"orders replayed", Fmt(stats.orders_replayed)});
  table.AddRow({"orders dropped", Fmt(stats.orders_dropped)});
  table.AddRow({"frames submitted", Fmt(stats.frames_submitted)});
  table.AddRow({"frames delivered", Fmt(stats.frames_delivered)});
  table.AddRow({"frames dropped", Fmt(stats.frames_dropped)});
  table.AddRow({"attempts / retries",
                Fmt(stats.attempts) + " / " + Fmt(stats.retries)});
  table.AddRow({"injected errors", Fmt(stats.injected_errors)});
  table.AddRow({"injected latency spikes",
                Fmt(stats.injected_latency_spikes)});
  table.AddRow({"breaker opens", Fmt(relay.breaker().opens())});
  table.AddRow({"breaker transitions", Fmt(relay.breaker().transitions())});
  table.AddRow({"detected event frames", Fmt(detected_event_frames)});
  table.AddRow({"cloud cost (USD)",
                Fmt(service.invoice().total_cost_usd, 3)});
  const double delivered_fraction =
      stats.frames_submitted > 0
          ? static_cast<double>(stats.frames_delivered) /
                static_cast<double>(stats.frames_submitted)
          : 1.0;
  table.AddRow({"delivered fraction", Fmt(delivered_fraction, 4)});
  table.Print(std::cout);
  return 0;
}

// `evaluate --drift-profile=NAME`: the seeded drift-recovery lab
// (adapt/recovery_lab.h). Builds its own single-event drifting rig —
// --task is ignored — then streams the regime shift through a live
// marshaller + auditor with the recalibration loop armed or disarmed and
// prints the breach → swap → restore chain. Fully reproducible from
// --seed; recal.* metrics land in the global registry for --metrics-out.
int RunDriftRecovery(const Flags& flags) {
  adapt::RecoveryLabConfig config;
  config.scenario = flags.GetString("drift-profile", "");
  const std::string recal_name = flags.GetString("recal", "on");
  if (recal_name != "on" && recal_name != "off") {
    std::cerr << "--recal must be on or off\n";
    return 1;
  }
  config.recal = recal_name == "on";
  const auto seed = flags.GetInt("seed", 42);
  const auto threads = flags.GetInt("threads", 1);
  const auto confidence = flags.GetDouble("confidence", config.confidence);
  const auto coverage = flags.GetDouble("coverage", config.coverage);
  for (const auto* status : {&seed.status(), &threads.status(),
                             &confidence.status(), &coverage.status()}) {
    if (!status->ok()) {
      std::cerr << *status << "\n";
      return 1;
    }
  }
  if (threads.value() < 0) {
    std::cerr << "--threads must be >= 0\n";
    return 1;
  }
  config.seed = static_cast<uint64_t>(seed.value());
  config.threads = threads.value() == 0
                       ? eventhit::ThreadPool::DefaultThreads()
                       : static_cast<int>(threads.value());
  config.confidence = confidence.value();
  config.coverage = coverage.value();

  std::cerr << "streaming drift scenario " << config.scenario
            << " (recal=" << recal_name << ", seed=" << config.seed
            << ")...\n";
  const auto run = adapt::RunRecovery(config);
  if (!run.ok()) {
    std::cerr << run.status() << "\n";
    return 1;
  }
  const adapt::RecoveryReport& r = run.value();

  std::cout << "=== Drift recovery (" << r.scenario
            << ", recal=" << (r.recal_enabled ? "on" : "off") << ") ===\n";
  TablePrinter table({"Quantity", "Value"});
  table.AddRow({"shift frame", Fmt(r.shift_frame)});
  table.AddRow({"stream range",
                Fmt(r.stream_begin) + ".." + Fmt(r.stream_end)});
  table.AddRow({"breach time", Fmt(r.breach_time)});
  table.AddRow({"drift alarm time", Fmt(r.alarm_time)});
  table.AddRow({"first swap time", Fmt(r.first_swap_time)});
  table.AddRow({"swaps", Fmt(r.swap_count)});
  table.AddRow({"restore time", Fmt(r.restore_time)});
  table.AddRow({"time to restore (frames)", Fmt(r.time_to_restore)});
  table.AddRow({"spill overshoot", Fmt(r.spill_overshoot, 3)});
  table.AddRow({"end breached (sticky latch)",
                r.end_breached ? "yes" : "no"});
  table.AddRow({"pre-shift miss/miscover",
                Fmt(r.pre_shift.MissRate(), 3) + "/" +
                    Fmt(r.pre_shift.MiscoverRate(), 3)});
  table.AddRow({"post-shift miss/miscover",
                Fmt(r.post_shift.MissRate(), 3) + "/" +
                    Fmt(r.post_shift.MiscoverRate(), 3)});
  table.AddRow({"post-swap miss/miscover",
                Fmt(r.post_swap.MissRate(), 3) + "/" +
                    Fmt(r.post_swap.MiscoverRate(), 3)});
  if (r.recal_enabled) {
    table.AddRow({"triggers breach/drift",
                  Fmt(r.recal.triggers_breach) + "/" +
                      Fmt(r.recal.triggers_drift)});
    table.AddRow({"refusals cooldown/min-samples",
                  Fmt(r.recal.refusals_cooldown) + "/" +
                      Fmt(r.recal.refusals_min_samples)});
    table.AddRow({"records observed", Fmt(r.recal.records_observed)});
  }
  char digest[32];
  std::snprintf(digest, sizeof(digest), "%016llx",
                static_cast<unsigned long long>(r.decision_digest));
  table.AddRow({"decision digest", digest});
  table.Print(std::cout);
  return 0;
}

int RunEvaluate(const Flags& flags) {
  if (!flags.GetString("drift-profile", "").empty()) {
    return RunDriftRecovery(flags);
  }
  auto built = BuildAndTrain(flags);
  if (!built.ok()) {
    std::cerr << built.status() << "\n";
    return 1;
  }
  const auto& [env, trained, exec] = built.value();
  const auto confidence = flags.GetDouble("confidence", 0.9);
  const auto coverage = flags.GetDouble("coverage", 0.5);
  if (!confidence.ok() || !coverage.ok()) {
    std::cerr << "bad --confidence/--coverage\n";
    return 1;
  }

  const std::string model_out = flags.GetString("model-out", "");
  if (!model_out.empty()) {
    if (const auto status = trained.model->Save(model_out); !status.ok()) {
      std::cerr << status << "\n";
      return 1;
    }
    std::cerr << "model saved to " << model_out << "\n";
  }

  TablePrinter table({"Strategy", "REC", "SPL", "REC_c", "REC_r"});
  eval::Metrics ehcr_metrics;
  for (const bool use_cc : {false, true}) {
    for (const bool use_cr : {false, true}) {
      core::EventHitStrategyOptions options;
      options.use_cclassify = use_cc;
      options.use_cregress = use_cr;
      options.confidence = confidence.value();
      options.coverage = coverage.value();
      const core::EventHitStrategy strategy(
          trained.model.get(), trained.cclassify.get(),
          trained.cregress.get(), options);
      const eval::Metrics metrics = eval::EvaluateFromScores(
          strategy, trained.test_scores, env.test_records(), env.horizon(),
          exec);
      if (use_cc && use_cr) ehcr_metrics = metrics;
      table.AddRow({strategy.name(), Fmt(metrics.rec), Fmt(metrics.spl),
                    Fmt(metrics.rec_c), Fmt(metrics.rec_r)});
    }
  }
  const eventhit::baselines::OptStrategy opt;
  const eval::Metrics opt_metrics =
      eval::EvaluateStrategy(opt, env.test_records(), env.horizon(), exec);
  table.AddRow({"OPT", Fmt(opt_metrics.rec), Fmt(opt_metrics.spl), "1.000",
                "1.000"});
  table.Print(std::cout);

  // Replay the EHCR decisions through the online guarantee auditor on the
  // record clock: audit.* metrics, breach spans, and (with
  // --metrics-jsonl) a labeled time series of per-record metric deltas.
  {
    core::EventHitStrategyOptions options;
    options.use_cclassify = true;
    options.use_cregress = true;
    options.confidence = confidence.value();
    options.coverage = coverage.value();
    const core::EventHitStrategy ehcr(
        trained.model.get(), trained.cclassify.get(), trained.cregress.get(),
        options);
    const std::vector<core::MarshalDecision> decisions =
        eval::DecisionsFromScores(ehcr, trained.test_scores, exec);
    const std::vector<obs::AuditOutcome> outcomes =
        eval::BuildAuditOutcomes(env.test_records(), decisions);

    obs::AuditConfig audit_config;
    audit_config.confidence = confidence.value();
    audit_config.coverage = coverage.value();
    audit_config.event_labels = EventLabels(env.task());
    obs::GuarantyAuditor auditor(audit_config, /*metrics=*/nullptr,
                                 &obs::TraceBuffer::Global());

    const std::string jsonl_path = flags.GetString("metrics-jsonl", "");
    const int64_t metrics_every =
        std::max<int64_t>(1, flags.GetInt("metrics-every", 25).value_or(25));
    std::ofstream jsonl;
    std::unique_ptr<obs::MetricsDeltaWriter> writer;
    if (!jsonl_path.empty()) {
      jsonl.open(jsonl_path);
      if (!jsonl) {
        std::cerr << "cannot open " << jsonl_path << "\n";
        return 1;
      }
      writer = std::make_unique<obs::MetricsDeltaWriter>(&jsonl);
      // Baseline line at t=-1: everything accumulated before the audit
      // replay, so the first windowed delta starts clean.
      writer->Emit(obs::MetricsRegistry::Global().Snapshot(), -1);
    }
    const int64_t records = static_cast<int64_t>(env.test_records().size());
    size_t next = 0;
    for (int64_t i = 0; i < records; ++i) {
      while (next < outcomes.size() && outcomes[next].sim_time == i) {
        auditor.Observe(outcomes[next]);
        ++next;
      }
      if (writer != nullptr && (i + 1) % metrics_every == 0) {
        writer->Emit(obs::MetricsRegistry::Global().Snapshot(), i);
      }
    }
    auditor.Finalize(records);
    if (writer != nullptr) {
      writer->Emit(obs::MetricsRegistry::Global().Snapshot(), records);
      std::cerr << "metric deltas written to " << jsonl_path << "\n";
    }

    std::cout << "\n=== Guarantee audit (c=" << Fmt(confidence.value(), 2)
              << ", alpha=" << Fmt(coverage.value(), 2) << ") ===\n";
    TablePrinter audit_table({"Event", "Pos", "Miss", "MissRate",
                              "MissBudget", "Endp", "Miscov", "MiscovRate",
                              "MiscovBudget", "Breach"});
    const double miss_budget = 1.0 - confidence.value();
    const double miscov_budget = 1.0 - coverage.value();
    const std::vector<std::string>& labels = audit_config.event_labels;
    for (size_t k = 0; k < env.task().event_indices.size(); ++k) {
      const int event = static_cast<int>(k);
      std::string breach;
      if (auditor.breached(event, obs::AuditGuarantee::kMiss)) {
        breach = "miss";
      }
      if (auditor.breached(event, obs::AuditGuarantee::kMiscoverage)) {
        breach += breach.empty() ? "miscoverage" : ",miscoverage";
      }
      if (breach.empty()) breach = "-";
      audit_table.AddRow(
          {k < labels.size() ? labels[k] : "event" + std::to_string(k),
           Fmt(auditor.positives(event)), Fmt(auditor.misses(event)),
           Fmt(auditor.MissRate(event), 4), Fmt(miss_budget, 4),
           Fmt(auditor.endpoints(event)), Fmt(auditor.miscovered(event)),
           Fmt(auditor.MiscoverageRate(event), 4), Fmt(miscov_budget, 4),
           breach});
    }
    audit_table.Print(std::cout);
    if (auditor.any_breach()) {
      std::cout << "BREACH: " << auditor.breach_count()
                << " guarantee breach(es) latched; see audit.breach.* "
                   "metrics and audit.breach trace spans\n";
    }
  }

  // --collect-policy: stream-cadence policy evaluation. The uniform test
  // records above have no temporal adjacency, so the policy section walks
  // a strided (stride = H) sweep of the test range — consecutive
  // prediction boundaries of one stream — comparing the policy walk
  // against the full walk on the identical boundary sequence, with
  // sched.* local-compute accounting and an auditor pass over the policy
  // decisions.
  {
    const auto policy =
        sched::ParseCollectPolicy(flags.GetString("collect-policy", "full"));
    if (!policy.ok()) {
      std::cerr << policy.status() << "\n";
      return 1;
    }
    if (policy.value().kind != sched::CollectPolicyKind::kFull) {
      core::EventHitStrategyOptions options;
      options.use_cclassify = true;
      options.use_cregress = true;
      options.confidence = confidence.value();
      options.coverage = coverage.value();
      const core::EventHitStrategy ehcr(
          trained.model.get(), trained.cclassify.get(),
          trained.cregress.get(), options);
      const std::vector<data::Record> sweep = data::StridedRecords(
          env.video(), env.task(), env.extractor(), env.splits().test,
          env.horizon());
      const std::vector<core::EventScores> sweep_scores = core::PredictBatch(
          *trained.model, sweep, exec, core::kDefaultPredictBatch);

      sched::LocalCostModel cost;
      const core::EventHitConfig& mc = trained.model->config();
      cost.forward_mflops_per_boundary = sched::EstimateForwardMflops(
          env.collection_window(), static_cast<int>(env.video().feature_dim()),
          mc.lstm_hidden, mc.shared_dim, mc.event_hidden,
          static_cast<int>(env.task().event_indices.size()), env.horizon());

      eval::PolicyWalkStats walk;
      const std::vector<core::MarshalDecision> policy_decisions =
          eval::DecisionsWithPolicy(ehcr, sweep_scores, policy.value(),
                                    env.collection_window(), env.horizon(),
                                    cost, &walk, exec);
      eval::PolicyWalkStats full_walk;
      const std::vector<core::MarshalDecision> full_decisions =
          eval::DecisionsWithPolicy(ehcr, sweep_scores,
                                    sched::CollectPolicySpec{},
                                    env.collection_window(), env.horizon(),
                                    cost, &full_walk, exec);
      const eval::Metrics policy_metrics =
          eval::ComputeMetrics(sweep, policy_decisions, env.horizon());
      const eval::Metrics full_metrics =
          eval::ComputeMetrics(sweep, full_decisions, env.horizon());

      obs::AuditConfig audit_config;
      audit_config.confidence = confidence.value();
      audit_config.coverage = coverage.value();
      audit_config.event_labels = EventLabels(env.task());
      obs::GuarantyAuditor auditor(audit_config);
      for (const obs::AuditOutcome& outcome :
           eval::BuildAuditOutcomes(sweep, policy_decisions)) {
        auditor.Observe(outcome);
      }
      auditor.Finalize(static_cast<int64_t>(sweep.size()));

      std::cout << "\n=== Collection policy ("
                << sched::CollectPolicyName(policy.value())
                << ", stream-cadence sweep of the test range) ===\n";
      TablePrinter policy_table({"Quantity", "Policy", "Full"});
      policy_table.AddRow({"boundaries scored", Fmt(walk.horizons_scored),
                           Fmt(full_walk.horizons_scored)});
      policy_table.AddRow({"boundaries reused", Fmt(walk.horizons_reused),
                           Fmt(full_walk.horizons_reused)});
      policy_table.AddRow({"frames scored", Fmt(walk.frames_scored),
                           Fmt(full_walk.frames_scored)});
      policy_table.AddRow({"frames skipped", Fmt(walk.frames_skipped),
                           Fmt(full_walk.frames_skipped)});
      policy_table.AddRow({"local MFLOPs", Fmt(walk.local_mflops, 0),
                           Fmt(full_walk.local_mflops, 0)});
      policy_table.AddRow({"saved MFLOPs", Fmt(walk.saved_mflops, 0),
                           Fmt(full_walk.saved_mflops, 0)});
      policy_table.AddRow(
          {"REC", Fmt(policy_metrics.rec), Fmt(full_metrics.rec)});
      policy_table.AddRow(
          {"SPL", Fmt(policy_metrics.spl), Fmt(full_metrics.spl)});
      policy_table.AddRow({"audit breaches", Fmt(auditor.breach_count()),
                           "-"});
      policy_table.Print(std::cout);
      if (auditor.any_breach()) {
        std::cout << "BREACH: the policy walk breached "
                  << auditor.breach_count() << " guarantee budget(s)\n";
      }
    }
  }

  // Emit the EHCR operating point onto the simulated timeline: one
  // stage.feature_extraction / stage.predictor / stage.ci span triple for
  // an average horizon, so --trace-out re-derives the Fig. 10 shares.
  if (ehcr_metrics.records > 0) {
    const int64_t relayed_per_horizon =
        ehcr_metrics.relayed_frames / ehcr_metrics.records;
    obs::MetricsRegistry::Global()
        .GetGauge(obs::names::kPipelineRelayedFramesPerHorizon)
        ->Set(static_cast<double>(relayed_per_horizon));
    const cloud::StageBreakdown breakdown = cloud::HorizonTiming(
        cloud::PipelineCostModel{}, cloud::PredictorKind::kEventHit,
        env.collection_window(), env.horizon(), relayed_per_horizon);
    cloud::EmitHorizonSpans(&obs::TraceBuffer::Global(), breakdown,
                            /*start_us=*/0);
  }
  return RunFaultReplay(flags, env, trained, confidence.value(),
                        coverage.value());
}

int RunSweep(const Flags& flags) {
  auto built = BuildAndTrain(flags);
  if (!built.ok()) {
    std::cerr << built.status() << "\n";
    return 1;
  }
  const auto& [env, trained, exec] = built.value();
  (void)exec;  // Sweeps reuse precomputed scores; see eval/curves.
  const auto points = eval::ParetoFrontier(eval::SweepJoint(
      trained, env, eval::LinearGrid(0.05, 1.0, 12),
      eval::LinearGrid(0.05, 0.95, 8)));

  TablePrinter table({"c", "alpha", "REC", "SPL"});
  eventhit::CsvWriter csv({"c", "alpha", "rec", "spl"});
  for (const auto& point : points) {
    table.AddRow({Fmt(point.confidence, 2), Fmt(point.coverage, 2),
                  Fmt(point.metrics.rec), Fmt(point.metrics.spl)});
    csv.AddRow({Fmt(point.confidence, 3), Fmt(point.coverage, 3),
                Fmt(point.metrics.rec, 6), Fmt(point.metrics.spl, 6)});
  }
  table.Print(std::cout);
  const std::string csv_path = flags.GetString("csv", "");
  if (!csv_path.empty()) {
    if (const auto status = csv.WriteFile(csv_path); !status.ok()) {
      std::cerr << status << "\n";
      return 1;
    }
    std::cerr << "frontier written to " << csv_path << "\n";
  }
  return 0;
}

int RunHyperSearch(const Flags& flags) {
  const std::string task_name = flags.GetString("task", "TA10");
  auto task = data::FindTask(task_name);
  if (!task.ok()) {
    std::cerr << task.status() << "\n";
    return 1;
  }
  eval::RunnerConfig config;
  config.seed =
      static_cast<uint64_t>(flags.GetInt("seed", 42).value_or(42));
  // A light environment: hyper-search trains one model per candidate.
  config.train_records = 500;
  config.test_records = 300;
  std::cerr << "building environment for " << task_name << "...\n";
  const auto env = eval::TaskEnvironment::Build(task.value(), config);

  core::EventHitConfig base = config.model_template;
  base.collection_window = env.collection_window();
  base.horizon = env.horizon();
  base.feature_dim = env.video().feature_dim();
  base.num_events = env.task().event_indices.size();
  base.epochs = 10;

  const auto samples = flags.GetInt("samples", 6).value_or(6);
  auto exec = ParseThreads(flags, config.seed);
  if (!exec.ok()) {
    std::cerr << exec.status() << "\n";
    return 1;
  }
  eval::HyperSearchOptions options;
  options.exec = exec.value();
  eventhit::Rng rng(config.seed + 1);
  std::cerr << "random search over " << samples << " candidates ("
            << options.exec.threads() << " thread(s))...\n";
  const auto results = eval::RandomSearch(
      base, eval::HyperGrid{}, static_cast<size_t>(samples),
      env.train_records(), env.calib_records(), rng, options);

  TablePrinter table({"lstm", "hidden", "lr", "beta", "gamma", "REC", "SPL",
                      "objective"});
  for (const auto& result : results) {
    table.AddRow({Fmt(static_cast<int64_t>(result.config.lstm_hidden)),
                  Fmt(static_cast<int64_t>(result.config.event_hidden)),
                  Fmt(result.config.learning_rate, 4),
                  Fmt(result.config.beta.empty() ? 1.0
                                                 : result.config.beta[0],
                      2),
                  Fmt(result.config.gamma.empty() ? 1.0
                                                  : result.config.gamma[0],
                      2),
                  Fmt(result.validation.rec), Fmt(result.validation.spl),
                  Fmt(result.objective)});
  }
  table.Print(std::cout);
  return 0;
}

// `fleet`: multiplexes N tenant streams through the cross-stream dynamic
// batcher (DESIGN.md 5g) and prints aggregate throughput, per-frame
// latency percentiles and settled accounting. `--verify-solo=K` re-runs
// the first K streams solo (no batching) and checks that every digest is
// bit-identical to the fleet run — the determinism contract, on demand.
int RunFleet(const Flags& flags) {
  const std::string task_name = flags.GetString("task", "TA10");
  const auto task = data::FindTask(task_name);
  if (!task.ok()) {
    std::cerr << task.status() << "\n";
    return 1;
  }
  fleet::FleetConfig config;
  const auto streams = flags.GetInt("streams", 100);
  const auto seed = flags.GetInt("seed", 42);
  const auto frames = flags.GetInt("frames", 0);
  const auto batch = flags.GetInt("batch", 64);
  const auto max_delay = flags.GetInt("max-delay", 4);
  const auto wave = flags.GetInt("wave", 256);
  const auto threads = flags.GetInt("threads", 1);
  const auto confidence = flags.GetDouble("confidence", 0.9);
  const auto coverage = flags.GetDouble("coverage", 0.5);
  const auto fault_seed = flags.GetInt("fault-seed", 1234);
  const auto budget_cap = flags.GetDouble("budget-cap-usd", 0.0);
  const auto verify_solo = flags.GetInt("verify-solo", 0);
  for (const auto* status :
       {&streams.status(), &seed.status(), &frames.status(), &batch.status(),
        &max_delay.status(), &wave.status(), &threads.status(),
        &confidence.status(), &coverage.status(), &fault_seed.status(),
        &budget_cap.status(), &verify_solo.status()}) {
    if (!status->ok()) {
      std::cerr << *status << "\n";
      return 1;
    }
  }
  if (streams.value() < 1 || batch.value() < 1 || max_delay.value() < 0 ||
      wave.value() < 1 || threads.value() < 0 || frames.value() < 0 ||
      verify_solo.value() < 0) {
    std::cerr << "fleet: --streams/--batch/--wave must be >= 1, "
                 "--max-delay/--threads/--frames/--verify-solo >= 0\n";
    return 1;
  }
  const std::string mode_name = flags.GetString("degraded-mode", "drop");
  if (mode_name != "drop" && mode_name != "buffer") {
    std::cerr << "--degraded-mode must be drop or buffer\n";
    return 1;
  }
  const std::string recal_name = flags.GetString("recal", "off");
  if (recal_name != "on" && recal_name != "off") {
    std::cerr << "--recal must be on or off\n";
    return 1;
  }
  const std::string provenance_name = flags.GetString("provenance", "on");
  if (provenance_name != "on" && provenance_name != "off") {
    std::cerr << "--provenance must be on or off\n";
    return 1;
  }
  const bool health_report =
      flags.GetBool("health-report", false).value_or(false);
  const std::string health_out = flags.GetString("health-out", "");
  const auto backend =
      nn::ParseBackendKind(flags.GetString("nn-backend", "blocked"));
  if (!backend.ok()) {
    std::cerr << backend.status() << "\n";
    return 1;
  }
  const auto policy =
      sched::ParseCollectPolicy(flags.GetString("collect-policy", "full"));
  if (!policy.ok()) {
    std::cerr << policy.status() << "\n";
    return 1;
  }
  config.num_streams = static_cast<int>(streams.value());
  config.base_seed = static_cast<uint64_t>(seed.value());
  config.frames_per_stream = frames.value();
  config.batch_size = static_cast<size_t>(batch.value());
  config.max_batch_delay_ticks = max_delay.value();
  config.wave_size = static_cast<int>(wave.value());
  config.threads = static_cast<int>(threads.value());
  config.confidence = confidence.value();
  config.coverage = coverage.value();
  config.fault_profile = flags.GetString("fault-profile", "none");
  config.fault_seed = static_cast<uint64_t>(fault_seed.value());
  config.degraded_mode = mode_name == "buffer"
                             ? cloud::DegradedMode::kBufferAndReplay
                             : cloud::DegradedMode::kDropWithAccounting;
  config.budget_cap_microusd =
      static_cast<int64_t>(budget_cap.value() * 1e6);
  config.recal = recal_name == "on";
  config.provenance = provenance_name == "on";
  config.runner.seed = config.base_seed;
  config.runner.nn_backend = backend.value();
  config.runner.collect_policy = policy.value();

  std::cerr << "training the shared fleet model on " << task_name << " ("
            << nn::GetBackend(backend.value()).name << " backend)...\n";
  fleet::StreamFleet fleet_run(task.value(), config);
  std::cerr << "running " << config.num_streams << " stream(s), batch "
            << config.batch_size << ", max delay "
            << config.max_batch_delay_ticks << " tick(s), wave "
            << config.wave_size << "...\n";
  const fleet::FleetRunResult result = fleet_run.Run();
  const fleet::FleetRunStats& stats = result.stats;

  int64_t delivered = 0, dropped = 0, submitted = 0;
  int64_t relayed_frames = 0, positives = 0, misses = 0, breaches = 0;
  int64_t frames_scored = 0, frames_skipped = 0, horizons_reused = 0;
  int64_t local_mflops = 0, saved_mflops = 0;
  int64_t recal_swaps = 0, recal_triggers = 0, recal_refusals = 0;
  int64_t streams_with_swaps = 0;
  for (const auto& stream : result.streams) {
    delivered += stream.relay.orders_delivered;
    dropped += stream.relay.orders_dropped;
    submitted += stream.relay.orders_submitted;
    relayed_frames += stream.marshaller.frames_relayed;
    positives += stream.audit_positives;
    misses += stream.audit_misses;
    breaches += stream.audit_breaches;
    frames_scored += stream.marshaller.frames_scored;
    frames_skipped += stream.marshaller.frames_skipped;
    horizons_reused += stream.marshaller.horizons_reused;
    local_mflops += stream.marshaller.local_mflops;
    saved_mflops += stream.marshaller.saved_mflops;
    recal_swaps += stream.recal_swaps;
    recal_triggers +=
        stream.recal_triggers_breach + stream.recal_triggers_drift;
    recal_refusals +=
        stream.recal_refusals_cooldown + stream.recal_refusals_min_samples;
    if (stream.recal_swaps > 0) ++streams_with_swaps;
  }
  TablePrinter table({"Metric", "Value"});
  table.AddRow({"streams", Fmt(stats.streams)});
  table.AddRow({"ticks", Fmt(stats.ticks)});
  table.AddRow({"frames pushed", Fmt(stats.frames_pushed)});
  table.AddRow({"inference requests", Fmt(stats.requests)});
  table.AddRow({"batches (full/deadline/final)",
                Fmt(stats.flush_full) + "/" + Fmt(stats.flush_deadline) +
                    "/" + Fmt(stats.flush_final)});
  table.AddRow({"batch fill mean", Fmt(stats.batch_fill_mean, 2)});
  table.AddRow({"elapsed seconds", Fmt(stats.elapsed_seconds, 3)});
  table.AddRow({"streams/sec", Fmt(stats.streams_per_sec, 1)});
  table.AddRow({"frames/sec", Fmt(stats.frames_per_sec, 0)});
  table.AddRow({"p50/p99 frame us",
                Fmt(stats.p50_frame_us, 2) + "/" + Fmt(stats.p99_frame_us, 2)});
  table.AddRow({"relay delivered/dropped/submitted",
                Fmt(delivered) + "/" + Fmt(dropped) + "/" + Fmt(submitted)});
  table.AddRow({"relayed frames", Fmt(relayed_frames)});
  table.AddRow({"audit positives/misses", Fmt(positives) + "/" + Fmt(misses)});
  table.AddRow({"audit breaches", Fmt(breaches)});
  if (config.runner.collect_policy.kind != sched::CollectPolicyKind::kFull) {
    table.AddRow({"collect policy",
                  sched::CollectPolicyName(config.runner.collect_policy)});
    table.AddRow({"frames scored/skipped",
                  Fmt(frames_scored) + "/" + Fmt(frames_skipped)});
    table.AddRow({"horizons reused", Fmt(horizons_reused)});
    table.AddRow({"local/saved MFLOPs",
                  Fmt(local_mflops) + "/" + Fmt(saved_mflops)});
  }
  if (config.recal) {
    table.AddRow({"recal triggers/refusals/swaps",
                  Fmt(recal_triggers) + "/" + Fmt(recal_refusals) + "/" +
                      Fmt(recal_swaps)});
    table.AddRow({"streams with swaps", Fmt(streams_with_swaps)});
  }
  table.AddRow({"total cost USD", Fmt(stats.total_cost_usd, 4)});
  if (config.budget_cap_microusd > 0) {
    table.AddRow({"budget breach tick", Fmt(stats.budget_breach_tick)});
  }
  table.Print(std::cout);

  if (health_report || !health_out.empty()) {
    const fleet::FleetHealthReport report = fleet::BuildHealthReport(result);
    if (health_report) {
      std::cout << "\n" << fleet::HealthReportText(report, 10);
    }
    if (!health_out.empty()) {
      std::ofstream out(health_out);
      for (const fleet::StreamHealth& health : report.streams) {
        out << fleet::StreamHealthJson(health) << "\n";
      }
      if (!out) {
        std::cerr << "cannot write " << health_out << "\n";
        return 1;
      }
      std::cerr << "health report written to " << health_out << "\n";
    }
  }

  const int verify = static_cast<int>(
      std::min<int64_t>(verify_solo.value(), config.num_streams));
  if (verify > 0) {
    std::cerr << "verifying " << verify << " stream(s) against solo runs...\n";
    for (int s = 0; s < verify; ++s) {
      const fleet::FleetStreamResult solo = fleet_run.RunStreamSolo(s);
      if (!fleet::SameStreamResult(result.streams[static_cast<size_t>(s)],
                                   solo)) {
        std::cerr << "stream " << s
                  << ": fleet result DIFFERS from solo run\n";
        return 1;
      }
    }
    std::cout << "verify-solo: " << verify
              << " stream(s) bit-identical to solo runs\n";
  }
  return 0;
}

// `explain`: deterministically replays one stream (the solo path of the
// fleet state machine, bit-identical to the batched run by the DESIGN.md
// §5g contract) with a provenance ring large enough to hold every
// boundary, then prints the causal chain of the requested decision.
int RunExplain(const Flags& flags) {
  const std::string task_name = flags.GetString("task", "TA10");
  const auto task = data::FindTask(task_name);
  if (!task.ok()) {
    std::cerr << task.status() << "\n";
    return 1;
  }
  const auto decision = flags.GetInt("decision", -1);
  const auto frame = flags.GetInt("frame", -1);
  const auto stream_flag = flags.GetInt("stream", 0);
  const auto seed = flags.GetInt("seed", 42);
  const auto frames = flags.GetInt("frames", 0);
  const auto confidence = flags.GetDouble("confidence", 0.9);
  const auto coverage = flags.GetDouble("coverage", 0.5);
  const auto fault_seed = flags.GetInt("fault-seed", 1234);
  for (const auto* status :
       {&decision.status(), &frame.status(), &stream_flag.status(),
        &seed.status(), &frames.status(), &confidence.status(),
        &coverage.status(), &fault_seed.status()}) {
    if (!status->ok()) {
      std::cerr << *status << "\n";
      return 1;
    }
  }
  if (decision.value() < 0 && frame.value() < 0) {
    std::cerr << "explain: pass --decision=ID (from a metric exemplar or "
                 "breach log) or --frame=F\n";
    return 1;
  }
  const std::string mode_name = flags.GetString("degraded-mode", "drop");
  if (mode_name != "drop" && mode_name != "buffer") {
    std::cerr << "--degraded-mode must be drop or buffer\n";
    return 1;
  }
  const std::string recal_name = flags.GetString("recal", "off");
  if (recal_name != "on" && recal_name != "off") {
    std::cerr << "--recal must be on or off\n";
    return 1;
  }
  const auto backend =
      nn::ParseBackendKind(flags.GetString("nn-backend", "blocked"));
  if (!backend.ok()) {
    std::cerr << backend.status() << "\n";
    return 1;
  }
  const auto policy =
      sched::ParseCollectPolicy(flags.GetString("collect-policy", "full"));
  if (!policy.ok()) {
    std::cerr << policy.status() << "\n";
    return 1;
  }

  const int64_t stream_index =
      decision.value() >= 0
          ? obs::StreamProvenance::StreamOfId(decision.value())
          : stream_flag.value();
  if (stream_index < 0 || stream_index > 1000000) {
    std::cerr << "explain: implausible stream index " << stream_index
              << " (bad --decision id?)\n";
    return 1;
  }

  fleet::FleetConfig config;
  config.num_streams = static_cast<int>(stream_index) + 1;
  config.base_seed = static_cast<uint64_t>(seed.value());
  config.frames_per_stream = frames.value();
  config.confidence = confidence.value();
  config.coverage = coverage.value();
  config.fault_profile = flags.GetString("fault-profile", "none");
  config.fault_seed = static_cast<uint64_t>(fault_seed.value());
  config.degraded_mode = mode_name == "buffer"
                             ? cloud::DegradedMode::kBufferAndReplay
                             : cloud::DegradedMode::kDropWithAccounting;
  config.recal = recal_name == "on";
  config.collect_tick_latency = false;
  config.runner.seed = config.base_seed;
  config.runner.nn_backend = backend.value();
  config.runner.collect_policy = policy.value();
  // A solo replay must retain every boundary: one ring slot per possible
  // anchor of the stream (boundaries are spaced >= 1 frame apart).
  sim::DatasetSpec spec = sim::MakeDatasetSpec(task.value().dataset);
  const int64_t spec_frames =
      config.frames_per_stream > 0 ? config.frames_per_stream
                                   : spec.num_frames;
  config.provenance = true;
  config.provenance_ring = static_cast<size_t>(spec_frames) + 2;
  config.collect_provenance_records = true;

  std::cerr << "replaying stream " << stream_index << " of " << task_name
            << " at seed " << config.base_seed << "...\n";
  fleet::StreamFleet fleet_run(task.value(), config);
  const fleet::FleetStreamResult result =
      fleet_run.RunStreamSolo(static_cast<int>(stream_index));

  const fleet::StreamSettings settings =
      fleet_run.DeriveStreamSettings(static_cast<int>(stream_index));
  obs::StreamProvenance ids(stream_index, settings.spec.collection_window,
                            settings.spec.horizon, 2);
  const int64_t want_boundary =
      decision.value() >= 0
          ? obs::StreamProvenance::BoundaryOfId(decision.value())
          : ids.BoundaryForFrame(frame.value());

  const obs::ProvenanceRecord* hit = nullptr;
  for (const obs::ProvenanceRecord& record : result.provenance_records) {
    if (record.boundary_index == want_boundary) hit = &record;
  }
  if (hit == nullptr) {
    std::cerr << "explain: boundary " << want_boundary << " of stream "
              << stream_index << " was never marshalled (the stream has "
              << result.provenance_boundaries
              << " boundaries; check --task/--seed/--frames match the run "
                 "being explained)\n";
    return 1;
  }
  std::cout << ProvenanceRecordText(*hit);
  const std::string json_out = flags.GetString("json-out", "");
  if (!json_out.empty()) {
    std::ofstream out(json_out);
    out << ProvenanceRecordJson(*hit) << "\n";
    if (!out) {
      std::cerr << "cannot write " << json_out << "\n";
      return 1;
    }
    std::cerr << "decision JSON written to " << json_out << "\n";
  }
  return 0;
}

// Writes/prints the telemetry collected by the subcommand. Returns 1 on
// I/O failure (over the subcommand's own exit code only when it succeeded).
int FlushTelemetry(const Flags& flags) {
  int rc = 0;
  const std::string metrics_out = flags.GetString("metrics-out", "");
  if (!metrics_out.empty()) {
    const auto status = obs::WriteMetricsJson(
        obs::MetricsRegistry::Global().Snapshot(), metrics_out);
    if (!status.ok()) {
      std::cerr << status << "\n";
      rc = 1;
    } else {
      std::cerr << "metrics written to " << metrics_out << "\n";
    }
  }
  const std::string trace_out = flags.GetString("trace-out", "");
  if (!trace_out.empty()) {
    const auto status =
        obs::WriteTraceJson(obs::TraceBuffer::Global(), trace_out);
    if (!status.ok()) {
      std::cerr << status << "\n";
      rc = 1;
    } else {
      std::cerr << "trace written to " << trace_out << "\n";
    }
  }
  const std::string openmetrics_out = flags.GetString("openmetrics-out", "");
  if (!openmetrics_out.empty()) {
    const auto status = obs::WriteOpenMetrics(
        obs::MetricsRegistry::Global().Snapshot(), openmetrics_out);
    if (!status.ok()) {
      std::cerr << status << "\n";
      rc = 1;
    } else {
      std::cerr << "OpenMetrics written to " << openmetrics_out << "\n";
    }
  }
  const std::string log_out = flags.GetString("log-out", "");
  if (!log_out.empty()) {
    std::ofstream out(log_out);
    if (out) out << obs::Logger::Global().ToJsonl();
    if (!out) {
      std::cerr << "cannot write " << log_out << "\n";
      rc = 1;
    } else {
      std::cerr << "structured log written to " << log_out << "\n";
    }
  }
  if (flags.GetBool("print-metrics", false).value_or(false)) {
    std::cout << "\n=== Telemetry snapshot ===\n";
    obs::PrintMetricsTable(obs::MetricsRegistry::Global().Snapshot(),
                           std::cout);
  }
  return rc;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return Usage();
  const std::string command = argv[1];
  if (command == "help" || command == "--help" || command == "-h") {
    PrintUsage(std::cout);
    return 0;
  }
  const auto flags = Flags::Parse(argc - 2, argv + 2);
  if (!flags.ok()) {
    std::cerr << flags.status() << "\n";
    return 2;
  }
  const std::string log_level = flags.value().GetString("log-level", "info");
  obs::LogLevel min_level = obs::LogLevel::kInfo;
  if (!obs::ParseLogLevel(log_level, &min_level)) {
    std::cerr << "bad --log-level: " << log_level
              << " (want debug|info|warn|error)\n";
    return 2;
  }
  obs::Logger::Global().set_min_level(min_level);
  // Rate-limited suppressions surface as the log.suppressed counter (per
  // component) in every metrics export.
  obs::Logger::Global().set_metrics(&obs::MetricsRegistry::Global());
  int rc = -1;
  if (command == "stats") rc = RunStats(flags.value());
  if (command == "generate") rc = RunGenerate(flags.value());
  if (command == "evaluate") rc = RunEvaluate(flags.value());
  if (command == "sweep") rc = RunSweep(flags.value());
  if (command == "hypersearch") rc = RunHyperSearch(flags.value());
  if (command == "fleet") rc = RunFleet(flags.value());
  if (command == "explain") rc = RunExplain(flags.value());
  if (rc < 0) return Usage();
  const int telemetry_rc = FlushTelemetry(flags.value());
  return rc != 0 ? rc : telemetry_rc;
}
