// Local-compute cost accounting for collection scheduling: estimates, in
// MFLOPs, what one stream frame of feature extraction and one prediction
// boundary's EventHit forward pass cost — the quantities a CollectPolicy
// saves. Deliberately a model, not a measurement: the sim's detector-style
// features stand in for a YOLOv3-class extractor (the same substitution
// the cloud cost model makes, DESIGN.md §2), so the accounting uses that
// extractor's arithmetic cost. Counted into the sched.flops.* metrics by
// the marshaller and into the bench_pareto Pareto curve.
#ifndef EVENTHIT_SCHED_COST_MODEL_H_
#define EVENTHIT_SCHED_COST_MODEL_H_

#include <cstdint>

namespace eventhit::sched {

/// YOLOv3-608-class single-frame extraction cost (~65.9 GFLOPs), matching
/// the ~140 FPS GPU extraction stage of the pipeline cost model.
inline constexpr double kFeatureExtractMflopsPerFrame = 65900.0;

/// Per-segment local cost rates. Defaults model extraction only; callers
/// that know the model architecture fill in the forward-pass cost with
/// EstimateForwardMflops.
struct LocalCostModel {
  double feature_mflops_per_frame = kFeatureExtractMflopsPerFrame;
  double forward_mflops_per_boundary = 0.0;
};

/// Estimated MFLOPs of one EventHit forward pass: an M-step LSTM over
/// D-dimensional inputs, the shared trunk, and per-event existence +
/// occupancy heads (2 FLOPs per multiply-accumulate).
double EstimateForwardMflops(int collection_window, int feature_dim,
                             int lstm_hidden, int shared_dim,
                             int event_hidden, int num_events, int horizon);

}  // namespace eventhit::sched

#endif  // EVENTHIT_SCHED_COST_MODEL_H_
