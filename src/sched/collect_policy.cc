#include "sched/collect_policy.h"

#include <cmath>
#include <cstdio>

#include "common/check.h"

namespace eventhit::sched {

namespace {

class FullPolicy : public CollectPolicy {
 public:
  std::string name() const override { return "full"; }
  bool ShouldScore(int64_t) const override { return true; }
  void Observe(const ScoreObservation&) override {}
  int64_t CurrentStride() const override { return 1; }
  void Reset() override {}
  std::unique_ptr<CollectPolicy> Clone() const override {
    return std::make_unique<FullPolicy>();
  }
};

class DutyPolicy : public CollectPolicy {
 public:
  explicit DutyPolicy(const CollectPolicySpec& spec)
      : spec_(spec),
        stride_(std::max<int64_t>(1, std::llround(1.0 / spec.duty))) {}

  std::string name() const override {
    char buffer[32];
    std::snprintf(buffer, sizeof(buffer), "duty:%.2f", spec_.duty);
    return buffer;
  }
  bool ShouldScore(int64_t horizon_index) const override {
    return horizon_index % stride_ == 0;
  }
  void Observe(const ScoreObservation&) override {}
  int64_t CurrentStride() const override { return stride_; }
  void Reset() override {}
  std::unique_ptr<CollectPolicy> Clone() const override {
    return std::make_unique<DutyPolicy>(spec_);
  }

 private:
  CollectPolicySpec spec_;
  int64_t stride_;
};

class AdaptivePolicy : public CollectPolicy {
 public:
  explicit AdaptivePolicy(const CollectPolicySpec& spec) : spec_(spec) {
    EVENTHIT_CHECK_GT(spec_.quiet_stride, 0);
    EVENTHIT_CHECK_GT(spec_.quiet_after, 0);
    EVENTHIT_CHECK_LE(spec_.low_water, spec_.high_water);
  }

  std::string name() const override { return "adaptive"; }

  bool ShouldScore(int64_t horizon_index) const override {
    if (!throttled_) return true;
    return (horizon_index - throttle_anchor_) % spec_.quiet_stride == 0;
  }

  void Observe(const ScoreObservation& observation) override {
    if (observation.any_open ||
        observation.max_existence >= spec_.high_water) {
      // Snap back to full rate the moment anything stirs.
      throttled_ = false;
      quiet_run_ = 0;
      return;
    }
    if (observation.max_existence < spec_.low_water) {
      if (!throttled_ && ++quiet_run_ >= spec_.quiet_after) {
        throttled_ = true;
        throttle_anchor_ = observation.horizon_index;
      }
      return;
    }
    // Inside the hysteresis band: hold the current mode, and restart the
    // quiet run (the stretch is not unambiguously quiet).
    quiet_run_ = 0;
  }

  int64_t CurrentStride() const override {
    return throttled_ ? spec_.quiet_stride : 1;
  }

  void Reset() override {
    throttled_ = false;
    quiet_run_ = 0;
    throttle_anchor_ = 0;
  }

  std::unique_ptr<CollectPolicy> Clone() const override {
    return std::make_unique<AdaptivePolicy>(spec_);
  }

 private:
  CollectPolicySpec spec_;
  bool throttled_ = false;
  int quiet_run_ = 0;
  int64_t throttle_anchor_ = 0;
};

}  // namespace

std::unique_ptr<CollectPolicy> MakeCollectPolicy(
    const CollectPolicySpec& spec) {
  switch (spec.kind) {
    case CollectPolicyKind::kFull:
      return std::make_unique<FullPolicy>();
    case CollectPolicyKind::kDuty:
      EVENTHIT_CHECK_GT(spec.duty, 0.0);
      EVENTHIT_CHECK_LE(spec.duty, 1.0);
      return std::make_unique<DutyPolicy>(spec);
    case CollectPolicyKind::kAdaptive:
      return std::make_unique<AdaptivePolicy>(spec);
  }
  EVENTHIT_CHECK(false);
  return nullptr;
}

Result<CollectPolicySpec> ParseCollectPolicy(const std::string& text) {
  CollectPolicySpec spec;
  if (text.empty() || text == "full") {
    spec.kind = CollectPolicyKind::kFull;
    return spec;
  }
  if (text == "adaptive") {
    spec.kind = CollectPolicyKind::kAdaptive;
    return spec;
  }
  const std::string duty_prefix = "duty:";
  if (text.rfind(duty_prefix, 0) == 0) {
    const std::string arg = text.substr(duty_prefix.size());
    char* end = nullptr;
    const double duty = std::strtod(arg.c_str(), &end);
    if (arg.empty() || end == nullptr || *end != '\0' ||
        !(duty > 0.0 && duty <= 1.0)) {
      return InvalidArgumentError("duty cycle must be in (0, 1]: '" + arg +
                                  "'");
    }
    spec.kind = CollectPolicyKind::kDuty;
    spec.duty = duty;
    return spec;
  }
  return InvalidArgumentError(
      "unknown collect policy '" + text +
      "' (expected full, duty:<d> or adaptive)");
}

std::string CollectPolicyName(const CollectPolicySpec& spec) {
  return MakeCollectPolicy(spec)->name();
}

}  // namespace eventhit::sched
