#include "sched/cost_model.h"

namespace eventhit::sched {

double EstimateForwardMflops(int collection_window, int feature_dim,
                             int lstm_hidden, int shared_dim,
                             int event_hidden, int num_events, int horizon) {
  const double m = collection_window;
  const double d = feature_dim;
  const double h = lstm_hidden;
  const double s = shared_dim;
  const double e = event_hidden;
  const double k = num_events;
  const double occ = horizon;
  // LSTM: 4 gates of h x (d + h + 1) MACs per step, plus elementwise
  // gate arithmetic (~10 FLOPs per hidden unit per step).
  const double lstm = m * (2.0 * 4.0 * h * (d + h + 1.0) + 10.0 * h);
  // Shared trunk h -> s, then per event: s -> e, e -> 1 existence and
  // e -> occ occupancy scores (plus sigmoids, ~4 FLOPs each).
  const double trunk = 2.0 * h * s;
  const double heads =
      k * (2.0 * s * e + 2.0 * e * (1.0 + occ) + 4.0 * (1.0 + occ));
  return (lstm + trunk + heads) * 1e-6;
}

}  // namespace eventhit::sched
