// Variable-rate collection scheduling: decides, per prediction boundary,
// whether the marshaller runs feature extraction + a model forward pass
// ("scores" the boundary) or reuses its last decision ("skips" it). The
// local-compute analogue of the paper's cloud-budget marshalling — quiet
// stretches of a stream should not pay full-rate extraction cost.
//
// Three policies:
//   full      — score every boundary (today's behaviour; never installed
//               on the marshaller, so the legacy path stays untouched).
//   duty:<d>  — fixed duty cycle: score every round(1/d)-th boundary.
//   adaptive  — hysteresis on recent existence scores: after
//               `quiet_after` consecutive scored boundaries whose max
//               existence score stays below `low_water` (with no interval
//               open), drop to scoring every `quiet_stride`-th boundary;
//               snap back to full rate the moment a scored boundary sees
//               max existence >= `high_water` or any interval opens.
//
// Determinism contract: a policy's state advances only in Observe(),
// which is fed scored-boundary outcomes in stream order, so the schedule
// is a pure function of the observation sequence — the same for a solo
// stream and a batched fleet run (the marshaller enforces that pending
// predictions drain before the next boundary whenever a policy is
// installed).
#ifndef EVENTHIT_SCHED_COLLECT_POLICY_H_
#define EVENTHIT_SCHED_COLLECT_POLICY_H_

#include <cstdint>
#include <memory>
#include <string>

#include "common/status.h"

namespace eventhit::sched {

enum class CollectPolicyKind { kFull, kDuty, kAdaptive };

/// Value-type description of a policy; copyable through configs (the CLI,
/// eval::RunnerConfig, fleet::FleetConfig) and turned into a live policy
/// with MakeCollectPolicy.
struct CollectPolicySpec {
  CollectPolicyKind kind = CollectPolicyKind::kFull;
  /// kDuty: fraction of boundaries scored, in (0, 1]. Stride is
  /// max(1, round(1/duty)).
  double duty = 1.0;
  /// kAdaptive hysteresis band on the max existence score.
  double low_water = 0.15;
  double high_water = 0.30;
  /// kAdaptive: consecutive quiet scored boundaries before throttling.
  int quiet_after = 3;
  /// kAdaptive: stride while throttled (score every quiet_stride-th).
  int quiet_stride = 4;
};

/// What a scored boundary looked like, fed back into the policy.
struct ScoreObservation {
  /// 0-based index of the scored boundary in the stream's boundary
  /// sequence.
  int64_t horizon_index = 0;
  /// max_k existence score b_k of the decision (0 for strategies that do
  /// not expose scores; such strategies only drive snap-back via
  /// `any_open`).
  double max_existence = 0.0;
  /// True when the decision predicted any event present (an interval is
  /// open or about to open).
  bool any_open = false;
};

class CollectPolicy {
 public:
  virtual ~CollectPolicy() = default;

  /// Display name ("full", "duty:0.50", "adaptive").
  virtual std::string name() const = 0;

  /// Whether boundary `horizon_index` should run inference. Const: state
  /// advances only in Observe, so callers may probe ahead (the
  /// marshaller's feature-skip check does).
  virtual bool ShouldScore(int64_t horizon_index) const = 0;

  /// Feeds back the outcome of a *scored* boundary, in stream order.
  virtual void Observe(const ScoreObservation& observation) = 0;

  /// Effective collection stride right now (1 = full rate); exported as
  /// the sched.policy.stride gauge.
  virtual int64_t CurrentStride() const = 0;

  virtual void Reset() = 0;

  /// Fresh policy with the same spec and reset state (per-stream copies
  /// in the fleet).
  virtual std::unique_ptr<CollectPolicy> Clone() const = 0;
};

/// Instantiates the policy described by `spec` (including kFull, for
/// callers that want a uniform object; the marshaller treats a null
/// policy as full-rate).
std::unique_ptr<CollectPolicy> MakeCollectPolicy(const CollectPolicySpec& spec);

/// Parses the CLI syntax: "full", "duty:<d>" with d in (0, 1], or
/// "adaptive".
Result<CollectPolicySpec> ParseCollectPolicy(const std::string& text);

/// Canonical display name of a spec ("full", "duty:0.50", "adaptive").
std::string CollectPolicyName(const CollectPolicySpec& spec);

}  // namespace eventhit::sched

#endif  // EVENTHIT_SCHED_COLLECT_POLICY_H_
