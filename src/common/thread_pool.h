// Deterministic parallel-execution substrate.
//
// A fixed pool of worker threads plus a chunked, work-stealing-free
// ParallelFor: the index range [0, n) is split into exactly `threads`
// contiguous chunks whose boundaries depend only on (n, threads), so the
// set of indices each logical worker touches is reproducible run to run.
// Combined with per-stream derived seeds (SplitSeed in common/rng.h) this
// lets every parallelised stage produce byte-identical output to its
// serial counterpart: workers never share RNG state and every result is
// written to a caller-indexed slot, with any reduction done serially in
// index order afterwards.
//
// Exceptions thrown inside ParallelFor bodies are captured per chunk and
// rethrown on the calling thread; when several chunks throw, the one with
// the lowest chunk index wins (again: deterministic).
#ifndef EVENTHIT_COMMON_THREAD_POOL_H_
#define EVENTHIT_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace eventhit {

/// Fixed-size worker pool. `threads == 1` is the serial fallback: no worker
/// threads are spawned and every body runs inline on the calling thread.
/// The pool is not reentrant — a ParallelFor body must not submit work to
/// the pool that owns it (nested stages run serially instead; see
/// ExecutionContext::Inner).
class ThreadPool {
 public:
  /// Spawns `threads - 1` workers; the calling thread executes chunk 0 of
  /// every ParallelFor, so `threads` is the true concurrency level.
  /// Requires threads >= 1.
  explicit ThreadPool(int threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int threads() const { return threads_; }

  /// Runs body(i) for every i in [0, n). Chunk c covers the contiguous
  /// range [c*n/threads, (c+1)*n/threads). Blocks until all chunks finish;
  /// rethrows the lowest-chunk-index exception, if any.
  void ParallelFor(size_t n, const std::function<void(size_t)>& body);

  /// Chunk-granular form: body(chunk, begin, end) once per non-empty chunk.
  /// `chunk` is a stable id in [0, threads) usable for per-chunk scratch
  /// state or derived seeds.
  void ParallelForChunked(
      size_t n, const std::function<void(int, size_t, size_t)>& body);

  /// Thread count to use when the caller asked for "auto" (<= 0):
  /// EVENTHIT_THREADS if set, else std::thread::hardware_concurrency.
  /// Always >= 1: a non-numeric, zero, negative, out-of-range or
  /// trailing-junk EVENTHIT_THREADS is ignored, and a zero
  /// hardware_concurrency() (the standard's "unknown" answer) clamps to
  /// the serial fallback instead of poisoning chunk math downstream.
  static int DefaultThreads();

  /// Pure resolution logic behind DefaultThreads, exposed for testing:
  /// `env` is the raw EVENTHIT_THREADS value (nullptr = unset) and
  /// `hardware` the hardware_concurrency() answer (0 = unknown).
  static int ResolveDefaultThreads(const char* env, unsigned hardware);

 private:
  struct Job {
    const std::function<void(int, size_t, size_t)>* body = nullptr;
    size_t n = 0;
    uint64_t epoch = 0;
  };

  void WorkerLoop(int worker_index);
  void RunChunk(const Job& job, int chunk);
  void ChunkBounds(size_t n, int chunk, size_t* begin, size_t* end) const;

  const int threads_;
  std::vector<std::thread> workers_;

  std::mutex mu_;
  std::condition_variable work_ready_;
  std::condition_variable work_done_;
  Job job_;                 // Guarded by mu_.
  uint64_t epoch_ = 0;      // Incremented per ParallelFor; guarded by mu_.
  int pending_ = 0;         // Worker chunks not yet finished; guarded by mu_.
  bool shutdown_ = false;   // Guarded by mu_.
  std::vector<std::exception_ptr> chunk_errors_;  // One slot per chunk.
  std::mutex submit_mu_;    // Serialises concurrent ParallelFor callers.
};

/// Carries the parallelism settings of one experiment: a thread count, a
/// base seed from which per-task RNG streams are derived, and the shared
/// pool. Cheap to copy (the pool is shared). Default-constructed contexts
/// are serial, so every existing call site keeps its exact behaviour.
class ExecutionContext {
 public:
  /// `threads <= 0` resolves via ThreadPool::DefaultThreads().
  explicit ExecutionContext(int threads = 1, uint64_t base_seed = 0);

  int threads() const { return pool_ ? pool_->threads() : 1; }
  uint64_t base_seed() const { return base_seed_; }

  /// Deterministic per-task seed: depends only on (base_seed, stream_id),
  /// never on scheduling. See SplitSeed in common/rng.h.
  uint64_t SeedFor(uint64_t stream_id) const;

  /// The pool backing parallel sections; nullptr when serial.
  ThreadPool* pool() const { return pool_.get(); }

  /// Runs body(i) over [0, n) — through the pool when threads() > 1,
  /// inline otherwise. The single entry point used by all wired-in stages.
  void ParallelFor(size_t n, const std::function<void(size_t)>& body) const;

  /// Serial context for stages nested inside a ParallelFor body (the pool
  /// is not reentrant). Keeps the base seed so derived streams line up.
  ExecutionContext Inner() const {
    return ExecutionContext(1, base_seed_);
  }

 private:
  uint64_t base_seed_ = 0;
  std::shared_ptr<ThreadPool> pool_;  // Null when threads == 1.
};

}  // namespace eventhit

#endif  // EVENTHIT_COMMON_THREAD_POOL_H_
