#include "common/csv_writer.h"

#include <cstdio>

#include "common/check.h"

namespace eventhit {

std::string CsvEscape(const std::string& field) {
  const bool needs_quoting =
      field.find_first_of(",\"\n\r") != std::string::npos;
  if (!needs_quoting) return field;
  std::string out = "\"";
  for (char c : field) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

CsvWriter::CsvWriter(std::vector<std::string> header)
    : header_(std::move(header)) {
  EVENTHIT_CHECK(!header_.empty());
}

void CsvWriter::AddRow(std::vector<std::string> cells) {
  EVENTHIT_CHECK_EQ(cells.size(), header_.size());
  rows_.push_back(std::move(cells));
}

std::string CsvWriter::ToString() const {
  std::string out;
  auto append_row = [&out](const std::vector<std::string>& row) {
    for (size_t c = 0; c < row.size(); ++c) {
      if (c > 0) out += ',';
      out += CsvEscape(row[c]);
    }
    out += '\n';
  };
  append_row(header_);
  for (const auto& row : rows_) append_row(row);
  return out;
}

Status CsvWriter::WriteFile(const std::string& path) const {
  std::FILE* file = std::fopen(path.c_str(), "wb");
  if (file == nullptr) {
    return InvalidArgumentError("cannot open for writing: " + path);
  }
  const std::string content = ToString();
  const size_t written = std::fwrite(content.data(), 1, content.size(), file);
  std::fclose(file);
  if (written != content.size()) {
    return InternalError("short write: " + path);
  }
  return OkStatus();
}

}  // namespace eventhit
