// Deterministic random number generation.
//
// Every stochastic component of the library takes an explicit seed and owns
// its own Rng instance, so experiments are reproducible and trials are
// independent by construction. There is no global RNG state.
#ifndef EVENTHIT_COMMON_RNG_H_
#define EVENTHIT_COMMON_RNG_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace eventhit {

/// xoshiro256** PRNG seeded via SplitMix64. Fast, high quality, and
/// deterministic across platforms (unlike std::normal_distribution, whose
/// output is implementation-defined).
class Rng {
 public:
  /// Seeds the generator. Distinct seeds yield independent-looking streams;
  /// the same seed always reproduces the same stream.
  explicit Rng(uint64_t seed);

  /// Next raw 64-bit value.
  uint64_t NextUint64();

  /// Uniform double in [0, 1).
  double Uniform();

  /// Uniform double in [lo, hi).
  double Uniform(double lo, double hi);

  /// Uniform integer in [lo, hi] (inclusive). Requires lo <= hi.
  int64_t UniformInt(int64_t lo, int64_t hi);

  /// Standard normal via Box–Muller (deterministic, no cached spare).
  double Gaussian();

  /// Normal with the given mean and standard deviation.
  double Gaussian(double mean, double stddev);

  /// Exponential with the given mean (= 1/rate). Requires mean > 0.
  double Exponential(double mean);

  /// Log-normal such that the *underlying normal* has parameters mu, sigma.
  double LogNormal(double mu, double sigma);

  /// Poisson-distributed count with the given mean (Knuth for small means,
  /// normal approximation above 64).
  int64_t Poisson(double mean);

  /// Bernoulli trial with success probability p.
  bool Bernoulli(double p);

  /// Fisher–Yates shuffle of `values`.
  template <typename T>
  void Shuffle(std::vector<T>& values) {
    for (size_t i = values.size(); i > 1; --i) {
      const size_t j = static_cast<size_t>(UniformInt(0, static_cast<int64_t>(i) - 1));
      std::swap(values[i - 1], values[j]);
    }
  }

  /// Derives a child seed; children with distinct `stream` values are
  /// decorrelated from each other and from the parent.
  uint64_t Fork(uint64_t stream);

 private:
  uint64_t state_[4];
};

/// SplitMix64 step, exposed for seed derivation in tests.
uint64_t SplitMix64(uint64_t& state);

/// Derives a child seed from (seed, stream_id) with no shared generator
/// state: a pure function, so parallel workers can seed their own Rng for
/// stream `stream_id` and reproduce exactly what a serial loop would draw.
/// Distinct stream ids yield decorrelated streams (two SplitMix64 rounds
/// over the golden-ratio-scrambled pair).
uint64_t SplitSeed(uint64_t seed, uint64_t stream_id);

}  // namespace eventhit

#endif  // EVENTHIT_COMMON_RNG_H_
