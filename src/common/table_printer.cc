#include "common/table_printer.h"

#include <cstdio>
#include <iomanip>

#include "common/check.h"

namespace eventhit {

TablePrinter::TablePrinter(std::vector<std::string> header)
    : header_(std::move(header)) {
  EVENTHIT_CHECK(!header_.empty());
}

void TablePrinter::AddRow(std::vector<std::string> cells) {
  EVENTHIT_CHECK_EQ(cells.size(), header_.size());
  rows_.push_back(std::move(cells));
}

void TablePrinter::Print(std::ostream& os) const {
  std::vector<size_t> widths(header_.size());
  for (size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& row) {
    for (size_t c = 0; c < row.size(); ++c) {
      os << (c == 0 ? "| " : " | ") << std::left << std::setw(static_cast<int>(widths[c]))
         << row[c];
    }
    os << " |\n";
  };
  print_row(header_);
  for (size_t c = 0; c < header_.size(); ++c) {
    os << (c == 0 ? "|-" : "-|-") << std::string(widths[c], '-');
  }
  os << "-|\n";
  for (const auto& row : rows_) print_row(row);
}

std::string Fmt(double value, int digits) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.*f", digits, value);
  return buffer;
}

std::string Fmt(int64_t value) {
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%lld", static_cast<long long>(value));
  return buffer;
}

}  // namespace eventhit
