// CSV export of result tables, so the bench harness can emit plot-ready
// series alongside its ASCII tables (EVENTHIT_CSV_DIR).
#ifndef EVENTHIT_COMMON_CSV_WRITER_H_
#define EVENTHIT_COMMON_CSV_WRITER_H_

#include <string>
#include <vector>

#include "common/status.h"

namespace eventhit {

/// Accumulates rows and writes an RFC-4180-style CSV file (fields with
/// commas, quotes or newlines are quoted; embedded quotes doubled).
class CsvWriter {
 public:
  explicit CsvWriter(std::vector<std::string> header);

  /// Appends a row; must match the header arity.
  void AddRow(std::vector<std::string> cells);

  size_t num_rows() const { return rows_.size(); }

  /// Serialises the header + rows.
  std::string ToString() const;

  /// Writes to `path` (overwrites).
  Status WriteFile(const std::string& path) const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Escapes one CSV field per RFC 4180.
std::string CsvEscape(const std::string& field);

}  // namespace eventhit

#endif  // EVENTHIT_COMMON_CSV_WRITER_H_
