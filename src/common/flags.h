// Minimal command-line flag parsing for the CLI tools and examples.
// Supports --name=value and --name value forms plus boolean --name.
#ifndef EVENTHIT_COMMON_FLAGS_H_
#define EVENTHIT_COMMON_FLAGS_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/status.h"

namespace eventhit {

/// Parsed command line: flags plus positional arguments, in order.
class Flags {
 public:
  /// Parses argv (excluding argv[0]). Unknown flags are kept; validation is
  /// the caller's job via the typed getters. Fails on malformed input
  /// (e.g. "--" followed by nothing, or a dangling "--name" at the end
  /// being treated as boolean is fine, but "--=x" is rejected).
  static Result<Flags> Parse(int argc, const char* const* argv);

  bool Has(const std::string& name) const;

  /// Typed getters; return `fallback` when absent, error when present but
  /// unparseable.
  std::string GetString(const std::string& name,
                        const std::string& fallback) const;
  Result<int64_t> GetInt(const std::string& name, int64_t fallback) const;
  Result<double> GetDouble(const std::string& name, double fallback) const;
  /// A bare "--name" counts as true; "--name=false|0" as false.
  Result<bool> GetBool(const std::string& name, bool fallback) const;

  const std::vector<std::string>& positional() const { return positional_; }

  /// Names of every flag supplied (for unknown-flag validation).
  std::vector<std::string> FlagNames() const;

 private:
  std::map<std::string, std::string> values_;
  std::vector<std::string> positional_;
};

}  // namespace eventhit

#endif  // EVENTHIT_COMMON_FLAGS_H_
