#include "common/flags.h"

#include <cstdlib>

namespace eventhit {
namespace {

bool LooksLikeFlag(const std::string& arg) {
  return arg.size() > 2 && arg[0] == '-' && arg[1] == '-';
}

}  // namespace

Result<Flags> Flags::Parse(int argc, const char* const* argv) {
  Flags flags;
  for (int i = 0; i < argc; ++i) {
    const std::string arg = argv[i];
    if (!LooksLikeFlag(arg)) {
      flags.positional_.push_back(arg);
      continue;
    }
    const std::string body = arg.substr(2);
    const size_t eq = body.find('=');
    if (eq == 0) {
      return InvalidArgumentError("malformed flag: " + arg);
    }
    if (eq != std::string::npos) {
      flags.values_[body.substr(0, eq)] = body.substr(eq + 1);
      continue;
    }
    // "--name value" when the next token is not itself a flag; otherwise a
    // boolean "--name".
    if (i + 1 < argc && !LooksLikeFlag(argv[i + 1])) {
      flags.values_[body] = argv[i + 1];
      ++i;
    } else {
      flags.values_[body] = "";
    }
  }
  return flags;
}

bool Flags::Has(const std::string& name) const {
  return values_.count(name) > 0;
}

std::string Flags::GetString(const std::string& name,
                             const std::string& fallback) const {
  const auto it = values_.find(name);
  return it == values_.end() ? fallback : it->second;
}

Result<int64_t> Flags::GetInt(const std::string& name,
                              int64_t fallback) const {
  const auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  char* end = nullptr;
  const int64_t value = std::strtoll(it->second.c_str(), &end, 10);
  if (end == it->second.c_str() || *end != '\0') {
    return InvalidArgumentError("flag --" + name +
                                " expects an integer, got: " + it->second);
  }
  return value;
}

Result<double> Flags::GetDouble(const std::string& name,
                                double fallback) const {
  const auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  char* end = nullptr;
  const double value = std::strtod(it->second.c_str(), &end);
  if (end == it->second.c_str() || *end != '\0') {
    return InvalidArgumentError("flag --" + name +
                                " expects a number, got: " + it->second);
  }
  return value;
}

Result<bool> Flags::GetBool(const std::string& name, bool fallback) const {
  const auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  const std::string& value = it->second;
  if (value.empty() || value == "true" || value == "1") return true;
  if (value == "false" || value == "0") return false;
  return InvalidArgumentError("flag --" + name +
                              " expects a boolean, got: " + value);
}

std::vector<std::string> Flags::FlagNames() const {
  std::vector<std::string> names;
  names.reserve(values_.size());
  for (const auto& [name, value] : values_) names.push_back(name);
  return names;
}

}  // namespace eventhit
