#include "common/status.h"

#include <cstdio>
#include <cstdlib>

namespace eventhit {

const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "INVALID_ARGUMENT";
    case StatusCode::kNotFound:
      return "NOT_FOUND";
    case StatusCode::kOutOfRange:
      return "OUT_OF_RANGE";
    case StatusCode::kFailedPrecondition:
      return "FAILED_PRECONDITION";
    case StatusCode::kInternal:
      return "INTERNAL";
    case StatusCode::kUnimplemented:
      return "UNIMPLEMENTED";
  }
  return "UNKNOWN";
}

Status::Status(StatusCode code, std::string message) : code_(code) {
  if (code_ != StatusCode::kOk) {
    message_ = std::move(message);
  }
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeName(code_);
  out += ": ";
  out += message_;
  return out;
}

std::ostream& operator<<(std::ostream& os, const Status& status) {
  return os << status.ToString();
}

Status OkStatus() { return Status(); }
Status InvalidArgumentError(std::string message) {
  return Status(StatusCode::kInvalidArgument, std::move(message));
}
Status NotFoundError(std::string message) {
  return Status(StatusCode::kNotFound, std::move(message));
}
Status OutOfRangeError(std::string message) {
  return Status(StatusCode::kOutOfRange, std::move(message));
}
Status FailedPreconditionError(std::string message) {
  return Status(StatusCode::kFailedPrecondition, std::move(message));
}
Status InternalError(std::string message) {
  return Status(StatusCode::kInternal, std::move(message));
}
Status UnimplementedError(std::string message) {
  return Status(StatusCode::kUnimplemented, std::move(message));
}

namespace internal_status {

void DieBecauseResultError(const Status& status) {
  std::fprintf(stderr, "Result<T>::value() called on error: %s\n",
               status.ToString().c_str());
  std::abort();
}

}  // namespace internal_status
}  // namespace eventhit
