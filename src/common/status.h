// Error-handling primitives for the eventhit library.
//
// The library does not use C++ exceptions (Google style). Fallible
// operations return `Status` (or `Result<T>` when they produce a value).
// Internal invariant violations abort via the CHECK macros in check.h.
#ifndef EVENTHIT_COMMON_STATUS_H_
#define EVENTHIT_COMMON_STATUS_H_

#include <cstdint>
#include <optional>
#include <ostream>
#include <string>
#include <utility>

namespace eventhit {

/// Canonical error categories, mirroring the widely-used subset of
/// absl::StatusCode.
enum class StatusCode : int8_t {
  kOk = 0,
  kInvalidArgument = 1,
  kNotFound = 2,
  kOutOfRange = 3,
  kFailedPrecondition = 4,
  kInternal = 5,
  kUnimplemented = 6,
};

/// Returns a human-readable name for `code` (e.g. "INVALID_ARGUMENT").
const char* StatusCodeName(StatusCode code);

/// A lightweight success-or-error value. Cheap to copy on the OK path
/// (no allocation); error states carry a message.
class Status {
 public:
  /// Constructs an OK status.
  Status() = default;

  /// Constructs a status with the given code and message. A `kOk` code
  /// discards the message.
  Status(StatusCode code, std::string message);

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) noexcept = default;
  Status& operator=(Status&&) noexcept = default;

  /// True iff this status represents success.
  bool ok() const { return code_ == StatusCode::kOk; }

  StatusCode code() const { return code_; }

  /// The error message; empty for OK statuses.
  const std::string& message() const { return message_; }

  /// Renders "OK" or "CODE: message".
  std::string ToString() const;

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_ && a.message_ == b.message_;
  }

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

std::ostream& operator<<(std::ostream& os, const Status& status);

/// Convenience constructors mirroring absl's factory functions.
Status OkStatus();
Status InvalidArgumentError(std::string message);
Status NotFoundError(std::string message);
Status OutOfRangeError(std::string message);
Status FailedPreconditionError(std::string message);
Status InternalError(std::string message);
Status UnimplementedError(std::string message);

/// A value-or-error holder, analogous to absl::StatusOr<T>.
///
/// Accessing `value()` on an error Result aborts the process; callers must
/// test `ok()` first (or use `value_or`).
template <typename T>
class Result {
 public:
  /// Constructs an error Result. `status` must not be OK.
  Result(Status status) : status_(std::move(status)) {}  // NOLINT: implicit
  /// Constructs a success Result holding `value`.
  Result(T value)  // NOLINT: implicit by design, mirrors StatusOr.
      : status_(OkStatus()), value_(std::move(value)) {}

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  /// Returns the held value. Process-fatal if `!ok()`.
  const T& value() const& {
    AbortIfError();
    return *value_;
  }
  T& value() & {
    AbortIfError();
    return *value_;
  }
  T&& value() && {
    AbortIfError();
    return *std::move(value_);
  }

  /// Returns the held value, or `fallback` when this Result is an error.
  T value_or(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

 private:
  void AbortIfError() const;

  Status status_;
  std::optional<T> value_;
};

namespace internal_status {
[[noreturn]] void DieBecauseResultError(const Status& status);
}  // namespace internal_status

template <typename T>
void Result<T>::AbortIfError() const {
  if (!ok()) internal_status::DieBecauseResultError(status_);
}

}  // namespace eventhit

/// Evaluates `expr` (a Status expression) and early-returns it on error.
#define EVENTHIT_RETURN_IF_ERROR(expr)                  \
  do {                                                  \
    ::eventhit::Status eventhit_status_tmp_ = (expr);   \
    if (!eventhit_status_tmp_.ok()) {                   \
      return eventhit_status_tmp_;                      \
    }                                                   \
  } while (false)

#endif  // EVENTHIT_COMMON_STATUS_H_
