#include "common/benchcmp.h"

#include <cctype>
#include <cmath>
#include <cstdlib>
#include <fstream>
#include <sstream>

namespace eventhit {

namespace {

// Minimal recursive-descent parser for the subset of JSON the bench
// binaries emit. Collects numeric leaves under dotted paths.
class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  Status Parse(std::map<std::string, double>* out) {
    out_ = out;
    SkipSpace();
    if (const Status status = ParseObject(""); !status.ok()) return status;
    SkipSpace();
    if (pos_ != text_.size()) {
      return Error("trailing characters after JSON object");
    }
    return OkStatus();
  }

 private:
  Status Error(const std::string& message) const {
    std::ostringstream os;
    os << "bench JSON parse error at offset " << pos_ << ": " << message;
    return InvalidArgumentError(os.str());
  }

  void SkipSpace() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  Status ParseString(std::string* out) {
    if (!Consume('"')) return Error("expected '\"'");
    out->clear();
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return OkStatus();
      if (c == '\\') {
        if (pos_ >= text_.size()) break;
        const char esc = text_[pos_++];
        switch (esc) {
          case '"': out->push_back('"'); break;
          case '\\': out->push_back('\\'); break;
          case '/': out->push_back('/'); break;
          case 'n': out->push_back('\n'); break;
          case 't': out->push_back('\t'); break;
          case 'r': out->push_back('\r'); break;
          case 'b': out->push_back('\b'); break;
          case 'f': out->push_back('\f'); break;
          case 'u':
            // Bench keys are ASCII; keep the escape verbatim.
            out->append("\\u");
            break;
          default: return Error("bad escape");
        }
      } else {
        out->push_back(c);
      }
    }
    return Error("unterminated string");
  }

  Status ParseValue(const std::string& path) {
    SkipSpace();
    if (pos_ >= text_.size()) return Error("unexpected end of input");
    const char c = text_[pos_];
    if (c == '{') return ParseObject(path);
    if (c == '[') return SkipArray();
    if (c == '"') {
      std::string ignored;
      return ParseString(&ignored);
    }
    if (text_.compare(pos_, 4, "true") == 0) { pos_ += 4; return OkStatus(); }
    if (text_.compare(pos_, 5, "false") == 0) { pos_ += 5; return OkStatus(); }
    if (text_.compare(pos_, 4, "null") == 0) { pos_ += 4; return OkStatus(); }
    return ParseNumber(path);
  }

  Status ParseNumber(const std::string& path) {
    const char* start = text_.c_str() + pos_;
    char* end = nullptr;
    const double value = std::strtod(start, &end);
    if (end == start) return Error("expected a value");
    pos_ += static_cast<size_t>(end - start);
    if (!path.empty()) (*out_)[path] = value;
    return OkStatus();
  }

  Status SkipArray() {
    if (!Consume('[')) return Error("expected '['");
    SkipSpace();
    if (Consume(']')) return OkStatus();
    while (true) {
      if (const Status status = ParseValue(""); !status.ok()) return status;
      SkipSpace();
      if (Consume(']')) return OkStatus();
      if (!Consume(',')) return Error("expected ',' or ']'");
      SkipSpace();
    }
  }

  Status ParseObject(const std::string& prefix) {
    SkipSpace();
    if (!Consume('{')) return Error("expected '{'");
    SkipSpace();
    if (Consume('}')) return OkStatus();
    while (true) {
      SkipSpace();
      std::string key;
      if (const Status status = ParseString(&key); !status.ok()) {
        return status;
      }
      SkipSpace();
      if (!Consume(':')) return Error("expected ':'");
      const std::string path = prefix.empty() ? key : prefix + "." + key;
      if (const Status status = ParseValue(path); !status.ok()) {
        return status;
      }
      SkipSpace();
      if (Consume('}')) return OkStatus();
      if (!Consume(',')) return Error("expected ',' or '}'");
    }
  }

  const std::string& text_;
  size_t pos_ = 0;
  std::map<std::string, double>* out_ = nullptr;
};

bool EndsWith(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

// Strips any dotted prefix so nested bench sections ("warm.batched_fps")
// inherit the leaf key's direction.
std::string LeafKey(const std::string& key) {
  const size_t dot = key.rfind('.');
  return dot == std::string::npos ? key : key.substr(dot + 1);
}

}  // namespace

Result<std::map<std::string, double>> ParseBenchJson(
    const std::string& json) {
  std::map<std::string, double> out;
  Parser parser(json);
  if (const Status status = parser.Parse(&out); !status.ok()) return status;
  return out;
}

Result<std::map<std::string, double>> LoadBenchJson(
    const std::string& path) {
  std::ifstream in(path);
  if (!in) return NotFoundError("cannot open " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return ParseBenchJson(buffer.str());
}

BenchDirection DirectionForKey(const std::string& key) {
  const std::string leaf = LeafKey(key);
  if (EndsWith(leaf, "_fps") || leaf.rfind("speedup", 0) == 0) {
    return BenchDirection::kHigherBetter;
  }
  if (leaf.find("diff") != std::string::npos || EndsWith(leaf, "_ms") ||
      EndsWith(leaf, "_us") || EndsWith(leaf, "_seconds") ||
      EndsWith(leaf, "_bytes")) {
    return BenchDirection::kLowerBetter;
  }
  return BenchDirection::kInformational;
}

BenchDiff DiffBenchJson(const std::map<std::string, double>& baseline,
                        const std::map<std::string, double>& current,
                        const BenchToleranceSpec& spec) {
  BenchDiff diff;
  for (const auto& [key, base_value] : baseline) {
    const BenchDirection direction = DirectionForKey(key);
    const bool gated = direction != BenchDirection::kInformational;
    const auto found = current.find(key);
    if (found == current.end()) {
      if (gated) {
        diff.missing_keys.push_back(key);
        diff.regressed = true;
      }
      continue;
    }
    BenchDelta delta;
    delta.key = key;
    delta.baseline = base_value;
    delta.current = found->second;
    delta.rel_change = base_value != 0.0
                           ? (delta.current - base_value) / base_value
                           : 0.0;
    delta.direction = direction;
    delta.gated = gated;
    if (gated) {
      const auto abs_it = spec.abs_tol.find(key);
      if (abs_it != spec.abs_tol.end()) {
        const double abs = abs_it->second;
        delta.regressed = direction == BenchDirection::kHigherBetter
                              ? delta.current < base_value - abs
                              : delta.current > base_value + abs;
      } else {
        const auto rel_it = spec.rel_tol.find(key);
        const double rel = rel_it != spec.rel_tol.end()
                               ? rel_it->second
                               : spec.default_rel_tol;
        if (direction == BenchDirection::kHigherBetter) {
          // A zero baseline makes the relative band collapse to zero
          // width; spell the comparison out so a zero-baseline key can
          // never divide by zero upstream or regress on rounding noise.
          delta.regressed = base_value == 0.0
                                ? delta.current < -1e-9
                                : delta.current < base_value * (1.0 - rel);
        } else if (base_value == 0.0) {
          // Relative tolerance is meaningless off a zero baseline (e.g.
          // scores_max_abs_diff); any measurable growth regresses.
          delta.regressed = delta.current > 1e-9;
        } else {
          delta.regressed = delta.current > base_value * (1.0 + rel);
        }
      }
      diff.regressed = diff.regressed || delta.regressed;
    }
    diff.deltas.push_back(delta);
  }
  for (const auto& [key, value] : current) {
    if (baseline.find(key) == baseline.end()) {
      diff.new_keys.push_back(key);
    }
  }
  return diff;
}

}  // namespace eventhit
