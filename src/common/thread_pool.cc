#include "common/thread_pool.h"

#include <cerrno>
#include <chrono>
#include <cstdlib>
#include <exception>
#include <limits>

#include "common/check.h"
#include "common/rng.h"
#include "obs/metrics.h"
#include "obs/schema.h"
#include "obs/trace.h"

namespace eventhit {

namespace {

// Pool telemetry (docs/TELEMETRY.md). Counters are side channels on the
// coarse chunk granularity — the per-item loop stays untouched, so the
// parallel-equals-serial byte-identity contract is unaffected and the
// overhead is a handful of relaxed atomics per ParallelFor call.
struct PoolMetrics {
  obs::Counter* calls;
  obs::Counter* chunks;
  obs::Counter* items;
  obs::Counter* busy_micros;
  obs::Gauge* threads;
  obs::Histogram* call_items;

  static const PoolMetrics& Get() {
    static const PoolMetrics* metrics = [] {
      auto& registry = obs::MetricsRegistry::Global();
      auto* m = new PoolMetrics();
      m->calls = registry.GetCounter(obs::names::kThreadPoolParallelForCalls);
      m->chunks = registry.GetCounter(obs::names::kThreadPoolChunksExecuted);
      m->items = registry.GetCounter(obs::names::kThreadPoolItemsProcessed);
      m->busy_micros =
          registry.GetCounter(obs::names::kThreadPoolWorkerBusyMicros);
      m->threads = registry.GetGauge(obs::names::kThreadPoolThreads);
      m->call_items = registry.GetHistogram(
          obs::names::kThreadPoolParallelForItems, obs::ItemCountBounds());
      return m;
    }();
    return *metrics;
  }
};

}  // namespace

ThreadPool::ThreadPool(int threads) : threads_(threads) {
  EVENTHIT_CHECK_GE(threads, 1);
  PoolMetrics::Get().threads->Set(static_cast<double>(threads));
  chunk_errors_.resize(static_cast<size_t>(threads));
  workers_.reserve(static_cast<size_t>(threads - 1));
  for (int w = 1; w < threads; ++w) {
    workers_.emplace_back([this, w] { WorkerLoop(w); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  work_ready_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::ChunkBounds(size_t n, int chunk, size_t* begin,
                             size_t* end) const {
  // Depends only on (n, threads_): chunk boundaries are a pure function of
  // the range, never of scheduling.
  const auto t = static_cast<size_t>(threads_);
  const auto c = static_cast<size_t>(chunk);
  *begin = n * c / t;
  *end = n * (c + 1) / t;
}

void ThreadPool::RunChunk(const Job& job, int chunk) {
  size_t begin = 0, end = 0;
  ChunkBounds(job.n, chunk, &begin, &end);
  if (begin >= end) return;
  const PoolMetrics& metrics = PoolMetrics::Get();
  obs::TraceSpan span(obs::names::kSpanThreadPoolChunk, "threadpool");
  const auto start = std::chrono::steady_clock::now();
  try {
    (*job.body)(chunk, begin, end);
  } catch (...) {
    chunk_errors_[static_cast<size_t>(chunk)] = std::current_exception();
  }
  const auto busy = std::chrono::duration_cast<std::chrono::microseconds>(
      std::chrono::steady_clock::now() - start);
  metrics.chunks->Add(1);
  metrics.items->Add(static_cast<int64_t>(end - begin));
  metrics.busy_micros->Add(busy.count());
}

void ThreadPool::WorkerLoop(int worker_index) {
  uint64_t seen_epoch = 0;
  for (;;) {
    Job job;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_ready_.wait(lock, [this, seen_epoch] {
        return shutdown_ || job_.epoch > seen_epoch;
      });
      if (shutdown_) return;
      job = job_;
      seen_epoch = job.epoch;
    }
    RunChunk(job, worker_index);
    {
      std::lock_guard<std::mutex> lock(mu_);
      --pending_;
    }
    work_done_.notify_one();
  }
}

void ThreadPool::ParallelForChunked(
    size_t n, const std::function<void(int, size_t, size_t)>& body) {
  if (n == 0) return;
  if (threads_ == 1) {
    // Serial fallback: no queueing, no synchronisation, exceptions
    // propagate natively.
    body(0, 0, n);
    return;
  }
  std::lock_guard<std::mutex> submit_lock(submit_mu_);
  const PoolMetrics& metrics = PoolMetrics::Get();
  metrics.calls->Add(1);
  metrics.call_items->Observe(static_cast<double>(n));
  for (auto& error : chunk_errors_) error = nullptr;
  Job job;
  {
    std::lock_guard<std::mutex> lock(mu_);
    job_.body = &body;
    job_.n = n;
    job_.epoch = ++epoch_;
    pending_ = threads_ - 1;
    job = job_;
  }
  work_ready_.notify_all();
  RunChunk(job, 0);  // The caller executes chunk 0.
  {
    std::unique_lock<std::mutex> lock(mu_);
    work_done_.wait(lock, [this] { return pending_ == 0; });
  }
  for (auto& error : chunk_errors_) {
    if (error != nullptr) std::rethrow_exception(error);
  }
}

void ThreadPool::ParallelFor(size_t n,
                             const std::function<void(size_t)>& body) {
  ParallelForChunked(n, [&body](int /*chunk*/, size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) body(i);
  });
}

int ThreadPool::ResolveDefaultThreads(const char* env, unsigned hardware) {
  if (env != nullptr && *env != '\0') {
    // Strict parse: atoi's silent 0 on junk and undefined behaviour on
    // overflow both used to fall through here. Anything that is not a
    // complete in-range positive decimal number is ignored.
    errno = 0;
    char* end = nullptr;
    const long parsed = std::strtol(env, &end, 10);
    if (errno == 0 && end != env && *end == '\0' && parsed >= 1 &&
        parsed <= std::numeric_limits<int>::max()) {
      return static_cast<int>(parsed);
    }
  }
  // hardware_concurrency() == 0 means "unknown" — clamp to the serial
  // fallback so a 0 can never propagate into chunk math.
  return hardware >= 1 ? static_cast<int>(hardware) : 1;
}

int ThreadPool::DefaultThreads() {
  return ResolveDefaultThreads(std::getenv("EVENTHIT_THREADS"),
                               std::thread::hardware_concurrency());
}

ExecutionContext::ExecutionContext(int threads, uint64_t base_seed)
    : base_seed_(base_seed) {
  if (threads <= 0) threads = ThreadPool::DefaultThreads();
  if (threads > 1) pool_ = std::make_shared<ThreadPool>(threads);
}

uint64_t ExecutionContext::SeedFor(uint64_t stream_id) const {
  return SplitSeed(base_seed_, stream_id);
}

void ExecutionContext::ParallelFor(
    size_t n, const std::function<void(size_t)>& body) const {
  if (pool_ != nullptr) {
    pool_->ParallelFor(n, body);
    return;
  }
  for (size_t i = 0; i < n; ++i) body(i);
}

}  // namespace eventhit
