#include "common/stats.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace eventhit {

double Mean(const std::vector<double>& values) {
  if (values.empty()) return 0.0;
  double sum = 0.0;
  for (double v : values) sum += v;
  return sum / static_cast<double>(values.size());
}

double SampleStdDev(const std::vector<double>& values) {
  if (values.size() < 2) return 0.0;
  const double mean = Mean(values);
  double ss = 0.0;
  for (double v : values) ss += (v - mean) * (v - mean);
  return std::sqrt(ss / static_cast<double>(values.size() - 1));
}

size_t ConformalQuantileRank(size_t n, double level) {
  EVENTHIT_CHECK_GE(n, 1u);
  EVENTHIT_CHECK_GE(level, 0.0);
  EVENTHIT_CHECK_LE(level, 1.0);
  auto rank =
      static_cast<size_t>(std::ceil(level * static_cast<double>(n + 1)));
  if (rank == 0) rank = 1;
  if (rank > n) rank = n;
  return rank;
}

double OrderStatQuantile(std::vector<double> values, double level) {
  if (values.empty()) return 0.0;
  std::sort(values.begin(), values.end());
  return values[ConformalQuantileRank(values.size(), level) - 1];
}

double Clamp(double value, double lo, double hi) {
  return std::min(std::max(value, lo), hi);
}

double Sigmoid(double x) {
  if (x >= 0.0) {
    const double z = std::exp(-x);
    return 1.0 / (1.0 + z);
  }
  const double z = std::exp(x);
  return z / (1.0 + z);
}

double SafeLog(double p) {
  constexpr double kFloor = 1e-12;
  return std::log(std::max(p, kFloor));
}

double PearsonCorrelation(const std::vector<double>& xs,
                          const std::vector<double>& ys) {
  EVENTHIT_CHECK_EQ(xs.size(), ys.size());
  const size_t n = xs.size();
  if (n < 2) return 0.0;
  const double mx = Mean(xs);
  const double my = Mean(ys);
  double sxy = 0.0, sxx = 0.0, syy = 0.0;
  for (size_t i = 0; i < n; ++i) {
    const double dx = xs[i] - mx;
    const double dy = ys[i] - my;
    sxy += dx * dy;
    sxx += dx * dx;
    syy += dy * dy;
  }
  if (sxx <= 0.0 || syy <= 0.0) return 0.0;
  return sxy / std::sqrt(sxx * syy);
}

void RunningStats::Add(double value) {
  ++count_;
  const double delta = value - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (value - mean_);
}

double RunningStats::variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

}  // namespace eventhit
