// Process-fatal invariant checks.
//
// EVENTHIT_CHECK is always on (benches and release builds included): these
// macros guard internal invariants whose violation means the library itself
// is broken, so the cheapest safe response is to abort with context.
#ifndef EVENTHIT_COMMON_CHECK_H_
#define EVENTHIT_COMMON_CHECK_H_

#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>

namespace eventhit::internal_check {

[[noreturn]] inline void CheckFail(const char* file, int line,
                                   const char* condition,
                                   const std::string& extra) {
  std::fprintf(stderr, "CHECK failed at %s:%d: %s%s%s\n", file, line,
               condition, extra.empty() ? "" : " — ", extra.c_str());
  std::abort();
}

template <typename A, typename B>
std::string FormatBinary(const A& a, const B& b) {
  std::ostringstream os;
  os << "(lhs=" << a << ", rhs=" << b << ")";
  return os.str();
}

}  // namespace eventhit::internal_check

#define EVENTHIT_CHECK(cond)                                              \
  do {                                                                    \
    if (!(cond)) {                                                        \
      ::eventhit::internal_check::CheckFail(__FILE__, __LINE__, #cond,    \
                                            std::string());               \
    }                                                                     \
  } while (false)

#define EVENTHIT_CHECK_OP_IMPL(lhs, rhs, op)                               \
  do {                                                                     \
    const auto& eventhit_check_a_ = (lhs);                                 \
    const auto& eventhit_check_b_ = (rhs);                                 \
    if (!(eventhit_check_a_ op eventhit_check_b_)) {                       \
      ::eventhit::internal_check::CheckFail(                               \
          __FILE__, __LINE__, #lhs " " #op " " #rhs,                       \
          ::eventhit::internal_check::FormatBinary(eventhit_check_a_,      \
                                                   eventhit_check_b_));    \
    }                                                                      \
  } while (false)

#define EVENTHIT_CHECK_EQ(lhs, rhs) EVENTHIT_CHECK_OP_IMPL(lhs, rhs, ==)
#define EVENTHIT_CHECK_NE(lhs, rhs) EVENTHIT_CHECK_OP_IMPL(lhs, rhs, !=)
#define EVENTHIT_CHECK_LT(lhs, rhs) EVENTHIT_CHECK_OP_IMPL(lhs, rhs, <)
#define EVENTHIT_CHECK_LE(lhs, rhs) EVENTHIT_CHECK_OP_IMPL(lhs, rhs, <=)
#define EVENTHIT_CHECK_GT(lhs, rhs) EVENTHIT_CHECK_OP_IMPL(lhs, rhs, >)
#define EVENTHIT_CHECK_GE(lhs, rhs) EVENTHIT_CHECK_OP_IMPL(lhs, rhs, >=)

/// Checks that a Status-returning expression is OK.
#define EVENTHIT_CHECK_OK(expr)                                            \
  do {                                                                     \
    const ::eventhit::Status eventhit_check_status_ = (expr);              \
    if (!eventhit_check_status_.ok()) {                                    \
      ::eventhit::internal_check::CheckFail(                               \
          __FILE__, __LINE__, #expr, eventhit_check_status_.ToString());   \
    }                                                                      \
  } while (false)

#endif  // EVENTHIT_COMMON_CHECK_H_
