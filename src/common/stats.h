// Small statistics helpers shared across modules (metrics, conformal
// calibration, dataset validation).
#ifndef EVENTHIT_COMMON_STATS_H_
#define EVENTHIT_COMMON_STATS_H_

#include <cstddef>
#include <vector>

namespace eventhit {

/// Arithmetic mean; 0 for an empty input.
double Mean(const std::vector<double>& values);

/// Sample standard deviation (n-1 denominator); 0 for n < 2.
double SampleStdDev(const std::vector<double>& values);

/// The conformal-style order statistic used throughout the paper:
/// the ceil(level * n)-th smallest of `values` (1-indexed), clamped to the
/// sample. This matches Algorithm 2's \hat q = r_(ceil(alpha*|R|)).
/// Returns 0 for an empty input.
double OrderStatQuantile(std::vector<double> values, double level);

/// Linear min/max clamp.
double Clamp(double value, double lo, double hi);

/// Numerically-stable logistic sigmoid.
double Sigmoid(double x);

/// log(p) clamped away from -inf for cross-entropy computations.
double SafeLog(double p);

/// Pearson correlation of two equal-length series; 0 if degenerate.
double PearsonCorrelation(const std::vector<double>& xs,
                          const std::vector<double>& ys);

/// Running mean/variance accumulator (Welford).
class RunningStats {
 public:
  void Add(double value);
  size_t count() const { return count_; }
  double mean() const { return mean_; }
  /// Sample variance (n-1); 0 for n < 2.
  double variance() const;
  double stddev() const;

 private:
  size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
};

}  // namespace eventhit

#endif  // EVENTHIT_COMMON_STATS_H_
