// Small statistics helpers shared across modules (metrics, conformal
// calibration, dataset validation).
#ifndef EVENTHIT_COMMON_STATS_H_
#define EVENTHIT_COMMON_STATS_H_

#include <cstddef>
#include <vector>

namespace eventhit {

/// Arithmetic mean; 0 for an empty input.
double Mean(const std::vector<double>& values);

/// Sample standard deviation (n-1 denominator); 0 for n < 2.
double SampleStdDev(const std::vector<double>& values);

/// 1-indexed rank of the split-conformal quantile for a calibration set of
/// size n at coverage `level`: ceil(level * (n+1)), clamped to [1, n].
/// The (n+1) is the finite-sample correction of Theorems 4.2/5.2 — the
/// test point is exchangeable with the n calibration points, so covering
/// it with probability >= level requires the ceil(level*(n+1))-th order
/// statistic, not ceil(level*n) (which undercovers by ~level/(n+1), badly
/// for small n). Requires n >= 1 and level in [0, 1].
size_t ConformalQuantileRank(size_t n, double level);

/// The conformal order statistic used throughout the paper: the
/// ConformalQuantileRank(n, level)-th smallest of `values` (1-indexed),
/// i.e. \hat q = r_(ceil(level*(|R|+1))) clamped to the sample.
/// Returns 0 for an empty input.
double OrderStatQuantile(std::vector<double> values, double level);

/// Linear min/max clamp.
double Clamp(double value, double lo, double hi);

/// Numerically-stable logistic sigmoid.
double Sigmoid(double x);

/// log(p) clamped away from -inf for cross-entropy computations.
double SafeLog(double p);

/// Pearson correlation of two equal-length series; 0 if degenerate.
double PearsonCorrelation(const std::vector<double>& xs,
                          const std::vector<double>& ys);

/// Running mean/variance accumulator (Welford).
class RunningStats {
 public:
  void Add(double value);
  size_t count() const { return count_; }
  double mean() const { return mean_; }
  /// Sample variance (n-1); 0 for n < 2.
  double variance() const;
  double stddev() const;

 private:
  size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
};

}  // namespace eventhit

#endif  // EVENTHIT_COMMON_STATS_H_
