// Benchmark regression comparison: parses the flat JSON emitted by the
// bench binaries (BENCH_*.json) into (dotted key -> number) maps and
// diffs a current run against a committed baseline under per-metric
// tolerances. Used by tools/bench_diff and the CI bench gate.
//
// Gating rules:
//   * keys ending in "_fps" or starting with "speedup" are higher-better:
//     a regression is current < baseline * (1 - rel_tol);
//   * keys containing "diff" or ending in "_ms"/"_us"/"_seconds"/"_bytes"
//     are lower-better: a regression is current > baseline * (1 + rel_tol),
//     or current > baseline + abs_tol when an absolute tolerance is set
//     (required when the baseline is 0, e.g. scores_max_abs_diff);
//   * all other keys (records, reps, threads, ...) are informational and
//     never gate;
//   * a gated baseline key missing from the current run is a regression.
#ifndef EVENTHIT_COMMON_BENCHCMP_H_
#define EVENTHIT_COMMON_BENCHCMP_H_

#include <map>
#include <string>
#include <vector>

#include "common/status.h"

namespace eventhit {

/// Parses a JSON object into dotted-path -> numeric value entries.
/// Nested objects flatten ("a":{"b":1} -> "a.b"); strings, booleans,
/// nulls and arrays are skipped. Errors on malformed JSON.
Result<std::map<std::string, double>> ParseBenchJson(
    const std::string& json);

/// Reads and parses a BENCH_*.json file.
Result<std::map<std::string, double>> LoadBenchJson(
    const std::string& path);

enum class BenchDirection {
  kHigherBetter,
  kLowerBetter,
  kInformational,
};

/// Direction inferred from the key name (see file comment).
BenchDirection DirectionForKey(const std::string& key);

struct BenchToleranceSpec {
  /// Relative tolerance applied to gated keys without an override.
  double default_rel_tol = 0.15;
  /// Per-key relative tolerance overrides (fraction, e.g. 0.10).
  std::map<std::string, double> rel_tol;
  /// Per-key absolute tolerances; when present the key is compared as
  /// |current| <= |baseline| + abs (lower-better) or
  /// current >= baseline - abs (higher-better) instead of relatively.
  std::map<std::string, double> abs_tol;
};

struct BenchDelta {
  std::string key;
  double baseline = 0.0;
  double current = 0.0;
  /// (current - baseline) / baseline; 0 when the baseline is 0.
  double rel_change = 0.0;
  BenchDirection direction = BenchDirection::kInformational;
  bool gated = false;
  bool regressed = false;
};

struct BenchDiff {
  /// One entry per baseline key, in baseline (sorted map) order.
  std::vector<BenchDelta> deltas;
  /// Gated baseline keys absent from the current run.
  std::vector<std::string> missing_keys;
  /// Current-run keys absent from the baseline, in sorted order. New
  /// metrics surface as visible rows but never gate: a freshly added
  /// bench key must not fail the gate before its baseline is committed.
  std::vector<std::string> new_keys;
  bool regressed = false;
};

BenchDiff DiffBenchJson(const std::map<std::string, double>& baseline,
                        const std::map<std::string, double>& current,
                        const BenchToleranceSpec& spec);

}  // namespace eventhit

#endif  // EVENTHIT_COMMON_BENCHCMP_H_
