#include "common/rng.h"

#include <cmath>

#include "common/check.h"

namespace eventhit {
namespace {

inline uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

constexpr double kTwoPi = 6.283185307179586476925286766559;

}  // namespace

uint64_t SplitMix64(uint64_t& state) {
  state += 0x9E3779B97f4A7C15ULL;
  uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : state_) s = SplitMix64(sm);
}

uint64_t Rng::NextUint64() {
  const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

double Rng::Uniform() {
  // 53 random mantissa bits -> uniform in [0, 1).
  return static_cast<double>(NextUint64() >> 11) * 0x1.0p-53;
}

double Rng::Uniform(double lo, double hi) {
  EVENTHIT_CHECK_LE(lo, hi);
  return lo + (hi - lo) * Uniform();
}

int64_t Rng::UniformInt(int64_t lo, int64_t hi) {
  EVENTHIT_CHECK_LE(lo, hi);
  const uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
  if (span == 0) return static_cast<int64_t>(NextUint64());  // Full range.
  // Rejection sampling to avoid modulo bias.
  const uint64_t limit = UINT64_MAX - UINT64_MAX % span;
  uint64_t value = NextUint64();
  while (value >= limit) value = NextUint64();
  return lo + static_cast<int64_t>(value % span);
}

double Rng::Gaussian() {
  // Box–Muller without caching the second variate: determinism is worth
  // more here than one extra log/sqrt per call.
  double u1 = Uniform();
  while (u1 <= 0.0) u1 = Uniform();
  const double u2 = Uniform();
  return std::sqrt(-2.0 * std::log(u1)) * std::cos(kTwoPi * u2);
}

double Rng::Gaussian(double mean, double stddev) {
  return mean + stddev * Gaussian();
}

double Rng::Exponential(double mean) {
  EVENTHIT_CHECK_GT(mean, 0.0);
  double u = Uniform();
  while (u <= 0.0) u = Uniform();
  return -mean * std::log(u);
}

double Rng::LogNormal(double mu, double sigma) {
  return std::exp(Gaussian(mu, sigma));
}

int64_t Rng::Poisson(double mean) {
  EVENTHIT_CHECK_GE(mean, 0.0);
  if (mean == 0.0) return 0;
  if (mean > 64.0) {
    // Normal approximation with continuity correction.
    const double draw = Gaussian(mean, std::sqrt(mean));
    return draw < 0.0 ? 0 : static_cast<int64_t>(draw + 0.5);
  }
  const double limit = std::exp(-mean);
  int64_t count = -1;
  double product = 1.0;
  do {
    ++count;
    product *= Uniform();
  } while (product > limit);
  return count;
}

bool Rng::Bernoulli(double p) { return Uniform() < p; }

uint64_t SplitSeed(uint64_t seed, uint64_t stream_id) {
  uint64_t sm = seed ^ (stream_id * 0x9E3779B97f4A7C15ULL + 0xD1B54A32D192ED03ULL);
  const uint64_t first = SplitMix64(sm);
  return SplitMix64(sm) ^ first;
}

uint64_t Rng::Fork(uint64_t stream) {
  uint64_t sm = NextUint64() ^ (stream * 0x9E3779B97f4A7C15ULL + 0xD1B54A32D192ED03ULL);
  return SplitMix64(sm);
}

}  // namespace eventhit
