// Column-aligned ASCII table output for the benchmark harness, so every
// bench binary prints paper-style rows/series in a uniform format.
#ifndef EVENTHIT_COMMON_TABLE_PRINTER_H_
#define EVENTHIT_COMMON_TABLE_PRINTER_H_

#include <ostream>
#include <string>
#include <vector>

namespace eventhit {

/// Accumulates rows of string cells and renders them with padded columns.
///
/// Usage:
///   TablePrinter table({"Task", "REC", "SPL"});
///   table.AddRow({"TA1", Fmt(rec), Fmt(spl)});
///   table.Print(std::cout);
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> header);

  /// Appends one row; must have the same arity as the header.
  void AddRow(std::vector<std::string> cells);

  /// Renders the header, a separator, and all rows to `os`.
  void Print(std::ostream& os) const;

  size_t num_rows() const { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats a double with `digits` decimal places.
std::string Fmt(double value, int digits = 3);

/// Formats an integer.
std::string Fmt(int64_t value);

}  // namespace eventhit

#endif  // EVENTHIT_COMMON_TABLE_PRINTER_H_
