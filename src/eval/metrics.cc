#include "eval/metrics.h"

#include <algorithm>

#include "common/check.h"

namespace eventhit::eval {
namespace {

// Union length of a set of intervals (destructive sort).
int64_t UnionLength(std::vector<sim::Interval> intervals) {
  intervals.erase(std::remove_if(intervals.begin(), intervals.end(),
                                 [](const sim::Interval& iv) {
                                   return iv.empty();
                                 }),
                  intervals.end());
  if (intervals.empty()) return 0;
  std::sort(intervals.begin(), intervals.end(),
            [](const sim::Interval& a, const sim::Interval& b) {
              return a.start < b.start;
            });
  int64_t total = 0;
  int64_t cur_start = intervals[0].start;
  int64_t cur_end = intervals[0].end;
  for (size_t i = 1; i < intervals.size(); ++i) {
    if (intervals[i].start <= cur_end + 1) {
      cur_end = std::max(cur_end, intervals[i].end);
    } else {
      total += cur_end - cur_start + 1;
      cur_start = intervals[i].start;
      cur_end = intervals[i].end;
    }
  }
  total += cur_end - cur_start + 1;
  return total;
}

}  // namespace

double FrameRecall(const data::EventLabel& label, bool predicted_present,
                   const sim::Interval& predicted) {
  EVENTHIT_CHECK(label.present);
  if (!predicted_present || predicted.empty()) return 0.0;
  const sim::Interval truth{label.start, label.end};
  const int64_t overlap = Intersect(predicted, truth).length();
  return static_cast<double>(overlap) / static_cast<double>(truth.length());
}

Metrics ComputeMetrics(const std::vector<data::Record>& records,
                       const std::vector<core::MarshalDecision>& decisions,
                       int horizon) {
  EVENTHIT_CHECK_EQ(records.size(), decisions.size());
  EVENTHIT_CHECK_GT(horizon, 0);
  Metrics metrics;
  metrics.records = static_cast<int64_t>(records.size());

  double rec_num = 0.0;       // Sum of eta over positive pairs.
  int64_t rec_den = 0;        // Positive pairs.
  double spl_sum = 0.0;       // Eq. 13 summand over all pairs.
  int64_t pair_count = 0;
  int64_t hits = 0;           // Positive pairs predicted positive.
  double rec_r_num = 0.0;     // Sum of eta over hits.
  int64_t predicted_pairs = 0;       // Pairs predicted positive.
  int64_t relayed_event_frames = 0;  // Relayed frames inside true intervals.
  int64_t relayed_pair_frames = 0;   // Relayed frames, summed per pair.

  for (size_t i = 0; i < records.size(); ++i) {
    const data::Record& record = records[i];
    const core::MarshalDecision& decision = decisions[i];
    EVENTHIT_CHECK_EQ(decision.exists.size(), record.labels.size());
    EVENTHIT_CHECK_EQ(decision.intervals.size(), record.labels.size());
    metrics.horizon_frames += horizon;

    for (size_t k = 0; k < record.labels.size(); ++k) {
      const data::EventLabel& label = record.labels[k];
      const bool predicted = decision.exists[k];
      const sim::Interval& interval = decision.intervals[k];
      if (predicted) {
        EVENTHIT_CHECK(!interval.empty());
        EVENTHIT_CHECK_GE(interval.start, 1);
        EVENTHIT_CHECK_LE(interval.end, horizon);
      } else {
        EVENTHIT_CHECK(interval.empty());
      }
      ++pair_count;
      if (predicted) {
        ++predicted_pairs;
        relayed_pair_frames += interval.length();
        if (label.present) {
          relayed_event_frames +=
              Intersect(interval, sim::Interval{label.start, label.end})
                  .length();
        }
      }

      if (label.present) {
        ++rec_den;
        const double eta = FrameRecall(label, predicted, interval);
        rec_num += eta;
        if (predicted) {
          ++hits;
          rec_r_num += eta;
          const sim::Interval truth{label.start, label.end};
          const int64_t excess = DifferenceLength(interval, truth);
          const int64_t non_event = horizon - truth.length();
          if (non_event > 0) {
            spl_sum += static_cast<double>(excess) /
                       static_cast<double>(non_event);
          }
        }
      } else if (predicted) {
        spl_sum += static_cast<double>(interval.length()) /
                   static_cast<double>(horizon);
      }
    }

    // Cloud billing counts each relayed frame once per record.
    metrics.relayed_frames += UnionLength(decision.intervals);
  }

  metrics.positives = rec_den;
  metrics.rec = rec_den > 0 ? rec_num / static_cast<double>(rec_den) : 0.0;
  metrics.spl =
      pair_count > 0 ? spl_sum / static_cast<double>(pair_count) : 0.0;
  metrics.rec_c =
      rec_den > 0 ? static_cast<double>(hits) / static_cast<double>(rec_den)
                  : 0.0;
  metrics.rec_r = hits > 0 ? rec_r_num / static_cast<double>(hits) : 0.0;
  metrics.pre_c = predicted_pairs > 0
                      ? static_cast<double>(hits) /
                            static_cast<double>(predicted_pairs)
                      : 0.0;
  metrics.pre_f = relayed_pair_frames > 0
                      ? static_cast<double>(relayed_event_frames) /
                            static_cast<double>(relayed_pair_frames)
                      : 0.0;
  return metrics;
}

}  // namespace eventhit::eval
