#include "eval/runner.h"

#include <algorithm>

#include "common/check.h"
#include "obs/schema.h"
#include "obs/trace.h"
#include "sim/datasets.h"

namespace eventhit::eval {

namespace {

// Conformal levels need enough calibration samples for a nontrivial
// quantile (ceil((n+1)*0.95) <= n needs n >= 19); below this floor the
// policy-scored subset is abandoned for the full uniform calibration set.
constexpr size_t kMinPolicyCalibRecords = 20;

// Scored subset of a stream-cadence (stride = H) sweep of the calibration
// range walked under the runner's collection policy — the records whose
// scores the deployed marshaller would actually act on. Conformal
// thresholds do not exist yet at calibration time, so the policy's
// feedback loop runs on a raw-score proxy: any_open = (max existence
// score >= 0.5), the same default existence threshold the uncalibrated
// strategy uses.
std::vector<data::Record> PolicyScoredCalibRecords(
    const TaskEnvironment& env, const RunnerConfig& config,
    const core::EventHitModel& model, const ExecutionContext& ctx) {
  std::vector<data::Record> sweep = data::StridedRecords(
      env.video(), env.task(), env.extractor(), env.splits().calib,
      env.horizon());
  const std::vector<core::EventScores> scores =
      core::PredictBatch(model, sweep, ctx, config.predict_batch);
  std::unique_ptr<sched::CollectPolicy> policy =
      sched::MakeCollectPolicy(config.collect_policy);
  std::vector<data::Record> scored;
  scored.reserve(sweep.size());
  bool have_last = false;
  for (size_t h = 0; h < sweep.size(); ++h) {
    if (have_last && !policy->ShouldScore(static_cast<int64_t>(h))) continue;
    have_last = true;
    double max_existence = 0.0;
    for (const double b : scores[h].existence) {
      max_existence = std::max(max_existence, b);
    }
    sched::ScoreObservation observation;
    observation.horizon_index = static_cast<int64_t>(h);
    observation.max_existence = max_existence;
    observation.any_open = max_existence >= 0.5;
    policy->Observe(observation);
    scored.push_back(std::move(sweep[h]));
  }
  return scored;
}

}  // namespace

TaskEnvironment TaskEnvironment::Build(const data::Task& task,
                                       const RunnerConfig& config) {
  obs::TraceSpan span(obs::names::kSpanRunnerBuildEnv);
  TaskEnvironment env;
  env.task_ = task;
  sim::DatasetSpec spec = sim::MakeDatasetSpec(task.dataset);
  if (config.stream_frames_override > 0) {
    // Keep occurrence *rates* fixed while shrinking the stream: counts
    // scale down proportionally, statistics per Table I are unchanged.
    spec.num_frames = config.stream_frames_override;
  }

  Rng rng(config.seed);
  env.video_ = std::make_shared<const sim::SyntheticVideo>(
      sim::SyntheticVideo::Generate(spec, rng.Fork(1)));

  env.extractor_.collection_window = config.collection_window_override > 0
                                         ? config.collection_window_override
                                         : spec.collection_window;
  env.extractor_.horizon = config.horizon_override > 0
                               ? config.horizon_override
                               : spec.horizon;

  env.splits_ = data::ComputeSplits(*env.video_, env.extractor_,
                                    config.train_frac, config.calib_frac);

  Rng train_rng(rng.Fork(2));
  Rng calib_rng(rng.Fork(3));
  Rng test_rng(rng.Fork(4));
  env.train_ = data::SampleBalancedRecords(
      *env.video_, task, env.extractor_, env.splits_.train,
      config.train_records, config.train_positive_fraction, train_rng);
  env.calib_ = data::SampleUniformRecords(*env.video_, task, env.extractor_,
                                          env.splits_.calib,
                                          config.calib_records, calib_rng);
  env.test_ = data::SampleUniformRecords(*env.video_, task, env.extractor_,
                                         env.splits_.test,
                                         config.test_records, test_rng);
  return env;
}

TrainedEventHit TrainEventHit(const TaskEnvironment& env,
                              const RunnerConfig& config, double tau2,
                              const ExecutionContext& ctx) {
  TrainedEventHit trained;
  core::EventHitConfig model_config = config.model_template;
  model_config.collection_window = env.collection_window();
  model_config.horizon = env.horizon();
  model_config.feature_dim = env.video().feature_dim();
  model_config.num_events = env.task().event_indices.size();
  model_config.seed = config.seed ^ 0x9E3779B97F4A7C15ULL;

  trained.model = std::make_unique<core::EventHitModel>(model_config);
  {
    obs::TraceSpan span(obs::names::kSpanRunnerTrain);
    trained.history = trained.model->Train(env.train_records());
  }
  // Select the inference backend BEFORE calibration: the conformal
  // constructors below score the calibration split through the model, so
  // thresholds are automatically recalibrated on backend-specific scores
  // (mandatory for int8, whose quantization perturbs them —
  // docs/BACKENDS.md).
  if (config.nn_backend == nn::BackendKind::kInt8) {
    trained.model->CalibrateInt8(env.calib_records());
  }
  trained.model->SetInferenceBackend(config.nn_backend);
  {
    obs::TraceSpan span(obs::names::kSpanRunnerCalibrate);
    // Calibrate under the collection policy used at test time: thresholds
    // built on the scored subset of a policy walk see exactly the score
    // distribution the deployed marshaller consults.
    const std::vector<data::Record>* calib = &env.calib_records();
    std::vector<data::Record> policy_calib;
    if (config.collect_policy.kind != sched::CollectPolicyKind::kFull) {
      policy_calib =
          PolicyScoredCalibRecords(env, config, *trained.model, ctx);
      if (policy_calib.size() >= kMinPolicyCalibRecords) {
        calib = &policy_calib;
      }
    }
    trained.cclassify =
        std::make_unique<core::CClassify>(*trained.model, *calib, ctx);
    trained.cregress =
        std::make_unique<core::CRegress>(*trained.model, *calib, tau2, ctx);
  }
  {
    obs::TraceSpan span(obs::names::kSpanRunnerPredictBatch);
    trained.test_scores = core::PredictBatch(*trained.model,
                                             env.test_records(), ctx,
                                             config.predict_batch);
  }
  return trained;
}

Metrics EvaluateStrategy(const core::MarshalStrategy& strategy,
                         const std::vector<data::Record>& test, int horizon,
                         const ExecutionContext& ctx) {
  obs::TraceSpan span(obs::names::kSpanRunnerDecideBatch);
  std::vector<core::MarshalDecision> decisions(test.size());
  ctx.ParallelFor(test.size(), [&](size_t i) {
    decisions[i] = strategy.Decide(test[i]);
  });
  return ComputeMetrics(test, decisions, horizon);
}

Metrics EvaluateFromScores(const core::EventHitStrategy& strategy,
                           const std::vector<core::EventScores>& scores,
                           const std::vector<data::Record>& test,
                           int horizon, const ExecutionContext& ctx) {
  EVENTHIT_CHECK_EQ(scores.size(), test.size());
  return ComputeMetrics(test, DecisionsFromScores(strategy, scores, ctx),
                        horizon);
}

std::vector<core::MarshalDecision> DecisionsFromScores(
    const core::EventHitStrategy& strategy,
    const std::vector<core::EventScores>& scores,
    const ExecutionContext& ctx) {
  obs::TraceSpan span(obs::names::kSpanRunnerDecideBatch);
  std::vector<core::MarshalDecision> decisions(scores.size());
  ctx.ParallelFor(scores.size(), [&](size_t i) {
    decisions[i] = strategy.DecideFromScores(scores[i]);
  });
  return decisions;
}

std::vector<core::MarshalDecision> DecisionsWithPolicy(
    const core::EventHitStrategy& strategy,
    const std::vector<core::EventScores>& scores,
    const sched::CollectPolicySpec& spec, int collection_window, int horizon,
    const sched::LocalCostModel& cost, PolicyWalkStats* stats,
    const ExecutionContext& ctx) {
  if (stats != nullptr) *stats = PolicyWalkStats();
  if (spec.kind == sched::CollectPolicyKind::kFull) {
    // Full rate: same decisions (and parallel schedule) as the legacy
    // path, with every frame charged to the local side of the ledger.
    std::vector<core::MarshalDecision> decisions =
        DecisionsFromScores(strategy, scores, ctx);
    if (stats != nullptr) {
      for (size_t h = 0; h < scores.size(); ++h) {
        const int64_t segment =
            h == 0 ? static_cast<int64_t>(collection_window)
                   : static_cast<int64_t>(horizon);
        ++stats->horizons_scored;
        stats->frames_scored += segment;
        stats->local_mflops +=
            static_cast<double>(segment) * cost.feature_mflops_per_frame +
            cost.forward_mflops_per_boundary;
      }
    }
    return decisions;
  }
  // The policy's schedule feeds on its own scored observations, so the
  // walk is inherently sequential.
  obs::TraceSpan span(obs::names::kSpanRunnerDecideBatch);
  std::unique_ptr<sched::CollectPolicy> policy = sched::MakeCollectPolicy(spec);
  std::vector<core::MarshalDecision> decisions;
  decisions.reserve(scores.size());
  for (size_t h = 0; h < scores.size(); ++h) {
    const bool scored =
        decisions.empty() || policy->ShouldScore(static_cast<int64_t>(h));
    const int64_t segment = h == 0 ? static_cast<int64_t>(collection_window)
                                   : static_cast<int64_t>(horizon);
    if (scored) {
      decisions.push_back(strategy.DecideFromScores(scores[h]));
      const core::MarshalDecision& decision = decisions.back();
      sched::ScoreObservation observation;
      observation.horizon_index = static_cast<int64_t>(h);
      observation.max_existence = decision.max_existence;
      for (const bool open : decision.exists) {
        if (open) observation.any_open = true;
      }
      policy->Observe(observation);
      if (stats != nullptr) {
        // A scored boundary only needs the M window frames extracted —
        // frames outside every window are skipped even at full duty.
        const int64_t frames = std::min<int64_t>(collection_window, segment);
        ++stats->horizons_scored;
        stats->frames_scored += frames;
        stats->frames_skipped += segment - frames;
        stats->local_mflops +=
            static_cast<double>(frames) * cost.feature_mflops_per_frame +
            cost.forward_mflops_per_boundary;
        stats->saved_mflops += static_cast<double>(segment - frames) *
                               cost.feature_mflops_per_frame;
      }
    } else {
      decisions.push_back(decisions.back());
      if (stats != nullptr) {
        ++stats->horizons_reused;
        stats->frames_skipped += segment;
        stats->saved_mflops +=
            static_cast<double>(segment) * cost.feature_mflops_per_frame +
            cost.forward_mflops_per_boundary;
      }
    }
  }
  return decisions;
}

std::vector<obs::AuditOutcome> BuildAuditOutcomes(
    const std::vector<data::Record>& records,
    const std::vector<core::MarshalDecision>& decisions) {
  EVENTHIT_CHECK_EQ(records.size(), decisions.size());
  std::vector<obs::AuditOutcome> outcomes;
  for (size_t i = 0; i < records.size(); ++i) {
    const data::Record& record = records[i];
    const core::MarshalDecision& decision = decisions[i];
    EVENTHIT_CHECK_EQ(decision.exists.size(), record.labels.size());
    outcomes.reserve(outcomes.size() + record.labels.size());
    for (size_t k = 0; k < record.labels.size(); ++k) {
      const data::EventLabel& label = record.labels[k];
      obs::AuditOutcome outcome;
      outcome.sim_time = static_cast<int64_t>(i);
      outcome.event = static_cast<int>(k);
      outcome.truth_present = label.present;
      outcome.predicted_present = decision.exists[k];
      if (label.present && decision.exists[k]) {
        const sim::Interval& interval = decision.intervals[k];
        outcome.start_covered = interval.start <= label.start;
        outcome.end_covered = interval.end >= label.end;
      }
      outcomes.push_back(outcome);
    }
  }
  return outcomes;
}

}  // namespace eventhit::eval
