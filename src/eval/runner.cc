#include "eval/runner.h"

#include "common/check.h"
#include "obs/schema.h"
#include "obs/trace.h"
#include "sim/datasets.h"

namespace eventhit::eval {

TaskEnvironment TaskEnvironment::Build(const data::Task& task,
                                       const RunnerConfig& config) {
  obs::TraceSpan span(obs::names::kSpanRunnerBuildEnv);
  TaskEnvironment env;
  env.task_ = task;
  sim::DatasetSpec spec = sim::MakeDatasetSpec(task.dataset);
  if (config.stream_frames_override > 0) {
    // Keep occurrence *rates* fixed while shrinking the stream: counts
    // scale down proportionally, statistics per Table I are unchanged.
    spec.num_frames = config.stream_frames_override;
  }

  Rng rng(config.seed);
  env.video_ = std::make_shared<const sim::SyntheticVideo>(
      sim::SyntheticVideo::Generate(spec, rng.Fork(1)));

  env.extractor_.collection_window = config.collection_window_override > 0
                                         ? config.collection_window_override
                                         : spec.collection_window;
  env.extractor_.horizon = config.horizon_override > 0
                               ? config.horizon_override
                               : spec.horizon;

  env.splits_ = data::ComputeSplits(*env.video_, env.extractor_,
                                    config.train_frac, config.calib_frac);

  Rng train_rng(rng.Fork(2));
  Rng calib_rng(rng.Fork(3));
  Rng test_rng(rng.Fork(4));
  env.train_ = data::SampleBalancedRecords(
      *env.video_, task, env.extractor_, env.splits_.train,
      config.train_records, config.train_positive_fraction, train_rng);
  env.calib_ = data::SampleUniformRecords(*env.video_, task, env.extractor_,
                                          env.splits_.calib,
                                          config.calib_records, calib_rng);
  env.test_ = data::SampleUniformRecords(*env.video_, task, env.extractor_,
                                         env.splits_.test,
                                         config.test_records, test_rng);
  return env;
}

TrainedEventHit TrainEventHit(const TaskEnvironment& env,
                              const RunnerConfig& config, double tau2,
                              const ExecutionContext& ctx) {
  TrainedEventHit trained;
  core::EventHitConfig model_config = config.model_template;
  model_config.collection_window = env.collection_window();
  model_config.horizon = env.horizon();
  model_config.feature_dim = env.video().feature_dim();
  model_config.num_events = env.task().event_indices.size();
  model_config.seed = config.seed ^ 0x9E3779B97F4A7C15ULL;

  trained.model = std::make_unique<core::EventHitModel>(model_config);
  {
    obs::TraceSpan span(obs::names::kSpanRunnerTrain);
    trained.history = trained.model->Train(env.train_records());
  }
  // Select the inference backend BEFORE calibration: the conformal
  // constructors below score the calibration split through the model, so
  // thresholds are automatically recalibrated on backend-specific scores
  // (mandatory for int8, whose quantization perturbs them —
  // docs/BACKENDS.md).
  if (config.nn_backend == nn::BackendKind::kInt8) {
    trained.model->CalibrateInt8(env.calib_records());
  }
  trained.model->SetInferenceBackend(config.nn_backend);
  {
    obs::TraceSpan span(obs::names::kSpanRunnerCalibrate);
    trained.cclassify = std::make_unique<core::CClassify>(
        *trained.model, env.calib_records(), ctx);
    trained.cregress = std::make_unique<core::CRegress>(
        *trained.model, env.calib_records(), tau2, ctx);
  }
  {
    obs::TraceSpan span(obs::names::kSpanRunnerPredictBatch);
    trained.test_scores = core::PredictBatch(*trained.model,
                                             env.test_records(), ctx,
                                             config.predict_batch);
  }
  return trained;
}

Metrics EvaluateStrategy(const core::MarshalStrategy& strategy,
                         const std::vector<data::Record>& test, int horizon,
                         const ExecutionContext& ctx) {
  obs::TraceSpan span(obs::names::kSpanRunnerDecideBatch);
  std::vector<core::MarshalDecision> decisions(test.size());
  ctx.ParallelFor(test.size(), [&](size_t i) {
    decisions[i] = strategy.Decide(test[i]);
  });
  return ComputeMetrics(test, decisions, horizon);
}

Metrics EvaluateFromScores(const core::EventHitStrategy& strategy,
                           const std::vector<core::EventScores>& scores,
                           const std::vector<data::Record>& test,
                           int horizon, const ExecutionContext& ctx) {
  EVENTHIT_CHECK_EQ(scores.size(), test.size());
  return ComputeMetrics(test, DecisionsFromScores(strategy, scores, ctx),
                        horizon);
}

std::vector<core::MarshalDecision> DecisionsFromScores(
    const core::EventHitStrategy& strategy,
    const std::vector<core::EventScores>& scores,
    const ExecutionContext& ctx) {
  obs::TraceSpan span(obs::names::kSpanRunnerDecideBatch);
  std::vector<core::MarshalDecision> decisions(scores.size());
  ctx.ParallelFor(scores.size(), [&](size_t i) {
    decisions[i] = strategy.DecideFromScores(scores[i]);
  });
  return decisions;
}

std::vector<obs::AuditOutcome> BuildAuditOutcomes(
    const std::vector<data::Record>& records,
    const std::vector<core::MarshalDecision>& decisions) {
  EVENTHIT_CHECK_EQ(records.size(), decisions.size());
  std::vector<obs::AuditOutcome> outcomes;
  for (size_t i = 0; i < records.size(); ++i) {
    const data::Record& record = records[i];
    const core::MarshalDecision& decision = decisions[i];
    EVENTHIT_CHECK_EQ(decision.exists.size(), record.labels.size());
    outcomes.reserve(outcomes.size() + record.labels.size());
    for (size_t k = 0; k < record.labels.size(); ++k) {
      const data::EventLabel& label = record.labels[k];
      obs::AuditOutcome outcome;
      outcome.sim_time = static_cast<int64_t>(i);
      outcome.event = static_cast<int>(k);
      outcome.truth_present = label.present;
      outcome.predicted_present = decision.exists[k];
      if (label.present && decision.exists[k]) {
        const sim::Interval& interval = decision.intervals[k];
        outcome.start_covered = interval.start <= label.start;
        outcome.end_covered = interval.end >= label.end;
      }
      outcomes.push_back(outcome);
    }
  }
  return outcomes;
}

}  // namespace eventhit::eval
