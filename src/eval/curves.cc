#include "eval/curves.h"

#include <algorithm>

#include "common/check.h"

namespace eventhit::eval {

std::vector<double> LinearGrid(double lo, double hi, int count) {
  EVENTHIT_CHECK_GE(count, 2);
  EVENTHIT_CHECK_LE(lo, hi);
  std::vector<double> grid;
  grid.reserve(static_cast<size_t>(count));
  for (int i = 0; i < count; ++i) {
    grid.push_back(lo + (hi - lo) * static_cast<double>(i) /
                            static_cast<double>(count - 1));
  }
  return grid;
}

std::vector<CurvePoint> SweepConfidence(
    const TrainedEventHit& trained, const TaskEnvironment& env,
    const std::vector<double>& confidences) {
  core::EventHitStrategyOptions options;
  options.use_cclassify = true;
  core::EventHitStrategy strategy(trained.model.get(),
                                  trained.cclassify.get(), nullptr, options);
  std::vector<CurvePoint> points;
  for (double c : confidences) {
    strategy.set_confidence(c);
    CurvePoint point;
    point.confidence = c;
    point.metrics = EvaluateFromScores(strategy, trained.test_scores,
                                       env.test_records(), env.horizon());
    points.push_back(point);
  }
  return points;
}

std::vector<CurvePoint> SweepCoverage(const TrainedEventHit& trained,
                                      const TaskEnvironment& env,
                                      const std::vector<double>& coverages) {
  core::EventHitStrategyOptions options;
  options.use_cregress = true;
  core::EventHitStrategy strategy(trained.model.get(), nullptr,
                                  trained.cregress.get(), options);
  std::vector<CurvePoint> points;
  for (double alpha : coverages) {
    strategy.set_coverage(alpha);
    CurvePoint point;
    point.coverage = alpha;
    point.metrics = EvaluateFromScores(strategy, trained.test_scores,
                                       env.test_records(), env.horizon());
    points.push_back(point);
  }
  return points;
}

std::vector<CurvePoint> SweepJoint(const TrainedEventHit& trained,
                                   const TaskEnvironment& env,
                                   const std::vector<double>& confidences,
                                   const std::vector<double>& coverages) {
  core::EventHitStrategyOptions options;
  options.use_cclassify = true;
  options.use_cregress = true;
  core::EventHitStrategy strategy(trained.model.get(),
                                  trained.cclassify.get(),
                                  trained.cregress.get(), options);
  std::vector<CurvePoint> points;
  for (double c : confidences) {
    strategy.set_confidence(c);
    for (double alpha : coverages) {
      strategy.set_coverage(alpha);
      CurvePoint point;
      point.confidence = c;
      point.coverage = alpha;
      point.metrics = EvaluateFromScores(strategy, trained.test_scores,
                                         env.test_records(), env.horizon());
      points.push_back(point);
    }
  }
  return points;
}

std::vector<CurvePoint> SweepCox(baselines::CoxStrategy& strategy,
                                 const TaskEnvironment& env,
                                 const std::vector<double>& thresholds) {
  std::vector<CurvePoint> points;
  for (double tau : thresholds) {
    strategy.set_threshold(tau);
    CurvePoint point;
    point.threshold = tau;
    point.metrics =
        EvaluateStrategy(strategy, env.test_records(), env.horizon());
    points.push_back(point);
  }
  return points;
}

std::vector<CurvePoint> SweepVqs(baselines::VqsStrategy& strategy,
                                 const TaskEnvironment& env,
                                 const std::vector<double>& thresholds) {
  std::vector<CurvePoint> points;
  for (double tau : thresholds) {
    strategy.set_threshold(tau);
    CurvePoint point;
    point.threshold = tau;
    point.metrics =
        EvaluateStrategy(strategy, env.test_records(), env.horizon());
    points.push_back(point);
  }
  return points;
}

std::vector<CurvePoint> ParetoFrontier(std::vector<CurvePoint> points) {
  std::sort(points.begin(), points.end(),
            [](const CurvePoint& a, const CurvePoint& b) {
              if (a.metrics.spl != b.metrics.spl) {
                return a.metrics.spl < b.metrics.spl;
              }
              return a.metrics.rec > b.metrics.rec;
            });
  std::vector<CurvePoint> frontier;
  double best_rec = -1.0;
  for (const CurvePoint& point : points) {
    if (point.metrics.rec > best_rec) {
      frontier.push_back(point);
      best_rec = point.metrics.rec;
    }
  }
  return frontier;
}

bool MinSplAtRecall(const std::vector<CurvePoint>& points, double target_rec,
                    double* min_spl) {
  bool found = false;
  double best = 0.0;
  for (const CurvePoint& point : points) {
    if (point.metrics.rec >= target_rec) {
      if (!found || point.metrics.spl < best) {
        best = point.metrics.spl;
        found = true;
      }
    }
  }
  if (found && min_spl != nullptr) *min_spl = best;
  return found;
}

}  // namespace eventhit::eval
