#include "eval/hyper_search.h"

#include <algorithm>

#include "common/check.h"
#include "core/eventhit_model.h"
#include "core/strategies.h"
#include "eval/runner.h"

namespace eventhit::eval {
namespace {

core::EventHitConfig ApplyCandidate(const core::EventHitConfig& base,
                                    size_t lstm_hidden, size_t event_hidden,
                                    double learning_rate, double beta,
                                    double gamma) {
  core::EventHitConfig config = base;
  config.lstm_hidden = lstm_hidden;
  config.event_hidden = event_hidden;
  config.learning_rate = learning_rate;
  config.beta.assign(config.num_events, beta);
  config.gamma.assign(config.num_events, gamma);
  return config;
}

void SortBestFirst(std::vector<HyperResult>& results) {
  std::sort(results.begin(), results.end(),
            [](const HyperResult& a, const HyperResult& b) {
              return a.objective > b.objective;
            });
}

// Trains and scores each enumerated candidate, across options.exec's
// workers when it is parallel. Candidates are fully independent — each
// owns its model and derives its RNG stream from its config seed — and
// results[i] is written only by the worker evaluating candidate i, so the
// pre-sort vector (and hence the sorted output) is byte-identical to the
// serial loop. Nested evaluation stages run on the inner (serial) context:
// the pool is not reentrant, and candidate-level parallelism already
// saturates it.
std::vector<HyperResult> EvaluateAll(
    const std::vector<core::EventHitConfig>& candidates,
    const std::vector<data::Record>& train,
    const std::vector<data::Record>& validation,
    const HyperSearchOptions& options) {
  HyperSearchOptions inner = options;
  inner.exec = options.exec.Inner();
  std::vector<HyperResult> results(candidates.size());
  options.exec.ParallelFor(candidates.size(), [&](size_t i) {
    results[i] = EvaluateCandidate(candidates[i], train, validation, inner);
  });
  SortBestFirst(results);
  return results;
}

}  // namespace

HyperResult EvaluateCandidate(const core::EventHitConfig& config,
                              const std::vector<data::Record>& train,
                              const std::vector<data::Record>& validation,
                              const HyperSearchOptions& options) {
  EVENTHIT_CHECK(!train.empty());
  EVENTHIT_CHECK(!validation.empty());
  HyperResult result;
  result.config = config;
  core::EventHitModel model(config);
  model.Train(train);
  core::EventHitStrategyOptions strategy_options;
  strategy_options.tau1 = options.tau1;
  strategy_options.tau2 = options.tau2;
  const core::EventHitStrategy eho(&model, nullptr, nullptr,
                                   strategy_options);
  result.validation =
      EvaluateStrategy(eho, validation, config.horizon, options.exec);
  result.objective =
      result.validation.rec - options.spillage_weight * result.validation.spl;
  return result;
}

std::vector<HyperResult> GridSearch(
    const core::EventHitConfig& base, const HyperGrid& grid,
    const std::vector<data::Record>& train,
    const std::vector<data::Record>& validation,
    const HyperSearchOptions& options) {
  EVENTHIT_CHECK_GT(grid.Combinations(), 0u);
  std::vector<core::EventHitConfig> candidates;
  candidates.reserve(grid.Combinations());
  for (size_t lstm : grid.lstm_hidden) {
    for (size_t hidden : grid.event_hidden) {
      for (double lr : grid.learning_rate) {
        for (double beta : grid.beta) {
          for (double gamma : grid.gamma) {
            candidates.push_back(
                ApplyCandidate(base, lstm, hidden, lr, beta, gamma));
          }
        }
      }
    }
  }
  return EvaluateAll(candidates, train, validation, options);
}

std::vector<HyperResult> RandomSearch(
    const core::EventHitConfig& base, const HyperGrid& grid, size_t samples,
    const std::vector<data::Record>& train,
    const std::vector<data::Record>& validation, Rng& rng,
    const HyperSearchOptions& options) {
  EVENTHIT_CHECK_GT(samples, 0u);
  EVENTHIT_CHECK_GT(grid.Combinations(), 0u);
  auto pick = [&rng](const auto& values) {
    return values[static_cast<size_t>(
        rng.UniformInt(0, static_cast<int64_t>(values.size()) - 1))];
  };
  // All RNG draws happen up front on the calling thread, in sample order,
  // so the candidate list — and therefore the search — is independent of
  // the thread count.
  std::vector<core::EventHitConfig> candidates;
  candidates.reserve(samples);
  for (size_t i = 0; i < samples; ++i) {
    candidates.push_back(
        ApplyCandidate(base, pick(grid.lstm_hidden), pick(grid.event_hidden),
                       pick(grid.learning_rate), pick(grid.beta),
                       pick(grid.gamma)));
  }
  return EvaluateAll(candidates, train, validation, options);
}

}  // namespace eventhit::eval
