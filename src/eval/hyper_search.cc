#include "eval/hyper_search.h"

#include <algorithm>

#include "common/check.h"
#include "core/eventhit_model.h"
#include "core/strategies.h"
#include "eval/runner.h"

namespace eventhit::eval {
namespace {

core::EventHitConfig ApplyCandidate(const core::EventHitConfig& base,
                                    size_t lstm_hidden, size_t event_hidden,
                                    double learning_rate, double beta,
                                    double gamma) {
  core::EventHitConfig config = base;
  config.lstm_hidden = lstm_hidden;
  config.event_hidden = event_hidden;
  config.learning_rate = learning_rate;
  config.beta.assign(config.num_events, beta);
  config.gamma.assign(config.num_events, gamma);
  return config;
}

void SortBestFirst(std::vector<HyperResult>& results) {
  std::sort(results.begin(), results.end(),
            [](const HyperResult& a, const HyperResult& b) {
              return a.objective > b.objective;
            });
}

}  // namespace

HyperResult EvaluateCandidate(const core::EventHitConfig& config,
                              const std::vector<data::Record>& train,
                              const std::vector<data::Record>& validation,
                              const HyperSearchOptions& options) {
  EVENTHIT_CHECK(!train.empty());
  EVENTHIT_CHECK(!validation.empty());
  HyperResult result;
  result.config = config;
  core::EventHitModel model(config);
  model.Train(train);
  core::EventHitStrategyOptions strategy_options;
  strategy_options.tau1 = options.tau1;
  strategy_options.tau2 = options.tau2;
  const core::EventHitStrategy eho(&model, nullptr, nullptr,
                                   strategy_options);
  result.validation =
      EvaluateStrategy(eho, validation, config.horizon);
  result.objective =
      result.validation.rec - options.spillage_weight * result.validation.spl;
  return result;
}

std::vector<HyperResult> GridSearch(
    const core::EventHitConfig& base, const HyperGrid& grid,
    const std::vector<data::Record>& train,
    const std::vector<data::Record>& validation,
    const HyperSearchOptions& options) {
  EVENTHIT_CHECK_GT(grid.Combinations(), 0u);
  std::vector<HyperResult> results;
  results.reserve(grid.Combinations());
  for (size_t lstm : grid.lstm_hidden) {
    for (size_t hidden : grid.event_hidden) {
      for (double lr : grid.learning_rate) {
        for (double beta : grid.beta) {
          for (double gamma : grid.gamma) {
            results.push_back(EvaluateCandidate(
                ApplyCandidate(base, lstm, hidden, lr, beta, gamma), train,
                validation, options));
          }
        }
      }
    }
  }
  SortBestFirst(results);
  return results;
}

std::vector<HyperResult> RandomSearch(
    const core::EventHitConfig& base, const HyperGrid& grid, size_t samples,
    const std::vector<data::Record>& train,
    const std::vector<data::Record>& validation, Rng& rng,
    const HyperSearchOptions& options) {
  EVENTHIT_CHECK_GT(samples, 0u);
  EVENTHIT_CHECK_GT(grid.Combinations(), 0u);
  auto pick = [&rng](const auto& values) {
    return values[static_cast<size_t>(
        rng.UniformInt(0, static_cast<int64_t>(values.size()) - 1))];
  };
  std::vector<HyperResult> results;
  results.reserve(samples);
  for (size_t i = 0; i < samples; ++i) {
    results.push_back(EvaluateCandidate(
        ApplyCandidate(base, pick(grid.lstm_hidden), pick(grid.event_hidden),
                       pick(grid.learning_rate), pick(grid.beta),
                       pick(grid.gamma)),
        train, validation, options));
  }
  SortBestFirst(results);
  return results;
}

}  // namespace eventhit::eval
