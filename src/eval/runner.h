// Experiment orchestration shared by the benchmark harness, examples and
// integration tests: builds the synthetic environment for a task, trains
// EventHit, calibrates the conformal wrappers, and evaluates strategies.
#ifndef EVENTHIT_EVAL_RUNNER_H_
#define EVENTHIT_EVAL_RUNNER_H_

#include <memory>
#include <vector>

#include "common/thread_pool.h"
#include "core/c_classify.h"
#include "core/c_regress.h"
#include "core/eventhit_model.h"
#include "core/prediction.h"
#include "core/strategies.h"
#include "data/record_extractor.h"
#include "data/tasks.h"
#include "eval/metrics.h"
#include "nn/backend.h"
#include "obs/audit.h"
#include "sched/collect_policy.h"
#include "sched/cost_model.h"
#include "sim/synthetic_video.h"

namespace eventhit::eval {

/// Experiment-level knobs. Model architecture/training settings come from
/// `model_template`; the runner fills in the problem shape (M, H, D, K).
struct RunnerConfig {
  size_t train_records = 1000;
  size_t calib_records = 800;
  size_t test_records = 600;
  /// Oversampling target for positives in the training set (training only;
  /// calibration/test stay uniform to preserve exchangeability).
  double train_positive_fraction = 0.5;
  /// Stream fraction used for training / calibration (rest = test).
  double train_frac = 0.55;
  double calib_frac = 0.15;
  /// Overrides of the dataset's default M / H; 0 keeps the default.
  int collection_window_override = 0;
  int horizon_override = 0;
  /// Override of the dataset's stream length; 0 keeps the default. Shrink
  /// for fast tests/benches (event counts scale down proportionally).
  int64_t stream_frames_override = 0;
  /// Architecture + optimisation template (shape fields are overwritten).
  core::EventHitConfig model_template;
  /// Records per batch for the batched GEMM inference path (test-score
  /// precomputation; `--predict-batch` in the CLI). Scores are
  /// bit-identical at any batch size — this only trades throughput against
  /// per-thread scratch size.
  size_t predict_batch = core::kDefaultPredictBatch;
  /// Inference kernel backend (nn/backend.h; `--nn-backend` in the CLI).
  /// Set *before* conformal calibration: TrainEventHit selects it on the
  /// model right after training (quantizing the weights for kInt8), so
  /// C-CLASSIFY/C-REGRESS thresholds are calibrated on scores from the
  /// same backend that later produces the test scores (docs/BACKENDS.md).
  nn::BackendKind nn_backend = nn::BackendKind::kBlocked;
  /// Collection scheduling policy (sched/collect_policy.h; the CLI's
  /// `--collect-policy`). kFull keeps the legacy every-boundary path
  /// byte-identical. Anything else makes TrainEventHit calibrate the
  /// conformal wrappers on the *scored subset* of a stream-cadence
  /// (stride = H) sweep of the calibration range walked under this same
  /// policy, so thresholds see the score distribution deployment sees.
  sched::CollectPolicySpec collect_policy;
  /// Master seed; vary per trial.
  uint64_t seed = 42;
};

/// The generated world and record sets for one task.
class TaskEnvironment {
 public:
  /// Generates the stream and samples all three record sets.
  static TaskEnvironment Build(const data::Task& task,
                               const RunnerConfig& config);

  const data::Task& task() const { return task_; }
  const sim::SyntheticVideo& video() const { return *video_; }
  const data::ExtractorConfig& extractor() const { return extractor_; }
  int horizon() const { return extractor_.horizon; }
  int collection_window() const { return extractor_.collection_window; }
  const data::SplitRanges& splits() const { return splits_; }

  const std::vector<data::Record>& train_records() const { return train_; }
  const std::vector<data::Record>& calib_records() const { return calib_; }
  const std::vector<data::Record>& test_records() const { return test_; }

 private:
  data::Task task_;
  std::shared_ptr<const sim::SyntheticVideo> video_;
  data::ExtractorConfig extractor_;
  data::SplitRanges splits_;
  std::vector<data::Record> train_;
  std::vector<data::Record> calib_;
  std::vector<data::Record> test_;
};

/// A trained EventHit model with its conformal calibrators and the
/// precomputed raw scores of every test record (so knob sweeps pay one
/// forward pass per record total).
struct TrainedEventHit {
  std::unique_ptr<core::EventHitModel> model;
  std::unique_ptr<core::CClassify> cclassify;
  std::unique_ptr<core::CRegress> cregress;
  std::vector<core::EventScores> test_scores;
  std::vector<core::TrainEpochStats> history;
};

/// Trains + calibrates EventHit on the environment. `tau2` is the occupancy
/// threshold used for C-REGRESS calibration (the compared algorithms all
/// use 0.5). Training itself is serial (its SGD step order is part of the
/// model definition); conformal calibration and test-score precomputation
/// run across `ctx.threads()` workers with deterministic, order-preserving
/// reductions.
TrainedEventHit TrainEventHit(const TaskEnvironment& env,
                              const RunnerConfig& config, double tau2 = 0.5,
                              const ExecutionContext& ctx = ExecutionContext());

/// Evaluates a strategy by calling Decide on every test record. Decisions
/// are computed across `ctx.threads()` workers into per-record slots, then
/// scored serially in record order — byte-identical to the serial path.
Metrics EvaluateStrategy(const core::MarshalStrategy& strategy,
                         const std::vector<data::Record>& test, int horizon,
                         const ExecutionContext& ctx = ExecutionContext());

/// Evaluates an EventHit strategy from precomputed scores.
Metrics EvaluateFromScores(const core::EventHitStrategy& strategy,
                           const std::vector<core::EventScores>& scores,
                           const std::vector<data::Record>& test,
                           int horizon, const ExecutionContext& ctx = ExecutionContext());

/// Collects the per-record decisions of an EventHit strategy (for cost /
/// timing accounting).
std::vector<core::MarshalDecision> DecisionsFromScores(
    const core::EventHitStrategy& strategy,
    const std::vector<core::EventScores>& scores,
    const ExecutionContext& ctx = ExecutionContext());

/// Local-compute accounting of one policy walk over a stream-cadence
/// record sequence — the record-clock mirror of MarshallerStats'
/// sched fields (same segment attribution: the first boundary covers M
/// frames, every later one H).
struct PolicyWalkStats {
  int64_t horizons_scored = 0;
  int64_t horizons_reused = 0;
  int64_t frames_scored = 0;    // Frames charged feature extraction.
  int64_t frames_skipped = 0;   // Frames whose extraction was saved.
  double local_mflops = 0.0;    // Estimated local compute spent.
  double saved_mflops = 0.0;    // Estimated local compute avoided.
};

/// Walks `scores` in sequence as consecutive prediction boundaries of one
/// stream under `spec`: scored boundaries take a fresh decision from the
/// strategy and feed the policy's observation loop; skipped boundaries
/// reuse the previous decision verbatim. `scores` must therefore come
/// from a stream-cadence sweep (data::StridedRecords with stride = H) —
/// uniformly sampled record sets have no temporal adjacency to reuse
/// across. kFull short-circuits to DecisionsFromScores (byte-identical
/// decisions, full-rate accounting). `stats` (optional) receives the
/// frames/FLOPs split under `cost`.
std::vector<core::MarshalDecision> DecisionsWithPolicy(
    const core::EventHitStrategy& strategy,
    const std::vector<core::EventScores>& scores,
    const sched::CollectPolicySpec& spec, int collection_window, int horizon,
    const sched::LocalCostModel& cost = sched::LocalCostModel(),
    PolicyWalkStats* stats = nullptr,
    const ExecutionContext& ctx = ExecutionContext());

/// Converts (record, decision) pairs into guarantee-audit outcomes on the
/// record clock (sim_time = record index): one outcome per (record,
/// event) pair, with the exact positive/hit semantics of ComputeMetrics —
/// feeding these into an obs::GuarantyAuditor reproduces the offline REC
/// accounting (auditor misses == positives - hits) on the same slice.
/// Endpoint coverage follows C-REGRESS: the start endpoint is covered
/// when interval.start <= label.start, the end endpoint when
/// interval.end >= label.end.
std::vector<obs::AuditOutcome> BuildAuditOutcomes(
    const std::vector<data::Record>& records,
    const std::vector<core::MarshalDecision>& decisions);

}  // namespace eventhit::eval

#endif  // EVENTHIT_EVAL_RUNNER_H_
