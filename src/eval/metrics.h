// Evaluation measures of §VI.C: REC (Eq. 12), SPL (Eq. 13), REC_c and
// REC_r, plus frame accounting for the cost/FPS figures.
#ifndef EVENTHIT_EVAL_METRICS_H_
#define EVENTHIT_EVAL_METRICS_H_

#include <cstdint>
#include <vector>

#include "core/prediction.h"
#include "data/record.h"

namespace eventhit::eval {

/// Aggregate metrics over a record set.
struct Metrics {
  /// Frame-level recall REC (Eq. 12): mean over positive (record, event)
  /// pairs of the covered fraction of the true occurrence interval.
  double rec = 0.0;
  /// Spillage SPL (Eq. 13): frame-level false-positive rate, averaged over
  /// all (record, event) pairs.
  double spl = 0.0;
  /// Existence-prediction recall REC_c.
  double rec_c = 0.0;
  /// Interval recall REC_r over records correctly predicted positive.
  double rec_r = 0.0;
  /// Existence-prediction precision: of the (record, event) pairs predicted
  /// positive, the fraction that truly contain the event. The quantity the
  /// paper trades against recall when tuning c (§IV.B).
  double pre_c = 0.0;
  /// Frame-level precision: of all relayed frames (per event), the fraction
  /// inside true occurrence intervals.
  double pre_f = 0.0;

  /// Total frames relayed to the CI, counting the per-record union across
  /// events once (what a cloud bill would charge).
  int64_t relayed_frames = 0;
  /// Sum over records of the horizon length (the BF frame count).
  int64_t horizon_frames = 0;
  /// Number of (record, event) positive pairs.
  int64_t positives = 0;
  int64_t records = 0;
};

/// Computes all metrics for `decisions[i]` against `records[i]`.
/// Decision intervals use 1-based horizon offsets in [1, horizon].
Metrics ComputeMetrics(const std::vector<data::Record>& records,
                       const std::vector<core::MarshalDecision>& decisions,
                       int horizon);

/// Per-(record,event) frame recall eta (the building block of Eq. 12):
/// |pred ∩ truth| / |truth|, 0 when the event is predicted absent.
double FrameRecall(const data::EventLabel& label, bool predicted_present,
                   const sim::Interval& predicted);

}  // namespace eventhit::eval

#endif  // EVENTHIT_EVAL_METRICS_H_
