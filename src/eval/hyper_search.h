// Hyper-parameter search for EventHit (§III: "The hyper-parameters beta_k
// and gamma_k ... can be tuned by grid search [23], [24]" — [24] is random
// search, also provided).
//
// The objective scores a candidate by training on the supplied training
// records and evaluating the plain EHO operating point on a held-out
// validation set: objective = REC - spillage_weight * SPL. Higher is
// better.
#ifndef EVENTHIT_EVAL_HYPER_SEARCH_H_
#define EVENTHIT_EVAL_HYPER_SEARCH_H_

#include <vector>

#include "common/rng.h"
#include "common/thread_pool.h"
#include "core/eventhit_config.h"
#include "data/record.h"
#include "eval/metrics.h"

namespace eventhit::eval {

/// The searched axes. Every combination of the listed values is tried by
/// GridSearch; RandomSearch samples combinations uniformly.
struct HyperGrid {
  std::vector<size_t> lstm_hidden = {16, 24, 32};
  std::vector<size_t> event_hidden = {24, 32};
  std::vector<double> learning_rate = {1e-3, 3e-3};
  /// Uniform existence-loss weight beta applied to every event.
  std::vector<double> beta = {0.5, 1.0, 2.0};
  /// Uniform occupancy-loss weight gamma applied to every event.
  std::vector<double> gamma = {0.5, 1.0, 2.0};

  size_t Combinations() const {
    return lstm_hidden.size() * event_hidden.size() * learning_rate.size() *
           beta.size() * gamma.size();
  }
};

/// Search knobs.
struct HyperSearchOptions {
  /// SPL penalty in the objective.
  double spillage_weight = 0.5;
  /// tau1/tau2 of the EHO evaluation.
  double tau1 = 0.5;
  double tau2 = 0.5;
  /// Parallelism. Candidates are trained/evaluated concurrently, one per
  /// ParallelFor index, each fully self-contained (own model, own RNG
  /// stream from its config seed); results land in enumeration order and
  /// the best-first sort runs serially, so the returned vector is
  /// byte-identical for any thread count.
  ExecutionContext exec;
};

/// One evaluated candidate.
struct HyperResult {
  core::EventHitConfig config;
  Metrics validation;
  double objective = 0.0;
};

/// Exhaustive grid search. `base` supplies the fixed fields (problem shape,
/// epochs, seed); searched fields are overwritten per candidate. Returns
/// every candidate, best first.
std::vector<HyperResult> GridSearch(
    const core::EventHitConfig& base, const HyperGrid& grid,
    const std::vector<data::Record>& train,
    const std::vector<data::Record>& validation,
    const HyperSearchOptions& options = {});

/// Random search: `samples` uniformly drawn combinations (with replacement;
/// duplicates possible, as in Bergstra & Bengio). Returns every candidate,
/// best first.
std::vector<HyperResult> RandomSearch(
    const core::EventHitConfig& base, const HyperGrid& grid, size_t samples,
    const std::vector<data::Record>& train,
    const std::vector<data::Record>& validation, Rng& rng,
    const HyperSearchOptions& options = {});

/// Trains one candidate and scores it (exposed for tests and custom search
/// loops).
HyperResult EvaluateCandidate(const core::EventHitConfig& config,
                              const std::vector<data::Record>& train,
                              const std::vector<data::Record>& validation,
                              const HyperSearchOptions& options = {});

}  // namespace eventhit::eval

#endif  // EVENTHIT_EVAL_HYPER_SEARCH_H_
