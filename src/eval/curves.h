// Knob sweeps producing the REC–SPL curves of Figures 4–6, plus the Pareto
// frontier used to plot the joint (c, alpha) sweep of EHCR.
#ifndef EVENTHIT_EVAL_CURVES_H_
#define EVENTHIT_EVAL_CURVES_H_

#include <vector>

#include "baselines/cox_strategy.h"
#include "baselines/vqs_filter.h"
#include "core/strategies.h"
#include "eval/metrics.h"
#include "eval/runner.h"

namespace eventhit::eval {

/// One swept operating point. Knobs not being swept stay at -1.
struct CurvePoint {
  double confidence = -1.0;  // c of C-CLASSIFY.
  double coverage = -1.0;    // alpha of C-REGRESS.
  double threshold = -1.0;   // tau_cox / tau_vqs for the baselines.
  Metrics metrics;
};

/// Evenly spaced grid in [lo, hi] with `count` points (count >= 2).
std::vector<double> LinearGrid(double lo, double hi, int count);

/// EHC: sweep the confidence level c.
std::vector<CurvePoint> SweepConfidence(
    const TrainedEventHit& trained, const TaskEnvironment& env,
    const std::vector<double>& confidences);

/// EHR: sweep the coverage level alpha.
std::vector<CurvePoint> SweepCoverage(const TrainedEventHit& trained,
                                      const TaskEnvironment& env,
                                      const std::vector<double>& coverages);

/// EHCR: joint sweep over (c, alpha).
std::vector<CurvePoint> SweepJoint(const TrainedEventHit& trained,
                                   const TaskEnvironment& env,
                                   const std::vector<double>& confidences,
                                   const std::vector<double>& coverages);

/// COX: sweep tau_cox.
std::vector<CurvePoint> SweepCox(baselines::CoxStrategy& strategy,
                                 const TaskEnvironment& env,
                                 const std::vector<double>& thresholds);

/// VQS: sweep tau_vqs.
std::vector<CurvePoint> SweepVqs(baselines::VqsStrategy& strategy,
                                 const TaskEnvironment& env,
                                 const std::vector<double>& thresholds);

/// Keeps the points not dominated in (higher REC, lower SPL); the result is
/// sorted by SPL ascending (REC strictly increasing).
std::vector<CurvePoint> ParetoFrontier(std::vector<CurvePoint> points);

/// Smallest SPL among swept points reaching at least `target_rec`;
/// returns false if no point reaches it.
bool MinSplAtRecall(const std::vector<CurvePoint>& points, double target_rec,
                    double* min_spl);

}  // namespace eventhit::eval

#endif  // EVENTHIT_EVAL_CURVES_H_
