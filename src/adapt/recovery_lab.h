// Seeded, replayable drift-recovery rig: the end-to-end harness behind
// `eventhit_cli evaluate --drift-profile=...`, tests/drift_recovery_test.cc
// and bench/bench_recovery.cc.
//
// One run: generate a single-event stream that shifts regimes at a known
// frame (sim/drift_scenario.h), train + conformally calibrate EventHit on
// the stationary prefix, then stream the remainder through a live
// Marshaller + GuarantyAuditor with the recalibration loop either armed or
// disarmed. The report pins the full causal chain on the simulated clock:
//
//   breach (or drift alarm) → recalibration trigger → hot swap →
//   coverage restored
//
// "Restored" means the auditor's own fast-burn criterion has cleared: over
// the trailing `restore_window` samples of each guarantee track, collected
// strictly after the last swap, the empirical failure rate is back at or
// under the same burn threshold whose violation defines a breach. With the
// loop disarmed the drifted stream must instead stay breached to the end —
// the recal=off control of the acceptance tests.
//
// Everything is seeded and the streaming loop is strictly serial, so a run
// is byte-identical across repeats and across `threads` (the thread count
// only parallelises conformal calibration, which is deterministic by
// contract); `decision_digest` folds every completed decision for exact
// replay comparisons.
#ifndef EVENTHIT_ADAPT_RECOVERY_LAB_H_
#define EVENTHIT_ADAPT_RECOVERY_LAB_H_

#include <cstdint>
#include <string>

#include "adapt/recal_loop.h"
#include "common/status.h"

namespace eventhit::adapt {

/// Recalibration-loop knobs sized for the lab's ~100k-frame rigs (smaller
/// windows and a ~1e3 average-run-length drift threshold, against the
/// deployment defaults that assume millions of quiet observations).
RecalConfig DefaultLabRecalConfig();

struct RecoveryLabConfig {
  /// One of sim::DriftScenarioNames().
  std::string scenario = "precursor-shift";
  uint64_t seed = 42;
  /// Arms the recalibration loop (RunRecovery; RunRecoveryControl streams
  /// both arms regardless).
  bool recal = true;
  /// Feeds the auditor's breach latch into the loop. Disarm to stream a
  /// martingale-only recovery (the drift alarm is always armed); the
  /// auditor still scores every boundary either way.
  bool breach_trigger = true;
  /// Calibration parallelism; the result is thread-count invariant.
  int threads = 1;

  // --- Stream layout (frames) ---
  /// Stationary regime length; the shift lands here.
  int64_t before_frames = 60000;
  /// Drifted regime length.
  int64_t after_frames = 60000;
  /// Training anchors come from [M, train_end)...
  int64_t train_end = 30000;
  /// ...calibration anchors from (train_end, calib_end); live streaming
  /// starts at calib_end, so the rig sees a stationary warmup before the
  /// shift.
  int64_t calib_end = 50000;
  size_t train_records = 400;
  size_t calib_records = 600;
  int epochs = 10;

  // --- Guarantees under audit ---
  double confidence = 0.9;  // c: miss budget 1 - c.
  double coverage = 0.9;    // alpha: miscoverage budget 1 - alpha.
  double tau2 = 0.5;

  /// Burn-rate audit windows, shrunk from the deployment defaults (32/256)
  /// so breaches resolve within the post-shift sample the rig can afford
  /// (one audited boundary per horizon).
  int audit_fast_window = 16;
  int audit_slow_window = 64;

  /// Trailing samples per guarantee track for the restore check.
  int restore_window = 16;

  RecalConfig recal_config = DefaultLabRecalConfig();
};

/// Per-phase guarantee accounting. Phases split the streamed boundaries at
/// the shift frame and at the first hot swap.
struct RecoveryPhase {
  int64_t boundaries = 0;
  int64_t positives = 0;
  int64_t misses = 0;
  int64_t endpoints = 0;
  int64_t miscovered = 0;
  int64_t relayed_frames = 0;

  double MissRate() const {
    return positives > 0 ? static_cast<double>(misses) / positives : 0.0;
  }
  double MiscoverRate() const {
    return endpoints > 0 ? static_cast<double>(miscovered) / endpoints
                         : 0.0;
  }
  double SpillPerBoundary() const {
    return boundaries > 0
               ? static_cast<double>(relayed_frames) / boundaries
               : 0.0;
  }
};

/// Everything one streamed run produced. Times are absolute stream frames;
/// -1 means "never happened".
struct RecoveryReport {
  std::string scenario;
  bool recal_enabled = false;
  int64_t shift_frame = 0;
  int64_t stream_begin = 0;
  int64_t stream_end = 0;

  /// First auditor breach latch.
  int64_t breach_time = -1;
  /// First martingale drift alarm (only with the loop armed — the
  /// detector lives inside it).
  int64_t alarm_time = -1;
  int64_t first_swap_time = -1;
  int64_t swap_count = 0;
  /// First boundary at/after the last swap where both guarantee tracks'
  /// trailing windows are back under the fast-burn threshold.
  int64_t restore_time = -1;
  /// restore_time minus the earliest of breach_time/alarm_time.
  int64_t time_to_restore = -1;
  /// Relayed frames per boundary after the swap, relative to the pre-shift
  /// rate (> 1: the recalibrated thresholds buy coverage with extra
  /// spillage). Falls back to the post-shift phase when no swap happened.
  double spill_overshoot = 0.0;
  bool end_breached = false;

  RecalStats recal;  // Zero-valued when the loop was disarmed.
  RecoveryPhase pre_shift;   // Boundaries before the shift.
  RecoveryPhase post_shift;  // Shift to first swap (or end).
  RecoveryPhase post_swap;   // First swap to end (empty when no swap).

  /// FNV-1a over every completed (anchor, decision) — byte-identical
  /// replays compare equal here.
  uint64_t decision_digest = 0;
};

/// Trains the rig and streams it once with the loop armed per
/// `config.recal`. InvalidArgument on unknown scenario names.
Result<RecoveryReport> RunRecovery(const RecoveryLabConfig& config);

struct RecoveryControl {
  RecoveryReport with_recal;
  RecoveryReport without_recal;
};

/// Trains the rig once and streams it twice — loop armed and disarmed —
/// so the recal=off control shares the exact model and calibration.
Result<RecoveryControl> RunRecoveryControl(const RecoveryLabConfig& config);

}  // namespace eventhit::adapt

#endif  // EVENTHIT_ADAPT_RECOVERY_LAB_H_
