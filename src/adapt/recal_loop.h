// The online recalibration loop (DESIGN.md §5j): closes the detect→repair
// cycle that the rest of the deployment stack only observes.
//
// Inputs, all on the simulated stream clock:
//   * auditor breach latches (obs/audit.h) — a conformal budget is being
//     exceeded with statistical evidence;
//   * martingale drift alarms (core/drift_detector.h), fed here with the
//     conformal p-values of confirmed positive records under the live
//     C-CLASSIFY calibration.
//
// On either trigger the loop rebuilds both conformal wrappers from the
// rolling window of confirmed labeled records (core/recalibrator.h) and
// hot-swaps them into the live strategy in one atomic step, guarded by a
// cooldown (no re-swap within `cooldown_frames`) and min-sample checks
// (no rebuild from a window that would yield degenerate quantiles), so
// the loop cannot thrash.
//
// The loop is deterministic: state advances only through Observe /
// MaybeRecalibrate calls on the caller's (simulated) clock, so a seeded
// replay reproduces every trigger, refusal and swap bit-for-bit. Like the
// auditor it is single-stream and not thread-safe; a fleet runs one loop
// per tenant stream.
#ifndef EVENTHIT_ADAPT_RECAL_LOOP_H_
#define EVENTHIT_ADAPT_RECAL_LOOP_H_

#include <cstdint>
#include <memory>

#include "core/drift_detector.h"
#include "core/prediction.h"
#include "core/recalibrator.h"
#include "core/strategies.h"
#include "data/record.h"
#include "obs/audit.h"
#include "obs/metrics.h"

namespace eventhit::adapt {

struct RecalConfig {
  /// Rolling labeled-history window (core/recalibrator.h capacity).
  size_t window_capacity = 512;
  /// A swap needs at least this many windowed records...
  size_t min_records = 64;
  /// ...and at least this many positives per event (degenerate-quantile
  /// guard, Recalibrator::CanRebuild).
  size_t min_positives = 16;
  /// No second swap within this many sim frames of the previous one.
  int64_t cooldown_frames = 4000;
  /// Occupancy threshold used when rebuilding C-REGRESS.
  double tau2 = 0.5;
  /// Martingale knobs for the drift-alarm trigger.
  core::DriftDetectorOptions drift;
};

/// Deterministic counters describing everything the loop did. All times
/// are sim frames; -1 means "never happened".
struct RecalStats {
  int64_t records_observed = 0;
  /// Auditor breach latches consumed as triggers.
  int64_t triggers_breach = 0;
  /// Martingale alarms consumed as triggers.
  int64_t triggers_drift = 0;
  int64_t refusals_cooldown = 0;
  int64_t refusals_min_samples = 0;
  int64_t swaps = 0;
  int64_t first_alarm_time = -1;
  int64_t first_trigger_time = -1;
  int64_t first_swap_time = -1;
  int64_t last_swap_time = -1;
};

/// One breach/drift-triggered recalibration loop bound to a live strategy.
/// Non-owning: `model`, `strategy` and `auditor` must outlive the loop
/// (`auditor` may be nullptr, leaving only the drift-alarm trigger). The
/// loop owns the calibrators it builds and keeps the previous generation
/// alive until the next swap completes, so decisions in flight never see a
/// mix of old and new quantiles.
class RecalLoop {
 public:
  RecalLoop(const core::EventHitModel* model,
            core::EventHitStrategy* strategy,
            const obs::GuarantyAuditor* auditor, const RecalConfig& config,
            obs::MetricsRegistry* metrics = nullptr);

  RecalLoop(const RecalLoop&) = delete;
  RecalLoop& operator=(const RecalLoop&) = delete;

  /// Feeds one confirmed labeled record together with the scores the live
  /// model produced for it, then runs the trigger state machine at
  /// `sim_time` (non-decreasing). The record joins the rolling window; if
  /// any event is truly present, the p-values of the present events under
  /// the strategy's *current* C-CLASSIFY feed the drift martingale.
  /// Returns true iff a hot swap happened on this observation.
  bool Observe(int64_t sim_time, const data::Record& truth,
               const core::EventScores& scores);

  /// Runs the trigger/guard state machine without adding a record (e.g. a
  /// final check at stream end). Returns true iff a swap happened.
  bool MaybeRecalibrate(int64_t sim_time);

  /// True when a trigger latched but every attempt so far was refused by a
  /// guard — the loop retries at the next observation.
  bool trigger_pending() const { return trigger_pending_; }

  const RecalStats& stats() const { return stats_; }
  const core::DriftDetector& detector() const { return detector_; }
  const core::Recalibrator& recalibrator() const { return recalibrator_; }
  const RecalConfig& config() const { return config_; }

 private:
  void Swap(int64_t sim_time);

  const core::EventHitModel* const model_;
  core::EventHitStrategy* const strategy_;
  const obs::GuarantyAuditor* const auditor_;
  const RecalConfig config_;

  core::Recalibrator recalibrator_;
  core::DriftDetector detector_;

  // Current and previous calibrator generations (previous kept so a swap
  // never frees quantiles a caller may still reference this boundary).
  std::unique_ptr<core::CClassify> live_cclassify_;
  std::unique_ptr<core::CRegress> live_cregress_;
  std::unique_ptr<core::CClassify> retired_cclassify_;
  std::unique_ptr<core::CRegress> retired_cregress_;

  bool trigger_pending_ = false;
  int64_t consumed_breaches_ = 0;
  bool drift_consumed_ = false;
  RecalStats stats_;

  obs::Counter* triggers_breach_;
  obs::Counter* triggers_drift_;
  obs::Counter* refusals_cooldown_;
  obs::Counter* refusals_min_samples_;
  obs::Counter* swaps_;
  obs::Gauge* last_swap_frame_;
};

}  // namespace eventhit::adapt

#endif  // EVENTHIT_ADAPT_RECAL_LOOP_H_
