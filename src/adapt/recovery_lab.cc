#include "adapt/recovery_lab.h"

#include <algorithm>
#include <cmath>
#include <deque>
#include <memory>
#include <utility>
#include <vector>

#include "common/check.h"
#include "common/rng.h"
#include "common/thread_pool.h"
#include "core/marshaller.h"
#include "data/record_extractor.h"
#include "data/tasks.h"
#include "obs/audit.h"
#include "sim/drift_scenario.h"
#include "sim/synthetic_video.h"

namespace eventhit::adapt {
namespace {

constexpr uint64_t kFnvOffset = 14695981039346656037ULL;
constexpr uint64_t kFnvPrime = 1099511628211ULL;

uint64_t FnvFold(uint64_t digest, uint64_t value) {
  for (int byte = 0; byte < 8; ++byte) {
    digest ^= (value >> (byte * 8)) & 0xffu;
    digest *= kFnvPrime;
  }
  return digest;
}

// The trained, calibrated half of the rig — shared by the recal=on run and
// its recal=off control so both stream the identical model.
struct Rig {
  sim::SyntheticVideo video;
  data::Task task;
  data::ExtractorConfig extractor;
  std::unique_ptr<core::EventHitModel> model;
  std::unique_ptr<core::CClassify> cclassify;
  std::unique_ptr<core::CRegress> cregress;
};

Result<Rig> BuildRig(const RecoveryLabConfig& config) {
  EVENTHIT_CHECK_GT(config.train_end, 0);
  EVENTHIT_CHECK_LT(config.train_end, config.calib_end);
  EVENTHIT_CHECK_LT(config.calib_end, config.before_frames);
  auto scenario = sim::MakeDriftScenario(
      config.scenario, config.before_frames, config.after_frames);
  if (!scenario.ok()) return scenario.status();

  Rig rig;
  rig.video = sim::SyntheticVideo::GenerateWithShift(
      scenario.value().before, scenario.value().after, config.seed);
  rig.task = data::Task{"drift-lab", sim::DatasetId::kThumos, {0}, {7}};
  rig.extractor.collection_window =
      scenario.value().before.collection_window;
  rig.extractor.horizon = scenario.value().before.horizon;

  Rng rng(SplitSeed(config.seed, 17));
  const sim::Interval train_range{rig.extractor.collection_window,
                                  config.train_end};
  const sim::Interval calib_range{config.train_end + 1,
                                  config.calib_end - 1};
  const auto train = data::SampleBalancedRecords(
      rig.video, rig.task, rig.extractor, train_range,
      config.train_records, 0.5, rng);
  const auto calib = data::SampleUniformRecords(
      rig.video, rig.task, rig.extractor, calib_range,
      config.calib_records, rng);

  core::EventHitConfig model_config;
  model_config.collection_window = rig.extractor.collection_window;
  model_config.horizon = rig.extractor.horizon;
  model_config.feature_dim = rig.video.feature_dim();
  model_config.num_events = 1;
  model_config.epochs = config.epochs;
  rig.model = std::make_unique<core::EventHitModel>(model_config);
  rig.model->Train(train);

  const ExecutionContext ctx(config.threads, config.seed);
  rig.cclassify =
      std::make_unique<core::CClassify>(*rig.model, calib, ctx);
  rig.cregress = std::make_unique<core::CRegress>(*rig.model, calib,
                                                  config.tau2, ctx);
  return rig;
}

// Rolling failure-indicator window for the restore check: the same
// fast-burn criterion the auditor trips on, evaluated over samples
// collected strictly after the last hot swap.
struct RestoreWindow {
  size_t capacity;
  std::deque<uint8_t> fails;

  void Add(bool fail) {
    fails.push_back(fail ? 1 : 0);
    if (fails.size() > capacity) fails.pop_front();
  }
  void Reset() { fails.clear(); }
  bool Full() const { return fails.size() >= capacity; }
  double Rate() const {
    if (fails.empty()) return 0.0;
    int64_t sum = 0;
    for (const uint8_t f : fails) sum += f;
    return static_cast<double>(sum) / fails.size();
  }
};

RecoveryReport StreamOnce(const Rig& rig, const RecoveryLabConfig& config,
                          bool recal_on) {
  RecoveryReport report;
  report.scenario = config.scenario;
  report.recal_enabled = recal_on;
  report.shift_frame = rig.video.shift_frame();
  report.stream_begin = config.calib_end;
  report.stream_end = rig.video.num_frames() - rig.extractor.horizon;
  report.decision_digest = kFnvOffset;

  core::EventHitStrategyOptions options;
  options.use_cclassify = true;
  options.use_cregress = true;
  options.confidence = config.confidence;
  options.coverage = config.coverage;
  options.tau2 = config.tau2;
  core::EventHitStrategy strategy(rig.model.get(), rig.cclassify.get(),
                                  rig.cregress.get(), options);

  obs::AuditConfig audit_config;
  audit_config.confidence = config.confidence;
  audit_config.coverage = config.coverage;
  audit_config.fast_window = config.audit_fast_window;
  audit_config.slow_window = config.audit_slow_window;
  audit_config.event_labels = {"E7"};
  obs::GuarantyAuditor auditor(audit_config);

  RecalConfig recal_config = config.recal_config;
  recal_config.tau2 = config.tau2;
  std::unique_ptr<RecalLoop> loop;
  if (recal_on) {
    loop = std::make_unique<RecalLoop>(
        rig.model.get(), &strategy,
        config.breach_trigger ? &auditor : nullptr, recal_config);
  }

  core::Marshaller marshaller(
      &strategy, rig.extractor.collection_window, rig.extractor.horizon,
      rig.video.feature_dim(), /*num_events=*/1);

  // The fast-burn thresholds that define both breach and restore
  // (obs/audit.h): burn_factor x budget, capped at the midpoint to 1.
  const double miss_budget = 1.0 - config.confidence;
  const double miscover_budget = 1.0 - config.coverage;
  const double miss_burn = std::min(audit_config.burn_factor * miss_budget,
                                    (1.0 + miss_budget) / 2.0);
  const double miscover_burn =
      std::min(audit_config.burn_factor * miscover_budget,
               (1.0 + miscover_budget) / 2.0);
  RestoreWindow miss_window{static_cast<size_t>(config.restore_window), {}};
  RestoreWindow cover_window{static_cast<size_t>(config.restore_window),
                            {}};

  const core::EventScores* current_scores = nullptr;
  marshaller.set_decision_callback(
      [&](int64_t anchor, const core::MarshalDecision& decision,
          bool reused) {
        (void)reused;
        const int64_t abs_anchor = report.stream_begin + anchor;
        const data::Record truth = data::BuildRecord(
            rig.video, rig.task, rig.extractor, abs_anchor);
        const data::EventLabel& label = truth.labels[0];
        const bool predicted = decision.exists[0];
        const sim::Interval& interval = decision.intervals[0];

        obs::AuditOutcome outcome;
        outcome.sim_time = abs_anchor;
        outcome.event = 0;
        outcome.truth_present = label.present;
        outcome.predicted_present = predicted;
        if (label.present && predicted) {
          outcome.start_covered = interval.start <= label.start;
          outcome.end_covered = interval.end >= label.end;
        }
        auditor.Observe(outcome);
        if (report.breach_time < 0 && auditor.any_breach()) {
          report.breach_time = abs_anchor;
        }

        RecoveryPhase* phase = &report.pre_shift;
        if (abs_anchor >= report.shift_frame) {
          phase = report.first_swap_time >= 0 ? &report.post_swap
                                              : &report.post_shift;
        }
        ++phase->boundaries;
        if (predicted) phase->relayed_frames += interval.length();
        if (label.present) {
          ++phase->positives;
          if (!predicted) ++phase->misses;
        }
        if (label.present && predicted) {
          phase->endpoints += 2;
          phase->miscovered += (outcome.start_covered ? 0 : 1) +
                               (outcome.end_covered ? 0 : 1);
        }

        report.decision_digest =
            FnvFold(report.decision_digest, static_cast<uint64_t>(abs_anchor));
        report.decision_digest =
            FnvFold(report.decision_digest, predicted ? 1 : 0);
        report.decision_digest = FnvFold(
            report.decision_digest, static_cast<uint64_t>(interval.start));
        report.decision_digest = FnvFold(
            report.decision_digest, static_cast<uint64_t>(interval.end));

        // Restore tracking: indicators accumulate only after a swap (and
        // restart at every subsequent swap).
        if (report.first_swap_time >= 0) {
          if (label.present) miss_window.Add(!predicted);
          if (label.present && predicted) {
            cover_window.Add(!outcome.start_covered);
            cover_window.Add(!outcome.end_covered);
          }
          if (report.restore_time < 0 && miss_window.Full() &&
              cover_window.Full() && miss_window.Rate() <= miss_burn &&
              cover_window.Rate() <= miscover_burn) {
            report.restore_time = abs_anchor;
          }
        }

        if (loop != nullptr) {
          EVENTHIT_CHECK(current_scores != nullptr);
          if (loop->Observe(abs_anchor, truth, *current_scores)) {
            if (report.first_swap_time < 0) {
              report.first_swap_time = abs_anchor;
            }
            miss_window.Reset();
            cover_window.Reset();
            report.restore_time = -1;
          }
        }
      });

  data::Record pending;
  for (int64_t frame = report.stream_begin; frame < report.stream_end;
       ++frame) {
    if (marshaller.PushFrameDeferred(rig.video.FrameFeatures(frame),
                                     &pending)) {
      const core::EventScores scores = rig.model->Predict(pending);
      current_scores = &scores;
      marshaller.CompletePrediction(strategy.DecideFromScores(scores));
      current_scores = nullptr;
    }
  }
  auditor.Finalize(report.stream_end);
  report.end_breached = auditor.any_breach();
  if (loop != nullptr) {
    report.recal = loop->stats();
    report.alarm_time = report.recal.first_alarm_time;
    report.swap_count = report.recal.swaps;
  }

  int64_t trigger_time = -1;
  for (const int64_t t : {report.breach_time, report.alarm_time}) {
    if (t < 0) continue;
    trigger_time = trigger_time < 0 ? t : std::min(trigger_time, t);
  }
  if (report.restore_time >= 0 && trigger_time >= 0) {
    report.time_to_restore = report.restore_time - trigger_time;
  }
  const double pre_spill = report.pre_shift.SpillPerBoundary();
  const RecoveryPhase& after_phase =
      report.swap_count > 0 ? report.post_swap : report.post_shift;
  report.spill_overshoot =
      pre_spill > 0.0 ? after_phase.SpillPerBoundary() / pre_spill : 0.0;
  return report;
}

}  // namespace

RecalConfig DefaultLabRecalConfig() {
  RecalConfig config;
  // A window of one horizon-boundary record per 200 frames: 48 records
  // spans ~9.6k frames, so pre-shift records roll out within one cooldown
  // or two of the shift and rebuilds calibrate on the new regime rather
  // than a stale mix.
  config.window_capacity = 48;
  config.min_records = 48;
  config.min_positives = 10;
  config.cooldown_frames = 3000;
  // ~1e3 average run length: the lab streams tens of thousands of quiet
  // observations at most, not the 1e5 the deployment default assumes.
  config.drift.log_threshold = std::log(1e3);
  return config;
}

Result<RecoveryReport> RunRecovery(const RecoveryLabConfig& config) {
  auto rig = BuildRig(config);
  if (!rig.ok()) return rig.status();
  return StreamOnce(rig.value(), config, config.recal);
}

Result<RecoveryControl> RunRecoveryControl(const RecoveryLabConfig& config) {
  auto rig = BuildRig(config);
  if (!rig.ok()) return rig.status();
  RecoveryControl control;
  control.with_recal = StreamOnce(rig.value(), config, /*recal_on=*/true);
  control.without_recal =
      StreamOnce(rig.value(), config, /*recal_on=*/false);
  return control;
}

}  // namespace eventhit::adapt
