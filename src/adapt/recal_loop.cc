#include "adapt/recal_loop.h"

#include <utility>
#include <vector>

#include "common/check.h"
#include "obs/log.h"
#include "obs/schema.h"

namespace eventhit::adapt {

RecalLoop::RecalLoop(const core::EventHitModel* model,
                     core::EventHitStrategy* strategy,
                     const obs::GuarantyAuditor* auditor,
                     const RecalConfig& config,
                     obs::MetricsRegistry* metrics)
    : model_(model),
      strategy_(strategy),
      auditor_(auditor),
      config_(config),
      recalibrator_(model, config.window_capacity, config.tau2),
      detector_(config.drift) {
  EVENTHIT_CHECK(model_ != nullptr);
  EVENTHIT_CHECK(strategy_ != nullptr);
  EVENTHIT_CHECK_GE(config_.min_records, 1u);
  EVENTHIT_CHECK_GE(config_.min_positives, 1u);
  obs::MetricsRegistry& registry =
      metrics != nullptr ? *metrics : obs::MetricsRegistry::Global();
  triggers_breach_ = registry.GetCounter(obs::names::kRecalTriggersBreach);
  triggers_drift_ = registry.GetCounter(obs::names::kRecalTriggersDrift);
  refusals_cooldown_ =
      registry.GetCounter(obs::names::kRecalRefusalsCooldown);
  refusals_min_samples_ =
      registry.GetCounter(obs::names::kRecalRefusalsMinSamples);
  swaps_ = registry.GetCounter(obs::names::kRecalSwaps);
  last_swap_frame_ = registry.GetGauge(obs::names::kRecalLastSwapFrame);
}

bool RecalLoop::Observe(int64_t sim_time, const data::Record& truth,
                        const core::EventScores& scores) {
  ++stats_.records_observed;
  recalibrator_.AddLabeledRecord(truth);
  // Positive records drive the martingale: under the live calibration
  // their p-values are ~uniform when stationary and skew to 0 under
  // drift. Existence-threshold strategies (EHO/EHR) carry no C-CLASSIFY,
  // so only the auditor trigger is available for them.
  const core::CClassify* cclassify = strategy_->cclassify();
  if (cclassify != nullptr) {
    std::vector<double> p_values;
    for (size_t k = 0; k < truth.labels.size(); ++k) {
      if (!truth.labels[k].present) continue;
      if (p_values.empty()) p_values = cclassify->PValues(scores);
      if (detector_.Observe(p_values[k]) && stats_.first_alarm_time < 0) {
        stats_.first_alarm_time = sim_time;
      }
    }
  }
  return MaybeRecalibrate(sim_time);
}

bool RecalLoop::MaybeRecalibrate(int64_t sim_time) {
  if (auditor_ != nullptr &&
      auditor_->breach_count() > consumed_breaches_) {
    const int64_t fresh = auditor_->breach_count() - consumed_breaches_;
    consumed_breaches_ = auditor_->breach_count();
    stats_.triggers_breach += fresh;
    triggers_breach_->Add(fresh);
    trigger_pending_ = true;
  }
  if (detector_.drift_detected() && !drift_consumed_) {
    drift_consumed_ = true;
    ++stats_.triggers_drift;
    triggers_drift_->Add(1);
    trigger_pending_ = true;
  }
  if (!trigger_pending_) return false;
  if (stats_.first_trigger_time < 0) stats_.first_trigger_time = sim_time;

  if (stats_.last_swap_time >= 0 &&
      sim_time - stats_.last_swap_time < config_.cooldown_frames) {
    ++stats_.refusals_cooldown;
    refusals_cooldown_->Add(1);
    return false;
  }
  if (!recalibrator_.CanRebuild(config_.min_records,
                                config_.min_positives)) {
    ++stats_.refusals_min_samples;
    refusals_min_samples_->Add(1);
    return false;
  }
  Swap(sim_time);
  return true;
}

void RecalLoop::Swap(int64_t sim_time) {
  std::unique_ptr<core::CClassify> cclassify =
      recalibrator_.BuildCClassify();
  std::unique_ptr<core::CRegress> cregress = recalibrator_.BuildCRegress();
  // One-call swap: no decision can see old C-CLASSIFY with new C-REGRESS.
  strategy_->set_calibrators(cclassify.get(), cregress.get());
  retired_cclassify_ = std::move(live_cclassify_);
  retired_cregress_ = std::move(live_cregress_);
  live_cclassify_ = std::move(cclassify);
  live_cregress_ = std::move(cregress);

  // A fresh calibration resets the drift evidence; the next alarm must be
  // earned against the new quantiles.
  detector_.Reset();
  drift_consumed_ = false;
  trigger_pending_ = false;

  ++stats_.swaps;
  if (stats_.first_swap_time < 0) stats_.first_swap_time = sim_time;
  stats_.last_swap_time = sim_time;
  swaps_->Add(1);
  last_swap_frame_->Set(static_cast<double>(sim_time));
  obs::Logger::Global().Log(
      obs::LogLevel::kInfo, "recal", "hot_swap", sim_time,
      {obs::LogInt("window",
                   static_cast<int64_t>(recalibrator_.size())),
       obs::LogInt("swap", stats_.swaps)});
}

}  // namespace eventhit::adapt
