#include "obs/schema.h"

#include <algorithm>

namespace eventhit::obs {

std::vector<std::string> AllMetricNames() {
  std::vector<std::string> all = {
      names::kMarshallerFramesTotal,
      names::kMarshallerFramesRelayed,
      names::kMarshallerFramesFiltered,
      names::kMarshallerHorizonsPredicted,
      names::kMarshallerRelayOrders,
      names::kMarshallerEventsPredictedPresent,
      names::kMarshallerEventsPredictedAbsent,
      names::kCloudRequests,
      names::kCloudFramesProcessed,
      names::kRelayOrdersSubmitted,
      names::kRelayOrdersDelivered,
      names::kRelayOrdersDropped,
      names::kRelayOrdersReplayed,
      names::kRelayFramesSubmitted,
      names::kRelayFramesDelivered,
      names::kRelayFramesDropped,
      names::kRelayFramesBuffered,
      names::kRelayAttemptsTotal,
      names::kRelayAttemptsRetries,
      names::kRelayFaultErrors,
      names::kRelayFaultLatencySpikes,
      names::kBreakerTransitions,
      names::kBreakerOpens,
      names::kBreakerState,
      names::kRelayQueueDepth,
      names::kRelayRequestAttempts,
      names::kRelayBackoffSeconds,
      names::kDriftObservations,
      names::kDriftAlarms,
      names::kRecalibratorRecordsAdded,
      names::kRecalibratorRebuildsCClassify,
      names::kRecalibratorRebuildsCRegress,
      names::kRecalTriggersBreach,
      names::kRecalTriggersDrift,
      names::kRecalRefusalsCooldown,
      names::kRecalRefusalsMinSamples,
      names::kRecalSwaps,
      names::kThreadPoolParallelForCalls,
      names::kThreadPoolChunksExecuted,
      names::kThreadPoolItemsProcessed,
      names::kThreadPoolWorkerBusyMicros,
      names::kCloudInvoiceCostUsd,
      names::kCloudInvoiceComputeSeconds,
      names::kDriftLogMartingale,
      names::kRecalibratorWindowSize,
      names::kRecalLastSwapFrame,
      names::kThreadPoolThreads,
      names::kPipelineRelayedFramesPerHorizon,
      names::kMarshallerRelayOrderFrames,
      names::kCloudRequestFrames,
      names::kCloudRequestLatencySeconds,
      names::kThreadPoolParallelForItems,
      names::kPredictBatchSize,
      names::kAuditOutcomes,
      names::kAuditPositives,
      names::kAuditMisses,
      names::kAuditEndpoints,
      names::kAuditMiscovered,
      names::kAuditBreaches,
      names::kAuditMissRate,
      names::kAuditMissBudget,
      names::kAuditMissWilsonLower,
      names::kAuditMiscoverageRate,
      names::kAuditMiscoverageBudget,
      names::kAuditMiscoverageWilsonLower,
      names::kAuditBreachActive,
      names::kTraceEventsDropped,
      names::kLogSuppressed,
      names::kFleetStreamsCompleted,
      names::kFleetFramesPushed,
      names::kFleetRequestsSubmitted,
      names::kFleetBatchesFlushed,
      names::kFleetBatchesFlushFull,
      names::kFleetBatchesFlushDeadline,
      names::kFleetBatchesFlushFinal,
      names::kFleetBudgetBreaches,
      names::kFleetStreamsActive,
      names::kFleetBudgetSpendUsd,
      names::kFleetBatchFill,
      names::kFleetRequestDelayTicks,
      names::kSchedHorizonsScored,
      names::kSchedHorizonsReused,
      names::kSchedFramesScored,
      names::kSchedFramesSkipped,
      names::kSchedFlopsLocalMflops,
      names::kSchedFlopsSavedMflops,
      names::kSchedPolicyStride,
  };
  std::sort(all.begin(), all.end());
  return all;
}

std::vector<std::string> AllSpanNames() {
  std::vector<std::string> all = {
      names::kSpanRunnerBuildEnv,
      names::kSpanRunnerTrain,
      names::kSpanRunnerCalibrate,
      names::kSpanRunnerPredictBatch,
      names::kSpanRunnerDecideBatch,
      names::kSpanCliGenerateStream,
      names::kSpanBenchEvaluateRep,
      names::kSpanNnGemm,
      names::kSpanThreadPoolChunk,
      names::kSpanStageFeatureExtraction,
      names::kSpanStagePredictor,
      names::kSpanStageCi,
      names::kSpanRelayOutage,
      names::kSpanAuditBreach,
      names::kSpanFleetBatch,
  };
  std::sort(all.begin(), all.end());
  return all;
}

std::vector<double> FrameCountBounds() {
  return {10.0, 25.0, 50.0, 100.0, 250.0, 500.0, 1000.0};
}

std::vector<double> LatencySecondsBounds() {
  return {0.01, 0.1, 0.5, 1.0, 5.0, 10.0, 30.0, 60.0};
}

std::vector<double> ItemCountBounds() {
  return {1.0, 10.0, 100.0, 1000.0, 10000.0, 100000.0};
}

std::vector<double> BatchSizeBounds() {
  return {1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0, 256.0, 512.0};
}

std::vector<double> AttemptCountBounds() {
  return {1.0, 2.0, 3.0, 4.0, 6.0, 8.0, 12.0, 16.0};
}

std::vector<double> DelayTickBounds() {
  return {0.0, 1.0, 2.0, 3.0, 4.0, 6.0, 8.0, 12.0, 16.0, 32.0};
}

}  // namespace eventhit::obs
