// Online guarantee auditor: checks, on the simulated stream clock, whether
// the conformal contracts the marshaller was configured with are actually
// holding per event type.
//
// C-CLASSIFY (paper Theorem 4.2) promises P(event missed) <= 1 - c over
// positive records; C-REGRESS (Theorem 5.2) promises each true interval
// endpoint is covered with probability >= alpha. The auditor consumes one
// AuditOutcome per (record, event) pair and maintains, per event type and
// per guarantee:
//
//   * lifetime counts (positives/misses, endpoints/miscovered) — these
//     match the offline REC accounting of eval::ComputeMetrics exactly on
//     the same slice;
//   * rolling fast/slow windows of failure indicators with a burn-rate
//     style breach detector: the breach latches when the fast-window
//     empirical failure rate exceeds burn_factor x budget AND the
//     slow-window Wilson lower confidence bound exceeds the budget, so a
//     breach needs both a fast burn and statistical evidence that it is
//     not sampling noise;
//   * labeled audit.* metrics, audit.breach simulated trace spans, and
//     structured-log records for every latched breach.
//
// The auditor is a pure side channel: it never feeds back into decisions,
// so the parallel==serial determinism contract (DESIGN.md §5c) holds. It
// is not thread-safe — it lives on the single streaming thread, like the
// relay.
#ifndef EVENTHIT_OBS_AUDIT_H_
#define EVENTHIT_OBS_AUDIT_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "obs/log.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace eventhit::obs {

/// One audited (record, event) outcome on the simulated stream clock.
/// `start_covered`/`end_covered` are only consulted when both truth and
/// prediction say the event is present (the only case where C-REGRESS
/// produced an interval that can be scored).
struct AuditOutcome {
  int64_t sim_time = 0;
  int event = 0;
  bool truth_present = false;
  bool predicted_present = false;
  bool start_covered = false;
  bool end_covered = false;
  /// Provenance decision id of the marshalling boundary this outcome
  /// audits (obs/provenance.h); -1 when no ledger is attached. Carried as
  /// an exemplar on the audit.misses / audit.miscovered / audit.breaches
  /// counters so a metric anomaly links to its causal chain.
  int64_t decision_id = -1;
};

struct AuditConfig {
  double confidence = 0.9;  // c: miss budget is 1 - c.
  double coverage = 0.5;    // alpha: miscoverage budget is 1 - alpha.
  /// Burn-rate windows, in failure-track samples (positives for the miss
  /// track, endpoints for the coverage track).
  int fast_window = 32;
  int slow_window = 256;
  /// The fast-window empirical rate must exceed burn_factor x budget
  /// (capped at the midpoint between the budget and 1, so loose budgets
  /// like a 0.5 miscoverage budget stay trippable).
  double burn_factor = 2.0;
  /// z for the one-sided Wilson lower bound on the slow window (1.96 ~
  /// 97.5% one-sided confidence).
  double wilson_z = 1.959963984540054;
  /// Converts sim_time (frames) to seconds for breach trace spans.
  double stream_fps = 30.0;
  /// Simulated-timeline track (tid) for breach spans: 0 for the solo
  /// pipeline, the tenant index in a fleet (paired with a thread_name
  /// metadata record so Perfetto groups per-tenant spans).
  int32_t sim_tid = 0;
  /// Display names per event index; missing entries render as "event<k>".
  std::vector<std::string> event_labels;
};

/// One-sided Wilson score lower bound for a failure proportion of `fails`
/// out of `n`; 0 when n == 0.
double WilsonLowerBound(int64_t fails, int64_t n, double z);

/// The two guarantee tracks the auditor scores per event type.
enum class AuditGuarantee { kMiss = 0, kMiscoverage = 1 };

const char* AuditGuaranteeName(AuditGuarantee guarantee);  // "miss"/...

class GuarantyAuditor {
 public:
  /// nullptr registry/trace/log select the process-wide defaults (trace
  /// nullptr disables spans, matching TraceSpan's convention; metrics and
  /// log fall back to their Global() instances).
  GuarantyAuditor(const AuditConfig& config,
                  MetricsRegistry* metrics = nullptr,
                  TraceBuffer* trace = nullptr, Logger* log = nullptr);

  GuarantyAuditor(const GuarantyAuditor&) = delete;
  GuarantyAuditor& operator=(const GuarantyAuditor&) = delete;

  /// Feeds one outcome. Outcomes must arrive in non-decreasing sim_time
  /// order (the stream clock).
  void Observe(const AuditOutcome& outcome);

  /// Emits one audit.breach simulated span per latched breach, covering
  /// [breach time, end_sim_time] on the simulated timeline. Idempotent.
  void Finalize(int64_t end_sim_time);

  // --- Lifetime accounting (exact, for cross-checks against the offline
  // --- evaluation) ----------------------------------------------------
  int64_t outcomes() const { return outcomes_; }
  int64_t positives(int event) const;
  int64_t misses(int event) const;
  int64_t endpoints(int event) const;
  int64_t miscovered(int event) const;
  int64_t total_positives() const;
  int64_t total_misses() const;
  int64_t total_endpoints() const;
  int64_t total_miscovered() const;

  /// Lifetime empirical rates (0 when the denominator is 0). The miss
  /// rate over the full slice equals 1 - REC_c of the offline metrics.
  double MissRate(int event) const;
  double MiscoverageRate(int event) const;

  // --- Breach state ----------------------------------------------------
  bool breached(int event, AuditGuarantee guarantee) const;
  bool any_breach() const { return breaches_ > 0; }
  int64_t breach_count() const { return breaches_; }
  /// Sim time the breach latched; -1 when not breached.
  int64_t breach_time(int event, AuditGuarantee guarantee) const;
  /// Decision id of the most recently latched breach (-1 when none
  /// breached or the outcomes carried no provenance ids) — the exemplar
  /// the fleet folds into the exported audit.breaches counter.
  int64_t last_breach_decision_id() const { return last_breach_decision_; }

  const AuditConfig& config() const { return config_; }

 private:
  /// Rolling failure-indicator window plus lifetime counts for one
  /// (event, guarantee) track.
  struct Track {
    int64_t n = 0;      // Lifetime samples.
    int64_t fails = 0;  // Lifetime failures.
    std::vector<uint8_t> ring;  // Last slow_window indicators.
    size_t head = 0;
    int64_t ring_fails = 0;  // Failures currently in the ring.
    bool breached = false;
    int64_t breach_time = -1;
    Gauge* rate = nullptr;
    Gauge* wilson = nullptr;
    Gauge* breach_active = nullptr;
    Counter* breach_counter = nullptr;
  };

  struct EventState {
    std::string label;
    Counter* outcomes = nullptr;
    Counter* positives = nullptr;
    Counter* misses = nullptr;
    Counter* endpoints = nullptr;
    Counter* miscovered = nullptr;
    Track miss;
    Track coverage;
  };

  EventState& State(int event);
  void ObserveTrack(EventState& state, Track* track,
                    AuditGuarantee guarantee, bool fail, int64_t sim_time,
                    int64_t decision_id);

  const AuditConfig config_;
  MetricsRegistry* const metrics_;
  TraceBuffer* const trace_;
  Logger* const log_;
  const double miss_budget_;
  const double miscoverage_budget_;

  Counter* total_outcomes_;
  Counter* total_positives_;
  Counter* total_misses_;
  Counter* total_endpoints_;
  Counter* total_miscovered_;
  Counter* total_breaches_;

  std::map<int, EventState> events_;
  int64_t outcomes_ = 0;
  int64_t breaches_ = 0;
  int64_t last_breach_decision_ = -1;
  bool finalized_ = false;
};

}  // namespace eventhit::obs

#endif  // EVENTHIT_OBS_AUDIT_H_
