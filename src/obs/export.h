// Snapshot exporters: render a MetricsSnapshot as a human table
// (common/table_printer), CSV (common/csv_writer) or JSON, and write
// trace buffers to disk. Lives in its own library (eventhit_obs_export)
// so the core obs layer stays dependency-free and usable from
// common/thread_pool without a cycle.
#ifndef EVENTHIT_OBS_EXPORT_H_
#define EVENTHIT_OBS_EXPORT_H_

#include <ostream>
#include <string>

#include "common/status.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace eventhit::obs {

/// Pretty-prints the snapshot as aligned ASCII tables (one section per
/// metric kind; empty kinds are skipped).
void PrintMetricsTable(const MetricsSnapshot& snapshot, std::ostream& os);

/// One row per metric: kind,name,value,count,sum,min,max (histograms fill
/// every column; counters/gauges leave the rest empty).
std::string MetricsToCsv(const MetricsSnapshot& snapshot);

/// {"counters":{name:value,...},"gauges":{...},"histograms":{name:
///  {"bounds":[...],"bucket_counts":[...],"count":n,"sum":s,"min":m,
///   "max":M},...}}
std::string MetricsToJson(const MetricsSnapshot& snapshot);

/// Writes MetricsToJson to `path` (overwrites).
Status WriteMetricsJson(const MetricsSnapshot& snapshot,
                        const std::string& path);

/// Writes buffer.ToChromeJson() to `path` (overwrites); the file loads in
/// chrome://tracing and Perfetto.
Status WriteTraceJson(const TraceBuffer& buffer, const std::string& path);

}  // namespace eventhit::obs

#endif  // EVENTHIT_OBS_EXPORT_H_
