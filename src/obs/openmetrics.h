// OpenMetrics text rendition of a MetricsSnapshot, so the exit snapshot
// (and any periodic snapshot) can be scraped or diffed with standard
// tooling. Mapping documented in docs/TELEMETRY.md:
//   * metric names mangle dots (and any other invalid character) to
//     underscores; a leading digit gains a '_' prefix;
//   * labeled series `base{k="v"}` (obs::LabeledName) become OpenMetrics
//     label sets with `\\`, `\"` and newline escaped;
//   * counters render as `<name>_total`, histograms as the standard
//     `_bucket{le=...}` / `_sum` / `_count` triple with cumulative
//     buckets and a trailing `le="+Inf"`;
//   * the exposition ends with `# EOF`.
#ifndef EVENTHIT_OBS_OPENMETRICS_H_
#define EVENTHIT_OBS_OPENMETRICS_H_

#include <string>
#include <utility>
#include <vector>

#include "common/status.h"
#include "obs/metrics.h"

namespace eventhit::obs {

/// Mangles a base metric name into the OpenMetrics charset
/// ([a-zA-Z_:][a-zA-Z0-9_:]*): dots and other invalid characters become
/// underscores; a leading digit is prefixed with '_'.
std::string OpenMetricsName(const std::string& base);

/// Splits a flattened series name produced by LabeledName back into its
/// base name and (unescaped) labels. Unlabeled names return empty labels.
struct ParsedSeries {
  std::string base;
  Labels labels;
};
ParsedSeries ParseSeriesName(const std::string& name);

/// Escapes a label value for an OpenMetrics exposition (backslash, quote,
/// newline).
std::string OpenMetricsLabelValue(const std::string& value);

/// Renders the whole snapshot as an OpenMetrics text exposition.
std::string MetricsToOpenMetrics(const MetricsSnapshot& snapshot);

/// Writes MetricsToOpenMetrics to `path` (overwrites).
Status WriteOpenMetrics(const MetricsSnapshot& snapshot,
                        const std::string& path);

}  // namespace eventhit::obs

#endif  // EVENTHIT_OBS_OPENMETRICS_H_
