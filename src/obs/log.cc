#include "obs/log.h"

#include <algorithm>
#include <utility>

#include "obs/json_util.h"
#include "obs/schema.h"

namespace eventhit::obs {

const char* LogLevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "debug";
    case LogLevel::kInfo:
      return "info";
    case LogLevel::kWarn:
      return "warn";
    case LogLevel::kError:
      return "error";
  }
  return "info";
}

bool ParseLogLevel(const std::string& text, LogLevel* level) {
  if (text == "debug") {
    *level = LogLevel::kDebug;
  } else if (text == "info") {
    *level = LogLevel::kInfo;
  } else if (text == "warn" || text == "warning") {
    *level = LogLevel::kWarn;
  } else if (text == "error") {
    *level = LogLevel::kError;
  } else {
    return false;
  }
  return true;
}

LogField LogStr(const std::string& key, const std::string& value) {
  return {key, "\"" + JsonEscape(value) + "\""};
}

LogField LogInt(const std::string& key, int64_t value) {
  return {key, std::to_string(value)};
}

LogField LogNum(const std::string& key, double value) {
  return {key, JsonNumber(value)};
}

LogField LogBool(const std::string& key, bool value) {
  return {key, value ? "true" : "false"};
}

Logger::Logger(size_t capacity) : capacity_(capacity == 0 ? 1 : capacity) {}

void Logger::Log(LogLevel level, const std::string& component,
                 const std::string& event, int64_t sim_time,
                 std::vector<LogField> fields) {
  std::lock_guard<std::mutex> lock(mu_);
  if (level < min_level_) return;
  int64_t& count = per_key_[component + '\0' + event];
  if (count >= rate_limit_) {
    ++suppressed_;
    if (metrics_ != nullptr) {
      // Surface the suppression per component (docs/TELEMETRY.md,
      // log.suppressed) so throttled narratives are visible on
      // dashboards instead of silently truncated. Registration is cached;
      // this path is already off the hot loop (rate-limited keys only).
      Counter*& counter = suppressed_counters_[component];
      if (counter == nullptr) {
        counter = metrics_->GetCounter(names::kLogSuppressed,
                                       {{"component", component}});
      }
      counter->Add(1);
    }
    return;
  }
  if (records_.size() >= capacity_) {
    ++dropped_;
    return;
  }
  ++count;
  LogRecord record;
  record.sim_time = sim_time;
  record.seq = next_seq_++;
  record.level = level;
  record.component = component;
  record.event = event;
  record.fields = std::move(fields);
  records_.push_back(std::move(record));
}

void Logger::set_min_level(LogLevel level) {
  std::lock_guard<std::mutex> lock(mu_);
  min_level_ = level;
}

LogLevel Logger::min_level() const {
  std::lock_guard<std::mutex> lock(mu_);
  return min_level_;
}

void Logger::set_rate_limit(int64_t n) {
  std::lock_guard<std::mutex> lock(mu_);
  rate_limit_ = n < 0 ? 0 : n;
}

void Logger::set_metrics(MetricsRegistry* metrics) {
  std::lock_guard<std::mutex> lock(mu_);
  metrics_ = metrics;
  suppressed_counters_.clear();
}

std::vector<LogRecord> Logger::Records() const {
  std::vector<LogRecord> out;
  {
    std::lock_guard<std::mutex> lock(mu_);
    out = records_;
  }
  std::stable_sort(out.begin(), out.end(),
                   [](const LogRecord& a, const LogRecord& b) {
                     if (a.sim_time != b.sim_time) {
                       return a.sim_time < b.sim_time;
                     }
                     return a.seq < b.seq;
                   });
  return out;
}

std::string Logger::ToJsonl() const {
  std::string out;
  for (const LogRecord& record : Records()) {
    out += "{\"t\":" + std::to_string(record.sim_time) +
           ",\"seq\":" + std::to_string(record.seq) + ",\"level\":\"" +
           LogLevelName(record.level) + "\",\"component\":\"" +
           JsonEscape(record.component) + "\",\"event\":\"" +
           JsonEscape(record.event) + "\"";
    for (const LogField& field : record.fields) {
      out += ",\"" + JsonEscape(field.key) + "\":" + field.json_value;
    }
    out += "}\n";
  }
  return out;
}

int64_t Logger::emitted() const {
  std::lock_guard<std::mutex> lock(mu_);
  return static_cast<int64_t>(records_.size());
}

int64_t Logger::suppressed() const {
  std::lock_guard<std::mutex> lock(mu_);
  return suppressed_;
}

int64_t Logger::dropped() const {
  std::lock_guard<std::mutex> lock(mu_);
  return dropped_;
}

void Logger::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  records_.clear();
  per_key_.clear();
  next_seq_ = 0;
  suppressed_ = 0;
  dropped_ = 0;
}

Logger& Logger::Global() {
  static Logger* logger = new Logger();
  return *logger;
}

}  // namespace eventhit::obs
