#include "obs/export.h"

#include <fstream>

#include "common/csv_writer.h"
#include "common/table_printer.h"
#include "obs/json_util.h"

namespace eventhit::obs {

namespace {

Status WriteStringToFile(const std::string& contents,
                         const std::string& path) {
  std::ofstream file(path, std::ios::binary | std::ios::trunc);
  if (!file) {
    return InternalError("cannot open output file: " + path);
  }
  file << contents;
  if (!file.good()) {
    return InternalError("short write to output file: " + path);
  }
  return OkStatus();
}

}  // namespace

void PrintMetricsTable(const MetricsSnapshot& snapshot, std::ostream& os) {
  if (!snapshot.counters.empty()) {
    TablePrinter table({"Counter", "Value"});
    for (const CounterSnapshot& counter : snapshot.counters) {
      table.AddRow({counter.name, Fmt(counter.value)});
    }
    table.Print(os);
  }
  if (!snapshot.gauges.empty()) {
    if (!snapshot.counters.empty()) os << "\n";
    TablePrinter table({"Gauge", "Value"});
    for (const GaugeSnapshot& gauge : snapshot.gauges) {
      table.AddRow({gauge.name, Fmt(gauge.value, 4)});
    }
    table.Print(os);
  }
  if (!snapshot.histograms.empty()) {
    if (!snapshot.counters.empty() || !snapshot.gauges.empty()) os << "\n";
    TablePrinter table({"Histogram", "Count", "Mean", "P50", "P99", "Min",
                        "Max"});
    for (const HistogramSnapshot& histogram : snapshot.histograms) {
      table.AddRow({histogram.name, Fmt(histogram.count),
                    Fmt(histogram.Mean(), 3),
                    Fmt(histogram.ApproxQuantile(0.5), 3),
                    Fmt(histogram.ApproxQuantile(0.99), 3),
                    Fmt(histogram.min, 3), Fmt(histogram.max, 3)});
    }
    table.Print(os);
  }
}

std::string MetricsToCsv(const MetricsSnapshot& snapshot) {
  CsvWriter csv({"kind", "name", "value", "count", "sum", "min", "max"});
  for (const CounterSnapshot& counter : snapshot.counters) {
    csv.AddRow({"counter", counter.name, Fmt(counter.value), "", "", "", ""});
  }
  for (const GaugeSnapshot& gauge : snapshot.gauges) {
    csv.AddRow({"gauge", gauge.name, Fmt(gauge.value, 6), "", "", "", ""});
  }
  for (const HistogramSnapshot& histogram : snapshot.histograms) {
    csv.AddRow({"histogram", histogram.name, Fmt(histogram.Mean(), 6),
                Fmt(histogram.count), Fmt(histogram.sum, 6),
                Fmt(histogram.min, 6), Fmt(histogram.max, 6)});
  }
  return csv.ToString();
}

std::string MetricsToJson(const MetricsSnapshot& snapshot) {
  std::string json = "{\"counters\":{";
  bool first = true;
  for (const CounterSnapshot& counter : snapshot.counters) {
    if (!first) json += ",";
    first = false;
    json += "\"" + JsonEscape(counter.name) +
            "\":" + std::to_string(counter.value);
  }
  json += "},\"gauges\":{";
  first = true;
  for (const GaugeSnapshot& gauge : snapshot.gauges) {
    if (!first) json += ",";
    first = false;
    json += "\"" + JsonEscape(gauge.name) + "\":" + JsonNumber(gauge.value);
  }
  json += "},\"histograms\":{";
  first = true;
  for (const HistogramSnapshot& histogram : snapshot.histograms) {
    if (!first) json += ",";
    first = false;
    json += "\"" + JsonEscape(histogram.name) + "\":{\"bounds\":[";
    for (size_t i = 0; i < histogram.bounds.size(); ++i) {
      if (i > 0) json += ",";
      json += JsonNumber(histogram.bounds[i]);
    }
    json += "],\"bucket_counts\":[";
    for (size_t i = 0; i < histogram.bucket_counts.size(); ++i) {
      if (i > 0) json += ",";
      json += std::to_string(histogram.bucket_counts[i]);
    }
    json += "],\"count\":" + std::to_string(histogram.count) +
            ",\"sum\":" + JsonNumber(histogram.sum) +
            ",\"min\":" + JsonNumber(histogram.min) +
            ",\"max\":" + JsonNumber(histogram.max) + "}";
  }
  json += "}}";
  return json;
}

Status WriteMetricsJson(const MetricsSnapshot& snapshot,
                        const std::string& path) {
  return WriteStringToFile(MetricsToJson(snapshot), path);
}

Status WriteTraceJson(const TraceBuffer& buffer, const std::string& path) {
  return WriteStringToFile(buffer.ToChromeJson(), path);
}

}  // namespace eventhit::obs
