#include "obs/timeseries.h"

#include "obs/json_util.h"

namespace eventhit::obs {

MetricsDeltaWriter::MetricsDeltaWriter(
    std::ostream* os, std::vector<std::string> exclude_prefixes)
    : os_(os), exclude_prefixes_(std::move(exclude_prefixes)) {}

bool MetricsDeltaWriter::Excluded(const std::string& name) const {
  for (const std::string& prefix : exclude_prefixes_) {
    if (name.compare(0, prefix.size(), prefix) == 0) return true;
  }
  return false;
}

void MetricsDeltaWriter::Emit(const MetricsSnapshot& snapshot,
                              int64_t sim_time) {
  std::string line = "{\"t\":" + std::to_string(sim_time) + ",\"counters\":{";
  bool first = true;
  for (const CounterSnapshot& counter : snapshot.counters) {
    if (Excluded(counter.name)) continue;
    int64_t& last = last_counters_[counter.name];
    const int64_t delta = counter.value - last;
    if (delta == 0) continue;
    last = counter.value;
    if (!first) line += ",";
    first = false;
    line += "\"" + JsonEscape(counter.name) + "\":" + std::to_string(delta);
  }
  line += "},\"gauges\":{";
  first = true;
  for (const GaugeSnapshot& gauge : snapshot.gauges) {
    if (Excluded(gauge.name)) continue;
    auto it = last_gauges_.find(gauge.name);
    if (it != last_gauges_.end() && it->second == gauge.value) continue;
    last_gauges_[gauge.name] = gauge.value;
    if (!first) line += ",";
    first = false;
    line += "\"" + JsonEscape(gauge.name) + "\":" + JsonNumber(gauge.value);
  }
  line += "},\"histograms\":{";
  first = true;
  for (const HistogramSnapshot& histogram : snapshot.histograms) {
    if (Excluded(histogram.name)) continue;
    auto& last = last_histograms_[histogram.name];
    const int64_t count_delta = histogram.count - last.first;
    if (count_delta == 0) continue;
    const double sum_delta = histogram.sum - last.second;
    last = {histogram.count, histogram.sum};
    if (!first) line += ",";
    first = false;
    line += "\"" + JsonEscape(histogram.name) +
            "\":{\"count\":" + std::to_string(count_delta) +
            ",\"sum\":" + JsonNumber(sum_delta) + "}";
  }
  line += "}}\n";
  *os_ << line;
}

}  // namespace eventhit::obs
