// Structured logging: leveled, component-tagged JSONL events collected in
// a bounded in-memory buffer and flushed once at exit (--log-out on the
// CLI). Schema in docs/TELEMETRY.md.
//
// Determinism contract: every record carries the *simulated* stream clock
// of the component that emitted it plus a global sequence number assigned
// under the logger mutex; the exported JSONL is sorted by (sim_time, seq).
// All emission sites live on the single streaming thread (relay, breaker,
// drift detector, recalibrator, auditor transitions), so seq order — and
// therefore the exported file — is identical across --threads settings.
//
// Rate limiting is deterministic too: instead of a wall-clock token
// bucket, each (component, event) key keeps only its first
// `max_per_key` records and counts the rest as suppressed. A replayed
// chaos run therefore produces a byte-identical narrative.
#ifndef EVENTHIT_OBS_LOG_H_
#define EVENTHIT_OBS_LOG_H_

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "obs/metrics.h"

namespace eventhit::obs {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

/// Lower-case level name ("debug", "info", "warn", "error").
const char* LogLevelName(LogLevel level);

/// Parses a level name (as printed by LogLevelName). Returns false and
/// leaves `*level` untouched on unknown input.
bool ParseLogLevel(const std::string& text, LogLevel* level);

/// One key plus a pre-rendered JSON value (callers pick the rendering so
/// the logger itself stays dependency-free).
struct LogField {
  std::string key;
  std::string json_value;
};

LogField LogStr(const std::string& key, const std::string& value);
LogField LogInt(const std::string& key, int64_t value);
LogField LogNum(const std::string& key, double value);
LogField LogBool(const std::string& key, bool value);

struct LogRecord {
  int64_t sim_time = 0;  // Component's simulated stream clock.
  int64_t seq = 0;       // Global arrival order (assigned by the logger).
  LogLevel level = LogLevel::kInfo;
  std::string component;
  std::string event;
  std::vector<LogField> fields;
};

/// Bounded, deterministic structured-event collector.
class Logger {
 public:
  explicit Logger(size_t capacity = 65536);

  Logger(const Logger&) = delete;
  Logger& operator=(const Logger&) = delete;

  /// Records one event. Drops it silently (but counted) when below the
  /// minimum level, beyond the per-(component, event) rate limit, or when
  /// the buffer is full.
  void Log(LogLevel level, const std::string& component,
           const std::string& event, int64_t sim_time,
           std::vector<LogField> fields = {});

  void set_min_level(LogLevel level);
  LogLevel min_level() const;

  /// First `n` records kept per (component, event) key; the rest count as
  /// suppressed. Applies to records accepted after the call.
  void set_rate_limit(int64_t n);

  /// Attaches a metrics registry: rate-limiter suppressions additionally
  /// surface as the `log.suppressed{component=...}` labeled counter
  /// (docs/TELEMETRY.md) instead of only the silent suppressed() tally.
  /// nullptr detaches. Counter handles are cached per component, so the
  /// registry must outlive the logger's use.
  void set_metrics(MetricsRegistry* metrics);

  /// Retained records sorted by (sim_time, seq).
  std::vector<LogRecord> Records() const;

  /// One JSON object per line, in Records() order:
  ///   {"t":12,"seq":3,"level":"warn","component":"relay",
  ///    "event":"breaker_transition","from":"closed","to":"open"}
  std::string ToJsonl() const;

  int64_t emitted() const;     // Accepted into the buffer.
  int64_t suppressed() const;  // Rejected by the rate limit.
  int64_t dropped() const;     // Rejected because the buffer was full.

  /// Discards records and counters; level and rate limit survive.
  void Clear();

  /// The process-wide logger used by default instrumentation.
  static Logger& Global();

 private:
  const size_t capacity_;
  mutable std::mutex mu_;
  LogLevel min_level_ = LogLevel::kInfo;      // Guarded by mu_.
  int64_t rate_limit_ = 128;                  // Guarded by mu_.
  int64_t next_seq_ = 0;                      // Guarded by mu_.
  int64_t suppressed_ = 0;                    // Guarded by mu_.
  int64_t dropped_ = 0;                       // Guarded by mu_.
  std::vector<LogRecord> records_;            // Guarded by mu_.
  std::map<std::string, int64_t> per_key_;    // component\0event -> count.
  MetricsRegistry* metrics_ = nullptr;        // Guarded by mu_.
  // Cached log.suppressed{component=...} handles. Guarded by mu_.
  std::map<std::string, Counter*> suppressed_counters_;
};

}  // namespace eventhit::obs

#endif  // EVENTHIT_OBS_LOG_H_
