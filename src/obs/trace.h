// Trace spans: RAII scoped timers feeding a bounded in-memory ring buffer
// that exports Chrome trace-event JSON (loadable in chrome://tracing and
// Perfetto). Schema in docs/TELEMETRY.md.
//
// Two timelines share one buffer, distinguished by pid:
//   pid 1 ("wall")      — real measured durations from TraceSpan.
//   pid 2 ("simulated") — synthetic spans on the pipeline cost model's
//                         clock (cloud/cost_model's per-horizon stage
//                         timing), so figure accounting can be derived
//                         from span aggregation instead of bespoke sums.
//
// Recording takes a short mutex; spans wrap pipeline *stages* (training,
// calibration, a ParallelFor chunk), never per-frame work, so the cost is
// off the hot path by construction.
#ifndef EVENTHIT_OBS_TRACE_H_
#define EVENTHIT_OBS_TRACE_H_

#include <chrono>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace eventhit::obs {

/// Process ids separating the two timelines in the exported trace.
inline constexpr int32_t kWallPid = 1;
inline constexpr int32_t kSimulatedPid = 2;

/// One completed span ("ph":"X" in the trace-event format).
struct TraceEvent {
  std::string name;
  std::string category;
  int64_t start_us = 0;     // Microseconds since the buffer's epoch.
  int64_t duration_us = 0;
  int32_t pid = kWallPid;
  int32_t tid = 0;          // Stable thread index (ThreadIndex()).
};

/// Bounded MPMC ring of completed spans. At capacity the oldest events are
/// overwritten and `dropped()` counts the loss — telemetry must never grow
/// without bound inside a long-running pipeline.
class Counter;
class MetricsRegistry;

class TraceBuffer {
 public:
  /// When `metrics` is non-null every ring overwrite also bumps the
  /// `trace.events.dropped` counter there, so overflow is visible in the
  /// metrics export and not just in the trace file. The global buffer
  /// reports into MetricsRegistry::Global().
  explicit TraceBuffer(size_t capacity = 16384,
                       MetricsRegistry* metrics = nullptr);

  TraceBuffer(const TraceBuffer&) = delete;
  TraceBuffer& operator=(const TraceBuffer&) = delete;

  /// Appends one completed event.
  void Record(TraceEvent event);

  /// Microseconds elapsed since this buffer's construction (the trace
  /// epoch); the timestamp base for wall-clock spans.
  int64_t NowMicros() const;

  /// All retained events, oldest first.
  std::vector<TraceEvent> Events() const;

  size_t size() const;
  size_t capacity() const { return capacity_; }
  int64_t dropped() const;

  /// Discards every event (the drop counter resets too). Registered
  /// process/thread names survive — they describe the timelines, not the
  /// events.
  void Clear();

  /// Registers Perfetto-style metadata for the exported trace:
  /// `process_name` for a pid, `thread_name` for a (pid, tid) pair. The
  /// fleet registers one thread name per tenant stream on the simulated
  /// timeline so per-tenant spans group under labeled tracks. Idempotent;
  /// last writer wins. Emitted by ToChromeJson sorted by (pid, tid), so
  /// the export stays deterministic.
  void SetProcessName(int32_t pid, const std::string& name);
  void SetThreadName(int32_t pid, int32_t tid, const std::string& name);

  /// Total duration and count per span name, sorted by name. When
  /// `category` is non-empty only events of that category aggregate —
  /// e.g. "simulated" derives Fig. 10 stage shares from the cost-model
  /// timeline without wall-clock spans polluting the denominator.
  struct SpanAggregate {
    std::string name;
    int64_t count = 0;
    int64_t total_us = 0;
  };
  std::vector<SpanAggregate> AggregateByName(
      const std::string& category = "") const;

  /// Serialises to Chrome trace-event JSON: an object with a
  /// "traceEvents" array of "ph":"X" duration events plus process-name
  /// metadata for the two timelines. File output lives in obs/export.h
  /// (WriteTraceJson), keeping this library dependency-free.
  std::string ToChromeJson() const;

  /// The process-wide buffer used by default instrumentation.
  static TraceBuffer& Global();

 private:
  Counter* dropped_counter_ = nullptr;  // Owned by the registry.
  const size_t capacity_;
  const std::chrono::steady_clock::time_point epoch_;
  mutable std::mutex mu_;
  std::vector<TraceEvent> ring_;  // Guarded by mu_.
  size_t next_ = 0;               // Ring write cursor; guarded by mu_.
  int64_t total_recorded_ = 0;    // Guarded by mu_.
  std::map<int32_t, std::string> process_names_;  // Guarded by mu_.
  std::map<std::pair<int32_t, int32_t>, std::string>
      thread_names_;  // Guarded by mu_.
};

/// RAII scoped timer: measures from construction to End()/destruction and
/// records one wall-timeline event into the buffer.
///
///   { obs::TraceSpan span("runner.train"); model.Train(records); }
class TraceSpan {
 public:
  /// Records into `buffer` (nullptr disables the span entirely).
  TraceSpan(TraceBuffer* buffer, std::string name,
            std::string category = "stage");

  /// Records into TraceBuffer::Global().
  explicit TraceSpan(std::string name, std::string category = "stage");

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

  ~TraceSpan() { End(); }

  /// Ends the span early (idempotent).
  void End();

 private:
  TraceBuffer* buffer_;
  std::string name_;
  std::string category_;
  int64_t start_us_ = 0;
  bool ended_ = false;
};

/// Appends a synthetic span on the simulated timeline (pid 2) starting at
/// `start_us` on the cost model's clock. Returns start_us + duration_us,
/// i.e. the start of the next back-to-back simulated span. `tid` picks the
/// simulated track — 0 for the solo pipeline, a tenant index in the fleet
/// (paired with TraceBuffer::SetThreadName so Perfetto labels the track).
int64_t RecordSimulatedSpan(TraceBuffer* buffer, const std::string& name,
                            const std::string& category, int64_t start_us,
                            int64_t duration_us, int32_t tid = 0);

}  // namespace eventhit::obs

#endif  // EVENTHIT_OBS_TRACE_H_
