#include "obs/provenance.h"

#include <algorithm>
#include <cstdio>
#include <cstring>

#include "obs/json_util.h"

namespace eventhit::obs {

namespace {

constexpr uint64_t kFnvOffset = 1469598103934665603ull;
constexpr uint64_t kFnvPrime = 1099511628211ull;

// Fold tags disambiguate stamp kinds inside the running digest.
constexpr int64_t kTagDecision = 0x44454349;   // "DECI"
constexpr int64_t kTagInference = 0x494e4652;  // "INFR"
constexpr int64_t kTagRelay = 0x52454c59;      // "RELY"
constexpr int64_t kTagVerdict = 0x56455244;    // "VERD"

void CopyName(char* dst, size_t cap, std::string_view src) {
  const size_t n = std::min(cap - 1, src.size());
  std::memcpy(dst, src.data(), n);
  dst[n] = '\0';
}

}  // namespace

const char* ProvenanceRelayOutcomeName(int8_t outcome) {
  // Mirrors cloud::RelayOutcome (provenance_test pins the mapping).
  switch (outcome) {
    case 0: return "delivered";
    case 1: return "buffered";
    case 2: return "dropped_queue_full";
    case 3: return "dropped_deadline";
    case 4: return "dropped_breaker_open";
    default: return "none";
  }
}

const char* ProvenanceBreakerName(int8_t state) {
  // Mirrors cloud::BreakerState (provenance_test pins the mapping).
  switch (state) {
    case 0: return "closed";
    case 1: return "open";
    case 2: return "half_open";
    default: return "none";
  }
}

const char* ProvenanceFlushName(int8_t reason) {
  switch (reason) {
    case kProvFlushFull: return "full";
    case kProvFlushDeadline: return "deadline";
    case kProvFlushFinal: return "final";
    case kProvFlushSolo: return "solo";
    default: return "none";
  }
}

const int64_t* ProvenanceResidencyBounds() {
  // Matches obs::DelayTickBounds() (fleet.request.delay_ticks buckets).
  static const int64_t kBounds[kProvenanceResidencyBuckets - 1] = {
      0, 1, 2, 3, 4, 6, 8, 12, 16, 32};
  return kBounds;
}

double ProvenanceRollup::ResidencyPercentile(double q) const {
  if (residency_count <= 0) return 0.0;
  const int64_t rank = std::max<int64_t>(
      1, static_cast<int64_t>(q * static_cast<double>(residency_count) + 0.5));
  const int64_t* bounds = ProvenanceResidencyBounds();
  int64_t cumulative = 0;
  for (int b = 0; b < kProvenanceResidencyBuckets - 1; ++b) {
    cumulative += residency_hist[b];
    if (cumulative >= rank) return static_cast<double>(bounds[b]);
  }
  return static_cast<double>(residency_max);
}

StreamProvenance::StreamProvenance(int64_t stream_index, int collection_window,
                                   int horizon, size_t ring_capacity)
    : stream_index_(stream_index),
      collection_window_(collection_window),
      horizon_(horizon),
      ring_(std::max<size_t>(ring_capacity, 2)),
      digest_(kFnvOffset) {}

int64_t StreamProvenance::MakeDecisionId(int64_t stream_index,
                                         int64_t boundary_index) {
  return (stream_index << 32) | (boundary_index & 0xffffffffll);
}

int64_t StreamProvenance::StreamOfId(int64_t decision_id) {
  return decision_id >> 32;
}

int64_t StreamProvenance::BoundaryOfId(int64_t decision_id) {
  return decision_id & 0xffffffffll;
}

int64_t StreamProvenance::BoundaryIndexOfAnchor(int64_t anchor) const {
  return (anchor - (collection_window_ - 1)) / horizon_;
}

int64_t StreamProvenance::AnchorOfBoundary(int64_t boundary_index) const {
  return collection_window_ - 1 + boundary_index * horizon_;
}

int64_t StreamProvenance::DecisionIdOfAnchor(int64_t anchor) const {
  return MakeDecisionId(stream_index_, BoundaryIndexOfAnchor(anchor));
}

int64_t StreamProvenance::BoundaryForFrame(int64_t frame) const {
  const int64_t first = collection_window_ - 1;
  if (frame <= first) return 0;
  return (frame - first) / horizon_;
}

ProvenanceRecord* StreamProvenance::Resident(int64_t anchor) {
  const int64_t boundary = BoundaryIndexOfAnchor(anchor);
  ProvenanceRecord& slot = ring_[static_cast<size_t>(
      boundary % static_cast<int64_t>(ring_.size()))];
  // A slot holds the stamp target only while its stored id matches —
  // otherwise the boundary was evicted and the stamp is dropped (the
  // digest and rollup fold from the stamp arguments, never the ring, so
  // eviction cannot perturb either).
  if (slot.boundary_index != boundary) return nullptr;
  return &slot;
}

void StreamProvenance::FoldI64(int64_t v) {
  uint64_t bits = static_cast<uint64_t>(v);
  for (int i = 0; i < 8; ++i) {
    digest_ ^= (bits >> (8 * i)) & 0xff;
    digest_ *= kFnvPrime;
  }
}

void StreamProvenance::FoldBytes(std::string_view bytes) {
  for (const char c : bytes) {
    digest_ ^= static_cast<unsigned char>(c);
    digest_ *= kFnvPrime;
  }
  digest_ ^= 0xff;  // Length delimiter.
  digest_ *= kFnvPrime;
}

void StreamProvenance::OpenBoundary(int64_t anchor, bool reused,
                                    std::string_view policy) {
  const int64_t boundary = BoundaryIndexOfAnchor(anchor);
  ProvenanceRecord& slot = ring_[static_cast<size_t>(
      boundary % static_cast<int64_t>(ring_.size()))];
  if (slot.boundary_index >= 0 && slot.boundary_index != boundary) {
    ++overflowed_;
  }
  slot = ProvenanceRecord{};
  slot.decision_id = MakeDecisionId(stream_index_, boundary);
  slot.anchor = anchor;
  slot.boundary_index = boundary;
  slot.reused = reused;
  CopyName(slot.policy, sizeof(slot.policy), policy);
  ++rollup_.boundaries;
}

void StreamProvenance::StampBatch(int64_t anchor, int64_t batch_id,
                                  int8_t flush_reason,
                                  int64_t residency_ticks) {
  if (ProvenanceRecord* record = Resident(anchor)) {
    record->batch_id = batch_id;
    record->flush_reason = flush_reason;
    record->residency_ticks = static_cast<int32_t>(residency_ticks);
  }
  ++rollup_.residency_count;
  rollup_.residency_sum += residency_ticks;
  rollup_.residency_max = std::max(rollup_.residency_max, residency_ticks);
  const int64_t* bounds = ProvenanceResidencyBounds();
  int bucket = kProvenanceResidencyBuckets - 1;
  for (int b = 0; b < kProvenanceResidencyBuckets - 1; ++b) {
    if (residency_ticks <= bounds[b]) {
      bucket = b;
      break;
    }
  }
  ++rollup_.residency_hist[bucket];
  // Batch placement is a fleet-scheduling artifact, not part of the
  // clock-pure causal chain: no digest fold.
}

void StreamProvenance::StampInference(int64_t anchor, std::string_view backend,
                                      int64_t calibrator_generation) {
  if (ProvenanceRecord* record = Resident(anchor)) {
    CopyName(record->backend, sizeof(record->backend), backend);
    record->calibrator_generation =
        static_cast<int32_t>(calibrator_generation);
  }
  rollup_.max_generation =
      std::max(rollup_.max_generation, calibrator_generation);
  FoldI64(kTagInference);
  FoldI64(anchor);
  FoldBytes(backend);
  FoldI64(calibrator_generation);
}

void StreamProvenance::StampRelay(int64_t anchor, int attempts, int8_t outcome,
                                  int8_t breaker_state) {
  if (ProvenanceRecord* record = Resident(anchor)) {
    record->relay_attempts =
        static_cast<int16_t>(record->relay_attempts + attempts);
    switch (outcome) {
      case 0: ++record->relay_delivered; break;
      case 1: ++record->relay_buffered; break;
      default: ++record->relay_dropped; break;
    }
    record->last_outcome = outcome;
    record->breaker_state = breaker_state;
  }
  rollup_.relay_attempts += attempts;
  switch (outcome) {
    case 0: ++rollup_.relay_delivered; break;
    case 1: ++rollup_.relay_buffered; break;
    default: ++rollup_.relay_dropped; break;
  }
  rollup_.last_breaker_state = breaker_state;
  FoldI64(kTagRelay);
  FoldI64(anchor);
  FoldI64(attempts);
  FoldI64(outcome);
  FoldI64(breaker_state);
}

void StreamProvenance::StampDecision(int64_t anchor, bool reused,
                                     std::string_view policy,
                                     uint32_t exists_mask, int events_present,
                                     int relay_orders, int64_t frames_billed,
                                     double max_existence) {
  if (ProvenanceRecord* record = Resident(anchor)) {
    record->exists_mask = exists_mask;
    record->events_present = static_cast<int16_t>(events_present);
    record->relay_orders = static_cast<int16_t>(relay_orders);
    record->frames_billed = static_cast<int32_t>(frames_billed);
    record->max_existence = max_existence;
  }
  if (reused) {
    ++rollup_.reused;
  } else {
    ++rollup_.scored;
  }
  rollup_.relay_orders += relay_orders;
  rollup_.frames_billed += frames_billed;
  FoldI64(kTagDecision);
  FoldI64(anchor);
  FoldI64(reused ? 1 : 0);
  FoldBytes(policy);
  FoldI64(static_cast<int64_t>(exists_mask));
  FoldI64(events_present);
  FoldI64(relay_orders);
  FoldI64(frames_billed);
  int64_t existence_bits = 0;
  static_assert(sizeof(existence_bits) == sizeof(max_existence));
  std::memcpy(&existence_bits, &max_existence, sizeof(existence_bits));
  FoldI64(existence_bits);
}

void StreamProvenance::StampVerdict(int64_t anchor, bool truth_present,
                                    bool missed, int miscovered_endpoints) {
  if (ProvenanceRecord* record = Resident(anchor)) {
    record->verdict_known = true;
    ++record->audited;
    if (truth_present) ++record->truth_present;
    if (missed) ++record->misses;
    record->miscovered =
        static_cast<int16_t>(record->miscovered + miscovered_endpoints);
  }
  ++rollup_.audited;
  if (truth_present) ++rollup_.truth_present;
  if (missed) ++rollup_.misses;
  rollup_.miscovered += miscovered_endpoints;
  FoldI64(kTagVerdict);
  FoldI64(anchor);
  FoldI64(truth_present ? 1 : 0);
  FoldI64(missed ? 1 : 0);
  FoldI64(miscovered_endpoints);
}

const ProvenanceRecord* StreamProvenance::Find(int64_t decision_id) const {
  const int64_t boundary = BoundaryOfId(decision_id);
  if (boundary < 0 || StreamOfId(decision_id) != stream_index_)
    return nullptr;
  const ProvenanceRecord& slot = ring_[static_cast<size_t>(
      boundary % static_cast<int64_t>(ring_.size()))];
  if (slot.decision_id != decision_id) return nullptr;
  return &slot;
}

const ProvenanceRecord* StreamProvenance::FindByAnchor(int64_t anchor) const {
  return Find(MakeDecisionId(stream_index_, BoundaryIndexOfAnchor(anchor)));
}

std::vector<ProvenanceRecord> StreamProvenance::ExportResident() const {
  std::vector<ProvenanceRecord> resident;
  for (const ProvenanceRecord& record : ring_) {
    if (record.boundary_index >= 0) resident.push_back(record);
  }
  std::sort(resident.begin(), resident.end(),
            [](const ProvenanceRecord& a, const ProvenanceRecord& b) {
              return a.boundary_index < b.boundary_index;
            });
  return resident;
}

namespace {

std::string FormatDouble(double value) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.6g", value);
  return buffer;
}

}  // namespace

std::string ProvenanceRecordText(const ProvenanceRecord& r) {
  std::string out;
  auto row = [&out](const char* key, const std::string& value) {
    out += "  ";
    out += key;
    const size_t pad = 22;
    const size_t len = std::strlen(key);
    out.append(len < pad ? pad - len : 1, ' ');
    out += value;
    out += '\n';
  };
  out += "decision " + std::to_string(r.decision_id) + " (stream " +
         std::to_string(StreamProvenance::StreamOfId(r.decision_id)) +
         ", boundary " + std::to_string(r.boundary_index) + ", anchor frame " +
         std::to_string(r.anchor) + ")\n";
  row("sched.policy", std::string(r.policy));
  row("sched.mode", r.reused ? "reused (policy skip)" : "scored");
  row("batch.id", r.batch_id < 0 ? std::string("-")
                                 : std::to_string(r.batch_id));
  row("batch.flush", ProvenanceFlushName(r.flush_reason));
  row("batch.residency_ticks",
      r.residency_ticks < 0 ? std::string("-")
                            : std::to_string(r.residency_ticks));
  row("infer.backend", r.backend[0] == '\0' ? std::string("-")
                                            : std::string(r.backend));
  row("infer.generation",
      r.calibrator_generation < 0
          ? std::string("-")
          : std::to_string(r.calibrator_generation));
  row("decide.exists_mask", "0x" + [&] {
        char buffer[16];
        std::snprintf(buffer, sizeof(buffer), "%x", r.exists_mask);
        return std::string(buffer);
      }());
  row("decide.events_present", std::to_string(r.events_present));
  row("decide.max_existence", FormatDouble(r.max_existence));
  row("relay.orders", std::to_string(r.relay_orders));
  row("relay.frames_billed", std::to_string(r.frames_billed));
  row("relay.attempts", std::to_string(r.relay_attempts));
  row("relay.delivered", std::to_string(r.relay_delivered));
  row("relay.buffered", std::to_string(r.relay_buffered));
  row("relay.dropped", std::to_string(r.relay_dropped));
  row("relay.last_outcome", ProvenanceRelayOutcomeName(r.last_outcome));
  row("relay.breaker", ProvenanceBreakerName(r.breaker_state));
  if (r.verdict_known) {
    row("audit.events", std::to_string(r.audited));
    row("audit.truth_present", std::to_string(r.truth_present));
    row("audit.misses", std::to_string(r.misses));
    row("audit.miscovered", std::to_string(r.miscovered));
  } else {
    row("audit.verdict", "pending (outside audited range)");
  }
  return out;
}

std::string ProvenanceRecordJson(const ProvenanceRecord& r) {
  std::string out = "{";
  auto field = [&out](const char* key, const std::string& value, bool quote) {
    if (out.size() > 1) out += ',';
    out += '"';
    out += key;
    out += "\":";
    if (quote) {
      out += '"';
      out += JsonEscape(value);
      out += '"';
    } else {
      out += value;
    }
  };
  field("decision_id", std::to_string(r.decision_id), false);
  field("stream", std::to_string(StreamProvenance::StreamOfId(r.decision_id)),
        false);
  field("boundary", std::to_string(r.boundary_index), false);
  field("anchor", std::to_string(r.anchor), false);
  field("policy", r.policy, true);
  field("reused", r.reused ? "true" : "false", false);
  field("batch_id", std::to_string(r.batch_id), false);
  field("flush_reason", ProvenanceFlushName(r.flush_reason), true);
  field("residency_ticks", std::to_string(r.residency_ticks), false);
  field("backend", r.backend, true);
  field("calibrator_generation", std::to_string(r.calibrator_generation),
        false);
  field("exists_mask", std::to_string(r.exists_mask), false);
  field("events_present", std::to_string(r.events_present), false);
  field("max_existence", JsonNumber(r.max_existence), false);
  field("relay_orders", std::to_string(r.relay_orders), false);
  field("frames_billed", std::to_string(r.frames_billed), false);
  field("relay_attempts", std::to_string(r.relay_attempts), false);
  field("relay_delivered", std::to_string(r.relay_delivered), false);
  field("relay_buffered", std::to_string(r.relay_buffered), false);
  field("relay_dropped", std::to_string(r.relay_dropped), false);
  field("relay_last_outcome", ProvenanceRelayOutcomeName(r.last_outcome),
        true);
  field("breaker_state", ProvenanceBreakerName(r.breaker_state), true);
  field("verdict_known", r.verdict_known ? "true" : "false", false);
  field("audited", std::to_string(r.audited), false);
  field("truth_present", std::to_string(r.truth_present), false);
  field("misses", std::to_string(r.misses), false);
  field("miscovered", std::to_string(r.miscovered), false);
  out += '}';
  return out;
}

}  // namespace eventhit::obs
