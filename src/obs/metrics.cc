#include "obs/metrics.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>

namespace eventhit::obs {

int ThreadIndex() {
  static std::atomic<int> next{0};
  thread_local int index = next.fetch_add(1, std::memory_order_relaxed);
  return index;
}

namespace {

[[noreturn]] void DieMetricKindMismatch(const std::string& name) {
  std::fprintf(stderr,
               "MetricsRegistry: '%s' already registered as a different "
               "kind (or with different histogram bounds)\n",
               name.c_str());
  std::abort();
}

// Relaxed CAS-min/max on an atomic<double> (bitwise compare is fine: we
// never store NaN and -0.0 vs 0.0 only retries once).
void AtomicMin(std::atomic<double>* slot, double value) {
  double current = slot->load(std::memory_order_relaxed);
  while (value < current &&
         !slot->compare_exchange_weak(current, value,
                                      std::memory_order_relaxed)) {
  }
}

void AtomicMax(std::atomic<double>* slot, double value) {
  double current = slot->load(std::memory_order_relaxed);
  while (value > current &&
         !slot->compare_exchange_weak(current, value,
                                      std::memory_order_relaxed)) {
  }
}

void AtomicAdd(std::atomic<double>* slot, double delta) {
  double current = slot->load(std::memory_order_relaxed);
  while (!slot->compare_exchange_weak(current, current + delta,
                                      std::memory_order_relaxed)) {
  }
}

}  // namespace

int64_t Counter::Value() const {
  int64_t total = 0;
  for (const internal::CounterShard& shard : shards_) {
    total += shard.value.load(std::memory_order_relaxed);
  }
  return total;
}

void Gauge::Add(double delta) { AtomicAdd(&value_, delta); }

Histogram::Histogram(std::string name, std::vector<double> bounds)
    : name_(std::move(name)), bounds_(std::move(bounds)) {
  std::sort(bounds_.begin(), bounds_.end());
  bucket_shards_.reserve(bounds_.size() + 1);
  for (size_t i = 0; i <= bounds_.size(); ++i) {
    bucket_shards_.push_back(
        std::make_unique<internal::CounterShard[]>(kMetricShards));
  }
}

void Histogram::Observe(double value) {
  // First bound >= value (bounds are inclusive); no such bound -> overflow.
  const size_t bucket =
      std::lower_bound(bounds_.begin(), bounds_.end(), value) -
      bounds_.begin();
  const int shard = ThreadIndex() & (kMetricShards - 1);
  bucket_shards_[bucket][shard].value.fetch_add(1, std::memory_order_relaxed);
  internal::SumShard& sums = sum_shards_[shard];
  sums.count.fetch_add(1, std::memory_order_relaxed);
  AtomicAdd(&sums.sum, value);
  AtomicMin(&sums.min, value);
  AtomicMax(&sums.max, value);
}

std::string LabeledName(const std::string& base, const Labels& labels) {
  if (labels.empty()) return base;
  Labels sorted = labels;
  std::sort(sorted.begin(), sorted.end());
  std::string out = base;
  out += '{';
  for (size_t i = 0; i < sorted.size(); ++i) {
    if (i > 0) out += ',';
    out += sorted[i].first;
    out += "=\"";
    for (char c : sorted[i].second) {
      if (c == '\\' || c == '"') out += '\\';
      out += c;
    }
    out += '"';
  }
  out += '}';
  return out;
}

std::string MetricBaseName(const std::string& name) {
  const size_t brace = name.find('{');
  return brace == std::string::npos ? name : name.substr(0, brace);
}

double HistogramSnapshot::ApproxQuantile(double q) const {
  if (count <= 0) return 0.0;
  // A hand-assembled snapshot (CLI summaries build these directly) can
  // carry count > 0 with no bucket vector; the observed max is the only
  // defined answer — never index into the empty vector.
  if (bucket_counts.empty()) return max;
  q = std::max(0.0, std::min(1.0, q));
  // Rank of the target observation (1-based, clamped into [1, count]).
  const double rank = std::max(1.0, std::min<double>(count, q * count));
  int64_t seen = 0;
  for (size_t b = 0; b < bucket_counts.size(); ++b) {
    const int64_t in_bucket = bucket_counts[b];
    if (in_bucket == 0) continue;
    if (seen + in_bucket < rank) {
      seen += in_bucket;
      continue;
    }
    // Bucket edges: the first populated bucket starts at the observed min;
    // interior buckets start at the previous finite bound. The overflow
    // bucket (b == bounds.size()) has no finite upper bound, so it (and
    // every other edge) is clamped to the observed [min, max].
    double lo = (b == 0 || b > bounds.size()) ? min : bounds[b - 1];
    double hi = b < bounds.size() ? bounds[b] : max;
    lo = std::max(lo, min);
    hi = std::min(hi, max);
    if (hi < lo) hi = lo;
    const double frac = (rank - seen) / static_cast<double>(in_bucket);
    return lo + frac * (hi - lo);
  }
  return max;  // Unreachable when bucket counts sum to `count`.
}

std::string MetricsRegistry::ResolveLabeledNameLocked(const std::string& base,
                                                      const Labels& labels) {
  const std::string full = LabeledName(base, labels);
  if (metrics_.count(full)) return full;
  int& series = label_sets_[base];
  if (series >= kMaxLabelSetsPerMetric) {
    return LabeledName(base, {{"overflow", "true"}});
  }
  ++series;
  return full;
}

Counter* MetricsRegistry::GetCounter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  return GetCounterLocked(name);
}

Counter* MetricsRegistry::GetCounter(const std::string& name,
                                     const Labels& labels) {
  std::lock_guard<std::mutex> lock(mu_);
  return GetCounterLocked(ResolveLabeledNameLocked(name, labels));
}

Gauge* MetricsRegistry::GetGauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  return GetGaugeLocked(name);
}

Gauge* MetricsRegistry::GetGauge(const std::string& name,
                                 const Labels& labels) {
  std::lock_guard<std::mutex> lock(mu_);
  return GetGaugeLocked(ResolveLabeledNameLocked(name, labels));
}

Histogram* MetricsRegistry::GetHistogram(const std::string& name,
                                         std::vector<double> bounds) {
  std::lock_guard<std::mutex> lock(mu_);
  return GetHistogramLocked(name, std::move(bounds));
}

Histogram* MetricsRegistry::GetHistogram(const std::string& name,
                                         std::vector<double> bounds,
                                         const Labels& labels) {
  std::lock_guard<std::mutex> lock(mu_);
  return GetHistogramLocked(ResolveLabeledNameLocked(name, labels),
                            std::move(bounds));
}

Counter* MetricsRegistry::GetCounterLocked(const std::string& name) {
  auto it = metrics_.find(name);
  if (it == metrics_.end()) {
    Entry entry;
    entry.kind = Kind::kCounter;
    entry.counter.reset(new Counter(name));
    it = metrics_.emplace(name, std::move(entry)).first;
  } else if (it->second.kind != Kind::kCounter) {
    DieMetricKindMismatch(name);
  }
  return it->second.counter.get();
}

Gauge* MetricsRegistry::GetGaugeLocked(const std::string& name) {
  auto it = metrics_.find(name);
  if (it == metrics_.end()) {
    Entry entry;
    entry.kind = Kind::kGauge;
    entry.gauge.reset(new Gauge(name));
    it = metrics_.emplace(name, std::move(entry)).first;
  } else if (it->second.kind != Kind::kGauge) {
    DieMetricKindMismatch(name);
  }
  return it->second.gauge.get();
}

Histogram* MetricsRegistry::GetHistogramLocked(const std::string& name,
                                               std::vector<double> bounds) {
  auto it = metrics_.find(name);
  if (it == metrics_.end()) {
    Entry entry;
    entry.kind = Kind::kHistogram;
    entry.histogram.reset(new Histogram(name, std::move(bounds)));
    it = metrics_.emplace(name, std::move(entry)).first;
  } else if (it->second.kind != Kind::kHistogram ||
             it->second.histogram->bounds() != bounds) {
    std::sort(bounds.begin(), bounds.end());
    if (it->second.kind != Kind::kHistogram ||
        it->second.histogram->bounds() != bounds) {
      DieMetricKindMismatch(name);
    }
  }
  return it->second.histogram.get();
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  MetricsSnapshot snapshot;
  for (const auto& [name, entry] : metrics_) {
    switch (entry.kind) {
      case Kind::kCounter: {
        CounterSnapshot c;
        c.name = name;
        c.value = entry.counter->Value();
        const int64_t exemplar = entry.counter->exemplar();
        if (exemplar != kNoExemplar) {
          c.has_exemplar = true;
          c.exemplar = exemplar;
        }
        snapshot.counters.push_back(std::move(c));
        break;
      }
      case Kind::kGauge:
        snapshot.gauges.push_back({name, entry.gauge->Value()});
        break;
      case Kind::kHistogram: {
        const Histogram& histogram = *entry.histogram;
        HistogramSnapshot h;
        h.name = name;
        h.bounds = histogram.bounds_;
        h.bucket_counts.resize(histogram.bounds_.size() + 1, 0);
        for (size_t b = 0; b < h.bucket_counts.size(); ++b) {
          for (int s = 0; s < kMetricShards; ++s) {
            h.bucket_counts[b] += histogram.bucket_shards_[b][s].value.load(
                std::memory_order_relaxed);
          }
        }
        bool any = false;
        for (int s = 0; s < kMetricShards; ++s) {
          const internal::SumShard& sums = histogram.sum_shards_[s];
          const int64_t count = sums.count.load(std::memory_order_relaxed);
          if (count == 0) continue;
          h.count += count;
          h.sum += sums.sum.load(std::memory_order_relaxed);
          const double lo = sums.min.load(std::memory_order_relaxed);
          const double hi = sums.max.load(std::memory_order_relaxed);
          h.min = any ? std::min(h.min, lo) : lo;
          h.max = any ? std::max(h.max, hi) : hi;
          any = true;
        }
        snapshot.histograms.push_back(std::move(h));
        break;
      }
    }
  }
  return snapshot;  // std::map iteration order is already by name.
}

std::vector<std::string> MetricsRegistry::Names() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> names;
  names.reserve(metrics_.size());
  for (const auto& [name, entry] : metrics_) names.push_back(name);
  return names;
}

void MetricsRegistry::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, entry] : metrics_) {
    switch (entry.kind) {
      case Kind::kCounter:
        for (internal::CounterShard& shard : entry.counter->shards_) {
          shard.value.store(0, std::memory_order_relaxed);
        }
        entry.counter->exemplar_.store(kNoExemplar,
                                       std::memory_order_relaxed);
        break;
      case Kind::kGauge:
        entry.gauge->Set(0.0);
        break;
      case Kind::kHistogram:
        for (auto& bucket : entry.histogram->bucket_shards_) {
          for (int s = 0; s < kMetricShards; ++s) {
            bucket[s].value.store(0, std::memory_order_relaxed);
          }
        }
        for (internal::SumShard& sums : entry.histogram->sum_shards_) {
          sums.count.store(0, std::memory_order_relaxed);
          sums.sum.store(0.0, std::memory_order_relaxed);
          sums.min.store(std::numeric_limits<double>::infinity(),
                         std::memory_order_relaxed);
          sums.max.store(-std::numeric_limits<double>::infinity(),
                         std::memory_order_relaxed);
        }
        break;
    }
  }
}

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

}  // namespace eventhit::obs
