#include "obs/trace.h"

#include <algorithm>
#include <map>
#include <utility>

#include "obs/json_util.h"
#include "obs/metrics.h"
#include "obs/schema.h"

namespace eventhit::obs {

TraceBuffer::TraceBuffer(size_t capacity, MetricsRegistry* metrics)
    : dropped_counter_(metrics != nullptr
                           ? metrics->GetCounter(names::kTraceEventsDropped)
                           : nullptr),
      capacity_(capacity == 0 ? 1 : capacity),
      epoch_(std::chrono::steady_clock::now()) {
  ring_.reserve(capacity_);
  process_names_[kWallPid] = "wall";
  process_names_[kSimulatedPid] = "simulated";
}

void TraceBuffer::Record(TraceEvent event) {
  bool overwrote = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (ring_.size() < capacity_) {
      ring_.push_back(std::move(event));
    } else {
      ring_[next_ % capacity_] = std::move(event);
      overwrote = true;
    }
    next_ = (next_ + 1) % capacity_;
    ++total_recorded_;
  }
  if (overwrote && dropped_counter_ != nullptr) dropped_counter_->Add(1);
}

int64_t TraceBuffer::NowMicros() const {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now() - epoch_)
      .count();
}

std::vector<TraceEvent> TraceBuffer::Events() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<TraceEvent> events;
  events.reserve(ring_.size());
  if (ring_.size() < capacity_) {
    events = ring_;
  } else {
    // Full ring: the oldest event sits at the write cursor.
    for (size_t i = 0; i < capacity_; ++i) {
      events.push_back(ring_[(next_ + i) % capacity_]);
    }
  }
  return events;
}

size_t TraceBuffer::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return ring_.size();
}

int64_t TraceBuffer::dropped() const {
  std::lock_guard<std::mutex> lock(mu_);
  return total_recorded_ - static_cast<int64_t>(ring_.size());
}

void TraceBuffer::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  ring_.clear();
  next_ = 0;
  total_recorded_ = 0;
}

void TraceBuffer::SetProcessName(int32_t pid, const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  process_names_[pid] = name;
}

void TraceBuffer::SetThreadName(int32_t pid, int32_t tid,
                                const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  thread_names_[{pid, tid}] = name;
}

std::vector<TraceBuffer::SpanAggregate> TraceBuffer::AggregateByName(
    const std::string& category) const {
  const std::vector<TraceEvent> events = Events();
  std::map<std::string, SpanAggregate> by_name;
  for (const TraceEvent& event : events) {
    if (!category.empty() && event.category != category) continue;
    SpanAggregate& aggregate = by_name[event.name];
    aggregate.name = event.name;
    ++aggregate.count;
    aggregate.total_us += event.duration_us;
  }
  std::vector<SpanAggregate> aggregates;
  aggregates.reserve(by_name.size());
  for (auto& [name, aggregate] : by_name) {
    aggregates.push_back(std::move(aggregate));
  }
  return aggregates;
}

std::string TraceBuffer::ToChromeJson() const {
  const std::vector<TraceEvent> events = Events();
  const int64_t dropped_events = dropped();
  std::map<int32_t, std::string> process_names;
  std::map<std::pair<int32_t, int32_t>, std::string> thread_names;
  {
    std::lock_guard<std::mutex> lock(mu_);
    process_names = process_names_;
    thread_names = thread_names_;
  }
  std::string json = "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  // Metadata first, sorted by pid / (pid, tid) (std::map order), so the
  // exported file is deterministic and Perfetto groups spans under named
  // per-tenant tracks.
  for (const auto& [pid, name] : process_names) {
    json += "{\"ph\":\"M\",\"pid\":" + std::to_string(pid) +
            ",\"name\":\"process_name\",\"args\":{\"name\":\"" +
            JsonEscape(name) + "\"}},";
  }
  for (const auto& [key, name] : thread_names) {
    json += "{\"ph\":\"M\",\"pid\":" + std::to_string(key.first) +
            ",\"tid\":" + std::to_string(key.second) +
            ",\"name\":\"thread_name\",\"args\":{\"name\":\"" +
            JsonEscape(name) + "\"}},";
  }
  // Ring overflow would otherwise be invisible in the exported file: the
  // trace simply starts later than the run did.
  json += "{\"ph\":\"M\",\"pid\":1,\"name\":\"trace_events_dropped\","
          "\"args\":{\"dropped\":" +
          std::to_string(dropped_events) + "}}";
  for (const TraceEvent& event : events) {
    json += ",{\"name\":\"" + JsonEscape(event.name) + "\",\"cat\":\"" +
            JsonEscape(event.category) + "\",\"ph\":\"X\",\"ts\":" +
            std::to_string(event.start_us) +
            ",\"dur\":" + std::to_string(event.duration_us) +
            ",\"pid\":" + std::to_string(event.pid) +
            ",\"tid\":" + std::to_string(event.tid) + "}";
  }
  json += "]}";
  return json;
}

TraceBuffer& TraceBuffer::Global() {
  static TraceBuffer* buffer =
      new TraceBuffer(16384, &MetricsRegistry::Global());
  return *buffer;
}

TraceSpan::TraceSpan(TraceBuffer* buffer, std::string name,
                     std::string category)
    : buffer_(buffer), name_(std::move(name)), category_(std::move(category)) {
  if (buffer_ != nullptr) {
    start_us_ = buffer_->NowMicros();
  } else {
    ended_ = true;
  }
}

TraceSpan::TraceSpan(std::string name, std::string category)
    : TraceSpan(&TraceBuffer::Global(), std::move(name),
                std::move(category)) {}

void TraceSpan::End() {
  if (ended_) return;
  ended_ = true;
  TraceEvent event;
  event.name = std::move(name_);
  event.category = std::move(category_);
  event.start_us = start_us_;
  event.duration_us = buffer_->NowMicros() - start_us_;
  event.pid = kWallPid;
  event.tid = ThreadIndex();
  buffer_->Record(std::move(event));
}

int64_t RecordSimulatedSpan(TraceBuffer* buffer, const std::string& name,
                            const std::string& category, int64_t start_us,
                            int64_t duration_us, int32_t tid) {
  if (buffer == nullptr) return start_us + duration_us;
  TraceEvent event;
  event.name = name;
  event.category = category;
  event.start_us = start_us;
  event.duration_us = duration_us;
  event.pid = kSimulatedPid;
  event.tid = tid;
  buffer->Record(std::move(event));
  return start_us + duration_us;
}

}  // namespace eventhit::obs
