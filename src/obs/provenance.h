// Decision provenance ledger: every marshalling boundary gets a monotone
// decision id and a bounded record of its full causal chain — collect-policy
// verdict (sched), batch id / flush reason / queue residency (fleet),
// inference backend + conformal generation (adapt hot-swaps), decision
// outcome (core), relay attempts / breaker state (cloud), and the auditor's
// eventual hit/miss/miscover verdict joined back by boundary.
//
// Design contract (mirrors DESIGN.md §5g determinism):
//   - One StreamProvenance per stream, touched only by whichever thread
//     owns that stream at the moment (the fleet's shard ownership), so the
//     hot path is plain stores — no atomics, no locks.
//   - The ledger is observational: nothing reads it back into decisions.
//   - Digest() folds only fields that are a pure function of the simulated
//     clock and the stream-level config. Batch fields (batch id, flush
//     reason, residency) legitimately differ between a solo replay and a
//     fleet run, so they are excluded — everything else must be
//     byte-identical across --threads and --batch, and solo == fleet.
//   - Bounded: a fixed-capacity ring keyed by boundary index. Old records
//     are evicted (counted in overflowed()); rollup aggregates and the
//     digest keep covering every boundary regardless of ring capacity.
//
// Disabled cost: components hold a StreamProvenance* that is nullptr when
// the ledger is off; every call site is a single inlined pointer check.
#ifndef EVENTHIT_OBS_PROVENANCE_H_
#define EVENTHIT_OBS_PROVENANCE_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace eventhit::obs {

/// Batch flush reasons, mirrored from fleet::FlushReason so the obs layer
/// stays dependency-free (provenance_test pins the correspondence).
enum ProvenanceFlush : int8_t {
  kProvFlushNone = -1,   // Not batched yet / ledger opened only.
  kProvFlushFull = 0,    // Batch reached batch_size.
  kProvFlushDeadline = 1,  // Oldest request aged past the delay cap.
  kProvFlushFinal = 2,   // Wave-end drain.
  kProvFlushSolo = 3,    // Solo replay: scored alone, no batcher.
};

/// Relay outcomes, mirrored from cloud::RelayOutcome (pinned by test).
const char* ProvenanceRelayOutcomeName(int8_t outcome);
/// Breaker states, mirrored from cloud::BreakerState (pinned by test).
const char* ProvenanceBreakerName(int8_t state);
const char* ProvenanceFlushName(int8_t reason);

/// One marshalling boundary's causal chain. Fixed-size (no heap) so a
/// 10k-stream fleet with small rings stays within a few MB.
struct ProvenanceRecord {
  int64_t decision_id = -1;
  int64_t anchor = -1;          // Absolute stream frame of the boundary.
  int64_t boundary_index = -1;  // Anchor's ordinal: (anchor - (M-1)) / H.

  // --- sched: collect policy ---
  bool reused = false;          // Policy skip replayed the last decision.
  char policy[12] = {0};        // Collect-policy name ("full" when none).

  // --- fleet: dynamic batcher (excluded from Digest) ---
  int64_t batch_id = -1;        // Fleet-wide flush ordinal, -1 unbatched.
  int8_t flush_reason = kProvFlushNone;
  int32_t residency_ticks = -1;  // Ticks queued between submit and flush.

  // --- nn/adapt: inference backend + conformal generation ---
  char backend[8] = {0};        // BackendKindName, empty on reused skips.
  int32_t calibrator_generation = -1;  // RecalLoop hot-swap count at score.

  // --- core: marshalling decision ---
  uint32_t exists_mask = 0;     // Bit k set = event k predicted present.
  int16_t events_present = 0;
  int16_t relay_orders = 0;     // Orders issued (non-empty intervals only).
  int32_t frames_billed = 0;    // Horizon union of relayed frames.
  double max_existence = 0.0;   // Max existence score vs the threshold.

  // --- cloud: relay/breaker ---
  int16_t relay_attempts = 0;   // Attempts across this boundary's orders.
  int16_t relay_delivered = 0;
  int16_t relay_dropped = 0;
  int16_t relay_buffered = 0;
  int8_t last_outcome = -1;     // cloud::RelayOutcome of the last order.
  int8_t breaker_state = -1;    // Breaker state after the last order.

  // --- obs: auditor verdict (joined by boundary at completion) ---
  bool verdict_known = false;
  int16_t audited = 0;          // Events audited at this boundary.
  int16_t truth_present = 0;
  int16_t misses = 0;           // Positives predicted absent.
  int16_t miscovered = 0;       // Interval endpoints outside prediction.
};

/// Residency histogram bounds (inclusive upper bounds, ticks) — matches
/// the fleet.request.delay_ticks metric buckets.
inline constexpr int kProvenanceResidencyBuckets = 11;  // 10 bounds + inf.
const int64_t* ProvenanceResidencyBounds();             // 10 entries.

/// Aggregates maintained unconditionally (even when the ring evicts), the
/// per-tenant source of the fleet health rollup.
struct ProvenanceRollup {
  int64_t boundaries = 0;
  int64_t scored = 0;
  int64_t reused = 0;
  int64_t relay_orders = 0;
  int64_t relay_attempts = 0;
  int64_t relay_delivered = 0;
  int64_t relay_dropped = 0;
  int64_t relay_buffered = 0;
  int64_t frames_billed = 0;
  int64_t max_generation = 0;   // Highest conformal generation observed.
  int8_t last_breaker_state = 0;
  int64_t residency_count = 0;
  int64_t residency_sum = 0;
  int64_t residency_max = 0;
  int64_t residency_hist[kProvenanceResidencyBuckets] = {0};
  int64_t audited = 0;
  int64_t truth_present = 0;
  int64_t misses = 0;
  int64_t miscovered = 0;

  /// Approximate percentile (0..1) of queue residency from the histogram
  /// buckets (upper-bound convention, like obs::Histogram::ApproxQuantile).
  double ResidencyPercentile(double q) const;
};

/// Per-stream provenance ledger. Single-writer; see file header.
class StreamProvenance {
 public:
  /// `stream_index` seeds the decision-id namespace; `collection_window`
  /// (M) and `horizon` (H) define the boundary grid; `ring_capacity` is
  /// the number of resident records (>= 2 so a pending boundary can never
  /// evict itself; clamped up if smaller).
  StreamProvenance(int64_t stream_index, int collection_window, int horizon,
                   size_t ring_capacity);

  // Decision-id arithmetic: id = (stream << 32) | boundary_index.
  static int64_t MakeDecisionId(int64_t stream_index, int64_t boundary_index);
  static int64_t StreamOfId(int64_t decision_id);
  static int64_t BoundaryOfId(int64_t decision_id);

  int64_t BoundaryIndexOfAnchor(int64_t anchor) const;
  int64_t AnchorOfBoundary(int64_t boundary_index) const;
  int64_t DecisionIdOfAnchor(int64_t anchor) const;
  /// Boundary whose horizon [anchor, anchor + H) covers `frame` (frames
  /// before the first boundary map to boundary 0 — the window fill).
  int64_t BoundaryForFrame(int64_t frame) const;

  /// Opens the record for a boundary (called by the marshaller at push
  /// time, scored and skipped boundaries alike). Evicts the slot's
  /// previous resident if any.
  void OpenBoundary(int64_t anchor, bool reused, std::string_view policy);

  /// Fleet batcher stamp: excluded from Digest() (solo and fleet runs
  /// batch differently by design).
  void StampBatch(int64_t anchor, int64_t batch_id, int8_t flush_reason,
                  int64_t residency_ticks);

  /// Inference stamp (scored boundaries only): backend kind name and the
  /// conformal calibrator generation live at scoring time.
  void StampInference(int64_t anchor, std::string_view backend,
                      int64_t calibrator_generation);

  /// One relay order's result (may fire several times per boundary).
  void StampRelay(int64_t anchor, int attempts, int8_t outcome,
                  int8_t breaker_state);

  /// Decision outcome, stamped once per boundary at completion. This is
  /// the fold point for the sched + decision digest fields, so the digest
  /// accumulates strictly in completion order (identical solo vs fleet).
  void StampDecision(int64_t anchor, bool reused, std::string_view policy,
                     uint32_t exists_mask, int events_present,
                     int relay_orders, int64_t frames_billed,
                     double max_existence);

  /// Auditor verdict for one event at this boundary (joined back at
  /// completion; may fire once per audited event).
  void StampVerdict(int64_t anchor, bool truth_present, bool missed,
                    int miscovered_endpoints);

  /// Resident record for a decision id, nullptr when evicted or unknown.
  const ProvenanceRecord* Find(int64_t decision_id) const;
  const ProvenanceRecord* FindByAnchor(int64_t anchor) const;

  /// All resident records in boundary order (for `eventhit_cli explain`).
  std::vector<ProvenanceRecord> ExportResident() const;

  int64_t stream_index() const { return stream_index_; }
  int64_t boundaries() const { return rollup_.boundaries; }
  /// Records still resident in the ring: recorded + overflowed ==
  /// boundaries (the accounting identity pinned by provenance_test).
  int64_t recorded() const { return rollup_.boundaries - overflowed_; }
  int64_t overflowed() const { return overflowed_; }
  size_t ring_capacity() const { return ring_.size(); }

  const ProvenanceRollup& rollup() const { return rollup_; }

  /// FNV-1a fold of the clock-pure chain (sched, inference, decision,
  /// relay, verdict — never batch fields), accumulated in completion
  /// order. Byte-identical across --threads and solo == fleet.
  uint64_t Digest() const { return digest_; }

 private:
  ProvenanceRecord* Resident(int64_t anchor);
  void FoldI64(int64_t v);
  void FoldBytes(std::string_view bytes);

  int64_t stream_index_;
  int collection_window_;
  int horizon_;
  std::vector<ProvenanceRecord> ring_;
  int64_t overflowed_ = 0;
  uint64_t digest_;
  ProvenanceRollup rollup_;
};

/// Human-readable multi-line rendering of one record (the `explain` table).
std::string ProvenanceRecordText(const ProvenanceRecord& record);
/// One-line JSON rendering (the `explain` JSONL form).
std::string ProvenanceRecordJson(const ProvenanceRecord& record);

}  // namespace eventhit::obs

#endif  // EVENTHIT_OBS_PROVENANCE_H_
