// Canonical telemetry schema: every metric and span name the pipeline can
// register, in one place. Instrumentation sites reference these constants
// (never string literals), and the schema-sync test cross-checks this list
// against docs/TELEMETRY.md — adding a metric without documenting it fails
// the build's test suite.
#ifndef EVENTHIT_OBS_SCHEMA_H_
#define EVENTHIT_OBS_SCHEMA_H_

#include <string>
#include <vector>

namespace eventhit::obs::names {

// --- Counters ---------------------------------------------------------

// Frame accounting of the streaming marshaller. The invariant
//   marshaller.frames.relayed + marshaller.frames.filtered
//     == marshaller.frames.total
// holds at every prediction boundary: each predicted horizon contributes
// the billed relay union to relayed, the unrelayed remainder of the
// horizon to filtered, and their sum — max(H, billed), since widened
// intervals may spill past the horizon boundary — to total.
inline constexpr char kMarshallerFramesTotal[] = "marshaller.frames.total";
inline constexpr char kMarshallerFramesRelayed[] =
    "marshaller.frames.relayed";
inline constexpr char kMarshallerFramesFiltered[] =
    "marshaller.frames.filtered";
inline constexpr char kMarshallerHorizonsPredicted[] =
    "marshaller.horizons.predicted";
inline constexpr char kMarshallerRelayOrders[] = "marshaller.relay.orders";
inline constexpr char kMarshallerEventsPredictedPresent[] =
    "marshaller.events.predicted_present";
inline constexpr char kMarshallerEventsPredictedAbsent[] =
    "marshaller.events.predicted_absent";

// Cloud-service usage (mirrors the Invoice).
inline constexpr char kCloudRequests[] = "cloud.requests";
inline constexpr char kCloudFramesProcessed[] = "cloud.frames.processed";

// Resilient cloud relay (cloud/relay.h). Frame accounting upholds
//   relay.frames.delivered + relay.frames.dropped + <pending in queue>
//     == relay.frames.submitted
// at every breaker state transition; once the relay is flushed the queue
// is empty and delivered + dropped == submitted exactly.
inline constexpr char kRelayOrdersSubmitted[] = "relay.orders.submitted";
inline constexpr char kRelayOrdersDelivered[] = "relay.orders.delivered";
inline constexpr char kRelayOrdersDropped[] = "relay.orders.dropped";
inline constexpr char kRelayOrdersReplayed[] = "relay.orders.replayed";
inline constexpr char kRelayFramesSubmitted[] = "relay.frames.submitted";
inline constexpr char kRelayFramesDelivered[] = "relay.frames.delivered";
inline constexpr char kRelayFramesDropped[] = "relay.frames.dropped";
inline constexpr char kRelayFramesBuffered[] = "relay.frames.buffered";
inline constexpr char kRelayAttemptsTotal[] = "relay.attempts.total";
inline constexpr char kRelayAttemptsRetries[] = "relay.attempts.retries";
inline constexpr char kRelayFaultErrors[] = "relay.faults.errors";
inline constexpr char kRelayFaultLatencySpikes[] =
    "relay.faults.latency_spikes";

// Circuit breaker guarding the relay (cloud/circuit_breaker.h).
inline constexpr char kBreakerTransitions[] = "breaker.transitions";
inline constexpr char kBreakerOpens[] = "breaker.opens";

// Drift detection / recalibration.
inline constexpr char kDriftObservations[] = "drift.observations";
inline constexpr char kDriftAlarms[] = "drift.alarms";
inline constexpr char kRecalibratorRecordsAdded[] =
    "recalibrator.records.added";
inline constexpr char kRecalibratorRebuildsCClassify[] =
    "recalibrator.rebuilds.cclassify";
inline constexpr char kRecalibratorRebuildsCRegress[] =
    "recalibrator.rebuilds.cregress";

// Online recalibration loop (adapt/recal_loop.h): triggers split by source
// (auditor breach latch vs martingale drift alarm), refusals by guard
// (cooldown vs min-sample), and completed hot swaps.
inline constexpr char kRecalTriggersBreach[] = "recal.triggers.breach";
inline constexpr char kRecalTriggersDrift[] = "recal.triggers.drift";
inline constexpr char kRecalRefusalsCooldown[] = "recal.refusals.cooldown";
inline constexpr char kRecalRefusalsMinSamples[] =
    "recal.refusals.min_samples";
inline constexpr char kRecalSwaps[] = "recal.swaps";

// Guarantee auditor (obs/audit.h). Counters register both an unlabeled
// aggregate and per-event `{event_type=...}` series; `audit.breaches`
// additionally carries a `{guarantee=...}` label distinguishing the miss
// track (1-c) from the miscoverage track (1-alpha).
inline constexpr char kAuditOutcomes[] = "audit.outcomes";
inline constexpr char kAuditPositives[] = "audit.positives";
inline constexpr char kAuditMisses[] = "audit.misses";
inline constexpr char kAuditEndpoints[] = "audit.endpoints";
inline constexpr char kAuditMiscovered[] = "audit.miscovered";
inline constexpr char kAuditBreaches[] = "audit.breaches";

// Multi-tenant stream fleet (fleet/stream_fleet.h). Frame/request counters
// aggregate across every tenant stream; the flush counters split
// fleet.batches.flushed by cause (batch-full, deadline, end-of-wave), so
//   fleet.batches.flush_full + fleet.batches.flush_deadline
//     + fleet.batches.flush_final == fleet.batches.flushed.
inline constexpr char kFleetStreamsCompleted[] = "fleet.streams.completed";
inline constexpr char kFleetFramesPushed[] = "fleet.frames.pushed";
inline constexpr char kFleetRequestsSubmitted[] = "fleet.requests.submitted";
inline constexpr char kFleetBatchesFlushed[] = "fleet.batches.flushed";
inline constexpr char kFleetBatchesFlushFull[] = "fleet.batches.flush_full";
inline constexpr char kFleetBatchesFlushDeadline[] =
    "fleet.batches.flush_deadline";
inline constexpr char kFleetBatchesFlushFinal[] =
    "fleet.batches.flush_final";
inline constexpr char kFleetBudgetBreaches[] = "fleet.budget.breaches";

// Collection scheduling (sched/collect_policy.h), emitted by the
// marshaller at every completed prediction boundary. Horizons split into
// scored (a model forward ran) and reused (the policy replayed the last
// decision); frames split into scored (charged feature-extraction cost)
// and skipped (extraction avoided). The flops counters price both sides
// with the local cost model (sched/cost_model.h) in MFLOPs.
inline constexpr char kSchedHorizonsScored[] = "sched.horizons.scored";
inline constexpr char kSchedHorizonsReused[] = "sched.horizons.reused";
inline constexpr char kSchedFramesScored[] = "sched.frames.scored";
inline constexpr char kSchedFramesSkipped[] = "sched.frames.skipped";
inline constexpr char kSchedFlopsLocalMflops[] = "sched.flops.local_mflops";
inline constexpr char kSchedFlopsSavedMflops[] = "sched.flops.saved_mflops";

// Trace ring overflow: events overwritten because the buffer was full
// (also exported into the Chrome trace as a metadata record).
inline constexpr char kTraceEventsDropped[] = "trace.events.dropped";

// Structured-log rate-limiter suppressions, labeled `{component=...}`:
// records rejected because their (component, event) key exhausted the
// per-key budget. Surfaced so a throttled narrative is visible instead of
// silently truncated (the retained records stay deterministic).
inline constexpr char kLogSuppressed[] = "log.suppressed";

// Thread-pool substrate (pooled path only; threads == 1 records nothing).
inline constexpr char kThreadPoolParallelForCalls[] =
    "threadpool.parallel_for.calls";
inline constexpr char kThreadPoolChunksExecuted[] =
    "threadpool.chunks.executed";
inline constexpr char kThreadPoolItemsProcessed[] =
    "threadpool.items.processed";
inline constexpr char kThreadPoolWorkerBusyMicros[] =
    "threadpool.worker.busy_micros";

// --- Gauges -----------------------------------------------------------

inline constexpr char kBreakerState[] = "breaker.state";
inline constexpr char kRelayQueueDepth[] = "relay.queue.depth";
inline constexpr char kCloudInvoiceCostUsd[] = "cloud.invoice.cost_usd";
inline constexpr char kCloudInvoiceComputeSeconds[] =
    "cloud.invoice.compute_seconds";
inline constexpr char kDriftLogMartingale[] = "drift.log_martingale";
inline constexpr char kRecalibratorWindowSize[] = "recalibrator.window.size";
inline constexpr char kRecalLastSwapFrame[] = "recal.last_swap_frame";
inline constexpr char kThreadPoolThreads[] = "threadpool.threads";
inline constexpr char kPipelineRelayedFramesPerHorizon[] =
    "pipeline.relayed_frames_per_horizon";

// Fleet health: tenant streams resident in the current wave and the
// aggregate spend tracked by the shared budget accountant.
inline constexpr char kFleetStreamsActive[] = "fleet.streams.active";
inline constexpr char kFleetBudgetSpendUsd[] = "fleet.budget.spend_usd";

// Effective collection stride of the installed policy (1 = full rate;
// duty policies hold their fixed stride, adaptive flips between 1 and
// its quiet stride).
inline constexpr char kSchedPolicyStride[] = "sched.policy.stride";

// Auditor health, labeled `{event_type=...}` (`audit.breach.active` also
// carries `{guarantee=...}`). Rates are rolling-window empirical values;
// the Wilson gauges are the one-sided lower confidence bounds compared
// against the guarantee budget by the breach detector.
inline constexpr char kAuditMissRate[] = "audit.miss.rate";
inline constexpr char kAuditMissBudget[] = "audit.miss.budget";
inline constexpr char kAuditMissWilsonLower[] = "audit.miss.wilson_lower";
inline constexpr char kAuditMiscoverageRate[] = "audit.miscoverage.rate";
inline constexpr char kAuditMiscoverageBudget[] = "audit.miscoverage.budget";
inline constexpr char kAuditMiscoverageWilsonLower[] =
    "audit.miscoverage.wilson_lower";
inline constexpr char kAuditBreachActive[] = "audit.breach.active";

// --- Histograms -------------------------------------------------------

inline constexpr char kMarshallerRelayOrderFrames[] =
    "marshaller.relay.order_frames";
inline constexpr char kCloudRequestFrames[] = "cloud.request.frames";
inline constexpr char kCloudRequestLatencySeconds[] =
    "cloud.request.latency_seconds";
inline constexpr char kThreadPoolParallelForItems[] =
    "threadpool.parallel_for.items";

// Batched-inference path: records per PredictBatch batch (the ragged tail
// batch makes this a distribution, not a constant).
inline constexpr char kPredictBatchSize[] = "predict.batch_size";

// Resilient relay request shape: attempts consumed per request and the
// simulated backoff slept before each retry.
inline constexpr char kRelayRequestAttempts[] = "relay.request.attempts";
inline constexpr char kRelayBackoffSeconds[] = "relay.backoff_seconds";

// Cross-stream dynamic batcher shape: records per flushed GEMM batch and
// ticks a request waited in the batcher before its flush.
inline constexpr char kFleetBatchFill[] = "fleet.batch.fill";
inline constexpr char kFleetRequestDelayTicks[] =
    "fleet.request.delay_ticks";

// --- Span names (wall timeline, category "stage") ---------------------

inline constexpr char kSpanRunnerBuildEnv[] = "runner.build_env";
inline constexpr char kSpanRunnerTrain[] = "runner.train";
inline constexpr char kSpanRunnerCalibrate[] = "runner.calibrate";
inline constexpr char kSpanRunnerPredictBatch[] = "runner.predict_batch";
inline constexpr char kSpanRunnerDecideBatch[] = "runner.decide_batch";
inline constexpr char kSpanCliGenerateStream[] = "cli.generate_stream";
inline constexpr char kSpanBenchEvaluateRep[] = "bench.evaluate_rep";
inline constexpr char kSpanNnGemm[] = "nn.gemm";

// --- Span names (wall timeline, category "threadpool") ----------------

inline constexpr char kSpanThreadPoolChunk[] = "threadpool.chunk";

// --- Span names (wall timeline, category "fleet") ---------------------

// One cross-stream batch flush: gather, GEMM scoring, per-stream
// completion fan-out.
inline constexpr char kSpanFleetBatch[] = "fleet.batch";

// --- Span names (simulated timeline, category "simulated") ------------
// The cost-model stages of one horizon (cloud/cost_model.h); aggregating
// these reproduces Fig. 10's per-stage proportions.

inline constexpr char kSpanStageFeatureExtraction[] =
    "stage.feature_extraction";
inline constexpr char kSpanStagePredictor[] = "stage.predictor";
inline constexpr char kSpanStageCi[] = "stage.ci";

// One relay outage: from the breaker tripping open to the close that ends
// it, on the simulated clock — Chrome-trace export shows outages as solid
// blocks on the simulated track.
inline constexpr char kSpanRelayOutage[] = "relay.outage";

// One latched guarantee breach: from the simulated time the detector
// latched to the end of the stream (breaches never unlatch).
inline constexpr char kSpanAuditBreach[] = "audit.breach";

}  // namespace eventhit::obs::names

namespace eventhit::obs {

/// Every metric name the pipeline can register, sorted. The schema-sync
/// test enforces (a) each appears in docs/TELEMETRY.md and (b) every name
/// actually registered at runtime is on this list.
std::vector<std::string> AllMetricNames();

/// Every span name the pipeline can emit, sorted; same doc contract.
std::vector<std::string> AllSpanNames();

/// Standard bucket bounds shared by frame-count histograms.
std::vector<double> FrameCountBounds();

/// Standard bucket bounds for simulated request latencies (seconds).
std::vector<double> LatencySecondsBounds();

/// Standard bucket bounds for ParallelFor item counts.
std::vector<double> ItemCountBounds();

/// Power-of-two bucket bounds for prediction batch sizes.
std::vector<double> BatchSizeBounds();

/// Bucket bounds for per-request relay attempt counts.
std::vector<double> AttemptCountBounds();

/// Bucket bounds for batcher queueing delays in simulated ticks.
std::vector<double> DelayTickBounds();

}  // namespace eventhit::obs

#endif  // EVENTHIT_OBS_SCHEMA_H_
