#include "obs/json_util.h"

#include <cmath>
#include <cstdio>

namespace eventhit::obs {

std::string JsonEscape(const std::string& value) {
  std::string out;
  out.reserve(value.size());
  for (const char c : value) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof(buffer), "\\u%04x",
                        static_cast<unsigned>(c));
          out += buffer;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string JsonNumber(double value) {
  if (!std::isfinite(value)) return "null";
  char buffer[64];
  // %.17g round-trips doubles; trim to a compact form for integers.
  if (value == static_cast<double>(static_cast<long long>(value)) &&
      std::fabs(value) < 1e15) {
    std::snprintf(buffer, sizeof(buffer), "%lld",
                  static_cast<long long>(value));
  } else {
    std::snprintf(buffer, sizeof(buffer), "%.17g", value);
  }
  return buffer;
}

}  // namespace eventhit::obs
