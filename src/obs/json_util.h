// Minimal JSON string escaping shared by the trace and metrics exporters.
#ifndef EVENTHIT_OBS_JSON_UTIL_H_
#define EVENTHIT_OBS_JSON_UTIL_H_

#include <string>

namespace eventhit::obs {

/// Escapes `value` for embedding inside a JSON string literal (quotes,
/// backslashes, control characters).
std::string JsonEscape(const std::string& value);

/// Formats a double as a JSON number. JSON has no Infinity/NaN literals,
/// so non-finite values render as `null` — a broken gauge must not parse
/// back as a legitimate zero.
std::string JsonNumber(double value);

}  // namespace eventhit::obs

#endif  // EVENTHIT_OBS_JSON_UTIL_H_
