// Thread-safe metrics registry: named counters, gauges and fixed-bucket
// histograms for pipeline observability (docs/TELEMETRY.md).
//
// The hot path is lock-free: every metric keeps kMetricShards cache-line
// padded atomic slots and each thread writes (relaxed) to the slot picked
// by its stable thread index, so concurrent increments never contend on
// one cache line. Shards are folded only when a snapshot is taken. Metrics
// are side channels — they never feed back into computation, so the
// parallel-equals-serial determinism contract (DESIGN.md §5c) is
// untouched: folded totals are sums, which commute.
//
// Registration (GetCounter/GetGauge/GetHistogram) takes a mutex and is
// meant for setup code; hot loops cache the returned pointer, which stays
// valid for the registry's lifetime.
#ifndef EVENTHIT_OBS_METRICS_H_
#define EVENTHIT_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <limits>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace eventhit::obs {

/// Number of per-metric shards (power of two). 16 covers typical worker
/// counts; threads beyond that share slots, which stays correct (atomic)
/// and merely adds contention.
inline constexpr int kMetricShards = 16;

/// Stable dense index of the calling thread (assigned on first use),
/// shared by the metric shard selection and trace-event thread ids.
int ThreadIndex();

/// Key/value labels attached to a metric series (e.g. {event_type=E1}).
/// Labels are resolved to a flat canonical name at registration time, so
/// the hot path (Add/Set/Observe on the cached pointer) is identical for
/// labeled and unlabeled series.
using Labels = std::vector<std::pair<std::string, std::string>>;

/// Distinct label sets allowed per base metric name. Registration beyond
/// the bound folds into a single `{overflow="true"}` series so a buggy
/// caller cannot explode the schema.
inline constexpr int kMaxLabelSetsPerMetric = 64;

/// Canonical flattened series name: `base{k1="v1",k2="v2"}` with keys
/// sorted and `\` / `"` escaped in values. Empty labels return `base`.
std::string LabeledName(const std::string& base, const Labels& labels);

/// Strips the `{...}` label suffix (if any) from a flattened series name,
/// recovering the base name used in the schema and docs.
std::string MetricBaseName(const std::string& name);

namespace internal {

struct alignas(64) CounterShard {
  std::atomic<int64_t> value{0};
};

struct alignas(64) SumShard {
  std::atomic<int64_t> count{0};
  // Sum/min/max as raw double bits updated by CAS (atomic<double> CAS works
  // on the bit pattern; all stores here are relaxed). min/max start at
  // +/-infinity so the first observation always wins; shards with
  // count == 0 are skipped when folding.
  std::atomic<double> sum{0.0};
  std::atomic<double> min{std::numeric_limits<double>::infinity()};
  std::atomic<double> max{-std::numeric_limits<double>::infinity()};
};

}  // namespace internal

/// Sentinel for "no exemplar recorded" on a counter.
inline constexpr int64_t kNoExemplar =
    std::numeric_limits<int64_t>::min();

/// Monotonically increasing integer metric.
class Counter {
 public:
  /// Adds `delta` (>= 0 by convention; not enforced on the hot path).
  void Add(int64_t delta = 1) {
    shards_[ThreadIndex() & (kMetricShards - 1)].value.fetch_add(
        delta, std::memory_order_relaxed);
  }

  /// Add carrying an exemplar id — e.g. the provenance decision id of the
  /// offending boundary (docs/TELEMETRY.md, "Provenance & exemplars").
  /// Last writer wins; surfaced by Snapshot() and the OpenMetrics
  /// exposition so a metric anomaly links straight to its provenance
  /// record.
  void Add(int64_t delta, int64_t exemplar) {
    Add(delta);
    exemplar_.store(exemplar, std::memory_order_relaxed);
  }

  /// Folds all shards. Linearizes against concurrent Add only per shard —
  /// callers snapshot between phases, not mid-increment.
  int64_t Value() const;

  /// Last exemplar id attached via Add(delta, exemplar); kNoExemplar when
  /// none was ever recorded.
  int64_t exemplar() const {
    return exemplar_.load(std::memory_order_relaxed);
  }

  const std::string& name() const { return name_; }

 private:
  friend class MetricsRegistry;
  explicit Counter(std::string name) : name_(std::move(name)) {}

  std::string name_;
  internal::CounterShard shards_[kMetricShards];
  std::atomic<int64_t> exemplar_{kNoExemplar};
};

/// Last-write-wins floating-point level (window sizes, knob settings, ...).
class Gauge {
 public:
  void Set(double value) { value_.store(value, std::memory_order_relaxed); }
  void Add(double delta);
  double Value() const { return value_.load(std::memory_order_relaxed); }

  const std::string& name() const { return name_; }

 private:
  friend class MetricsRegistry;
  explicit Gauge(std::string name) : name_(std::move(name)) {}

  std::string name_;
  std::atomic<double> value_{0.0};
};

/// Fixed-bucket histogram: `bounds` are inclusive upper bounds of the
/// finite buckets; one implicit overflow bucket catches the rest. Also
/// tracks count / sum / min / max.
class Histogram {
 public:
  void Observe(double value);

  const std::string& name() const { return name_; }
  const std::vector<double>& bounds() const { return bounds_; }

 private:
  friend class MetricsRegistry;
  Histogram(std::string name, std::vector<double> bounds);

  std::string name_;
  std::vector<double> bounds_;  // Sorted ascending.
  // bucket_shards_[bucket] holds the sharded count of that bucket; bucket
  // bounds_.size() is the overflow bucket.
  std::vector<std::unique_ptr<internal::CounterShard[]>> bucket_shards_;
  internal::SumShard sum_shards_[kMetricShards];
};

/// Point-in-time copies of every metric, sorted by name.
struct CounterSnapshot {
  std::string name;
  int64_t value = 0;
  /// Last exemplar id recorded on the counter (see Counter::Add with an
  /// exemplar); valid only when has_exemplar.
  bool has_exemplar = false;
  int64_t exemplar = 0;
};

struct GaugeSnapshot {
  std::string name;
  double value = 0.0;
};

struct HistogramSnapshot {
  std::string name;
  std::vector<double> bounds;         // Finite-bucket upper edges.
  std::vector<int64_t> bucket_counts; // bounds.size() + 1 entries.
  int64_t count = 0;
  double sum = 0.0;
  double min = 0.0;  // 0 when count == 0.
  double max = 0.0;

  double Mean() const { return count > 0 ? sum / count : 0.0; }

  /// Approximate quantile by linear interpolation inside the bucket that
  /// contains the q-th observation (q clamped to [0, 1]; 0 when empty).
  /// Bucket b spans (bounds[b-1], bounds[b]]; the first bucket's lower
  /// edge is the observed min and every edge is clamped to the observed
  /// [min, max], so a single-bucket histogram interpolates min..max. The
  /// overflow bucket has no finite upper bound and interpolates from the
  /// last finite bound to the observed max.
  double ApproxQuantile(double q) const;
};

struct MetricsSnapshot {
  std::vector<CounterSnapshot> counters;
  std::vector<GaugeSnapshot> gauges;
  std::vector<HistogramSnapshot> histograms;
};

/// Owner of all metrics. One process-wide instance (`Global()`) backs the
/// default pipeline instrumentation; tests build private registries.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Returns the metric registered under `name`, creating it on first use.
  /// Process-fatal if `name` is already registered as a different kind (or,
  /// for histograms, with different bounds).
  Counter* GetCounter(const std::string& name);
  Gauge* GetGauge(const std::string& name);
  Histogram* GetHistogram(const std::string& name,
                          std::vector<double> bounds);

  /// Labeled variants: register the flattened series `name{labels}`. The
  /// per-base-name cardinality is bounded by kMaxLabelSetsPerMetric; label
  /// sets beyond the bound all map to the `{overflow="true"}` series of
  /// the same base name (so writes are never lost, only coarsened).
  Counter* GetCounter(const std::string& name, const Labels& labels);
  Gauge* GetGauge(const std::string& name, const Labels& labels);
  Histogram* GetHistogram(const std::string& name, std::vector<double> bounds,
                          const Labels& labels);

  /// Folds every metric into a by-name-sorted snapshot.
  MetricsSnapshot Snapshot() const;

  /// Every registered metric name, sorted (for schema-sync checks).
  std::vector<std::string> Names() const;

  /// Zeroes all values; registered metrics (and cached pointers) survive.
  void Reset();

  /// The process-wide registry used by default instrumentation.
  static MetricsRegistry& Global();

 private:
  enum class Kind { kCounter, kGauge, kHistogram };
  struct Entry {
    Kind kind;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };

  /// Resolves a labeled series name, folding into the overflow series once
  /// the base name has kMaxLabelSetsPerMetric distinct label sets. Must be
  /// called with mu_ held.
  std::string ResolveLabeledNameLocked(const std::string& base,
                                       const Labels& labels);

  Counter* GetCounterLocked(const std::string& name);
  Gauge* GetGaugeLocked(const std::string& name);
  Histogram* GetHistogramLocked(const std::string& name,
                                std::vector<double> bounds);

  mutable std::mutex mu_;
  std::map<std::string, Entry> metrics_;       // Guarded by mu_.
  std::map<std::string, int> label_sets_;      // base -> #series. By mu_.
};

}  // namespace eventhit::obs

#endif  // EVENTHIT_OBS_METRICS_H_
