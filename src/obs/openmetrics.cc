#include "obs/openmetrics.h"

#include <cmath>
#include <cstdio>
#include <fstream>

namespace eventhit::obs {

namespace {

bool ValidNameChar(char c, bool first) {
  if ((c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_' ||
      c == ':') {
    return true;
  }
  return !first && c >= '0' && c <= '9';
}

std::string OmNumber(double value) {
  if (std::isnan(value)) return "NaN";
  if (std::isinf(value)) return value > 0 ? "+Inf" : "-Inf";
  char buffer[64];
  if (value == static_cast<double>(static_cast<long long>(value)) &&
      std::fabs(value) < 1e15) {
    std::snprintf(buffer, sizeof(buffer), "%lld",
                  static_cast<long long>(value));
  } else {
    std::snprintf(buffer, sizeof(buffer), "%.17g", value);
  }
  return buffer;
}

/// Renders `{k="v",...}` with `le` appended when non-empty; empty labels
/// and empty le render as "".
std::string LabelBlock(const Labels& labels, const std::string& le = "") {
  if (labels.empty() && le.empty()) return "";
  std::string out = "{";
  bool first = true;
  for (const auto& [key, value] : labels) {
    if (!first) out += ',';
    first = false;
    out += key + "=\"" + OpenMetricsLabelValue(value) + "\"";
  }
  if (!le.empty()) {
    if (!first) out += ',';
    out += "le=\"" + le + "\"";
  }
  out += '}';
  return out;
}

}  // namespace

std::string OpenMetricsName(const std::string& base) {
  std::string out;
  out.reserve(base.size() + 1);
  for (size_t i = 0; i < base.size(); ++i) {
    const char c = base[i];
    if (i == 0 && c >= '0' && c <= '9') out += '_';
    out += ValidNameChar(c, out.empty()) ? c : '_';
  }
  if (out.empty()) out = "_";
  return out;
}

ParsedSeries ParseSeriesName(const std::string& name) {
  ParsedSeries parsed;
  const size_t brace = name.find('{');
  if (brace == std::string::npos) {
    parsed.base = name;
    return parsed;
  }
  parsed.base = name.substr(0, brace);
  // Body is LabeledName output: k="v" pairs, comma separated, with `\`
  // and `"` backslash-escaped inside values.
  size_t i = brace + 1;
  while (i < name.size() && name[i] != '}') {
    const size_t eq = name.find('=', i);
    if (eq == std::string::npos) break;
    std::string key = name.substr(i, eq - i);
    i = eq + 1;
    if (i >= name.size() || name[i] != '"') break;
    ++i;
    std::string value;
    while (i < name.size() && name[i] != '"') {
      if (name[i] == '\\' && i + 1 < name.size()) ++i;
      value += name[i++];
    }
    ++i;  // Closing quote.
    parsed.labels.emplace_back(std::move(key), std::move(value));
    if (i < name.size() && name[i] == ',') ++i;
  }
  return parsed;
}

std::string OpenMetricsLabelValue(const std::string& value) {
  std::string out;
  out.reserve(value.size());
  for (const char c : value) {
    switch (c) {
      case '\\':
        out += "\\\\";
        break;
      case '"':
        out += "\\\"";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        out += c;
    }
  }
  return out;
}

std::string MetricsToOpenMetrics(const MetricsSnapshot& snapshot) {
  std::string out;
  std::string family;  // Base of the last emitted # TYPE line.

  auto type_line = [&](const std::string& base, const char* type) {
    if (base == family) return;
    family = base;
    out += "# TYPE " + base + " " + type + "\n";
  };

  for (const CounterSnapshot& counter : snapshot.counters) {
    const ParsedSeries series = ParseSeriesName(counter.name);
    const std::string base = OpenMetricsName(series.base);
    type_line(base, "counter");
    out += base + "_total" + LabelBlock(series.labels) + " " +
           std::to_string(counter.value);
    if (counter.has_exemplar) {
      // OpenMetrics exemplar: the last offending decision id, linking the
      // counter to `eventhit_cli explain --decision=<id>`.
      out += " # {decision_id=\"" + std::to_string(counter.exemplar) +
             "\"} 1";
    }
    out += "\n";
  }
  for (const GaugeSnapshot& gauge : snapshot.gauges) {
    const ParsedSeries series = ParseSeriesName(gauge.name);
    const std::string base = OpenMetricsName(series.base);
    type_line(base, "gauge");
    out += base + LabelBlock(series.labels) + " " + OmNumber(gauge.value) +
           "\n";
  }
  for (const HistogramSnapshot& histogram : snapshot.histograms) {
    const ParsedSeries series = ParseSeriesName(histogram.name);
    const std::string base = OpenMetricsName(series.base);
    type_line(base, "histogram");
    int64_t cumulative = 0;
    for (size_t b = 0; b < histogram.bucket_counts.size(); ++b) {
      cumulative += histogram.bucket_counts[b];
      const std::string le = b < histogram.bounds.size()
                                 ? OmNumber(histogram.bounds[b])
                                 : "+Inf";
      out += base + "_bucket" + LabelBlock(series.labels, le) + " " +
             std::to_string(cumulative) + "\n";
    }
    out += base + "_sum" + LabelBlock(series.labels) + " " +
           OmNumber(histogram.sum) + "\n";
    out += base + "_count" + LabelBlock(series.labels) + " " +
           std::to_string(histogram.count) + "\n";
  }
  out += "# EOF\n";
  return out;
}

Status WriteOpenMetrics(const MetricsSnapshot& snapshot,
                        const std::string& path) {
  std::ofstream file(path, std::ios::binary | std::ios::trunc);
  if (!file) {
    return InternalError("cannot open output file: " + path);
  }
  file << MetricsToOpenMetrics(snapshot);
  if (!file.good()) {
    return InternalError("short write to output file: " + path);
  }
  return OkStatus();
}

}  // namespace eventhit::obs
