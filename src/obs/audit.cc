#include "obs/audit.h"

#include <algorithm>
#include <cmath>

#include "obs/schema.h"

namespace eventhit::obs {

double WilsonLowerBound(int64_t fails, int64_t n, double z) {
  if (n <= 0) return 0.0;
  const double p = static_cast<double>(fails) / static_cast<double>(n);
  const double z2 = z * z;
  const double denom = 1.0 + z2 / n;
  const double center = p + z2 / (2.0 * n);
  const double margin =
      z * std::sqrt(p * (1.0 - p) / n + z2 / (4.0 * n * n));
  return std::max(0.0, (center - margin) / denom);
}

const char* AuditGuaranteeName(AuditGuarantee guarantee) {
  return guarantee == AuditGuarantee::kMiss ? "miss" : "miscoverage";
}

GuarantyAuditor::GuarantyAuditor(const AuditConfig& config,
                                 MetricsRegistry* metrics, TraceBuffer* trace,
                                 Logger* log)
    : config_(config),
      metrics_(metrics != nullptr ? metrics : &MetricsRegistry::Global()),
      trace_(trace),
      log_(log != nullptr ? log : &Logger::Global()),
      miss_budget_(1.0 - config.confidence),
      miscoverage_budget_(1.0 - config.coverage),
      total_outcomes_(metrics_->GetCounter(names::kAuditOutcomes)),
      total_positives_(metrics_->GetCounter(names::kAuditPositives)),
      total_misses_(metrics_->GetCounter(names::kAuditMisses)),
      total_endpoints_(metrics_->GetCounter(names::kAuditEndpoints)),
      total_miscovered_(metrics_->GetCounter(names::kAuditMiscovered)),
      total_breaches_(metrics_->GetCounter(names::kAuditBreaches)) {}

GuarantyAuditor::EventState& GuarantyAuditor::State(int event) {
  auto it = events_.find(event);
  if (it != events_.end()) return it->second;

  EventState state;
  state.label = event >= 0 &&
                        static_cast<size_t>(event) <
                            config_.event_labels.size()
                    ? config_.event_labels[event]
                    : "event" + std::to_string(event);
  const Labels by_event = {{"event_type", state.label}};
  state.outcomes = metrics_->GetCounter(names::kAuditOutcomes, by_event);
  state.positives = metrics_->GetCounter(names::kAuditPositives, by_event);
  state.misses = metrics_->GetCounter(names::kAuditMisses, by_event);
  state.endpoints = metrics_->GetCounter(names::kAuditEndpoints, by_event);
  state.miscovered = metrics_->GetCounter(names::kAuditMiscovered, by_event);

  state.miss.rate = metrics_->GetGauge(names::kAuditMissRate, by_event);
  state.miss.wilson =
      metrics_->GetGauge(names::kAuditMissWilsonLower, by_event);
  metrics_->GetGauge(names::kAuditMissBudget, by_event)->Set(miss_budget_);
  state.coverage.rate =
      metrics_->GetGauge(names::kAuditMiscoverageRate, by_event);
  state.coverage.wilson =
      metrics_->GetGauge(names::kAuditMiscoverageWilsonLower, by_event);
  metrics_->GetGauge(names::kAuditMiscoverageBudget, by_event)
      ->Set(miscoverage_budget_);

  for (Track* track : {&state.miss, &state.coverage}) {
    const AuditGuarantee guarantee = track == &state.miss
                                         ? AuditGuarantee::kMiss
                                         : AuditGuarantee::kMiscoverage;
    const Labels by_track = {{"event_type", state.label},
                             {"guarantee", AuditGuaranteeName(guarantee)}};
    track->breach_active =
        metrics_->GetGauge(names::kAuditBreachActive, by_track);
    track->breach_counter =
        metrics_->GetCounter(names::kAuditBreaches, by_track);
    track->ring.reserve(static_cast<size_t>(config_.slow_window));
  }
  return events_.emplace(event, std::move(state)).first->second;
}

void GuarantyAuditor::ObserveTrack(EventState& state, Track* track,
                                   AuditGuarantee guarantee, bool fail,
                                   int64_t sim_time, int64_t decision_id) {
  ++track->n;
  if (fail) ++track->fails;

  const size_t cap = static_cast<size_t>(std::max(1, config_.slow_window));
  if (track->ring.size() < cap) {
    track->ring.push_back(fail ? 1 : 0);
  } else {
    track->ring_fails -= track->ring[track->head];
    track->ring[track->head] = fail ? 1 : 0;
    track->head = (track->head + 1) % cap;
  }
  if (fail) ++track->ring_fails;

  const size_t size = track->ring.size();
  const double slow_rate =
      static_cast<double>(track->ring_fails) / static_cast<double>(size);
  const double wilson =
      WilsonLowerBound(track->ring_fails, static_cast<int64_t>(size),
                       config_.wilson_z);
  track->rate->Set(slow_rate);
  track->wilson->Set(wilson);

  if (track->breached) return;
  const size_t fast_n =
      std::min(size, static_cast<size_t>(std::max(1, config_.fast_window)));
  if (fast_n < static_cast<size_t>(std::max(1, config_.fast_window))) return;

  // Newest entry: last pushed while filling, else just behind the head.
  int64_t fast_fails = 0;
  for (size_t i = 0; i < fast_n; ++i) {
    const size_t idx = size < cap ? size - 1 - i
                                  : (track->head + cap - 1 - i) % cap;
    fast_fails += track->ring[idx];
  }
  const double fast_rate =
      static_cast<double>(fast_fails) / static_cast<double>(fast_n);
  const double budget = guarantee == AuditGuarantee::kMiss
                            ? miss_budget_
                            : miscoverage_budget_;
  // burn_factor x budget saturates above 1 for loose budgets (e.g. a 0.5
  // miscoverage budget), which would make the fast gate untrippable; cap
  // the threshold at the midpoint between the budget and certain failure.
  const double fast_threshold =
      std::min(config_.burn_factor * budget, 0.5 * (1.0 + budget));
  if (fast_rate > fast_threshold && wilson > budget) {
    track->breached = true;
    track->breach_time = sim_time;
    track->breach_active->Set(1.0);
    // The breach counters carry the offending boundary's decision id as
    // an exemplar: an alert on audit.breaches links straight to
    // `eventhit_cli explain --decision=<id>`.
    if (decision_id >= 0) {
      last_breach_decision_ = decision_id;
      track->breach_counter->Add(1, decision_id);
      total_breaches_->Add(1, decision_id);
    } else {
      track->breach_counter->Add(1);
      total_breaches_->Add(1);
    }
    ++breaches_;
    log_->Log(LogLevel::kError, "audit", "breach", sim_time,
              {LogStr("event_type", state.label),
               LogStr("guarantee", AuditGuaranteeName(guarantee)),
               LogNum("fast_rate", fast_rate),
               LogNum("wilson_lower", wilson), LogNum("budget", budget),
               LogInt("samples", track->n),
               LogInt("decision_id", decision_id)});
  }
}

void GuarantyAuditor::Observe(const AuditOutcome& outcome) {
  EventState& state = State(outcome.event);
  ++outcomes_;
  total_outcomes_->Add(1);
  state.outcomes->Add(1);

  if (outcome.truth_present) {
    total_positives_->Add(1);
    state.positives->Add(1);
    const bool missed = !outcome.predicted_present;
    if (missed) {
      if (outcome.decision_id >= 0) {
        total_misses_->Add(1, outcome.decision_id);
        state.misses->Add(1, outcome.decision_id);
      } else {
        total_misses_->Add(1);
        state.misses->Add(1);
      }
    }
    ObserveTrack(state, &state.miss, AuditGuarantee::kMiss, missed,
                 outcome.sim_time, outcome.decision_id);
  }

  if (outcome.truth_present && outcome.predicted_present) {
    // Two endpoint samples per scored interval (Theorem 5.2 bounds each
    // endpoint separately).
    for (const bool covered : {outcome.start_covered, outcome.end_covered}) {
      total_endpoints_->Add(1);
      state.endpoints->Add(1);
      if (!covered) {
        if (outcome.decision_id >= 0) {
          total_miscovered_->Add(1, outcome.decision_id);
          state.miscovered->Add(1, outcome.decision_id);
        } else {
          total_miscovered_->Add(1);
          state.miscovered->Add(1);
        }
      }
      ObserveTrack(state, &state.coverage, AuditGuarantee::kMiscoverage,
                   !covered, outcome.sim_time, outcome.decision_id);
    }
  }
}

void GuarantyAuditor::Finalize(int64_t end_sim_time) {
  if (finalized_) return;
  finalized_ = true;
  if (trace_ == nullptr) return;
  const double us_per_tick = 1e6 / config_.stream_fps;
  for (const auto& [event, state] : events_) {
    (void)event;
    for (const Track* track : {&state.miss, &state.coverage}) {
      if (!track->breached) continue;
      const int64_t start_us =
          static_cast<int64_t>(std::llround(track->breach_time * us_per_tick));
      const int64_t end_us =
          static_cast<int64_t>(std::llround(end_sim_time * us_per_tick));
      RecordSimulatedSpan(trace_, names::kSpanAuditBreach, "simulated",
                          start_us, std::max<int64_t>(0, end_us - start_us),
                          config_.sim_tid);
    }
  }
}

int64_t GuarantyAuditor::positives(int event) const {
  auto it = events_.find(event);
  return it == events_.end() ? 0 : it->second.miss.n;
}

int64_t GuarantyAuditor::misses(int event) const {
  auto it = events_.find(event);
  return it == events_.end() ? 0 : it->second.miss.fails;
}

int64_t GuarantyAuditor::endpoints(int event) const {
  auto it = events_.find(event);
  return it == events_.end() ? 0 : it->second.coverage.n;
}

int64_t GuarantyAuditor::miscovered(int event) const {
  auto it = events_.find(event);
  return it == events_.end() ? 0 : it->second.coverage.fails;
}

int64_t GuarantyAuditor::total_positives() const {
  int64_t total = 0;
  for (const auto& [event, state] : events_) total += state.miss.n;
  return total;
}

int64_t GuarantyAuditor::total_misses() const {
  int64_t total = 0;
  for (const auto& [event, state] : events_) total += state.miss.fails;
  return total;
}

int64_t GuarantyAuditor::total_endpoints() const {
  int64_t total = 0;
  for (const auto& [event, state] : events_) total += state.coverage.n;
  return total;
}

int64_t GuarantyAuditor::total_miscovered() const {
  int64_t total = 0;
  for (const auto& [event, state] : events_) total += state.coverage.fails;
  return total;
}

double GuarantyAuditor::MissRate(int event) const {
  auto it = events_.find(event);
  if (it == events_.end() || it->second.miss.n == 0) return 0.0;
  return static_cast<double>(it->second.miss.fails) /
         static_cast<double>(it->second.miss.n);
}

double GuarantyAuditor::MiscoverageRate(int event) const {
  auto it = events_.find(event);
  if (it == events_.end() || it->second.coverage.n == 0) return 0.0;
  return static_cast<double>(it->second.coverage.fails) /
         static_cast<double>(it->second.coverage.n);
}

bool GuarantyAuditor::breached(int event, AuditGuarantee guarantee) const {
  auto it = events_.find(event);
  if (it == events_.end()) return false;
  return guarantee == AuditGuarantee::kMiss ? it->second.miss.breached
                                            : it->second.coverage.breached;
}

int64_t GuarantyAuditor::breach_time(int event,
                                     AuditGuarantee guarantee) const {
  auto it = events_.find(event);
  if (it == events_.end()) return -1;
  return guarantee == AuditGuarantee::kMiss ? it->second.miss.breach_time
                                            : it->second.coverage.breach_time;
}

}  // namespace eventhit::obs
