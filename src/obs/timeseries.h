// Periodic metrics time series: JSONL delta snapshots keyed by the
// simulated stream clock, so REC/SPL trade-offs and audit health can be
// plotted over stream time instead of read once at exit.
//
// Each Emit writes one line containing only what changed since the
// previous Emit: counter deltas, gauges whose value moved, and histogram
// (count, sum) deltas. Metrics whose name starts with an excluded prefix
// (by default `threadpool.`, whose values depend on wall time and worker
// count) are skipped, which is what makes the exported file byte-identical
// across --threads settings at a fixed seed.
#ifndef EVENTHIT_OBS_TIMESERIES_H_
#define EVENTHIT_OBS_TIMESERIES_H_

#include <cstdint>
#include <map>
#include <ostream>
#include <string>
#include <utility>
#include <vector>

#include "obs/metrics.h"

namespace eventhit::obs {

class MetricsDeltaWriter {
 public:
  /// Writes lines to `*os` (not owned; must outlive the writer).
  explicit MetricsDeltaWriter(
      std::ostream* os,
      std::vector<std::string> exclude_prefixes = {"threadpool."});

  /// Appends one JSONL delta line at simulated time `sim_time`:
  ///   {"t":40,"counters":{"audit.misses":2,...},
  ///    "gauges":{"audit.miss.rate{...}":0.25},
  ///    "histograms":{"cloud.request.frames":{"count":3,"sum":51}}}
  /// Sections with no changes render as empty objects, so every line is a
  /// complete, self-describing record.
  void Emit(const MetricsSnapshot& snapshot, int64_t sim_time);

 private:
  bool Excluded(const std::string& name) const;

  std::ostream* os_;
  std::vector<std::string> exclude_prefixes_;
  std::map<std::string, int64_t> last_counters_;
  std::map<std::string, double> last_gauges_;
  std::map<std::string, std::pair<int64_t, double>> last_histograms_;
};

}  // namespace eventhit::obs

#endif  // EVENTHIT_OBS_TIMESERIES_H_
