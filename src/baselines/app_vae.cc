#include "baselines/app_vae.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "common/stats.h"

namespace eventhit::baselines {

AppVaeStrategy::AppVaeStrategy(const sim::SyntheticVideo* video,
                               const data::Task* task, int horizon,
                               const sim::Interval& train_range,
                               AppVaeOptions options)
    : video_(video), task_(task), horizon_(horizon), options_(options) {
  EVENTHIT_CHECK(video_ != nullptr);
  EVENTHIT_CHECK(task_ != nullptr);
  EVENTHIT_CHECK_GT(horizon_, 0);
  EVENTHIT_CHECK(!train_range.empty());

  const size_t k_events = task_->event_indices.size();
  gaps_.resize(k_events);
  duration_mean_.assign(k_events, 0.0);
  marginal_probability_.assign(k_events, 0.0);
  marginal_arrival_.assign(k_events, static_cast<double>(horizon) / 2.0);

  for (size_t k = 0; k < k_events; ++k) {
    const auto& occurrences =
        video_->timeline().occurrences(task_->event_indices[k]);
    std::vector<double> durations;
    const sim::Interval* previous = nullptr;
    for (const sim::Interval& occ : occurrences) {
      if (occ.start < train_range.start || occ.end > train_range.end) {
        previous = nullptr;
        continue;
      }
      durations.push_back(static_cast<double>(occ.length()));
      if (previous != nullptr) {
        gaps_[k].push_back(static_cast<double>(occ.start - previous->end));
      }
      previous = &occ;
    }
    std::sort(gaps_[k].begin(), gaps_[k].end());
    duration_mean_[k] = Mean(durations);

    // Length-biased marginal: a uniformly random time point falls in gap g_i
    // with probability g_i / sum(g); the residual to the next start is then
    // uniform over g_i, so P(residual <= H) = sum(min(g_i, H)) / sum(g_i).
    double total = 0.0;
    double within = 0.0;
    for (double g : gaps_[k]) {
      total += g;
      within += std::min(g, static_cast<double>(horizon_));
    }
    marginal_probability_[k] = total > 0.0 ? within / total : 0.0;
  }
}

std::string AppVaeStrategy::name() const {
  return "APP-VAE_" + std::to_string(options_.window);
}

int64_t AppVaeStrategy::ElapsedSinceLastEnd(size_t k, int64_t frame) const {
  const auto& occurrences =
      video_->timeline().occurrences(task_->event_indices[k]);
  // Last occurrence with start <= frame.
  auto it = std::upper_bound(
      occurrences.begin(), occurrences.end(), frame,
      [](int64_t value, const sim::Interval& iv) { return value < iv.start; });
  if (it == occurrences.begin()) return -1;
  const sim::Interval& last = *std::prev(it);
  if (last.Contains(frame)) return 0;  // Event ongoing right now.
  const int64_t elapsed = frame - last.end;
  // Only annotations within the visible action-unit window count.
  if (elapsed > options_.window) return -1;
  return elapsed;
}

double AppVaeStrategy::ConditionalStartProbability(size_t k,
                                                   int64_t elapsed) const {
  EVENTHIT_CHECK_LT(k, gaps_.size());
  if (elapsed < 0) return marginal_probability_[k];
  const auto& gaps = gaps_[k];
  const auto begin = std::upper_bound(gaps.begin(), gaps.end(),
                                      static_cast<double>(elapsed));
  const auto surviving = static_cast<double>(gaps.end() - begin);
  if (surviving == 0.0) return 1.0;  // Overdue relative to all history.
  const auto within_end =
      std::upper_bound(begin, gaps.end(),
                       static_cast<double>(elapsed + horizon_));
  return static_cast<double>(within_end - begin) / surviving;
}

double AppVaeStrategy::ConditionalQuantile(size_t k, int64_t elapsed,
                                           double q) const {
  const auto& gaps = gaps_[k];
  const auto begin = std::upper_bound(gaps.begin(), gaps.end(),
                                      static_cast<double>(elapsed));
  const auto n = gaps.end() - begin;
  if (n <= 0) return -1.0;
  auto rank = static_cast<int64_t>(std::ceil(q * static_cast<double>(n)));
  rank = std::max<int64_t>(1, std::min<int64_t>(rank, n));
  return *(begin + (rank - 1)) - static_cast<double>(elapsed);
}

core::MarshalDecision AppVaeStrategy::Decide(
    const data::Record& record) const {
  const size_t k_events = task_->event_indices.size();
  EVENTHIT_CHECK_EQ(record.labels.size(), k_events);
  core::MarshalDecision decision;
  decision.exists.assign(k_events, false);
  decision.intervals.assign(k_events, sim::Interval::Empty());

  for (size_t k = 0; k < k_events; ++k) {
    const int64_t elapsed = ElapsedSinceLastEnd(k, record.frame);
    const double p = ConditionalStartProbability(k, elapsed);
    if (p < options_.probability_threshold) continue;
    decision.exists[k] = true;
    if (elapsed < 0) {
      // No visible history: relay the whole horizon.
      decision.intervals[k] = sim::Interval{1, horizon_};
      continue;
    }
    const double lo = ConditionalQuantile(k, elapsed, options_.lo_quantile);
    const double hi = ConditionalQuantile(k, elapsed, options_.hi_quantile);
    if (lo < 0.0 || hi < 0.0) {
      decision.intervals[k] = sim::Interval{1, horizon_};
      continue;
    }
    int64_t start = static_cast<int64_t>(std::floor(lo));
    int64_t end = static_cast<int64_t>(std::ceil(hi + duration_mean_[k]));
    start = std::max<int64_t>(1, std::min<int64_t>(start, horizon_));
    end = std::max(start, std::min<int64_t>(end, horizon_));
    decision.intervals[k] = sim::Interval{start, end};
  }
  return decision;
}

}  // namespace eventhit::baselines
