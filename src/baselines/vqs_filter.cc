#include "baselines/vqs_filter.h"

#include "common/check.h"

namespace eventhit::baselines {

VqsStrategy::VqsStrategy(const sim::SyntheticVideo* video,
                         const data::Task* task, int horizon, double tau_vqs,
                         double min_count)
    : video_(video),
      task_(task),
      horizon_(horizon),
      tau_vqs_(tau_vqs),
      min_count_(min_count) {
  EVENTHIT_CHECK(video_ != nullptr);
  EVENTHIT_CHECK(task_ != nullptr);
  EVENTHIT_CHECK_GT(horizon_, 0);
}

int VqsStrategy::CountObjectFrames(size_t k, int64_t frame) const {
  EVENTHIT_CHECK_LT(k, task_->event_indices.size());
  const size_t event_index = task_->event_indices[k];
  int count = 0;
  const int64_t end = frame + horizon_;
  EVENTHIT_CHECK_LT(end, video_->num_frames() + 1);
  for (int64_t t = frame + 1; t <= end; ++t) {
    if (video_->ObjectCount(event_index, t) >= min_count_) ++count;
  }
  return count;
}

core::MarshalDecision VqsStrategy::Decide(const data::Record& record) const {
  const size_t k_events = task_->event_indices.size();
  EVENTHIT_CHECK_EQ(record.labels.size(), k_events);
  core::MarshalDecision decision;
  decision.exists.assign(k_events, false);
  decision.intervals.assign(k_events, sim::Interval::Empty());
  for (size_t k = 0; k < k_events; ++k) {
    if (CountObjectFrames(k, record.frame) >= tau_vqs_) {
      decision.exists[k] = true;
      decision.intervals[k] = sim::Interval{1, horizon_};
    }
  }
  return decision;
}

}  // namespace eventhit::baselines
