// COX baseline (§VI.B item 7): a Cox proportional-hazards survival model
// per event type, regressing the time until the event's next start from
// summary covariates of the collection window.
//
// At inference it scans the horizon for the first offset whose estimated
// event probability 1 - S(t | x) reaches the threshold tau_cox and relays
// [t, H] — the Cox model regresses a single variable (the start), so the
// end point is unknowable and the paper lets the interval run to the end of
// the horizon. Sweeping tau_cox traces the REC-SPL curve.
#ifndef EVENTHIT_BASELINES_COX_STRATEGY_H_
#define EVENTHIT_BASELINES_COX_STRATEGY_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "core/prediction.h"
#include "data/record.h"
#include "survival/cox_model.h"

namespace eventhit::baselines {

/// Reduces a record's M x D covariate block to the Cox feature vector:
/// the last frame's features concatenated with the window means (2D dims).
std::vector<double> CoxCovariates(const data::Record& record,
                                  int collection_window, size_t feature_dim);

/// Fitted per-event Cox marshaller.
class CoxStrategy : public core::MarshalStrategy {
 public:
  /// Fits one Cox model per event type on `training` records. `horizon` is
  /// H; `feature_dim` is D. Records without the event are right-censored at
  /// H. Fails if any per-event fit fails.
  static Result<CoxStrategy> Fit(const std::vector<data::Record>& training,
                                 int collection_window, size_t feature_dim,
                                 int horizon);

  std::string name() const override { return "COX"; }
  core::MarshalDecision Decide(const data::Record& record) const override;

  void set_threshold(double tau_cox) { threshold_ = tau_cox; }
  double threshold() const { return threshold_; }

  const survival::CoxModel& model(size_t k) const { return models_[k]; }

 private:
  CoxStrategy() = default;

  std::vector<survival::CoxModel> models_;
  int collection_window_ = 0;
  size_t feature_dim_ = 0;
  int horizon_ = 0;
  double threshold_ = 0.5;
};

}  // namespace eventhit::baselines

#endif  // EVENTHIT_BASELINES_COX_STRATEGY_H_
