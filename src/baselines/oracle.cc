#include "baselines/oracle.h"

namespace eventhit::baselines {

core::MarshalDecision OptStrategy::Decide(const data::Record& record) const {
  core::MarshalDecision decision;
  decision.exists.resize(record.labels.size());
  decision.intervals.assign(record.labels.size(), sim::Interval::Empty());
  for (size_t k = 0; k < record.labels.size(); ++k) {
    const data::EventLabel& label = record.labels[k];
    decision.exists[k] = label.present;
    if (label.present) {
      decision.intervals[k] = sim::Interval{label.start, label.end};
    }
  }
  return decision;
}

core::MarshalDecision BfStrategy::Decide(const data::Record& record) const {
  core::MarshalDecision decision;
  decision.exists.assign(record.labels.size(), true);
  decision.intervals.assign(record.labels.size(),
                            sim::Interval{1, horizon_});
  return decision;
}

}  // namespace eventhit::baselines
