#include "baselines/cox_strategy.h"

#include "common/check.h"

namespace eventhit::baselines {

std::vector<double> CoxCovariates(const data::Record& record,
                                  int collection_window, size_t feature_dim) {
  const auto m = static_cast<size_t>(collection_window);
  EVENTHIT_CHECK_EQ(record.covariates.size(), m * feature_dim);
  std::vector<double> out(2 * feature_dim, 0.0);
  const float* last = record.covariates.data() + (m - 1) * feature_dim;
  for (size_t c = 0; c < feature_dim; ++c) out[c] = last[c];
  for (size_t t = 0; t < m; ++t) {
    const float* row = record.covariates.data() + t * feature_dim;
    for (size_t c = 0; c < feature_dim; ++c) {
      out[feature_dim + c] += row[c] / static_cast<double>(m);
    }
  }
  return out;
}

Result<CoxStrategy> CoxStrategy::Fit(const std::vector<data::Record>& training,
                                     int collection_window, size_t feature_dim,
                                     int horizon) {
  if (training.empty()) {
    return InvalidArgumentError("Cox strategy needs training records");
  }
  CoxStrategy strategy;
  strategy.collection_window_ = collection_window;
  strategy.feature_dim_ = feature_dim;
  strategy.horizon_ = horizon;

  const size_t k_events = training[0].labels.size();
  for (size_t k = 0; k < k_events; ++k) {
    std::vector<survival::CoxObservation> observations;
    observations.reserve(training.size());
    for (const data::Record& record : training) {
      survival::CoxObservation obs;
      obs.covariates = CoxCovariates(record, collection_window, feature_dim);
      const data::EventLabel& label = record.labels[k];
      if (label.present) {
        obs.time = static_cast<double>(label.start);
        obs.observed = true;
      } else {
        obs.time = static_cast<double>(horizon);
        obs.observed = false;
      }
      observations.push_back(std::move(obs));
    }
    auto model = survival::CoxModel::Fit(observations);
    if (!model.ok()) return model.status();
    strategy.models_.push_back(std::move(model.value()));
  }
  return strategy;
}

core::MarshalDecision CoxStrategy::Decide(const data::Record& record) const {
  EVENTHIT_CHECK_EQ(record.labels.size(), models_.size());
  const std::vector<double> covariates =
      CoxCovariates(record, collection_window_, feature_dim_);
  core::MarshalDecision decision;
  decision.exists.assign(models_.size(), false);
  decision.intervals.assign(models_.size(), sim::Interval::Empty());
  for (size_t k = 0; k < models_.size(); ++k) {
    // First offset whose estimated event probability reaches the threshold.
    // Event-probability is non-decreasing in t, so scan once.
    for (int t = 1; t <= horizon_; ++t) {
      if (models_[k].EventProbability(static_cast<double>(t), covariates) >=
          threshold_) {
        decision.exists[k] = true;
        decision.intervals[k] = sim::Interval{t, horizon_};
        break;
      }
    }
  }
  return decision;
}

}  // namespace eventhit::baselines
