// APP-VAE baseline (§VI.B item 9): an action point-process predictor over
// the annotated action-unit stream.
//
// Substitution note (see DESIGN.md): the original APP-VAE is a variational
// generative model over asynchronous action sequences. What the paper's
// comparison exercises is its *interface and cost structure*: it consumes a
// very large collection window of detected action units (M = 200 or 1500,
// each frame paying action-detection cost), and emits, per event type, a
// probability of occurrence in the horizon plus an arrival-time estimate.
// We implement that interface with a nonparametric renewal (point-process)
// estimator: the empirical conditional distribution of time-to-next-start
// given the elapsed time since the last occurrence observed *within the
// window*. Occurrences whose last instance ended before the window began
// are invisible to it — exactly why small windows cripple APP-VAE and why
// it was only competitive on the dense Breakfast streams.
#ifndef EVENTHIT_BASELINES_APP_VAE_H_
#define EVENTHIT_BASELINES_APP_VAE_H_

#include <string>
#include <vector>

#include "core/prediction.h"
#include "data/tasks.h"
#include "sim/interval.h"
#include "sim/synthetic_video.h"

namespace eventhit::baselines {

/// Configuration of the point-process predictor.
struct AppVaeOptions {
  /// Action-unit collection window (frames of history visible), the paper's
  /// M = 200 / M = 1500 variants.
  int window = 200;
  /// Predict occurrence when the conditional probability of a start within
  /// the horizon reaches this value. Tuned so the predictor engages on the
  /// dense Breakfast-style streams it was designed for (matching the
  /// operating point used for [41] in the paper's comparison).
  double probability_threshold = 0.45;
  /// Central quantiles of the conditional arrival distribution used as the
  /// relayed interval's start/end anchors.
  double lo_quantile = 0.1;
  double hi_quantile = 0.9;
};

/// Fitted APP-VAE-style marshaller.
class AppVaeStrategy : public core::MarshalStrategy {
 public:
  /// Learns per-event renewal statistics (inter-arrival gaps measured end ->
  /// next start, and duration means) from the occurrences inside
  /// `train_range` of `video`'s timeline. `video` must outlive the strategy.
  AppVaeStrategy(const sim::SyntheticVideo* video, const data::Task* task,
                 int horizon, const sim::Interval& train_range,
                 AppVaeOptions options);

  std::string name() const override;
  core::MarshalDecision Decide(const data::Record& record) const override;

  const AppVaeOptions& options() const { return options_; }

  /// Conditional probability that event `k`'s next start falls within the
  /// next `horizon` frames, given `elapsed` frames since its last end
  /// (elapsed < 0 means "unknown, beyond the window").
  double ConditionalStartProbability(size_t k, int64_t elapsed) const;

 private:
  // Time from record.frame back to the end of the last occurrence of task
  // event k that *ended within the visible window*; -1 if none visible.
  int64_t ElapsedSinceLastEnd(size_t k, int64_t frame) const;

  // q-quantile of (gap - elapsed) over gaps > elapsed; -1 if no mass.
  double ConditionalQuantile(size_t k, int64_t elapsed, double q) const;

  const sim::SyntheticVideo* video_;
  const data::Task* task_;
  int horizon_;
  AppVaeOptions options_;
  std::vector<std::vector<double>> gaps_;  // Per task event, sorted.
  std::vector<double> duration_mean_;
  // Marginal fallback when no occurrence is visible in the window: the
  // unconditional probability of a start within the horizon from a random
  // point of the gap, and its mean residual arrival time.
  std::vector<double> marginal_probability_;
  std::vector<double> marginal_arrival_;
};

}  // namespace eventhit::baselines

#endif  // EVENTHIT_BASELINES_APP_VAE_H_
