// VQS baseline (§VI.B item 8): a BlazeIt-style video query system adapted
// to the marshalling problem.
//
// VQS cannot predict ahead: it runs a specialised lightweight object model
// on *every* frame of the horizon as the frames arrive and relays the whole
// horizon to the CI when the number of frames containing the target object
// types exceeds tau_vqs. Sweeping tau_vqs traces its REC-SPL curve; the
// per-frame model invocations dominate its FPS in Fig. 9.
#ifndef EVENTHIT_BASELINES_VQS_FILTER_H_
#define EVENTHIT_BASELINES_VQS_FILTER_H_

#include <string>
#include <vector>

#include "core/prediction.h"
#include "data/tasks.h"
#include "sim/synthetic_video.h"

namespace eventhit::baselines {

/// VQS marshaller bound to the stream it filters.
class VqsStrategy : public core::MarshalStrategy {
 public:
  /// `video` must outlive the strategy. `tau_vqs` is the frame-count
  /// threshold; `min_count` is how many detected objects make a frame count
  /// as "containing the target object types" (>= 1 by default).
  VqsStrategy(const sim::SyntheticVideo* video, const data::Task* task,
              int horizon, double tau_vqs, double min_count = 1.0);

  std::string name() const override { return "VQS"; }
  core::MarshalDecision Decide(const data::Record& record) const override;

  void set_threshold(double tau_vqs) { tau_vqs_ = tau_vqs; }
  double threshold() const { return tau_vqs_; }

  /// Number of frames in the horizon from `frame` whose detector output
  /// contains event `k`'s target objects.
  int CountObjectFrames(size_t k, int64_t frame) const;

 private:
  const sim::SyntheticVideo* video_;
  const data::Task* task_;
  int horizon_;
  double tau_vqs_;
  double min_count_;
};

}  // namespace eventhit::baselines

#endif  // EVENTHIT_BASELINES_VQS_FILTER_H_
