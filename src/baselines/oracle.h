// The two anchor strategies of §VI.B: OPT (full knowledge of the true
// occurrence intervals; relays exactly the event frames) and BF (brute
// force; relays every frame of every horizon).
#ifndef EVENTHIT_BASELINES_ORACLE_H_
#define EVENTHIT_BASELINES_ORACLE_H_

#include <string>

#include "core/prediction.h"

namespace eventhit::baselines {

/// Theoretical optimum: relays precisely the frames of true occurrences.
/// REC = 1, SPL = 0 by construction.
class OptStrategy : public core::MarshalStrategy {
 public:
  std::string name() const override { return "OPT"; }
  core::MarshalDecision Decide(const data::Record& record) const override;
};

/// Brute force: relays the whole horizon for every event, always.
/// REC = 1, SPL = 1 by construction.
class BfStrategy : public core::MarshalStrategy {
 public:
  explicit BfStrategy(int horizon) : horizon_(horizon) {}
  std::string name() const override { return "BF"; }
  core::MarshalDecision Decide(const data::Record& record) const override;

 private:
  int horizon_;
};

}  // namespace eventhit::baselines

#endif  // EVENTHIT_BASELINES_ORACLE_H_
