// Latency and monetary cost model of the end-to-end pipeline, reproducing
// the accounting behind Fig. 8 (expense), Fig. 9 (REC vs FPS) and Fig. 10
// (per-stage time proportions).
//
// Rates are calibrated to the systems the paper names: YOLOv3-class feature
// extraction (~140 FPS), an I3D-class cloud model (~30 FPS), a BlazeIt
// specialised NN (~500 FPS per frame), an action-unit detector (~25 FPS,
// footnote 8) and a 0.1 s APP-VAE inference.
#ifndef EVENTHIT_CLOUD_COST_MODEL_H_
#define EVENTHIT_CLOUD_COST_MODEL_H_

#include <cstdint>

#include "obs/trace.h"

namespace eventhit::cloud {

/// Throughput of every pipeline stage (frames per second unless noted).
struct PipelineCostModel {
  double feature_extraction_fps = 140.0;  // YOLOv3-like detector.
  double eventhit_inference_seconds = 0.001;
  double cox_inference_seconds = 0.0005;
  double vqs_frame_fps = 500.0;           // BlazeIt specialised model.
  double appvae_inference_seconds = 0.1;  // Footnote 8.
  double action_detection_fps = 25.0;     // Footnote 8.
  double ci_fps = 30.0;                   // I3D-class cloud model.
  double price_per_frame_usd = 0.001;     // Amazon Rekognition.
};

/// Which predictor front-end a pipeline uses (drives which local stages
/// run and at what rates).
enum class PredictorKind {
  kEventHit,  // Feature extraction on the window + one model inference.
  kCox,       // Feature extraction on the window + Cox evaluation.
  kVqs,       // Specialised model on every horizon frame; no prediction.
  kAppVae,    // Action detection over its window + generative inference.
  kOracle,    // OPT/BF: no local stage at all.
};

/// Simulated wall-clock spent in each stage while processing one horizon.
struct StageBreakdown {
  double feature_extraction_seconds = 0.0;
  double predictor_seconds = 0.0;
  double ci_seconds = 0.0;

  double TotalSeconds() const {
    return feature_extraction_seconds + predictor_seconds + ci_seconds;
  }
};

/// Timing of one horizon: the predictor consumes `window_frames` of local
/// context (M for EventHit/COX, the action window for APP-VAE, the horizon
/// itself for VQS — pass `horizon` there), then `relayed_frames` frames go
/// to the CI.
StageBreakdown HorizonTiming(const PipelineCostModel& model,
                             PredictorKind kind, int64_t window_frames,
                             int64_t horizon, int64_t relayed_frames);

/// Effective end-to-end throughput: horizon frames covered per second of
/// pipeline time.
double EffectiveFps(const StageBreakdown& breakdown, int64_t horizon);

/// Emits the three stages of `breakdown` as back-to-back spans on the
/// simulated timeline (obs::kSimulatedPid) starting at `start_us`:
/// stage.feature_extraction, stage.predictor, stage.ci (category
/// "simulated"; zero-duration stages are skipped). Returns the end
/// timestamp, i.e. the start for the next horizon's spans. Aggregating
/// these spans (TraceBuffer::AggregateByName("simulated")) reproduces the
/// Fig. 10 per-stage time shares from the trace itself.
int64_t EmitHorizonSpans(obs::TraceBuffer* trace,
                         const StageBreakdown& breakdown, int64_t start_us);

}  // namespace eventhit::cloud

#endif  // EVENTHIT_CLOUD_COST_MODEL_H_
