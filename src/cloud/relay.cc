#include "cloud/relay.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "common/check.h"
#include "obs/schema.h"

namespace eventhit::cloud {

namespace {

int64_t Micros(double seconds) {
  return static_cast<int64_t>(std::llround(seconds * 1e6));
}

}  // namespace

CloudRelay::CloudRelay(CloudService* service, const RelayConfig& config,
                       uint64_t seed, const sim::FaultInjector* faults,
                       obs::MetricsRegistry* metrics,
                       obs::TraceBuffer* trace, obs::Logger* log)
    : service_(service),
      config_(config),
      retry_(config.retry, seed),
      breaker_(config.breaker),
      faults_(faults),
      pass_through_(faults == nullptr || !faults->profile().active()),
      trace_(trace),
      log_(log != nullptr ? log : &obs::Logger::Global()) {
  EVENTHIT_CHECK(service_ != nullptr);
  EVENTHIT_CHECK_GT(config_.request_deadline_seconds, 0.0);
  EVENTHIT_CHECK_GE(config_.attempt_timeout_seconds, 0.0);
  EVENTHIT_CHECK_GT(config_.stream_fps, 0.0);
  EVENTHIT_CHECK_GE(config_.replay_horizon_frames, 0);
  if (config_.degraded_mode == DegradedMode::kBufferAndReplay) {
    EVENTHIT_CHECK_GT(config_.replay_horizon_frames, 0);
    EVENTHIT_CHECK_GT(config_.max_queue_depth, 0u);
  }
  obs::MetricsRegistry& registry =
      metrics != nullptr ? *metrics : obs::MetricsRegistry::Global();
  orders_submitted_metric_ =
      registry.GetCounter(obs::names::kRelayOrdersSubmitted);
  orders_delivered_metric_ =
      registry.GetCounter(obs::names::kRelayOrdersDelivered);
  orders_dropped_metric_ =
      registry.GetCounter(obs::names::kRelayOrdersDropped);
  orders_replayed_metric_ =
      registry.GetCounter(obs::names::kRelayOrdersReplayed);
  frames_submitted_metric_ =
      registry.GetCounter(obs::names::kRelayFramesSubmitted);
  frames_delivered_metric_ =
      registry.GetCounter(obs::names::kRelayFramesDelivered);
  frames_dropped_metric_ =
      registry.GetCounter(obs::names::kRelayFramesDropped);
  frames_buffered_metric_ =
      registry.GetCounter(obs::names::kRelayFramesBuffered);
  attempts_metric_ = registry.GetCounter(obs::names::kRelayAttemptsTotal);
  retries_metric_ = registry.GetCounter(obs::names::kRelayAttemptsRetries);
  fault_errors_metric_ = registry.GetCounter(obs::names::kRelayFaultErrors);
  fault_spikes_metric_ =
      registry.GetCounter(obs::names::kRelayFaultLatencySpikes);
  breaker_transitions_metric_ =
      registry.GetCounter(obs::names::kBreakerTransitions);
  breaker_opens_metric_ = registry.GetCounter(obs::names::kBreakerOpens);
  breaker_state_metric_ = registry.GetGauge(obs::names::kBreakerState);
  queue_depth_metric_ = registry.GetGauge(obs::names::kRelayQueueDepth);
  request_attempts_metric_ = registry.GetHistogram(
      obs::names::kRelayRequestAttempts, obs::AttemptCountBounds());
  backoff_seconds_metric_ = registry.GetHistogram(
      obs::names::kRelayBackoffSeconds, obs::LatencySecondsBounds());
}

void CloudRelay::set_delivery_callback(DeliveryCallback callback) {
  delivery_callback_ = std::move(callback);
}

void CloudRelay::set_breaker_transition_callback(
    BreakerTransitionCallback callback) {
  transition_callback_ = std::move(callback);
}

double CloudRelay::FrameSeconds(int64_t frame) const {
  return static_cast<double>(frame) / config_.stream_fps;
}

void CloudRelay::SyncBreaker(double now_seconds) {
  const BreakerState state = breaker_.state();
  if (state == observed_state_) return;
  const BreakerState from = observed_state_;
  observed_state_ = state;
  breaker_transitions_metric_->Add(1);
  breaker_state_metric_->Set(static_cast<double>(static_cast<int>(state)));
  if (state == BreakerState::kOpen) {
    breaker_opens_metric_->Add(1);
    if (!outage_open_) {
      outage_open_ = true;
      outage_start_seconds_ = now_seconds;
    }
  } else if (state == BreakerState::kClosed && outage_open_) {
    // The outage spans from the first trip to the close that ends it
    // (half-open probe windows inside count as outage time).
    outage_open_ = false;
    if (trace_ != nullptr) {
      obs::RecordSimulatedSpan(
          trace_, obs::names::kSpanRelayOutage, "simulated",
          Micros(outage_start_seconds_),
          std::max<int64_t>(1, Micros(now_seconds - outage_start_seconds_)));
    }
  }
  log_->Log(state == BreakerState::kOpen ? obs::LogLevel::kWarn
                                         : obs::LogLevel::kInfo,
            "relay", "breaker_transition",
            static_cast<int64_t>(std::llround(now_seconds * config_.stream_fps)),
            {obs::LogStr("from", BreakerStateName(from)),
             obs::LogStr("to", BreakerStateName(state))});
  if (transition_callback_) transition_callback_(from, state, now_seconds);
}

void CloudRelay::Deliver(const PendingOrder& order, bool replay,
                         std::vector<bool> detections, RelayResult* result) {
  ++stats_.orders_delivered;
  stats_.frames_delivered += order.frames.length();
  orders_delivered_metric_->Add(1);
  frames_delivered_metric_->Add(order.frames.length());
  if (replay) {
    ++stats_.orders_replayed;
    orders_replayed_metric_->Add(1);
  }
  if (delivery_callback_) {
    RelayDelivery delivery;
    delivery.request_id = order.request_id;
    delivery.event = order.event;
    delivery.frames = order.frames;
    delivery.replayed = replay;
    delivery.detections = detections;
    delivery_callback_(delivery);
  }
  if (result != nullptr) {
    result->outcome = RelayOutcome::kDelivered;
    result->detections = std::move(detections);
  }
}

void CloudRelay::DropFrames(const PendingOrder& order) {
  ++stats_.orders_dropped;
  stats_.frames_dropped += order.frames.length();
  orders_dropped_metric_->Add(1);
  frames_dropped_metric_->Add(order.frames.length());
  log_->Log(obs::LogLevel::kWarn, "relay", "order_dropped",
            order.submit_frame,
            {obs::LogInt("request_id", order.request_id),
             obs::LogInt("event_index", static_cast<int64_t>(order.event)),
             obs::LogInt("frames", order.frames.length())});
}

RelayOutcome CloudRelay::Degrade(const PendingOrder& order,
                                 RelayOutcome failure) {
  if (config_.degraded_mode == DegradedMode::kBufferAndReplay) {
    if (queue_.size() < config_.max_queue_depth) {
      queue_.push_back(order);
      stats_.frames_pending += order.frames.length();
      frames_buffered_metric_->Add(order.frames.length());
      queue_depth_metric_->Set(static_cast<double>(queue_.size()));
      return RelayOutcome::kBuffered;
    }
    DropFrames(order);
    return RelayOutcome::kDroppedQueueFull;
  }
  DropFrames(order);
  return failure;
}

bool CloudRelay::ProcessOrder(const PendingOrder& order, int64_t now_frame,
                              bool replay, RelayResult* result) {
  const double now_s = FrameSeconds(now_frame);
  const double base_latency = static_cast<double>(order.frames.length()) /
                              service_->config().frames_per_second;
  // The order is in flight for the duration of the retry loop, so the
  // frame-accounting identity (relay.h) balances exactly at any breaker
  // transition that fires mid-request.
  stats_.frames_in_flight += order.frames.length();
  double elapsed = 0.0;
  int attempts_here = 0;
  RelayOutcome failure = RelayOutcome::kDroppedBreakerOpen;
  for (int attempt = 0; attempt < retry_.max_attempts(); ++attempt) {
    if (!breaker_.AllowRequest(now_s + elapsed)) {
      SyncBreaker(now_s + elapsed);
      failure = RelayOutcome::kDroppedBreakerOpen;
      break;
    }
    SyncBreaker(now_s + elapsed);  // AllowRequest may have half-opened.
    ++attempts_here;
    ++stats_.attempts;
    attempts_metric_->Add(1);
    if (attempt > 0) {
      ++stats_.retries;
      retries_metric_->Add(1);
    }
    sim::FaultDecision fault;
    if (faults_ != nullptr) {
      fault = faults_->Evaluate(attempt_counter_++, now_frame);
    }
    if (fault.fail && !fault.blackout) {
      ++stats_.injected_errors;
      fault_errors_metric_->Add(1);
    }
    if (fault.extra_latency_seconds > 0.0) {
      ++stats_.injected_latency_spikes;
      fault_spikes_metric_->Add(1);
    }
    const double latency = base_latency + fault.extra_latency_seconds;
    // Per-attempt budget: the cancellation timeout (if configured) and
    // whatever is left of the request deadline.
    double budget = config_.request_deadline_seconds - elapsed;
    if (config_.attempt_timeout_seconds > 0.0) {
      budget = std::min(budget, config_.attempt_timeout_seconds);
    }
    bool ok = !fault.fail;
    double attempt_cost = latency;
    if (ok && latency > budget) {
      ok = false;  // Cancelled at the timeout; the response never lands.
      attempt_cost = budget;
    } else if (!ok) {
      attempt_cost = std::min(latency, budget);
    }
    if (ok) {
      breaker_.RecordSuccess(now_s + elapsed + attempt_cost);
      SyncBreaker(now_s + elapsed + attempt_cost);
      stats_.frames_in_flight -= order.frames.length();
      request_attempts_metric_->Observe(static_cast<double>(attempts_here));
      if (result != nullptr) result->attempts = attempts_here;
      // Only a delivered request touches the service — failed attempts
      // are dropped RPCs, so they are never invoiced (cost_model_test
      // pins the at-most-once billing contract).
      Deliver(order, replay, service_->Detect(order.event, order.frames),
              result);
      return true;
    }
    ++stats_.failed_attempts;
    breaker_.RecordFailure(now_s + elapsed + attempt_cost);
    SyncBreaker(now_s + elapsed + attempt_cost);
    elapsed += attempt_cost;
    failure = RelayOutcome::kDroppedDeadline;
    if (attempt + 1 >= retry_.max_attempts()) break;
    const double backoff = retry_.BackoffSeconds(order.request_id,
                                                 attempt + 1);
    backoff_seconds_metric_->Observe(backoff);
    if (elapsed + backoff + base_latency > config_.request_deadline_seconds) {
      break;  // No budget left for another full attempt.
    }
    elapsed += backoff;
  }
  stats_.frames_in_flight -= order.frames.length();
  request_attempts_metric_->Observe(static_cast<double>(attempts_here));
  if (result != nullptr) {
    result->attempts = attempts_here;
    result->outcome = failure;
  }
  return false;
}

RelayResult CloudRelay::Submit(size_t event_index,
                               const sim::Interval& frames,
                               int64_t now_frame) {
  EVENTHIT_CHECK(!frames.empty());
  PendingOrder order;
  order.request_id = next_request_id_++;
  order.event = event_index;
  order.frames = frames;
  order.submit_frame = now_frame;
  order.expiry_frame = now_frame + config_.replay_horizon_frames;
  ++stats_.orders_submitted;
  stats_.frames_submitted += frames.length();
  orders_submitted_metric_->Add(1);
  frames_submitted_metric_->Add(frames.length());

  RelayResult result;
  if (pass_through_) {
    // Zero-overhead pass-through: the exact Detect call sequence of the
    // pre-relay pipeline, no breaker, no retry bookkeeping beyond stats.
    ++stats_.attempts;
    attempts_metric_->Add(1);
    request_attempts_metric_->Observe(1.0);
    result.attempts = 1;
    Deliver(order, /*replay=*/false,
            service_->Detect(order.event, order.frames), &result);
    return result;
  }

  if (ProcessOrder(order, now_frame, /*replay=*/false, &result)) {
    return result;
  }
  result.outcome = Degrade(order, result.outcome);
  return result;
}

void CloudRelay::AdvanceTo(int64_t now_frame) {
  if (queue_.empty()) return;
  std::deque<PendingOrder> keep;
  while (!queue_.empty()) {
    PendingOrder order = queue_.front();
    queue_.pop_front();
    if (now_frame >= order.expiry_frame) {
      // Stale: detections past the horizon are useless.
      stats_.frames_pending -= order.frames.length();
      DropFrames(order);
      continue;
    }
    // The order stays accounted as pending through the breaker probe —
    // AllowRequest can transition (open -> half-open) and fire the
    // transition callback, which asserts the accounting identity.
    if (!breaker_.AllowRequest(FrameSeconds(now_frame))) {
      SyncBreaker(FrameSeconds(now_frame));
      keep.push_back(order);
      continue;
    }
    SyncBreaker(FrameSeconds(now_frame));
    stats_.frames_pending -= order.frames.length();
    if (!ProcessOrder(order, now_frame, /*replay=*/true, nullptr)) {
      // Still failing; stays buffered until delivery or expiry.
      stats_.frames_pending += order.frames.length();
      keep.push_back(order);
    }
  }
  queue_ = std::move(keep);
  queue_depth_metric_->Set(static_cast<double>(queue_.size()));
}

void CloudRelay::Flush(int64_t final_frame) {
  AdvanceTo(final_frame);
  while (!queue_.empty()) {
    PendingOrder order = queue_.front();
    queue_.pop_front();
    stats_.frames_pending -= order.frames.length();
    DropFrames(order);
  }
  queue_depth_metric_->Set(0.0);
  EVENTHIT_CHECK_EQ(stats_.frames_in_flight, 0);
  EVENTHIT_CHECK_EQ(stats_.frames_delivered + stats_.frames_dropped,
                    stats_.frames_submitted);
}

}  // namespace eventhit::cloud
