// Resilient cloud relay: wraps CloudService behind a bounded submission
// queue with per-request deadlines, capped exponential backoff with seeded
// jitter, and a circuit breaker that trips on consecutive failures and
// half-opens on a probe schedule. On sustained outage the relay degrades
// to a configurable policy — buffer-and-replay within the horizon, or
// drop-with-accounting — so the marshaller's spillage/recall bookkeeping
// stays exact under failure.
//
// Everything runs on the simulated stream clock (frame index / stream
// FPS): no wall time, no hidden state. Fault draws, jitter and breaker
// timing are pure functions of the seeds, so a chaos replay with the same
// seed is byte-identical (DESIGN.md §5f). With no active fault injector
// the relay is a zero-overhead pass-through: Submit issues exactly the
// CloudService::Detect call sequence the pre-relay pipeline issued.
#ifndef EVENTHIT_CLOUD_RELAY_H_
#define EVENTHIT_CLOUD_RELAY_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <vector>

#include "cloud/circuit_breaker.h"
#include "cloud/cloud_service.h"
#include "cloud/retry_policy.h"
#include "obs/log.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "sim/fault_injector.h"
#include "sim/interval.h"

namespace eventhit::cloud {

/// What the relay does with a request that exhausted its retry budget (or
/// met an open breaker).
enum class DegradedMode {
  /// Count the frames as dropped; recall bookkeeping charges the loss.
  kDropWithAccounting,
  /// Park the order in the bounded queue and replay it when the breaker
  /// re-closes, as long as the order is still within `replay_horizon_
  /// frames` of its submission (stale detections are useless past the
  /// horizon). Queue overflow and expiry fall back to dropping.
  kBufferAndReplay,
};

struct RelayConfig {
  RetryPolicyConfig retry;
  CircuitBreakerConfig breaker;
  DegradedMode degraded_mode = DegradedMode::kDropWithAccounting;
  /// Bounded submission queue (buffer-and-replay only).
  size_t max_queue_depth = 64;
  /// Total simulated budget per request: attempt latencies + backoffs.
  double request_deadline_seconds = 30.0;
  /// Per-attempt cancellation timeout; an attempt whose (possibly spiked)
  /// latency exceeds it is cancelled and retried. 0 = bounded only by the
  /// request deadline.
  double attempt_timeout_seconds = 0.0;
  /// Buffered orders expire this many frames after submission (H).
  int64_t replay_horizon_frames = 0;
  /// Stream rate converting frame indices to simulated seconds.
  double stream_fps = 30.0;
};

/// How one submission ended (buffered orders may still be delivered or
/// dropped later, from AdvanceTo/Flush).
enum class RelayOutcome {
  kDelivered,
  kBuffered,
  kDroppedQueueFull,
  kDroppedDeadline,
  kDroppedBreakerOpen,
};

struct RelayResult {
  RelayOutcome outcome = RelayOutcome::kDelivered;
  /// Per-frame detections when delivered (empty otherwise).
  std::vector<bool> detections;
  /// Attempts consumed by this submission (0 when the breaker rejected
  /// the request outright).
  int attempts = 0;
};

/// One delivery, synchronous or replayed, for the delivery callback.
struct RelayDelivery {
  int64_t request_id = 0;
  size_t event = 0;
  sim::Interval frames;
  bool replayed = false;
  std::vector<bool> detections;
};

/// Aggregate accounting. Invariant (checked by relay_chaos_test at every
/// breaker transition):
///   frames_delivered + frames_dropped + frames_pending + frames_in_flight
///     == frames_submitted
/// Between top-level calls (and after Flush) frames_in_flight is 0, so the
/// settled identity is delivered + dropped + pending == submitted.
struct RelayStats {
  int64_t orders_submitted = 0;
  int64_t orders_delivered = 0;  // Includes replayed deliveries.
  int64_t orders_replayed = 0;
  int64_t orders_dropped = 0;
  int64_t frames_submitted = 0;
  int64_t frames_delivered = 0;
  int64_t frames_dropped = 0;
  int64_t frames_pending = 0;    // Sitting in the replay queue.
  int64_t frames_in_flight = 0;  // Mid-retry-loop inside Submit/AdvanceTo.
  int64_t attempts = 0;
  int64_t retries = 0;
  int64_t failed_attempts = 0;
  int64_t injected_errors = 0;
  int64_t injected_latency_spikes = 0;
};

/// The relay. Not thread-safe: like the Marshaller it lives on the single
/// streaming thread; determinism comes from seed-split draws, not locks.
class CloudRelay {
 public:
  using DeliveryCallback = std::function<void(const RelayDelivery&)>;
  using BreakerTransitionCallback =
      std::function<void(BreakerState from, BreakerState to,
                         double now_seconds)>;

  /// `service` must outlive the relay; `faults` may be nullptr (or an
  /// inactive profile) for pass-through. Telemetry goes to `metrics`
  /// (docs/TELEMETRY.md, relay.* / breaker.* names; nullptr selects the
  /// global registry) and outage spans to `trace` (nullptr disables
  /// them). Breaker transitions and drops also emit structured-log
  /// records to `log` (nullptr selects obs::Logger::Global()).
  CloudRelay(CloudService* service, const RelayConfig& config, uint64_t seed,
             const sim::FaultInjector* faults = nullptr,
             obs::MetricsRegistry* metrics = nullptr,
             obs::TraceBuffer* trace = nullptr, obs::Logger* log = nullptr);

  /// Sink for deliveries (required to observe replayed detections; the
  /// synchronous result also comes back from Submit).
  void set_delivery_callback(DeliveryCallback callback);

  /// Observer of breaker state changes (chaos tests assert the frame
  /// accounting identity here).
  void set_breaker_transition_callback(BreakerTransitionCallback callback);

  /// Relays `frames` (absolute, non-empty) of `event_index` at stream
  /// frame `now_frame`. `now_frame` must be non-decreasing across calls.
  RelayResult Submit(size_t event_index, const sim::Interval& frames,
                     int64_t now_frame);

  /// Advances the simulated clock: expires stale buffered orders and
  /// replays the rest when the breaker allows.
  void AdvanceTo(int64_t now_frame);

  /// End of stream: one last replay pass at `final_frame`, then drops
  /// whatever is still pending so delivered + dropped == submitted.
  void Flush(int64_t final_frame);

  const RelayStats& stats() const { return stats_; }
  BreakerState breaker_state() const { return breaker_.state(); }
  const CircuitBreaker& breaker() const { return breaker_; }
  size_t queue_depth() const { return queue_.size(); }
  const RelayConfig& config() const { return config_; }

 private:
  struct PendingOrder {
    int64_t request_id = 0;
    size_t event = 0;
    sim::Interval frames;
    int64_t submit_frame = 0;
    int64_t expiry_frame = 0;
  };

  double FrameSeconds(int64_t frame) const;
  /// Runs the retry loop for `order` at `now_frame`. Returns true when
  /// delivered (detections in `*result` when non-null).
  bool ProcessOrder(const PendingOrder& order, int64_t now_frame,
                    bool replay, RelayResult* result);
  void Deliver(const PendingOrder& order, bool replay,
               std::vector<bool> detections, RelayResult* result);
  void DropFrames(const PendingOrder& order);
  RelayOutcome Degrade(const PendingOrder& order, RelayOutcome failure);
  /// Mirrors breaker state into metrics / outage spans / the transition
  /// callback; call after every breaker interaction.
  void SyncBreaker(double now_seconds);

  CloudService* service_;
  RelayConfig config_;
  RetryPolicy retry_;
  CircuitBreaker breaker_;
  const sim::FaultInjector* faults_;
  bool pass_through_;
  obs::TraceBuffer* trace_;
  obs::Logger* log_;

  DeliveryCallback delivery_callback_;
  BreakerTransitionCallback transition_callback_;

  std::deque<PendingOrder> queue_;
  RelayStats stats_;
  int64_t next_request_id_ = 0;
  int64_t attempt_counter_ = 0;  // Global fault-draw index.
  BreakerState observed_state_ = BreakerState::kClosed;
  double outage_start_seconds_ = 0.0;
  bool outage_open_ = false;

  // Cached telemetry handles (valid for the registry's lifetime).
  obs::Counter* orders_submitted_metric_;
  obs::Counter* orders_delivered_metric_;
  obs::Counter* orders_dropped_metric_;
  obs::Counter* orders_replayed_metric_;
  obs::Counter* frames_submitted_metric_;
  obs::Counter* frames_delivered_metric_;
  obs::Counter* frames_dropped_metric_;
  obs::Counter* frames_buffered_metric_;
  obs::Counter* attempts_metric_;
  obs::Counter* retries_metric_;
  obs::Counter* fault_errors_metric_;
  obs::Counter* fault_spikes_metric_;
  obs::Counter* breaker_transitions_metric_;
  obs::Counter* breaker_opens_metric_;
  obs::Gauge* breaker_state_metric_;
  obs::Gauge* queue_depth_metric_;
  obs::Histogram* request_attempts_metric_;
  obs::Histogram* backoff_seconds_metric_;
};

}  // namespace eventhit::cloud

#endif  // EVENTHIT_CLOUD_RELAY_H_
