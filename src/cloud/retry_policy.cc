#include "cloud/retry_policy.h"

#include <algorithm>

#include "common/check.h"
#include "common/rng.h"

namespace eventhit::cloud {

namespace {

// Domain separation from other SplitSeed consumers of the relay seed.
constexpr uint64_t kBackoffStream = 0xBAC0'FF5E'ED11'7E12ull;

}  // namespace

RetryPolicy::RetryPolicy(const RetryPolicyConfig& config, uint64_t seed)
    : config_(config), seed_(seed) {
  EVENTHIT_CHECK_GE(config_.max_attempts, 1);
  EVENTHIT_CHECK_GE(config_.initial_backoff_seconds, 0.0);
  EVENTHIT_CHECK_GE(config_.backoff_multiplier, 1.0);
  EVENTHIT_CHECK_GE(config_.max_backoff_seconds,
                    config_.initial_backoff_seconds);
  EVENTHIT_CHECK_GE(config_.jitter_fraction, 0.0);
  EVENTHIT_CHECK_LE(config_.jitter_fraction, 1.0);
}

double RetryPolicy::BackoffSeconds(int64_t request_id, int attempt) const {
  EVENTHIT_CHECK_GE(attempt, 1);
  double base = config_.initial_backoff_seconds;
  for (int i = 1; i < attempt; ++i) {
    base *= config_.backoff_multiplier;
    if (base >= config_.max_backoff_seconds) break;
  }
  base = std::min(base, config_.max_backoff_seconds);
  if (config_.jitter_fraction <= 0.0 || base <= 0.0) return base;
  // One draw per (request, attempt): decorrelated across both axes and
  // independent of how many other requests retried before this one.
  Rng rng(SplitSeed(seed_ ^ kBackoffStream,
                    static_cast<uint64_t>(request_id) * 64u +
                        static_cast<uint64_t>(attempt)));
  return base * rng.Uniform(1.0 - config_.jitter_fraction,
                            1.0 + config_.jitter_fraction);
}

}  // namespace eventhit::cloud
