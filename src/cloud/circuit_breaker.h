// Three-state circuit breaker for the resilient cloud relay: trips open
// after a run of consecutive failures, cools down on the simulated clock,
// half-opens to probe the service, and closes again after enough probe
// successes. Pure state machine over an explicit `now_seconds` — no wall
// clock, so chaos replays are deterministic.
#ifndef EVENTHIT_CLOUD_CIRCUIT_BREAKER_H_
#define EVENTHIT_CLOUD_CIRCUIT_BREAKER_H_

#include <cstdint>
#include <string>

namespace eventhit::cloud {

enum class BreakerState { kClosed, kOpen, kHalfOpen };

/// Human-readable state name ("closed" / "open" / "half_open").
const char* BreakerStateName(BreakerState state);

struct CircuitBreakerConfig {
  /// Consecutive failures (while closed) that trip the breaker.
  int failure_threshold = 5;
  /// Cool-down on the simulated clock before half-opening.
  double open_seconds = 5.0;
  /// Probe successes (while half-open) required to close again.
  int half_open_successes = 2;
};

/// The breaker. Callers ask AllowRequest(now) before each attempt and
/// report the outcome via RecordSuccess/RecordFailure(now); `now` must be
/// monotonically non-decreasing across calls.
class CircuitBreaker {
 public:
  explicit CircuitBreaker(const CircuitBreakerConfig& config);

  /// True when an attempt may be issued at `now_seconds`. An open breaker
  /// whose cool-down has elapsed transitions to half-open (and allows the
  /// probe) inside this call.
  bool AllowRequest(double now_seconds);

  void RecordSuccess(double now_seconds);
  void RecordFailure(double now_seconds);

  BreakerState state() const { return state_; }
  /// Total state transitions since construction.
  int64_t transitions() const { return transitions_; }
  /// Times the breaker tripped (entered kOpen).
  int64_t opens() const { return opens_; }
  /// Simulated time of the last transition into kOpen.
  double last_open_seconds() const { return last_open_seconds_; }

 private:
  void Transition(BreakerState next, double now_seconds);

  CircuitBreakerConfig config_;
  BreakerState state_ = BreakerState::kClosed;
  int consecutive_failures_ = 0;
  int half_open_successes_ = 0;
  double last_open_seconds_ = 0.0;
  int64_t transitions_ = 0;
  int64_t opens_ = 0;
};

}  // namespace eventhit::cloud

#endif  // EVENTHIT_CLOUD_CIRCUIT_BREAKER_H_
