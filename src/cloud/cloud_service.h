// Simulated cloud inference service (the "CI" of the paper): an accurate,
// per-frame-priced event detector in the style of Amazon Rekognition.
//
// The service detects events against the ground-truth timeline with
// configurable per-frame accuracy, and keeps an invoice of frames
// processed, dollars accrued, and simulated compute time — the quantities
// behind Figures 8–10.
#ifndef EVENTHIT_CLOUD_CLOUD_SERVICE_H_
#define EVENTHIT_CLOUD_CLOUD_SERVICE_H_

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "obs/metrics.h"
#include "sim/interval.h"
#include "sim/synthetic_video.h"

namespace eventhit::cloud {

/// Pricing/throughput/accuracy of the cloud service.
struct CloudConfig {
  /// Amazon Rekognition image pricing used in §VI.G.
  double price_per_frame_usd = 0.001;
  /// Server-side model throughput (I3D-like, §VI.H).
  double frames_per_second = 30.0;
  /// Per-frame probability the (highly accurate) cloud model labels a frame
  /// correctly.
  double accuracy = 0.99;
};

/// Accrued usage since the last reset.
struct Invoice {
  int64_t frames_processed = 0;
  int64_t requests = 0;
  double total_cost_usd = 0.0;
  double compute_seconds = 0.0;
};

/// The service. Detection results come from the stream's ground truth,
/// perturbed by the configured accuracy — callers treat it as the paper
/// treats the CI: the most accurate detector available.
class CloudService {
 public:
  /// `video` must outlive the service. Telemetry goes to `metrics`
  /// (docs/TELEMETRY.md, cloud.* names); nullptr selects
  /// obs::MetricsRegistry::Global().
  CloudService(const sim::SyntheticVideo* video, const CloudConfig& config,
               uint64_t seed, obs::MetricsRegistry* metrics = nullptr);

  /// Analyses the frames of `interval` (absolute stream frames) for event
  /// `event_index`. Returns one flag per frame; accrues cost/time.
  std::vector<bool> Detect(size_t event_index, const sim::Interval& interval);

  /// Charges for `count` frames without materialising results (used by the
  /// accounting-only paths of the benches).
  void ChargeFrames(int64_t count);

  const Invoice& invoice() const { return invoice_; }

  /// Clears the invoice (the cloud.invoice.* gauges reset with it; the
  /// cloud.* counters are cumulative and unaffected).
  void ResetInvoice();

  const CloudConfig& config() const { return config_; }

 private:
  const sim::SyntheticVideo* video_;
  CloudConfig config_;
  Invoice invoice_;
  Rng rng_;

  // Cached telemetry handles (valid for the registry's lifetime).
  obs::Counter* requests_metric_;
  obs::Counter* frames_metric_;
  obs::Gauge* cost_metric_;
  obs::Gauge* compute_metric_;
  obs::Histogram* request_frames_metric_;
  obs::Histogram* request_latency_metric_;
};

}  // namespace eventhit::cloud

#endif  // EVENTHIT_CLOUD_CLOUD_SERVICE_H_
