// Capped exponential backoff with seeded jitter for the resilient cloud
// relay. Backoff durations are pure functions of (seed, request id,
// attempt), so retry timing — and therefore the whole chaos replay — is
// reproducible from the seed alone (DESIGN.md §5f determinism contract).
#ifndef EVENTHIT_CLOUD_RETRY_POLICY_H_
#define EVENTHIT_CLOUD_RETRY_POLICY_H_

#include <cstdint>

namespace eventhit::cloud {

/// Knobs of the exponential-backoff schedule.
struct RetryPolicyConfig {
  /// Total attempts per request, including the first (>= 1).
  int max_attempts = 4;
  /// Backoff before the first retry.
  double initial_backoff_seconds = 0.1;
  /// Growth factor per additional retry (>= 1).
  double backoff_multiplier = 2.0;
  /// Upper clamp applied before jitter.
  double max_backoff_seconds = 5.0;
  /// Uniform jitter half-width as a fraction of the capped base: the
  /// backoff is drawn from base * [1 - f, 1 + f). 0 disables jitter.
  double jitter_fraction = 0.2;
};

/// Stateless backoff calculator; thread-safe by construction.
class RetryPolicy {
 public:
  RetryPolicy(const RetryPolicyConfig& config, uint64_t seed);

  /// Simulated seconds to wait before retry number `attempt` (1-based: 1
  /// precedes the second attempt) of request `request_id`. Pure function
  /// of (seed, request_id, attempt).
  double BackoffSeconds(int64_t request_id, int attempt) const;

  int max_attempts() const { return config_.max_attempts; }
  const RetryPolicyConfig& config() const { return config_; }

 private:
  RetryPolicyConfig config_;
  uint64_t seed_;
};

}  // namespace eventhit::cloud

#endif  // EVENTHIT_CLOUD_RETRY_POLICY_H_
