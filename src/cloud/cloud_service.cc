#include "cloud/cloud_service.h"

#include "common/check.h"
#include "obs/schema.h"

namespace eventhit::cloud {

CloudService::CloudService(const sim::SyntheticVideo* video,
                           const CloudConfig& config, uint64_t seed,
                           obs::MetricsRegistry* metrics)
    : video_(video), config_(config), rng_(seed) {
  EVENTHIT_CHECK(video_ != nullptr);
  EVENTHIT_CHECK_GT(config_.frames_per_second, 0.0);
  EVENTHIT_CHECK_GE(config_.accuracy, 0.0);
  EVENTHIT_CHECK_LE(config_.accuracy, 1.0);
  obs::MetricsRegistry& registry =
      metrics != nullptr ? *metrics : obs::MetricsRegistry::Global();
  requests_metric_ = registry.GetCounter(obs::names::kCloudRequests);
  frames_metric_ = registry.GetCounter(obs::names::kCloudFramesProcessed);
  cost_metric_ = registry.GetGauge(obs::names::kCloudInvoiceCostUsd);
  compute_metric_ =
      registry.GetGauge(obs::names::kCloudInvoiceComputeSeconds);
  request_frames_metric_ = registry.GetHistogram(
      obs::names::kCloudRequestFrames, obs::FrameCountBounds());
  request_latency_metric_ = registry.GetHistogram(
      obs::names::kCloudRequestLatencySeconds, obs::LatencySecondsBounds());
}

std::vector<bool> CloudService::Detect(size_t event_index,
                                       const sim::Interval& interval) {
  EVENTHIT_CHECK(!interval.empty());
  EVENTHIT_CHECK_GE(interval.start, 0);
  EVENTHIT_CHECK_LT(interval.end, video_->num_frames());
  std::vector<bool> detections;
  detections.reserve(static_cast<size_t>(interval.length()));
  for (int64_t t = interval.start; t <= interval.end; ++t) {
    const bool truth = video_->timeline().IsActive(event_index, t);
    const bool correct = rng_.Bernoulli(config_.accuracy);
    detections.push_back(correct ? truth : !truth);
  }
  ChargeFrames(interval.length());
  ++invoice_.requests;
  requests_metric_->Add(1);
  request_frames_metric_->Observe(static_cast<double>(interval.length()));
  request_latency_metric_->Observe(static_cast<double>(interval.length()) /
                                   config_.frames_per_second);
  return detections;
}

void CloudService::ChargeFrames(int64_t count) {
  EVENTHIT_CHECK_GE(count, 0);
  invoice_.frames_processed += count;
  invoice_.total_cost_usd +=
      static_cast<double>(count) * config_.price_per_frame_usd;
  invoice_.compute_seconds +=
      static_cast<double>(count) / config_.frames_per_second;
  frames_metric_->Add(count);
  cost_metric_->Set(invoice_.total_cost_usd);
  compute_metric_->Set(invoice_.compute_seconds);
}

void CloudService::ResetInvoice() {
  invoice_ = Invoice{};
  cost_metric_->Set(0.0);
  compute_metric_->Set(0.0);
}

}  // namespace eventhit::cloud
