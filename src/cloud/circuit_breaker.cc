#include "cloud/circuit_breaker.h"

#include "common/check.h"

namespace eventhit::cloud {

const char* BreakerStateName(BreakerState state) {
  switch (state) {
    case BreakerState::kClosed: return "closed";
    case BreakerState::kOpen: return "open";
    case BreakerState::kHalfOpen: return "half_open";
  }
  return "unknown";
}

CircuitBreaker::CircuitBreaker(const CircuitBreakerConfig& config)
    : config_(config) {
  EVENTHIT_CHECK_GE(config_.failure_threshold, 1);
  EVENTHIT_CHECK_GE(config_.open_seconds, 0.0);
  EVENTHIT_CHECK_GE(config_.half_open_successes, 1);
}

void CircuitBreaker::Transition(BreakerState next, double now_seconds) {
  if (next == state_) return;
  state_ = next;
  ++transitions_;
  if (next == BreakerState::kOpen) {
    ++opens_;
    last_open_seconds_ = now_seconds;
  }
  if (next == BreakerState::kHalfOpen) half_open_successes_ = 0;
  if (next == BreakerState::kClosed) consecutive_failures_ = 0;
}

bool CircuitBreaker::AllowRequest(double now_seconds) {
  if (state_ == BreakerState::kOpen &&
      now_seconds >= last_open_seconds_ + config_.open_seconds) {
    Transition(BreakerState::kHalfOpen, now_seconds);
  }
  return state_ != BreakerState::kOpen;
}

void CircuitBreaker::RecordSuccess(double now_seconds) {
  switch (state_) {
    case BreakerState::kClosed:
      consecutive_failures_ = 0;
      break;
    case BreakerState::kHalfOpen:
      if (++half_open_successes_ >= config_.half_open_successes) {
        Transition(BreakerState::kClosed, now_seconds);
      }
      break;
    case BreakerState::kOpen:
      // Success cannot be reported while open (no attempts are allowed);
      // tolerate it as a no-op for robustness.
      break;
  }
}

void CircuitBreaker::RecordFailure(double now_seconds) {
  switch (state_) {
    case BreakerState::kClosed:
      if (++consecutive_failures_ >= config_.failure_threshold) {
        Transition(BreakerState::kOpen, now_seconds);
      }
      break;
    case BreakerState::kHalfOpen:
      // A failed probe re-opens immediately and restarts the cool-down.
      Transition(BreakerState::kOpen, now_seconds);
      break;
    case BreakerState::kOpen:
      break;
  }
}

}  // namespace eventhit::cloud
