#include "cloud/cost_model.h"

#include <cmath>

#include "common/check.h"
#include "obs/schema.h"

namespace eventhit::cloud {

StageBreakdown HorizonTiming(const PipelineCostModel& model,
                             PredictorKind kind, int64_t window_frames,
                             int64_t horizon, int64_t relayed_frames) {
  EVENTHIT_CHECK_GE(window_frames, 0);
  EVENTHIT_CHECK_GT(horizon, 0);
  EVENTHIT_CHECK_GE(relayed_frames, 0);
  StageBreakdown breakdown;
  switch (kind) {
    case PredictorKind::kEventHit:
      breakdown.feature_extraction_seconds =
          static_cast<double>(window_frames) / model.feature_extraction_fps;
      breakdown.predictor_seconds = model.eventhit_inference_seconds;
      break;
    case PredictorKind::kCox:
      breakdown.feature_extraction_seconds =
          static_cast<double>(window_frames) / model.feature_extraction_fps;
      breakdown.predictor_seconds = model.cox_inference_seconds;
      break;
    case PredictorKind::kVqs:
      // The specialised model runs on every frame of the horizon.
      breakdown.predictor_seconds =
          static_cast<double>(horizon) / model.vqs_frame_fps;
      break;
    case PredictorKind::kAppVae:
      breakdown.feature_extraction_seconds =
          static_cast<double>(window_frames) / model.action_detection_fps;
      breakdown.predictor_seconds = model.appvae_inference_seconds;
      break;
    case PredictorKind::kOracle:
      break;
  }
  breakdown.ci_seconds = static_cast<double>(relayed_frames) / model.ci_fps;
  return breakdown;
}

double EffectiveFps(const StageBreakdown& breakdown, int64_t horizon) {
  const double total = breakdown.TotalSeconds();
  if (total <= 0.0) return 0.0;
  return static_cast<double>(horizon) / total;
}

int64_t EmitHorizonSpans(obs::TraceBuffer* trace,
                         const StageBreakdown& breakdown, int64_t start_us) {
  const auto micros = [](double seconds) {
    return static_cast<int64_t>(std::llround(seconds * 1e6));
  };
  int64_t cursor = start_us;
  if (breakdown.feature_extraction_seconds > 0.0) {
    cursor = obs::RecordSimulatedSpan(
        trace, obs::names::kSpanStageFeatureExtraction, "simulated", cursor,
        micros(breakdown.feature_extraction_seconds));
  }
  if (breakdown.predictor_seconds > 0.0) {
    cursor = obs::RecordSimulatedSpan(trace, obs::names::kSpanStagePredictor,
                                      "simulated", cursor,
                                      micros(breakdown.predictor_seconds));
  }
  if (breakdown.ci_seconds > 0.0) {
    cursor = obs::RecordSimulatedSpan(trace, obs::names::kSpanStageCi,
                                      "simulated", cursor,
                                      micros(breakdown.ci_seconds));
  }
  return cursor;
}

}  // namespace eventhit::cloud
