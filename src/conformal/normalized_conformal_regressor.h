// Normalized (locally weighted) split conformal regression.
//
// Standard split conformal regression (split_conformal_regressor.h) widens
// every prediction by the same quantile q. When per-example difficulty
// varies — easy examples with tiny errors, hard ones with huge errors — a
// fixed width over-covers the easy and under-covers the hard. The
// normalized variant (Lei et al. 2018, §5.2) scales each calibration
// residual by a difficulty estimate sigma(x) > 0, takes the quantile of
// the *ratios* r_i / sigma_i, and emits the band
//     [mu(x) - q * sigma(x), mu(x) + q * sigma(x)].
// The marginal coverage guarantee is unchanged; band widths adapt.
#ifndef EVENTHIT_CONFORMAL_NORMALIZED_CONFORMAL_REGRESSOR_H_
#define EVENTHIT_CONFORMAL_NORMALIZED_CONFORMAL_REGRESSOR_H_

#include <cstddef>
#include <vector>

#include "conformal/split_conformal_regressor.h"

namespace eventhit::conformal {

/// Calibrated normalized conformal regressor for one response variable.
class NormalizedConformalRegressor {
 public:
  /// `abs_residuals[i]` and `difficulties[i]` belong to the same
  /// calibration example; difficulties must be positive. Empty calibration
  /// yields zero-width bands (as in the unnormalized variant).
  NormalizedConformalRegressor(std::vector<double> abs_residuals,
                               std::vector<double> difficulties);

  /// q_hat at coverage alpha: the ceil(alpha*(n+1))-th smallest residual/
  /// difficulty ratio (clamped to the sample; finite-sample-corrected as in
  /// SplitConformalRegressor).
  double Quantile(double alpha) const;

  /// [prediction - q*difficulty, prediction + q*difficulty].
  PredictionBand Band(double prediction, double difficulty,
                      double alpha) const;

  size_t calibration_size() const { return sorted_ratios_.size(); }

 private:
  std::vector<double> sorted_ratios_;  // Ascending.
};

}  // namespace eventhit::conformal

#endif  // EVENTHIT_CONFORMAL_NORMALIZED_CONFORMAL_REGRESSOR_H_
