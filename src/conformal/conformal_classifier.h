// Conformal prediction for binary classification (§IV.A of the paper).
//
// Given the non-conformity scores of the *positive-class* calibration
// examples, the p-value of a new example is the fraction of calibration
// scores at least as non-conforming as the new one. Predicting positive
// whenever p >= 1 - c guarantees (under exchangeability) that a true
// positive is missed with probability at most 1 - c, irrespective of the
// non-conformity measure (Theorem 4.1).
#ifndef EVENTHIT_CONFORMAL_CONFORMAL_CLASSIFIER_H_
#define EVENTHIT_CONFORMAL_CONFORMAL_CLASSIFIER_H_

#include <cstddef>
#include <vector>

namespace eventhit::conformal {

/// Calibrated conformal binary classifier over one event type.
class ConformalBinaryClassifier {
 public:
  /// `positive_scores`: non-conformity scores a_n of the calibration
  /// records whose true label is positive. The set may be empty, in which
  /// case every p-value is (0+1)/(0+1) = 1: with no calibration evidence
  /// nothing can be ruled out, so every example is predicted positive —
  /// the only decision that preserves the Theorem 4.1 guarantee.
  explicit ConformalBinaryClassifier(std::vector<double> positive_scores);

  /// Transductive p-value of a new example with non-conformity `score`:
  ///   (|{n : score <= a_n}| + 1) / (|calib positives| + 1),
  /// where the +1 counts the test example itself among the scores at least
  /// as non-conforming as it.
  double PValue(double score) const;

  /// Predicts positive iff PValue(score) >= 1 - confidence.
  bool PredictPositive(double score, double confidence) const;

  size_t calibration_size() const { return sorted_scores_.size(); }

 private:
  std::vector<double> sorted_scores_;  // Ascending.
};

}  // namespace eventhit::conformal

#endif  // EVENTHIT_CONFORMAL_CONFORMAL_CLASSIFIER_H_
