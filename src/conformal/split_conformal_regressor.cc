#include "conformal/split_conformal_regressor.h"

#include <algorithm>

#include "common/check.h"
#include "common/stats.h"

namespace eventhit::conformal {

SplitConformalRegressor::SplitConformalRegressor(
    std::vector<double> abs_residuals)
    : sorted_residuals_(std::move(abs_residuals)) {
  for (double r : sorted_residuals_) EVENTHIT_CHECK_GE(r, 0.0);
  std::sort(sorted_residuals_.begin(), sorted_residuals_.end());
}

double SplitConformalRegressor::Quantile(double alpha) const {
  EVENTHIT_CHECK_GE(alpha, 0.0);
  EVENTHIT_CHECK_LE(alpha, 1.0);
  if (sorted_residuals_.empty()) return 0.0;
  // Finite-sample-corrected rank ceil(alpha * (n+1)) — see
  // ConformalQuantileRank; ceil(alpha * n) undercovers (Theorem 5.2).
  return sorted_residuals_[ConformalQuantileRank(sorted_residuals_.size(),
                                                 alpha) -
                           1];
}

PredictionBand SplitConformalRegressor::Band(double prediction,
                                             double alpha) const {
  const double q = Quantile(alpha);
  return PredictionBand{prediction - q, prediction + q};
}

}  // namespace eventhit::conformal
