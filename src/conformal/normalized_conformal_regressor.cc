#include "conformal/normalized_conformal_regressor.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "common/stats.h"

namespace eventhit::conformal {

NormalizedConformalRegressor::NormalizedConformalRegressor(
    std::vector<double> abs_residuals, std::vector<double> difficulties) {
  EVENTHIT_CHECK_EQ(abs_residuals.size(), difficulties.size());
  sorted_ratios_.reserve(abs_residuals.size());
  for (size_t i = 0; i < abs_residuals.size(); ++i) {
    EVENTHIT_CHECK_GE(abs_residuals[i], 0.0);
    EVENTHIT_CHECK_GT(difficulties[i], 0.0);
    sorted_ratios_.push_back(abs_residuals[i] / difficulties[i]);
  }
  std::sort(sorted_ratios_.begin(), sorted_ratios_.end());
}

double NormalizedConformalRegressor::Quantile(double alpha) const {
  EVENTHIT_CHECK_GE(alpha, 0.0);
  EVENTHIT_CHECK_LE(alpha, 1.0);
  if (sorted_ratios_.empty()) return 0.0;
  // Finite-sample-corrected rank ceil(alpha * (n+1)) — see
  // ConformalQuantileRank; ceil(alpha * n) undercovers (Theorem 5.2).
  return sorted_ratios_[ConformalQuantileRank(sorted_ratios_.size(), alpha) -
                        1];
}

PredictionBand NormalizedConformalRegressor::Band(double prediction,
                                                  double difficulty,
                                                  double alpha) const {
  EVENTHIT_CHECK_GT(difficulty, 0.0);
  const double width = Quantile(alpha) * difficulty;
  return PredictionBand{prediction - width, prediction + width};
}

}  // namespace eventhit::conformal
