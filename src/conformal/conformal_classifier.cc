#include "conformal/conformal_classifier.h"

#include <algorithm>

namespace eventhit::conformal {

ConformalBinaryClassifier::ConformalBinaryClassifier(
    std::vector<double> positive_scores)
    : sorted_scores_(std::move(positive_scores)) {
  std::sort(sorted_scores_.begin(), sorted_scores_.end());
}

double ConformalBinaryClassifier::PValue(double score) const {
  // Count of calibration scores a_n with score <= a_n. The +1 counts the
  // test example itself — it is exchangeable with the calibration set, so
  // the transductive p-value (Theorem 4.1) is (#{score <= a_n} + 1)/(n+1);
  // dropping the +1 undercovers by ~1/(n+1), badly for small n.
  const auto it =
      std::lower_bound(sorted_scores_.begin(), sorted_scores_.end(), score);
  const auto at_least = static_cast<double>(sorted_scores_.end() - it);
  return (at_least + 1.0) / (static_cast<double>(sorted_scores_.size()) + 1.0);
}

bool ConformalBinaryClassifier::PredictPositive(double score,
                                                double confidence) const {
  return PValue(score) >= 1.0 - confidence;
}

}  // namespace eventhit::conformal
