// Split conformal regression (§V.A, Lei et al. 2018).
//
// Calibrated from the absolute residuals |y_n - mu_hat(x_n)| of a held-out
// calibration set, the band [mu_hat(x) - q, mu_hat(x) + q] with q the
// ceil(alpha * (n+1))-th smallest residual (clamped to the sample) covers
// the true response with probability at least alpha under exchangeability
// (Theorem 5.1). The (n+1) is the finite-sample correction: the test point
// is exchangeable with the n calibration residuals, so the uncorrected
// ceil(alpha * n) rank undercovers by ~alpha/(n+1).
#ifndef EVENTHIT_CONFORMAL_SPLIT_CONFORMAL_REGRESSOR_H_
#define EVENTHIT_CONFORMAL_SPLIT_CONFORMAL_REGRESSOR_H_

#include <cstddef>
#include <vector>

namespace eventhit::conformal {

/// A symmetric prediction band around a point prediction.
struct PredictionBand {
  double lo = 0.0;
  double hi = 0.0;
};

/// Calibrated split-conformal regressor for one response variable.
class SplitConformalRegressor {
 public:
  /// `abs_residuals`: |y_n - mu_hat(x_n)| over the calibration set. May be
  /// empty, in which case Quantile() is 0 (no widening — the degenerate but
  /// well-defined behaviour with no calibration evidence).
  explicit SplitConformalRegressor(std::vector<double> abs_residuals);

  /// q_hat at coverage `alpha` in [0, 1]: the ceil(alpha*(n+1))-th
  /// smallest residual (1-indexed), clamped to the sample.
  double Quantile(double alpha) const;

  /// [prediction - q_hat, prediction + q_hat].
  PredictionBand Band(double prediction, double alpha) const;

  size_t calibration_size() const { return sorted_residuals_.size(); }

 private:
  std::vector<double> sorted_residuals_;  // Ascending.
};

}  // namespace eventhit::conformal

#endif  // EVENTHIT_CONFORMAL_SPLIT_CONFORMAL_REGRESSOR_H_
