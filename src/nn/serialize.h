// Binary save/load of parameter sets, so a trained EventHit model can be
// persisted locally and redeployed without retraining (the paper trains once
// before deployment).
#ifndef EVENTHIT_NN_SERIALIZE_H_
#define EVENTHIT_NN_SERIALIZE_H_

#include <string>

#include "common/status.h"
#include "nn/parameter.h"

namespace eventhit::nn {

/// Writes all parameters (name, shape, float data) to `path`. The format is
/// a little-endian stream with a magic header; see serialize.cc. Saving
/// only reads the parameters, so it takes const refs (a non-const
/// `Parameter*` converts implicitly).
Status SaveParameters(const ConstParameterRefs& params,
                      const std::string& path);

/// Loads parameters from `path` into `params`. Names and shapes must match
/// the registered parameters exactly (same order), the file must contain
/// exactly the expected bytes (truncated or trailing data is rejected),
/// and the load is atomic: on any error the destination parameters are
/// left untouched.
Status LoadParameters(const ParameterRefs& params, const std::string& path);

}  // namespace eventhit::nn

#endif  // EVENTHIT_NN_SERIALIZE_H_
