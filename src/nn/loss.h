// Binary cross-entropy on logits: numerically stable value and gradient.
// EventHit's two losses (existence L1 and per-frame occupancy L2) are both
// weighted BCE sums over sigmoid outputs, so they share these kernels.
#ifndef EVENTHIT_NN_LOSS_H_
#define EVENTHIT_NN_LOSS_H_

#include <cstddef>

namespace eventhit::nn {

/// BCE-with-logits for a single scalar: returns the loss value
///   -[ y*log(sigmoid(x)) + (1-y)*log(1-sigmoid(x)) ] * weight
/// and writes d(loss)/d(logit) = (sigmoid(x) - y) * weight to *dlogit.
double BceWithLogits(float logit, float target, float weight, float* dlogit);

/// Element-wise weighted BCE over n logits. `weights[i]` may be zero to mask
/// an element entirely (no loss, no gradient). Returns the summed loss and
/// writes per-element gradients to dlogits.
double BceWithLogitsVector(const float* logits, const float* targets,
                           const float* weights, size_t n, float* dlogits);

}  // namespace eventhit::nn

#endif  // EVENTHIT_NN_LOSS_H_
