// Grow-only scratch arena for the batched inference path.
//
// The scalar forward pass allocates per step (gate vectors, hidden copies);
// batched inference would multiply that by the batch size. A Workspace
// instead bump-allocates float buffers from one reusable block: the first
// few batches grow it to the high-water mark, after which Reset() rewinds
// the cursor and every subsequent batch runs without touching the heap.
//
// Ownership rules (DESIGN.md §5e): a Workspace belongs to exactly one
// thread — PredictBatch hands each worker chunk its own. Pointers returned
// by Alloc stay valid until the next Reset(); layers may Alloc freely
// inside a batch but must never hold a pointer across batches.
#ifndef EVENTHIT_NN_WORKSPACE_H_
#define EVENTHIT_NN_WORKSPACE_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

namespace eventhit::nn {

/// Bump allocator over heap blocks. Not thread-safe by design: use one
/// Workspace per thread.
class Workspace {
 public:
  Workspace() = default;

  Workspace(const Workspace&) = delete;
  Workspace& operator=(const Workspace&) = delete;

  /// Returns an uninitialised buffer of `n` floats, valid until Reset().
  /// `n == 0` returns a non-null dummy pointer.
  float* Alloc(size_t n);

  /// Returns an uninitialised buffer of `n` int8 values from the same
  /// arena (carved out of float storage, so alignment is 4 bytes — more
  /// than int8 needs). Used by the quantized inference path (nn/int8.h).
  int8_t* AllocInt8(size_t n) {
    return reinterpret_cast<int8_t*>(Alloc((n + 3) / 4));
  }

  /// Rewinds the arena: every pointer handed out so far becomes invalid.
  /// If allocation overflowed into extra blocks since the last Reset, the
  /// blocks coalesce into one of the combined size, so a steady-state
  /// allocation sequence that fit once never touches the heap again.
  void Reset();

  /// Total floats of backing capacity (across all blocks).
  size_t capacity() const;

  /// Floats handed out since the last Reset.
  size_t used() const;

 private:
  struct Block {
    std::unique_ptr<float[]> data;
    size_t size = 0;
    size_t used = 0;
  };

  std::vector<Block> blocks_;
};

}  // namespace eventhit::nn

#endif  // EVENTHIT_NN_WORKSPACE_H_
