// Explicit AVX2+FMA kernels for the `simd` backend (docs/BACKENDS.md).
//
// This translation unit is compiled with -mavx2 -mfma (see
// src/nn/CMakeLists.txt) and must therefore never be entered unless
// SimdAvailable() reported AVX2+FMA at runtime — backend.cc's dispatch
// table is the only caller, and it checks first. The TU is also compiled
// with -ffp-contract=off so the compiler cannot fuse any *other*
// multiply-add behind our back: the only FMAs are the explicit
// _mm256_fmadd_ps in the vector bodies and the std::fmaf in the scalar
// tails, which keeps the two paths bit-identical per element.
//
// Determinism contract (the part the fleet's solo==batched digest relies
// on): every output element is computed as
//
//   GemmZero:  first k-term by one multiply, each later term by one fused
//              multiply-add, ascending k;
//   Gemm:      start from the existing C value, every term fused, ascending
//              k;
//
// in BOTH the 8-wide vector body and the scalar column tail. A column's
// bits therefore do not depend on where it falls in the batch, so per-
// record results are invariant under batch composition. Against the
// blocked backend the values differ (FMA rounds once per term instead of
// twice) within the documented 1e-5 score bound.
#include <immintrin.h>

#include <cmath>
#include <cstdint>
#include <cstring>

#include "nn/activations_inl.h"

namespace eventhit::nn::detail {
namespace {

#if defined(__GNUC__) || defined(__clang__)
#define EVENTHIT_RESTRICT __restrict__
#else
#define EVENTHIT_RESTRICT
#endif

// --- float GEMM ------------------------------------------------------------

template <bool kAccumulate>
void GemmAvx2Impl(size_t m, size_t n, size_t k,
                  const float* EVENTHIT_RESTRICT a, size_t lda,
                  const float* EVENTHIT_RESTRICT b, size_t ldb,
                  float* EVENTHIT_RESTRICT c, size_t ldc) {
  if (k == 0) {
    if constexpr (!kAccumulate) {
      for (size_t i = 0; i < m; ++i) {
        std::memset(c + i * ldc, 0, n * sizeof(float));
      }
    }
    return;
  }
  size_t j = 0;
  // 8-column panels: the B panel rows stream once per A row tile and stay
  // hot in L1; four A rows share each B load.
  for (; j + 8 <= n; j += 8) {
    const float* bcol = b + j;
    float* ccol = c + j;
    size_t i = 0;
    for (; i + 4 <= m; i += 4) {
      const float* a0 = a + i * lda;
      const float* a1 = a0 + lda;
      const float* a2 = a1 + lda;
      const float* a3 = a2 + lda;
      float* c0p = ccol + i * ldc;
      float* c1p = c0p + ldc;
      float* c2p = c1p + ldc;
      float* c3p = c2p + ldc;
      __m256 acc0, acc1, acc2, acc3;
      size_t kk;
      if constexpr (kAccumulate) {
        acc0 = _mm256_loadu_ps(c0p);
        acc1 = _mm256_loadu_ps(c1p);
        acc2 = _mm256_loadu_ps(c2p);
        acc3 = _mm256_loadu_ps(c3p);
        kk = 0;
      } else {
        const __m256 b0 = _mm256_loadu_ps(bcol);
        acc0 = _mm256_mul_ps(_mm256_set1_ps(a0[0]), b0);
        acc1 = _mm256_mul_ps(_mm256_set1_ps(a1[0]), b0);
        acc2 = _mm256_mul_ps(_mm256_set1_ps(a2[0]), b0);
        acc3 = _mm256_mul_ps(_mm256_set1_ps(a3[0]), b0);
        kk = 1;
      }
      for (; kk < k; ++kk) {
        const __m256 bv = _mm256_loadu_ps(bcol + kk * ldb);
        acc0 = _mm256_fmadd_ps(_mm256_set1_ps(a0[kk]), bv, acc0);
        acc1 = _mm256_fmadd_ps(_mm256_set1_ps(a1[kk]), bv, acc1);
        acc2 = _mm256_fmadd_ps(_mm256_set1_ps(a2[kk]), bv, acc2);
        acc3 = _mm256_fmadd_ps(_mm256_set1_ps(a3[kk]), bv, acc3);
      }
      _mm256_storeu_ps(c0p, acc0);
      _mm256_storeu_ps(c1p, acc1);
      _mm256_storeu_ps(c2p, acc2);
      _mm256_storeu_ps(c3p, acc3);
    }
    for (; i < m; ++i) {
      const float* arow = a + i * lda;
      float* crow = ccol + i * ldc;
      __m256 acc;
      size_t kk;
      if constexpr (kAccumulate) {
        acc = _mm256_loadu_ps(crow);
        kk = 0;
      } else {
        acc = _mm256_mul_ps(_mm256_set1_ps(arow[0]), _mm256_loadu_ps(bcol));
        kk = 1;
      }
      for (; kk < k; ++kk) {
        acc = _mm256_fmadd_ps(_mm256_set1_ps(arow[kk]),
                              _mm256_loadu_ps(bcol + kk * ldb), acc);
      }
      _mm256_storeu_ps(crow, acc);
    }
  }
  // Scalar column tail — same op order per element (one multiply for the
  // first term under !kAccumulate, fused multiply-adds after), so a column
  // computes the same bits whether it lands here or in the vector body.
  for (; j < n; ++j) {
    for (size_t i = 0; i < m; ++i) {
      const float* arow = a + i * lda;
      float acc;
      size_t kk;
      if constexpr (kAccumulate) {
        acc = c[i * ldc + j];
        kk = 0;
      } else {
        acc = arow[0] * b[j];
        kk = 1;
      }
      for (; kk < k; ++kk) {
        acc = std::fmaf(arow[kk], b[kk * ldb + j], acc);
      }
      c[i * ldc + j] = acc;
    }
  }
}

// --- activations ------------------------------------------------------------
//
// The same rational tanh as activations.cc (coefficients shared via
// activations_inl.h) with the Horner steps fused. Vector body and scalar
// tail perform the identical operation sequence: clamp (min/max), x2 = x*x,
// fused Horner for numerator and denominator, p*x, one divide. Sigmoid is
// 0.5 + 0.5*tanh(0.5*x) with the multiply and add kept separate (not
// fused) in both paths.

inline __m256 TanhVec(__m256 x) {
  const __m256 clamp_hi = _mm256_set1_ps(kTanhClamp);
  const __m256 clamp_lo = _mm256_set1_ps(-kTanhClamp);
  x = _mm256_min_ps(_mm256_max_ps(x, clamp_lo), clamp_hi);
  const __m256 x2 = _mm256_mul_ps(x, x);
  __m256 p = _mm256_set1_ps(kTanhNum[0]);
  for (size_t i = 1; i < kTanhNumTerms; ++i) {
    p = _mm256_fmadd_ps(p, x2, _mm256_set1_ps(kTanhNum[i]));
  }
  p = _mm256_mul_ps(p, x);
  __m256 q = _mm256_set1_ps(kTanhDen[0]);
  for (size_t i = 1; i < kTanhDenTerms; ++i) {
    q = _mm256_fmadd_ps(q, x2, _mm256_set1_ps(kTanhDen[i]));
  }
  return _mm256_div_ps(p, q);
}

inline float TanhFma(float x) {
  x = std::fmin(std::fmax(x, -kTanhClamp), kTanhClamp);
  const float x2 = x * x;
  float p = kTanhNum[0];
  for (size_t i = 1; i < kTanhNumTerms; ++i) {
    p = std::fmaf(p, x2, kTanhNum[i]);
  }
  p = p * x;
  float q = kTanhDen[0];
  for (size_t i = 1; i < kTanhDenTerms; ++i) {
    q = std::fmaf(q, x2, kTanhDen[i]);
  }
  return p / q;
}

inline __m256 SigmoidVec(__m256 x) {
  const __m256 half = _mm256_set1_ps(0.5f);
  const __m256 t = TanhVec(_mm256_mul_ps(half, x));
  return _mm256_add_ps(half, _mm256_mul_ps(half, t));
}

inline float SigmoidFma(float x) {
  const float t = TanhFma(0.5f * x);
  const float half_t = 0.5f * t;
  return 0.5f + half_t;
}

}  // namespace

void GemmZeroAvx2(size_t m, size_t n, size_t k, const float* a, size_t lda,
                  const float* b, size_t ldb, float* c, size_t ldc) {
  GemmAvx2Impl<false>(m, n, k, a, lda, b, ldb, c, ldc);
}

void GemmAvx2(size_t m, size_t n, size_t k, const float* a, size_t lda,
              const float* b, size_t ldb, float* c, size_t ldc) {
  GemmAvx2Impl<true>(m, n, k, a, lda, b, ldb, c, ldc);
}

void TanhInPlaceAvx2(float* x, size_t n) {
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    _mm256_storeu_ps(x + i, TanhVec(_mm256_loadu_ps(x + i)));
  }
  for (; i < n; ++i) x[i] = TanhFma(x[i]);
}

void SigmoidInPlaceAvx2(float* x, size_t n) {
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    _mm256_storeu_ps(x + i, SigmoidVec(_mm256_loadu_ps(x + i)));
  }
  for (; i < n; ++i) x[i] = SigmoidFma(x[i]);
}

// --- int8 GEMM --------------------------------------------------------------
//
// Integer accumulation is exact, so this kernel is bit-identical to
// backend.cc's GenericInt8GemmZero (and to any other vectorization): the
// only float operations are the final int32 -> float conversion and one
// multiply by `scale`, performed identically in the vector body, scalar
// tail, and generic kernel.

void Int8GemmZeroAvx2(size_t m, size_t n, size_t k, const int8_t* a,
                      size_t lda, const int8_t* b, size_t ldb, float scale,
                      float* c, size_t ldc) {
  const __m256 vscale = _mm256_set1_ps(scale);
  size_t j = 0;
  for (; j + 8 <= n; j += 8) {
    const int8_t* bcol = b + j;
    float* ccol = c + j;
    size_t i = 0;
    for (; i + 4 <= m; i += 4) {
      const int8_t* a0 = a + i * lda;
      const int8_t* a1 = a0 + lda;
      const int8_t* a2 = a1 + lda;
      const int8_t* a3 = a2 + lda;
      __m256i acc0 = _mm256_setzero_si256();
      __m256i acc1 = _mm256_setzero_si256();
      __m256i acc2 = _mm256_setzero_si256();
      __m256i acc3 = _mm256_setzero_si256();
      for (size_t kk = 0; kk < k; ++kk) {
        const __m128i b8 = _mm_loadl_epi64(
            reinterpret_cast<const __m128i*>(bcol + kk * ldb));
        const __m256i bv = _mm256_cvtepi8_epi32(b8);
        acc0 = _mm256_add_epi32(
            acc0, _mm256_mullo_epi32(_mm256_set1_epi32(a0[kk]), bv));
        acc1 = _mm256_add_epi32(
            acc1, _mm256_mullo_epi32(_mm256_set1_epi32(a1[kk]), bv));
        acc2 = _mm256_add_epi32(
            acc2, _mm256_mullo_epi32(_mm256_set1_epi32(a2[kk]), bv));
        acc3 = _mm256_add_epi32(
            acc3, _mm256_mullo_epi32(_mm256_set1_epi32(a3[kk]), bv));
      }
      float* c0p = ccol + i * ldc;
      _mm256_storeu_ps(c0p, _mm256_mul_ps(_mm256_cvtepi32_ps(acc0), vscale));
      _mm256_storeu_ps(c0p + ldc,
                       _mm256_mul_ps(_mm256_cvtepi32_ps(acc1), vscale));
      _mm256_storeu_ps(c0p + 2 * ldc,
                       _mm256_mul_ps(_mm256_cvtepi32_ps(acc2), vscale));
      _mm256_storeu_ps(c0p + 3 * ldc,
                       _mm256_mul_ps(_mm256_cvtepi32_ps(acc3), vscale));
    }
    for (; i < m; ++i) {
      const int8_t* arow = a + i * lda;
      __m256i acc = _mm256_setzero_si256();
      for (size_t kk = 0; kk < k; ++kk) {
        const __m128i b8 = _mm_loadl_epi64(
            reinterpret_cast<const __m128i*>(bcol + kk * ldb));
        const __m256i bv = _mm256_cvtepi8_epi32(b8);
        acc = _mm256_add_epi32(
            acc, _mm256_mullo_epi32(_mm256_set1_epi32(arow[kk]), bv));
      }
      _mm256_storeu_ps(ccol + i * ldc,
                       _mm256_mul_ps(_mm256_cvtepi32_ps(acc), vscale));
    }
  }
  for (; j < n; ++j) {
    for (size_t i = 0; i < m; ++i) {
      const int8_t* arow = a + i * lda;
      int32_t acc = 0;
      for (size_t kk = 0; kk < k; ++kk) {
        acc += static_cast<int32_t>(arow[kk]) *
               static_cast<int32_t>(b[kk * ldb + j]);
      }
      c[i * ldc + j] = scale * static_cast<float>(acc);
    }
  }
}

}  // namespace eventhit::nn::detail
