// Element-wise activation kernels with derivatives expressed in terms of the
// forward *outputs*, which is what backprop caches.
#ifndef EVENTHIT_NN_ACTIVATIONS_H_
#define EVENTHIT_NN_ACTIVATIONS_H_

#include <cstddef>

namespace eventhit::nn {

/// y[i] = tanh(x[i]) in place.
void TanhInPlace(float* x, size_t n);

/// y[i] = sigmoid(x[i]) in place (numerically stable).
void SigmoidInPlace(float* x, size_t n);

/// y[i] = max(0, x[i]) in place.
void ReluInPlace(float* x, size_t n);

/// dx[i] = dy[i] * (1 - y[i]^2) where y is the tanh output.
void TanhBackward(const float* y, const float* dy, float* dx, size_t n);

/// dx[i] = dy[i] * y[i] * (1 - y[i]) where y is the sigmoid output.
void SigmoidBackward(const float* y, const float* dy, float* dx, size_t n);

/// dx[i] = dy[i] * (y[i] > 0) where y is the relu output.
void ReluBackward(const float* y, const float* dy, float* dx, size_t n);

/// Scalar helpers used by the LSTM cell.
float SigmoidScalar(float x);
float TanhScalar(float x);

}  // namespace eventhit::nn

#endif  // EVENTHIT_NN_ACTIVATIONS_H_
