// Multi-layer perceptron: Dense -> tanh -> ... -> Dense (final layer is
// linear; callers apply sigmoid/softmax or feed logits to a loss).
#ifndef EVENTHIT_NN_MLP_H_
#define EVENTHIT_NN_MLP_H_

#include <string>
#include <vector>

#include "common/rng.h"
#include "nn/backend.h"
#include "nn/dense.h"
#include "nn/matrix.h"
#include "nn/parameter.h"
#include "nn/workspace.h"

namespace eventhit::nn {

/// A stack of Dense layers with tanh between them. `dims` lists
/// [input, hidden..., output]; a two-element dims is a single affine layer.
class Mlp {
 public:
  Mlp() = default;
  Mlp(std::string name, const std::vector<size_t>& dims, Rng& rng);

  size_t in_dim() const { return layers_.front().in_dim(); }
  size_t out_dim() const { return layers_.back().out_dim(); }

  /// Forward pass producing logits; caches intermediate activations for
  /// Backward.
  void ForwardCached(const float* x, Vec& logits);

  /// Inference-only forward (no cache mutation).
  void Forward(const float* x, Vec& logits) const;

  /// Batched inference over `batch` columns stored batch-minor: `x` is
  /// [in_dim() x batch], `logits` [out_dim() x batch], fully overwritten.
  /// Hidden activations come from `ws` (valid until its next Reset), so a
  /// warm Workspace makes the whole pass allocation-free. Per column the
  /// results are bit-identical to Forward.
  void ForwardBatch(const float* x, size_t batch, float* logits,
                    Workspace& ws) const;

  /// Same, dispatching GEMMs and the inter-layer tanh through `backend`'s
  /// kernel table (nn/backend.h).
  void ForwardBatch(const float* x, size_t batch, float* logits, Workspace& ws,
                    const Backend& backend) const;

  /// Backward from dlogits; accumulates parameter gradients. `dx` (size
  /// in_dim()) receives += input gradients when non-null. Must follow
  /// ForwardCached with the same `x`.
  void Backward(const float* x, const float* dlogits, float* dx);

  void CollectParameters(ParameterRefs& out);
  void CollectParameters(ConstParameterRefs& out) const;

  const std::vector<Dense>& layers() const { return layers_; }
  std::vector<Dense>& mutable_layers() { return layers_; }

 private:
  std::vector<Dense> layers_;
  // activations_[i] = tanh output of layer i (for i < last). Cached by
  // ForwardCached for use in Backward.
  std::vector<Vec> activations_;
};

}  // namespace eventhit::nn

#endif  // EVENTHIT_NN_MLP_H_
