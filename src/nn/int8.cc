#include "nn/int8.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <utility>

#include "common/check.h"

namespace eventhit::nn {
namespace {

// Activation scale for tensors bounded in (-1, 1) by construction (tanh
// outputs, LSTM hidden states): the analytic bound, no calibration needed.
constexpr float kUnitScale = 1.0f / 127.0f;

float MaxAbs(const float* x, size_t n) {
  float m = 0.0f;
  for (size_t i = 0; i < n; ++i) m = std::max(m, std::fabs(x[i]));
  return m;
}

}  // namespace

Int8Tensor QuantizeTensor(const Matrix& w) {
  Int8Tensor t;
  t.rows = w.rows();
  t.cols = w.cols();
  t.data.resize(w.size());
  const float max_abs = MaxAbs(w.data(), w.size());
  t.scale = max_abs > 0.0f ? max_abs / 127.0f : 1.0f;
  QuantizeInt8(w.data(), w.size(), 1.0f / t.scale, t.data.data());
  return t;
}

Int8Dense Int8Dense::FromFloat(const Dense& dense, float in_scale) {
  EVENTHIT_CHECK_GT(in_scale, 0.0f);
  Int8Dense out;
  out.weight = QuantizeTensor(dense.weight().value);
  const float* b = dense.bias().value.data();
  out.bias.assign(b, b + dense.out_dim());
  out.in_scale = in_scale;
  return out;
}

void Int8Dense::ForwardBatch(const float* x, size_t batch, float* y,
                             Workspace& ws, const Backend& backend) const {
  EVENTHIT_CHECK_GT(batch, 0u);
  const size_t in = in_dim();
  const size_t out = out_dim();
  int8_t* qx = ws.AllocInt8(in * batch);
  QuantizeInt8(x, in * batch, 1.0f / in_scale, qx);
  backend.kernels->int8_gemm_zero(out, batch, in, weight.data.data(), in, qx,
                                  batch, weight.scale * in_scale, y, batch);
  for (size_t i = 0; i < out; ++i) {
    float* row = y + i * batch;
    for (size_t j = 0; j < batch; ++j) row[j] += bias[i];
  }
}

Int8Lstm Int8Lstm::FromFloat(const Lstm& lstm, float x_scale, float h_scale) {
  EVENTHIT_CHECK_GT(x_scale, 0.0f);
  EVENTHIT_CHECK_GT(h_scale, 0.0f);
  Int8Lstm out;
  out.wx = QuantizeTensor(lstm.wx().value);
  out.wh = QuantizeTensor(lstm.wh().value);
  const float* b = lstm.bias().value.data();
  out.bias.assign(b, b + 4 * lstm.hidden_dim());
  out.x_scale = x_scale;
  out.h_scale = h_scale;
  out.input_dim = lstm.input_dim();
  out.hidden_dim = lstm.hidden_dim();
  return out;
}

void Int8Lstm::ForwardBatch(const float* inputs, size_t steps, size_t batch,
                            float* h_out, Workspace& ws,
                            const Backend& backend) const {
  EVENTHIT_CHECK_GT(steps, 0u);
  EVENTHIT_CHECK_GT(batch, 0u);
  const size_t hd = hidden_dim;
  const size_t d = input_dim;
  const size_t gate_rows = 4 * hd;
  const BackendKernels& kern = *backend.kernels;

  // Same batch-minor scratch layout and per-element operation order as
  // Lstm::ForwardBatch — only the two GEMMs are replaced by quantize +
  // int8 product + dequant.
  float* gates = ws.Alloc(gate_rows * batch);
  float* rec = ws.Alloc(gate_rows * batch);
  float* h_prev = ws.Alloc(hd * batch);
  float* c_prev = ws.Alloc(hd * batch);
  float* h_cur = ws.Alloc(hd * batch);
  float* c_cur = ws.Alloc(hd * batch);
  int8_t* qx = ws.AllocInt8(d * batch);
  int8_t* qh = ws.AllocInt8(hd * batch);
  std::memset(h_prev, 0, hd * batch * sizeof(float));
  std::memset(c_prev, 0, hd * batch * sizeof(float));

  for (size_t t = 0; t < steps; ++t) {
    const float* x_t = inputs + t * d * batch;
    QuantizeInt8(x_t, d * batch, 1.0f / x_scale, qx);
    kern.int8_gemm_zero(gate_rows, batch, d, wx.data.data(), d, qx, batch,
                        wx.scale * x_scale, gates, batch);
    QuantizeInt8(h_prev, hd * batch, 1.0f / h_scale, qh);
    kern.int8_gemm_zero(gate_rows, batch, hd, wh.data.data(), hd, qh, batch,
                        wh.scale * h_scale, rec, batch);
    for (size_t j = 0; j < gate_rows; ++j) {
      float* grow = gates + j * batch;
      const float* rrow = rec + j * batch;
      const float bj = bias[j];
      for (size_t b = 0; b < batch; ++b) grow[b] = (grow[b] + rrow[b]) + bj;
    }

    kern.sigmoid_inplace(gates, 2 * hd * batch);
    kern.tanh_inplace(gates + 2 * hd * batch, hd * batch);
    kern.sigmoid_inplace(gates + 3 * hd * batch, hd * batch);

    const float* gate_i = gates;
    const float* gate_f = gates + hd * batch;
    const float* gate_g = gates + 2 * hd * batch;
    const float* gate_o = gates + 3 * hd * batch;
    for (size_t idx = 0; idx < hd * batch; ++idx) {
      c_cur[idx] = gate_f[idx] * c_prev[idx] + gate_i[idx] * gate_g[idx];
      h_cur[idx] = c_cur[idx];
    }
    kern.tanh_inplace(h_cur, hd * batch);
    for (size_t idx = 0; idx < hd * batch; ++idx) {
      h_cur[idx] *= gate_o[idx];
    }
    std::swap(h_prev, h_cur);
    std::swap(c_prev, c_cur);
  }
  std::memcpy(h_out, h_prev, hd * batch * sizeof(float));
}

Int8Mlp Int8Mlp::FromFloat(const Mlp& mlp, float in_scale) {
  Int8Mlp out;
  out.layers.reserve(mlp.layers().size());
  for (size_t i = 0; i < mlp.layers().size(); ++i) {
    // Layer 0 sees the network input; every later layer sees a tanh output
    // bounded in (-1, 1).
    out.layers.push_back(Int8Dense::FromFloat(
        mlp.layers()[i], i == 0 ? in_scale : kUnitScale));
  }
  return out;
}

void Int8Mlp::ForwardBatch(const float* x, size_t batch, float* logits,
                           Workspace& ws, const Backend& backend) const {
  const float* current = x;
  for (size_t i = 0; i < layers.size(); ++i) {
    const bool last = i + 1 == layers.size();
    const size_t out = layers[i].out_dim();
    float* buffer = last ? logits : ws.Alloc(out * batch);
    layers[i].ForwardBatch(current, batch, buffer, ws, backend);
    if (!last) {
      backend.kernels->tanh_inplace(buffer, out * batch);
      current = buffer;
    }
  }
}

}  // namespace eventhit::nn
