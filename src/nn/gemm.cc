#include "nn/gemm.h"

namespace eventhit::nn {
namespace {

#if defined(__GNUC__) || defined(__clang__)
#define EVENTHIT_RESTRICT __restrict__
#else
#define EVENTHIT_RESTRICT
#endif

// Rows of A (and C) processed together by the register tile. Four float
// accumulator rows x one vector register of columns fits comfortably in
// the sixteen xmm/ymm registers of baseline x86-64 while quartering the
// number of times each B row is streamed from cache.
constexpr size_t kRowTile = 4;

// One tile: C[0..4) x [0..n) += A-tile * B (or = with kAccumulate false,
// which peels the first k-term into a store so C is never read or
// pre-zeroed). The a-scalars hoist into registers; the j loop is
// unit-stride over four independent accumulator rows, which the compiler
// turns into FMA-free packed multiply-adds without needing to reassociate
// anything (each c[j] is a distinct element, not a reduction).
template <bool kAccumulate>
inline void GemmTile4(size_t n, size_t k, const float* EVENTHIT_RESTRICT a0,
                      const float* EVENTHIT_RESTRICT a1,
                      const float* EVENTHIT_RESTRICT a2,
                      const float* EVENTHIT_RESTRICT a3, size_t astride,
                      const float* EVENTHIT_RESTRICT b, size_t ldb,
                      float* EVENTHIT_RESTRICT c0,
                      float* EVENTHIT_RESTRICT c1,
                      float* EVENTHIT_RESTRICT c2,
                      float* EVENTHIT_RESTRICT c3) {
  size_t kk = 0;
  if constexpr (!kAccumulate) {
    if (k == 0) {
      for (size_t j = 0; j < n; ++j) {
        c0[j] = 0.0f;
        c1[j] = 0.0f;
        c2[j] = 0.0f;
        c3[j] = 0.0f;
      }
      return;
    }
    const float a00 = a0[0];
    const float a10 = a1[0];
    const float a20 = a2[0];
    const float a30 = a3[0];
    for (size_t j = 0; j < n; ++j) {
      c0[j] = a00 * b[j];
      c1[j] = a10 * b[j];
      c2[j] = a20 * b[j];
      c3[j] = a30 * b[j];
    }
    kk = 1;
  }
  for (; kk < k; ++kk) {
    const float a0k = a0[kk * astride];
    const float a1k = a1[kk * astride];
    const float a2k = a2[kk * astride];
    const float a3k = a3[kk * astride];
    const float* EVENTHIT_RESTRICT brow = b + kk * ldb;
    for (size_t j = 0; j < n; ++j) {
      c0[j] += a0k * brow[j];
      c1[j] += a1k * brow[j];
      c2[j] += a2k * brow[j];
      c3[j] += a3k * brow[j];
    }
  }
}

template <bool kAccumulate>
inline void GemmTile1(size_t n, size_t k, const float* EVENTHIT_RESTRICT a0,
                      size_t astride, const float* EVENTHIT_RESTRICT b,
                      size_t ldb, float* EVENTHIT_RESTRICT c0) {
  size_t kk = 0;
  if constexpr (!kAccumulate) {
    if (k == 0) {
      for (size_t j = 0; j < n; ++j) c0[j] = 0.0f;
      return;
    }
    const float a00 = a0[0];
    for (size_t j = 0; j < n; ++j) c0[j] = a00 * b[j];
    kk = 1;
  }
  for (; kk < k; ++kk) {
    const float a0k = a0[kk * astride];
    const float* EVENTHIT_RESTRICT brow = b + kk * ldb;
    for (size_t j = 0; j < n; ++j) {
      c0[j] += a0k * brow[j];
    }
  }
}

template <bool kAccumulate>
void GemmImpl(size_t m, size_t n, size_t k, const float* a, size_t lda,
              const float* b, size_t ldb, float* c, size_t ldc) {
  // A row i starts at a + i*lda and advances by 1 per k (astride == 1).
  size_t i = 0;
  for (; i + kRowTile <= m; i += kRowTile) {
    GemmTile4<kAccumulate>(n, k, a + i * lda, a + (i + 1) * lda,
                           a + (i + 2) * lda, a + (i + 3) * lda,
                           /*astride=*/1, b, ldb, c + i * ldc,
                           c + (i + 1) * ldc, c + (i + 2) * ldc,
                           c + (i + 3) * ldc);
  }
  for (; i < m; ++i) {
    GemmTile1<kAccumulate>(n, k, a + i * lda, /*astride=*/1, b, ldb,
                           c + i * ldc);
  }
}

}  // namespace

void Gemm(size_t m, size_t n, size_t k, const float* a, size_t lda,
          const float* b, size_t ldb, float* c, size_t ldc) {
  GemmImpl<true>(m, n, k, a, lda, b, ldb, c, ldc);
}

void GemmZero(size_t m, size_t n, size_t k, const float* a, size_t lda,
              const float* b, size_t ldb, float* c, size_t ldc) {
  GemmImpl<false>(m, n, k, a, lda, b, ldb, c, ldc);
}

void GemmTN(size_t m, size_t n, size_t k, const float* a, size_t lda,
            const float* b, size_t ldb, float* c, size_t ldc) {
  // Effective A row i is stored column i: starts at a + i, advances by lda
  // per k. Same tile, different stride — the k-order (and therefore the
  // summation-order contract) is unchanged.
  size_t i = 0;
  for (; i + kRowTile <= m; i += kRowTile) {
    GemmTile4<true>(n, k, a + i, a + i + 1, a + i + 2, a + i + 3,
                    /*astride=*/lda, b, ldb, c + i * ldc, c + (i + 1) * ldc,
                    c + (i + 2) * ldc, c + (i + 3) * ldc);
  }
  for (; i < m; ++i) {
    GemmTile1<true>(n, k, a + i, /*astride=*/lda, b, ldb, c + i * ldc);
  }
}

}  // namespace eventhit::nn
