#include "nn/matrix.h"

#include <cmath>
#include <cstring>

#include "common/check.h"

namespace eventhit::nn {

Matrix::Matrix(size_t rows, size_t cols)
    : rows_(rows), cols_(cols), data_(rows * cols, 0.0f) {}

Matrix Matrix::Zeros(size_t rows, size_t cols) { return Matrix(rows, cols); }

Matrix Matrix::GlorotUniform(size_t rows, size_t cols, Rng& rng) {
  Matrix m(rows, cols);
  const double bound = std::sqrt(6.0 / static_cast<double>(rows + cols));
  for (size_t i = 0; i < m.data_.size(); ++i) {
    m.data_[i] = static_cast<float>(rng.Uniform(-bound, bound));
  }
  return m;
}

void Matrix::SetZero() {
  std::memset(data_.data(), 0, data_.size() * sizeof(float));
}

void Matrix::Axpy(float scale, const Matrix& other) {
  EVENTHIT_CHECK_EQ(rows_, other.rows_);
  EVENTHIT_CHECK_EQ(cols_, other.cols_);
  for (size_t i = 0; i < data_.size(); ++i) data_[i] += scale * other.data_[i];
}

double Matrix::SquaredNorm() const {
  double sum = 0.0;
  for (float v : data_) sum += static_cast<double>(v) * v;
  return sum;
}

void MatVec(const Matrix& w, const float* x, float* y) {
  const size_t rows = w.rows();
  const size_t cols = w.cols();
  for (size_t r = 0; r < rows; ++r) {
    const float* row = w.Row(r);
    float acc = 0.0f;
    for (size_t c = 0; c < cols; ++c) acc += row[c] * x[c];
    y[r] = acc;
  }
}

void MatVecAccum(const Matrix& w, const float* x, float* y) {
  const size_t rows = w.rows();
  const size_t cols = w.cols();
  for (size_t r = 0; r < rows; ++r) {
    const float* row = w.Row(r);
    float acc = 0.0f;
    for (size_t c = 0; c < cols; ++c) acc += row[c] * x[c];
    y[r] += acc;
  }
}

void MatTVecAccum(const Matrix& w, const float* dy, float* dx) {
  const size_t rows = w.rows();
  const size_t cols = w.cols();
  // Row-major friendly order: stream each row once, scaled by dy[r].
  for (size_t r = 0; r < rows; ++r) {
    const float scale = dy[r];
    if (scale == 0.0f) continue;
    const float* row = w.Row(r);
    for (size_t c = 0; c < cols; ++c) dx[c] += scale * row[c];
  }
}

void OuterAccum(Matrix& dw, const float* dy, const float* x) {
  const size_t rows = dw.rows();
  const size_t cols = dw.cols();
  for (size_t r = 0; r < rows; ++r) {
    const float scale = dy[r];
    if (scale == 0.0f) continue;
    float* row = dw.Row(r);
    for (size_t c = 0; c < cols; ++c) row[c] += scale * x[c];
  }
}

}  // namespace eventhit::nn
