// Single-layer LSTM over a fixed-length input sequence, with full
// backpropagation-through-time. EventHit consumes only the final hidden
// state, so the backward entry point takes the gradient of that state.
#ifndef EVENTHIT_NN_LSTM_H_
#define EVENTHIT_NN_LSTM_H_

#include <string>
#include <vector>

#include "common/rng.h"
#include "nn/backend.h"
#include "nn/matrix.h"
#include "nn/parameter.h"
#include "nn/workspace.h"

namespace eventhit::nn {

/// LSTM with input dim D and hidden dim Hd. Gate layout in the packed
/// pre-activation vector is [input, forget, cell, output], each Hd wide.
class Lstm {
 public:
  Lstm() = default;

  /// Glorot-initialised weights; the forget-gate bias starts at +1.0, the
  /// standard trick that prevents early vanishing of long-range signal.
  Lstm(std::string name, size_t input_dim, size_t hidden_dim, Rng& rng);

  size_t input_dim() const { return wx_.value.cols(); }
  size_t hidden_dim() const { return wx_.value.rows() / 4; }

  /// Runs the sequence (steps x input_dim, row-major in `inputs`) from zero
  /// initial state, caching activations for Backward. Returns the final
  /// hidden state h_M.
  Vec ForwardCached(const float* inputs, size_t steps);

  /// Inference-only forward; no cache, ping-pong buffers. Returns h_M.
  Vec Forward(const float* inputs, size_t steps) const;

  /// Batched inference over `batch` independent sequences, stored
  /// batch-minor and time-major: element (t, feature j, sequence b) lives
  /// at inputs[(t * input_dim() + j) * batch + b]. Writes the final hidden
  /// states into `h_out` as [hidden_dim() x batch] (same batch-minor
  /// layout). Each timestep computes all four gates for the whole batch
  /// with two GEMMs (Wx·X_t and Wh·H_{t-1}) instead of 2·batch MatVecs;
  /// scratch comes from `ws` (valid until its next Reset), so a warm
  /// Workspace makes the pass allocation-free. Per sequence the arithmetic
  /// replays Forward's summation order exactly (matrix.h), so results are
  /// bit-identical to the per-record path at any batch size.
  void ForwardBatch(const float* inputs, size_t steps, size_t batch,
                    float* h_out, Workspace& ws) const;

  /// Same, dispatching GEMMs and activations through `backend`'s kernel
  /// table (nn/backend.h). The blocked backend reproduces the overload
  /// above bit-for-bit; simd agrees within the documented tolerance and is
  /// itself batch-size invariant.
  void ForwardBatch(const float* inputs, size_t steps, size_t batch,
                    float* h_out, Workspace& ws, const Backend& backend) const;

  /// BPTT from the gradient of the final hidden state. Must follow a
  /// ForwardCached call; accumulates parameter gradients. If `dinputs` is
  /// non-null it must hold steps*input_dim floats and receives +=
  /// gradients w.r.t. the inputs.
  void Backward(const float* dh_final, float* dinputs = nullptr);

  void CollectParameters(ParameterRefs& out);
  void CollectParameters(ConstParameterRefs& out) const;

  const Parameter& wx() const { return wx_; }
  const Parameter& wh() const { return wh_; }
  const Parameter& bias() const { return bias_; }
  Parameter& mutable_wx() { return wx_; }
  Parameter& mutable_wh() { return wh_; }
  Parameter& mutable_bias() { return bias_; }

 private:
  // One timestep's cached activations for BPTT.
  struct StepCache {
    Vec gates;   // 4*Hd: post-activation i, f, g, o
    Vec cell;    // Hd: c_t
    Vec tanh_c;  // Hd: tanh(c_t)
    Vec hidden;  // Hd: h_t
  };

  void StepForward(const float* x, const float* h_prev, const float* c_prev,
                   StepCache& cache) const;

  Parameter wx_;    // 4*Hd x D
  Parameter wh_;    // 4*Hd x Hd
  Parameter bias_;  // 4*Hd x 1

  // Cache of the most recent ForwardCached call.
  std::vector<StepCache> cache_;
  const float* cached_inputs_ = nullptr;
  size_t cached_steps_ = 0;
};

}  // namespace eventhit::nn

#endif  // EVENTHIT_NN_LSTM_H_
