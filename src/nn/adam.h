// Adam optimizer (Kingma & Ba) over a registry of Parameters.
#ifndef EVENTHIT_NN_ADAM_H_
#define EVENTHIT_NN_ADAM_H_

#include <vector>

#include "nn/matrix.h"
#include "nn/parameter.h"

namespace eventhit::nn {

/// Hyper-parameters for Adam; the defaults match the original paper.
struct AdamOptions {
  double learning_rate = 1e-3;
  double beta1 = 0.9;
  double beta2 = 0.999;
  double epsilon = 1e-8;
  /// Global L2 gradient-norm clip applied before each step; <= 0 disables.
  double clip_norm = 5.0;
};

/// Owns per-parameter first/second moment buffers. Parameters are registered
/// once; Step() consumes the gradients accumulated in each Parameter::grad
/// and zeroes them afterwards.
class AdamOptimizer {
 public:
  AdamOptimizer(ParameterRefs params, AdamOptions options);

  /// Applies one Adam update from the accumulated gradients, then zeroes
  /// them. Returns the pre-clip global gradient norm.
  double Step();

  size_t step_count() const { return step_count_; }
  const AdamOptions& options() const { return options_; }
  void set_learning_rate(double lr) { options_.learning_rate = lr; }

 private:
  ParameterRefs params_;
  AdamOptions options_;
  std::vector<Matrix> moment1_;
  std::vector<Matrix> moment2_;
  size_t step_count_ = 0;
};

}  // namespace eventhit::nn

#endif  // EVENTHIT_NN_ADAM_H_
