// Fully connected (affine) layer: y = W x + b. Activation functions are
// applied by the caller so layers compose freely.
#ifndef EVENTHIT_NN_DENSE_H_
#define EVENTHIT_NN_DENSE_H_

#include <string>

#include "common/rng.h"
#include "nn/backend.h"
#include "nn/matrix.h"
#include "nn/parameter.h"

namespace eventhit::nn {

/// An affine transform with trainable weight and bias.
class Dense {
 public:
  Dense() = default;

  /// Glorot-initialised layer mapping `in_dim` -> `out_dim`. `name` prefixes
  /// the parameter names for diagnostics/serialization.
  Dense(std::string name, size_t in_dim, size_t out_dim, Rng& rng);

  size_t in_dim() const { return weight_.value.cols(); }
  size_t out_dim() const { return weight_.value.rows(); }

  /// y = W x + b. `x` has in_dim() elements; `y` is resized to out_dim().
  void Forward(const float* x, Vec& y) const;

  /// Batched forward over `batch` columns stored batch-minor: `x` is
  /// [in_dim() x batch] with the batch contiguous per feature row, `y` is
  /// [out_dim() x batch] and is fully overwritten. One GEMM instead of
  /// `batch` MatVecs; per column the arithmetic (and its summation order —
  /// see matrix.h) is identical to Forward, so results match bit-for-bit.
  void ForwardBatch(const float* x, size_t batch, float* y) const;

  /// Same, dispatching the GEMM through `backend`'s kernel table
  /// (nn/backend.h). The blocked backend reproduces the overload above
  /// bit-for-bit; simd agrees within the documented tolerance.
  void ForwardBatch(const float* x, size_t batch, float* y,
                    const Backend& backend) const;

  /// Given the input `x` used in Forward and the upstream gradient `dy`,
  /// accumulates dW, db and adds W^T dy into `dx` (which must be sized
  /// in_dim(); pass nullptr to skip input-gradient computation).
  void Backward(const float* x, const float* dy, float* dx);

  /// Registers this layer's parameters into `out`.
  void CollectParameters(ParameterRefs& out);
  void CollectParameters(ConstParameterRefs& out) const;

  const Parameter& weight() const { return weight_; }
  const Parameter& bias() const { return bias_; }
  Parameter& mutable_weight() { return weight_; }
  Parameter& mutable_bias() { return bias_; }

 private:
  Parameter weight_;  // out_dim x in_dim
  Parameter bias_;    // out_dim x 1
};

}  // namespace eventhit::nn

#endif  // EVENTHIT_NN_DENSE_H_
