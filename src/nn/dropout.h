// Inverted dropout: activations are zeroed with probability `rate` during
// training and scaled by 1/(1-rate) so inference needs no rescaling.
#ifndef EVENTHIT_NN_DROPOUT_H_
#define EVENTHIT_NN_DROPOUT_H_

#include "common/rng.h"
#include "nn/matrix.h"

namespace eventhit::nn {

/// Stateless apart from the mask of the most recent Forward call.
class Dropout {
 public:
  /// `rate` in [0, 1): the probability of dropping a unit.
  explicit Dropout(double rate);

  double rate() const { return rate_; }

  /// Training-mode forward: samples a fresh mask from `rng`, writes the
  /// masked activations to `y` (resized to n).
  void ForwardTrain(const float* x, size_t n, Rng& rng, Vec& y);

  /// Inference-mode forward: identity (inverted dropout).
  void ForwardEval(const float* x, size_t n, Vec& y) const;

  /// Backward using the mask of the last ForwardTrain: dx[i] = dy[i]*mask[i].
  void Backward(const float* dy, float* dx) const;

 private:
  double rate_;
  Vec mask_;  // Scaled keep mask from the last ForwardTrain.
};

}  // namespace eventhit::nn

#endif  // EVENTHIT_NN_DROPOUT_H_
