// Shared coefficients of the rational tanh approximation (activations.cc).
//
// The explicit-SIMD backend (backend_simd.cc) re-implements TanhRational
// with AVX2 intrinsics and must evaluate the *same* polynomial pair — a
// coefficient fork would silently violate the documented 1e-5 backend
// agreement bound (docs/BACKENDS.md). Both the scalar reference and the
// intrinsic kernels pull the constants from here so there is exactly one
// copy in the tree.
#ifndef EVENTHIT_NN_ACTIVATIONS_INL_H_
#define EVENTHIT_NN_ACTIVATIONS_INL_H_

#include <cstddef>

namespace eventhit::nn::detail {

// |tanh(x)| rounds to 1.0f beyond this, so the input clamps here first.
inline constexpr float kTanhClamp = 7.90531110763549805f;

// Odd numerator P(x) = x * poly(x^2), evaluated Horner-style from
// kTanhNum[0] down; even denominator Q(x) = poly(x^2) likewise. tanh(x) is
// approximated by P(x) / Q(x) on [-kTanhClamp, kTanhClamp].
inline constexpr float kTanhNum[] = {
    -2.76076847742355e-16f, 2.00018790482477e-13f, -8.60467152213735e-11f,
    5.12229709037114e-08f,  1.48572235717979e-05f, 6.37261928875436e-04f,
    4.89352455891786e-03f,
};
inline constexpr float kTanhDen[] = {
    1.19825839466702e-06f,
    1.18534705686654e-04f,
    2.26843463243900e-03f,
    4.89352518554385e-03f,
};

inline constexpr size_t kTanhNumTerms = sizeof(kTanhNum) / sizeof(float);
inline constexpr size_t kTanhDenTerms = sizeof(kTanhDen) / sizeof(float);

}  // namespace eventhit::nn::detail

#endif  // EVENTHIT_NN_ACTIVATIONS_INL_H_
