#include "nn/backend.h"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "nn/activations.h"
#include "nn/gemm.h"

namespace eventhit::nn {

#if EVENTHIT_NN_HAVE_AVX2
// Implemented in backend_simd.cc, which is compiled with -mavx2 -mfma.
// Declared here (not in a header) so nothing outside the dispatch table can
// call them without going through the SimdAvailable() cpuid gate.
namespace detail {
void GemmZeroAvx2(size_t m, size_t n, size_t k, const float* a, size_t lda,
                  const float* b, size_t ldb, float* c, size_t ldc);
void GemmAvx2(size_t m, size_t n, size_t k, const float* a, size_t lda,
              const float* b, size_t ldb, float* c, size_t ldc);
void TanhInPlaceAvx2(float* x, size_t n);
void SigmoidInPlaceAvx2(float* x, size_t n);
void Int8GemmZeroAvx2(size_t m, size_t n, size_t k, const int8_t* a,
                      size_t lda, const int8_t* b, size_t ldb, float scale,
                      float* c, size_t ldc);
}  // namespace detail
#endif  // EVENTHIT_NN_HAVE_AVX2

namespace {

// --- scalar reference kernels ---------------------------------------------
//
// Same summation order as the blocked kernels (gemm.cc): for GemmZero the
// first k-term is a plain multiply, every later term a separate multiply
// then add, ascending k. With identical float operations in identical order
// the scalar and blocked backends are bit-identical — scalar is the oracle
// the tiled/vectorized paths are tested against, not a tolerance partner.

void ScalarGemmZero(size_t m, size_t n, size_t k, const float* a, size_t lda,
                    const float* b, size_t ldb, float* c, size_t ldc) {
  for (size_t i = 0; i < m; ++i) {
    const float* arow = a + i * lda;
    float* crow = c + i * ldc;
    for (size_t j = 0; j < n; ++j) {
      float acc = 0.0f;
      if (k > 0) {
        acc = arow[0] * b[j];
        for (size_t kk = 1; kk < k; ++kk) acc += arow[kk] * b[kk * ldb + j];
      }
      crow[j] = acc;
    }
  }
}

void ScalarGemm(size_t m, size_t n, size_t k, const float* a, size_t lda,
                const float* b, size_t ldb, float* c, size_t ldc) {
  for (size_t i = 0; i < m; ++i) {
    const float* arow = a + i * lda;
    float* crow = c + i * ldc;
    for (size_t j = 0; j < n; ++j) {
      float acc = crow[j];
      for (size_t kk = 0; kk < k; ++kk) acc += arow[kk] * b[kk * ldb + j];
      crow[j] = acc;
    }
  }
}

// --- generic int8 GEMM -----------------------------------------------------
//
// int32 accumulation is exact (|a*b| <= 127*127, k is at most a few
// hundred, so sums stay far from overflow) and integer addition is
// associative — any vectorization of this loop nest, and the AVX2 variant
// in backend_simd.cc, produce identical bits. The column-block accumulator
// keeps the inner loops unit-stride so the baseline build auto-vectorizes.
constexpr size_t kInt8ColBlock = 256;

void GenericInt8GemmZero(size_t m, size_t n, size_t k, const int8_t* a,
                         size_t lda, const int8_t* b, size_t ldb, float scale,
                         float* c, size_t ldc) {
  int32_t acc[kInt8ColBlock];
  for (size_t j0 = 0; j0 < n; j0 += kInt8ColBlock) {
    const size_t nb = std::min(kInt8ColBlock, n - j0);
    for (size_t i = 0; i < m; ++i) {
      std::memset(acc, 0, nb * sizeof(int32_t));
      const int8_t* arow = a + i * lda;
      for (size_t kk = 0; kk < k; ++kk) {
        const int32_t aik = arow[kk];
        const int8_t* brow = b + kk * ldb + j0;
        for (size_t j = 0; j < nb; ++j) {
          acc[j] += aik * static_cast<int32_t>(brow[j]);
        }
      }
      float* crow = c + i * ldc + j0;
      for (size_t j = 0; j < nb; ++j) {
        crow[j] = scale * static_cast<float>(acc[j]);
      }
    }
  }
}

// --- dispatch tables -------------------------------------------------------

constexpr BackendKernels kScalarKernels = {
    ScalarGemmZero, ScalarGemm, TanhInPlace, SigmoidInPlace,
    GenericInt8GemmZero};

constexpr BackendKernels kBlockedKernels = {
    GemmZero, Gemm, TanhInPlace, SigmoidInPlace, GenericInt8GemmZero};

#if EVENTHIT_NN_HAVE_AVX2
constexpr BackendKernels kSimdKernels = {
    detail::GemmZeroAvx2, detail::GemmAvx2, detail::TanhInPlaceAvx2,
    detail::SigmoidInPlaceAvx2, detail::Int8GemmZeroAvx2};
#endif

// The int8 backend keeps the *blocked* float kernels for activations and
// bias work even when AVX2 is present: the float side then computes the
// same bits on every machine, and the int8 GEMM is integer-exact, so int8
// scores — and the conformal thresholds recalibrated on them — are
// machine-independent. Only the int8 product itself upgrades to AVX2
// (identical bits, just faster).
BackendKernels MakeInt8Kernels() {
  BackendKernels kernels = kBlockedKernels;
#if EVENTHIT_NN_HAVE_AVX2
  if (SimdAvailable()) kernels.int8_gemm_zero = detail::Int8GemmZeroAvx2;
#endif
  return kernels;
}

}  // namespace

bool SimdAvailable() {
#if EVENTHIT_NN_HAVE_AVX2 && (defined(__x86_64__) || defined(__i386__))
  // __builtin_cpu_supports returns the feature's mask *bit*, not 0/1 —
  // always compare against zero.
  static const bool available = __builtin_cpu_supports("avx2") != 0 &&
                                __builtin_cpu_supports("fma") != 0;
  return available;
#else
  return false;
#endif
}

const Backend& GetBackend(BackendKind kind) {
  static const Backend scalar{BackendKind::kScalar, BackendKind::kScalar,
                              "scalar", &kScalarKernels};
  static const Backend blocked{BackendKind::kBlocked, BackendKind::kBlocked,
                               "blocked", &kBlockedKernels};
  // simd falls back to the blocked table when the CPU (or build) lacks
  // AVX2+FMA; `effective` records which kernels actually run.
  static const Backend simd = [] {
    Backend b;
    b.kind = BackendKind::kSimd;
    b.name = "simd";
#if EVENTHIT_NN_HAVE_AVX2
    if (SimdAvailable()) {
      b.effective = BackendKind::kSimd;
      b.kernels = &kSimdKernels;
      return b;
    }
#endif
    b.effective = BackendKind::kBlocked;
    b.kernels = &kBlockedKernels;
    return b;
  }();
  static const BackendKernels int8_kernels = MakeInt8Kernels();
  static const Backend int8{BackendKind::kInt8, BackendKind::kInt8, "int8",
                            &int8_kernels};
  switch (kind) {
    case BackendKind::kScalar:
      return scalar;
    case BackendKind::kBlocked:
      return blocked;
    case BackendKind::kSimd:
      return simd;
    case BackendKind::kInt8:
      return int8;
  }
  return blocked;  // unreachable; keeps -Wreturn-type quiet
}

const char* BackendKindName(BackendKind kind) {
  switch (kind) {
    case BackendKind::kScalar:
      return "scalar";
    case BackendKind::kBlocked:
      return "blocked";
    case BackendKind::kSimd:
      return "simd";
    case BackendKind::kInt8:
      return "int8";
  }
  return "unknown";
}

Result<BackendKind> ParseBackendKind(const std::string& name) {
  if (name == "scalar") return BackendKind::kScalar;
  if (name == "blocked") return BackendKind::kBlocked;
  if (name == "simd") return BackendKind::kSimd;
  if (name == "int8") return BackendKind::kInt8;
  if (name == "auto") {
    return SimdAvailable() ? BackendKind::kSimd : BackendKind::kBlocked;
  }
  return InvalidArgumentError(
      "unknown nn backend '" + name +
      "' (choices: scalar, blocked, simd, int8, auto)");
}

std::vector<BackendKind> AllBackendKinds() {
  return {BackendKind::kScalar, BackendKind::kBlocked, BackendKind::kSimd,
          BackendKind::kInt8};
}

void QuantizeInt8(const float* x, size_t n, float inv_scale, int8_t* out) {
  for (size_t i = 0; i < n; ++i) {
    // nearbyintf honours the default round-to-nearest-even mode; the clamp
    // keeps the range symmetric at ±127 so negation stays exact.
    float v = std::nearbyintf(x[i] * inv_scale);
    v = std::min(std::max(v, -127.0f), 127.0f);
    out[i] = static_cast<int8_t>(v);
  }
}

}  // namespace eventhit::nn
