// Blocked, cache-aware GEMM micro-kernels for the batched inference path.
//
// Why hand-rolled: EventHit's matrices are small (tens of rows/columns), so
// a general BLAS dependency buys nothing, but batching B prediction windows
// turns the per-record MatVecs into C += A*B products with B-fold weight
// reuse — the difference between a memory-bound and a compute-bound forward
// pass. The kernels here are written so a plain `-O3` build auto-vectorizes
// them: the inner loop runs unit-stride over independent output columns
// (no reduction, so no reassociation licence is needed), A is register-tiled
// four rows at a time, and all pointers are declared non-aliasing.
//
// Summation-order contract (see also matrix.h): every output element is
// accumulated in `float`, adding k-terms in ascending-k order starting from
// the existing value of C. This is exactly the order MatVec/MatVecAccum use,
// so a batched forward pass that (a) zero-fills C, (b) runs one Gemm per
// operand, and (c) adds the bias last reproduces the scalar path's results
// bit-for-bit at any batch size. Conformal calibration scores are therefore
// not perturbed by batching (eventhit_model_test pins this).
#ifndef EVENTHIT_NN_GEMM_H_
#define EVENTHIT_NN_GEMM_H_

#include <cstddef>

namespace eventhit::nn {

/// C += A * B.
///
/// A is m x k (row-major, leading dimension `lda` >= k), B is k x n
/// (leading dimension `ldb` >= n), C is m x n (leading dimension
/// `ldc` >= n). The buffers must not overlap. Each C element accumulates
/// its k terms in ascending-k order on top of the incoming value, in
/// `float` (the summation-order contract above). Degenerate shapes
/// (m, n or k of zero) are no-ops.
void Gemm(size_t m, size_t n, size_t k, const float* a, size_t lda,
          const float* b, size_t ldb, float* c, size_t ldc);

/// C = A * B (overwrite): identical to zero-filling C and calling Gemm, but
/// without the memset traffic or the destination reload — the k==0 term
/// replaces the implicit zero. Same shape conventions, aliasing rules and
/// ascending-k float order as Gemm, so results match the zero-fill + Gemm
/// sequence bit-for-bit (up to the sign of a zero product). With k == 0,
/// C is zero-filled. This is the kernel the batched forward passes use for
/// their from-zero products (nn/matrix.h summation-order contract).
void GemmZero(size_t m, size_t n, size_t k, const float* a, size_t lda,
              const float* b, size_t ldb, float* c, size_t ldc);

/// C += A^T * B, with A stored k x m (leading dimension `lda` >= m).
///
/// The transposed-first-operand form: column i of the stored A is row i of
/// the effective operand, so A is walked down its rows while C and B stream
/// unit-stride — no transpose copy needed for contraction-major operands
/// (e.g. a batched weight gradient dW += dY^T * X with activations stored
/// batch-minor). Same shape conventions, aliasing rules and summation-order
/// contract as Gemm.
void GemmTN(size_t m, size_t n, size_t k, const float* a, size_t lda,
            const float* b, size_t ldb, float* c, size_t ldc);

}  // namespace eventhit::nn

#endif  // EVENTHIT_NN_GEMM_H_
