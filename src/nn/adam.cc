#include "nn/adam.h"

#include <cmath>

#include "common/check.h"

namespace eventhit::nn {

AdamOptimizer::AdamOptimizer(ParameterRefs params, AdamOptions options)
    : params_(std::move(params)), options_(options) {
  moment1_.reserve(params_.size());
  moment2_.reserve(params_.size());
  for (const Parameter* p : params_) {
    moment1_.emplace_back(p->value.rows(), p->value.cols());
    moment2_.emplace_back(p->value.rows(), p->value.cols());
  }
}

double AdamOptimizer::Step() {
  double norm = 0.0;
  if (options_.clip_norm > 0.0) {
    norm = ClipGradientNorm(params_, options_.clip_norm);
  } else {
    double total = 0.0;
    for (const Parameter* p : params_) total += p->grad.SquaredNorm();
    norm = std::sqrt(total);
  }

  ++step_count_;
  const double bias1 = 1.0 - std::pow(options_.beta1, static_cast<double>(step_count_));
  const double bias2 = 1.0 - std::pow(options_.beta2, static_cast<double>(step_count_));
  const auto b1 = static_cast<float>(options_.beta1);
  const auto b2 = static_cast<float>(options_.beta2);

  for (size_t k = 0; k < params_.size(); ++k) {
    Parameter* p = params_[k];
    float* value = p->value.data();
    float* grad = p->grad.data();
    float* m1 = moment1_[k].data();
    float* m2 = moment2_[k].data();
    const size_t n = p->value.size();
    for (size_t i = 0; i < n; ++i) {
      m1[i] = b1 * m1[i] + (1.0f - b1) * grad[i];
      m2[i] = b2 * m2[i] + (1.0f - b2) * grad[i] * grad[i];
      const double m_hat = static_cast<double>(m1[i]) / bias1;
      const double v_hat = static_cast<double>(m2[i]) / bias2;
      value[i] -= static_cast<float>(options_.learning_rate * m_hat /
                                     (std::sqrt(v_hat) + options_.epsilon));
    }
    p->grad.SetZero();
  }
  return norm;
}

}  // namespace eventhit::nn
