#include "nn/activations.h"

#include <algorithm>

#include "nn/activations_inl.h"

namespace eventhit::nn {
namespace {

// Rational minimax approximation of tanh on [-7.905, 7.905] (the standard
// 13/6-degree odd/even pair; coefficients in activations_inl.h, shared with
// the AVX2 backend). It is branch-free — clamp via min/max, polynomials,
// one divide — so the element-wise loops below auto-vectorize under plain
// -O3 with baseline SSE2: the inference hot path makes no libm calls.
// Absolute error is under 4e-7 everywhere and a few ulps in the core range,
// far inside the model's 1e-5 score-agreement bound.
//
// Determinism: every operation is IEEE and lane-wise identical whether the
// compiler vectorizes or not (no FMA contraction on baseline x86-64, no
// reassociation without -ffast-math), so scalar and batched forward passes
// calling these helpers stay bit-identical (see nn/matrix.h).
inline float TanhRational(float x) {
  x = std::min(std::max(x, -detail::kTanhClamp), detail::kTanhClamp);
  const float x2 = x * x;
  float p = detail::kTanhNum[0];
  for (size_t i = 1; i < detail::kTanhNumTerms; ++i) {
    p = p * x2 + detail::kTanhNum[i];
  }
  p = p * x;
  float q = detail::kTanhDen[0];
  for (size_t i = 1; i < detail::kTanhDenTerms; ++i) {
    q = q * x2 + detail::kTanhDen[i];
  }
  return p / q;
}

// sigmoid(x) = (1 + tanh(x/2)) / 2, exact at 0 and saturating to exactly
// 0/1, so probability outputs stay in [0, 1].
inline float SigmoidRational(float x) {
  return 0.5f + 0.5f * TanhRational(0.5f * x);
}

}  // namespace

float SigmoidScalar(float x) { return SigmoidRational(x); }

float TanhScalar(float x) { return TanhRational(x); }

void TanhInPlace(float* x, size_t n) {
  for (size_t i = 0; i < n; ++i) x[i] = TanhRational(x[i]);
}

void SigmoidInPlace(float* x, size_t n) {
  for (size_t i = 0; i < n; ++i) x[i] = SigmoidRational(x[i]);
}

void ReluInPlace(float* x, size_t n) {
  for (size_t i = 0; i < n; ++i) x[i] = x[i] > 0.0f ? x[i] : 0.0f;
}

void TanhBackward(const float* y, const float* dy, float* dx, size_t n) {
  for (size_t i = 0; i < n; ++i) dx[i] = dy[i] * (1.0f - y[i] * y[i]);
}

void SigmoidBackward(const float* y, const float* dy, float* dx, size_t n) {
  for (size_t i = 0; i < n; ++i) dx[i] = dy[i] * y[i] * (1.0f - y[i]);
}

void ReluBackward(const float* y, const float* dy, float* dx, size_t n) {
  for (size_t i = 0; i < n; ++i) dx[i] = y[i] > 0.0f ? dy[i] : 0.0f;
}

}  // namespace eventhit::nn
