#include "nn/activations.h"

#include <cmath>

namespace eventhit::nn {

float SigmoidScalar(float x) {
  if (x >= 0.0f) {
    const float z = std::exp(-x);
    return 1.0f / (1.0f + z);
  }
  const float z = std::exp(x);
  return z / (1.0f + z);
}

float TanhScalar(float x) { return std::tanh(x); }

void TanhInPlace(float* x, size_t n) {
  for (size_t i = 0; i < n; ++i) x[i] = std::tanh(x[i]);
}

void SigmoidInPlace(float* x, size_t n) {
  for (size_t i = 0; i < n; ++i) x[i] = SigmoidScalar(x[i]);
}

void ReluInPlace(float* x, size_t n) {
  for (size_t i = 0; i < n; ++i) x[i] = x[i] > 0.0f ? x[i] : 0.0f;
}

void TanhBackward(const float* y, const float* dy, float* dx, size_t n) {
  for (size_t i = 0; i < n; ++i) dx[i] = dy[i] * (1.0f - y[i] * y[i]);
}

void SigmoidBackward(const float* y, const float* dy, float* dx, size_t n) {
  for (size_t i = 0; i < n; ++i) dx[i] = dy[i] * y[i] * (1.0f - y[i]);
}

void ReluBackward(const float* y, const float* dy, float* dx, size_t n) {
  for (size_t i = 0; i < n; ++i) dx[i] = y[i] > 0.0f ? dy[i] : 0.0f;
}

}  // namespace eventhit::nn
