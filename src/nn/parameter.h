// Trainable parameter: value plus gradient accumulator. Layers expose their
// parameters so an optimizer can own the update step (Adam, SGD) without
// knowing layer internals.
#ifndef EVENTHIT_NN_PARAMETER_H_
#define EVENTHIT_NN_PARAMETER_H_

#include <string>
#include <vector>

#include "nn/matrix.h"

namespace eventhit::nn {

/// A named weight tensor with its gradient buffer. Bias vectors are stored
/// as n x 1 matrices so optimizers treat everything uniformly.
struct Parameter {
  std::string name;
  Matrix value;
  Matrix grad;

  Parameter() = default;
  Parameter(std::string param_name, Matrix initial)
      : name(std::move(param_name)),
        value(std::move(initial)),
        grad(value.rows(), value.cols()) {}
};

/// Non-owning list of parameters assembled from all layers of a model.
using ParameterRefs = std::vector<Parameter*>;

/// Read-only variant, assembled by the const CollectParameters overloads so
/// inspection paths (ParameterCount, Save) need no const_cast.
using ConstParameterRefs = std::vector<const Parameter*>;

/// Sets every gradient in `params` to zero.
void ZeroGradients(const ParameterRefs& params);

/// Scales every gradient by `scale` (e.g. 1/batch_size).
void ScaleGradients(const ParameterRefs& params, float scale);

/// Global L2 gradient-norm clipping: if the joint norm exceeds `max_norm`,
/// rescales all gradients by max_norm / norm. Returns the pre-clip norm.
double ClipGradientNorm(const ParameterRefs& params, double max_norm);

/// Total number of scalar weights across `params`.
size_t ParameterCount(const ConstParameterRefs& params);
size_t ParameterCount(const ParameterRefs& params);

}  // namespace eventhit::nn

#endif  // EVENTHIT_NN_PARAMETER_H_
