// Int8-quantized mirrors of the inference layers (docs/BACKENDS.md §int8).
//
// Scheme: per-tensor symmetric quantization. A float tensor W maps to
// int8 via scale s_W = max|W| / 127 and q = clamp(rne(w / s_W), ±127);
// activations quantize the same way with a STATIC scale fixed at
// calibration time. Each layer computes
//
//   y = (s_W * s_x) * (Q(W) · Q(x))        [int32 accumulation]
//
// with one float multiply per output (the dequant) and float bias add;
// activations between layers stay float. Two properties follow:
//
//  * Batch invariance: quantization is element-wise and the int8 GEMM is
//    exact integer arithmetic, so a record's scores do not depend on the
//    batch it rides in — the fleet's solo==batched digest contract holds
//    under int8 (int8_test.cc checks bits).
//  * Machine invariance: the backend's float kernels are the blocked set
//    (backend.cc), so int8 scores — and conformal thresholds recalibrated
//    on them — reproduce bit-for-bit across hosts with or without AVX2.
//
// Activation scales: LSTM hidden states, tanh outputs, and every MLP
// hidden activation are mathematically bounded in (-1, 1), so their scale
// is the analytic 1/127. Only the model *inputs* (standardized covariates)
// are unbounded; their scale comes from the max-abs over the calibration
// split (EventHitModel::CalibrateInt8), with out-of-range test values
// saturating at ±127. Quantization perturbs scores, so conformal
// thresholds MUST be recalibrated on int8 scores before the guarantees
// mean anything — eval::TrainEventHit does this when the backend is int8.
#ifndef EVENTHIT_NN_INT8_H_
#define EVENTHIT_NN_INT8_H_

#include <cstdint>
#include <vector>

#include "nn/backend.h"
#include "nn/dense.h"
#include "nn/lstm.h"
#include "nn/matrix.h"
#include "nn/mlp.h"
#include "nn/workspace.h"

namespace eventhit::nn {

/// A row-major int8 weight matrix with its per-tensor dequant scale.
struct Int8Tensor {
  std::vector<int8_t> data;  // rows x cols, row-major
  size_t rows = 0;
  size_t cols = 0;
  float scale = 1.0f;  // float value ≈ scale * int8 value
};

/// Quantizes a float matrix with scale = max|w| / 127 (1.0 for an all-zero
/// matrix, so dequant stays well-defined).
Int8Tensor QuantizeTensor(const Matrix& w);

/// Int8 mirror of Dense: y = (s_W * s_x) * (Q(W) · Q(x)) + b.
struct Int8Dense {
  Int8Tensor weight;
  Vec bias;
  float in_scale = 1.0f;  // static activation scale for this layer's input

  /// Quantizes `dense`'s weight; `in_scale` is the static scale the input
  /// activations will be quantized with at inference time.
  static Int8Dense FromFloat(const Dense& dense, float in_scale);

  size_t in_dim() const { return weight.cols; }
  size_t out_dim() const { return weight.rows; }

  /// Batch-minor forward matching Dense::ForwardBatch's layout: `x` is
  /// [in_dim x batch] float, `y` [out_dim x batch], overwritten. Scratch
  /// (the quantized input) comes from `ws`.
  void ForwardBatch(const float* x, size_t batch, float* y, Workspace& ws,
                    const Backend& backend) const;
};

/// Int8 mirror of Lstm: both weight matrices quantized per-tensor; the
/// input sequence is quantized per step with the static `x_scale`, the
/// recurrent hidden state with `h_scale` (analytically 1/127 since
/// |h| < 1). Gate math, cell state, and activations stay float.
struct Int8Lstm {
  Int8Tensor wx;  // 4*Hd x D
  Int8Tensor wh;  // 4*Hd x Hd
  Vec bias;       // 4*Hd
  float x_scale = 1.0f;
  float h_scale = 1.0f;
  size_t input_dim = 0;
  size_t hidden_dim = 0;

  static Int8Lstm FromFloat(const Lstm& lstm, float x_scale, float h_scale);

  /// Same layout contract as Lstm::ForwardBatch (time-major, batch-minor
  /// inputs; h_out is [hidden_dim x batch]).
  void ForwardBatch(const float* inputs, size_t steps, size_t batch,
                    float* h_out, Workspace& ws, const Backend& backend) const;
};

/// Int8 mirror of Mlp: every Dense layer quantized; tanh between layers in
/// float. `in_scale` applies to the network input; hidden activations use
/// the analytic tanh bound (scale 1/127).
struct Int8Mlp {
  std::vector<Int8Dense> layers;

  static Int8Mlp FromFloat(const Mlp& mlp, float in_scale);

  size_t out_dim() const { return layers.back().out_dim(); }

  /// Same layout contract as Mlp::ForwardBatch; logits are float.
  void ForwardBatch(const float* x, size_t batch, float* logits, Workspace& ws,
                    const Backend& backend) const;
};

}  // namespace eventhit::nn

#endif  // EVENTHIT_NN_INT8_H_
