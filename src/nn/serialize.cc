#include "nn/serialize.h"

#include <cstdint>
#include <cstdio>
#include <memory>

namespace eventhit::nn {
namespace {

constexpr uint32_t kMagic = 0x45564849;  // "EVHI"
constexpr uint32_t kVersion = 1;

struct FileCloser {
  void operator()(std::FILE* f) const {
    if (f != nullptr) std::fclose(f);
  }
};
using FilePtr = std::unique_ptr<std::FILE, FileCloser>;

bool WriteU32(std::FILE* f, uint32_t v) {
  return std::fwrite(&v, sizeof(v), 1, f) == 1;
}

bool ReadU32(std::FILE* f, uint32_t* v) {
  return std::fread(v, sizeof(*v), 1, f) == 1;
}

}  // namespace

Status SaveParameters(const ParameterRefs& params, const std::string& path) {
  FilePtr file(std::fopen(path.c_str(), "wb"));
  if (file == nullptr) {
    return InvalidArgumentError("cannot open for writing: " + path);
  }
  std::FILE* f = file.get();
  if (!WriteU32(f, kMagic) || !WriteU32(f, kVersion) ||
      !WriteU32(f, static_cast<uint32_t>(params.size()))) {
    return InternalError("short write (header): " + path);
  }
  for (const Parameter* p : params) {
    const auto name_len = static_cast<uint32_t>(p->name.size());
    if (!WriteU32(f, name_len) ||
        std::fwrite(p->name.data(), 1, name_len, f) != name_len ||
        !WriteU32(f, static_cast<uint32_t>(p->value.rows())) ||
        !WriteU32(f, static_cast<uint32_t>(p->value.cols())) ||
        std::fwrite(p->value.data(), sizeof(float), p->value.size(), f) !=
            p->value.size()) {
      return InternalError("short write (parameter " + p->name + "): " + path);
    }
  }
  return OkStatus();
}

Status LoadParameters(const ParameterRefs& params, const std::string& path) {
  FilePtr file(std::fopen(path.c_str(), "rb"));
  if (file == nullptr) {
    return NotFoundError("cannot open for reading: " + path);
  }
  std::FILE* f = file.get();
  uint32_t magic = 0, version = 0, count = 0;
  if (!ReadU32(f, &magic) || !ReadU32(f, &version) || !ReadU32(f, &count)) {
    return InvalidArgumentError("truncated header: " + path);
  }
  if (magic != kMagic) return InvalidArgumentError("bad magic: " + path);
  if (version != kVersion) return InvalidArgumentError("bad version: " + path);
  if (count != params.size()) {
    return InvalidArgumentError("parameter count mismatch in " + path);
  }
  for (Parameter* p : params) {
    uint32_t name_len = 0;
    if (!ReadU32(f, &name_len)) {
      return InvalidArgumentError("truncated name length: " + path);
    }
    std::string name(name_len, '\0');
    if (std::fread(name.data(), 1, name_len, f) != name_len) {
      return InvalidArgumentError("truncated name: " + path);
    }
    if (name != p->name) {
      return InvalidArgumentError("parameter name mismatch: expected " +
                                  p->name + ", found " + name);
    }
    uint32_t rows = 0, cols = 0;
    if (!ReadU32(f, &rows) || !ReadU32(f, &cols)) {
      return InvalidArgumentError("truncated shape for " + name);
    }
    if (rows != p->value.rows() || cols != p->value.cols()) {
      return InvalidArgumentError("shape mismatch for " + name);
    }
    if (std::fread(p->value.data(), sizeof(float), p->value.size(), f) !=
        p->value.size()) {
      return InvalidArgumentError("truncated data for " + name);
    }
  }
  return OkStatus();
}

}  // namespace eventhit::nn
