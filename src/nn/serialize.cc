#include "nn/serialize.h"

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <memory>
#include <vector>

namespace eventhit::nn {
namespace {

constexpr uint32_t kMagic = 0x45564849;  // "EVHI"
constexpr uint32_t kVersion = 1;
// Upper bound on a stored parameter-name length; real names are tens of
// bytes, so anything larger is a corrupt stream, not a model file.
constexpr uint32_t kMaxNameLength = 4096;

struct FileCloser {
  void operator()(std::FILE* f) const {
    if (f != nullptr) std::fclose(f);
  }
};
using FilePtr = std::unique_ptr<std::FILE, FileCloser>;

bool WriteU32(std::FILE* f, uint32_t v) {
  return std::fwrite(&v, sizeof(v), 1, f) == 1;
}

bool ReadU32(std::FILE* f, uint32_t* v) {
  return std::fread(v, sizeof(*v), 1, f) == 1;
}

}  // namespace

Status SaveParameters(const ConstParameterRefs& params,
                      const std::string& path) {
  FilePtr file(std::fopen(path.c_str(), "wb"));
  if (file == nullptr) {
    return InvalidArgumentError("cannot open for writing: " + path);
  }
  std::FILE* f = file.get();
  if (!WriteU32(f, kMagic) || !WriteU32(f, kVersion) ||
      !WriteU32(f, static_cast<uint32_t>(params.size()))) {
    return InternalError("short write (header): " + path);
  }
  for (const Parameter* p : params) {
    const auto name_len = static_cast<uint32_t>(p->name.size());
    if (!WriteU32(f, name_len) ||
        std::fwrite(p->name.data(), 1, name_len, f) != name_len ||
        !WriteU32(f, static_cast<uint32_t>(p->value.rows())) ||
        !WriteU32(f, static_cast<uint32_t>(p->value.cols())) ||
        std::fwrite(p->value.data(), sizeof(float), p->value.size(), f) !=
            p->value.size()) {
      return InternalError("short write (parameter " + p->name + "): " + path);
    }
  }
  return OkStatus();
}

Status LoadParameters(const ParameterRefs& params, const std::string& path) {
  FilePtr file(std::fopen(path.c_str(), "rb"));
  if (file == nullptr) {
    return NotFoundError("cannot open for reading: " + path);
  }
  std::FILE* f = file.get();
  uint32_t magic = 0, version = 0, count = 0;
  if (!ReadU32(f, &magic) || !ReadU32(f, &version) || !ReadU32(f, &count)) {
    return InvalidArgumentError("truncated header: " + path);
  }
  if (magic != kMagic) return InvalidArgumentError("bad magic: " + path);
  if (version != kVersion) return InvalidArgumentError("bad version: " + path);
  if (count != params.size()) {
    return InvalidArgumentError("parameter count mismatch in " + path);
  }
  // Two-phase load: every fread and every stored name/shape is validated
  // into staging buffers first, and the destination parameters are only
  // touched after the whole file checks out — a truncated or corrupt
  // checkpoint must not leave a half-overwritten model behind.
  std::vector<std::vector<float>> staged(params.size());
  for (size_t idx = 0; idx < params.size(); ++idx) {
    const Parameter* p = params[idx];
    uint32_t name_len = 0;
    if (!ReadU32(f, &name_len)) {
      return InvalidArgumentError("truncated name length: " + path);
    }
    // Names are short identifiers; a huge length means a corrupt stream,
    // so reject it before allocating.
    if (name_len > kMaxNameLength) {
      return InvalidArgumentError("implausible parameter name length in " +
                                  path);
    }
    std::string name(name_len, '\0');
    if (std::fread(name.data(), 1, name_len, f) != name_len) {
      return InvalidArgumentError("truncated name: " + path);
    }
    if (name != p->name) {
      return InvalidArgumentError("parameter name mismatch: expected " +
                                  p->name + ", found " + name);
    }
    uint32_t rows = 0, cols = 0;
    if (!ReadU32(f, &rows) || !ReadU32(f, &cols)) {
      return InvalidArgumentError("truncated shape for " + name);
    }
    if (rows != p->value.rows() || cols != p->value.cols()) {
      return InvalidArgumentError("shape mismatch for " + name);
    }
    staged[idx].resize(p->value.size());
    if (std::fread(staged[idx].data(), sizeof(float), staged[idx].size(), f) !=
        staged[idx].size()) {
      return InvalidArgumentError("truncated data for " + name);
    }
  }
  // The stream must end exactly after the last parameter; trailing bytes
  // mean the file does not describe this parameter set.
  char extra = 0;
  if (std::fread(&extra, 1, 1, f) != 0) {
    return InvalidArgumentError("trailing data after parameters: " + path);
  }
  for (size_t idx = 0; idx < params.size(); ++idx) {
    std::copy(staged[idx].begin(), staged[idx].end(), params[idx]->value.data());
  }
  return OkStatus();
}

}  // namespace eventhit::nn
