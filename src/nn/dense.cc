#include "nn/dense.h"

#include "common/check.h"
#include "nn/gemm.h"

namespace eventhit::nn {

Dense::Dense(std::string name, size_t in_dim, size_t out_dim, Rng& rng)
    : weight_(name + ".W", Matrix::GlorotUniform(out_dim, in_dim, rng)),
      bias_(name + ".b", Matrix::Zeros(out_dim, 1)) {
  EVENTHIT_CHECK_GT(in_dim, 0u);
  EVENTHIT_CHECK_GT(out_dim, 0u);
}

void Dense::Forward(const float* x, Vec& y) const {
  y.resize(out_dim());
  MatVec(weight_.value, x, y.data());
  const float* b = bias_.value.data();
  for (size_t i = 0; i < y.size(); ++i) y[i] += b[i];
}

void Dense::ForwardBatch(const float* x, size_t batch, float* y) const {
  EVENTHIT_CHECK_GT(batch, 0u);
  const size_t out = out_dim();
  GemmZero(out, batch, in_dim(), weight_.value.data(), in_dim(), x, batch, y,
           batch);
  const float* b = bias_.value.data();
  for (size_t i = 0; i < out; ++i) {
    float* row = y + i * batch;
    for (size_t j = 0; j < batch; ++j) row[j] += b[i];
  }
}

void Dense::ForwardBatch(const float* x, size_t batch, float* y,
                         const Backend& backend) const {
  EVENTHIT_CHECK_GT(batch, 0u);
  const size_t out = out_dim();
  backend.kernels->gemm_zero(out, batch, in_dim(), weight_.value.data(),
                             in_dim(), x, batch, y, batch);
  const float* b = bias_.value.data();
  for (size_t i = 0; i < out; ++i) {
    float* row = y + i * batch;
    for (size_t j = 0; j < batch; ++j) row[j] += b[i];
  }
}

void Dense::Backward(const float* x, const float* dy, float* dx) {
  OuterAccum(weight_.grad, dy, x);
  float* db = bias_.grad.data();
  for (size_t i = 0; i < out_dim(); ++i) db[i] += dy[i];
  if (dx != nullptr) {
    MatTVecAccum(weight_.value, dy, dx);
  }
}

void Dense::CollectParameters(ParameterRefs& out) {
  out.push_back(&weight_);
  out.push_back(&bias_);
}

void Dense::CollectParameters(ConstParameterRefs& out) const {
  out.push_back(&weight_);
  out.push_back(&bias_);
}

}  // namespace eventhit::nn
