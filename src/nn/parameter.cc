#include "nn/parameter.h"

#include <cmath>

namespace eventhit::nn {

void ZeroGradients(const ParameterRefs& params) {
  for (Parameter* p : params) p->grad.SetZero();
}

void ScaleGradients(const ParameterRefs& params, float scale) {
  for (Parameter* p : params) {
    float* g = p->grad.data();
    for (size_t i = 0; i < p->grad.size(); ++i) g[i] *= scale;
  }
}

double ClipGradientNorm(const ParameterRefs& params, double max_norm) {
  double total = 0.0;
  for (Parameter* p : params) total += p->grad.SquaredNorm();
  const double norm = std::sqrt(total);
  if (norm > max_norm && norm > 0.0) {
    const auto scale = static_cast<float>(max_norm / norm);
    ScaleGradients(params, scale);
  }
  return norm;
}

size_t ParameterCount(const ConstParameterRefs& params) {
  size_t count = 0;
  for (const Parameter* p : params) count += p->value.size();
  return count;
}

size_t ParameterCount(const ParameterRefs& params) {
  return ParameterCount(ConstParameterRefs(params.begin(), params.end()));
}

}  // namespace eventhit::nn
