#include "nn/workspace.h"

#include <algorithm>

namespace eventhit::nn {
namespace {

// Floor for fresh blocks: small enough to be free, large enough that tiny
// first allocations don't fragment the warm-up phase.
constexpr size_t kMinBlockFloats = 1024;

}  // namespace

float* Workspace::Alloc(size_t n) {
  if (blocks_.empty() || blocks_.back().used + n > blocks_.back().size) {
    // Grow geometrically so warm-up settles in O(log) heap allocations;
    // Reset() will fold the blocks into one.
    const size_t grown = std::max({n, kMinBlockFloats, 2 * capacity()});
    Block block;
    block.data = std::make_unique<float[]>(grown);
    block.size = grown;
    blocks_.push_back(std::move(block));
  }
  Block& block = blocks_.back();
  float* p = block.data.get() + block.used;
  block.used += n;
  return p;
}

void Workspace::Reset() {
  if (blocks_.size() > 1) {
    const size_t total = capacity();
    Block merged;
    merged.data = std::make_unique<float[]>(total);
    merged.size = total;
    blocks_.clear();
    blocks_.push_back(std::move(merged));
  } else if (!blocks_.empty()) {
    blocks_.back().used = 0;
  }
}

size_t Workspace::capacity() const {
  size_t total = 0;
  for (const Block& block : blocks_) total += block.size;
  return total;
}

size_t Workspace::used() const {
  size_t total = 0;
  for (const Block& block : blocks_) total += block.used;
  return total;
}

}  // namespace eventhit::nn
