#include "nn/lstm.h"

#include <cmath>
#include <cstring>
#include <utility>

#include "common/check.h"
#include "nn/activations.h"
#include "nn/gemm.h"

namespace eventhit::nn {

Lstm::Lstm(std::string name, size_t input_dim, size_t hidden_dim, Rng& rng)
    : wx_(name + ".Wx", Matrix::GlorotUniform(4 * hidden_dim, input_dim, rng)),
      wh_(name + ".Wh", Matrix::GlorotUniform(4 * hidden_dim, hidden_dim, rng)),
      bias_(name + ".b", Matrix::Zeros(4 * hidden_dim, 1)) {
  EVENTHIT_CHECK_GT(input_dim, 0u);
  EVENTHIT_CHECK_GT(hidden_dim, 0u);
  // Forget-gate bias = 1 so early training does not forget aggressively.
  for (size_t j = hidden_dim; j < 2 * hidden_dim; ++j) {
    bias_.value.At(j, 0) = 1.0f;
  }
}

void Lstm::StepForward(const float* x, const float* h_prev,
                       const float* c_prev, StepCache& cache) const {
  const size_t hd = hidden_dim();
  // resize, not assign: MatVec overwrites every element, so zero-filling a
  // warm buffer each step was pure churn.
  cache.gates.resize(4 * hd);
  float* pre = cache.gates.data();
  MatVec(wx_.value, x, pre);
  MatVecAccum(wh_.value, h_prev, pre);
  const float* b = bias_.value.data();
  for (size_t j = 0; j < 4 * hd; ++j) pre[j] += b[j];

  float* gate_i = pre;
  float* gate_f = pre + hd;
  float* gate_g = pre + 2 * hd;
  float* gate_o = pre + 3 * hd;
  SigmoidInPlace(gate_i, hd);
  SigmoidInPlace(gate_f, hd);
  TanhInPlace(gate_g, hd);
  SigmoidInPlace(gate_o, hd);

  cache.cell.resize(hd);
  cache.tanh_c.resize(hd);
  cache.hidden.resize(hd);
  for (size_t j = 0; j < hd; ++j) {
    cache.cell[j] = gate_f[j] * c_prev[j] + gate_i[j] * gate_g[j];
    cache.tanh_c[j] = TanhScalar(cache.cell[j]);
    cache.hidden[j] = gate_o[j] * cache.tanh_c[j];
  }
}

Vec Lstm::ForwardCached(const float* inputs, size_t steps) {
  EVENTHIT_CHECK_GT(steps, 0u);
  const size_t hd = hidden_dim();
  const size_t d = input_dim();
  cache_.resize(steps);
  cached_inputs_ = inputs;
  cached_steps_ = steps;

  const Vec zeros(hd, 0.0f);
  for (size_t t = 0; t < steps; ++t) {
    const float* h_prev = t == 0 ? zeros.data() : cache_[t - 1].hidden.data();
    const float* c_prev = t == 0 ? zeros.data() : cache_[t - 1].cell.data();
    StepForward(inputs + t * d, h_prev, c_prev, cache_[t]);
  }
  return cache_.back().hidden;
}

Vec Lstm::Forward(const float* inputs, size_t steps) const {
  EVENTHIT_CHECK_GT(steps, 0u);
  const size_t hd = hidden_dim();
  const size_t d = input_dim();
  // Two step caches ping-ponged by pointer swap: after the first two steps
  // every buffer is warm, so the loop neither allocates nor copies state
  // vectors. (The caches are locals, not members, because Forward is const
  // and runs concurrently from PredictBatch workers.)
  const Vec zeros(hd, 0.0f);
  StepCache buffers[2];
  StepCache* prev = &buffers[0];
  StepCache* cur = &buffers[1];
  for (size_t t = 0; t < steps; ++t) {
    const float* h_prev = t == 0 ? zeros.data() : prev->hidden.data();
    const float* c_prev = t == 0 ? zeros.data() : prev->cell.data();
    StepForward(inputs + t * d, h_prev, c_prev, *cur);
    std::swap(prev, cur);
  }
  return std::move(prev->hidden);
}

void Lstm::ForwardBatch(const float* inputs, size_t steps, size_t batch,
                        float* h_out, Workspace& ws) const {
  ForwardBatch(inputs, steps, batch, h_out, ws,
               GetBackend(BackendKind::kBlocked));
}

void Lstm::ForwardBatch(const float* inputs, size_t steps, size_t batch,
                        float* h_out, Workspace& ws,
                        const Backend& backend) const {
  EVENTHIT_CHECK_GT(steps, 0u);
  EVENTHIT_CHECK_GT(batch, 0u);
  const size_t hd = hidden_dim();
  const size_t d = input_dim();
  const size_t gate_rows = 4 * hd;
  const BackendKernels& kern = *backend.kernels;

  // All scratch is [rows x batch], batch-minor. `gates` carries the packed
  // pre-activations then (in place) the activated gates; `rec` holds the
  // recurrent term separately so the combination below can replay the
  // scalar path's operation order: (Wx·x) + (Wh·h) summed per element,
  // then + bias (see StepForward and the matrix.h contract).
  float* gates = ws.Alloc(gate_rows * batch);
  float* rec = ws.Alloc(gate_rows * batch);
  float* h_prev = ws.Alloc(hd * batch);
  float* c_prev = ws.Alloc(hd * batch);
  float* h_cur = ws.Alloc(hd * batch);
  float* c_cur = ws.Alloc(hd * batch);
  std::memset(h_prev, 0, hd * batch * sizeof(float));
  std::memset(c_prev, 0, hd * batch * sizeof(float));

  const float* bias = bias_.value.data();
  for (size_t t = 0; t < steps; ++t) {
    const float* x_t = inputs + t * d * batch;
    kern.gemm_zero(gate_rows, batch, d, wx_.value.data(), d, x_t, batch,
                   gates, batch);
    kern.gemm_zero(gate_rows, batch, hd, wh_.value.data(), hd, h_prev, batch,
                   rec, batch);
    for (size_t j = 0; j < gate_rows; ++j) {
      float* grow = gates + j * batch;
      const float* rrow = rec + j * batch;
      const float bj = bias[j];
      for (size_t b = 0; b < batch; ++b) grow[b] = (grow[b] + rrow[b]) + bj;
    }

    // Gate layout [i, f, g, o]: i and f are adjacent, so one sigmoid pass
    // covers both contiguous row blocks.
    kern.sigmoid_inplace(gates, 2 * hd * batch);
    kern.tanh_inplace(gates + 2 * hd * batch, hd * batch);
    kern.sigmoid_inplace(gates + 3 * hd * batch, hd * batch);

    const float* gate_i = gates;
    const float* gate_f = gates + hd * batch;
    const float* gate_g = gates + 2 * hd * batch;
    const float* gate_o = gates + 3 * hd * batch;
    for (size_t idx = 0; idx < hd * batch; ++idx) {
      c_cur[idx] = gate_f[idx] * c_prev[idx] + gate_i[idx] * gate_g[idx];
      h_cur[idx] = c_cur[idx];
    }
    // tanh(c) via the vectorized kernel, then the output gate — same
    // per-element operations as StepForward, so still bit-identical.
    kern.tanh_inplace(h_cur, hd * batch);
    for (size_t idx = 0; idx < hd * batch; ++idx) {
      h_cur[idx] *= gate_o[idx];
    }
    std::swap(h_prev, h_cur);
    std::swap(c_prev, c_cur);
  }
  std::memcpy(h_out, h_prev, hd * batch * sizeof(float));
}

void Lstm::Backward(const float* dh_final, float* dinputs) {
  EVENTHIT_CHECK(cached_inputs_ != nullptr);
  const size_t hd = hidden_dim();
  const size_t d = input_dim();
  const size_t steps = cached_steps_;

  Vec dh(dh_final, dh_final + hd);
  Vec dc(hd, 0.0f);
  Vec dpre(4 * hd);
  Vec dh_prev(hd);
  const Vec zeros(hd, 0.0f);

  for (size_t t = steps; t-- > 0;) {
    const StepCache& cache = cache_[t];
    const float* gate_i = cache.gates.data();
    const float* gate_f = cache.gates.data() + hd;
    const float* gate_g = cache.gates.data() + 2 * hd;
    const float* gate_o = cache.gates.data() + 3 * hd;
    const float* c_prev = t == 0 ? zeros.data() : cache_[t - 1].cell.data();
    const float* h_prev = t == 0 ? zeros.data() : cache_[t - 1].hidden.data();

    for (size_t j = 0; j < hd; ++j) {
      const float tc = cache.tanh_c[j];
      const float d_o = dh[j] * tc;
      const float dc_total = dc[j] + dh[j] * gate_o[j] * (1.0f - tc * tc);
      const float d_i = dc_total * gate_g[j];
      const float d_f = dc_total * c_prev[j];
      const float d_g = dc_total * gate_i[j];
      dpre[j] = d_i * gate_i[j] * (1.0f - gate_i[j]);
      dpre[hd + j] = d_f * gate_f[j] * (1.0f - gate_f[j]);
      dpre[2 * hd + j] = d_g * (1.0f - gate_g[j] * gate_g[j]);
      dpre[3 * hd + j] = d_o * gate_o[j] * (1.0f - gate_o[j]);
      dc[j] = dc_total * gate_f[j];
    }

    OuterAccum(wx_.grad, dpre.data(), cached_inputs_ + t * d);
    OuterAccum(wh_.grad, dpre.data(), h_prev);
    float* db = bias_.grad.data();
    for (size_t j = 0; j < 4 * hd; ++j) db[j] += dpre[j];

    if (dinputs != nullptr) {
      MatTVecAccum(wx_.value, dpre.data(), dinputs + t * d);
    }
    std::fill(dh_prev.begin(), dh_prev.end(), 0.0f);
    MatTVecAccum(wh_.value, dpre.data(), dh_prev.data());
    dh = dh_prev;
  }
}

void Lstm::CollectParameters(ParameterRefs& out) {
  out.push_back(&wx_);
  out.push_back(&wh_);
  out.push_back(&bias_);
}

void Lstm::CollectParameters(ConstParameterRefs& out) const {
  out.push_back(&wx_);
  out.push_back(&wh_);
  out.push_back(&bias_);
}

}  // namespace eventhit::nn
