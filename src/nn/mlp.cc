#include "nn/mlp.h"

#include "common/check.h"
#include "nn/activations.h"

namespace eventhit::nn {

Mlp::Mlp(std::string name, const std::vector<size_t>& dims, Rng& rng) {
  EVENTHIT_CHECK_GE(dims.size(), 2u);
  layers_.reserve(dims.size() - 1);
  for (size_t i = 0; i + 1 < dims.size(); ++i) {
    layers_.emplace_back(name + ".fc" + std::to_string(i), dims[i],
                         dims[i + 1], rng);
  }
  activations_.resize(layers_.size());
}

void Mlp::ForwardCached(const float* x, Vec& logits) {
  const float* current = x;
  for (size_t i = 0; i < layers_.size(); ++i) {
    const bool last = i + 1 == layers_.size();
    Vec& out = last ? logits : activations_[i];
    layers_[i].Forward(current, out);
    if (!last) {
      TanhInPlace(out.data(), out.size());
      current = out.data();
    }
  }
}

void Mlp::Forward(const float* x, Vec& logits) const {
  Vec scratch;
  const float* current = x;
  for (size_t i = 0; i < layers_.size(); ++i) {
    const bool last = i + 1 == layers_.size();
    Vec out;
    layers_[i].Forward(current, last ? logits : out);
    if (!last) {
      TanhInPlace(out.data(), out.size());
      scratch = std::move(out);
      current = scratch.data();
    }
  }
}

void Mlp::ForwardBatch(const float* x, size_t batch, float* logits,
                       Workspace& ws) const {
  const float* current = x;
  for (size_t i = 0; i < layers_.size(); ++i) {
    const bool last = i + 1 == layers_.size();
    const size_t out = layers_[i].out_dim();
    float* buffer = last ? logits : ws.Alloc(out * batch);
    layers_[i].ForwardBatch(current, batch, buffer);
    if (!last) {
      TanhInPlace(buffer, out * batch);
      current = buffer;
    }
  }
}

void Mlp::ForwardBatch(const float* x, size_t batch, float* logits,
                       Workspace& ws, const Backend& backend) const {
  const float* current = x;
  for (size_t i = 0; i < layers_.size(); ++i) {
    const bool last = i + 1 == layers_.size();
    const size_t out = layers_[i].out_dim();
    float* buffer = last ? logits : ws.Alloc(out * batch);
    layers_[i].ForwardBatch(current, batch, buffer, backend);
    if (!last) {
      backend.kernels->tanh_inplace(buffer, out * batch);
      current = buffer;
    }
  }
}

void Mlp::Backward(const float* x, const float* dlogits, float* dx) {
  // Walk backwards; the gradient w.r.t. each hidden activation is computed
  // into a scratch buffer, then passed through the tanh derivative.
  Vec dcurrent(dlogits, dlogits + layers_.back().out_dim());
  for (size_t i = layers_.size(); i-- > 0;) {
    const bool first = i == 0;
    const float* input = first ? x : activations_[i - 1].data();
    if (first) {
      layers_[i].Backward(input, dcurrent.data(), dx);
    } else {
      Vec dinput(layers_[i].in_dim(), 0.0f);
      layers_[i].Backward(input, dcurrent.data(), dinput.data());
      // Through the tanh applied to activations_[i-1].
      Vec dpre(dinput.size());
      TanhBackward(activations_[i - 1].data(), dinput.data(), dpre.data(),
                   dpre.size());
      dcurrent = std::move(dpre);
    }
  }
}

void Mlp::CollectParameters(ParameterRefs& out) {
  for (Dense& layer : layers_) layer.CollectParameters(out);
}

void Mlp::CollectParameters(ConstParameterRefs& out) const {
  for (const Dense& layer : layers_) layer.CollectParameters(out);
}

}  // namespace eventhit::nn
