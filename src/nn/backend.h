// Runtime-dispatched inference kernel backends (DESIGN.md §5h,
// docs/BACKENDS.md).
//
// The batched inference path (gemm.h, lstm.h, dense.h, mlp.h) is written
// against a small kernel table — GEMM products, element-wise activations,
// and the int8 quantized product — so the same forward-pass code can run
// on several implementations selected once at startup:
//
//   * scalar  — naive reference loops, no tiling. Same ascending-k float
//     summation order as `blocked`, so results are bit-identical to it;
//     exists as the oracle the faster backends are tested against.
//   * blocked — the PR-3 register-tiled cache-aware kernels (gemm.cc),
//     auto-vectorized by the baseline build (SSE2 on x86-64, NEON on
//     aarch64). The default, and the backend every committed baseline and
//     conformal calibration was produced with.
//   * simd    — explicit AVX2+FMA kernels, chosen only when cpuid reports
//     both features at startup (SimdAvailable()). Each output element is
//     still the ascending-k sum of its products, but every term lands via
//     a fused multiply-add (one rounding per term instead of two), so simd
//     results are NOT bit-identical to scalar/blocked — they agree within
//     the documented 1e-5 score bound. Within the simd backend, results
//     are bit-identical at any batch size: the vector body and the scalar
//     tail both use FMA with the same operation order, so a column's
//     result does not depend on its position in the batch (the fleet's
//     solo==batched digest contract survives backend selection). On
//     non-x86 or pre-AVX2 hardware the simd kind transparently falls back
//     to the blocked kernels (NEON is the aarch64 baseline, so `blocked`
//     is already the vectorized path there).
//   * int8    — per-tensor symmetric int8 quantization (nn/int8.h):
//     weights and activations quantize to int8 with static scales, the
//     GEMM accumulates in int32 (exact integer arithmetic, so any
//     vectorization gives identical results), and a single float multiply
//     dequantizes each output at the layer boundary. Activations between
//     layers stay float. Quantization perturbs scores, so conformal
//     thresholds MUST be recalibrated on int8 scores (docs/BACKENDS.md);
//     eval::TrainEventHit does this when RunnerConfig::nn_backend is int8.
//
// Threading model: a Backend is immutable global state — GetBackend()
// returns references to static tables, safe to share across threads.
#ifndef EVENTHIT_NN_BACKEND_H_
#define EVENTHIT_NN_BACKEND_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"

namespace eventhit::nn {

enum class BackendKind { kScalar, kBlocked, kSimd, kInt8 };

/// C = A * B (overwrite) / C += A * B with the shape conventions of
/// nn/gemm.h: A m x k (lda), B k x n (ldb), C m x n (ldc), ascending-k
/// accumulation per output element.
using GemmFn = void (*)(size_t m, size_t n, size_t k, const float* a,
                        size_t lda, const float* b, size_t ldb, float* c,
                        size_t ldc);

/// Element-wise activation over n contiguous floats.
using UnaryFn = void (*)(float* x, size_t n);

/// C = scale * (A * B) with int8 operands and exact int32 accumulation:
/// A is m x k int8 (lda), B is k x n int8 (ldb), each C element is the
/// int32 sum of its k products scaled by one float multiply (the dequant
/// step). Integer accumulation is associative, so results are identical
/// under any vectorization and any batch composition.
using Int8GemmFn = void (*)(size_t m, size_t n, size_t k, const int8_t* a,
                            size_t lda, const int8_t* b, size_t ldb,
                            float scale, float* c, size_t ldc);

/// The kernel table a forward pass dispatches through.
struct BackendKernels {
  GemmFn gemm_zero = nullptr;       // C = A*B
  GemmFn gemm = nullptr;            // C += A*B
  UnaryFn tanh_inplace = nullptr;   // x = tanh(x)
  UnaryFn sigmoid_inplace = nullptr;
  Int8GemmFn int8_gemm_zero = nullptr;  // C = scale * (A*B), int8 operands
};

/// One selected backend: the kind requested, the kind actually executing
/// (simd falls back to blocked when the CPU lacks AVX2+FMA), and the
/// kernel table.
struct Backend {
  BackendKind kind = BackendKind::kBlocked;
  BackendKind effective = BackendKind::kBlocked;
  const char* name = "blocked";
  const BackendKernels* kernels = nullptr;
};

/// True when explicit SIMD kernels (AVX2+FMA) are compiled in AND the CPU
/// reports the features at runtime. When false, BackendKind::kSimd
/// dispatches the blocked kernels.
bool SimdAvailable();

/// The immutable backend singleton for `kind`. For kInt8 the float kernels
/// (activations and any residual float GEMM) are always the blocked set —
/// combined with the exact integer GEMM (AVX2-accelerated when available,
/// identical results either way) this makes int8 scores machine-independent,
/// so recalibrated conformal thresholds reproduce across hosts.
const Backend& GetBackend(BackendKind kind);

/// Canonical lower-case name ("scalar", "blocked", "simd", "int8").
const char* BackendKindName(BackendKind kind);

/// Parses a backend name. "auto" resolves to simd when SimdAvailable(),
/// else blocked. Unknown names produce InvalidArgumentError listing the
/// choices.
Result<BackendKind> ParseBackendKind(const std::string& name);

/// Every kind, in fixed order (scalar, blocked, simd, int8) — for benches
/// and parity sweeps.
std::vector<BackendKind> AllBackendKinds();

/// Quantizes n floats to int8 with round-to-nearest-even and clamp to
/// [-127, 127]: q[i] = clamp(rne(x[i] * inv_scale)). Element-wise and
/// vectorization-independent, so quantized activations do not depend on
/// batch composition (the int8 determinism contract, docs/BACKENDS.md).
void QuantizeInt8(const float* x, size_t n, float inv_scale, int8_t* out);

}  // namespace eventhit::nn

#endif  // EVENTHIT_NN_BACKEND_H_
