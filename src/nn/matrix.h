// Dense row-major float matrix plus the handful of kernels the neural
// network substrate needs (matrix-vector products, outer-product gradient
// accumulation). Deliberately minimal: EventHit's model is small, so clarity
// and cache-friendly contiguous loops beat a general BLAS dependency.
#ifndef EVENTHIT_NN_MATRIX_H_
#define EVENTHIT_NN_MATRIX_H_

#include <cstddef>
#include <vector>

#include "common/rng.h"

namespace eventhit::nn {

/// Vector of activations/gradients. Plain std::vector keeps interop with the
/// rest of the library trivial.
using Vec = std::vector<float>;

/// Row-major dense matrix of floats.
class Matrix {
 public:
  Matrix() = default;

  /// Creates a rows x cols matrix of zeros.
  Matrix(size_t rows, size_t cols);

  /// All-zero matrix (alias of the constructor, for readability).
  static Matrix Zeros(size_t rows, size_t cols);

  /// Glorot/Xavier-uniform initialisation in
  /// [-sqrt(6/(rows+cols)), +sqrt(6/(rows+cols))].
  static Matrix GlorotUniform(size_t rows, size_t cols, Rng& rng);

  size_t rows() const { return rows_; }
  size_t cols() const { return cols_; }
  size_t size() const { return data_.size(); }
  bool empty() const { return data_.empty(); }

  float& At(size_t r, size_t c) { return data_[r * cols_ + c]; }
  float At(size_t r, size_t c) const { return data_[r * cols_ + c]; }

  float* Row(size_t r) { return data_.data() + r * cols_; }
  const float* Row(size_t r) const { return data_.data() + r * cols_; }

  float* data() { return data_.data(); }
  const float* data() const { return data_.data(); }

  /// Sets every element to zero (used to reset gradients between steps).
  void SetZero();

  /// Element-wise in-place: this += scale * other. Shapes must match.
  void Axpy(float scale, const Matrix& other);

  /// Sum of squared elements (for gradient-norm clipping).
  double SquaredNorm() const;

 private:
  size_t rows_ = 0;
  size_t cols_ = 0;
  std::vector<float> data_;
};

// Summation-order contract (shared with nn/gemm.h): every inner product in
// these kernels accumulates in `float`, adding column terms in ascending
// order from zero, and any pre-existing destination value is added in one
// final operation (y[r] += acc). The build never enables -ffast-math, so
// the compiler may not reassociate these sums — which makes the order part
// of the kernels' observable behaviour. The batched GEMM path replays the
// exact same order per output element, so batched and per-record inference
// agree bit-for-bit and conformal calibration scores are stable under
// batching.

/// y = W * x. `x` must have W.cols() elements, `y` W.rows().
void MatVec(const Matrix& w, const float* x, float* y);

/// y += W * x (inner products formed separately, then added once; see the
/// summation-order contract above).
void MatVecAccum(const Matrix& w, const float* x, float* y);

/// dx += W^T * dy. `dy` has W.rows() elements, `dx` W.cols().
void MatTVecAccum(const Matrix& w, const float* dy, float* dx);

/// dW += dy * x^T (outer product), the weight gradient of y = W x.
void OuterAccum(Matrix& dw, const float* dy, const float* x);

}  // namespace eventhit::nn

#endif  // EVENTHIT_NN_MATRIX_H_
