#include "nn/dropout.h"

#include "common/check.h"

namespace eventhit::nn {

Dropout::Dropout(double rate) : rate_(rate) {
  EVENTHIT_CHECK_GE(rate, 0.0);
  EVENTHIT_CHECK_LT(rate, 1.0);
}

void Dropout::ForwardTrain(const float* x, size_t n, Rng& rng, Vec& y) {
  y.resize(n);
  mask_.resize(n);
  if (rate_ == 0.0) {
    for (size_t i = 0; i < n; ++i) {
      mask_[i] = 1.0f;
      y[i] = x[i];
    }
    return;
  }
  const auto scale = static_cast<float>(1.0 / (1.0 - rate_));
  for (size_t i = 0; i < n; ++i) {
    mask_[i] = rng.Bernoulli(rate_) ? 0.0f : scale;
    y[i] = x[i] * mask_[i];
  }
}

void Dropout::ForwardEval(const float* x, size_t n, Vec& y) const {
  y.assign(x, x + n);
}

void Dropout::Backward(const float* dy, float* dx) const {
  for (size_t i = 0; i < mask_.size(); ++i) dx[i] = dy[i] * mask_[i];
}

}  // namespace eventhit::nn
