#include "nn/loss.h"

#include <cmath>

#include "nn/activations.h"

namespace eventhit::nn {
namespace {

// Stable -log(sigmoid(x)) = log(1 + exp(-x)) = max(0,-x) + log1p(exp(-|x|)).
inline double LogSigmoidNeg(float x) {
  const double ax = std::fabs(static_cast<double>(x));
  const double base = std::log1p(std::exp(-ax));
  return x >= 0.0f ? base : base + ax;
}

}  // namespace

double BceWithLogits(float logit, float target, float weight, float* dlogit) {
  // loss = -(y * log p + (1-y) * log(1-p)), p = sigmoid(logit)
  //      = y * (-log p) + (1-y) * (-log(1-p))
  // with -log p = LogSigmoidNeg(logit), -log(1-p) = LogSigmoidNeg(-logit).
  const double loss =
      weight * (target * LogSigmoidNeg(logit) +
                (1.0 - target) * LogSigmoidNeg(-logit));
  const float p = SigmoidScalar(logit);
  *dlogit = weight * (p - target);
  return loss;
}

double BceWithLogitsVector(const float* logits, const float* targets,
                           const float* weights, size_t n, float* dlogits) {
  double total = 0.0;
  for (size_t i = 0; i < n; ++i) {
    if (weights[i] == 0.0f) {
      dlogits[i] = 0.0f;
      continue;
    }
    total += BceWithLogits(logits[i], targets[i], weights[i], &dlogits[i]);
  }
  return total;
}

}  // namespace eventhit::nn
