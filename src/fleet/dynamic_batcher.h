// Cross-stream dynamic batcher: coalesces pending inference requests from
// many streams into PredictBatched-sized GEMM calls.
//
// Flush rules (DESIGN.md §5g):
//   * batch-full  — whenever `batch_size` requests are pending, the oldest
//     `batch_size` flush immediately;
//   * deadline    — a request waits at most `max_delay_ticks` simulated
//     ticks; once the oldest pending request hits its deadline, a batch
//     flushes even if underfull (padded with younger requests up to
//     `batch_size` so the GEMM stays as full as possible);
//   * final       — end of wave: everything still pending flushes.
//
// The batcher is plain serial state driven from the fleet's tick loop; all
// cross-thread handoff happens upstream in the MPSC queue. Requests flush
// strictly in enqueue order, so each stream's requests complete in FIFO
// order — the Marshaller::CompletePrediction contract.
#ifndef EVENTHIT_FLEET_DYNAMIC_BATCHER_H_
#define EVENTHIT_FLEET_DYNAMIC_BATCHER_H_

#include <cstdint>
#include <deque>
#include <utility>
#include <vector>

#include "common/check.h"
#include "data/record.h"

namespace eventhit::fleet {

/// One deferred prediction travelling from a stream's push phase to a
/// batched GEMM flush.
struct InferenceRequest {
  int shard_slot = -1;       // Wave-local shard index (canonical order key).
  int64_t seq = 0;           // Per-stream request counter.
  int64_t anchor_frame = 0;  // Local stream frame of the prediction point.
  int64_t enqueue_tick = 0;  // Fleet tick the request entered the batcher.
  data::Record record;       // Covariate window (labels unknown).
};

enum class FlushReason { kFull, kDeadline, kFinal };

struct BatchFlush {
  FlushReason reason = FlushReason::kFull;
  std::vector<InferenceRequest> requests;
};

class DynamicBatcher {
 public:
  DynamicBatcher(size_t batch_size, int64_t max_delay_ticks)
      : batch_size_(batch_size), max_delay_ticks_(max_delay_ticks) {
    EVENTHIT_CHECK_GT(batch_size_, 0u);
    EVENTHIT_CHECK_GE(max_delay_ticks_, 0);
  }

  void Enqueue(InferenceRequest request) {
    pending_.push_back(std::move(request));
  }

  size_t pending() const { return pending_.size(); }

  /// Pops every batch ready at `tick`: full batches first, then the
  /// deadline sweep; `final` flushes the remainder regardless of age.
  std::vector<BatchFlush> TakeReady(int64_t tick, bool final) {
    std::vector<BatchFlush> flushes;
    while (pending_.size() >= batch_size_) {
      flushes.push_back(Pop(batch_size_, FlushReason::kFull));
    }
    while (!pending_.empty() &&
           tick - pending_.front().enqueue_tick >= max_delay_ticks_) {
      flushes.push_back(Pop(std::min(pending_.size(), batch_size_),
                            FlushReason::kDeadline));
    }
    if (final && !pending_.empty()) {
      while (!pending_.empty()) {
        flushes.push_back(
            Pop(std::min(pending_.size(), batch_size_), FlushReason::kFinal));
      }
    }
    return flushes;
  }

 private:
  BatchFlush Pop(size_t count, FlushReason reason) {
    BatchFlush flush;
    flush.reason = reason;
    flush.requests.reserve(count);
    for (size_t i = 0; i < count; ++i) {
      flush.requests.push_back(std::move(pending_.front()));
      pending_.pop_front();
    }
    return flush;
  }

  const size_t batch_size_;
  const int64_t max_delay_ticks_;
  std::deque<InferenceRequest> pending_;
};

}  // namespace eventhit::fleet

#endif  // EVENTHIT_FLEET_DYNAMIC_BATCHER_H_
