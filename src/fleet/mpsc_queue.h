// Lock-light bounded MPSC submission queue for the stream fleet.
//
// Vyukov-style slot-sequence ring: producers claim slots with one
// fetch_add + per-slot release store, the single consumer drains with
// acquire loads — no mutex on the hot path. The fleet uses it as the
// funnel between the parallel push phase (many pool workers producing
// inference requests) and the serial batching phase (one consumer).
//
// Concurrency contract:
//   * TryPush may be called from any number of threads concurrently.
//   * DrainTo/Empty are single-consumer. A drain concurrent with
//     producers is safe (the value hand-off synchronises on the slot
//     sequence) but only observes the published prefix; the fleet never
//     relies on that, separating the phases with the pool's ParallelFor
//     barrier so every drain sees the whole tick.
//
// Determinism: the drain order depends on scheduling, so consumers must
// re-impose a canonical order (the fleet stable-sorts by stream index)
// before any order-sensitive processing.
#ifndef EVENTHIT_FLEET_MPSC_QUEUE_H_
#define EVENTHIT_FLEET_MPSC_QUEUE_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "common/check.h"

namespace eventhit::fleet {

/// Bounded multi-producer single-consumer ring. Capacity is rounded up to
/// a power of two. T must be movable.
template <typename T>
class MpscQueue {
 public:
  explicit MpscQueue(size_t min_capacity) {
    size_t cap = 1;
    while (cap < min_capacity) cap <<= 1;
    capacity_ = cap;
    mask_ = cap - 1;
    slots_ = std::vector<Slot>(cap);
    for (size_t i = 0; i < cap; ++i) {
      slots_[i].sequence.store(static_cast<uint64_t>(i),
                               std::memory_order_relaxed);
    }
  }

  MpscQueue(const MpscQueue&) = delete;
  MpscQueue& operator=(const MpscQueue&) = delete;

  size_t capacity() const { return capacity_; }

  /// Enqueues `value`. Returns false when the ring is full (the fleet
  /// sizes the ring so this cannot happen: at most one request per
  /// resident stream per tick).
  bool TryPush(T value) {
    uint64_t pos = tail_.load(std::memory_order_relaxed);
    for (;;) {
      Slot& slot = slots_[pos & mask_];
      const uint64_t seq = slot.sequence.load(std::memory_order_acquire);
      const int64_t diff =
          static_cast<int64_t>(seq) - static_cast<int64_t>(pos);
      if (diff == 0) {
        if (tail_.compare_exchange_weak(pos, pos + 1,
                                        std::memory_order_relaxed)) {
          slot.value = std::move(value);
          slot.sequence.store(pos + 1, std::memory_order_release);
          return true;
        }
        // CAS failed: `pos` was reloaded; retry with the fresh value.
      } else if (diff < 0) {
        return false;  // Slot still holds an unconsumed value: full.
      } else {
        pos = tail_.load(std::memory_order_relaxed);
      }
    }
  }

  /// Moves every queued element into `out` (appending) in ring order and
  /// releases the slots. Single-consumer only; must not race TryPush.
  /// Returns the number drained.
  size_t DrainTo(std::vector<T>* out) {
    size_t drained = 0;
    uint64_t pos = head_.load(std::memory_order_relaxed);
    for (;;) {
      Slot& slot = slots_[pos & mask_];
      const uint64_t seq = slot.sequence.load(std::memory_order_acquire);
      if (seq != pos + 1) break;  // Next slot not (yet) published: empty.
      out->push_back(std::move(slot.value));
      slot.sequence.store(pos + capacity_, std::memory_order_release);
      ++pos;
      ++drained;
    }
    head_.store(pos, std::memory_order_relaxed);
    return drained;
  }

  /// True when no published element is waiting (consumer-side view).
  bool Empty() const {
    const uint64_t pos = head_.load(std::memory_order_relaxed);
    const Slot& slot = slots_[pos & mask_];
    return slot.sequence.load(std::memory_order_acquire) != pos + 1;
  }

 private:
  struct Slot {
    std::atomic<uint64_t> sequence{0};
    T value{};
  };

  size_t capacity_ = 0;
  size_t mask_ = 0;
  std::vector<Slot> slots_;
  // Producers contend on tail_; the consumer owns head_. Separate cache
  // lines so drains never bounce the producers' line.
  alignas(64) std::atomic<uint64_t> tail_{0};
  alignas(64) std::atomic<uint64_t> head_{0};
};

}  // namespace eventhit::fleet

#endif  // EVENTHIT_FLEET_MPSC_QUEUE_H_
