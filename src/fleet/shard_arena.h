// Cache-line-aligned arena for per-stream fleet shards.
//
// The fleet's parallel phases have different pool workers mutating
// adjacent streams' state concurrently. Allocating shards individually
// with `new` gives the allocator freedom to pack two shards' hot fields
// into one cache line (false sharing); the arena instead places every
// shard at a 64-byte-aligned offset with a stride rounded up to a whole
// number of cache lines, so no two shards ever share a line.
#ifndef EVENTHIT_FLEET_SHARD_ARENA_H_
#define EVENTHIT_FLEET_SHARD_ARENA_H_

#include <cstddef>
#include <new>
#include <utility>

#include "common/check.h"

namespace eventhit::fleet {

inline constexpr size_t kCacheLineBytes = 64;

/// Owns `count` default-constructed T's, each starting on its own cache
/// line. T's destructor runs for every slot on arena destruction.
template <typename T>
class ShardArena {
 public:
  explicit ShardArena(size_t count) : count_(count) {
    EVENTHIT_CHECK_GT(count, 0u);
    stride_ = (sizeof(T) + kCacheLineBytes - 1) / kCacheLineBytes *
              kCacheLineBytes;
    raw_ = static_cast<unsigned char*>(::operator new(
        stride_ * count_, std::align_val_t(kCacheLineBytes)));
    size_t constructed = 0;
    try {
      for (; constructed < count_; ++constructed) {
        ::new (raw_ + constructed * stride_) T();
      }
    } catch (...) {
      for (size_t i = constructed; i > 0; --i) At(i - 1).~T();
      ::operator delete(raw_, std::align_val_t(kCacheLineBytes));
      throw;
    }
  }

  ~ShardArena() {
    for (size_t i = count_; i > 0; --i) At(i - 1).~T();
    ::operator delete(raw_, std::align_val_t(kCacheLineBytes));
  }

  ShardArena(const ShardArena&) = delete;
  ShardArena& operator=(const ShardArena&) = delete;

  size_t size() const { return count_; }
  size_t stride() const { return stride_; }

  T& At(size_t i) {
    EVENTHIT_CHECK_LT(i, count_);
    return *std::launder(reinterpret_cast<T*>(raw_ + i * stride_));
  }
  const T& At(size_t i) const {
    EVENTHIT_CHECK_LT(i, count_);
    return *std::launder(reinterpret_cast<const T*>(raw_ + i * stride_));
  }

  T& operator[](size_t i) { return At(i); }
  const T& operator[](size_t i) const { return At(i); }

 private:
  size_t count_;
  size_t stride_ = 0;
  unsigned char* raw_ = nullptr;
};

}  // namespace eventhit::fleet

#endif  // EVENTHIT_FLEET_SHARD_ARENA_H_
