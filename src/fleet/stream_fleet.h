// Multi-tenant stream fleet: N independent camera streams multiplexed
// through one process, sharing a single trained EventHit model whose
// inference runs in cross-stream dynamic batches (fleet/dynamic_batcher.h)
// while every per-stream component — synthetic video, marshaller, cloud
// service, resilient relay, guarantee auditor — stays private to its
// stream and seeded from SplitSeed(base_seed, stream).
//
// Determinism contract (DESIGN.md §5g): a stream's marshalled intervals,
// relay accounting, invoice and audit state depend only on (base_seed,
// stream index, stream-level config) — never on the fleet size, wave
// size, batch size, flush timing or thread count. The proof obligations:
//   * PredictBatched is bit-identical per record at any batch composition
//     (PR 3's summation-order contract), so cross-stream batching cannot
//     perturb scores;
//   * deferred completions replay the exact inline PushFrame code path
//     (Marshaller::CompletePrediction) in per-stream FIFO order;
//   * the relay clock advances with the request's own anchor frame, not
//     the flush tick, so batching delay never shifts simulated time.
// RunStreamSolo() runs one stream through the identical per-stream state
// machine without any batching, and the fleet bit-exactness test checks
// byte equality of the two digests at multiple thread counts.
#ifndef EVENTHIT_FLEET_STREAM_FLEET_H_
#define EVENTHIT_FLEET_STREAM_FLEET_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "adapt/recal_loop.h"
#include "cloud/cloud_service.h"
#include "cloud/relay.h"
#include "core/marshaller.h"
#include "core/strategies.h"
#include "data/tasks.h"
#include "eval/runner.h"
#include "nn/workspace.h"
#include "obs/log.h"
#include "obs/metrics.h"
#include "obs/provenance.h"
#include "obs/trace.h"
#include "sim/scene_spec.h"

namespace eventhit::fleet {

struct FleetConfig {
  /// Number of tenant streams.
  int num_streams = 100;
  /// Master seed; every per-stream seed derives from it via SplitSeed.
  uint64_t base_seed = 42;
  /// Frames generated per stream (0 = the dataset's default). Streams push
  /// frames [0, frames - H) so every prediction anchor has ground truth
  /// within the generated stream for auditing.
  int64_t frames_per_stream = 0;
  /// Streams resident at once. Each wave generates its videos, runs its
  /// tick loop, settles accounting, then frees the memory — the knob that
  /// bounds footprint at 10k+ streams.
  int wave_size = 256;
  /// Records per cross-stream GEMM flush.
  size_t batch_size = 64;
  /// Ticks a request may wait in the batcher before a deadline flush.
  int64_t max_batch_delay_ticks = 4;
  /// Offset each stream's start tick by a seed-derived phase in
  /// [0, kStaggerWindow) so prediction boundaries interleave across
  /// streams (exercises deadline flushes; local stream clocks are
  /// unaffected).
  bool stagger_phases = true;
  /// Scale each stream's event mean gaps by a seed-derived factor so
  /// tenants have distinct event mixes.
  bool vary_event_mix = true;
  /// Worker threads (<= 0 resolves via ThreadPool::DefaultThreads()).
  int threads = 1;
  /// Conformal knobs of the shared EHCR strategy.
  double confidence = 0.9;
  double coverage = 0.5;
  /// Named fault profile for every stream's relay ("none" disables;
  /// per-stream schedules decorrelate via SplitSeed(fault_seed, stream)).
  std::string fault_profile = "none";
  uint64_t fault_seed = 1234;
  cloud::DegradedMode degraded_mode = cloud::DegradedMode::kDropWithAccounting;
  /// Aggregate spend cap in integer micro-USD shared by all streams
  /// (0 = uncapped). The accountant is observational: it latches the first
  /// tick the cap is crossed and emits fleet.budget.breaches, but never
  /// feeds back into per-stream decisions — that would break the
  /// stream-solo determinism contract.
  int64_t budget_cap_microusd = 0;
  /// Keep full per-stream decision/delivery transcripts (tests only; the
  /// digests are always kept).
  bool record_transcripts = false;
  /// Arm a per-stream recalibration loop (adapt/recal_loop.h): the
  /// stream's own auditor breach latches and drift alarms trigger conformal
  /// rebuilds that hot-swap into that stream's private strategy. All loop
  /// state is per-stream, so the solo/fleet bit-exactness contract holds
  /// with recalibration armed.
  bool recal = false;
  /// Loop knobs (window capacity, guards, martingale) when `recal` is set.
  adapt::RecalConfig recal_config;
  /// Collect per-tick wall latencies for the bench percentiles.
  bool collect_tick_latency = true;
  /// Arm the per-stream decision provenance ledger (obs/provenance.h):
  /// every marshalling boundary gets a decision id whose causal chain
  /// (policy verdict, batch placement, backend + conformal generation,
  /// decision, relay outcome, audit verdict) is recorded, digested and
  /// rolled up. Observational only — the solo/fleet bit-exactness
  /// contract holds with the ledger armed, and the digest itself is part
  /// of that contract.
  bool provenance = true;
  /// Resident provenance records per stream (ring slots; older boundaries
  /// are evicted from the ring but stay in the digest and rollup). The
  /// default keeps a 10k-stream fleet within a few MB; the explain CLI
  /// raises it to hold every boundary of the stream it replays.
  size_t provenance_ring = 4;
  /// Copy each stream's resident provenance records into its
  /// FleetStreamResult (explain CLI and tests; the rollup and digest are
  /// always kept).
  bool collect_provenance_records = false;
  /// Training configuration for the one shared model (seed and all).
  eval::RunnerConfig runner;
};

/// Stagger window (ticks) for seed-derived phase offsets.
inline constexpr int64_t kStaggerWindow = 16;

/// Everything about one stream that is derivable purely from
/// (FleetConfig, stream index) — the root of the determinism contract.
struct StreamSettings {
  int stream_index = -1;
  uint64_t stream_seed = 0;
  uint64_t video_seed = 0;
  uint64_t cloud_seed = 0;
  uint64_t relay_seed = 0;
  uint64_t fault_seed = 0;
  int64_t phase = 0;        // Fleet tick the stream starts pushing.
  double gap_scale = 1.0;   // Event mean-gap multiplier (tenant mix).
  sim::DatasetSpec spec;    // Per-stream spec (frames + scaled gaps).
  int64_t push_frames = 0;  // Frames the stream pushes (= frames - H).
};

/// Optional full per-stream transcript (record_transcripts only).
struct StreamTranscript {
  struct Decision {
    int64_t anchor = 0;
    std::vector<uint8_t> exists;
    std::vector<sim::Interval> intervals;
  };
  struct Delivery {
    int64_t request_id = 0;
    size_t event = 0;
    sim::Interval frames;
    bool replayed = false;
    std::vector<uint8_t> detections;
  };
  std::vector<Decision> decisions;
  std::vector<Delivery> deliveries;
};

/// Settled per-stream outcome. The digests are FNV-1a folds of the full
/// decision/delivery/accounting byte streams; `state_digest` additionally
/// folds the marshaller stats, relay stats, invoice and audit counts, so
/// digest equality is byte-identity of everything observable.
struct FleetStreamResult {
  int stream_index = -1;
  uint64_t decision_digest = 0;
  uint64_t delivery_digest = 0;
  uint64_t state_digest = 0;
  core::MarshallerStats marshaller;
  cloud::RelayStats relay;
  cloud::Invoice invoice;
  int64_t audit_positives = 0;
  int64_t audit_misses = 0;
  int64_t audit_endpoints = 0;
  int64_t audit_miscovered = 0;
  int64_t audit_breaches = 0;
  // Most recent offending decision ids on this stream's clock (-1 when
  // clean or when the ledger is off) — folded into the exported audit
  // counters as OpenMetrics exemplars at end of run.
  int64_t last_miss_decision = -1;
  int64_t last_miscover_decision = -1;
  int64_t last_breach_decision = -1;
  // Recalibration-loop outcome (all zero / -1 when FleetConfig::recal is
  // off). Folded into state_digest like the audit counts.
  int64_t recal_triggers_breach = 0;
  int64_t recal_triggers_drift = 0;
  int64_t recal_refusals_cooldown = 0;
  int64_t recal_refusals_min_samples = 0;
  int64_t recal_swaps = 0;
  int64_t recal_last_swap_frame = -1;
  // Provenance ledger outcome (all zero when FleetConfig::provenance is
  // off). The digest folds only clock-pure stamps, so it participates in
  // the solo/fleet bit-exactness contract; the rollup carries batch
  // residency and therefore legitimately differs between solo and fleet.
  uint64_t provenance_digest = 0;
  int64_t provenance_boundaries = 0;
  int64_t provenance_recorded = 0;
  int64_t provenance_overflowed = 0;
  obs::ProvenanceRollup provenance_rollup;
  /// Resident records (collect_provenance_records only).
  std::vector<obs::ProvenanceRecord> provenance_records;
  StreamTranscript transcript;
};

/// True when every field (doubles compared by bit pattern) matches — the
/// bit-exactness predicate of the fleet tests.
bool SameStreamResult(const FleetStreamResult& a, const FleetStreamResult& b);

struct FleetRunStats {
  int64_t streams = 0;
  int64_t ticks = 0;
  int64_t frames_pushed = 0;
  int64_t requests = 0;
  int64_t batches = 0;
  int64_t flush_full = 0;
  int64_t flush_deadline = 0;
  int64_t flush_final = 0;
  double batch_fill_mean = 0.0;
  double elapsed_seconds = 0.0;
  double streams_per_sec = 0.0;
  double frames_per_sec = 0.0;
  double p50_tick_us = 0.0;
  double p99_tick_us = 0.0;
  /// Tick latency divided by the frames pushed that tick: the per-frame
  /// cost an individual tenant observes.
  double p50_frame_us = 0.0;
  double p99_frame_us = 0.0;
  double total_cost_usd = 0.0;
  int64_t budget_spend_microusd = 0;
  int64_t budget_breach_tick = -1;  // -1 = cap never crossed (or uncapped).
  int64_t streams_with_breaches = 0;
};

struct FleetRunResult {
  std::vector<FleetStreamResult> streams;
  FleetRunStats stats;
};

/// Per-tenant health summary distilled from one settled stream result —
/// the row of `eventhit_cli fleet --health-report`. Derived purely from
/// FleetStreamResult, so the report is as deterministic as the run.
struct StreamHealth {
  int stream_index = -1;
  int64_t boundaries = 0;
  /// Scored boundaries / total boundaries (1.0 under the full policy).
  double duty_cycle = 1.0;
  /// Lifetime audited failure rates (0 when the denominator is 0).
  double miss_rate = 0.0;
  double miscover_rate = 0.0;
  int64_t breaches = 0;
  int64_t recal_swaps = 0;
  int64_t relay_dropped_orders = 0;
  double relay_drop_rate = 0.0;
  /// Last observed breaker state (0 closed / 1 open / 2 half-open).
  int8_t breaker_state = 0;
  /// Batch-queue residency percentiles in ticks (0 when unbatched).
  double residency_p50 = 0.0;
  double residency_p99 = 0.0;
  double spend_usd = 0.0;
  /// Deterministic triage score: breaches dominate, then a non-closed
  /// breaker, then guarantee pressure and relay loss. Ties break by
  /// stream index, so the report ordering is reproducible.
  double badness = 0.0;
};

struct FleetHealthReport {
  std::vector<StreamHealth> streams;  // Sorted worst-first.
  int64_t streams_total = 0;
  int64_t streams_with_breaches = 0;
  int64_t streams_breaker_open = 0;
  int64_t total_breaches = 0;
  int64_t total_relay_dropped = 0;
  int64_t total_recal_swaps = 0;
  double total_spend_usd = 0.0;
  double mean_duty_cycle = 0.0;
  double worst_miss_rate = 0.0;
  double worst_miscover_rate = 0.0;
};

/// Distills a settled fleet run into the per-tenant health rollup.
FleetHealthReport BuildHealthReport(const FleetRunResult& run);
/// Human-readable report: fleet aggregates plus the `top_n` worst streams.
std::string HealthReportText(const FleetHealthReport& report, int top_n);
/// One-line JSON per stream (the rows of `fleet --health-out` JSONL).
std::string StreamHealthJson(const StreamHealth& health);

class StreamFleet {
 public:
  /// Builds the shared environment and trains the one fleet model
  /// (deterministic in config.runner.seed and thread count). Fleet-level
  /// telemetry goes to `metrics` (nullptr = the global registry) and
  /// fleet.batch spans to `trace` (nullptr disables). Per-stream
  /// components report into a fleet-private registry/logger so N streams
  /// cannot swamp process-global telemetry.
  StreamFleet(const data::Task& task, const FleetConfig& config,
              obs::MetricsRegistry* metrics = nullptr,
              obs::TraceBuffer* trace = nullptr);
  ~StreamFleet();

  StreamFleet(const StreamFleet&) = delete;
  StreamFleet& operator=(const StreamFleet&) = delete;

  /// Pure derivation of one stream's settings from the config.
  StreamSettings DeriveStreamSettings(int stream_index) const;

  /// Runs every stream through the batched fleet loop, wave by wave.
  FleetRunResult Run();

  /// Runs one stream solo — same per-stream state machine, no cross-stream
  /// batching — for the bit-exactness comparison.
  FleetStreamResult RunStreamSolo(int stream_index);

  const data::Task& task() const { return task_; }
  const FleetConfig& config() const { return config_; }
  /// The fleet-level template strategy. Each stream decides with a private
  /// clone of it (recalibration may retune a stream's thresholds without
  /// touching its neighbours); this instance never decides a boundary.
  const core::EventHitStrategy& strategy() const { return *strategy_; }
  /// The fleet-private registry per-stream components report into.
  obs::MetricsRegistry& stream_metrics() { return *stream_metrics_; }

 private:
  struct StreamState;  // Private per-stream shard (stream_fleet.cc).

  void InitStream(StreamState& state, int stream_index);
  /// Completes one deferred boundary: decides from `scores` with the
  /// stream's own strategy (so a recalibration swap on one stream never
  /// leaks into another) and replays the inline completion path.
  void ApplyCompletion(StreamState& state, int64_t anchor,
                       const core::EventScores& scores);
  /// Post-completion stream accounting (relay clock, digests, transcript,
  /// audit, budget). Registered as the marshaller's decision callback so it
  /// runs for scored and policy-reused completions alike, in stream order.
  void OnCompletion(StreamState& state, int64_t anchor,
                    const core::MarshalDecision& decision);
  FleetStreamResult FinishStream(StreamState& state);

  data::Task task_;
  FleetConfig config_;
  int threads_ = 1;
  obs::MetricsRegistry* metrics_;
  obs::TraceBuffer* trace_;
  std::unique_ptr<obs::MetricsRegistry> stream_metrics_;
  std::unique_ptr<obs::Logger> stream_log_;

  std::unique_ptr<eval::TaskEnvironment> env_;
  std::unique_ptr<eval::TrainedEventHit> trained_;
  std::unique_ptr<core::EventHitStrategy> strategy_;
  nn::Workspace ws_;  // Main-thread scoring scratch.

  std::atomic<int64_t> budget_spend_microusd_{0};

  // Cached fleet-level telemetry handles.
  obs::Counter* streams_completed_metric_;
  obs::Counter* frames_pushed_metric_;
  obs::Counter* requests_metric_;
  obs::Counter* batches_metric_;
  obs::Counter* flush_full_metric_;
  obs::Counter* flush_deadline_metric_;
  obs::Counter* flush_final_metric_;
  obs::Counter* budget_breaches_metric_;
  obs::Gauge* streams_active_metric_;
  obs::Gauge* budget_spend_metric_;
  obs::Histogram* batch_fill_metric_;
  obs::Histogram* request_delay_metric_;
};

}  // namespace eventhit::fleet

#endif  // EVENTHIT_FLEET_STREAM_FLEET_H_
