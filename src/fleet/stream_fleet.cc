#include "fleet/stream_fleet.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <utility>

#include "adapt/recal_loop.h"
#include "common/check.h"
#include "common/rng.h"
#include "common/thread_pool.h"
#include "data/record_extractor.h"
#include "fleet/dynamic_batcher.h"
#include "fleet/mpsc_queue.h"
#include "fleet/shard_arena.h"
#include "nn/backend.h"
#include "obs/audit.h"
#include "obs/schema.h"
#include "sched/collect_policy.h"
#include "sched/cost_model.h"
#include "sim/datasets.h"
#include "sim/fault_injector.h"
#include "sim/synthetic_video.h"

namespace eventhit::fleet {
namespace {

// Seed-split salts for the per-stream component streams.
constexpr uint64_t kVideoSalt = 1;
constexpr uint64_t kCloudSalt = 2;
constexpr uint64_t kRelaySalt = 3;
constexpr uint64_t kPhaseSalt = 5;
constexpr uint64_t kMixSalt = 6;

// FNV-1a 64-bit.
constexpr uint64_t kFnvOffset = 1469598103934665603ull;
constexpr uint64_t kFnvPrime = 1099511628211ull;

uint64_t FnvBytes(uint64_t h, const void* data, size_t n) {
  const auto* bytes = static_cast<const unsigned char*>(data);
  for (size_t i = 0; i < n; ++i) {
    h ^= bytes[i];
    h *= kFnvPrime;
  }
  return h;
}

uint64_t FnvI64(uint64_t h, int64_t v) { return FnvBytes(h, &v, sizeof(v)); }

uint64_t FnvF64(uint64_t h, double v) {
  uint64_t bits = 0;
  std::memcpy(&bits, &v, sizeof(bits));
  return FnvBytes(h, &bits, sizeof(bits));
}

double Percentile(std::vector<double> values, double q) {
  if (values.empty()) return 0.0;
  const size_t rank = static_cast<size_t>(
      q * static_cast<double>(values.size() - 1) + 0.5);
  std::nth_element(values.begin(), values.begin() + rank, values.end());
  return values[rank];
}

}  // namespace

// Per-stream shard: every component a tenant stream owns, plus the digest
// accumulators. Lives in a ShardArena slot so adjacent streams never share
// a cache line while parallel phases mutate them.
struct StreamFleet::StreamState {
  StreamSettings settings;
  data::ExtractorConfig extractor;
  std::unique_ptr<sim::SyntheticVideo> video;
  std::unique_ptr<cloud::CloudService> service;
  std::unique_ptr<sim::FaultInjector> faults;
  std::unique_ptr<cloud::CloudRelay> relay;
  std::unique_ptr<core::Marshaller> marshaller;
  std::unique_ptr<obs::GuarantyAuditor> auditor;
  // Private decision strategy: same model/calibrators/options as the fleet
  // template, but swappable per stream by the recalibration loop.
  std::unique_ptr<core::EventHitStrategy> strategy;
  std::unique_ptr<adapt::RecalLoop> recal;
  // Decision provenance ledger (nullptr when FleetConfig::provenance is
  // off). Single-writer: only the thread owning this shard touches it.
  std::unique_ptr<obs::StreamProvenance> provenance;
  // Scores of the boundary currently completing (ApplyCompletion scope);
  // nullptr during policy-reused completions, which carry no fresh scores.
  const core::EventScores* completing_scores = nullptr;

  int64_t next_frame = 0;         // Local push cursor.
  int64_t seq = 0;                // Requests issued.
  int64_t billed_microusd = 0;    // Invoice already reported to the fleet.
  // Most recent offending decision ids (completion order on the stream
  // clock) — the exemplars folded into the exported audit counters.
  int64_t last_miss_decision = -1;
  int64_t last_miscover_decision = -1;
  uint64_t decision_digest = kFnvOffset;
  uint64_t delivery_digest = kFnvOffset;
  bool transcripts_on = false;
  StreamTranscript transcript;
  data::Record pending_record;    // Scratch between push and enqueue.
  bool has_request = false;
};

bool SameStreamResult(const FleetStreamResult& a, const FleetStreamResult& b) {
  auto bits = [](double v) {
    uint64_t u = 0;
    std::memcpy(&u, &v, sizeof(u));
    return u;
  };
  return a.stream_index == b.stream_index &&
         a.decision_digest == b.decision_digest &&
         a.delivery_digest == b.delivery_digest &&
         a.state_digest == b.state_digest &&
         std::memcmp(&a.marshaller, &b.marshaller, sizeof(a.marshaller)) ==
             0 &&
         std::memcmp(&a.relay, &b.relay, sizeof(a.relay)) == 0 &&
         a.invoice.frames_processed == b.invoice.frames_processed &&
         a.invoice.requests == b.invoice.requests &&
         bits(a.invoice.total_cost_usd) == bits(b.invoice.total_cost_usd) &&
         bits(a.invoice.compute_seconds) == bits(b.invoice.compute_seconds) &&
         a.audit_positives == b.audit_positives &&
         a.audit_misses == b.audit_misses &&
         a.audit_endpoints == b.audit_endpoints &&
         a.audit_miscovered == b.audit_miscovered &&
         a.audit_breaches == b.audit_breaches &&
         a.last_miss_decision == b.last_miss_decision &&
         a.last_miscover_decision == b.last_miscover_decision &&
         a.last_breach_decision == b.last_breach_decision &&
         a.recal_triggers_breach == b.recal_triggers_breach &&
         a.recal_triggers_drift == b.recal_triggers_drift &&
         a.recal_refusals_cooldown == b.recal_refusals_cooldown &&
         a.recal_refusals_min_samples == b.recal_refusals_min_samples &&
         a.recal_swaps == b.recal_swaps &&
         a.recal_last_swap_frame == b.recal_last_swap_frame &&
         // The provenance digest folds only clock-pure stamps, so it must
         // be bit-identical between a solo replay and any fleet run. The
         // rollup is deliberately excluded: its batch-residency fields
         // differ between solo and fleet by design.
         a.provenance_digest == b.provenance_digest &&
         a.provenance_boundaries == b.provenance_boundaries &&
         a.provenance_recorded == b.provenance_recorded &&
         a.provenance_overflowed == b.provenance_overflowed;
}

StreamFleet::StreamFleet(const data::Task& task, const FleetConfig& config,
                         obs::MetricsRegistry* metrics,
                         obs::TraceBuffer* trace)
    : task_(task),
      config_(config),
      metrics_(metrics != nullptr ? metrics
                                  : &obs::MetricsRegistry::Global()),
      trace_(trace) {
  EVENTHIT_CHECK_GT(config_.num_streams, 0);
  EVENTHIT_CHECK_GT(config_.wave_size, 0);
  threads_ = config_.threads <= 0 ? ThreadPool::DefaultThreads()
                                  : config_.threads;

  stream_metrics_ = std::make_unique<obs::MetricsRegistry>();
  stream_log_ = std::make_unique<obs::Logger>();
  stream_log_->set_min_level(obs::LogLevel::kError);

  // One shared model for the whole fleet, trained on the task's canonical
  // environment (training is independent of the per-stream specs).
  env_ = std::make_unique<eval::TaskEnvironment>(
      eval::TaskEnvironment::Build(task_, config_.runner));
  const ExecutionContext train_ctx(threads_, config_.runner.seed);
  trained_ = std::make_unique<eval::TrainedEventHit>(
      eval::TrainEventHit(*env_, config_.runner, 0.5, train_ctx));
  core::EventHitStrategyOptions options;
  options.use_cclassify = true;
  options.use_cregress = true;
  options.confidence = config_.confidence;
  options.coverage = config_.coverage;
  strategy_ = std::make_unique<core::EventHitStrategy>(
      trained_->model.get(), trained_->cclassify.get(),
      trained_->cregress.get(), options);

  streams_completed_metric_ =
      metrics_->GetCounter(obs::names::kFleetStreamsCompleted);
  frames_pushed_metric_ =
      metrics_->GetCounter(obs::names::kFleetFramesPushed);
  requests_metric_ =
      metrics_->GetCounter(obs::names::kFleetRequestsSubmitted);
  batches_metric_ = metrics_->GetCounter(obs::names::kFleetBatchesFlushed);
  flush_full_metric_ =
      metrics_->GetCounter(obs::names::kFleetBatchesFlushFull);
  flush_deadline_metric_ =
      metrics_->GetCounter(obs::names::kFleetBatchesFlushDeadline);
  flush_final_metric_ =
      metrics_->GetCounter(obs::names::kFleetBatchesFlushFinal);
  budget_breaches_metric_ =
      metrics_->GetCounter(obs::names::kFleetBudgetBreaches);
  streams_active_metric_ =
      metrics_->GetGauge(obs::names::kFleetStreamsActive);
  budget_spend_metric_ =
      metrics_->GetGauge(obs::names::kFleetBudgetSpendUsd);
  batch_fill_metric_ = metrics_->GetHistogram(obs::names::kFleetBatchFill,
                                              obs::BatchSizeBounds());
  request_delay_metric_ = metrics_->GetHistogram(
      obs::names::kFleetRequestDelayTicks, obs::DelayTickBounds());
}

StreamFleet::~StreamFleet() = default;

StreamSettings StreamFleet::DeriveStreamSettings(int stream_index) const {
  EVENTHIT_CHECK_GE(stream_index, 0);
  EVENTHIT_CHECK_LT(stream_index, config_.num_streams);
  StreamSettings s;
  s.stream_index = stream_index;
  s.stream_seed =
      SplitSeed(config_.base_seed, static_cast<uint64_t>(stream_index) + 1);
  s.video_seed = SplitSeed(s.stream_seed, kVideoSalt);
  s.cloud_seed = SplitSeed(s.stream_seed, kCloudSalt);
  s.relay_seed = SplitSeed(s.stream_seed, kRelaySalt);
  s.fault_seed =
      SplitSeed(config_.fault_seed, static_cast<uint64_t>(stream_index));
  s.phase = config_.stagger_phases
                ? static_cast<int64_t>(SplitSeed(s.stream_seed, kPhaseSalt) %
                                       static_cast<uint64_t>(kStaggerWindow))
                : 0;
  if (config_.vary_event_mix) {
    static constexpr double kGapScales[] = {0.75, 1.0, 1.5};
    s.gap_scale = kGapScales[SplitSeed(s.stream_seed, kMixSalt) % 3];
  }
  s.spec = sim::MakeDatasetSpec(task_.dataset);
  if (config_.frames_per_stream > 0) {
    s.spec.num_frames = config_.frames_per_stream;
  }
  for (auto& event : s.spec.events) {
    event.mean_gap *= s.gap_scale;
  }
  const int64_t margin = static_cast<int64_t>(s.spec.horizon) +
                         static_cast<int64_t>(s.spec.collection_window);
  EVENTHIT_CHECK_GT(s.spec.num_frames, margin);
  s.push_frames = s.spec.num_frames - s.spec.horizon;
  return s;
}

void StreamFleet::InitStream(StreamState& state, int stream_index) {
  state.settings = DeriveStreamSettings(stream_index);
  const StreamSettings& s = state.settings;
  state.extractor.collection_window = s.spec.collection_window;
  state.extractor.horizon = s.spec.horizon;
  state.transcripts_on = config_.record_transcripts;

  if (config_.provenance) {
    state.provenance = std::make_unique<obs::StreamProvenance>(
        stream_index, s.spec.collection_window, s.spec.horizon,
        config_.provenance_ring);
  }
  // Per-tenant Perfetto track on the simulated timeline: tenant spans
  // (auditor breaches) carry tid = stream index, and the thread_name
  // metadata record labels that track in the exported trace.
  if (trace_ != nullptr) {
    trace_->SetThreadName(obs::kSimulatedPid, stream_index,
                          "tenant" + std::to_string(stream_index));
  }

  state.video = std::make_unique<sim::SyntheticVideo>(
      sim::SyntheticVideo::Generate(s.spec, s.video_seed));
  state.service = std::make_unique<cloud::CloudService>(
      state.video.get(), cloud::CloudConfig{}, s.cloud_seed,
      stream_metrics_.get());

  if (config_.fault_profile != "none" && !config_.fault_profile.empty()) {
    auto profile = sim::MakeFaultProfile(config_.fault_profile, s.fault_seed);
    EVENTHIT_CHECK_OK(profile.status());
    state.faults = std::make_unique<sim::FaultInjector>(profile.value());
  }

  cloud::RelayConfig relay_config;
  relay_config.degraded_mode = config_.degraded_mode;
  relay_config.replay_horizon_frames = s.spec.horizon;
  state.relay = std::make_unique<cloud::CloudRelay>(
      state.service.get(), relay_config, s.relay_seed, state.faults.get(),
      stream_metrics_.get(), /*trace=*/nullptr, stream_log_.get());
  state.relay->set_delivery_callback(
      [&state](const cloud::RelayDelivery& delivery) {
        uint64_t h = state.delivery_digest;
        h = FnvI64(h, delivery.request_id);
        h = FnvI64(h, static_cast<int64_t>(delivery.event));
        h = FnvI64(h, delivery.frames.start);
        h = FnvI64(h, delivery.frames.end);
        h = FnvI64(h, delivery.replayed ? 1 : 0);
        for (const bool hit : delivery.detections) {
          h = FnvI64(h, hit ? 1 : 0);
        }
        state.delivery_digest = h;
        if (state.transcripts_on) {
          StreamTranscript::Delivery entry;
          entry.request_id = delivery.request_id;
          entry.event = delivery.event;
          entry.frames = delivery.frames;
          entry.replayed = delivery.replayed;
          entry.detections.assign(delivery.detections.begin(),
                                  delivery.detections.end());
          state.transcript.deliveries.push_back(std::move(entry));
        }
      });

  // Clone the template strategy so this stream owns its thresholds: the
  // recalibration loop may hot-swap per-stream calibrators, and even with
  // recal off every boundary must take the identical (private) code path.
  core::EventHitStrategyOptions options;
  options.use_cclassify = true;
  options.use_cregress = true;
  options.confidence = config_.confidence;
  options.coverage = config_.coverage;
  state.strategy = std::make_unique<core::EventHitStrategy>(
      trained_->model.get(), trained_->cclassify.get(),
      trained_->cregress.get(), options);

  state.marshaller = std::make_unique<core::Marshaller>(
      state.strategy.get(), s.spec.collection_window, s.spec.horizon,
      s.spec.FeatureDim(), task_.event_indices.size(),
      stream_metrics_.get());
  state.marshaller->set_provenance(state.provenance.get());
  // The order carries its own anchor: reused (policy-skipped) completions
  // fire inside PushFrameDeferred during the parallel push phase, where no
  // flush-side "current anchor" exists.
  state.marshaller->set_relay_callback(
      [&state](const core::RelayOrder& order) {
        const cloud::RelayResult result =
            state.relay->Submit(order.event, order.frames, order.anchor);
        if (state.provenance != nullptr) {
          state.provenance->StampRelay(
              order.anchor, result.attempts,
              static_cast<int8_t>(result.outcome),
              static_cast<int8_t>(state.relay->breaker_state()));
        }
      });
  // All post-completion stream accounting (relay clock, digests, audit,
  // budget) rides the marshaller's completion callback so scored and
  // reused boundaries take the identical path in stream order.
  state.marshaller->set_decision_callback(
      [this, &state](int64_t anchor, const core::MarshalDecision& decision,
                     bool /*reused*/) { OnCompletion(state, anchor, decision); });
  if (config_.runner.collect_policy.kind != sched::CollectPolicyKind::kFull) {
    // The policy's schedule feeds on completed scores, so batching delay
    // must stay under one horizon (Marshaller::set_collect_policy).
    EVENTHIT_CHECK_LT(config_.max_batch_delay_ticks,
                      static_cast<int64_t>(s.spec.horizon));
    state.marshaller->set_collect_policy(
        sched::MakeCollectPolicy(config_.runner.collect_policy));
    sched::LocalCostModel cost;
    cost.forward_mflops_per_boundary = sched::EstimateForwardMflops(
        s.spec.collection_window, static_cast<int>(s.spec.FeatureDim()),
        config_.runner.model_template.lstm_hidden,
        config_.runner.model_template.shared_dim,
        config_.runner.model_template.event_hidden,
        static_cast<int>(task_.event_indices.size()), s.spec.horizon);
    state.marshaller->set_cost_model(cost);
  }

  obs::AuditConfig audit_config;
  audit_config.confidence = config_.confidence;
  audit_config.coverage = config_.coverage;
  audit_config.sim_tid = stream_index;
  state.auditor = std::make_unique<obs::GuarantyAuditor>(
      audit_config, stream_metrics_.get(), /*trace=*/nullptr,
      stream_log_.get());

  if (config_.recal) {
    state.recal = std::make_unique<adapt::RecalLoop>(
        trained_->model.get(), state.strategy.get(), state.auditor.get(),
        config_.recal_config, stream_metrics_.get());
  }
}

void StreamFleet::ApplyCompletion(StreamState& state, int64_t anchor,
                                  const core::EventScores& scores) {
  // The completion callback registered in InitStream performs all
  // post-completion accounting; `anchor` only cross-checks FIFO order.
  // Deciding here, against the stream's own strategy, keeps a recal swap
  // on one stream invisible to every other stream in the same batch.
  // The backend and conformal generation live at scoring time: a recal
  // swap between this boundary's scoring and a later one must show the
  // generation the decision actually used.
  if (state.provenance != nullptr) {
    state.provenance->StampInference(
        anchor, nn::BackendKindName(trained_->model->inference_backend()),
        state.strategy->calibrator_generation());
  }
  state.completing_scores = &scores;
  state.marshaller->CompletePrediction(
      state.strategy->DecideFromScores(scores));
  state.completing_scores = nullptr;
}

void StreamFleet::OnCompletion(StreamState& state, int64_t anchor,
                               const core::MarshalDecision& decision) {
  // The relay clock runs on the completion's own anchor frame — batching
  // delay must never shift simulated time (determinism contract).
  state.relay->AdvanceTo(anchor);

  uint64_t h = state.decision_digest;
  h = FnvI64(h, anchor);
  for (size_t k = 0; k < decision.exists.size(); ++k) {
    h = FnvI64(h, decision.exists[k] ? 1 : 0);
    h = FnvI64(h, decision.intervals[k].start);
    h = FnvI64(h, decision.intervals[k].end);
  }
  state.decision_digest = h;
  if (state.transcripts_on) {
    StreamTranscript::Decision entry;
    entry.anchor = anchor;
    entry.exists.assign(decision.exists.begin(), decision.exists.end());
    entry.intervals = decision.intervals;
    state.transcript.decisions.push_back(std::move(entry));
  }

  // Audit against ground truth (every pushed anchor has its horizon inside
  // the generated stream by construction: push_frames = frames - H).
  const int64_t window = state.extractor.collection_window;
  if (anchor >= window - 1 &&
      anchor + state.extractor.horizon < state.video->num_frames()) {
    const data::Record truth =
        data::BuildRecord(*state.video, task_, state.extractor, anchor);
    EVENTHIT_CHECK_EQ(decision.exists.size(), truth.labels.size());
    const int64_t decision_id =
        state.provenance != nullptr
            ? state.provenance->DecisionIdOfAnchor(anchor)
            : -1;
    for (size_t k = 0; k < truth.labels.size(); ++k) {
      const data::EventLabel& label = truth.labels[k];
      obs::AuditOutcome outcome;
      outcome.sim_time = anchor;
      outcome.event = static_cast<int>(k);
      outcome.truth_present = label.present;
      outcome.predicted_present = decision.exists[k];
      outcome.decision_id = decision_id;
      if (label.present && decision.exists[k]) {
        const sim::Interval& interval = decision.intervals[k];
        outcome.start_covered = interval.start <= label.start;
        outcome.end_covered = interval.end >= label.end;
      }
      state.auditor->Observe(outcome);
      if (state.provenance != nullptr) {
        const bool missed = label.present && !decision.exists[k];
        const int miscovered =
            label.present && decision.exists[k]
                ? (outcome.start_covered ? 0 : 1) +
                      (outcome.end_covered ? 0 : 1)
                : 0;
        state.provenance->StampVerdict(anchor, label.present, missed,
                                       miscovered);
        if (missed) state.last_miss_decision = decision_id;
        if (miscovered > 0) state.last_miscover_decision = decision_id;
      }
    }
    // Feed the recalibration loop after the auditor so a breach latched by
    // this very boundary can trigger on it. Policy-reused completions carry
    // no fresh scores and are skipped — identical in fleet and solo runs.
    if (state.recal != nullptr && state.completing_scores != nullptr) {
      state.recal->Observe(anchor, truth, *state.completing_scores);
    }
  }

  // Report the invoice delta to the shared budget accountant in integer
  // micro-USD: integer adds commute, so the aggregate at a tick boundary
  // is independent of completion interleaving.
  const int64_t total_microusd = static_cast<int64_t>(
      std::llround(state.service->invoice().total_cost_usd * 1e6));
  budget_spend_microusd_.fetch_add(total_microusd - state.billed_microusd,
                                   std::memory_order_relaxed);
  state.billed_microusd = total_microusd;
}

FleetStreamResult StreamFleet::FinishStream(StreamState& state) {
  EVENTHIT_CHECK_EQ(state.marshaller->pending_predictions(), 0u);
  state.relay->Flush(state.settings.push_frames);
  state.auditor->Finalize(state.settings.push_frames);

  // Deliveries can still arrive from the final replay pass inside Flush —
  // the digest callback has already folded them in.
  FleetStreamResult result;
  result.stream_index = state.settings.stream_index;
  result.decision_digest = state.decision_digest;
  result.delivery_digest = state.delivery_digest;
  result.marshaller = state.marshaller->stats();
  result.relay = state.relay->stats();
  result.invoice = state.service->invoice();
  const size_t num_events = task_.event_indices.size();
  for (size_t k = 0; k < num_events; ++k) {
    result.audit_positives += state.auditor->positives(static_cast<int>(k));
    result.audit_misses += state.auditor->misses(static_cast<int>(k));
    result.audit_endpoints += state.auditor->endpoints(static_cast<int>(k));
    result.audit_miscovered +=
        state.auditor->miscovered(static_cast<int>(k));
  }
  result.audit_breaches = state.auditor->breach_count();
  result.last_miss_decision = state.last_miss_decision;
  result.last_miscover_decision = state.last_miscover_decision;
  result.last_breach_decision = state.auditor->last_breach_decision_id();
  if (state.recal != nullptr) {
    const adapt::RecalStats& rs = state.recal->stats();
    result.recal_triggers_breach = rs.triggers_breach;
    result.recal_triggers_drift = rs.triggers_drift;
    result.recal_refusals_cooldown = rs.refusals_cooldown;
    result.recal_refusals_min_samples = rs.refusals_min_samples;
    result.recal_swaps = rs.swaps;
    result.recal_last_swap_frame = rs.last_swap_time;
  }
  if (state.provenance != nullptr) {
    result.provenance_digest = state.provenance->Digest();
    result.provenance_boundaries = state.provenance->boundaries();
    result.provenance_recorded = state.provenance->recorded();
    result.provenance_overflowed = state.provenance->overflowed();
    result.provenance_rollup = state.provenance->rollup();
    if (config_.collect_provenance_records) {
      result.provenance_records = state.provenance->ExportResident();
    }
  }

  uint64_t h = result.decision_digest;
  h = FnvI64(h, static_cast<int64_t>(result.delivery_digest));
  h = FnvI64(h, result.marshaller.frames_seen);
  h = FnvI64(h, result.marshaller.horizons_predicted);
  h = FnvI64(h, result.marshaller.frames_relayed);
  h = FnvI64(h, result.marshaller.relay_orders);
  h = FnvI64(h, result.marshaller.horizons_reused);
  h = FnvI64(h, result.marshaller.frames_scored);
  h = FnvI64(h, result.marshaller.frames_skipped);
  h = FnvI64(h, result.marshaller.local_mflops);
  h = FnvI64(h, result.marshaller.saved_mflops);
  h = FnvI64(h, result.relay.orders_submitted);
  h = FnvI64(h, result.relay.orders_delivered);
  h = FnvI64(h, result.relay.orders_replayed);
  h = FnvI64(h, result.relay.orders_dropped);
  h = FnvI64(h, result.relay.frames_submitted);
  h = FnvI64(h, result.relay.frames_delivered);
  h = FnvI64(h, result.relay.frames_dropped);
  h = FnvI64(h, result.relay.frames_pending);
  h = FnvI64(h, result.relay.frames_in_flight);
  h = FnvI64(h, result.relay.attempts);
  h = FnvI64(h, result.relay.retries);
  h = FnvI64(h, result.invoice.frames_processed);
  h = FnvI64(h, result.invoice.requests);
  h = FnvF64(h, result.invoice.total_cost_usd);
  h = FnvF64(h, result.invoice.compute_seconds);
  h = FnvI64(h, result.audit_positives);
  h = FnvI64(h, result.audit_misses);
  h = FnvI64(h, result.audit_endpoints);
  h = FnvI64(h, result.audit_miscovered);
  h = FnvI64(h, result.audit_breaches);
  h = FnvI64(h, result.last_miss_decision);
  h = FnvI64(h, result.last_miscover_decision);
  h = FnvI64(h, result.last_breach_decision);
  h = FnvI64(h, result.recal_triggers_breach);
  h = FnvI64(h, result.recal_triggers_drift);
  h = FnvI64(h, result.recal_refusals_cooldown);
  h = FnvI64(h, result.recal_refusals_min_samples);
  h = FnvI64(h, result.recal_swaps);
  h = FnvI64(h, result.recal_last_swap_frame);
  // The provenance digest is itself clock-pure, so folding it here makes
  // state_digest equality cover the full causal chain too.
  h = FnvI64(h, static_cast<int64_t>(result.provenance_digest));
  h = FnvI64(h, result.provenance_boundaries);
  h = FnvI64(h, result.provenance_overflowed);
  result.state_digest = h;

  if (state.transcripts_on) {
    result.transcript = std::move(state.transcript);
  }
  return result;
}

FleetRunResult StreamFleet::Run() {
  const auto run_start = std::chrono::steady_clock::now();
  const ExecutionContext ctx(threads_, config_.base_seed);
  // The accountant belongs to this run: earlier Run()/RunStreamSolo calls
  // on the same fleet must not carry their spend into it.
  budget_spend_microusd_.store(0, std::memory_order_relaxed);

  FleetRunResult run;
  run.streams.resize(static_cast<size_t>(config_.num_streams));
  FleetRunStats& stats = run.stats;
  stats.streams = config_.num_streams;

  std::vector<double> tick_us;
  std::vector<double> frame_us;
  int64_t batch_fill_sum = 0;

  for (int wave_start = 0; wave_start < config_.num_streams;
       wave_start += config_.wave_size) {
    const int wave_n =
        std::min(config_.wave_size, config_.num_streams - wave_start);
    ShardArena<StreamState> arena(static_cast<size_t>(wave_n));
    ctx.ParallelFor(static_cast<size_t>(wave_n), [&](size_t i) {
      InitStream(arena[i], wave_start + static_cast<int>(i));
    });

    // Tick bounds and per-tick active-stream counts (difference array).
    int64_t max_ticks = 0;
    for (int i = 0; i < wave_n; ++i) {
      const StreamSettings& s = arena[static_cast<size_t>(i)].settings;
      max_ticks = std::max(max_ticks, s.phase + s.push_frames);
    }
    std::vector<int64_t> active_delta(static_cast<size_t>(max_ticks) + 1, 0);
    for (int i = 0; i < wave_n; ++i) {
      const StreamSettings& s = arena[static_cast<size_t>(i)].settings;
      active_delta[static_cast<size_t>(s.phase)] += 1;
      active_delta[static_cast<size_t>(s.phase + s.push_frames)] -= 1;
    }

    MpscQueue<InferenceRequest> queue(static_cast<size_t>(wave_n));
    DynamicBatcher batcher(config_.batch_size,
                           config_.max_batch_delay_ticks);
    std::vector<InferenceRequest> drained;
    drained.reserve(static_cast<size_t>(wave_n));

    int64_t active = 0;
    for (int64_t tick = 0; tick < max_ticks; ++tick) {
      const auto tick_start = std::chrono::steady_clock::now();
      active += active_delta[static_cast<size_t>(tick)];
      streams_active_metric_->Set(static_cast<double>(active));

      // Push phase: every resident stream advances one local frame; the
      // prediction boundaries fan into the MPSC queue.
      ctx.ParallelFor(static_cast<size_t>(wave_n), [&](size_t i) {
        StreamState& state = arena[i];
        const int64_t frame = tick - state.settings.phase;
        if (frame < 0 || frame >= state.settings.push_frames) return;
        EVENTHIT_CHECK_EQ(frame, state.next_frame);
        // Skip feature extraction on frames the policy schedule proves no
        // scored window will read (always needed without a policy).
        const float* features = state.marshaller->NextFrameNeedsFeatures()
                                    ? state.video->FrameFeatures(frame)
                                    : nullptr;
        state.has_request = state.marshaller->PushFrameDeferred(
            features, &state.pending_record);
        ++state.next_frame;
        if (state.has_request) {
          InferenceRequest request;
          request.shard_slot = static_cast<int>(i);
          request.seq = state.seq++;
          request.anchor_frame = state.pending_record.frame;
          request.enqueue_tick = tick;
          request.record = std::move(state.pending_record);
          EVENTHIT_CHECK(queue.TryPush(std::move(request)));
        }
      });

      // Batching phase (serial): canonical order, then flush decisions.
      drained.clear();
      queue.DrainTo(&drained);
      std::sort(drained.begin(), drained.end(),
                [](const InferenceRequest& a, const InferenceRequest& b) {
                  return a.shard_slot < b.shard_slot;
                });
      requests_metric_->Add(static_cast<int64_t>(drained.size()));
      stats.requests += static_cast<int64_t>(drained.size());
      for (auto& request : drained) {
        batcher.Enqueue(std::move(request));
      }

      const bool final_tick = tick == max_ticks - 1;
      for (BatchFlush& flush : batcher.TakeReady(tick, final_tick)) {
        obs::TraceSpan span(trace_, obs::names::kSpanFleetBatch, "fleet");
        const size_t n = flush.requests.size();
        int8_t flush_code = obs::kProvFlushNone;
        switch (flush.reason) {
          case FlushReason::kFull: flush_code = obs::kProvFlushFull; break;
          case FlushReason::kDeadline:
            flush_code = obs::kProvFlushDeadline;
            break;
          case FlushReason::kFinal: flush_code = obs::kProvFlushFinal; break;
        }
        // Batch ordinal within this run — stamped onto every member's
        // provenance record (never the digest: batch placement is a fleet
        // scheduling artifact, not part of the clock-pure chain).
        const int64_t batch_id = stats.batches;
        std::vector<data::Record> records;
        records.reserve(n);
        for (auto& request : flush.requests) {
          request_delay_metric_->Observe(
              static_cast<double>(tick - request.enqueue_tick));
          StreamState& owner =
              arena[static_cast<size_t>(request.shard_slot)];
          if (owner.provenance != nullptr) {
            owner.provenance->StampBatch(request.anchor_frame, batch_id,
                                         flush_code,
                                         tick - request.enqueue_tick);
          }
          records.push_back(std::move(request.record));
        }
        std::vector<core::EventScores> scores(n);
        trained_->model->PredictBatched(records.data(), n, scores.data(),
                                        ws_);
        // Group completions by shard (order within a shard is preserved),
        // then apply shard groups concurrently: different groups touch
        // disjoint stream state (each stream decides with its own
        // strategy inside ApplyCompletion, so no shared-strategy serial
        // pass is needed).
        std::vector<std::pair<size_t, size_t>> groups;  // [begin, end)
        for (size_t j = 0; j < n;) {
          size_t end = j + 1;
          while (end < n && flush.requests[end].shard_slot ==
                                flush.requests[j].shard_slot) {
            ++end;
          }
          groups.emplace_back(j, end);
          j = end;
        }
        ctx.ParallelFor(groups.size(), [&](size_t g) {
          for (size_t j = groups[g].first; j < groups[g].second; ++j) {
            StreamState& state = arena[static_cast<size_t>(
                flush.requests[j].shard_slot)];
            ApplyCompletion(state, flush.requests[j].anchor_frame,
                            scores[j]);
          }
        });

        batches_metric_->Add(1);
        batch_fill_metric_->Observe(static_cast<double>(n));
        batch_fill_sum += static_cast<int64_t>(n);
        ++stats.batches;
        switch (flush.reason) {
          case FlushReason::kFull:
            flush_full_metric_->Add(1);
            ++stats.flush_full;
            break;
          case FlushReason::kDeadline:
            flush_deadline_metric_->Add(1);
            ++stats.flush_deadline;
            break;
          case FlushReason::kFinal:
            flush_final_metric_->Add(1);
            ++stats.flush_final;
            break;
        }
      }

      // Serial tick boundary: frame accounting and the budget accountant.
      frames_pushed_metric_->Add(active);
      stats.frames_pushed += active;
      const int64_t spend =
          budget_spend_microusd_.load(std::memory_order_relaxed);
      budget_spend_metric_->Set(static_cast<double>(spend) * 1e-6);
      if (config_.budget_cap_microusd > 0 &&
          spend >= config_.budget_cap_microusd &&
          stats.budget_breach_tick < 0) {
        stats.budget_breach_tick = tick;
        budget_breaches_metric_->Add(1);
      }

      ++stats.ticks;
      if (config_.collect_tick_latency) {
        const double us =
            std::chrono::duration<double, std::micro>(
                std::chrono::steady_clock::now() - tick_start)
                .count();
        tick_us.push_back(us);
        frame_us.push_back(us / static_cast<double>(std::max<int64_t>(
                                    1, active)));
      }
    }

    EVENTHIT_CHECK_EQ(batcher.pending(), 0u);
    ctx.ParallelFor(static_cast<size_t>(wave_n), [&](size_t i) {
      run.streams[static_cast<size_t>(wave_start) + i] =
          FinishStream(arena[i]);
    });
    streams_completed_metric_->Add(wave_n);
    streams_active_metric_->Set(0.0);
  }

  // Fold the per-tenant audit totals into the exported registry, serially
  // in stream order so the snapshot (values AND exemplars — the last
  // offending stream's last offending decision id) is deterministic at any
  // thread count. The per-stream auditors themselves write to the private
  // stream registry; this is the fleet-wide aggregate a scrape sees.
  obs::Counter* fleet_audit_misses =
      metrics_->GetCounter(obs::names::kAuditMisses);
  obs::Counter* fleet_audit_miscovered =
      metrics_->GetCounter(obs::names::kAuditMiscovered);
  obs::Counter* fleet_audit_breaches =
      metrics_->GetCounter(obs::names::kAuditBreaches);
  for (const FleetStreamResult& result : run.streams) {
    stats.total_cost_usd += result.invoice.total_cost_usd;
    if (result.audit_breaches > 0) ++stats.streams_with_breaches;
    if (result.audit_misses > 0) {
      if (result.last_miss_decision >= 0) {
        fleet_audit_misses->Add(result.audit_misses,
                                result.last_miss_decision);
      } else {
        fleet_audit_misses->Add(result.audit_misses);
      }
    }
    if (result.audit_miscovered > 0) {
      if (result.last_miscover_decision >= 0) {
        fleet_audit_miscovered->Add(result.audit_miscovered,
                                    result.last_miscover_decision);
      } else {
        fleet_audit_miscovered->Add(result.audit_miscovered);
      }
    }
    if (result.audit_breaches > 0) {
      if (result.last_breach_decision >= 0) {
        fleet_audit_breaches->Add(result.audit_breaches,
                                  result.last_breach_decision);
      } else {
        fleet_audit_breaches->Add(result.audit_breaches);
      }
    }
  }
  stats.budget_spend_microusd =
      budget_spend_microusd_.load(std::memory_order_relaxed);
  stats.batch_fill_mean =
      stats.batches > 0
          ? static_cast<double>(batch_fill_sum) /
                static_cast<double>(stats.batches)
          : 0.0;
  stats.elapsed_seconds = std::chrono::duration<double>(
                              std::chrono::steady_clock::now() - run_start)
                              .count();
  if (stats.elapsed_seconds > 0.0) {
    stats.streams_per_sec =
        static_cast<double>(stats.streams) / stats.elapsed_seconds;
    stats.frames_per_sec =
        static_cast<double>(stats.frames_pushed) / stats.elapsed_seconds;
  }
  stats.p50_tick_us = Percentile(tick_us, 0.50);
  stats.p99_tick_us = Percentile(tick_us, 0.99);
  stats.p50_frame_us = Percentile(frame_us, 0.50);
  stats.p99_frame_us = Percentile(frame_us, 0.99);
  return run;
}

FleetStreamResult StreamFleet::RunStreamSolo(int stream_index) {
  StreamState state;
  InitStream(state, stream_index);
  nn::Workspace ws;
  data::Record record;
  int64_t solo_batches = 0;
  for (int64_t frame = 0; frame < state.settings.push_frames; ++frame) {
    const float* features = state.marshaller->NextFrameNeedsFeatures()
                                ? state.video->FrameFeatures(frame)
                                : nullptr;
    if (!state.marshaller->PushFrameDeferred(features, &record)) {
      continue;
    }
    // Solo scoring happens inline, so the batch stamp records zero
    // residency and the solo flush reason (batch fields never enter the
    // digest, so the solo == fleet digest contract is untouched).
    if (state.provenance != nullptr) {
      state.provenance->StampBatch(record.frame, solo_batches++,
                                   obs::kProvFlushSolo, 0);
    }
    // Same scoring path as the fleet (PredictBatched at batch size 1 is
    // bit-identical to any other composition by the PR 3 contract).
    core::EventScores scores;
    trained_->model->PredictBatched(&record, 1, &scores, ws);
    ApplyCompletion(state, record.frame, scores);
  }
  return FinishStream(state);
}

namespace {

std::string Fixed(double value, int digits) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.*f", digits, value);
  return buffer;
}

}  // namespace

FleetHealthReport BuildHealthReport(const FleetRunResult& run) {
  FleetHealthReport report;
  report.streams_total = static_cast<int64_t>(run.streams.size());
  report.streams.reserve(run.streams.size());
  for (const FleetStreamResult& result : run.streams) {
    StreamHealth h;
    h.stream_index = result.stream_index;
    h.boundaries = result.provenance_boundaries;
    const int64_t scored = result.marshaller.horizons_predicted;
    const int64_t total = scored + result.marshaller.horizons_reused;
    h.duty_cycle = total > 0
                       ? static_cast<double>(scored) /
                             static_cast<double>(total)
                       : 1.0;
    h.miss_rate = result.audit_positives > 0
                      ? static_cast<double>(result.audit_misses) /
                            static_cast<double>(result.audit_positives)
                      : 0.0;
    h.miscover_rate =
        result.audit_endpoints > 0
            ? static_cast<double>(result.audit_miscovered) /
                  static_cast<double>(result.audit_endpoints)
            : 0.0;
    h.breaches = result.audit_breaches;
    h.recal_swaps = result.recal_swaps;
    h.relay_dropped_orders = result.relay.orders_dropped;
    h.relay_drop_rate =
        result.relay.orders_submitted > 0
            ? static_cast<double>(result.relay.orders_dropped) /
                  static_cast<double>(result.relay.orders_submitted)
            : 0.0;
    h.breaker_state = result.provenance_rollup.last_breaker_state;
    h.residency_p50 = result.provenance_rollup.ResidencyPercentile(0.50);
    h.residency_p99 = result.provenance_rollup.ResidencyPercentile(0.99);
    h.spend_usd = result.invoice.total_cost_usd;
    // Triage score: a latched breach outranks everything, a non-closed
    // breaker outranks rate pressure, and the continuous terms order the
    // remainder. Every input is deterministic, so the sort is too.
    h.badness = 1e6 * static_cast<double>(h.breaches) +
                1e5 * (h.breaker_state != 0 ? 1.0 : 0.0) +
                1e4 * h.miss_rate + 1e4 * h.miscover_rate +
                1e3 * h.relay_drop_rate + h.residency_p99;

    report.streams_with_breaches += h.breaches > 0 ? 1 : 0;
    report.streams_breaker_open += h.breaker_state != 0 ? 1 : 0;
    report.total_breaches += h.breaches;
    report.total_relay_dropped += h.relay_dropped_orders;
    report.total_recal_swaps += h.recal_swaps;
    report.total_spend_usd += h.spend_usd;
    report.mean_duty_cycle += h.duty_cycle;
    report.worst_miss_rate = std::max(report.worst_miss_rate, h.miss_rate);
    report.worst_miscover_rate =
        std::max(report.worst_miscover_rate, h.miscover_rate);
    report.streams.push_back(h);
  }
  if (report.streams_total > 0) {
    report.mean_duty_cycle /= static_cast<double>(report.streams_total);
  }
  std::sort(report.streams.begin(), report.streams.end(),
            [](const StreamHealth& a, const StreamHealth& b) {
              if (a.badness != b.badness) return a.badness > b.badness;
              return a.stream_index < b.stream_index;
            });
  return report;
}

std::string HealthReportText(const FleetHealthReport& report, int top_n) {
  std::string out;
  out += "fleet health: " + std::to_string(report.streams_total) +
         " streams, " + std::to_string(report.streams_with_breaches) +
         " with breaches, " + std::to_string(report.streams_breaker_open) +
         " with breaker not closed\n";
  out += "  total breaches " + std::to_string(report.total_breaches) +
         ", relay orders dropped " +
         std::to_string(report.total_relay_dropped) + ", recal swaps " +
         std::to_string(report.total_recal_swaps) + "\n";
  out += "  mean duty cycle " + Fixed(report.mean_duty_cycle, 3) +
         ", worst miss rate " + Fixed(report.worst_miss_rate, 3) +
         ", worst miscoverage " + Fixed(report.worst_miscover_rate, 3) +
         ", spend $" + Fixed(report.total_spend_usd, 4) + "\n";
  const size_t rows = std::min<size_t>(
      report.streams.size(),
      static_cast<size_t>(std::max(0, top_n)));
  if (rows == 0) return out;
  out += "  worst " + std::to_string(rows) + " streams:\n";
  out += "    stream  breach  brk        duty   miss   miscov  drop   "
         "res_p99  swaps\n";
  for (size_t i = 0; i < rows; ++i) {
    const StreamHealth& h = report.streams[i];
    char line[160];
    std::snprintf(line, sizeof(line),
                  "    %-7d %-7lld %-10s %-6.3f %-6.3f %-7.3f %-6.3f "
                  "%-8.1f %lld\n",
                  h.stream_index, static_cast<long long>(h.breaches),
                  obs::ProvenanceBreakerName(h.breaker_state), h.duty_cycle,
                  h.miss_rate, h.miscover_rate, h.relay_drop_rate,
                  h.residency_p99, static_cast<long long>(h.recal_swaps));
    out += line;
  }
  return out;
}

std::string StreamHealthJson(const StreamHealth& h) {
  std::string out = "{";
  auto field = [&out](const char* key, const std::string& value) {
    if (out.size() > 1) out += ',';
    out += '"';
    out += key;
    out += "\":";
    out += value;
  };
  field("stream", std::to_string(h.stream_index));
  field("boundaries", std::to_string(h.boundaries));
  field("duty_cycle", Fixed(h.duty_cycle, 6));
  field("miss_rate", Fixed(h.miss_rate, 6));
  field("miscover_rate", Fixed(h.miscover_rate, 6));
  field("breaches", std::to_string(h.breaches));
  field("recal_swaps", std::to_string(h.recal_swaps));
  field("relay_dropped_orders", std::to_string(h.relay_dropped_orders));
  field("relay_drop_rate", Fixed(h.relay_drop_rate, 6));
  field("breaker_state",
        "\"" + std::string(obs::ProvenanceBreakerName(h.breaker_state)) +
            "\"");
  field("residency_p50", Fixed(h.residency_p50, 1));
  field("residency_p99", Fixed(h.residency_p99, 1));
  field("spend_usd", Fixed(h.spend_usd, 6));
  field("badness", Fixed(h.badness, 3));
  out += '}';
  return out;
}

}  // namespace eventhit::fleet
