#include "features/autoencoder.h"

#include <algorithm>
#include <numeric>

#include "common/check.h"
#include "nn/activations.h"
#include "nn/adam.h"

namespace eventhit::features {

Autoencoder::Autoencoder(size_t input_dim, const Options& options)
    : options_(options), rng_(options.seed) {
  EVENTHIT_CHECK_GT(input_dim, 0u);
  EVENTHIT_CHECK_GT(options.latent_dim, 0u);
  EVENTHIT_CHECK_GT(options.hidden_dim, 0u);
  Rng init(rng_.Fork(1));
  enc1_ = nn::Dense("ae.enc1", input_dim, options.hidden_dim, init);
  enc2_ = nn::Dense("ae.enc2", options.hidden_dim, options.latent_dim, init);
  dec1_ = nn::Dense("ae.dec1", options.latent_dim, options.hidden_dim, init);
  dec2_ = nn::Dense("ae.dec2", options.hidden_dim, input_dim, init);
}

void Autoencoder::Reconstruct(const float* frame, nn::Vec& h1, nn::Vec& code,
                              nn::Vec& h2, nn::Vec& out) const {
  enc1_.Forward(frame, h1);
  nn::TanhInPlace(h1.data(), h1.size());
  enc2_.Forward(h1.data(), code);
  nn::TanhInPlace(code.data(), code.size());
  dec1_.Forward(code.data(), h2);
  nn::TanhInPlace(h2.data(), h2.size());
  dec2_.Forward(h2.data(), out);  // Linear output.
}

void Autoencoder::Encode(const float* frame, nn::Vec& code) const {
  nn::Vec h1;
  enc1_.Forward(frame, h1);
  nn::TanhInPlace(h1.data(), h1.size());
  enc2_.Forward(h1.data(), code);
  nn::TanhInPlace(code.data(), code.size());
}

double Autoencoder::ReconstructionError(const float* frame) const {
  nn::Vec h1, code, h2, out;
  Reconstruct(frame, h1, code, h2, out);
  double mse = 0.0;
  for (size_t c = 0; c < out.size(); ++c) {
    const double diff = out[c] - frame[c];
    mse += diff * diff;
  }
  return mse / static_cast<double>(out.size());
}

std::vector<double> Autoencoder::Train(
    const std::vector<data::Record>& records) {
  EVENTHIT_CHECK(!records.empty());
  const size_t d = input_dim();

  // Collect frame pointers once.
  std::vector<const float*> frames;
  for (const data::Record& record : records) {
    EVENTHIT_CHECK_EQ(record.covariates.size() % d, 0u);
    const size_t m = record.covariates.size() / d;
    for (size_t t = 0; t < m; ++t) {
      frames.push_back(record.covariates.data() + t * d);
    }
  }

  nn::ParameterRefs params;
  enc1_.CollectParameters(params);
  enc2_.CollectParameters(params);
  dec1_.CollectParameters(params);
  dec2_.CollectParameters(params);
  nn::AdamOptions adam;
  adam.learning_rate = options_.learning_rate;
  nn::AdamOptimizer optimizer(params, adam);

  std::vector<size_t> order(frames.size());
  std::iota(order.begin(), order.end(), 0);
  Rng shuffle_rng(rng_.Fork(2));

  std::vector<double> history;
  const auto batch = static_cast<size_t>(std::max(options_.batch_size, 1));
  nn::Vec h1, code, h2, out;
  nn::Vec dout(d), dh2, dcode, dh1;
  for (int epoch = 0; epoch < options_.epochs; ++epoch) {
    shuffle_rng.Shuffle(order);
    double epoch_mse = 0.0;
    for (size_t begin = 0; begin < order.size(); begin += batch) {
      const size_t end = std::min(begin + batch, order.size());
      for (size_t i = begin; i < end; ++i) {
        const float* x = frames[order[i]];
        Reconstruct(x, h1, code, h2, out);
        // MSE loss and gradient.
        double mse = 0.0;
        for (size_t c = 0; c < d; ++c) {
          const float diff = out[c] - x[c];
          mse += static_cast<double>(diff) * diff;
          dout[c] = 2.0f * diff / static_cast<float>(d);
        }
        epoch_mse += mse / static_cast<double>(d);

        dh2.assign(h2.size(), 0.0f);
        dec2_.Backward(h2.data(), dout.data(), dh2.data());
        nn::Vec dh2_pre(h2.size());
        nn::TanhBackward(h2.data(), dh2.data(), dh2_pre.data(), h2.size());
        dcode.assign(code.size(), 0.0f);
        dec1_.Backward(code.data(), dh2_pre.data(), dcode.data());
        nn::Vec dcode_pre(code.size());
        nn::TanhBackward(code.data(), dcode.data(), dcode_pre.data(),
                         code.size());
        dh1.assign(h1.size(), 0.0f);
        enc2_.Backward(h1.data(), dcode_pre.data(), dh1.data());
        nn::Vec dh1_pre(h1.size());
        nn::TanhBackward(h1.data(), dh1.data(), dh1_pre.data(), h1.size());
        enc1_.Backward(x, dh1_pre.data(), nullptr);
      }
      nn::ScaleGradients(params, 1.0f / static_cast<float>(end - begin));
      optimizer.Step();
    }
    history.push_back(epoch_mse / static_cast<double>(frames.size()));
  }
  return history;
}

data::Record Autoencoder::EncodeRecord(const data::Record& record) const {
  const size_t d = input_dim();
  EVENTHIT_CHECK_EQ(record.covariates.size() % d, 0u);
  const size_t m = record.covariates.size() / d;
  data::Record out;
  out.frame = record.frame;
  out.labels = record.labels;
  out.covariates.resize(m * latent_dim());
  nn::Vec code;
  for (size_t t = 0; t < m; ++t) {
    Encode(record.covariates.data() + t * d, code);
    std::copy(code.begin(), code.end(),
              out.covariates.begin() + t * latent_dim());
  }
  return out;
}

std::vector<data::Record> Autoencoder::EncodeRecords(
    const std::vector<data::Record>& records) const {
  std::vector<data::Record> out;
  out.reserve(records.size());
  for (const data::Record& record : records) {
    out.push_back(EncodeRecord(record));
  }
  return out;
}

}  // namespace eventhit::features
