#include "features/standardizer.h"

#include <cmath>

#include "common/check.h"

namespace eventhit::features {
namespace {
constexpr double kMinStd = 1e-6;
}  // namespace

Standardizer Standardizer::Fit(const std::vector<data::Record>& records,
                               size_t feature_dim) {
  EVENTHIT_CHECK(!records.empty());
  EVENTHIT_CHECK_GT(feature_dim, 0u);
  std::vector<double> sum(feature_dim, 0.0);
  std::vector<double> sum_sq(feature_dim, 0.0);
  int64_t frames = 0;
  for (const data::Record& record : records) {
    EVENTHIT_CHECK_EQ(record.covariates.size() % feature_dim, 0u);
    const size_t m = record.covariates.size() / feature_dim;
    for (size_t t = 0; t < m; ++t) {
      const float* row = record.covariates.data() + t * feature_dim;
      for (size_t c = 0; c < feature_dim; ++c) {
        sum[c] += row[c];
        sum_sq[c] += static_cast<double>(row[c]) * row[c];
      }
    }
    frames += static_cast<int64_t>(m);
  }
  EVENTHIT_CHECK_GT(frames, 0);
  std::vector<double> means(feature_dim), stds(feature_dim);
  for (size_t c = 0; c < feature_dim; ++c) {
    means[c] = sum[c] / static_cast<double>(frames);
    const double variance =
        sum_sq[c] / static_cast<double>(frames) - means[c] * means[c];
    stds[c] = std::sqrt(std::max(variance, 0.0));
  }
  return Standardizer(std::move(means), std::move(stds));
}

Standardizer::Standardizer(std::vector<double> means,
                           std::vector<double> stds)
    : means_(std::move(means)), stds_(std::move(stds)) {
  EVENTHIT_CHECK_EQ(means_.size(), stds_.size());
  EVENTHIT_CHECK(!means_.empty());
  for (double& s : stds_) s = std::max(s, kMinStd);
}

void Standardizer::Apply(std::vector<float>& covariates) const {
  const size_t d = means_.size();
  EVENTHIT_CHECK_EQ(covariates.size() % d, 0u);
  const size_t m = covariates.size() / d;
  for (size_t t = 0; t < m; ++t) {
    float* row = covariates.data() + t * d;
    for (size_t c = 0; c < d; ++c) {
      row[c] = static_cast<float>((row[c] - means_[c]) / stds_[c]);
    }
  }
}

void Standardizer::ApplyAll(std::vector<data::Record>& records) const {
  for (data::Record& record : records) Apply(record.covariates);
}

}  // namespace eventhit::features
