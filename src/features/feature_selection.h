// Correlation-based feature selection (§III: "We select features through
// standard correlation analysis methods [25]").
//
// For each channel, computes the absolute Pearson correlation between the
// channel's window summary (mean over the collection window) and each
// event's existence label, and keeps the channels whose best correlation
// across events clears a threshold (or the top-k).
#ifndef EVENTHIT_FEATURES_FEATURE_SELECTION_H_
#define EVENTHIT_FEATURES_FEATURE_SELECTION_H_

#include <cstddef>
#include <vector>

#include "data/record.h"

namespace eventhit::features {

/// Per-channel relevance report.
struct ChannelScore {
  size_t channel = 0;
  /// max over events of |corr(window-mean of channel, 1[event present])|.
  double score = 0.0;
};

/// Scores every channel against every event label. Records must share the
/// covariate layout (M x feature_dim).
std::vector<ChannelScore> ScoreChannels(
    const std::vector<data::Record>& records, size_t feature_dim);

/// Channels whose score clears `min_score`, in channel order. Guarantees a
/// non-empty result by falling back to the single best channel.
std::vector<size_t> SelectChannels(const std::vector<data::Record>& records,
                                   size_t feature_dim, double min_score);

/// The `k` best-scoring channels (k clamped to D), in channel order.
std::vector<size_t> SelectTopChannels(
    const std::vector<data::Record>& records, size_t feature_dim, size_t k);

/// Projects a record's covariates onto the kept channels, returning a new
/// record with feature dimension channels.size().
data::Record ProjectRecord(const data::Record& record, size_t feature_dim,
                           const std::vector<size_t>& channels);

/// Projects a whole record set.
std::vector<data::Record> ProjectRecords(
    const std::vector<data::Record>& records, size_t feature_dim,
    const std::vector<size_t>& channels);

}  // namespace eventhit::features

#endif  // EVENTHIT_FEATURES_FEATURE_SELECTION_H_
