// Per-channel standardization of covariate blocks (zero mean, unit
// variance), fitted on training records. Part of the feature-engineering
// stage of §III ("like any other application of ML, this is a task that
// requires feature engineering").
#ifndef EVENTHIT_FEATURES_STANDARDIZER_H_
#define EVENTHIT_FEATURES_STANDARDIZER_H_

#include <cstddef>
#include <vector>

#include "data/record.h"

namespace eventhit::features {

/// Fitted per-channel affine transform x -> (x - mean) / std.
class Standardizer {
 public:
  /// Fits channel statistics over every frame of every record's covariate
  /// block. `feature_dim` is D; records' covariates must be multiples of D.
  static Standardizer Fit(const std::vector<data::Record>& records,
                          size_t feature_dim);

  /// Builds from explicit statistics (tests, persisted pipelines).
  Standardizer(std::vector<double> means, std::vector<double> stds);

  size_t feature_dim() const { return means_.size(); }
  const std::vector<double>& means() const { return means_; }
  const std::vector<double>& stds() const { return stds_; }

  /// Standardizes a covariate block in place (any number of frames).
  void Apply(std::vector<float>& covariates) const;

  /// Standardizes every record in `records` in place.
  void ApplyAll(std::vector<data::Record>& records) const;

 private:
  std::vector<double> means_;
  std::vector<double> stds_;  // Floored away from zero.
};

}  // namespace eventhit::features

#endif  // EVENTHIT_FEATURES_STANDARDIZER_H_
