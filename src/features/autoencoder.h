// Dimensionality reduction via a small autoencoder (§III cites
// autoencoder-based reduction [26][27] as an alternative feature-
// engineering stage). Trained on individual frame feature vectors with MSE
// reconstruction loss; the bounded (tanh) code replaces the raw channels.
#ifndef EVENTHIT_FEATURES_AUTOENCODER_H_
#define EVENTHIT_FEATURES_AUTOENCODER_H_

#include <vector>

#include "common/rng.h"
#include "data/record.h"
#include "nn/dense.h"

namespace eventhit::features {

/// A 2-layer encoder / 2-layer decoder with tanh activations.
class Autoencoder {
 public:
  struct Options {
    size_t latent_dim = 6;
    size_t hidden_dim = 16;
    int epochs = 25;
    int batch_size = 32;
    double learning_rate = 3e-3;
    uint64_t seed = 1;
  };

  Autoencoder(size_t input_dim, const Options& options);

  size_t input_dim() const { return enc1_.in_dim(); }
  size_t latent_dim() const { return enc2_.out_dim(); }

  /// Trains on every frame of every record's covariate block (feature
  /// dimension must equal input_dim()). Returns per-epoch mean MSE.
  std::vector<double> Train(const std::vector<data::Record>& records);

  /// Encodes one frame's features into the latent code.
  void Encode(const float* frame, nn::Vec& code) const;

  /// Mean squared reconstruction error of one frame.
  double ReconstructionError(const float* frame) const;

  /// Replaces a record's covariates with their per-frame codes (the result
  /// has feature dimension latent_dim()).
  data::Record EncodeRecord(const data::Record& record) const;
  std::vector<data::Record> EncodeRecords(
      const std::vector<data::Record>& records) const;

 private:
  void Reconstruct(const float* frame, nn::Vec& h1, nn::Vec& code,
                   nn::Vec& h2, nn::Vec& out) const;

  Options options_;
  nn::Dense enc1_, enc2_, dec1_, dec2_;
  Rng rng_;
};

}  // namespace eventhit::features

#endif  // EVENTHIT_FEATURES_AUTOENCODER_H_
