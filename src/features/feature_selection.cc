#include "features/feature_selection.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "common/stats.h"

namespace eventhit::features {
namespace {

// Window mean of one channel of one record.
double ChannelMean(const data::Record& record, size_t feature_dim,
                   size_t channel) {
  const size_t m = record.covariates.size() / feature_dim;
  double sum = 0.0;
  for (size_t t = 0; t < m; ++t) {
    sum += record.covariates[t * feature_dim + channel];
  }
  return sum / static_cast<double>(m);
}

}  // namespace

std::vector<ChannelScore> ScoreChannels(
    const std::vector<data::Record>& records, size_t feature_dim) {
  EVENTHIT_CHECK(!records.empty());
  EVENTHIT_CHECK_GT(feature_dim, 0u);
  const size_t k_events = records[0].labels.size();
  EVENTHIT_CHECK_GT(k_events, 0u);

  // Label series per event.
  std::vector<std::vector<double>> labels(k_events,
                                          std::vector<double>(records.size()));
  for (size_t i = 0; i < records.size(); ++i) {
    EVENTHIT_CHECK_EQ(records[i].labels.size(), k_events);
    for (size_t k = 0; k < k_events; ++k) {
      labels[k][i] = records[i].labels[k].present ? 1.0 : 0.0;
    }
  }

  std::vector<ChannelScore> scores(feature_dim);
  std::vector<double> series(records.size());
  for (size_t c = 0; c < feature_dim; ++c) {
    for (size_t i = 0; i < records.size(); ++i) {
      series[i] = ChannelMean(records[i], feature_dim, c);
    }
    double best = 0.0;
    for (size_t k = 0; k < k_events; ++k) {
      best = std::max(best, std::fabs(PearsonCorrelation(series, labels[k])));
    }
    scores[c] = ChannelScore{c, best};
  }
  return scores;
}

std::vector<size_t> SelectChannels(const std::vector<data::Record>& records,
                                   size_t feature_dim, double min_score) {
  const std::vector<ChannelScore> scores = ScoreChannels(records, feature_dim);
  std::vector<size_t> kept;
  for (const ChannelScore& score : scores) {
    if (score.score >= min_score) kept.push_back(score.channel);
  }
  if (kept.empty()) {
    // Never return an empty feature set: keep the single best channel.
    const auto best = std::max_element(
        scores.begin(), scores.end(),
        [](const ChannelScore& a, const ChannelScore& b) {
          return a.score < b.score;
        });
    kept.push_back(best->channel);
  }
  return kept;
}

std::vector<size_t> SelectTopChannels(
    const std::vector<data::Record>& records, size_t feature_dim, size_t k) {
  EVENTHIT_CHECK_GT(k, 0u);
  std::vector<ChannelScore> scores = ScoreChannels(records, feature_dim);
  std::sort(scores.begin(), scores.end(),
            [](const ChannelScore& a, const ChannelScore& b) {
              if (a.score != b.score) return a.score > b.score;
              return a.channel < b.channel;
            });
  scores.resize(std::min(k, scores.size()));
  std::vector<size_t> kept;
  kept.reserve(scores.size());
  for (const ChannelScore& score : scores) kept.push_back(score.channel);
  std::sort(kept.begin(), kept.end());
  return kept;
}

data::Record ProjectRecord(const data::Record& record, size_t feature_dim,
                           const std::vector<size_t>& channels) {
  EVENTHIT_CHECK(!channels.empty());
  EVENTHIT_CHECK_EQ(record.covariates.size() % feature_dim, 0u);
  const size_t m = record.covariates.size() / feature_dim;
  data::Record out;
  out.frame = record.frame;
  out.labels = record.labels;
  out.covariates.resize(m * channels.size());
  for (size_t t = 0; t < m; ++t) {
    const float* src = record.covariates.data() + t * feature_dim;
    float* dst = out.covariates.data() + t * channels.size();
    for (size_t j = 0; j < channels.size(); ++j) {
      EVENTHIT_CHECK_LT(channels[j], feature_dim);
      dst[j] = src[channels[j]];
    }
  }
  return out;
}

std::vector<data::Record> ProjectRecords(
    const std::vector<data::Record>& records, size_t feature_dim,
    const std::vector<size_t>& channels) {
  std::vector<data::Record> out;
  out.reserve(records.size());
  for (const data::Record& record : records) {
    out.push_back(ProjectRecord(record, feature_dim, channels));
  }
  return out;
}

}  // namespace eventhit::features
