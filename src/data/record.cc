#include "data/record.h"

namespace eventhit::data {

bool AnyEventPresent(const Record& record) {
  for (const EventLabel& label : record.labels) {
    if (label.present) return true;
  }
  return false;
}

}  // namespace eventhit::data
