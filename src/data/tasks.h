// The sixteen prediction tasks of Table II: each task names a dataset and a
// subset of its event types whose occurrences must be predicted jointly.
#ifndef EVENTHIT_DATA_TASKS_H_
#define EVENTHIT_DATA_TASKS_H_

#include <cstddef>
#include <string>
#include <vector>

#include "common/status.h"
#include "sim/datasets.h"

namespace eventhit::data {

/// One prediction task.
struct Task {
  std::string name;                  // "TA1"
  sim::DatasetId dataset;            // Source dataset.
  std::vector<size_t> event_indices; // Local event indices in the dataset.
  std::vector<int> global_events;    // Paper numbering E1..E12 (diagnostics).
};

/// All tasks TA1..TA16 in Table II order.
const std::vector<Task>& AllTasks();

/// Looks a task up by name ("TA7"); NotFoundError if unknown.
Result<Task> FindTask(const std::string& name);

}  // namespace eventhit::data

#endif  // EVENTHIT_DATA_TASKS_H_
