#include "data/record_extractor.h"

#include <algorithm>
#include <cstring>

#include "common/check.h"

namespace eventhit::data {
namespace {

// Minimum/maximum legal anchor for the given margins.
int64_t MinAnchor(const ExtractorConfig& config) {
  return config.collection_window - 1;
}
int64_t MaxAnchor(const sim::SyntheticVideo& video,
                  const ExtractorConfig& config) {
  return video.num_frames() - config.horizon - 1;
}

EventLabel LabelFor(const sim::SyntheticVideo& video, size_t event_index,
                    int64_t frame, int horizon) {
  EventLabel label;
  const sim::Interval window{frame + 1, frame + horizon};
  const auto occurrence =
      video.timeline().FirstOverlapping(event_index, window);
  if (!occurrence.has_value()) return label;
  label.present = true;
  label.start = static_cast<int>(
      std::max<int64_t>(occurrence->start - frame, 1));
  label.censored = occurrence->end > frame + horizon;
  label.end = static_cast<int>(
      std::min<int64_t>(occurrence->end - frame, horizon));
  return label;
}

}  // namespace

Record BuildRecord(const sim::SyntheticVideo& video, const Task& task,
                   const ExtractorConfig& config, int64_t frame) {
  EVENTHIT_CHECK_GE(frame, MinAnchor(config));
  EVENTHIT_CHECK_LE(frame, MaxAnchor(video, config));

  Record record;
  record.frame = frame;
  const size_t d = video.feature_dim();
  const size_t m = static_cast<size_t>(config.collection_window);
  record.covariates.resize(m * d);
  // Frames f_{n-M+1} .. f_n are contiguous in the stream; one memcpy.
  const float* src = video.FrameFeatures(frame - config.collection_window + 1);
  std::memcpy(record.covariates.data(), src, m * d * sizeof(float));

  record.labels.reserve(task.event_indices.size());
  for (size_t event_index : task.event_indices) {
    record.labels.push_back(
        LabelFor(video, event_index, frame, config.horizon));
  }
  return record;
}

SplitRanges ComputeSplits(const sim::SyntheticVideo& video,
                          const ExtractorConfig& config, double train_frac,
                          double calib_frac) {
  EVENTHIT_CHECK_GT(train_frac, 0.0);
  EVENTHIT_CHECK_GT(calib_frac, 0.0);
  EVENTHIT_CHECK_LT(train_frac + calib_frac, 1.0);
  const int64_t lo = MinAnchor(config);
  const int64_t hi = MaxAnchor(video, config);
  EVENTHIT_CHECK_LT(lo, hi);
  const auto span = static_cast<double>(hi - lo);
  const int64_t train_end = lo + static_cast<int64_t>(span * train_frac);
  const int64_t calib_end =
      lo + static_cast<int64_t>(span * (train_frac + calib_frac));
  SplitRanges splits;
  splits.train = sim::Interval{lo, train_end - 1};
  splits.calib = sim::Interval{train_end, calib_end - 1};
  splits.test = sim::Interval{calib_end, hi};
  return splits;
}

std::vector<Record> SampleUniformRecords(const sim::SyntheticVideo& video,
                                         const Task& task,
                                         const ExtractorConfig& config,
                                         const sim::Interval& range,
                                         size_t count, Rng& rng) {
  EVENTHIT_CHECK(!range.empty());
  std::vector<Record> records;
  records.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    const int64_t frame = rng.UniformInt(range.start, range.end);
    records.push_back(BuildRecord(video, task, config, frame));
  }
  return records;
}

std::vector<Record> SampleBalancedRecords(const sim::SyntheticVideo& video,
                                          const Task& task,
                                          const ExtractorConfig& config,
                                          const sim::Interval& range,
                                          size_t count,
                                          double positive_fraction, Rng& rng) {
  EVENTHIT_CHECK(!range.empty());
  EVENTHIT_CHECK_GE(positive_fraction, 0.0);
  EVENTHIT_CHECK_LE(positive_fraction, 1.0);
  std::vector<Record> records;
  records.reserve(count);
  const auto target_positives =
      static_cast<size_t>(positive_fraction * static_cast<double>(count));
  size_t positives = 0;
  // Rejection sampling with a bounded number of attempts so extremely sparse
  // streams still terminate.
  const size_t max_attempts = count * 200;
  size_t attempts = 0;
  while (records.size() < count && attempts < max_attempts) {
    ++attempts;
    const int64_t frame = rng.UniformInt(range.start, range.end);
    Record record = BuildRecord(video, task, config, frame);
    const bool positive = AnyEventPresent(record);
    const size_t remaining = count - records.size();
    const size_t needed_positives =
        positives >= target_positives ? 0 : target_positives - positives;
    if (positive) {
      records.push_back(std::move(record));
      ++positives;
    } else if (remaining > needed_positives) {
      records.push_back(std::move(record));
    }
    // Otherwise: only positives still needed; reject this negative.
  }
  // If positives ran short, top up with uniform samples.
  while (records.size() < count) {
    const int64_t frame = rng.UniformInt(range.start, range.end);
    records.push_back(BuildRecord(video, task, config, frame));
  }
  return records;
}

std::vector<Record> StridedRecords(const sim::SyntheticVideo& video,
                                   const Task& task,
                                   const ExtractorConfig& config,
                                   const sim::Interval& range,
                                   int64_t stride) {
  EVENTHIT_CHECK(!range.empty());
  EVENTHIT_CHECK_GT(stride, 0);
  std::vector<Record> records;
  for (int64_t frame = range.start; frame <= range.end; frame += stride) {
    records.push_back(BuildRecord(video, task, config, frame));
  }
  return records;
}

}  // namespace eventhit::data
