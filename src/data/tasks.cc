#include "data/tasks.h"

#include "common/check.h"

namespace eventhit::data {
namespace {

Task MakeTask(const std::string& name, std::vector<int> global_events) {
  EVENTHIT_CHECK(!global_events.empty());
  Task task;
  task.name = name;
  task.global_events = global_events;
  bool first = true;
  for (int ev : global_events) {
    const auto ref = sim::ResolveGlobalEvent(ev);
    EVENTHIT_CHECK(ref.ok());
    if (first) {
      task.dataset = ref.value().dataset;
      first = false;
    } else {
      // Table II never mixes datasets within a task.
      EVENTHIT_CHECK(task.dataset == ref.value().dataset);
    }
    task.event_indices.push_back(ref.value().local_index);
  }
  return task;
}

std::vector<Task> BuildAllTasks() {
  return {
      MakeTask("TA1", {1}),       MakeTask("TA2", {2}),
      MakeTask("TA3", {3}),       MakeTask("TA4", {4}),
      MakeTask("TA5", {5}),       MakeTask("TA6", {6}),
      MakeTask("TA7", {1, 5}),    MakeTask("TA8", {5, 6}),
      MakeTask("TA9", {1, 5, 6}), MakeTask("TA10", {7}),
      MakeTask("TA11", {8}),      MakeTask("TA12", {9}),
      MakeTask("TA13", {10}),     MakeTask("TA14", {11}),
      MakeTask("TA15", {11, 12}), MakeTask("TA16", {10, 12}),
  };
}

}  // namespace

const std::vector<Task>& AllTasks() {
  static const std::vector<Task>* const kTasks =
      new std::vector<Task>(BuildAllTasks());
  return *kTasks;
}

Result<Task> FindTask(const std::string& name) {
  for (const Task& task : AllTasks()) {
    if (task.name == name) return task;
  }
  return NotFoundError("unknown task: " + name);
}

}  // namespace eventhit::data
