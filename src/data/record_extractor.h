// Builds (X_n, L_n, T_n) records from a synthetic stream, and samples the
// train / calibration / test record sets.
//
// Calibration and test records are sampled *the same way* (uniformly at
// random within their frame ranges) — the exchangeability precondition of
// the conformal guarantees. Training records may be class-balanced, which
// only affects model fitting, not the guarantees.
#ifndef EVENTHIT_DATA_RECORD_EXTRACTOR_H_
#define EVENTHIT_DATA_RECORD_EXTRACTOR_H_

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "data/record.h"
#include "data/tasks.h"
#include "sim/synthetic_video.h"

namespace eventhit::data {

/// Record-extraction hyper-parameters.
struct ExtractorConfig {
  /// Collection-window size M.
  int collection_window = 25;
  /// Time-horizon length H.
  int horizon = 500;
};

/// Extracts a single record anchored at `frame`. Requires
/// frame >= M - 1 and frame + H < video.num_frames().
Record BuildRecord(const sim::SyntheticVideo& video, const Task& task,
                   const ExtractorConfig& config, int64_t frame);

/// Frame ranges of the three splits. The stream prefix is used for training
/// (the paper trains on frames f_1..f_P), a following slice for calibration,
/// and the remainder for testing.
struct SplitRanges {
  sim::Interval train;
  sim::Interval calib;
  sim::Interval test;
};

/// Computes split ranges honouring the window/horizon margins.
/// Fractions must be positive and sum to < 1 (the rest is test).
SplitRanges ComputeSplits(const sim::SyntheticVideo& video,
                          const ExtractorConfig& config, double train_frac,
                          double calib_frac);

/// Uniformly samples `count` record anchors in `range` (used for calibration
/// and test sets).
std::vector<Record> SampleUniformRecords(const sim::SyntheticVideo& video,
                                         const Task& task,
                                         const ExtractorConfig& config,
                                         const sim::Interval& range,
                                         size_t count, Rng& rng);

/// Samples `count` training records, oversampling anchors whose horizon
/// contains at least one task event until roughly `positive_fraction` of the
/// set is positive (or the range runs out of positives).
std::vector<Record> SampleBalancedRecords(const sim::SyntheticVideo& video,
                                          const Task& task,
                                          const ExtractorConfig& config,
                                          const sim::Interval& range,
                                          size_t count,
                                          double positive_fraction, Rng& rng);

/// Deterministic anchors every `stride` frames across `range` (used when a
/// full sweep of the stream is wanted, e.g. cost accounting).
std::vector<Record> StridedRecords(const sim::SyntheticVideo& video,
                                   const Task& task,
                                   const ExtractorConfig& config,
                                   const sim::Interval& range, int64_t stride);

}  // namespace eventhit::data

#endif  // EVENTHIT_DATA_RECORD_EXTRACTOR_H_
