// Training/calibration/test records: the triplets (X_n, L_n, T_n) of §II.
//
// A record is anchored at frame T_n. Its covariates are the feature vectors
// of the M-frame collection window ending at T_n; its labels describe, for
// each event type of the task, whether the event occurs in the time horizon
// (T_n, T_n + H] and at which frame offsets.
#ifndef EVENTHIT_DATA_RECORD_H_
#define EVENTHIT_DATA_RECORD_H_

#include <cstdint>
#include <vector>

namespace eventhit::data {

/// Ground-truth label of one event type within a record's time horizon.
/// Offsets are 1-based: 1 is the first frame after T_n, H the last frame of
/// the horizon, matching the paper's T^{s}, T^{e} in [1, H].
struct EventLabel {
  /// Whether the event occurs in the horizon (E_k in L_n).
  bool present = false;
  /// Start offset of the occurrence interval, clipped to [1, H]. An
  /// occurrence already in progress at T_n has start = 1.
  int start = 0;
  /// End offset, clipped to H.
  int end = 0;
  /// delta_k of the paper: the occurrence extends past the horizon, so its
  /// end is censored at H.
  bool censored = false;
};

/// One (X_n, L_n, T_n) triplet.
struct Record {
  /// Anchor frame T_n in the source stream.
  int64_t frame = 0;
  /// Row-major M x D covariate block.
  std::vector<float> covariates;
  /// One label per event type of the task (same order as the task's event
  /// list).
  std::vector<EventLabel> labels;
};

/// True iff at least one event of the task occurs in the record's horizon.
bool AnyEventPresent(const Record& record);

}  // namespace eventhit::data

#endif  // EVENTHIT_DATA_RECORD_H_
