// Rolling-window recalibration of the conformal wrappers — the deployment
// response to a drift alarm (pairs with core/drift_detector.h).
//
// During operation, the CI's confirmations of relayed segments provide
// fresh labeled records. The recalibrator keeps the most recent ones in a
// bounded window and rebuilds C-CLASSIFY / C-REGRESS from them on demand,
// so the conformal guarantees track the *current* regime without
// retraining the underlying model (retraining remains advisable when the
// scores themselves have degraded).
#ifndef EVENTHIT_CORE_RECALIBRATOR_H_
#define EVENTHIT_CORE_RECALIBRATOR_H_

#include <deque>
#include <memory>
#include <vector>

#include "core/c_classify.h"
#include "core/c_regress.h"
#include "core/eventhit_model.h"
#include "data/record.h"

namespace eventhit::core {

/// Bounded FIFO of labeled records plus calibrator factories.
class Recalibrator {
 public:
  /// `model` must outlive the recalibrator. `capacity` bounds the window;
  /// `tau2` is the occupancy threshold used when rebuilding C-REGRESS.
  Recalibrator(const EventHitModel* model, size_t capacity,
               double tau2 = 0.5);

  /// Adds a freshly labeled record (evicting the oldest at capacity).
  void AddLabeledRecord(data::Record record);

  size_t size() const { return window_.size(); }
  size_t capacity() const { return capacity_; }

  /// Number of windowed records whose horizon contains event `k` — the
  /// effective calibration sample for that event.
  size_t PositiveCount(size_t k) const;

  /// True when the window holds at least `min_records` records and every
  /// event has at least `min_positives` positives. This is the guard the
  /// recalibration loop (DESIGN.md §5j) must consult before rebuilding: a
  /// window that fails it would yield degenerate quantiles — C-CLASSIFY
  /// with an empty positive set answers p == 1 for every event (existence
  /// always asserted, unbounded spillage) and C-REGRESS with no residuals
  /// widens by nothing — so Build* refuses such windows outright.
  bool CanRebuild(size_t min_records, size_t min_positives) const;

  /// Rebuilds the conformal existence classifier from the current window.
  /// CHECK-fails unless `CanRebuild(1, 1)` holds.
  std::unique_ptr<CClassify> BuildCClassify() const;

  /// Rebuilds the conformal interval adjuster from the current window.
  /// CHECK-fails unless `CanRebuild(1, 1)` holds.
  std::unique_ptr<CRegress> BuildCRegress() const;

  /// Drops every windowed record (e.g. after a confirmed regime change,
  /// when pre-shift records would poison the calibration).
  void Clear();

 private:
  const EventHitModel* model_;
  size_t capacity_;
  double tau2_;
  std::deque<data::Record> window_;
};

}  // namespace eventhit::core

#endif  // EVENTHIT_CORE_RECALIBRATOR_H_
