#include "core/marshaller.h"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "common/check.h"
#include "obs/schema.h"

namespace eventhit::core {

Marshaller::Marshaller(const MarshalStrategy* strategy, int collection_window,
                       int horizon, size_t feature_dim, size_t num_events,
                       obs::MetricsRegistry* metrics,
                       std::vector<std::string> event_labels)
    : strategy_(strategy),
      collection_window_(collection_window),
      horizon_(horizon),
      feature_dim_(feature_dim),
      num_events_(num_events) {
  EVENTHIT_CHECK(strategy_ != nullptr);
  EVENTHIT_CHECK_GT(collection_window_, 0);
  EVENTHIT_CHECK_GT(horizon_, 0);
  EVENTHIT_CHECK_GT(feature_dim_, 0u);
  EVENTHIT_CHECK_GT(num_events_, 0u);
  ring_.assign(static_cast<size_t>(collection_window_) * feature_dim_, 0.0f);
  obs::MetricsRegistry& registry =
      metrics != nullptr ? *metrics : obs::MetricsRegistry::Global();
  frames_total_metric_ =
      registry.GetCounter(obs::names::kMarshallerFramesTotal);
  frames_relayed_metric_ =
      registry.GetCounter(obs::names::kMarshallerFramesRelayed);
  frames_filtered_metric_ =
      registry.GetCounter(obs::names::kMarshallerFramesFiltered);
  horizons_metric_ =
      registry.GetCounter(obs::names::kMarshallerHorizonsPredicted);
  relay_orders_metric_ =
      registry.GetCounter(obs::names::kMarshallerRelayOrders);
  events_present_metric_ =
      registry.GetCounter(obs::names::kMarshallerEventsPredictedPresent);
  events_absent_metric_ =
      registry.GetCounter(obs::names::kMarshallerEventsPredictedAbsent);
  order_frames_metric_ = registry.GetHistogram(
      obs::names::kMarshallerRelayOrderFrames, obs::FrameCountBounds());
  sched_horizons_scored_metric_ =
      registry.GetCounter(obs::names::kSchedHorizonsScored);
  sched_horizons_reused_metric_ =
      registry.GetCounter(obs::names::kSchedHorizonsReused);
  sched_frames_scored_metric_ =
      registry.GetCounter(obs::names::kSchedFramesScored);
  sched_frames_skipped_metric_ =
      registry.GetCounter(obs::names::kSchedFramesSkipped);
  sched_flops_local_metric_ =
      registry.GetCounter(obs::names::kSchedFlopsLocalMflops);
  sched_flops_saved_metric_ =
      registry.GetCounter(obs::names::kSchedFlopsSavedMflops);
  sched_stride_gauge_ = registry.GetGauge(obs::names::kSchedPolicyStride);
  if (!event_labels.empty()) {
    for (size_t k = 0; k < num_events_; ++k) {
      const std::string label = k < event_labels.size()
                                    ? event_labels[k]
                                    : "event" + std::to_string(k);
      const obs::Labels by_event = {{"event_type", label}};
      present_by_event_.push_back(registry.GetCounter(
          obs::names::kMarshallerEventsPredictedPresent, by_event));
      absent_by_event_.push_back(registry.GetCounter(
          obs::names::kMarshallerEventsPredictedAbsent, by_event));
      orders_by_event_.push_back(
          registry.GetCounter(obs::names::kMarshallerRelayOrders, by_event));
      order_frames_by_event_.push_back(
          registry.GetHistogram(obs::names::kMarshallerRelayOrderFrames,
                                obs::FrameCountBounds(), by_event));
    }
  }
}

void Marshaller::set_relay_callback(RelayCallback callback) {
  relay_callback_ = std::move(callback);
}

void Marshaller::set_decision_callback(DecisionCallback callback) {
  decision_callback_ = std::move(callback);
}

void Marshaller::set_collect_policy(
    std::unique_ptr<sched::CollectPolicy> policy) {
  // Policies must be installed before the first frame: the schedule's
  // horizon indexing starts at the stream's first boundary.
  EVENTHIT_CHECK_EQ(frame_count_, 0);
  policy_ = std::move(policy);
  policy_name_ = policy_ != nullptr ? policy_->name() : "full";
}

void Marshaller::set_cost_model(const sched::LocalCostModel& cost) {
  cost_ = cost;
}

namespace {

// Predictions fire once the window has filled and every `horizon` frames
// afterwards: frames M-1, M-1+H, M-1+2H, ...
bool IsPredictionFrame(int64_t frame, int window, int horizon) {
  const int64_t first = window - 1;
  return frame >= first && (frame - first) % horizon == 0;
}

}  // namespace

int64_t Marshaller::next_prediction_frame() const {
  const int64_t first = collection_window_ - 1;
  if (frame_count_ <= first) return first;
  const int64_t periods = (frame_count_ - 1 - first) / horizon_ + 1;
  const int64_t next = first + periods * horizon_;
  // frame_count_ is the next frame to arrive; it may itself be one.
  return IsPredictionFrame(frame_count_, collection_window_, horizon_)
             ? frame_count_
             : next;
}

bool Marshaller::NextFrameNeedsFeatures() const {
  if (policy_ == nullptr) return true;
  const int64_t boundary = next_prediction_frame();
  // Frames at distance >= M from the next boundary never enter any
  // scored window (windows are M frames ending at a boundary).
  if (frame_count_ <= boundary - collection_window_) return false;
  // The first boundary is always scored, and while a scored prediction's
  // observation is still in flight the policy's verdict on the next
  // boundary is unsettled — stay conservative.
  if (last_decision_.exists.empty() || !pending_anchors_.empty()) return true;
  return policy_->ShouldScore(boundaries_seen_);
}

bool Marshaller::PushFrameDeferred(const float* features,
                                   data::Record* pending) {
  // Features may be omitted only when NextFrameNeedsFeatures() is false —
  // a null push must never land inside a window a scored boundary reads.
  EVENTHIT_CHECK(features != nullptr || !NextFrameNeedsFeatures());
  if (features != nullptr) {
    const size_t slot =
        static_cast<size_t>(frame_count_ %
                            static_cast<int64_t>(collection_window_));
    std::memcpy(ring_.data() + slot * feature_dim_, features,
                feature_dim_ * sizeof(float));
  }
  const int64_t current_frame = frame_count_;
  ++frame_count_;
  ++stats_.frames_seen;

  if (!IsPredictionFrame(current_frame, collection_window_, horizon_)) {
    return false;
  }

  const int64_t horizon_index = boundaries_seen_++;
  bool scored = true;
  if (policy_ != nullptr) {
    // The policy's schedule is a function of completed scored boundaries,
    // so batching delay must never span a whole horizon — otherwise the
    // verdict here would depend on flush timing and break the per-stream
    // determinism contract.
    EVENTHIT_CHECK(pending_anchors_.empty());
    scored = last_decision_.exists.empty() ||
             policy_->ShouldScore(horizon_index);
  }
  if (provenance_ != nullptr) {
    provenance_->OpenBoundary(current_frame, !scored, policy_name_);
  }
  if (!scored) {
    // Policy skip: replay the last decision, re-anchored at this
    // boundary, through the exact completion path a scored decision
    // takes — relay orders, accounting and callbacks stay in stream
    // order without a feature pass or model forward.
    pending_anchors_.push_back(current_frame);
    CompletePredictionInternal(last_decision_, /*reused=*/true);
    return false;
  }

  // Reconstruct the window in logical (oldest-first) order.
  std::vector<float> covariates(
      static_cast<size_t>(collection_window_) * feature_dim_);
  for (int m = 0; m < collection_window_; ++m) {
    const int64_t frame = current_frame - collection_window_ + 1 + m;
    const size_t src = static_cast<size_t>(
        frame % static_cast<int64_t>(collection_window_));
    std::memcpy(covariates.data() + static_cast<size_t>(m) * feature_dim_,
                ring_.data() + src * feature_dim_,
                feature_dim_ * sizeof(float));
  }

  pending->frame = current_frame;
  pending->covariates = std::move(covariates);
  pending->labels.assign(num_events_, data::EventLabel{});  // Unknown.
  pending_anchors_.push_back(current_frame);
  return true;
}

void Marshaller::CompletePrediction(const MarshalDecision& decision) {
  CompletePredictionInternal(decision, /*reused=*/false);
}

void Marshaller::CompletePredictionInternal(const MarshalDecision& decision,
                                            bool reused) {
  EVENTHIT_CHECK(!pending_anchors_.empty());
  const int64_t current_frame = pending_anchors_.front();
  pending_anchors_.pop_front();
  const int64_t horizon_index = boundaries_completed_++;
  if (&decision != &last_decision_) last_decision_ = decision;
  ++stats_.horizons_predicted;
  horizons_metric_->Add(1);

  // Relay orders in absolute frames; count billed frames as the union.
  std::vector<sim::Interval> relayed;
  int64_t events_present = 0;
  for (size_t k = 0; k < last_decision_.exists.size(); ++k) {
    if (!last_decision_.exists[k]) {
      if (k < absent_by_event_.size()) absent_by_event_[k]->Add(1);
      continue;
    }
    ++events_present;
    if (k < present_by_event_.size()) present_by_event_[k]->Add(1);
    const sim::Interval& offsets = last_decision_.intervals[k];
    // A present prediction with an empty interval relays nothing: no
    // order is issued (the cloud service rejects empty requests) and the
    // whole horizon stays in the filtered bucket, so the accounting
    // invariant holds on the zero-relay edge too.
    if (offsets.empty()) continue;
    RelayOrder order;
    order.event = k;
    order.frames = sim::Interval{current_frame + offsets.start,
                                 current_frame + offsets.end};
    order.anchor = current_frame;
    relayed.push_back(order.frames);
    ++stats_.relay_orders;
    relay_orders_metric_->Add(1);
    order_frames_metric_->Observe(static_cast<double>(order.frames.length()));
    if (k < orders_by_event_.size()) {
      orders_by_event_[k]->Add(1);
      order_frames_by_event_[k]->Observe(
          static_cast<double>(order.frames.length()));
    }
    if (relay_callback_) relay_callback_(order);
  }
  events_present_metric_->Add(events_present);
  events_absent_metric_->Add(
      static_cast<int64_t>(last_decision_.exists.size()) - events_present);
  int64_t billed = 0;
  if (!relayed.empty()) {
    std::sort(relayed.begin(), relayed.end(),
              [](const sim::Interval& a, const sim::Interval& b) {
                return a.start < b.start;
              });
    int64_t cursor = relayed.front().start - 1;
    for (const sim::Interval& interval : relayed) {
      const int64_t from = std::max(interval.start, cursor + 1);
      if (interval.end >= from) {
        billed += interval.end - from + 1;
        cursor = interval.end;
      } else {
        cursor = std::max(cursor, interval.end);
      }
    }
    stats_.frames_relayed += billed;
  }
  // Frame accounting: the horizon's frames split into the billed union and
  // the filtered remainder. Widened intervals can spill past the horizon
  // boundary, so "total" is max(H, billed) rather than H — the invariant
  // relayed + filtered == total holds unconditionally.
  const int64_t filtered = std::max<int64_t>(0, horizon_ - billed);
  frames_relayed_metric_->Add(billed);
  frames_filtered_metric_->Add(filtered);
  frames_total_metric_->Add(billed + filtered);

  // Local-compute accounting for the segment this boundary covers: the
  // first boundary covers the M window-fill frames, every later one the
  // H frames since its predecessor. Attribution follows the policy's
  // deterministic schedule, never actual ring writes, so the counts are
  // identical at any batching/flush timing.
  const int64_t segment =
      horizon_index == 0 ? static_cast<int64_t>(collection_window_)
                         : static_cast<int64_t>(horizon_);
  int64_t frames_scored;
  if (reused) {
    frames_scored = 0;
  } else if (policy_ != nullptr) {
    frames_scored = std::min<int64_t>(collection_window_, segment);
  } else {
    frames_scored = segment;  // Full rate: every frame is extracted.
  }
  const int64_t frames_skipped = segment - frames_scored;
  stats_.frames_scored += frames_scored;
  stats_.frames_skipped += frames_skipped;
  const double local_mflops =
      static_cast<double>(frames_scored) * cost_.feature_mflops_per_frame +
      (reused ? 0.0 : cost_.forward_mflops_per_boundary);
  const double saved_mflops =
      static_cast<double>(frames_skipped) * cost_.feature_mflops_per_frame +
      (reused ? cost_.forward_mflops_per_boundary : 0.0);
  stats_.local_mflops += std::llround(local_mflops);
  stats_.saved_mflops += std::llround(saved_mflops);
  sched_flops_local_metric_->Add(std::llround(local_mflops));
  sched_flops_saved_metric_->Add(std::llround(saved_mflops));
  sched_frames_scored_metric_->Add(frames_scored);
  sched_frames_skipped_metric_->Add(frames_skipped);
  if (reused) {
    ++stats_.horizons_reused;
    sched_horizons_reused_metric_->Add(1);
  } else {
    sched_horizons_scored_metric_->Add(1);
    if (policy_ != nullptr) {
      sched::ScoreObservation observation;
      observation.horizon_index = horizon_index;
      observation.max_existence = last_decision_.max_existence;
      for (const bool open : last_decision_.exists) {
        if (open) observation.any_open = true;
      }
      policy_->Observe(observation);
    }
  }
  sched_stride_gauge_->Set(static_cast<double>(
      policy_ != nullptr ? policy_->CurrentStride() : 1));

  if (provenance_ != nullptr) {
    // Fold point of the provenance digest: completion order is stream
    // order (pending predictions drain FIFO), so the fold sequence is
    // identical for a solo replay and any fleet batching of this stream.
    uint32_t exists_mask = 0;
    const size_t mask_events = std::min<size_t>(last_decision_.exists.size(),
                                                32);
    for (size_t k = 0; k < mask_events; ++k) {
      if (last_decision_.exists[k]) exists_mask |= 1u << k;
    }
    provenance_->StampDecision(current_frame, reused, policy_name_,
                               exists_mask, static_cast<int>(events_present),
                               static_cast<int>(relayed.size()), billed,
                               last_decision_.max_existence);
  }

  if (decision_callback_) {
    decision_callback_(current_frame, last_decision_, reused);
  }
}

bool Marshaller::PushFrame(const float* features) {
  data::Record record;
  if (!PushFrameDeferred(features, &record)) return false;
  CompletePrediction(strategy_->Decide(record));
  return true;
}

}  // namespace eventhit::core
