// Streaming deployment wrapper: consumes a video stream frame by frame,
// maintains the collection window, runs an EventHit strategy at every
// horizon boundary, and relays the predicted occurrence intervals to the
// cloud service — the online loop of Figure 1, as a reusable component.
#ifndef EVENTHIT_CORE_MARSHALLER_H_
#define EVENTHIT_CORE_MARSHALLER_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <vector>

#include "core/prediction.h"
#include "nn/matrix.h"
#include "obs/metrics.h"
#include "obs/provenance.h"
#include "sched/collect_policy.h"
#include "sched/cost_model.h"

namespace eventhit::core {

/// One relay order produced by the marshaller: absolute stream frames to
/// send to the CI for one event type.
struct RelayOrder {
  size_t event = 0;             // Index within the strategy's event list.
  sim::Interval frames;         // Absolute stream frame interval.
  int64_t anchor = 0;           // Prediction boundary that issued the order.
};

/// Statistics of a marshalling session.
struct MarshallerStats {
  int64_t frames_seen = 0;
  int64_t horizons_predicted = 0;
  int64_t frames_relayed = 0;   // Union over events per horizon.
  int64_t relay_orders = 0;
  // Collection scheduling (sched/collect_policy.h). With no policy every
  // boundary is scored and every frame is charged to frames_scored;
  // horizons_predicted always counts scored + reused completions.
  int64_t horizons_reused = 0;  // Boundaries that replayed the last decision.
  int64_t frames_scored = 0;    // Frames charged feature-extraction cost.
  int64_t frames_skipped = 0;   // Frames whose extraction the policy saved.
  int64_t local_mflops = 0;     // Estimated local compute actually spent.
  int64_t saved_mflops = 0;     // Estimated local compute avoided.
};

/// Frame-by-frame driver around a MarshalStrategy.
///
/// Usage:
///   Marshaller marshaller(&strategy, M, H, D);
///   for each frame f: marshaller.PushFrame(features_of(f));
/// Relay orders are delivered through the callback passed to PushFrame's
/// owner via `set_relay_callback`, at every horizon boundary once the
/// collection window has filled.
class Marshaller {
 public:
  using RelayCallback = std::function<void(const RelayOrder&)>;
  /// Fired at the end of every completed prediction boundary — scored
  /// (fresh decision from the strategy) and reused (a policy skip that
  /// replayed the last decision) alike, in stream order. `anchor` is the
  /// boundary's absolute frame.
  using DecisionCallback = std::function<void(
      int64_t anchor, const MarshalDecision& decision, bool reused)>;

  /// `strategy` must outlive the marshaller. `collection_window` = M,
  /// `horizon` = H, `feature_dim` = D of the per-frame feature vectors.
  /// Telemetry goes to `metrics` (docs/TELEMETRY.md, marshaller.* names);
  /// nullptr selects obs::MetricsRegistry::Global(). Counters uphold the
  /// frame-accounting invariant
  ///   marshaller.frames.relayed + marshaller.frames.filtered
  ///     == marshaller.frames.total
  /// at every prediction boundary (see obs/schema.h).
  /// When `event_labels` is non-empty (one display name per event index;
  /// short entries fall back to "event<k>") the per-event counters and
  /// the order-size histogram additionally register `{event_type=...}`
  /// labeled series, so prediction mix and relay volume can be sliced per
  /// event type. The unlabeled totals are always kept.
  Marshaller(const MarshalStrategy* strategy, int collection_window,
             int horizon, size_t feature_dim, size_t num_events,
             obs::MetricsRegistry* metrics = nullptr,
             std::vector<std::string> event_labels = {});

  /// Registers the sink for relay orders (e.g. a CloudService adapter).
  void set_relay_callback(RelayCallback callback);

  /// Registers the per-completion observer (fleet digests/audit).
  void set_decision_callback(DecisionCallback callback);

  /// Installs a collection policy (sched/collect_policy.h). The
  /// marshaller takes ownership; nullptr (the default) scores every
  /// boundary — the legacy full-rate path, byte-identical to pre-policy
  /// behaviour. With a policy installed, every pending deferred
  /// prediction must complete before the next boundary arrives (the
  /// policy's schedule depends on the completed scores), which any
  /// batcher whose flush deadline is shorter than one horizon satisfies.
  void set_collect_policy(std::unique_ptr<sched::CollectPolicy> policy);

  /// Cost rates behind the sched.flops.* accounting (defaults model
  /// feature extraction only).
  void set_cost_model(const sched::LocalCostModel& cost);

  /// Attaches the decision-provenance ledger (obs/provenance.h). Non-
  /// owning; nullptr (the default) disables stamping — every call site is
  /// one inlined pointer check, so the disabled hot path is untouched.
  /// The marshaller opens each boundary's record at push time and stamps
  /// the sched + decision fields at completion; the fleet/relay/auditor
  /// layers stamp theirs through the same ledger.
  void set_provenance(obs::StreamProvenance* provenance) {
    provenance_ = provenance;
  }
  obs::StreamProvenance* provenance() const { return provenance_; }

  /// Feeds the features of the next stream frame (feature_dim floats).
  /// Returns true when this frame triggered an inference-backed
  /// prediction (a policy-skipped boundary replays the last decision
  /// internally and returns false).
  bool PushFrame(const float* features);

  /// Two-phase (deferred-decision) form of PushFrame for callers that batch
  /// inference across streams (src/fleet/). Returns true when this frame is
  /// a scored prediction boundary, in which case `*pending` is filled with
  /// the anchored covariate window (labels zeroed — unknown at inference;
  /// frame set to the local anchor frame) and the prediction is queued as
  /// pending. The caller scores the record — e.g. through a cross-stream
  /// PredictBatch — and finishes the horizon with CompletePrediction.
  /// Several predictions may be pending at once (a batcher holding requests
  /// past one horizon); they must be completed in FIFO order.
  /// A boundary the collection policy skips completes inline by replaying
  /// the last decision (re-anchored at this boundary) and returns false.
  /// `features` may be nullptr only when NextFrameNeedsFeatures() is
  /// false: the frame advances the stream clock without touching the
  /// window ring.
  bool PushFrameDeferred(const float* features, data::Record* pending);

  /// Applies a strategy decision to the oldest pending prediction from
  /// PushFrameDeferred: relay orders, stats, metrics — the exact code path
  /// PushFrame runs inline, so a deferred decision is byte-identical to
  /// the inline one given the same scores. Requires a pending prediction.
  void CompletePrediction(const MarshalDecision& decision);

  /// Whether the *next* pushed frame's features can end up inside a scored
  /// collection window — callers skip feature extraction (and pass
  /// nullptr) when false. Without a policy this is always true.
  /// Conservative while a scored prediction is pending; exact otherwise,
  /// so the extracted set always covers the consumed set and decisions
  /// are independent of completion timing.
  bool NextFrameNeedsFeatures() const;

  /// Prediction boundaries pushed but not yet completed.
  size_t pending_predictions() const { return pending_anchors_.size(); }

  /// Decision made at the most recent prediction point (empty before the
  /// first prediction).
  const MarshalDecision& last_decision() const { return last_decision_; }

  const MarshallerStats& stats() const { return stats_; }

  /// The absolute frame index of the next prediction point.
  int64_t next_prediction_frame() const;

 private:
  void CompletePredictionInternal(const MarshalDecision& decision,
                                  bool reused);

  const MarshalStrategy* strategy_;
  int collection_window_;
  int horizon_;
  size_t feature_dim_;
  size_t num_events_;
  RelayCallback relay_callback_;
  DecisionCallback decision_callback_;
  std::unique_ptr<sched::CollectPolicy> policy_;
  // Cached policy_->name() ("full" without a policy): the provenance
  // stamp runs per boundary and must not allocate.
  std::string policy_name_ = "full";
  sched::LocalCostModel cost_;
  obs::StreamProvenance* provenance_ = nullptr;

  // Ring buffer of the last M frames' features (row-major M x D, logical
  // order reconstructed at prediction time).
  std::vector<float> ring_;
  int64_t frame_count_ = 0;

  // Boundaries pushed / completed so far (the policy's horizon index).
  int64_t boundaries_seen_ = 0;
  int64_t boundaries_completed_ = 0;

  // Anchor frames of deferred predictions awaiting CompletePrediction.
  std::deque<int64_t> pending_anchors_;

  MarshalDecision last_decision_;
  MarshallerStats stats_;

  // Cached telemetry handles (valid for the registry's lifetime).
  obs::Counter* frames_total_metric_;
  obs::Counter* frames_relayed_metric_;
  obs::Counter* frames_filtered_metric_;
  obs::Counter* horizons_metric_;
  obs::Counter* relay_orders_metric_;
  obs::Counter* events_present_metric_;
  obs::Counter* events_absent_metric_;
  obs::Histogram* order_frames_metric_;
  obs::Counter* sched_horizons_scored_metric_;
  obs::Counter* sched_horizons_reused_metric_;
  obs::Counter* sched_frames_scored_metric_;
  obs::Counter* sched_frames_skipped_metric_;
  obs::Counter* sched_flops_local_metric_;
  obs::Counter* sched_flops_saved_metric_;
  obs::Gauge* sched_stride_gauge_;

  // Per-event labeled series (empty when no event labels were given).
  std::vector<obs::Counter*> present_by_event_;
  std::vector<obs::Counter*> absent_by_event_;
  std::vector<obs::Counter*> orders_by_event_;
  std::vector<obs::Histogram*> order_frames_by_event_;
};

}  // namespace eventhit::core

#endif  // EVENTHIT_CORE_MARSHALLER_H_
