#include "core/adaptive_c_regress.h"

#include <cmath>

#include "common/check.h"
#include "core/interval_extraction.h"

namespace eventhit::core {

double IntervalDifficulty(const std::vector<float>& theta, double tau2) {
  const sim::Interval envelope = ExtractOccurrenceInterval(theta, tau2);
  return std::sqrt(
      std::max(1.0, static_cast<double>(envelope.length())));
}

AdaptiveCRegress::AdaptiveCRegress(
    const EventHitModel& model, const std::vector<data::Record>& calibration,
    double tau2)
    : horizon_(model.config().horizon), tau2_(tau2) {
  const size_t k_events = model.config().num_events;
  std::vector<std::vector<double>> start_res(k_events), end_res(k_events);
  std::vector<std::vector<double>> difficulties(k_events);
  for (const data::Record& record : calibration) {
    EVENTHIT_CHECK_EQ(record.labels.size(), k_events);
    const EventScores scores = model.Predict(record);
    for (size_t k = 0; k < k_events; ++k) {
      const data::EventLabel& label = record.labels[k];
      if (!label.present) continue;
      const sim::Interval estimate =
          ExtractOccurrenceInterval(scores.occupancy[k], tau2);
      start_res[k].push_back(
          std::fabs(static_cast<double>(estimate.start - label.start)));
      end_res[k].push_back(
          std::fabs(static_cast<double>(estimate.end - label.end)));
      difficulties[k].push_back(IntervalDifficulty(scores.occupancy[k], tau2));
    }
  }
  start_.reserve(k_events);
  end_.reserve(k_events);
  for (size_t k = 0; k < k_events; ++k) {
    start_.emplace_back(start_res[k], difficulties[k]);
    end_.emplace_back(end_res[k], difficulties[k]);
  }
}

sim::Interval AdaptiveCRegress::Adjust(size_t k, const sim::Interval& estimate,
                                       const std::vector<float>& theta,
                                       double alpha) const {
  EVENTHIT_CHECK_LT(k, start_.size());
  EVENTHIT_CHECK(!estimate.empty());
  const double difficulty = IntervalDifficulty(theta, tau2_);
  const auto q_s = static_cast<int64_t>(
      std::ceil(start_[k].Quantile(alpha) * difficulty));
  const auto q_e = static_cast<int64_t>(
      std::ceil(end_[k].Quantile(alpha) * difficulty));
  return ClampToHorizon(
      sim::Interval{estimate.start - q_s, estimate.end + q_e}, horizon_);
}

size_t AdaptiveCRegress::CalibrationSize(size_t k) const {
  EVENTHIT_CHECK_LT(k, start_.size());
  return start_[k].calibration_size();
}

}  // namespace eventhit::core
