#include "core/eventhit_model.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <numeric>

#include "common/check.h"
#include "nn/activations.h"
#include "nn/loss.h"
#include "nn/serialize.h"
#include "obs/metrics.h"
#include "obs/schema.h"
#include "obs/trace.h"

namespace eventhit::core {
namespace {

double WeightFor(const std::vector<double>& weights, size_t k) {
  if (weights.empty()) return 1.0;
  EVENTHIT_CHECK_LT(k, weights.size());
  return weights[k];
}

}  // namespace

EventHitModel::EventHitModel(const EventHitConfig& config)
    : config_(config), dropout_(config.dropout), rng_(config.seed) {
  EVENTHIT_CHECK_GT(config_.feature_dim, 0u);
  EVENTHIT_CHECK_GT(config_.num_events, 0u);
  EVENTHIT_CHECK_GT(config_.collection_window, 0);
  EVENTHIT_CHECK_GT(config_.horizon, 0);

  Rng init_rng(rng_.Fork(1));
  lstm_ = nn::Lstm("lstm", config_.feature_dim, config_.lstm_hidden, init_rng);
  shared_fc_ =
      nn::Dense("shared", config_.lstm_hidden, config_.shared_dim, init_rng);
  const size_t u_dim = config_.shared_dim + config_.feature_dim;
  const size_t out_dim = 1 + static_cast<size_t>(config_.horizon);
  event_nets_.reserve(config_.num_events);
  for (size_t k = 0; k < config_.num_events; ++k) {
    event_nets_.emplace_back("event" + std::to_string(k),
                             std::vector<size_t>{u_dim, config_.event_hidden,
                                                 out_dim},
                             init_rng);
  }
}

nn::ParameterRefs EventHitModel::Parameters() {
  nn::ParameterRefs params;
  lstm_.CollectParameters(params);
  shared_fc_.CollectParameters(params);
  for (nn::Mlp& net : event_nets_) net.CollectParameters(params);
  return params;
}

nn::ConstParameterRefs EventHitModel::Parameters() const {
  nn::ConstParameterRefs params;
  lstm_.CollectParameters(params);
  shared_fc_.CollectParameters(params);
  for (const nn::Mlp& net : event_nets_) net.CollectParameters(params);
  return params;
}

size_t EventHitModel::ParameterCount() const {
  return nn::ParameterCount(Parameters());
}

void EventHitModel::TrunkForward(const float* covariates, nn::Vec& z,
                                 nn::Vec& u) const {
  const auto steps = static_cast<size_t>(config_.collection_window);
  const nn::Vec h = lstm_.Forward(covariates, steps);
  shared_fc_.Forward(h.data(), z);
  nn::TanhInPlace(z.data(), z.size());
  // u = z ++ x_last (the final feature vector of the window, as in Fig. 3).
  u.resize(z.size() + config_.feature_dim);
  std::copy(z.begin(), z.end(), u.begin());
  const float* x_last = covariates + (steps - 1) * config_.feature_dim;
  std::copy(x_last, x_last + config_.feature_dim, u.begin() + z.size());
}

EventScores EventHitModel::PredictCovariates(const float* covariates) const {
  nn::Vec z, u;
  TrunkForward(covariates, z, u);
  EventScores scores;
  scores.existence.resize(config_.num_events);
  scores.occupancy.resize(config_.num_events);
  nn::Vec logits;
  const auto h = static_cast<size_t>(config_.horizon);
  for (size_t k = 0; k < config_.num_events; ++k) {
    event_nets_[k].Forward(u.data(), logits);
    EVENTHIT_CHECK_EQ(logits.size(), 1 + h);
    scores.existence[k] = nn::SigmoidScalar(logits[0]);
    auto& theta = scores.occupancy[k];
    theta.resize(h);
    for (size_t v = 0; v < h; ++v) theta[v] = nn::SigmoidScalar(logits[1 + v]);
  }
  return scores;
}

EventScores EventHitModel::Predict(const data::Record& record) const {
  EVENTHIT_CHECK_EQ(record.covariates.size(),
                    static_cast<size_t>(config_.collection_window) *
                        config_.feature_dim);
  if (backend_kind_ == nn::BackendKind::kScalar ||
      backend_kind_ == nn::BackendKind::kBlocked) {
    // The per-record MatVec path is bit-identical to both (summation-order
    // contract, nn/matrix.h).
    return PredictCovariates(record.covariates.data());
  }
  // simd/int8: run the batched path at batch 1, so per-record and batched
  // scores agree bit-for-bit under every backend (batch invariance,
  // docs/BACKENDS.md). The arena is thread-local: Predict is const and
  // called concurrently from calibration workers.
  thread_local nn::Workspace ws;
  EventScores out;
  PredictBatched(&record, 1, &out, ws);
  return out;
}

void EventHitModel::SetInferenceBackend(nn::BackendKind kind) {
  if (kind == nn::BackendKind::kInt8) {
    EVENTHIT_CHECK(int8_ready_);  // CalibrateInt8 must run first.
  }
  backend_kind_ = kind;
}

void EventHitModel::CalibrateInt8(const std::vector<data::Record>& calibration,
                                  size_t max_records) {
  EVENTHIT_CHECK(!calibration.empty());
  EVENTHIT_CHECK_GT(max_records, 0u);
  // The only unbounded activations are the model inputs (the covariates,
  // which also feed u = z ++ x_last directly): their static scale is the
  // max-abs over the calibration sample, with out-of-range test values
  // saturating at ±127. Hidden states and tanh outputs are bounded in
  // (-1, 1), so they quantize with the analytic scale 1/127.
  const size_t n = std::min(max_records, calibration.size());
  float x_max = 0.0f;
  for (size_t i = 0; i < n; ++i) {
    for (const float v : calibration[i].covariates) {
      x_max = std::max(x_max, std::fabs(v));
    }
  }
  if (x_max == 0.0f) x_max = 1.0f;
  const float x_scale = x_max / 127.0f;
  const float unit_scale = 1.0f / 127.0f;
  // u concatenates z (|z| < 1) with x_last, so its bound is the larger.
  const float u_scale = std::max(1.0f, x_max) / 127.0f;

  int8_.lstm = nn::Int8Lstm::FromFloat(lstm_, x_scale, unit_scale);
  int8_.shared_fc = nn::Int8Dense::FromFloat(shared_fc_, unit_scale);
  int8_.event_nets.clear();
  int8_.event_nets.reserve(event_nets_.size());
  for (const nn::Mlp& net : event_nets_) {
    int8_.event_nets.push_back(nn::Int8Mlp::FromFloat(net, u_scale));
  }
  int8_ready_ = true;
}

void EventHitModel::InvalidateInt8() {
  int8_ = Int8State();
  int8_ready_ = false;
  if (backend_kind_ == nn::BackendKind::kInt8) {
    backend_kind_ = nn::BackendKind::kBlocked;
  }
}

void EventHitModel::PredictBatched(const data::Record* records, size_t count,
                                   EventScores* out,
                                   nn::Workspace& ws) const {
  EVENTHIT_CHECK_GT(count, 0u);
  const auto steps = static_cast<size_t>(config_.collection_window);
  const size_t d = config_.feature_dim;
  for (size_t b = 0; b < count; ++b) {
    EVENTHIT_CHECK_EQ(records[b].covariates.size(), steps * d);
  }
  ws.Reset();
  // Kernel dispatch (nn/backend.h): the blocked table points at the exact
  // functions the pre-backend code called, so the default stays
  // bit-identical; int8 swaps each layer for its quantized mirror.
  const nn::Backend& backend = nn::GetBackend(backend_kind_);
  const bool int8 = backend_kind_ == nn::BackendKind::kInt8;
  if (int8) EVENTHIT_CHECK(int8_ready_);

  // Gather covariates batch-minor: element (t, feature j, record b) at
  // x[(t*d + j)*count + b], so every downstream op streams unit-stride
  // over the batch.
  float* x = ws.Alloc(steps * d * count);
  for (size_t b = 0; b < count; ++b) {
    const float* cov = records[b].covariates.data();
    for (size_t td = 0; td < steps * d; ++td) x[td * count + b] = cov[td];
  }

  const size_t hd = lstm_.hidden_dim();
  float* h = ws.Alloc(hd * count);
  if (int8) {
    int8_.lstm.ForwardBatch(x, steps, count, h, ws, backend);
  } else {
    lstm_.ForwardBatch(x, steps, count, h, ws, backend);
  }

  const size_t z_rows = shared_fc_.out_dim();
  float* z = ws.Alloc(z_rows * count);
  if (int8) {
    int8_.shared_fc.ForwardBatch(h, count, z, ws, backend);
  } else {
    shared_fc_.ForwardBatch(h, count, z, backend);
  }
  backend.kernels->tanh_inplace(z, z_rows * count);

  // u = z ++ x_last per record (Fig. 3), still batch-minor.
  const size_t u_rows = z_rows + d;
  float* u = ws.Alloc(u_rows * count);
  std::memcpy(u, z, z_rows * count * sizeof(float));
  const size_t last_offset = (steps - 1) * d;
  for (size_t j = 0; j < d; ++j) {
    float* row = u + (z_rows + j) * count;
    for (size_t b = 0; b < count; ++b) {
      row[b] = records[b].covariates[last_offset + j];
    }
  }

  const auto horizon = static_cast<size_t>(config_.horizon);
  const size_t out_dim = 1 + horizon;
  float* logits = ws.Alloc(out_dim * count);
  for (size_t b = 0; b < count; ++b) {
    out[b].existence.resize(config_.num_events);
    out[b].occupancy.resize(config_.num_events);
  }
  for (size_t k = 0; k < config_.num_events; ++k) {
    if (int8) {
      int8_.event_nets[k].ForwardBatch(u, count, logits, ws, backend);
    } else {
      event_nets_[k].ForwardBatch(u, count, logits, ws, backend);
    }
    // One vectorized sigmoid pass over the whole [out_dim x count] block
    // (same per-element function as the scalar path), then a plain scatter.
    backend.kernels->sigmoid_inplace(logits, out_dim * count);
    for (size_t b = 0; b < count; ++b) {
      out[b].existence[k] = logits[b];
      auto& theta = out[b].occupancy[k];
      theta.resize(horizon);
      for (size_t v = 0; v < horizon; ++v) {
        theta[v] = logits[(1 + v) * count + b];
      }
    }
  }
}

std::pair<double, double> EventHitModel::TrainStep(const data::Record& record,
                                                   Rng& rng) {
  const auto steps = static_cast<size_t>(config_.collection_window);
  EVENTHIT_CHECK_EQ(record.labels.size(), config_.num_events);
  EVENTHIT_CHECK_EQ(record.covariates.size(), steps * config_.feature_dim);
  const float* covariates = record.covariates.data();

  // --- Forward (training mode) ---
  const nn::Vec h = lstm_.ForwardCached(covariates, steps);
  nn::Vec z;
  shared_fc_.Forward(h.data(), z);
  nn::TanhInPlace(z.data(), z.size());
  nn::Vec zd;
  dropout_.ForwardTrain(z.data(), z.size(), rng, zd);

  nn::Vec u(zd.size() + config_.feature_dim);
  std::copy(zd.begin(), zd.end(), u.begin());
  const float* x_last = covariates + (steps - 1) * config_.feature_dim;
  std::copy(x_last, x_last + config_.feature_dim, u.begin() + zd.size());

  const auto horizon = static_cast<size_t>(config_.horizon);
  const size_t out_dim = 1 + horizon;
  nn::Vec logits;
  nn::Vec dlogits(out_dim);
  nn::Vec targets(out_dim);
  nn::Vec weights(out_dim);
  nn::Vec du(u.size(), 0.0f);

  double loss_existence = 0.0;
  double loss_occupancy = 0.0;

  for (size_t k = 0; k < config_.num_events; ++k) {
    const data::EventLabel& label = record.labels[k];
    event_nets_[k].ForwardCached(u.data(), logits);

    // L1: existence BCE on b_k (logit index 0).
    targets[0] = label.present ? 1.0f : 0.0f;
    weights[0] = static_cast<float>(WeightFor(config_.beta, k));

    // L2: per-frame BCE on theta (logit indices 1..H), positive records
    // only, with the paper's inside/outside normalisation.
    if (label.present) {
      EVENTHIT_CHECK_GE(label.start, 1);
      EVENTHIT_CHECK_LE(label.start, label.end);
      EVENTHIT_CHECK_LE(label.end, config_.horizon);
      const double gamma = WeightFor(config_.gamma, k);
      const auto inside = static_cast<double>(label.end - label.start + 1);
      const double outside = static_cast<double>(horizon) - inside;
      const auto w_in = static_cast<float>(gamma / inside);
      const auto w_out =
          outside > 0.0 ? static_cast<float>(gamma / outside) : 0.0f;
      for (size_t v = 1; v <= horizon; ++v) {
        const bool occupied = static_cast<int>(v) >= label.start &&
                              static_cast<int>(v) <= label.end;
        targets[v] = occupied ? 1.0f : 0.0f;
        weights[v] = occupied ? w_in : w_out;
      }
    } else {
      // Absent events contribute no L2 terms (1[E_k in L_n] gate).
      std::fill(targets.begin() + 1, targets.end(), 0.0f);
      std::fill(weights.begin() + 1, weights.end(), 0.0f);
    }

    loss_existence += nn::BceWithLogits(logits[0], targets[0], weights[0],
                                        &dlogits[0]);
    loss_occupancy +=
        nn::BceWithLogitsVector(logits.data() + 1, targets.data() + 1,
                                weights.data() + 1, horizon, dlogits.data() + 1);

    event_nets_[k].Backward(u.data(), dlogits.data(), du.data());
  }

  // --- Backward through the shared trunk ---
  // du splits into the z part (through dropout and tanh) and x_last (input
  // data; no gradient needed).
  nn::Vec dz(zd.size());
  dropout_.Backward(du.data(), dz.data());
  nn::Vec dz_pre(z.size());
  nn::TanhBackward(z.data(), dz.data(), dz_pre.data(), z.size());
  nn::Vec dh(h.size(), 0.0f);
  shared_fc_.Backward(h.data(), dz_pre.data(), dh.data());
  lstm_.Backward(dh.data());

  return {loss_existence, loss_occupancy};
}

std::vector<TrainEpochStats> EventHitModel::Train(
    const std::vector<data::Record>& records) {
  EVENTHIT_CHECK(!records.empty());
  InvalidateInt8();  // The quantized mirror tracks the float weights.
  nn::AdamOptions adam_options;
  adam_options.learning_rate = config_.learning_rate;
  adam_options.clip_norm = config_.grad_clip_norm;
  nn::AdamOptimizer optimizer(Parameters(), adam_options);

  Rng train_rng(rng_.Fork(2));
  std::vector<size_t> order(records.size());
  std::iota(order.begin(), order.end(), 0);

  std::vector<TrainEpochStats> history;
  const auto batch = static_cast<size_t>(std::max(config_.batch_size, 1));
  for (int epoch = 0; epoch < config_.epochs; ++epoch) {
    train_rng.Shuffle(order);
    TrainEpochStats stats;
    size_t steps = 0;
    for (size_t begin = 0; begin < order.size(); begin += batch) {
      const size_t end = std::min(begin + batch, order.size());
      for (size_t i = begin; i < end; ++i) {
        const auto [l1, l2] = TrainStep(records[order[i]], train_rng);
        stats.existence_loss += l1;
        stats.occupancy_loss += l2;
      }
      nn::ScaleGradients(Parameters(), 1.0f / static_cast<float>(end - begin));
      stats.grad_norm += optimizer.Step();
      ++steps;
    }
    const auto n = static_cast<double>(records.size());
    stats.existence_loss /= n;
    stats.occupancy_loss /= n;
    stats.total_loss = stats.existence_loss + stats.occupancy_loss;
    stats.grad_norm /= static_cast<double>(std::max<size_t>(steps, 1));
    history.push_back(stats);
  }
  return history;
}

Status EventHitModel::Save(const std::string& path) const {
  return nn::SaveParameters(Parameters(), path);
}

Status EventHitModel::Load(const std::string& path) {
  InvalidateInt8();  // The quantized mirror tracks the float weights.
  return nn::LoadParameters(Parameters(), path);
}

std::vector<EventScores> PredictBatch(const EventHitModel& model,
                                      const std::vector<data::Record>& records,
                                      const ExecutionContext& ctx,
                                      size_t batch_size) {
  EVENTHIT_CHECK_GT(batch_size, 0u);
  std::vector<EventScores> scores(records.size());
  if (records.empty()) return scores;
  // Registration is mutex-guarded setup; the hot loop reuses the pointer.
  static obs::Histogram* batch_hist =
      obs::MetricsRegistry::Global().GetHistogram(
          obs::names::kPredictBatchSize, obs::BatchSizeBounds());
  const size_t num_batches = (records.size() + batch_size - 1) / batch_size;
  // Each batch writes its own slot range, so chunking over batches keeps
  // results in input order and byte-identical to the serial loop.
  auto run_batches = [&](size_t first_batch, size_t end_batch,
                         nn::Workspace& ws) {
    for (size_t bi = first_batch; bi < end_batch; ++bi) {
      const size_t begin = bi * batch_size;
      const size_t count = std::min(batch_size, records.size() - begin);
      obs::TraceSpan span(obs::names::kSpanNnGemm);
      model.PredictBatched(records.data() + begin, count,
                           scores.data() + begin, ws);
      batch_hist->Observe(static_cast<double>(count));
    }
  };
  if (ctx.pool() != nullptr) {
    ctx.pool()->ParallelForChunked(
        num_batches, [&](int, size_t chunk_begin, size_t chunk_end) {
          // One arena per worker chunk: warm after its first batch, never
          // shared across threads (Workspace ownership, DESIGN.md §5e).
          nn::Workspace ws;
          run_batches(chunk_begin, chunk_end, ws);
        });
  } else {
    nn::Workspace ws;
    run_batches(0, num_batches, ws);
  }
  return scores;
}

}  // namespace eventhit::core
