// The four EventHit-based marshalling strategies compared in §VI.B:
//
//   EHO  — thresholds only: Eq. (4) on b_k with tau1, Eq. (6) with tau2.
//   EHC  — C-CLASSIFY existence (knob c), Eq. (6) intervals.
//   EHR  — Eq. (4) existence, C-REGRESS-adjusted intervals (knob alpha).
//   EHCR — C-CLASSIFY existence + C-REGRESS intervals (both knobs).
//
// One configurable class implements all four; the conformal knobs are
// mutable so a sweep over c/alpha reuses the trained model and calibrators.
#ifndef EVENTHIT_CORE_STRATEGIES_H_
#define EVENTHIT_CORE_STRATEGIES_H_

#include <string>

#include "core/c_classify.h"
#include "core/c_regress.h"
#include "core/eventhit_model.h"
#include "core/prediction.h"

namespace eventhit::core {

/// Knob settings for an EventHit strategy instance.
struct EventHitStrategyOptions {
  /// Use C-CLASSIFY for existence (else threshold tau1 on b_k).
  bool use_cclassify = false;
  /// Use C-REGRESS to widen intervals (else raw Eq. (6) output).
  bool use_cregress = false;
  /// Existence threshold tau1 (EHO/EHR).
  double tau1 = 0.5;
  /// Occupancy threshold tau2 (all variants).
  double tau2 = 0.5;
  /// Confidence level c of C-CLASSIFY (EHC/EHCR).
  double confidence = 0.9;
  /// Coverage level alpha of C-REGRESS (EHR/EHCR).
  double coverage = 0.5;
};

/// EventHit marshaller. Holds non-owning pointers: the model must outlive
/// the strategy; the calibrators are only required when the corresponding
/// use_* flag is set.
class EventHitStrategy : public MarshalStrategy {
 public:
  EventHitStrategy(const EventHitModel* model, const CClassify* cclassify,
                   const CRegress* cregress, EventHitStrategyOptions options);

  std::string name() const override;
  MarshalDecision Decide(const data::Record& record) const override;

  /// Decision from precomputed raw scores (lets sweeps over c/alpha reuse
  /// one forward pass per record).
  MarshalDecision DecideFromScores(const EventScores& scores) const;

  void set_confidence(double c) { options_.confidence = c; }
  void set_coverage(double alpha) { options_.coverage = alpha; }
  void set_tau1(double tau1) { options_.tau1 = tau1; }
  void set_tau2(double tau2) { options_.tau2 = tau2; }
  const EventHitStrategyOptions& options() const { return options_; }

  /// Hot-swaps both conformal calibrators in one step (the recalibration
  /// loop, DESIGN.md §5j). Non-owning like the constructor: the caller keeps
  /// the new calibrators alive past the last decision that uses them. The
  /// swap is atomic with respect to decisions — every DecideFromScores call
  /// sees either the old pair or the new pair, never a mix.
  void set_calibrators(const CClassify* cclassify, const CRegress* cregress);

  const CClassify* cclassify() const { return cclassify_; }
  const CRegress* cregress() const { return cregress_; }

  /// Conformal generation: 0 for the calibrators installed at
  /// construction, +1 per set_calibrators hot swap. Stamped into the
  /// decision provenance ledger so a decision can be traced to the exact
  /// calibrator pair that produced it.
  int64_t calibrator_generation() const { return calibrator_generation_; }

 private:
  const EventHitModel* model_;
  const CClassify* cclassify_;
  const CRegress* cregress_;
  EventHitStrategyOptions options_;
  int64_t calibrator_generation_ = 0;
};

}  // namespace eventhit::core

#endif  // EVENTHIT_CORE_STRATEGIES_H_
