// Shared output types of EventHit and all compared marshalling strategies.
#ifndef EVENTHIT_CORE_PREDICTION_H_
#define EVENTHIT_CORE_PREDICTION_H_

#include <string>
#include <vector>

#include "data/record.h"
#include "sim/interval.h"

namespace eventhit::core {

/// Raw EventHit outputs for one record: per event type, the existence score
/// b_k and the per-frame occurrence scores theta_{k,1..H} (probabilities,
/// i.e. after the sigmoid).
struct EventScores {
  /// b_k per event (size K).
  std::vector<double> existence;
  /// theta_{k,v} per event (K x H); theta[k][v-1] scores horizon offset v.
  std::vector<std::vector<float>> occupancy;
};

/// The decision a marshalling strategy makes for one record: which events it
/// believes will occur in the horizon, and for those, which frame-offset
/// interval to relay to the cloud service. Offsets are 1-based in [1, H];
/// intervals of absent events must be empty.
struct MarshalDecision {
  std::vector<bool> exists;
  std::vector<sim::Interval> intervals;
  /// max_k of the raw existence scores b_k behind this decision; 0 for
  /// strategies that do not expose scores. Feedback signal for adaptive
  /// collection scheduling (sched/collect_policy.h) — never part of the
  /// relay/billing output, so strategies that leave it 0 are unaffected.
  double max_existence = 0.0;
};

/// Interface implemented by every algorithm of §VI.B (EHO/EHC/EHR/EHCR,
/// OPT, BF, COX, VQS, APP-VAE). A strategy observes only the record (its
/// covariates and anchor frame); implementations that model per-frame
/// filters (VQS) additionally consult the stream they were constructed on,
/// mirroring the frames those systems would actually process.
class MarshalStrategy {
 public:
  virtual ~MarshalStrategy() = default;

  /// Display name ("EHCR", "COX", ...).
  virtual std::string name() const = 0;

  /// Decision for one record.
  virtual MarshalDecision Decide(const data::Record& record) const = 0;
};

}  // namespace eventhit::core

#endif  // EVENTHIT_CORE_PREDICTION_H_
