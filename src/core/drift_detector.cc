#include "core/drift_detector.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "obs/log.h"
#include "obs/metrics.h"
#include "obs/schema.h"

namespace eventhit::core {

namespace {

// Shared drift telemetry (docs/TELEMETRY.md): counters aggregate across
// every detector instance; the gauge tracks the most recent observation.
struct DriftMetrics {
  obs::Counter* observations;
  obs::Counter* alarms;
  obs::Gauge* log_martingale;

  static const DriftMetrics& Get() {
    static const DriftMetrics* metrics = [] {
      auto& registry = obs::MetricsRegistry::Global();
      auto* m = new DriftMetrics();
      m->observations = registry.GetCounter(obs::names::kDriftObservations);
      m->alarms = registry.GetCounter(obs::names::kDriftAlarms);
      m->log_martingale =
          registry.GetGauge(obs::names::kDriftLogMartingale);
      return m;
    }();
    return *metrics;
  }
};

}  // namespace

DriftDetector::DriftDetector(const DriftDetectorOptions& options)
    : options_(options) {
  EVENTHIT_CHECK_GT(options_.epsilon, 0.0);
  EVENTHIT_CHECK_LT(options_.epsilon, 1.0);
  EVENTHIT_CHECK_GT(options_.log_threshold, 0.0);
  EVENTHIT_CHECK_GT(options_.min_p_value, 0.0);
}

bool DriftDetector::Observe(double p_value) {
  EVENTHIT_CHECK_GE(p_value, 0.0);
  EVENTHIT_CHECK_LE(p_value, 1.0);
  ++observations_;
  const double p = std::max(p_value, options_.min_p_value);
  // Betting-function increment: epsilon * p^(epsilon-1).
  log_martingale_ +=
      std::log(options_.epsilon) + (options_.epsilon - 1.0) * std::log(p);
  // Reflect at 1 (CUSUM-style restart): a martingale that has drifted far
  // below 1 would otherwise need many drifted observations to recover. See
  // the header for the false-alarm analysis of the reflected walk.
  log_martingale_ = std::max(log_martingale_, 0.0);
  const DriftMetrics& metrics = DriftMetrics::Get();
  metrics.observations->Add(1);
  metrics.log_martingale->Set(log_martingale_);
  if (log_martingale_ >= options_.log_threshold) {
    if (!detected_) {
      metrics.alarms->Add(1);
      // sim_time is the detector's own observation clock (one tick per
      // audited p-value).
      obs::Logger::Global().Log(
          obs::LogLevel::kWarn, "drift", "alarm", observations_,
          {obs::LogNum("log_martingale", log_martingale_),
           obs::LogNum("threshold", options_.log_threshold)});
    }
    detected_ = true;
  }
  return detected_ && log_martingale_ >= options_.log_threshold;
}

void DriftDetector::Reset() {
  log_martingale_ = 0.0;
  detected_ = false;
  observations_ = 0;
}

}  // namespace eventhit::core
