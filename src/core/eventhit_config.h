// Hyper-parameters of the EventHit network and its training loop (§III).
#ifndef EVENTHIT_CORE_EVENTHIT_CONFIG_H_
#define EVENTHIT_CORE_EVENTHIT_CONFIG_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace eventhit::core {

/// Architecture + optimisation knobs. Defaults are tuned for the synthetic
/// datasets; per-dataset M and H come from the DatasetSpec.
struct EventHitConfig {
  // --- Problem shape ---
  /// Collection-window length M (timesteps seen by the LSTM).
  int collection_window = 25;
  /// Time-horizon length H (per-frame scores emitted per event).
  int horizon = 500;
  /// Covariate dimensionality D.
  size_t feature_dim = 0;
  /// Number of event types K (one sub-network each).
  size_t num_events = 1;

  // --- Architecture ---
  /// LSTM hidden width.
  size_t lstm_hidden = 24;
  /// Width of the shared fully-connected layer producing z.
  size_t shared_dim = 24;
  /// Hidden width of each event-specific sub-network.
  size_t event_hidden = 32;
  /// Dropout rate on z during training.
  double dropout = 0.1;

  // --- Training ---
  int epochs = 18;
  int batch_size = 16;
  double learning_rate = 3e-3;
  double grad_clip_norm = 5.0;
  /// Per-event weights of the existence loss L1 (beta_k). Empty = all 1.
  std::vector<double> beta;
  /// Per-event weights of the occupancy loss L2 (gamma_k). Empty = all 1.
  std::vector<double> gamma;
  /// Weight-initialisation / dropout / shuffle seed.
  uint64_t seed = 7;
};

}  // namespace eventhit::core

#endif  // EVENTHIT_CORE_EVENTHIT_CONFIG_H_
