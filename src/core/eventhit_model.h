// The EventHit deep model (§III, Figure 3): a shared LSTM encoder over the
// collection window, a shared fully-connected + dropout layer producing the
// latent vector z, and one sigmoid-activated sub-network per event type
// emitting [b_k, theta_{k,1}, ..., theta_{k,H}].
//
// Training minimises L_Total = L1 + L2:
//   L1 — weighted BCE between b_k and 1[E_k in L_n];
//   L2 — for positive records, per-frame BCE between theta_{k,v} and frame
//        occupancy, weighted 1/|interval| inside the occurrence interval and
//        1/(H - |interval|) outside (the paper's normalisation), censored
//        occurrences clipped at the horizon end.
#ifndef EVENTHIT_CORE_EVENTHIT_MODEL_H_
#define EVENTHIT_CORE_EVENTHIT_MODEL_H_

#include <string>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "common/thread_pool.h"
#include "core/eventhit_config.h"
#include "core/prediction.h"
#include "data/record.h"
#include "nn/adam.h"
#include "nn/backend.h"
#include "nn/dense.h"
#include "nn/dropout.h"
#include "nn/int8.h"
#include "nn/lstm.h"
#include "nn/mlp.h"
#include "nn/workspace.h"

namespace eventhit::core {

/// Per-epoch training diagnostics.
struct TrainEpochStats {
  double existence_loss = 0.0;  // L1, averaged over records.
  double occupancy_loss = 0.0;  // L2, averaged over records.
  double total_loss = 0.0;
  double grad_norm = 0.0;  // Mean pre-clip gradient norm across steps.
};

/// The trained/trainable EventHit network.
class EventHitModel {
 public:
  /// Initialises weights from config.seed. `config.feature_dim` and
  /// `config.num_events` must be set.
  explicit EventHitModel(const EventHitConfig& config);

  const EventHitConfig& config() const { return config_; }

  /// Trains end-to-end on `records` (their covariates must be
  /// M x feature_dim). Returns per-epoch statistics.
  std::vector<TrainEpochStats> Train(const std::vector<data::Record>& records);

  /// Inference: raw scores for one covariate block. Routed through the
  /// selected backend (SetInferenceBackend): scalar/blocked use the
  /// per-record float path; simd/int8 run the batched path at batch 1 so
  /// per-record and batched scores stay bit-identical under every backend.
  EventScores Predict(const data::Record& record) const;

  /// Inference from a raw covariate pointer (M x D floats). Always the
  /// float per-record path (MatVec kernels, bit-identical to the scalar
  /// and blocked backends) regardless of the selected backend.
  EventScores PredictCovariates(const float* covariates) const;

  /// Selects the kernel backend used by Predict/PredictBatched
  /// (nn/backend.h; docs/BACKENDS.md). kInt8 requires CalibrateInt8 first.
  /// Scores change across backends (within documented bounds), so conformal
  /// calibrators must be built from scores produced under the same backend
  /// they will guard — eval::TrainEventHit sets the backend before
  /// calibration for exactly this reason.
  void SetInferenceBackend(nn::BackendKind kind);

  nn::BackendKind inference_backend() const { return backend_kind_; }

  /// Builds the int8-quantized weights (per-tensor symmetric, nn/int8.h).
  /// Weight scales come from the weights themselves; the only calibrated
  /// activation statistic is the max-abs covariate over up to `max_records`
  /// of `calibration` (LSTM hidden states and tanh activations are bounded
  /// in (-1,1), so they use the analytic scale). Invalidated by Train/Load.
  void CalibrateInt8(const std::vector<data::Record>& calibration,
                     size_t max_records = 256);

  bool int8_calibrated() const { return int8_ready_; }

  /// Batched inference: scores `count` records in one pass through the
  /// GEMM path (nn/gemm.h) — covariates are gathered into a batch-minor
  /// buffer, the LSTM runs two GEMMs per timestep for the whole batch, the
  /// per-event MLP heads run one batched forward each, and the logits are
  /// scattered back into `out[0..count)`. Scratch comes from `ws` (Reset
  /// per call), so a warm Workspace makes the pass allocation-free apart
  /// from the EventScores vectors themselves. Per record the results are
  /// bit-identical to Predict at any batch size (summation-order contract,
  /// nn/matrix.h).
  void PredictBatched(const data::Record* records, size_t count,
                      EventScores* out, nn::Workspace& ws) const;

  /// Number of trainable scalars.
  size_t ParameterCount() const;

  /// Persists / restores all weights.
  Status Save(const std::string& path) const;
  Status Load(const std::string& path);

 private:
  // Shared trunk forward pass (inference mode: no dropout). Fills z and the
  // concatenated sub-network input u = z ++ x_last.
  void TrunkForward(const float* covariates, nn::Vec& z, nn::Vec& u) const;

  // One training example: forward + loss + backward. Returns (L1, L2).
  std::pair<double, double> TrainStep(const data::Record& record, Rng& rng);

  nn::ParameterRefs Parameters();
  nn::ConstParameterRefs Parameters() const;

  // Drops the quantized weights (and falls back to the blocked backend if
  // int8 was selected) — called whenever the float weights change.
  void InvalidateInt8();

  EventHitConfig config_;
  nn::Lstm lstm_;
  nn::Dense shared_fc_;
  nn::Dropout dropout_;
  std::vector<nn::Mlp> event_nets_;
  mutable Rng rng_;  // Dropout masks and shuffling during Train.

  // Quantized mirror of the inference layers, built by CalibrateInt8.
  struct Int8State {
    nn::Int8Lstm lstm;
    nn::Int8Dense shared_fc;
    std::vector<nn::Int8Mlp> event_nets;
  };
  nn::BackendKind backend_kind_ = nn::BackendKind::kBlocked;
  Int8State int8_;
  bool int8_ready_ = false;
};

/// Default batch size for PredictBatch (the `--predict-batch` CLI flag and
/// RunnerConfig::predict_batch override it). Large enough that the GEMM
/// path amortises weight streaming across the batch, small enough that the
/// per-thread scratch stays L2-resident for the paper's model shapes.
inline constexpr size_t kDefaultPredictBatch = 32;

/// Runs inference over every record through the batched GEMM path: records
/// are chunked into batches of `batch_size` and scored with
/// EventHitModel::PredictBatched, parallelized across chunks when `ctx` is
/// pooled (one Workspace per worker chunk). Results land in input order and
/// are bit-identical to the per-record serial loop at any batch size and
/// thread count (summation-order contract, nn/matrix.h). Instrumented with
/// the `predict.batch_size` histogram and one `nn.gemm` span per batch.
std::vector<EventScores> PredictBatch(const EventHitModel& model,
                                      const std::vector<data::Record>& records,
                                      const ExecutionContext& ctx = ExecutionContext(),
                                      size_t batch_size = kDefaultPredictBatch);

}  // namespace eventhit::core

#endif  // EVENTHIT_CORE_EVENTHIT_MODEL_H_
