// The EventHit deep model (§III, Figure 3): a shared LSTM encoder over the
// collection window, a shared fully-connected + dropout layer producing the
// latent vector z, and one sigmoid-activated sub-network per event type
// emitting [b_k, theta_{k,1}, ..., theta_{k,H}].
//
// Training minimises L_Total = L1 + L2:
//   L1 — weighted BCE between b_k and 1[E_k in L_n];
//   L2 — for positive records, per-frame BCE between theta_{k,v} and frame
//        occupancy, weighted 1/|interval| inside the occurrence interval and
//        1/(H - |interval|) outside (the paper's normalisation), censored
//        occurrences clipped at the horizon end.
#ifndef EVENTHIT_CORE_EVENTHIT_MODEL_H_
#define EVENTHIT_CORE_EVENTHIT_MODEL_H_

#include <string>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "common/thread_pool.h"
#include "core/eventhit_config.h"
#include "core/prediction.h"
#include "data/record.h"
#include "nn/adam.h"
#include "nn/dense.h"
#include "nn/dropout.h"
#include "nn/lstm.h"
#include "nn/mlp.h"

namespace eventhit::core {

/// Per-epoch training diagnostics.
struct TrainEpochStats {
  double existence_loss = 0.0;  // L1, averaged over records.
  double occupancy_loss = 0.0;  // L2, averaged over records.
  double total_loss = 0.0;
  double grad_norm = 0.0;  // Mean pre-clip gradient norm across steps.
};

/// The trained/trainable EventHit network.
class EventHitModel {
 public:
  /// Initialises weights from config.seed. `config.feature_dim` and
  /// `config.num_events` must be set.
  explicit EventHitModel(const EventHitConfig& config);

  const EventHitConfig& config() const { return config_; }

  /// Trains end-to-end on `records` (their covariates must be
  /// M x feature_dim). Returns per-epoch statistics.
  std::vector<TrainEpochStats> Train(const std::vector<data::Record>& records);

  /// Inference: raw scores for one covariate block.
  EventScores Predict(const data::Record& record) const;

  /// Inference from a raw covariate pointer (M x D floats).
  EventScores PredictCovariates(const float* covariates) const;

  /// Number of trainable scalars.
  size_t ParameterCount() const;

  /// Persists / restores all weights.
  Status Save(const std::string& path) const;
  Status Load(const std::string& path);

 private:
  // Shared trunk forward pass (inference mode: no dropout). Fills z and the
  // concatenated sub-network input u = z ++ x_last.
  void TrunkForward(const float* covariates, nn::Vec& z, nn::Vec& u) const;

  // One training example: forward + loss + backward. Returns (L1, L2).
  std::pair<double, double> TrainStep(const data::Record& record, Rng& rng);

  nn::ParameterRefs Parameters();

  EventHitConfig config_;
  nn::Lstm lstm_;
  nn::Dense shared_fc_;
  nn::Dropout dropout_;
  std::vector<nn::Mlp> event_nets_;
  mutable Rng rng_;  // Dropout masks and shuffling during Train.
};

/// Runs inference over every record, optionally in parallel. Predict is
/// const and touches no shared mutable state, so records are scored across
/// `ctx.threads()` chunks; results land in input order, byte-identical to
/// the serial loop.
std::vector<EventScores> PredictBatch(const EventHitModel& model,
                                      const std::vector<data::Record>& records,
                                      const ExecutionContext& ctx = ExecutionContext());

}  // namespace eventhit::core

#endif  // EVENTHIT_CORE_EVENTHIT_MODEL_H_
