#include "core/c_classify.h"

#include "common/check.h"

namespace eventhit::core {

CClassify::CClassify(const EventHitModel& model,
                     const std::vector<data::Record>& calibration,
                     const ExecutionContext& ctx) {
  const size_t k_events = model.config().num_events;
  const std::vector<EventScores> all_scores =
      PredictBatch(model, calibration, ctx);
  std::vector<std::vector<double>> positive_scores(k_events);
  for (size_t i = 0; i < calibration.size(); ++i) {
    const data::Record& record = calibration[i];
    EVENTHIT_CHECK_EQ(record.labels.size(), k_events);
    for (size_t k = 0; k < k_events; ++k) {
      if (record.labels[k].present) {
        positive_scores[k].push_back(1.0 - all_scores[i].existence[k]);
      }
    }
  }
  classifiers_.reserve(k_events);
  for (auto& scores : positive_scores) {
    classifiers_.emplace_back(std::move(scores));
  }
}

CClassify::CClassify(
    std::vector<std::vector<double>> positive_scores_per_event) {
  classifiers_.reserve(positive_scores_per_event.size());
  for (auto& scores : positive_scores_per_event) {
    classifiers_.emplace_back(std::move(scores));
  }
}

std::vector<double> CClassify::PValues(const EventScores& scores) const {
  EVENTHIT_CHECK_EQ(scores.existence.size(), classifiers_.size());
  std::vector<double> p(classifiers_.size());
  for (size_t k = 0; k < classifiers_.size(); ++k) {
    p[k] = classifiers_[k].PValue(1.0 - scores.existence[k]);
  }
  return p;
}

std::vector<bool> CClassify::PredictExistence(const EventScores& scores,
                                              double confidence) const {
  const std::vector<double> p = PValues(scores);
  std::vector<bool> exists(p.size());
  for (size_t k = 0; k < p.size(); ++k) {
    exists[k] = p[k] >= 1.0 - confidence;
  }
  return exists;
}

size_t CClassify::CalibrationSize(size_t k) const {
  EVENTHIT_CHECK_LT(k, classifiers_.size());
  return classifiers_[k].calibration_size();
}

}  // namespace eventhit::core
