#include "core/recalibrator.h"

#include "common/check.h"

namespace eventhit::core {

Recalibrator::Recalibrator(const EventHitModel* model, size_t capacity,
                           double tau2)
    : model_(model), capacity_(capacity), tau2_(tau2) {
  EVENTHIT_CHECK(model_ != nullptr);
  EVENTHIT_CHECK_GT(capacity_, 0u);
}

void Recalibrator::AddLabeledRecord(data::Record record) {
  EVENTHIT_CHECK_EQ(record.labels.size(), model_->config().num_events);
  window_.push_back(std::move(record));
  if (window_.size() > capacity_) window_.pop_front();
}

size_t Recalibrator::PositiveCount(size_t k) const {
  EVENTHIT_CHECK_LT(k, model_->config().num_events);
  size_t count = 0;
  for (const data::Record& record : window_) {
    count += record.labels[k].present ? 1 : 0;
  }
  return count;
}

std::unique_ptr<CClassify> Recalibrator::BuildCClassify() const {
  const std::vector<data::Record> records(window_.begin(), window_.end());
  return std::make_unique<CClassify>(*model_, records);
}

std::unique_ptr<CRegress> Recalibrator::BuildCRegress() const {
  const std::vector<data::Record> records(window_.begin(), window_.end());
  return std::make_unique<CRegress>(*model_, records, tau2_);
}

void Recalibrator::Clear() { window_.clear(); }

}  // namespace eventhit::core
