#include "core/recalibrator.h"

#include "common/check.h"
#include "obs/log.h"
#include "obs/metrics.h"
#include "obs/schema.h"

namespace eventhit::core {

namespace {

// Shared recalibration telemetry (docs/TELEMETRY.md); counters aggregate
// across instances, the window gauge tracks the most recent mutation.
struct RecalMetrics {
  obs::Counter* records_added;
  obs::Counter* rebuilds_cclassify;
  obs::Counter* rebuilds_cregress;
  obs::Gauge* window_size;

  static const RecalMetrics& Get() {
    static const RecalMetrics* metrics = [] {
      auto& registry = obs::MetricsRegistry::Global();
      auto* m = new RecalMetrics();
      m->records_added =
          registry.GetCounter(obs::names::kRecalibratorRecordsAdded);
      m->rebuilds_cclassify =
          registry.GetCounter(obs::names::kRecalibratorRebuildsCClassify);
      m->rebuilds_cregress =
          registry.GetCounter(obs::names::kRecalibratorRebuildsCRegress);
      m->window_size =
          registry.GetGauge(obs::names::kRecalibratorWindowSize);
      return m;
    }();
    return *metrics;
  }
};

}  // namespace

Recalibrator::Recalibrator(const EventHitModel* model, size_t capacity,
                           double tau2)
    : model_(model), capacity_(capacity), tau2_(tau2) {
  EVENTHIT_CHECK(model_ != nullptr);
  EVENTHIT_CHECK_GT(capacity_, 0u);
}

void Recalibrator::AddLabeledRecord(data::Record record) {
  EVENTHIT_CHECK_EQ(record.labels.size(), model_->config().num_events);
  window_.push_back(std::move(record));
  if (window_.size() > capacity_) window_.pop_front();
  const RecalMetrics& metrics = RecalMetrics::Get();
  metrics.records_added->Add(1);
  metrics.window_size->Set(static_cast<double>(window_.size()));
}

size_t Recalibrator::PositiveCount(size_t k) const {
  EVENTHIT_CHECK_LT(k, model_->config().num_events);
  size_t count = 0;
  for (const data::Record& record : window_) {
    count += record.labels[k].present ? 1 : 0;
  }
  return count;
}

bool Recalibrator::CanRebuild(size_t min_records, size_t min_positives) const {
  if (window_.size() < min_records) return false;
  for (size_t k = 0; k < model_->config().num_events; ++k) {
    if (PositiveCount(k) < min_positives) return false;
  }
  return true;
}

std::unique_ptr<CClassify> Recalibrator::BuildCClassify() const {
  EVENTHIT_CHECK(CanRebuild(1, 1));
  RecalMetrics::Get().rebuilds_cclassify->Add(1);
  // The recalibrator has no stream clock of its own; sim_time is the
  // window fill at rebuild time.
  obs::Logger::Global().Log(
      obs::LogLevel::kInfo, "recalibrator", "rebuild_cclassify",
      static_cast<int64_t>(window_.size()),
      {obs::LogInt("window", static_cast<int64_t>(window_.size()))});
  const std::vector<data::Record> records(window_.begin(), window_.end());
  return std::make_unique<CClassify>(*model_, records);
}

std::unique_ptr<CRegress> Recalibrator::BuildCRegress() const {
  EVENTHIT_CHECK(CanRebuild(1, 1));
  RecalMetrics::Get().rebuilds_cregress->Add(1);
  obs::Logger::Global().Log(
      obs::LogLevel::kInfo, "recalibrator", "rebuild_cregress",
      static_cast<int64_t>(window_.size()),
      {obs::LogInt("window", static_cast<int64_t>(window_.size()))});
  const std::vector<data::Record> records(window_.begin(), window_.end());
  return std::make_unique<CRegress>(*model_, records, tau2_);
}

void Recalibrator::Clear() {
  window_.clear();
  RecalMetrics::Get().window_size->Set(0.0);
}

}  // namespace eventhit::core
