#include "core/c_regress.h"

#include <cmath>

#include "common/check.h"
#include "core/interval_extraction.h"

namespace eventhit::core {

CRegress::CRegress(const EventHitModel& model,
                   const std::vector<data::Record>& calibration, double tau2,
                   const ExecutionContext& ctx)
    : horizon_(model.config().horizon) {
  const size_t k_events = model.config().num_events;
  // Forward passes go through the batched GEMM path (bit-identical to
  // per-record Predict, so the calibrated residuals are unchanged); the
  // interval extraction stays a parallel per-record map. One slot per
  // (record, event), so workers never contend and the reduction below sees
  // record order.
  const std::vector<EventScores> all_scores =
      PredictBatch(model, calibration, ctx);
  std::vector<std::vector<sim::Interval>> estimates(calibration.size());
  ctx.ParallelFor(calibration.size(), [&](size_t i) {
    const data::Record& record = calibration[i];
    EVENTHIT_CHECK_EQ(record.labels.size(), k_events);
    const EventScores& scores = all_scores[i];
    estimates[i].resize(k_events);
    for (size_t k = 0; k < k_events; ++k) {
      if (!record.labels[k].present) continue;
      estimates[i][k] = ExtractOccurrenceInterval(scores.occupancy[k], tau2);
    }
  });
  // Serial ordered reduction: identical residual order to the serial loop.
  std::vector<std::vector<double>> start_residuals(k_events);
  std::vector<std::vector<double>> end_residuals(k_events);
  for (size_t i = 0; i < calibration.size(); ++i) {
    for (size_t k = 0; k < k_events; ++k) {
      const data::EventLabel& label = calibration[i].labels[k];
      if (!label.present) continue;
      const sim::Interval& estimate = estimates[i][k];
      start_residuals[k].push_back(
          std::fabs(static_cast<double>(estimate.start - label.start)));
      end_residuals[k].push_back(
          std::fabs(static_cast<double>(estimate.end - label.end)));
    }
  }
  start_.reserve(k_events);
  end_.reserve(k_events);
  for (size_t k = 0; k < k_events; ++k) {
    start_.emplace_back(std::move(start_residuals[k]));
    end_.emplace_back(std::move(end_residuals[k]));
  }
}

CRegress::CRegress(std::vector<std::vector<double>> start_residuals,
                   std::vector<std::vector<double>> end_residuals, int horizon)
    : horizon_(horizon) {
  EVENTHIT_CHECK_EQ(start_residuals.size(), end_residuals.size());
  EVENTHIT_CHECK_GT(horizon, 0);
  start_.reserve(start_residuals.size());
  end_.reserve(end_residuals.size());
  for (auto& r : start_residuals) start_.emplace_back(std::move(r));
  for (auto& r : end_residuals) end_.emplace_back(std::move(r));
}

double CRegress::StartQuantile(size_t k, double alpha) const {
  EVENTHIT_CHECK_LT(k, start_.size());
  return start_[k].Quantile(alpha);
}

double CRegress::EndQuantile(size_t k, double alpha) const {
  EVENTHIT_CHECK_LT(k, end_.size());
  return end_[k].Quantile(alpha);
}

sim::Interval CRegress::Adjust(size_t k, const sim::Interval& estimate,
                               double alpha) const {
  EVENTHIT_CHECK(!estimate.empty());
  const auto q_s = static_cast<int64_t>(std::ceil(StartQuantile(k, alpha)));
  const auto q_e = static_cast<int64_t>(std::ceil(EndQuantile(k, alpha)));
  return ClampToHorizon(
      sim::Interval{estimate.start - q_s, estimate.end + q_e}, horizon_);
}

size_t CRegress::CalibrationSize(size_t k) const {
  EVENTHIT_CHECK_LT(k, start_.size());
  return start_[k].calibration_size();
}

}  // namespace eventhit::core
