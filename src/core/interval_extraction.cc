#include "core/interval_extraction.h"

#include <algorithm>

#include "common/check.h"

namespace eventhit::core {

sim::Interval ExtractOccurrenceInterval(const std::vector<float>& theta,
                                        double tau2) {
  EVENTHIT_CHECK(!theta.empty());
  int64_t first = -1;
  int64_t last = -1;
  for (size_t v = 0; v < theta.size(); ++v) {
    if (theta[v] >= tau2) {
      if (first < 0) first = static_cast<int64_t>(v) + 1;
      last = static_cast<int64_t>(v) + 1;
    }
  }
  if (first >= 0) return sim::Interval{first, last};
  // Fallback: argmax as a one-frame interval.
  const auto it = std::max_element(theta.begin(), theta.end());
  const int64_t offset = (it - theta.begin()) + 1;
  return sim::Interval{offset, offset};
}

sim::Interval ClampToHorizon(const sim::Interval& interval, int horizon) {
  EVENTHIT_CHECK_GT(horizon, 0);
  if (interval.empty()) return sim::Interval::Empty();
  sim::Interval out{std::max<int64_t>(interval.start, 1),
                    std::min<int64_t>(interval.end, horizon)};
  if (out.empty()) {
    // Entirely outside the horizon: snap to the nearest boundary frame.
    const int64_t frame = interval.end < 1 ? 1 : horizon;
    return sim::Interval{frame, frame};
  }
  return out;
}

std::vector<sim::Interval> ExtractOccurrenceIntervals(
    const std::vector<float>& theta, double tau2, int min_gap) {
  EVENTHIT_CHECK(!theta.empty());
  EVENTHIT_CHECK_GE(min_gap, 1);
  std::vector<sim::Interval> runs;
  int64_t run_start = -1;
  for (size_t v = 0; v <= theta.size(); ++v) {
    const bool above = v < theta.size() && theta[v] >= tau2;
    if (above && run_start < 0) {
      run_start = static_cast<int64_t>(v) + 1;
    } else if (!above && run_start >= 0) {
      runs.push_back(sim::Interval{run_start, static_cast<int64_t>(v)});
      run_start = -1;
    }
  }
  if (runs.empty()) return runs;
  // Merge runs separated by fewer than min_gap below-threshold frames.
  std::vector<sim::Interval> merged;
  merged.push_back(runs.front());
  for (size_t i = 1; i < runs.size(); ++i) {
    if (runs[i].start - merged.back().end - 1 < min_gap) {
      merged.back().end = runs[i].end;
    } else {
      merged.push_back(runs[i]);
    }
  }
  return merged;
}

}  // namespace eventhit::core
