// Adaptive C-REGRESS: a normalized-conformal variant of Algorithm 2.
//
// The paper's C-REGRESS widens every predicted interval by the same
// per-event quantile. This extension scales the widening by a per-record
// difficulty signal that EventHit already produces for free: the width of
// the theta super-level envelope (a diffuse occupancy head means an
// uncertain interval; a crisp bump means a confident one). Theorem 5.2's
// marginal coverage carries over (the normalized conformal guarantee);
// widths become record-adaptive, cutting spillage on confident records.
#ifndef EVENTHIT_CORE_ADAPTIVE_C_REGRESS_H_
#define EVENTHIT_CORE_ADAPTIVE_C_REGRESS_H_

#include <vector>

#include "conformal/normalized_conformal_regressor.h"
#include "core/eventhit_model.h"
#include "core/prediction.h"
#include "data/record.h"
#include "sim/interval.h"

namespace eventhit::core {

/// Difficulty estimate used for normalization: the length of the extracted
/// tau2 envelope relative to the event's typical extracted length would
/// need a second calibration pass, so we use the simpler absolute form —
/// sqrt(envelope length), floored at 1 (longer envelope = less certain
/// endpoints; sqrt tempers the scaling).
double IntervalDifficulty(const std::vector<float>& theta, double tau2);

/// Calibrated adaptive interval adjuster over all K event types.
class AdaptiveCRegress {
 public:
  /// Mirrors CRegress's calibration pass, additionally recording each
  /// positive calibration record's difficulty.
  AdaptiveCRegress(const EventHitModel& model,
                   const std::vector<data::Record>& calibration, double tau2);

  size_t num_events() const { return start_.size(); }

  /// Widens `estimate` by quantile * difficulty(theta) on each side,
  /// clamped to [1, H].
  sim::Interval Adjust(size_t k, const sim::Interval& estimate,
                       const std::vector<float>& theta, double alpha) const;

  size_t CalibrationSize(size_t k) const;

 private:
  std::vector<conformal::NormalizedConformalRegressor> start_;
  std::vector<conformal::NormalizedConformalRegressor> end_;
  int horizon_ = 0;
  double tau2_ = 0.5;
};

}  // namespace eventhit::core

#endif  // EVENTHIT_CORE_ADAPTIVE_C_REGRESS_H_
