// C-CLASSIFY (Algorithm 1, §IV.B): conformal calibration of EventHit's
// event-existence scores.
//
// For each event type E_k independently, the non-conformity of a record is
// a^k = 1 - b_k (the paper's measure; any measure preserves the guarantee).
// Calibration collects a^k over the calibration records whose horizon truly
// contains E_k; at inference the p-value of a new record is compared with
// 1 - c. Theorem 4.2: P(E_k missed) <= 1 - c under exchangeability.
#ifndef EVENTHIT_CORE_C_CLASSIFY_H_
#define EVENTHIT_CORE_C_CLASSIFY_H_

#include <vector>

#include "conformal/conformal_classifier.h"
#include "core/eventhit_model.h"
#include "core/prediction.h"
#include "data/record.h"

namespace eventhit::core {

/// Calibrated conformal existence predictor over all K event types.
class CClassify {
 public:
  /// Runs `model` over the calibration records and builds one conformal
  /// classifier per event type from the positive records' scores. The
  /// forward passes run across `ctx.threads()` workers; the per-event
  /// score lists are assembled serially in record order, so the result is
  /// identical to a serial calibration.
  CClassify(const EventHitModel& model,
            const std::vector<data::Record>& calibration,
            const ExecutionContext& ctx = ExecutionContext());

  /// Builds directly from per-event positive-class non-conformity scores
  /// (tests, or reuse of precomputed model outputs).
  explicit CClassify(
      std::vector<std::vector<double>> positive_scores_per_event);

  size_t num_events() const { return classifiers_.size(); }

  /// p-value p^k_o per event for the given raw scores.
  std::vector<double> PValues(const EventScores& scores) const;

  /// \hat L_o at confidence level `c`: event k is predicted present iff
  /// p^k >= 1 - c (Eq. 9).
  std::vector<bool> PredictExistence(const EventScores& scores,
                                     double confidence) const;

  /// Number of positive calibration records for event `k`.
  size_t CalibrationSize(size_t k) const;

 private:
  std::vector<conformal::ConformalBinaryClassifier> classifiers_;
};

}  // namespace eventhit::core

#endif  // EVENTHIT_CORE_C_CLASSIFY_H_
