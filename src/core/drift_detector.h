// Drift detection for deployed EventHit models (§VIII future work).
//
// Under a stationary occurrence distribution, the conformal p-values of
// fresh positive records are (approximately) uniform on [0, 1]. When the
// distribution drifts — gaps shorten, precursors change, durations shift —
// the trained model's scores degrade and the p-values skew towards 0.
//
// The detector runs a conformal test ("power") martingale
//     M_n = prod_i  epsilon * p_i^(epsilon - 1)
// restarted at 1 whenever it dips below 1 (a CUSUM-style reflection, so
// detection latency after long quiet stretches stays bounded). For the
// reflected walk the relevant false-alarm control is the average run
// length, not Ville's inequality: with uniform p-values the stationary
// crossing rate of level h is ~exp(-h) per observation (the tilt exponent
// of the increment distribution is 1), so the default threshold of
// log(1e5) ~ 11.5 yields roughly one false alarm per 100k quiet
// observations while drifted streams (p-values near 0) cross within tens
// of observations. The deployment response to an alarm is to re-collect
// calibration data and re-fit/re-calibrate.
#ifndef EVENTHIT_CORE_DRIFT_DETECTOR_H_
#define EVENTHIT_CORE_DRIFT_DETECTOR_H_

#include <cstddef>

namespace eventhit::core {

/// Options for the martingale.
struct DriftDetectorOptions {
  /// Power-martingale exponent; 0 < epsilon < 1. Small epsilon is sensitive
  /// to p-values near 0.
  double epsilon = 0.2;
  /// Alarm when the reflected log-martingale exceeds this. The default,
  /// log(1e5) ~ 11.5, targets an average run length of ~1e5 quiet
  /// observations between false alarms.
  double log_threshold = 11.512925464970229;
  /// Lower clamp applied to incoming p-values (a p of exactly 0 would send
  /// the log-martingale to +inf on one observation).
  double min_p_value = 1e-4;
};

/// Sequential drift detector over a stream of conformal p-values.
class DriftDetector {
 public:
  explicit DriftDetector(const DriftDetectorOptions& options = {});

  /// Feeds the p-value of the next (positive) record. Returns true iff the
  /// alarm is raised by this observation (it stays raised afterwards).
  bool Observe(double p_value);

  bool drift_detected() const { return detected_; }
  double log_martingale() const { return log_martingale_; }
  size_t observations() const { return observations_; }

  /// Resets state (after recalibration).
  void Reset();

 private:
  DriftDetectorOptions options_;
  double log_martingale_ = 0.0;
  bool detected_ = false;
  size_t observations_ = 0;
};

}  // namespace eventhit::core

#endif  // EVENTHIT_CORE_DRIFT_DETECTOR_H_
