// C-REGRESS (Algorithm 2, §V.B): split conformal regression on the start
// and end offsets of EventHit's predicted occurrence intervals.
//
// Calibration evaluates the model on every calibration record whose horizon
// truly contains E_k, collecting absolute residuals of the predicted start
// and end against the ground truth. At inference, the alpha-quantiles
// (q_s, q_e) of those residuals widen the estimate to
//   [max(1, T_s - q_s), min(H, T_e + q_e)]  (Eq. 11).
// Theorem 5.2: each true endpoint is covered with probability >= alpha.
#ifndef EVENTHIT_CORE_C_REGRESS_H_
#define EVENTHIT_CORE_C_REGRESS_H_

#include <vector>

#include "conformal/split_conformal_regressor.h"
#include "core/eventhit_model.h"
#include "core/prediction.h"
#include "data/record.h"
#include "sim/interval.h"

namespace eventhit::core {

/// Calibrated conformal interval adjuster over all K event types.
class CRegress {
 public:
  /// Runs `model` over the calibration records (Lines 6–12 of Alg. 2).
  /// `tau2` is the occupancy threshold used to extract intervals. Forward
  /// passes and interval extraction run across `ctx.threads()` workers;
  /// residual lists are reduced serially in record order (deterministic).
  CRegress(const EventHitModel& model,
           const std::vector<data::Record>& calibration, double tau2,
           const ExecutionContext& ctx = ExecutionContext());

  /// Builds directly from per-event (start, end) residual sets.
  CRegress(std::vector<std::vector<double>> start_residuals,
           std::vector<std::vector<double>> end_residuals, int horizon);

  size_t num_events() const { return start_.size(); }

  /// Residual quantiles (q_s, q_e) for event `k` at coverage `alpha`.
  double StartQuantile(size_t k, double alpha) const;
  double EndQuantile(size_t k, double alpha) const;

  /// Applies Eq. (11): widens `estimate` (1-based offsets) by the alpha
  /// quantiles and clamps to [1, H].
  sim::Interval Adjust(size_t k, const sim::Interval& estimate,
                       double alpha) const;

  /// Number of positive calibration records for event `k` (|R_k|).
  size_t CalibrationSize(size_t k) const;

 private:
  std::vector<conformal::SplitConformalRegressor> start_;
  std::vector<conformal::SplitConformalRegressor> end_;
  int horizon_ = 0;
};

}  // namespace eventhit::core

#endif  // EVENTHIT_CORE_C_REGRESS_H_
