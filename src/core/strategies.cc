#include "core/strategies.h"

#include <algorithm>

#include "common/check.h"
#include "core/interval_extraction.h"

namespace eventhit::core {

EventHitStrategy::EventHitStrategy(const EventHitModel* model,
                                   const CClassify* cclassify,
                                   const CRegress* cregress,
                                   EventHitStrategyOptions options)
    : model_(model),
      cclassify_(cclassify),
      cregress_(cregress),
      options_(options) {
  EVENTHIT_CHECK(model_ != nullptr);
  if (options_.use_cclassify) EVENTHIT_CHECK(cclassify_ != nullptr);
  if (options_.use_cregress) EVENTHIT_CHECK(cregress_ != nullptr);
}

void EventHitStrategy::set_calibrators(const CClassify* cclassify,
                                       const CRegress* cregress) {
  if (options_.use_cclassify) EVENTHIT_CHECK(cclassify != nullptr);
  if (options_.use_cregress) EVENTHIT_CHECK(cregress != nullptr);
  cclassify_ = cclassify;
  cregress_ = cregress;
  ++calibrator_generation_;
}

std::string EventHitStrategy::name() const {
  if (options_.use_cclassify && options_.use_cregress) return "EHCR";
  if (options_.use_cclassify) return "EHC";
  if (options_.use_cregress) return "EHR";
  return "EHO";
}

MarshalDecision EventHitStrategy::DecideFromScores(
    const EventScores& scores) const {
  const size_t k_events = scores.existence.size();
  MarshalDecision decision;
  decision.exists.resize(k_events);
  decision.intervals.assign(k_events, sim::Interval::Empty());
  for (const double b : scores.existence) {
    decision.max_existence = std::max(decision.max_existence, b);
  }

  std::vector<bool> exists;
  if (options_.use_cclassify) {
    exists = cclassify_->PredictExistence(scores, options_.confidence);
  } else {
    exists.resize(k_events);
    for (size_t k = 0; k < k_events; ++k) {
      exists[k] = scores.existence[k] >= options_.tau1;
    }
  }

  for (size_t k = 0; k < k_events; ++k) {
    decision.exists[k] = exists[k];
    if (!exists[k]) continue;
    sim::Interval interval =
        ExtractOccurrenceInterval(scores.occupancy[k], options_.tau2);
    if (options_.use_cregress) {
      interval = cregress_->Adjust(k, interval, options_.coverage);
    }
    decision.intervals[k] = interval;
  }
  return decision;
}

MarshalDecision EventHitStrategy::Decide(const data::Record& record) const {
  return DecideFromScores(model_->Predict(record));
}

}  // namespace eventhit::core
