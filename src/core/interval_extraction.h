// Converts EventHit's per-frame occurrence scores into a predicted
// occurrence interval (Equations (5)/(6) of §III).
#ifndef EVENTHIT_CORE_INTERVAL_EXTRACTION_H_
#define EVENTHIT_CORE_INTERVAL_EXTRACTION_H_

#include <vector>

#include "sim/interval.h"

namespace eventhit::core {

/// Extracts [min{v : theta_v >= tau2}, max{v : theta_v >= tau2}] with
/// 1-based offsets, per Eq. (6). When no score clears tau2 (the paper's
/// equations leave this case implicit), falls back to the argmax frame as a
/// single-frame interval, so that a predicted-present event always relays at
/// least one frame; C-REGRESS then widens it like any other estimate.
sim::Interval ExtractOccurrenceInterval(const std::vector<float>& theta,
                                        double tau2);

/// Clamps an interval of 1-based offsets to [1, horizon]. An input that
/// leaves no overlap with [1, horizon] yields the nearest single frame.
sim::Interval ClampToHorizon(const sim::Interval& interval, int horizon);

/// Footnote-1 extension: extracts *all* occurrence intervals in the
/// horizon, for streams where an event type can occur more than once per
/// horizon. Maximal runs of theta_v >= tau2 become candidate intervals;
/// runs separated by fewer than `min_gap` sub-threshold frames are merged
/// (the paper's "events occur in continuous frames" smoothing). Returns an
/// empty vector when no score clears tau2 (no argmax fallback here: with
/// multiple instances an unconfident head should relay nothing extra).
std::vector<sim::Interval> ExtractOccurrenceIntervals(
    const std::vector<float>& theta, double tau2, int min_gap = 1);

}  // namespace eventhit::core

#endif  // EVENTHIT_CORE_INTERVAL_EXTRACTION_H_
