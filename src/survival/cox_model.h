// Cox proportional-hazards model (Cox 1972), the survival-analysis baseline
// of §VI.B. Fitted by Newton–Raphson on the Breslow partial likelihood;
// exposes the baseline cumulative hazard so survival curves S(t | x) can be
// evaluated at arbitrary horizon offsets.
#ifndef EVENTHIT_SURVIVAL_COX_MODEL_H_
#define EVENTHIT_SURVIVAL_COX_MODEL_H_

#include <cstdint>
#include <vector>

#include "common/status.h"

namespace eventhit::survival {

/// One subject: covariate vector, observed time (time-to-event or censoring
/// time), and whether the event was observed (1) or censored (0).
struct CoxObservation {
  std::vector<double> covariates;
  double time = 0.0;
  bool observed = false;
};

/// Fitting options.
struct CoxFitOptions {
  int max_iterations = 50;
  double tolerance = 1e-7;
  /// L2 (ridge) penalty on the coefficients; stabilises separated data.
  double ridge = 1e-3;
};

/// Fitted Cox model.
class CoxModel {
 public:
  /// Fits the model; fails if observations are empty, covariate dimensions
  /// disagree, or the Newton solve does not make progress.
  static Result<CoxModel> Fit(const std::vector<CoxObservation>& observations,
                              const CoxFitOptions& options = {});

  /// Linear predictor beta . x.
  double LinearPredictor(const std::vector<double>& covariates) const;

  /// Baseline cumulative hazard H0(t) (Breslow estimator, step function).
  double BaselineCumulativeHazard(double time) const;

  /// Survival probability S(t | x) = exp(-H0(t) * exp(beta . x)).
  double Survival(double time, const std::vector<double>& covariates) const;

  /// Probability the event occurs by `time`: 1 - S(t | x).
  double EventProbability(double time,
                          const std::vector<double>& covariates) const;

  const std::vector<double>& coefficients() const { return beta_; }
  int iterations_used() const { return iterations_; }
  double final_log_likelihood() const { return log_likelihood_; }

 private:
  std::vector<double> beta_;
  // Breslow baseline hazard: sorted unique event times and the cumulative
  // hazard immediately after each.
  std::vector<double> hazard_times_;
  std::vector<double> cumulative_hazard_;
  int iterations_ = 0;
  double log_likelihood_ = 0.0;
};

}  // namespace eventhit::survival

#endif  // EVENTHIT_SURVIVAL_COX_MODEL_H_
