#include "survival/cox_model.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/check.h"

namespace eventhit::survival {
namespace {

// Solves A x = b in place by Gaussian elimination with partial pivoting.
// Returns false if the matrix is (numerically) singular.
bool SolveLinearSystem(std::vector<double> a, std::vector<double> b,
                       size_t d, std::vector<double>* x) {
  for (size_t col = 0; col < d; ++col) {
    size_t pivot = col;
    for (size_t r = col + 1; r < d; ++r) {
      if (std::fabs(a[r * d + col]) > std::fabs(a[pivot * d + col])) pivot = r;
    }
    if (std::fabs(a[pivot * d + col]) < 1e-12) return false;
    if (pivot != col) {
      for (size_t c = 0; c < d; ++c) std::swap(a[col * d + c], a[pivot * d + c]);
      std::swap(b[col], b[pivot]);
    }
    const double diag = a[col * d + col];
    for (size_t r = col + 1; r < d; ++r) {
      const double factor = a[r * d + col] / diag;
      if (factor == 0.0) continue;
      for (size_t c = col; c < d; ++c) a[r * d + c] -= factor * a[col * d + c];
      b[r] -= factor * b[col];
    }
  }
  x->assign(d, 0.0);
  for (size_t row = d; row-- > 0;) {
    double acc = b[row];
    for (size_t c = row + 1; c < d; ++c) acc -= a[row * d + c] * (*x)[c];
    (*x)[row] = acc / a[row * d + row];
  }
  return true;
}

struct LikelihoodState {
  double log_likelihood = 0.0;
  std::vector<double> gradient;  // of the *negative* log likelihood
  std::vector<double> hessian;   // d x d, of the negative log likelihood
};

// Evaluates the Breslow partial likelihood, its gradient and Hessian at
// `beta`. `order` indexes observations sorted by time descending.
LikelihoodState Evaluate(const std::vector<CoxObservation>& obs,
                         const std::vector<size_t>& order,
                         const std::vector<double>& beta, double ridge) {
  const size_t d = beta.size();
  LikelihoodState state;
  state.gradient.assign(d, 0.0);
  state.hessian.assign(d * d, 0.0);

  double s0 = 0.0;
  std::vector<double> s1(d, 0.0);
  std::vector<double> s2(d * d, 0.0);

  size_t i = 0;
  const size_t n = order.size();
  while (i < n) {
    const double time = obs[order[i]].time;
    // Add everyone with this time to the risk set.
    size_t j = i;
    while (j < n && obs[order[j]].time == time) {
      const CoxObservation& o = obs[order[j]];
      double eta = 0.0;
      for (size_t c = 0; c < d; ++c) eta += beta[c] * o.covariates[c];
      const double w = std::exp(eta);
      s0 += w;
      for (size_t c = 0; c < d; ++c) {
        s1[c] += w * o.covariates[c];
        for (size_t c2 = 0; c2 < d; ++c2) {
          s2[c * d + c2] += w * o.covariates[c] * o.covariates[c2];
        }
      }
      ++j;
    }
    // Process the events (deaths) at this time against the full risk set.
    size_t deaths = 0;
    for (size_t r = i; r < j; ++r) {
      const CoxObservation& o = obs[order[r]];
      if (!o.observed) continue;
      ++deaths;
      double eta = 0.0;
      for (size_t c = 0; c < d; ++c) eta += beta[c] * o.covariates[c];
      state.log_likelihood += eta;
      for (size_t c = 0; c < d; ++c) state.gradient[c] -= o.covariates[c];
    }
    if (deaths > 0) {
      EVENTHIT_CHECK_GT(s0, 0.0);
      state.log_likelihood -= static_cast<double>(deaths) * std::log(s0);
      for (size_t c = 0; c < d; ++c) {
        state.gradient[c] += static_cast<double>(deaths) * s1[c] / s0;
      }
      for (size_t c = 0; c < d; ++c) {
        for (size_t c2 = 0; c2 < d; ++c2) {
          state.hessian[c * d + c2] +=
              static_cast<double>(deaths) *
              (s2[c * d + c2] / s0 - (s1[c] / s0) * (s1[c2] / s0));
        }
      }
    }
    i = j;
  }

  // Ridge penalty (on the NLL).
  for (size_t c = 0; c < d; ++c) {
    state.log_likelihood -= 0.5 * ridge * beta[c] * beta[c];
    state.gradient[c] += ridge * beta[c];
    state.hessian[c * d + c] += ridge;
  }
  return state;
}

}  // namespace

Result<CoxModel> CoxModel::Fit(const std::vector<CoxObservation>& observations,
                               const CoxFitOptions& options) {
  if (observations.empty()) {
    return InvalidArgumentError("Cox fit requires at least one observation");
  }
  const size_t d = observations[0].covariates.size();
  if (d == 0) {
    return InvalidArgumentError("Cox fit requires non-empty covariates");
  }
  bool any_event = false;
  for (const CoxObservation& o : observations) {
    if (o.covariates.size() != d) {
      return InvalidArgumentError("inconsistent covariate dimensions");
    }
    if (o.time <= 0.0) {
      return InvalidArgumentError("observation times must be positive");
    }
    any_event = any_event || o.observed;
  }
  if (!any_event) {
    return FailedPreconditionError(
        "Cox fit requires at least one observed (uncensored) event");
  }

  std::vector<size_t> order(observations.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    return observations[a].time > observations[b].time;
  });

  CoxModel model;
  model.beta_.assign(d, 0.0);
  LikelihoodState state =
      Evaluate(observations, order, model.beta_, options.ridge);

  for (int iter = 0; iter < options.max_iterations; ++iter) {
    model.iterations_ = iter + 1;
    std::vector<double> step;
    if (!SolveLinearSystem(state.hessian, state.gradient, d, &step)) {
      return InternalError("singular Hessian in Cox Newton step");
    }
    // Newton with step halving: beta_new = beta - step (step solves H s = g
    // where g is the NLL gradient).
    double scale = 1.0;
    bool improved = false;
    for (int half = 0; half < 20; ++half) {
      std::vector<double> candidate(d);
      for (size_t c = 0; c < d; ++c) {
        candidate[c] = model.beta_[c] - scale * step[c];
      }
      LikelihoodState next =
          Evaluate(observations, order, candidate, options.ridge);
      if (next.log_likelihood >= state.log_likelihood - 1e-12) {
        const double delta = next.log_likelihood - state.log_likelihood;
        model.beta_ = std::move(candidate);
        state = std::move(next);
        improved = true;
        if (std::fabs(delta) < options.tolerance) {
          iter = options.max_iterations;  // Converged; exit outer loop.
        }
        break;
      }
      scale *= 0.5;
    }
    if (!improved) break;  // No ascent direction; accept current beta.
  }
  model.log_likelihood_ = state.log_likelihood;

  // Breslow baseline cumulative hazard at each distinct event time.
  // Build ascending-time risk-set sums from the descending order.
  std::vector<double> weights(observations.size());
  for (size_t idx = 0; idx < observations.size(); ++idx) {
    weights[idx] = std::exp(model.LinearPredictor(observations[idx].covariates));
  }
  double s0 = 0.0;
  double cumulative = 0.0;
  std::vector<std::pair<double, double>> increments;  // (time, d_t / s0)
  size_t i = 0;
  const size_t n = order.size();
  while (i < n) {
    const double time = observations[order[i]].time;
    size_t j = i;
    size_t deaths = 0;
    while (j < n && observations[order[j]].time == time) {
      s0 += weights[order[j]];
      if (observations[order[j]].observed) ++deaths;
      ++j;
    }
    if (deaths > 0) {
      increments.emplace_back(time, static_cast<double>(deaths) / s0);
    }
    i = j;
  }
  // `increments` is in descending time; reverse and accumulate.
  std::reverse(increments.begin(), increments.end());
  for (const auto& [time, inc] : increments) {
    cumulative += inc;
    model.hazard_times_.push_back(time);
    model.cumulative_hazard_.push_back(cumulative);
  }
  return model;
}

double CoxModel::LinearPredictor(const std::vector<double>& covariates) const {
  EVENTHIT_CHECK_EQ(covariates.size(), beta_.size());
  double eta = 0.0;
  for (size_t c = 0; c < beta_.size(); ++c) eta += beta_[c] * covariates[c];
  return eta;
}

double CoxModel::BaselineCumulativeHazard(double time) const {
  // Last hazard time <= `time`.
  const auto it = std::upper_bound(hazard_times_.begin(), hazard_times_.end(),
                                   time);
  if (it == hazard_times_.begin()) return 0.0;
  const size_t idx = static_cast<size_t>(it - hazard_times_.begin()) - 1;
  return cumulative_hazard_[idx];
}

double CoxModel::Survival(double time,
                          const std::vector<double>& covariates) const {
  const double h0 = BaselineCumulativeHazard(time);
  return std::exp(-h0 * std::exp(LinearPredictor(covariates)));
}

double CoxModel::EventProbability(
    double time, const std::vector<double>& covariates) const {
  return 1.0 - Survival(time, covariates);
}

}  // namespace eventhit::survival
