#include "sim/datasets.h"

#include "common/check.h"
#include "common/stats.h"

namespace eventhit::sim {
namespace {

// Builds one event type whose expected occurrence count over `num_frames`
// matches `occurrences` (renewal process: gap + duration per cycle).
EventTypeSpec MakeEvent(const std::string& name, int64_t num_frames,
                        int occurrences, double duration_mean,
                        double duration_std, double lead_mean,
                        double lead_std, double precursor_noise,
                        double weak_prob) {
  EventTypeSpec ev;
  ev.name = name;
  const double cycle = static_cast<double>(num_frames) / occurrences;
  ev.mean_gap = cycle - duration_mean;
  EVENTHIT_CHECK_GT(ev.mean_gap, 0.0);
  ev.duration_mean = duration_mean;
  ev.duration_std = duration_std;
  ev.lead_mean = lead_mean;
  ev.lead_std = lead_std;
  ev.precursor_noise = precursor_noise;
  ev.weak_precursor_prob = weak_prob;
  return ev;
}

DatasetSpec MakeViratSpec() {
  DatasetSpec spec;
  spec.name = "VIRAT";
  spec.num_frames = 500000;
  spec.collection_window = 25;
  spec.horizon = 500;
  const int64_t n = spec.num_frames;
  // Group 1: E1-E4 (short, low-variance) — clean precursors.
  spec.events.push_back(MakeEvent("E1:PersonOpeningVehicle", n, 54, 61.5,
                                  15.4, 485, 45, 0.07, 0.02));
  spec.events.push_back(MakeEvent("E2:PersonClosingVehicle", n, 57, 62.0,
                                  11.9, 485, 45, 0.07, 0.02));
  spec.events.push_back(MakeEvent("E3:PersonUnloadingObject", n, 56, 86.6,
                                  25.0, 485, 50, 0.08, 0.03));
  spec.events.push_back(MakeEvent("E4:PersonGettingIntoVehicle", n, 93, 145.1,
                                  35.1, 485, 50, 0.08, 0.03));
  // Group 2: E5 (huge duration variance), E6 (very long durations).
  spec.events.push_back(MakeEvent("E5:PersonGettingOutOfVehicle", n, 162,
                                  193.7, 158.8, 380, 150, 0.15, 0.15));
  spec.events.push_back(MakeEvent("E6:PersonCarryingObject", n, 165, 571.2,
                                  176.4, 380, 150, 0.16, 0.15));
  return spec;
}

DatasetSpec MakeThumosSpec() {
  DatasetSpec spec;
  spec.name = "THUMOS";
  spec.num_frames = 200000;
  spec.collection_window = 10;
  spec.horizon = 200;
  const int64_t n = spec.num_frames;
  // All three are Group 1 (short, low-variance durations).
  spec.events.push_back(MakeEvent("E7:VolleyballSpiking", n, 80, 99.3, 40.1,
                                  192, 18, 0.07, 0.02));
  spec.events.push_back(
      MakeEvent("E8:Diving", n, 74, 91.2, 35.4, 192, 18, 0.07, 0.02));
  spec.events.push_back(
      MakeEvent("E9:SoccerPenalty", n, 48, 92.8, 25.9, 192, 18, 0.07, 0.02));
  return spec;
}

DatasetSpec MakeBreakfastSpec() {
  DatasetSpec spec;
  spec.name = "Breakfast";
  spec.num_frames = 150000;
  spec.collection_window = 50;
  spec.horizon = 500;
  const int64_t n = spec.num_frames;
  // E10 is Group 1; E11 (duration std > mean) and E12 (long, high-variance)
  // are Group 2.
  spec.events.push_back(
      MakeEvent("E10:CutFruit", n, 132, 114.0, 48.8, 485, 45, 0.08, 0.03));
  spec.events.push_back(MakeEvent("E11:PutFruitToBowl", n, 121, 97.2, 107.5,
                                  360, 140, 0.14, 0.14));
  spec.events.push_back(MakeEvent("E12:PutEggToPlate", n, 95, 240.2, 153.8,
                                  360, 140, 0.15, 0.14));
  // Cooking activities follow a rhythm: gaps are regular rather than
  // memoryless (the structure that makes point-process prediction viable
  // on Breakfast, per the paper's APP-VAE discussion).
  for (EventTypeSpec& ev : spec.events) ev.gap_cv = 0.45;
  return spec;
}

}  // namespace

const char* DatasetName(DatasetId id) {
  switch (id) {
    case DatasetId::kVirat:
      return "VIRAT";
    case DatasetId::kThumos:
      return "THUMOS";
    case DatasetId::kBreakfast:
      return "Breakfast";
  }
  return "UNKNOWN";
}

DatasetSpec MakeDatasetSpec(DatasetId id) {
  switch (id) {
    case DatasetId::kVirat:
      return MakeViratSpec();
    case DatasetId::kThumos:
      return MakeThumosSpec();
    case DatasetId::kBreakfast:
      return MakeBreakfastSpec();
  }
  EVENTHIT_CHECK(false);
  return DatasetSpec{};
}

Result<GlobalEventRef> ResolveGlobalEvent(int global_event_number) {
  if (global_event_number >= 1 && global_event_number <= 6) {
    return GlobalEventRef{DatasetId::kVirat,
                          static_cast<size_t>(global_event_number - 1)};
  }
  if (global_event_number >= 7 && global_event_number <= 9) {
    return GlobalEventRef{DatasetId::kThumos,
                          static_cast<size_t>(global_event_number - 7)};
  }
  if (global_event_number >= 10 && global_event_number <= 12) {
    return GlobalEventRef{DatasetId::kBreakfast,
                          static_cast<size_t>(global_event_number - 10)};
  }
  return InvalidArgumentError("event number out of range [1,12]: " +
                              std::to_string(global_event_number));
}

std::vector<EventStats> ComputeEventStats(const SyntheticVideo& video) {
  std::vector<EventStats> out;
  for (size_t k = 0; k < video.num_event_types(); ++k) {
    EventStats stats;
    stats.name = video.spec().events[k].name;
    std::vector<double> durations;
    for (const Interval& occ : video.timeline().occurrences(k)) {
      durations.push_back(static_cast<double>(occ.length()));
    }
    stats.occurrences = static_cast<int64_t>(durations.size());
    stats.duration_mean = Mean(durations);
    stats.duration_std = SampleStdDev(durations);
    out.push_back(std::move(stats));
  }
  return out;
}

}  // namespace eventhit::sim
