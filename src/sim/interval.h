// Closed integer frame intervals. Used for ground-truth occurrence
// intervals, predicted occurrence intervals, and the REC/SPL metrics.
#ifndef EVENTHIT_SIM_INTERVAL_H_
#define EVENTHIT_SIM_INTERVAL_H_

#include <algorithm>
#include <cstdint>

namespace eventhit::sim {

/// A closed interval of frame indices [start, end]. An interval with
/// start > end is empty; Interval::Empty() is the canonical empty value.
struct Interval {
  int64_t start = 0;
  int64_t end = -1;

  static Interval Empty() { return Interval{0, -1}; }

  bool empty() const { return start > end; }

  /// Number of frames covered (0 when empty).
  int64_t length() const { return empty() ? 0 : end - start + 1; }

  /// True iff frame `t` lies inside.
  bool Contains(int64_t t) const { return !empty() && t >= start && t <= end; }

  /// True iff the two intervals share at least one frame.
  bool Overlaps(const Interval& other) const {
    if (empty() || other.empty()) return false;
    return start <= other.end && other.start <= end;
  }

  friend bool operator==(const Interval& a, const Interval& b) {
    if (a.empty() && b.empty()) return true;
    return a.start == b.start && a.end == b.end;
  }
};

/// The overlap of two intervals (possibly empty).
inline Interval Intersect(const Interval& a, const Interval& b) {
  if (a.empty() || b.empty()) return Interval::Empty();
  const Interval out{std::max(a.start, b.start), std::min(a.end, b.end)};
  return out.empty() ? Interval::Empty() : out;
}

/// |a \ b|: frames of `a` not covered by `b`.
inline int64_t DifferenceLength(const Interval& a, const Interval& b) {
  return a.length() - Intersect(a, b).length();
}

}  // namespace eventhit::sim

#endif  // EVENTHIT_SIM_INTERVAL_H_
