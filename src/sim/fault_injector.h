// Deterministic fault injection at the cloud-service boundary: a seeded
// schedule of transient error bursts, latency spikes and blackout windows
// that the resilient relay (cloud/relay.h) consults before every request
// attempt. Decisions are pure functions of (profile, attempt index, stream
// frame), so a replayed schedule is byte-identical regardless of call
// order or thread count — the chaos-test determinism contract.
#ifndef EVENTHIT_SIM_FAULT_INJECTOR_H_
#define EVENTHIT_SIM_FAULT_INJECTOR_H_

#include <cstdint>
#include <string>

#include "common/status.h"

namespace eventhit::sim {

/// One seeded fault schedule. Error and latency draws are per-attempt
/// Bernoulli trials; blackouts are periodic windows on the stream-frame
/// axis during which every attempt fails regardless of the draws.
struct FaultProfile {
  /// Per-attempt probability of a transient failure (dropped RPC).
  double error_rate = 0.0;
  /// Per-attempt probability of a latency spike on an otherwise
  /// successful attempt.
  double latency_spike_rate = 0.0;
  /// Simulated seconds added to an attempt's latency by a spike.
  double latency_spike_seconds = 0.0;
  /// Blackout windows recur every `blackout_period_frames` stream frames
  /// (0 disables them): frames [offset + k*period, offset + k*period +
  /// length) are dead air.
  int64_t blackout_period_frames = 0;
  int64_t blackout_length_frames = 0;
  int64_t blackout_offset_frames = 0;
  /// Seed of the per-attempt draws. Same seed, same schedule.
  uint64_t seed = 0;

  bool active() const {
    return error_rate > 0.0 || latency_spike_rate > 0.0 ||
           blackout_period_frames > 0;
  }
};

/// Outcome of one injected attempt.
struct FaultDecision {
  bool fail = false;          // Attempt fails with a transient error.
  bool blackout = false;      // Failure came from a blackout window.
  double extra_latency_seconds = 0.0;  // Spike on a surviving attempt.
};

/// Stateless evaluator of a FaultProfile. Thread-safe: Evaluate derives a
/// fresh Rng from (seed, attempt_index) on every call.
class FaultInjector {
 public:
  explicit FaultInjector(const FaultProfile& profile);

  /// Fault decision for global attempt number `attempt_index` issued at
  /// stream frame `now_frame`. Pure function of its arguments and the
  /// profile.
  FaultDecision Evaluate(int64_t attempt_index, int64_t now_frame) const;

  /// True iff `now_frame` falls inside a blackout window.
  bool InBlackout(int64_t now_frame) const;

  /// End frame (exclusive) of the blackout containing `now_frame`, or
  /// `now_frame` itself when not in one — the earliest frame at which a
  /// buffered replay can succeed again.
  int64_t BlackoutEndFrame(int64_t now_frame) const;

  const FaultProfile& profile() const { return profile_; }

 private:
  FaultProfile profile_;
};

/// Named chaos profiles shared by the CLI (`--fault-profile=`) and the
/// committed golden regression schedules: "none", "flaky" (30% transient
/// errors), "latency" (30% spikes of 8 s) and "blackout" (60 s outage
/// every 200 s at 30 FPS). Unknown names are an InvalidArgument error.
Result<FaultProfile> MakeFaultProfile(const std::string& name,
                                      uint64_t seed);

}  // namespace eventhit::sim

#endif  // EVENTHIT_SIM_FAULT_INJECTOR_H_
