#include "sim/event_timeline.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace eventhit::sim {

EventTimeline EventTimeline::Generate(
    const std::vector<OccurrenceProcess>& processes, int64_t num_frames,
    Rng& rng) {
  EVENTHIT_CHECK_GT(num_frames, 0);
  EventTimeline timeline;
  timeline.num_frames_ = num_frames;
  timeline.occurrences_.resize(processes.size());

  for (size_t k = 0; k < processes.size(); ++k) {
    const OccurrenceProcess& proc = processes[k];
    EVENTHIT_CHECK_GT(proc.mean_gap, 0.0);
    EVENTHIT_CHECK_GT(proc.duration_mean, 0.0);
    EVENTHIT_CHECK_GE(proc.duration_std, 0.0);
    Rng stream(rng.Fork(k));
    // Start part-way into the first gap so the stream does not always open
    // with an imminent event.
    int64_t cursor = static_cast<int64_t>(stream.Exponential(proc.mean_gap) * 0.5);
    // Durations are drawn from a lognormal whose moments match the spec's
    // (mean, std). Unlike a clamped normal this has positive support, so
    // high-variance event types (std comparable to the mean, e.g. E11 of
    // Table I) keep their published mean instead of being biased upward by
    // truncation.
    const double m = proc.duration_mean;
    const double s = proc.duration_std;
    const double sigma_sq = std::log(1.0 + (s * s) / (m * m));
    const double mu = std::log(m) - 0.5 * sigma_sq;
    const double sigma = std::sqrt(sigma_sq);
    // Gap distribution: exponential (gap_cv = 0) or moment-matched
    // lognormal with the requested regularity.
    EVENTHIT_CHECK_GE(proc.gap_cv, 0.0);
    const double gap_sigma_sq =
        std::log(1.0 + proc.gap_cv * proc.gap_cv);
    const double gap_mu = std::log(proc.mean_gap) - 0.5 * gap_sigma_sq;
    const double gap_sigma = std::sqrt(gap_sigma_sq);
    auto draw_gap = [&]() {
      return proc.gap_cv > 0.0 ? stream.LogNormal(gap_mu, gap_sigma)
                               : stream.Exponential(proc.mean_gap);
    };
    while (true) {
      const int64_t gap = static_cast<int64_t>(std::llround(draw_gap()));
      int64_t duration =
          static_cast<int64_t>(std::llround(stream.LogNormal(mu, sigma)));
      duration = std::max(duration, proc.min_duration);
      const int64_t start = cursor + gap;
      const int64_t end = start + duration - 1;
      if (end >= num_frames) break;
      timeline.occurrences_[k].push_back(Interval{start, end});
      cursor = end + 1;
    }
  }
  return timeline;
}

EventTimeline EventTimeline::FromIntervals(
    std::vector<std::vector<Interval>> intervals, int64_t num_frames) {
  EventTimeline timeline;
  timeline.num_frames_ = num_frames;
  timeline.occurrences_ = std::move(intervals);
  for (const auto& per_event : timeline.occurrences_) {
    for (size_t i = 0; i < per_event.size(); ++i) {
      EVENTHIT_CHECK(!per_event[i].empty());
      EVENTHIT_CHECK_GE(per_event[i].start, 0);
      EVENTHIT_CHECK_LT(per_event[i].end, num_frames);
      if (i > 0) EVENTHIT_CHECK_GT(per_event[i].start, per_event[i - 1].end);
    }
  }
  return timeline;
}

const std::vector<Interval>& EventTimeline::occurrences(size_t k) const {
  EVENTHIT_CHECK_LT(k, occurrences_.size());
  return occurrences_[k];
}

bool EventTimeline::IsActive(size_t k, int64_t t) const {
  const auto& events = occurrences(k);
  // First interval with start > t; the candidate is its predecessor.
  auto it = std::upper_bound(
      events.begin(), events.end(), t,
      [](int64_t value, const Interval& iv) { return value < iv.start; });
  if (it == events.begin()) return false;
  return std::prev(it)->Contains(t);
}

std::optional<Interval> EventTimeline::FirstOverlapping(
    size_t k, const Interval& window) const {
  if (window.empty()) return std::nullopt;
  const auto& events = occurrences(k);
  // First interval ending at or after window.start.
  auto it = std::lower_bound(
      events.begin(), events.end(), window.start,
      [](const Interval& iv, int64_t value) { return iv.end < value; });
  if (it == events.end() || !it->Overlaps(window)) return std::nullopt;
  return *it;
}

int64_t EventTimeline::TotalActiveFrames(size_t k) const {
  int64_t total = 0;
  for (const Interval& iv : occurrences(k)) total += iv.length();
  return total;
}

}  // namespace eventhit::sim
