// Named deterministic drift scenarios for the recalibration loop
// (src/adapt/): a stationary "before" regime and a shifted "after" regime
// that share event types and feature layout, so the pair can feed
// SyntheticVideo::GenerateWithShift and produce one seeded stream whose
// statistics change at a known frame.
//
// The scenarios mirror the three ways a deployed EventHit model drifts out
// of its conformal guarantees:
//
//   "precursor-shift"   — the advance-warning signature collapses (shorter,
//                         mostly-weak precursors): existence scores for true
//                         positives drop, C-CLASSIFY misses breach.
//   "duration-shift"    — occurrences run ~3x longer with ~3x the variance:
//                         calibrated C-REGRESS residuals stop covering the
//                         true end offsets, endpoint miscoverage breaches.
//   "detector-degrade"  — the simulated lightweight detector gets noisy
//                         (misses, false positives, precursor noise): score
//                         quality erodes across the board.
//
// Naming and error behavior follow sim/fault_injector.h: unknown names are
// an InvalidArgument error.
#ifndef EVENTHIT_SIM_DRIFT_SCENARIO_H_
#define EVENTHIT_SIM_DRIFT_SCENARIO_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "sim/scene_spec.h"

namespace eventhit::sim {

/// A before/after spec pair describing one drift scenario. Both specs use
/// the same (single) event type and channel counts, as required by
/// SyntheticVideo::GenerateWithShift; the shift lands at
/// `before.num_frames`.
struct DriftScenario {
  std::string name;
  DatasetSpec before;
  DatasetSpec after;
};

/// Builds a named drift scenario over a densified single-event THUMOS-like
/// stream (`before_frames` stationary frames, then `after_frames` drifted
/// ones). The densified occurrence process (~700-frame cycles against the
/// H=200 horizon) keeps positives frequent enough that auditor windows fill
/// and recovery rigs converge in tens of thousands of frames rather than
/// millions. Unknown names are an InvalidArgument error.
Result<DriftScenario> MakeDriftScenario(const std::string& name,
                                        int64_t before_frames,
                                        int64_t after_frames);

/// The three scenario names, in a fixed order ("precursor-shift",
/// "duration-shift", "detector-degrade") for CLI help and sweep loops.
std::vector<std::string> DriftScenarioNames();

}  // namespace eventhit::sim

#endif  // EVENTHIT_SIM_DRIFT_SCENARIO_H_
