// Declarative description of a synthetic video-stream dataset: the event
// occurrence processes (parameterised to match Table I of the paper) and the
// feature-synthesis knobs that control how learnable each event is.
#ifndef EVENTHIT_SIM_SCENE_SPEC_H_
#define EVENTHIT_SIM_SCENE_SPEC_H_

#include <cstdint>
#include <string>
#include <vector>

namespace eventhit::sim {

/// One event type: its occurrence statistics plus the precursor signature
/// that makes the event predictable from the frame features.
///
/// The precursor models the causal texture a real detector would see before
/// an event (e.g. a truck growing larger in frame before "truck at gate"):
/// a ramp rising over `lead_mean` frames before each occurrence. Group 2
/// events of the paper (long or high-variance durations) get noisier, less
/// reliable precursors, which reproduces their lower REC / higher SPL.
struct EventTypeSpec {
  std::string name;

  // --- Occurrence process (Table I) ---
  /// Mean gap between occurrences (frames).
  double mean_gap = 2000.0;
  /// Gap regularity (coefficient of variation; 0 = exponential gaps). See
  /// OccurrenceProcess::gap_cv.
  double gap_cv = 0.0;
  double duration_mean = 60.0;
  double duration_std = 15.0;

  // --- Precursor signature ---
  /// Frames of advance warning before an occurrence starts.
  double lead_mean = 300.0;
  double lead_std = 60.0;
  /// Gaussian noise added to the precursor channel per frame.
  double precursor_noise = 0.08;
  /// Fraction of occurrences whose precursor is weak (scaled far down),
  /// creating genuinely hard-to-predict instances.
  double weak_precursor_prob = 0.08;

  // --- Detector-style observables ---
  /// Mean object count reported by the (simulated) lightweight detector
  /// while the event is active / inactive. Consumed by the VQS baseline.
  double object_rate_active = 2.5;
  double object_rate_background = 0.3;
};

/// A full dataset: stream length, default EventHit hyper-parameters for this
/// dataset (the paper uses per-dataset M and H), the event types, and global
/// nuisance parameters.
struct DatasetSpec {
  std::string name;
  int64_t num_frames = 100000;

  /// Default collection-window size M for this dataset.
  int collection_window = 25;
  /// Default time-horizon H for this dataset.
  int horizon = 500;

  std::vector<EventTypeSpec> events;

  /// Channels that ramp like precursors but are uncorrelated with any event
  /// (false-alarm texture).
  int num_distractor_channels = 2;
  /// Pure white-noise channels.
  int num_noise_channels = 2;
  /// Distractor ramps per 10k frames per distractor channel.
  double distractor_rate_per_10k = 4.0;
  /// Probability the simulated detector misses an active-event observation
  /// in a frame (activity channel reads background).
  double detector_miss_prob = 0.08;
  /// Probability of a spurious detection in a background frame.
  double detector_fp_prob = 0.02;

  /// Feature-vector dimensionality D: per event a (precursor, activity)
  /// pair, plus distractor and noise channels.
  size_t FeatureDim() const {
    return events.size() * 2 +
           static_cast<size_t>(num_distractor_channels) +
           static_cast<size_t>(num_noise_channels);
  }

  /// Channel index of event k's precursor / activity channel.
  static size_t PrecursorChannel(size_t k) { return 2 * k; }
  static size_t ActivityChannel(size_t k) { return 2 * k + 1; }
};

}  // namespace eventhit::sim

#endif  // EVENTHIT_SIM_SCENE_SPEC_H_
