#include "sim/synthetic_video.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "common/stats.h"

namespace eventhit::sim {
namespace {

// Smoothstep ramp in [0, 1] for u in [0, 1].
inline float Ramp(double u) {
  u = Clamp(u, 0.0, 1.0);
  return static_cast<float>(u * u * (3.0 - 2.0 * u));
}

// Precursor level sustained while the event is active.
constexpr float kActiveLevel = 0.85f;
// Precursor decays over lead/2 frames after the occurrence ends.
constexpr double kDecayFraction = 0.5;

}  // namespace

SyntheticVideo SyntheticVideo::Generate(const DatasetSpec& spec,
                                        uint64_t seed) {
  EVENTHIT_CHECK(!spec.events.empty());
  EVENTHIT_CHECK_GT(spec.num_frames, 0);

  SyntheticVideo video;
  video.spec_ = spec;
  Rng rng(seed);

  // 1) Ground-truth occurrence timeline.
  std::vector<OccurrenceProcess> processes;
  processes.reserve(spec.events.size());
  for (const EventTypeSpec& ev : spec.events) {
    OccurrenceProcess proc;
    proc.mean_gap = ev.mean_gap;
    proc.gap_cv = ev.gap_cv;
    proc.duration_mean = ev.duration_mean;
    proc.duration_std = ev.duration_std;
    processes.push_back(proc);
  }
  Rng timeline_rng(rng.Fork(1));
  video.timeline_ =
      EventTimeline::Generate(processes, spec.num_frames, timeline_rng);

  const int64_t n = spec.num_frames;
  const size_t d = spec.FeatureDim();
  const size_t k_events = spec.events.size();
  video.features_.assign(static_cast<size_t>(n) * d, 0.0f);
  video.counts_.assign(k_events, std::vector<float>(static_cast<size_t>(n), 0.0f));

  auto feature_at = [&](int64_t t, size_t c) -> float& {
    return video.features_[static_cast<size_t>(t) * d + c];
  };

  // 2) Per-event precursor + activity channels and detector object counts.
  for (size_t k = 0; k < k_events; ++k) {
    const EventTypeSpec& ev = spec.events[k];
    Rng ev_rng(rng.Fork(100 + k));
    const size_t pre_c = DatasetSpec::PrecursorChannel(k);
    const size_t act_c = DatasetSpec::ActivityChannel(k);

    for (const Interval& occ : video.timeline_.occurrences(k)) {
      const double lead =
          std::max(10.0, ev_rng.Gaussian(ev.lead_mean, ev.lead_std));
      const float strength =
          ev_rng.Bernoulli(ev.weak_precursor_prob)
              ? static_cast<float>(ev_rng.Uniform(0.15, 0.45))
              : static_cast<float>(ev_rng.Uniform(0.9, 1.1));
      const int64_t ramp_begin =
          std::max<int64_t>(0, occ.start - static_cast<int64_t>(lead));
      const int64_t decay_len =
          std::max<int64_t>(1, static_cast<int64_t>(lead * kDecayFraction));
      const int64_t decay_end = std::min(n - 1, occ.end + decay_len);

      for (int64_t t = ramp_begin; t <= decay_end; ++t) {
        float level;
        if (t < occ.start) {
          level = Ramp(static_cast<double>(t - ramp_begin) / lead);
        } else if (t <= occ.end) {
          level = kActiveLevel;
        } else {
          level = kActiveLevel *
                  (1.0f - static_cast<float>(t - occ.end) / decay_len);
        }
        float& cell = feature_at(t, pre_c);
        cell = std::max(cell, strength * level);
      }
    }

    // Activity channel + object counts, frame by frame.
    for (int64_t t = 0; t < n; ++t) {
      const bool active = video.timeline_.IsActive(k, t);
      float activity;
      double count;
      if (active && !ev_rng.Bernoulli(spec.detector_miss_prob)) {
        activity = static_cast<float>(0.8 + ev_rng.Gaussian(0.0, 0.06));
        count = static_cast<double>(ev_rng.Poisson(ev.object_rate_active));
      } else if (!active && ev_rng.Bernoulli(spec.detector_fp_prob)) {
        activity = static_cast<float>(0.5 + ev_rng.Gaussian(0.0, 0.08));
        count = static_cast<double>(ev_rng.Poisson(ev.object_rate_active * 0.6));
      } else {
        activity = static_cast<float>(
            std::max(0.0, 0.05 + ev_rng.Gaussian(0.0, 0.03)));
        count = static_cast<double>(ev_rng.Poisson(ev.object_rate_background));
      }
      feature_at(t, act_c) = activity;
      video.counts_[k][static_cast<size_t>(t)] = static_cast<float>(count);
    }

    // Precursor observation noise.
    for (int64_t t = 0; t < n; ++t) {
      float& cell = feature_at(t, pre_c);
      cell = static_cast<float>(
          Clamp(cell + ev_rng.Gaussian(0.0, ev.precursor_noise), 0.0, 1.5));
    }
  }

  // 3) Distractor channels: precursor-like ramps uncorrelated with events.
  for (int c = 0; c < spec.num_distractor_channels; ++c) {
    Rng dist_rng(rng.Fork(1000 + c));
    const size_t channel = 2 * k_events + static_cast<size_t>(c);
    const double rate = spec.distractor_rate_per_10k / 10000.0;
    int64_t t = 0;
    while (t < n) {
      const int64_t gap =
          static_cast<int64_t>(std::llround(dist_rng.Exponential(1.0 / rate)));
      const int64_t start = t + std::max<int64_t>(gap, 1);
      if (start >= n) break;
      const int64_t width =
          static_cast<int64_t>(dist_rng.Uniform(80.0, 400.0));
      const int64_t end = std::min(n - 1, start + width);
      for (int64_t u = start; u <= end; ++u) {
        const double phase = static_cast<double>(u - start) / width;
        const float level = Ramp(phase < 0.5 ? phase * 2.0 : (1.0 - phase) * 2.0);
        feature_at(u, channel) = std::max(feature_at(u, channel), 0.9f * level);
      }
      t = end + 1;
    }
    for (int64_t u = 0; u < n; ++u) {
      float& cell = feature_at(u, channel);
      cell = static_cast<float>(Clamp(cell + dist_rng.Gaussian(0.0, 0.05), 0.0, 1.5));
    }
  }

  // 4) Pure noise channels.
  for (int c = 0; c < spec.num_noise_channels; ++c) {
    Rng noise_rng(rng.Fork(2000 + c));
    const size_t channel =
        2 * k_events + static_cast<size_t>(spec.num_distractor_channels + c);
    for (int64_t t = 0; t < n; ++t) {
      feature_at(t, channel) =
          static_cast<float>(Clamp(0.3 + noise_rng.Gaussian(0.0, 0.15), 0.0, 1.0));
    }
  }

  video.shift_frame_ = n;

  // 5) Merged action-unit annotation stream.
  for (size_t k = 0; k < k_events; ++k) {
    for (const Interval& occ : video.timeline_.occurrences(k)) {
      video.action_units_.push_back(ActionUnit{k, occ});
    }
  }
  std::sort(video.action_units_.begin(), video.action_units_.end(),
            [](const ActionUnit& a, const ActionUnit& b) {
              return a.interval.start < b.interval.start;
            });

  return video;
}

SyntheticVideo SyntheticVideo::GenerateWithShift(const DatasetSpec& before,
                                                 const DatasetSpec& after,
                                                 uint64_t seed) {
  EVENTHIT_CHECK_EQ(before.events.size(), after.events.size());
  EVENTHIT_CHECK_EQ(before.FeatureDim(), after.FeatureDim());
  SyntheticVideo a = Generate(before, seed);
  const SyntheticVideo b = Generate(after, seed ^ 0xD1B54A32D192ED03ULL);
  const int64_t offset = a.num_frames();

  // Concatenate features and detector counts.
  a.features_.insert(a.features_.end(), b.features_.begin(),
                     b.features_.end());
  for (size_t k = 0; k < a.counts_.size(); ++k) {
    a.counts_[k].insert(a.counts_[k].end(), b.counts_[k].begin(),
                        b.counts_[k].end());
  }

  // Merge ground-truth timelines with the second stream offset.
  std::vector<std::vector<Interval>> merged(a.num_event_types());
  for (size_t k = 0; k < a.num_event_types(); ++k) {
    merged[k] = a.timeline_.occurrences(k);
    for (const Interval& occ : b.timeline_.occurrences(k)) {
      merged[k].push_back(Interval{occ.start + offset, occ.end + offset});
    }
  }
  const int64_t total = offset + b.num_frames();
  a.timeline_ = EventTimeline::FromIntervals(std::move(merged), total);

  for (const ActionUnit& unit : b.action_units_) {
    a.action_units_.push_back(ActionUnit{
        unit.event_type, Interval{unit.interval.start + offset,
                                  unit.interval.end + offset}});
  }
  a.shift_frame_ = offset;
  a.spec_.num_frames = total;
  return a;
}

SyntheticVideo SyntheticVideo::FromParts(
    DatasetSpec spec, EventTimeline timeline, std::vector<float> features,
    std::vector<std::vector<float>> counts, int64_t shift_frame) {
  EVENTHIT_CHECK_EQ(timeline.num_frames(), spec.num_frames);
  EVENTHIT_CHECK_EQ(timeline.num_event_types(), spec.events.size());
  EVENTHIT_CHECK_EQ(features.size(),
                    static_cast<size_t>(spec.num_frames) * spec.FeatureDim());
  EVENTHIT_CHECK_EQ(counts.size(), spec.events.size());
  for (const auto& series : counts) {
    EVENTHIT_CHECK_EQ(series.size(), static_cast<size_t>(spec.num_frames));
  }
  EVENTHIT_CHECK_GT(shift_frame, 0);
  EVENTHIT_CHECK_LE(shift_frame, spec.num_frames);

  SyntheticVideo video;
  video.spec_ = std::move(spec);
  video.timeline_ = std::move(timeline);
  video.features_ = std::move(features);
  video.counts_ = std::move(counts);
  video.shift_frame_ = shift_frame;
  for (size_t k = 0; k < video.num_event_types(); ++k) {
    for (const Interval& occ : video.timeline_.occurrences(k)) {
      video.action_units_.push_back(ActionUnit{k, occ});
    }
  }
  std::sort(video.action_units_.begin(), video.action_units_.end(),
            [](const ActionUnit& a, const ActionUnit& b) {
              return a.interval.start < b.interval.start;
            });
  return video;
}

const float* SyntheticVideo::FrameFeatures(int64_t t) const {
  EVENTHIT_CHECK_GE(t, 0);
  EVENTHIT_CHECK_LT(t, num_frames());
  return features_.data() + static_cast<size_t>(t) * feature_dim();
}

double SyntheticVideo::ObjectCount(size_t k, int64_t t) const {
  EVENTHIT_CHECK_LT(k, counts_.size());
  EVENTHIT_CHECK_GE(t, 0);
  EVENTHIT_CHECK_LT(t, num_frames());
  return counts_[k][static_cast<size_t>(t)];
}

}  // namespace eventhit::sim
