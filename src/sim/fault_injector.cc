#include "sim/fault_injector.h"

#include "common/check.h"
#include "common/rng.h"

namespace eventhit::sim {

namespace {

// Domain-separation constant decorrelating fault draws from every other
// SplitSeed consumer sharing the base seed.
constexpr uint64_t kFaultStream = 0xFA17'1D3C'70F5'11D0ull;

}  // namespace

FaultInjector::FaultInjector(const FaultProfile& profile)
    : profile_(profile) {
  EVENTHIT_CHECK_GE(profile_.error_rate, 0.0);
  EVENTHIT_CHECK_LE(profile_.error_rate, 1.0);
  EVENTHIT_CHECK_GE(profile_.latency_spike_rate, 0.0);
  EVENTHIT_CHECK_LE(profile_.latency_spike_rate, 1.0);
  EVENTHIT_CHECK_GE(profile_.latency_spike_seconds, 0.0);
  EVENTHIT_CHECK_GE(profile_.blackout_period_frames, 0);
  EVENTHIT_CHECK_GE(profile_.blackout_length_frames, 0);
  EVENTHIT_CHECK_GE(profile_.blackout_offset_frames, 0);
  if (profile_.blackout_period_frames > 0) {
    EVENTHIT_CHECK_LE(profile_.blackout_length_frames,
                      profile_.blackout_period_frames);
  }
}

bool FaultInjector::InBlackout(int64_t now_frame) const {
  if (profile_.blackout_period_frames <= 0 ||
      profile_.blackout_length_frames <= 0) {
    return false;
  }
  const int64_t shifted = now_frame - profile_.blackout_offset_frames;
  if (shifted < 0) return false;
  return shifted % profile_.blackout_period_frames <
         profile_.blackout_length_frames;
}

int64_t FaultInjector::BlackoutEndFrame(int64_t now_frame) const {
  if (!InBlackout(now_frame)) return now_frame;
  const int64_t shifted = now_frame - profile_.blackout_offset_frames;
  const int64_t window_start =
      shifted - shifted % profile_.blackout_period_frames;
  return profile_.blackout_offset_frames + window_start +
         profile_.blackout_length_frames;
}

FaultDecision FaultInjector::Evaluate(int64_t attempt_index,
                                      int64_t now_frame) const {
  FaultDecision decision;
  if (InBlackout(now_frame)) {
    decision.fail = true;
    decision.blackout = true;
    return decision;
  }
  if (profile_.error_rate <= 0.0 && profile_.latency_spike_rate <= 0.0) {
    return decision;
  }
  Rng rng(SplitSeed(profile_.seed ^ kFaultStream,
                    static_cast<uint64_t>(attempt_index)));
  if (profile_.error_rate > 0.0 && rng.Bernoulli(profile_.error_rate)) {
    decision.fail = true;
    return decision;
  }
  if (profile_.latency_spike_rate > 0.0 &&
      rng.Bernoulli(profile_.latency_spike_rate)) {
    decision.extra_latency_seconds = profile_.latency_spike_seconds;
  }
  return decision;
}

Result<FaultProfile> MakeFaultProfile(const std::string& name,
                                      uint64_t seed) {
  FaultProfile profile;
  profile.seed = seed;
  if (name == "none" || name.empty()) return profile;
  if (name == "flaky") {
    profile.error_rate = 0.3;
    return profile;
  }
  if (name == "latency") {
    profile.latency_spike_rate = 0.3;
    profile.latency_spike_seconds = 8.0;
    return profile;
  }
  if (name == "blackout") {
    // 60 s of dead air every 200 s at the 30 FPS stream rate.
    profile.blackout_period_frames = 6000;
    profile.blackout_length_frames = 1800;
    profile.blackout_offset_frames = 900;
    return profile;
  }
  return InvalidArgumentError(
      "unknown fault profile: " + name +
      " (expected none|flaky|latency|blackout)");
}

}  // namespace eventhit::sim
