// The three benchmark datasets of the paper, reproduced as synthetic
// streams whose event statistics match Table I:
//
//   VIRAT-like    — 6 surveillance events E1..E6, M=25, H=500
//   THUMOS-like   — 3 sports actions     E7..E9, M=10, H=200
//   Breakfast-like— 3 cooking actions    E10..E12, M=50, H=500
//
// Group 1 events (short, low-variance durations: E1-E4, E7-E10) get clean
// precursors; Group 2 events (E5, E6, E11, E12: long or high-variance
// durations) get noisier, less reliable ones — reproducing the paper's
// Group 1 vs Group 2 accuracy split.
#ifndef EVENTHIT_SIM_DATASETS_H_
#define EVENTHIT_SIM_DATASETS_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "sim/scene_spec.h"
#include "sim/synthetic_video.h"

namespace eventhit::sim {

/// Identifier of a built-in dataset.
enum class DatasetId {
  kVirat,
  kThumos,
  kBreakfast,
};

/// Human-readable name ("VIRAT", "THUMOS", "Breakfast").
const char* DatasetName(DatasetId id);

/// Spec parameterised to match Table I for the given dataset.
DatasetSpec MakeDatasetSpec(DatasetId id);

/// Global index (1-based, E1..E12 as in Table I) -> (dataset, local index).
struct GlobalEventRef {
  DatasetId dataset;
  size_t local_index;
};
Result<GlobalEventRef> ResolveGlobalEvent(int global_event_number);

/// Measured occurrence statistics of a generated stream, for reproducing
/// Table I.
struct EventStats {
  std::string name;
  int64_t occurrences = 0;
  double duration_mean = 0.0;
  double duration_std = 0.0;
};
std::vector<EventStats> ComputeEventStats(const SyntheticVideo& video);

}  // namespace eventhit::sim

#endif  // EVENTHIT_SIM_DATASETS_H_
