// Generated synthetic video stream: ground-truth event timeline plus the
// per-frame feature vectors a lightweight detector pipeline would produce.
#ifndef EVENTHIT_SIM_SYNTHETIC_VIDEO_H_
#define EVENTHIT_SIM_SYNTHETIC_VIDEO_H_

#include <cstdint>
#include <vector>

#include "sim/event_timeline.h"
#include "sim/interval.h"
#include "sim/scene_spec.h"

namespace eventhit::sim {

/// One annotated action unit: event type + occurrence interval. The merged,
/// time-sorted action-unit stream feeds the APP-VAE baseline.
struct ActionUnit {
  size_t event_type;
  Interval interval;
};

/// Immutable generated stream. Frame features are stored row-major
/// (num_frames x feature_dim).
class SyntheticVideo {
 public:
  /// Generates the full stream for `spec` deterministically from `seed`.
  static SyntheticVideo Generate(const DatasetSpec& spec, uint64_t seed);

  /// Generates a stream whose occurrence distribution *shifts*: the first
  /// `before.num_frames` frames follow `before`, the rest follow `after`
  /// (same event types and feature layout required). Used to exercise the
  /// drift-detection extension (§VIII future work): a model trained on the
  /// `before` regime degrades after the shift point.
  static SyntheticVideo GenerateWithShift(const DatasetSpec& before,
                                          const DatasetSpec& after,
                                          uint64_t seed);

  /// Frame index where the `after` regime begins (num_frames() for
  /// unshifted streams).
  int64_t shift_frame() const { return shift_frame_; }

  /// Reassembles a stream from its parts (deserialization, external feature
  /// imports). `features` is row-major num_frames x spec.FeatureDim();
  /// `counts` holds one series of num_frames detector counts per event
  /// type. The action-unit annotation stream is rebuilt from the timeline.
  static SyntheticVideo FromParts(DatasetSpec spec, EventTimeline timeline,
                                  std::vector<float> features,
                                  std::vector<std::vector<float>> counts,
                                  int64_t shift_frame);

  const DatasetSpec& spec() const { return spec_; }
  const EventTimeline& timeline() const { return timeline_; }

  int64_t num_frames() const { return timeline_.num_frames(); }
  size_t feature_dim() const { return spec_.FeatureDim(); }
  size_t num_event_types() const { return spec_.events.size(); }

  /// Pointer to the D features of frame `t`.
  const float* FrameFeatures(int64_t t) const;

  /// Simulated detector object count for event `k`'s target classes at
  /// frame `t` (used by the VQS baseline).
  double ObjectCount(size_t k, int64_t t) const;

  /// All action units across event types, sorted by start frame.
  const std::vector<ActionUnit>& action_units() const { return action_units_; }

 private:
  DatasetSpec spec_;
  EventTimeline timeline_;
  std::vector<float> features_;            // num_frames x D
  std::vector<std::vector<float>> counts_;  // per event type, num_frames
  std::vector<ActionUnit> action_units_;
  int64_t shift_frame_ = 0;  // Set by Generate/GenerateWithShift.
};

}  // namespace eventhit::sim

#endif  // EVENTHIT_SIM_SYNTHETIC_VIDEO_H_
