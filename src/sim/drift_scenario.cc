#include "sim/drift_scenario.h"

#include "common/check.h"
#include "sim/datasets.h"

namespace eventhit::sim {
namespace {

// Stationary base regime: THUMOS E7 alone, densified so a ~700-frame cycle
// (mean_gap + duration) meets the H=200 horizon — roughly 40% of anchors
// see the event inside their horizon, so 256-sample audit windows fill in
// a few thousand frames.
DatasetSpec RecoveryBaseSpec(int64_t num_frames) {
  DatasetSpec spec = MakeDatasetSpec(DatasetId::kThumos);
  EVENTHIT_CHECK_GE(spec.events.size(), 1u);
  spec.name = "THUMOS-drift";
  spec.num_frames = num_frames;
  spec.events.resize(1);  // E7:VolleyballSpiking only
  spec.events[0].mean_gap = 600.0;
  return spec;
}

}  // namespace

Result<DriftScenario> MakeDriftScenario(const std::string& name,
                                        int64_t before_frames,
                                        int64_t after_frames) {
  EVENTHIT_CHECK_GT(before_frames, 0);
  EVENTHIT_CHECK_GT(after_frames, 0);
  DriftScenario scenario;
  scenario.name = name;
  scenario.before = RecoveryBaseSpec(before_frames);
  scenario.after = RecoveryBaseSpec(after_frames);
  EventTypeSpec& ev = scenario.after.events[0];
  if (name == "precursor-shift") {
    // Advance warning collapses: precursors fire late, briefly, and mostly
    // weak. Existence scores for true positives fall off a cliff while the
    // occurrence process itself is unchanged.
    ev.lead_mean = 25.0;
    ev.lead_std = 5.0;
    ev.weak_precursor_prob = 0.95;
  } else if (name == "duration-shift") {
    // Occurrences run ~3x longer with ~3x the spread. Existence prediction
    // keeps working (precursors unchanged) but the calibrated C-REGRESS
    // residuals no longer cover the true end offsets.
    ev.duration_mean = 300.0;
    ev.duration_std = 120.0;
  } else if (name == "detector-degrade") {
    // The simulated lightweight detector erodes: every precursor now
    // comes through at weak strength (amplitude collapse — the timing
    // stays intact, unlike precursor-shift) under a raised channel noise
    // floor, with extra missed detections and spurious activations on the
    // activity channel.
    ev.weak_precursor_prob = 1.0;
    ev.precursor_noise = 0.15;
    scenario.after.detector_miss_prob = 0.3;
    scenario.after.detector_fp_prob = 0.05;
  } else {
    return InvalidArgumentError("unknown drift scenario: " + name +
                                " (want precursor-shift, duration-shift or "
                                "detector-degrade)");
  }
  return scenario;
}

std::vector<std::string> DriftScenarioNames() {
  return {"precursor-shift", "duration-shift", "detector-degrade"};
}

}  // namespace eventhit::sim
