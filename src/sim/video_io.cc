#include "sim/video_io.h"

#include <cstdint>
#include <cstdio>
#include <memory>

namespace eventhit::sim {
namespace {

constexpr uint32_t kMagic = 0x45565653;  // "EVVS"
constexpr uint32_t kVersion = 1;

struct FileCloser {
  void operator()(std::FILE* f) const {
    if (f != nullptr) std::fclose(f);
  }
};
using FilePtr = std::unique_ptr<std::FILE, FileCloser>;

bool WriteBytes(std::FILE* f, const void* data, size_t size) {
  return std::fwrite(data, 1, size, f) == size;
}

bool ReadBytes(std::FILE* f, void* data, size_t size) {
  return std::fread(data, 1, size, f) == size;
}

template <typename T>
bool WriteScalar(std::FILE* f, T value) {
  return WriteBytes(f, &value, sizeof(value));
}

template <typename T>
bool ReadScalar(std::FILE* f, T* value) {
  return ReadBytes(f, value, sizeof(*value));
}

bool WriteString(std::FILE* f, const std::string& s) {
  return WriteScalar(f, static_cast<uint32_t>(s.size())) &&
         WriteBytes(f, s.data(), s.size());
}

bool ReadString(std::FILE* f, std::string* s) {
  uint32_t size = 0;
  if (!ReadScalar(f, &size)) return false;
  if (size > (1u << 20)) return false;  // Corrupt-length guard.
  s->assign(size, '\0');
  return ReadBytes(f, s->data(), size);
}

}  // namespace

Status SaveVideo(const SyntheticVideo& video, const std::string& path) {
  FilePtr file(std::fopen(path.c_str(), "wb"));
  if (file == nullptr) {
    return InvalidArgumentError("cannot open for writing: " + path);
  }
  std::FILE* f = file.get();
  const DatasetSpec& spec = video.spec();

  bool ok = WriteScalar(f, kMagic) && WriteScalar(f, kVersion) &&
            WriteString(f, spec.name) &&
            WriteScalar<int64_t>(f, spec.num_frames) &&
            WriteScalar<int32_t>(f, spec.collection_window) &&
            WriteScalar<int32_t>(f, spec.horizon) &&
            WriteScalar<int32_t>(f, spec.num_distractor_channels) &&
            WriteScalar<int32_t>(f, spec.num_noise_channels) &&
            WriteScalar<int64_t>(f, video.shift_frame()) &&
            WriteScalar<uint32_t>(f,
                                  static_cast<uint32_t>(spec.events.size()));
  if (!ok) return InternalError("short write (header): " + path);

  for (const EventTypeSpec& ev : spec.events) {
    if (!WriteString(f, ev.name) || !WriteScalar(f, ev.mean_gap) ||
        !WriteScalar(f, ev.gap_cv) || !WriteScalar(f, ev.duration_mean) ||
        !WriteScalar(f, ev.duration_std)) {
      return InternalError("short write (event spec): " + path);
    }
  }

  // Timeline.
  for (size_t k = 0; k < spec.events.size(); ++k) {
    const auto& occurrences = video.timeline().occurrences(k);
    if (!WriteScalar<uint64_t>(f, occurrences.size())) {
      return InternalError("short write (timeline size): " + path);
    }
    for (const Interval& occ : occurrences) {
      if (!WriteScalar<int64_t>(f, occ.start) ||
          !WriteScalar<int64_t>(f, occ.end)) {
        return InternalError("short write (timeline): " + path);
      }
    }
  }

  // Features + counts.
  const size_t d = spec.FeatureDim();
  for (int64_t t = 0; t < spec.num_frames; ++t) {
    if (!WriteBytes(f, video.FrameFeatures(t), d * sizeof(float))) {
      return InternalError("short write (features): " + path);
    }
  }
  for (size_t k = 0; k < spec.events.size(); ++k) {
    for (int64_t t = 0; t < spec.num_frames; ++t) {
      const auto count = static_cast<float>(video.ObjectCount(k, t));
      if (!WriteScalar(f, count)) {
        return InternalError("short write (counts): " + path);
      }
    }
  }
  return OkStatus();
}

Result<SyntheticVideo> LoadVideo(const std::string& path) {
  FilePtr file(std::fopen(path.c_str(), "rb"));
  if (file == nullptr) {
    return NotFoundError("cannot open for reading: " + path);
  }
  std::FILE* f = file.get();

  uint32_t magic = 0, version = 0;
  if (!ReadScalar(f, &magic) || !ReadScalar(f, &version)) {
    return InvalidArgumentError("truncated header: " + path);
  }
  if (magic != kMagic) return InvalidArgumentError("bad magic: " + path);
  if (version != kVersion) {
    return InvalidArgumentError("unsupported version: " + path);
  }

  DatasetSpec spec;
  int32_t collection_window = 0, horizon = 0, distractors = 0, noise = 0;
  int64_t shift_frame = 0;
  uint32_t num_events = 0;
  if (!ReadString(f, &spec.name) || !ReadScalar(f, &spec.num_frames) ||
      !ReadScalar(f, &collection_window) || !ReadScalar(f, &horizon) ||
      !ReadScalar(f, &distractors) || !ReadScalar(f, &noise) ||
      !ReadScalar(f, &shift_frame) || !ReadScalar(f, &num_events)) {
    return InvalidArgumentError("truncated spec: " + path);
  }
  if (spec.num_frames <= 0 || num_events == 0 || num_events > 1024) {
    return InvalidArgumentError("implausible spec values: " + path);
  }
  spec.collection_window = collection_window;
  spec.horizon = horizon;
  spec.num_distractor_channels = distractors;
  spec.num_noise_channels = noise;

  for (uint32_t k = 0; k < num_events; ++k) {
    EventTypeSpec ev;
    if (!ReadString(f, &ev.name) || !ReadScalar(f, &ev.mean_gap) ||
        !ReadScalar(f, &ev.gap_cv) || !ReadScalar(f, &ev.duration_mean) ||
        !ReadScalar(f, &ev.duration_std)) {
      return InvalidArgumentError("truncated event spec: " + path);
    }
    spec.events.push_back(std::move(ev));
  }

  std::vector<std::vector<Interval>> intervals(num_events);
  for (uint32_t k = 0; k < num_events; ++k) {
    uint64_t count = 0;
    if (!ReadScalar(f, &count) ||
        count > static_cast<uint64_t>(spec.num_frames)) {
      return InvalidArgumentError("truncated timeline: " + path);
    }
    intervals[k].reserve(count);
    for (uint64_t i = 0; i < count; ++i) {
      Interval occ;
      if (!ReadScalar(f, &occ.start) || !ReadScalar(f, &occ.end)) {
        return InvalidArgumentError("truncated timeline entry: " + path);
      }
      intervals[k].push_back(occ);
    }
  }

  const size_t d = spec.FeatureDim();
  std::vector<float> features(static_cast<size_t>(spec.num_frames) * d);
  if (!ReadBytes(f, features.data(), features.size() * sizeof(float))) {
    return InvalidArgumentError("truncated features: " + path);
  }
  std::vector<std::vector<float>> counts(
      num_events, std::vector<float>(static_cast<size_t>(spec.num_frames)));
  for (auto& series : counts) {
    if (!ReadBytes(f, series.data(), series.size() * sizeof(float))) {
      return InvalidArgumentError("truncated counts: " + path);
    }
  }

  EventTimeline timeline =
      EventTimeline::FromIntervals(std::move(intervals), spec.num_frames);
  return SyntheticVideo::FromParts(std::move(spec), std::move(timeline),
                                   std::move(features), std::move(counts),
                                   shift_frame);
}

}  // namespace eventhit::sim
