// Binary persistence of generated streams, so expensive dataset generation
// can be done once and shared across experiment runs (and so external
// feature streams in the same layout can be imported).
//
// Format (little-endian): magic "EVVS", version, the DatasetSpec fields
// needed to reconstruct accessors (frame count, event names and channel
// layout), the ground-truth timeline, features, and detector counts.
#ifndef EVENTHIT_SIM_VIDEO_IO_H_
#define EVENTHIT_SIM_VIDEO_IO_H_

#include <string>

#include "common/status.h"
#include "sim/synthetic_video.h"

namespace eventhit::sim {

/// Writes `video` to `path` (overwrites).
Status SaveVideo(const SyntheticVideo& video, const std::string& path);

/// Loads a stream previously written by SaveVideo.
Result<SyntheticVideo> LoadVideo(const std::string& path);

}  // namespace eventhit::sim

#endif  // EVENTHIT_SIM_VIDEO_IO_H_
