// Quickstart: train EventHit on one prediction task, calibrate the
// conformal wrappers, and compare the four EventHit variants against the
// OPT/BF anchors — the whole public API in ~100 lines.
//
// Usage: quickstart [task] [seed]     (default: TA10 42)

#include <cstdlib>
#include <iostream>

#include "baselines/oracle.h"
#include "common/table_printer.h"
#include "core/strategies.h"
#include "data/tasks.h"
#include "eval/curves.h"
#include "eval/runner.h"

namespace {

using ::eventhit::Fmt;
using ::eventhit::TablePrinter;

}  // namespace

int main(int argc, char** argv) {
  const std::string task_name = argc > 1 ? argv[1] : "TA10";
  const uint64_t seed = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 42;

  // 1) Pick a task from Table II.
  const auto task_result = eventhit::data::FindTask(task_name);
  if (!task_result.ok()) {
    std::cerr << task_result.status() << "\n";
    return 1;
  }
  const eventhit::data::Task task = task_result.value();

  // 2) Build the synthetic environment: stream + train/calib/test records.
  eventhit::eval::RunnerConfig config;
  config.seed = seed;
  std::cout << "Building environment for " << task.name << " on "
            << eventhit::sim::DatasetName(task.dataset) << "...\n";
  const auto env = eventhit::eval::TaskEnvironment::Build(task, config);
  std::cout << "  stream: " << env.video().num_frames() << " frames, D="
            << env.video().feature_dim() << ", M=" << env.collection_window()
            << ", H=" << env.horizon() << "\n";

  // 3) Train EventHit and calibrate C-CLASSIFY / C-REGRESS.
  std::cout << "Training EventHit ("
            << config.train_records << " records)...\n";
  const auto trained = eventhit::eval::TrainEventHit(env, config);
  std::cout << "  parameters: " << trained.model->ParameterCount()
            << ", final loss: "
            << Fmt(trained.history.back().total_loss, 4) << "\n";

  // 4) Evaluate the four EventHit variants plus the anchors.
  TablePrinter table({"Strategy", "REC", "SPL", "REC_c", "PRE_c", "REC_r"});
  auto add_row = [&](const std::string& name,
                     const eventhit::eval::Metrics& m) {
    table.AddRow({name, Fmt(m.rec), Fmt(m.spl), Fmt(m.rec_c), Fmt(m.pre_c),
                  Fmt(m.rec_r)});
  };

  using Options = eventhit::core::EventHitStrategyOptions;
  const double kConfidence = 0.9;
  const double kCoverage = 0.5;
  for (const bool use_cc : {false, true}) {
    for (const bool use_cr : {false, true}) {
      Options options;
      options.use_cclassify = use_cc;
      options.use_cregress = use_cr;
      options.confidence = kConfidence;
      options.coverage = kCoverage;
      eventhit::core::EventHitStrategy strategy(
          trained.model.get(), trained.cclassify.get(),
          trained.cregress.get(), options);
      add_row(strategy.name(),
              eventhit::eval::EvaluateFromScores(strategy,
                                                 trained.test_scores,
                                                 env.test_records(),
                                                 env.horizon()));
    }
  }

  const eventhit::baselines::OptStrategy opt;
  add_row("OPT", eventhit::eval::EvaluateStrategy(opt, env.test_records(),
                                                  env.horizon()));
  const eventhit::baselines::BfStrategy bf(env.horizon());
  add_row("BF", eventhit::eval::EvaluateStrategy(bf, env.test_records(),
                                                 env.horizon()));

  std::cout << "\nTest-set performance (c=" << kConfidence
            << ", alpha=" << kCoverage << "):\n";
  table.Print(std::cout);

  // 5) Show the tunable trade-off: EHCR recall as the confidence rises.
  std::cout << "\nEHCR trade-off (alpha=0.5):\n";
  TablePrinter sweep({"c", "REC", "SPL"});
  for (double c : {0.5, 0.7, 0.9, 0.97}) {
    const auto points = eventhit::eval::SweepJoint(
        trained, env, {c}, {kCoverage});
    sweep.AddRow({Fmt(c, 2), Fmt(points[0].metrics.rec),
                  Fmt(points[0].metrics.spl)});
  }
  sweep.Print(std::cout);
  return 0;
}
