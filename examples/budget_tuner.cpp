// Budget-constrained operation: given a monthly cloud budget, pick the
// conformal knobs (c, alpha) that maximise recall while the projected bill
// stays within budget — the cost/accuracy dial the paper's conclusions
// advertise, driven from the public API.
//
// Usage: budget_tuner [task] [budget_usd_per_million_frames] [seed]
//        (defaults: TA10 60.0 11)

#include <cstdlib>
#include <iostream>

#include "common/table_printer.h"
#include "eval/curves.h"
#include "eval/runner.h"

namespace {

using ::eventhit::Fmt;
using ::eventhit::TablePrinter;
namespace eval = ::eventhit::eval;

constexpr double kPricePerFrame = 0.001;  // Amazon Rekognition.

}  // namespace

int main(int argc, char** argv) {
  const std::string task_name = argc > 1 ? argv[1] : "TA10";
  const double budget = argc > 2 ? std::strtod(argv[2], nullptr) : 60.0;
  const uint64_t seed = argc > 3 ? std::strtoull(argv[3], nullptr, 10) : 11;

  const auto task_result = eventhit::data::FindTask(task_name);
  if (!task_result.ok()) {
    std::cerr << task_result.status() << "\n";
    return 1;
  }
  eval::RunnerConfig config;
  config.seed = seed;
  std::cout << "Training EventHit on " << task_name << "...\n";
  const auto env = eval::TaskEnvironment::Build(task_result.value(), config);
  const auto trained = eval::TrainEventHit(env, config);

  // Project cost per million stream frames from the test records: each
  // record stands for one horizon of H frames; relayed frames scale with
  // the same factor.
  const double horizon_frames =
      static_cast<double>(env.test_records().size()) * env.horizon();
  auto projected_cost = [&](const eval::Metrics& metrics) {
    const double relayed_fraction =
        static_cast<double>(metrics.relayed_frames) / horizon_frames;
    return relayed_fraction * 1e6 * kPricePerFrame;
  };

  std::cout << "Sweeping the (c, alpha) grid...\n\n";
  const auto points =
      eval::SweepJoint(trained, env, eval::LinearGrid(0.05, 1.0, 12),
                       eval::LinearGrid(0.05, 0.95, 8));

  const eval::CurvePoint* best = nullptr;
  for (const auto& point : points) {
    if (projected_cost(point.metrics) > budget) continue;
    if (best == nullptr || point.metrics.rec > best->metrics.rec) {
      best = &point;
    }
  }

  TablePrinter table({"Setting", "Value"});
  table.AddRow({"Budget per 1M stream frames", "$" + Fmt(budget, 2)});
  table.AddRow({"Brute-force cost per 1M frames",
                "$" + Fmt(1e6 * kPricePerFrame, 2)});
  if (best == nullptr) {
    table.Print(std::cout);
    std::cout << "No operating point fits the budget — even the most "
                 "selective knobs relay too much. Raise the budget.\n";
    return 0;
  }
  table.AddRow({"Chosen confidence c", Fmt(best->confidence, 2)});
  table.AddRow({"Chosen coverage alpha", Fmt(best->coverage, 2)});
  table.AddRow({"Achieved frame recall REC", Fmt(best->metrics.rec)});
  table.AddRow({"Achieved existence recall REC_c",
                Fmt(best->metrics.rec_c)});
  table.AddRow({"Spillage SPL", Fmt(best->metrics.spl)});
  table.AddRow({"Projected cost per 1M frames",
                "$" + Fmt(projected_cost(best->metrics), 2)});
  table.Print(std::cout);

  // Show the whole efficient frontier so the operator can see neighbours.
  std::cout << "\nEfficient frontier (cost vs recall):\n";
  TablePrinter frontier({"c", "alpha", "REC", "Cost/1M($)"});
  auto sorted = points;
  std::sort(sorted.begin(), sorted.end(),
            [&](const eval::CurvePoint& a, const eval::CurvePoint& b) {
              return a.metrics.relayed_frames < b.metrics.relayed_frames;
            });
  double best_rec = -1.0;
  for (const auto& point : sorted) {
    if (point.metrics.rec <= best_rec) continue;
    best_rec = point.metrics.rec;
    frontier.AddRow({Fmt(point.confidence, 2), Fmt(point.coverage, 2),
                     Fmt(point.metrics.rec),
                     Fmt(projected_cost(point.metrics), 2)});
  }
  frontier.Print(std::cout);
  return 0;
}
