// Sports analytics: find volleyball-spike and diving highlights (THUMOS E7
// + E8) in a broadcast stream while keeping a hard recall floor — set the
// conformal confidence from the *required recall* and let Theorem 4.2 do
// the work, then compare against the lightweight-filter alternative (VQS),
// which must run a model on every frame.
//
// Usage: sports_highlights [required_recall] [seed]   (defaults: 0.9 13)

#include <cstdlib>
#include <iostream>

#include "baselines/vqs_filter.h"
#include "common/table_printer.h"
#include "core/strategies.h"
#include "data/tasks.h"
#include "eval/curves.h"
#include "eval/runner.h"

namespace {

using ::eventhit::Fmt;
using ::eventhit::TablePrinter;
namespace eval = ::eventhit::eval;

// Two-event task over THUMOS E7+E8 (not one of Table II's named tasks; the
// task registry is open to custom combinations).
eventhit::data::Task HighlightsTask() {
  eventhit::data::Task task;
  task.name = "highlights";
  task.dataset = eventhit::sim::DatasetId::kThumos;
  task.event_indices = {0, 1};  // E7, E8.
  task.global_events = {7, 8};
  return task;
}

}  // namespace

int main(int argc, char** argv) {
  const double required_recall =
      argc > 1 ? std::strtod(argv[1], nullptr) : 0.9;
  const uint64_t seed = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 13;

  const eventhit::data::Task task = HighlightsTask();
  eval::RunnerConfig config;
  config.seed = seed;
  std::cout << "Training a two-event highlight model (E7 volleyball spike, "
               "E8 diving)...\n";
  const auto env = eval::TaskEnvironment::Build(task, config);
  const auto trained = eval::TrainEventHit(env, config);

  // The conformal guarantee says: confidence c bounds the miss rate by 1-c.
  // So the required recall *is* the knob setting.
  eventhit::core::EventHitStrategyOptions options;
  options.use_cclassify = true;
  options.use_cregress = true;
  options.confidence = required_recall;
  options.coverage = 0.5;
  const eventhit::core::EventHitStrategy marshaller(
      trained.model.get(), trained.cclassify.get(), trained.cregress.get(),
      options);
  const eval::Metrics ours = eval::EvaluateFromScores(
      marshaller, trained.test_scores, env.test_records(), env.horizon());

  // VQS alternative tuned to the *same achieved existence recall* so the
  // frame costs are comparable.
  eventhit::baselines::VqsStrategy vqs(&env.video(), &env.task(),
                                       env.horizon(), 0.0);
  eval::Metrics vqs_best;
  bool vqs_found = false;
  for (const auto& point :
       eval::SweepVqs(vqs, env, {0, 10, 20, 40, 60, 90, 120, 160})) {
    if (point.metrics.rec_c + 1e-9 >= ours.rec_c &&
        (!vqs_found ||
         point.metrics.relayed_frames < vqs_best.relayed_frames)) {
      vqs_best = point.metrics;
      vqs_found = true;
    }
  }

  std::cout << "\nRequired recall: " << Fmt(required_recall, 2)
            << " (confidence c set to the same value)\n\n";
  TablePrinter table(
      {"Metric", "EventHit (EHCR)", vqs_found ? "VQS (matched)" : "VQS"});
  auto row = [&](const std::string& name, double a, double b) {
    table.AddRow({name, Fmt(a), vqs_found ? Fmt(b) : std::string("-")});
  };
  row("Existence recall REC_c", ours.rec_c, vqs_best.rec_c);
  row("Frame recall REC", ours.rec, vqs_best.rec);
  row("Spillage SPL", ours.spl, vqs_best.spl);
  row("Relayed frames", static_cast<double>(ours.relayed_frames),
      static_cast<double>(vqs_best.relayed_frames));
  table.Print(std::cout);

  if (ours.rec_c >= required_recall - 0.05) {
    std::cout << "\nRecall floor met (Theorem 4.2 guarantee: miss rate <= "
              << Fmt(1.0 - required_recall, 2) << ").\n";
  } else {
    std::cout << "\nNote: achieved REC_c "
              << Fmt(ours.rec_c)
              << " fell below the floor on this finite sample — the "
                 "guarantee is marginal, not per-draw.\n";
  }
  if (vqs_found && ours.relayed_frames < vqs_best.relayed_frames) {
    std::cout << "EventHit relays "
              << Fmt(100.0 * (1.0 - static_cast<double>(ours.relayed_frames) /
                                        static_cast<double>(
                                            vqs_best.relayed_frames)),
                     1)
              << "% fewer frames than VQS at the same existence recall.\n";
  }
  return 0;
}
