// Drift monitoring (§VIII future work): a deployed EventHit model watches
// a stream whose occurrence regime changes mid-deployment (precursors lose
// their advance warning). The conformal drift detector, fed the p-values of
// CI-confirmed positive horizons, raises a recalibration alarm shortly
// after the change — and stays quiet before it.
//
// Usage: drift_monitor [seed]

#include <cstdlib>
#include <iostream>

#include "common/table_printer.h"
#include "core/c_classify.h"
#include "core/drift_detector.h"
#include "core/eventhit_model.h"
#include "data/record_extractor.h"
#include "data/tasks.h"
#include "sim/datasets.h"

namespace {

using ::eventhit::Fmt;
namespace core = ::eventhit::core;
namespace data = ::eventhit::data;
namespace sim = ::eventhit::sim;

}  // namespace

int main(int argc, char** argv) {
  const uint64_t seed = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 21;

  // Regime A = THUMOS as published; regime B = precursors collapse.
  sim::DatasetSpec before = sim::MakeDatasetSpec(sim::DatasetId::kThumos);
  before.num_frames = 120000;
  // The camera angle changes: precursors lose their advance warning and
  // the lightweight detector misses most event-frame observations.
  sim::DatasetSpec after = before;
  after.num_frames = 80000;
  after.detector_miss_prob = 0.75;
  for (auto& ev : after.events) {
    ev.lead_mean = 25.0;
    ev.lead_std = 5.0;
    ev.weak_precursor_prob = 0.7;
  }
  std::cout << "Generating a stream that shifts regimes at frame "
            << before.num_frames << "...\n";
  const sim::SyntheticVideo video =
      sim::SyntheticVideo::GenerateWithShift(before, after, seed);

  const data::Task task = data::FindTask("TA10").value();
  data::ExtractorConfig extractor;
  extractor.collection_window = before.collection_window;
  extractor.horizon = before.horizon;

  eventhit::Rng rng(seed + 1);
  const auto train = data::SampleBalancedRecords(
      video, task, extractor,
      sim::Interval{extractor.collection_window, 70000}, 800, 0.5, rng);
  const auto calib = data::SampleUniformRecords(
      video, task, extractor, sim::Interval{70001, 100000}, 600, rng);

  core::EventHitConfig config;
  config.collection_window = extractor.collection_window;
  config.horizon = extractor.horizon;
  config.feature_dim = video.feature_dim();
  config.num_events = 1;
  core::EventHitModel model(config);
  std::cout << "Training on the pre-shift regime...\n";
  model.Train(train);
  const core::CClassify cclassify(model, calib);

  // epsilon 0.35 is more sensitive to the moderate p-value deflation this
  // scenario produces (small epsilon targets extreme p-values instead);
  // the false-alarm run length is unchanged.
  core::DriftDetectorOptions drift_options;
  drift_options.epsilon = 0.35;
  core::DriftDetector detector(drift_options);
  std::cout << "Monitoring confirmed positives...\n\n";
  eventhit::TablePrinter table({"Frame", "log-martingale", "Status"});
  int64_t alarm_frame = -1;
  int64_t last_logged = 0;
  for (int64_t frame = 100001;
       frame + extractor.horizon < video.num_frames(); frame += 60) {
    const auto record = data::BuildRecord(video, task, extractor, frame);
    if (!record.labels[0].present) continue;
    const auto p = cclassify.PValues(model.Predict(record));
    const bool fired = detector.Observe(p[0]);
    if (frame - last_logged > 10000 || (fired && alarm_frame < 0)) {
      table.AddRow({Fmt(frame), Fmt(detector.log_martingale(), 2),
                    detector.drift_detected() ? "ALARM" : "ok"});
      last_logged = frame;
    }
    if (fired && alarm_frame < 0) alarm_frame = frame;
  }
  table.Print(std::cout);

  std::cout << "\nShift occurred at frame " << video.shift_frame() << ".\n";
  if (alarm_frame >= 0) {
    std::cout << "Drift alarm at frame " << alarm_frame << " — "
              << (alarm_frame - video.shift_frame())
              << " frames after the shift. Recommended action: re-route the "
                 "stream to the CI, collect fresh labels, retrain and "
                 "recalibrate.\n";
  } else {
    std::cout << "No alarm raised (unexpected for this scenario).\n";
  }
  return 0;
}
