// Feature engineering (§III): standardize the detector features, keep only
// the channels that correlate with the events of interest, and compare the
// resulting model against one trained on the raw feature set — fewer
// parameters, less extraction work, comparable accuracy.
//
// Usage: feature_pipeline [task] [seed]   (defaults: TA10 17)

#include <cstdlib>
#include <iostream>

#include "common/table_printer.h"
#include "core/strategies.h"
#include "eval/runner.h"
#include "features/feature_selection.h"
#include "features/standardizer.h"

namespace {

using ::eventhit::Fmt;
using ::eventhit::TablePrinter;
namespace eval = ::eventhit::eval;
namespace core = ::eventhit::core;
namespace features = ::eventhit::features;

// Trains EventHit on the given record sets and returns EHO test metrics.
eval::Metrics TrainAndScore(const std::vector<eventhit::data::Record>& train,
                            const std::vector<eventhit::data::Record>& test,
                            size_t feature_dim, int window, int horizon,
                            size_t num_events, uint64_t seed,
                            size_t* parameters) {
  core::EventHitConfig config;
  config.collection_window = window;
  config.horizon = horizon;
  config.feature_dim = feature_dim;
  config.num_events = num_events;
  config.seed = seed;
  core::EventHitModel model(config);
  model.Train(train);
  if (parameters != nullptr) *parameters = model.ParameterCount();
  core::EventHitStrategyOptions options;
  const core::EventHitStrategy eho(&model, nullptr, nullptr, options);
  return eval::EvaluateStrategy(eho, test, horizon);
}

}  // namespace

int main(int argc, char** argv) {
  const std::string task_name = argc > 1 ? argv[1] : "TA10";
  const uint64_t seed = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 17;

  const auto task_result = eventhit::data::FindTask(task_name);
  if (!task_result.ok()) {
    std::cerr << task_result.status() << "\n";
    return 1;
  }
  eval::RunnerConfig config;
  config.seed = seed;
  std::cout << "Building environment for " << task_name << "...\n";
  const auto env = eval::TaskEnvironment::Build(task_result.value(), config);
  const size_t d = env.video().feature_dim();

  // --- Score the channels ---
  std::cout << "Scoring " << d << " channels against the task labels...\n\n";
  TablePrinter scores_table({"Channel", "|corr| with labels"});
  const auto scores = features::ScoreChannels(env.train_records(), d);
  for (const auto& score : scores) {
    scores_table.AddRow({Fmt(static_cast<int64_t>(score.channel)),
                         Fmt(score.score)});
  }
  scores_table.Print(std::cout);

  // --- Standardize + select ---
  const features::Standardizer standardizer =
      features::Standardizer::Fit(env.train_records(), d);
  auto train = env.train_records();
  auto test = env.test_records();
  standardizer.ApplyAll(train);
  standardizer.ApplyAll(test);

  const auto kept = features::SelectChannels(train, d, 0.15);
  std::cout << "\nKept " << kept.size() << "/" << d << " channels:";
  for (size_t channel : kept) std::cout << " " << channel;
  std::cout << "\n\nTraining both variants...\n";

  const auto train_selected = features::ProjectRecords(train, d, kept);
  const auto test_selected = features::ProjectRecords(test, d, kept);

  size_t raw_params = 0, selected_params = 0;
  const eval::Metrics raw = TrainAndScore(
      train, test, d, env.collection_window(), env.horizon(),
      env.task().event_indices.size(), seed + 1, &raw_params);
  const eval::Metrics selected = TrainAndScore(
      train_selected, test_selected, kept.size(), env.collection_window(),
      env.horizon(), env.task().event_indices.size(), seed + 1,
      &selected_params);

  TablePrinter table({"Variant", "Channels", "Parameters", "REC", "SPL"});
  table.AddRow({"all channels", Fmt(static_cast<int64_t>(d)),
                Fmt(static_cast<int64_t>(raw_params)), Fmt(raw.rec),
                Fmt(raw.spl)});
  table.AddRow({"selected", Fmt(static_cast<int64_t>(kept.size())),
                Fmt(static_cast<int64_t>(selected_params)),
                Fmt(selected.rec), Fmt(selected.spl)});
  std::cout << "\n";
  table.Print(std::cout);
  std::cout << "\nChannel selection keeps the informative precursor/activity "
               "pairs and drops distractor/noise channels, shrinking the "
               "model without giving up accuracy.\n";
  return 0;
}
