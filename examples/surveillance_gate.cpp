// Surveillance automation (the paper's §I motivating scenario): a camera
// watches a gate; only segments likely to contain "person opening a
// vehicle" events (VIRAT E1) should be billed against the cloud vision
// service.
//
// The example deploys the full loop the paper describes:
//   1. route the stream to the CI once to label training data (here: the
//      simulator's ground truth plays the CI's role),
//   2. train EventHit locally and persist the weights,
//   3. reload the model (as a fresh process would) and marshal the live
//      portion of the stream: every H frames, predict, relay only the
//      predicted occurrence intervals to the CloudService,
//   4. compare the invoice against brute-force relaying.
//
// Usage: surveillance_gate [seed]

#include <cstdlib>
#include <iostream>

#include "cloud/cloud_service.h"
#include "common/table_printer.h"
#include "core/strategies.h"
#include "data/record_extractor.h"
#include "data/tasks.h"
#include "eval/runner.h"

namespace {

using ::eventhit::Fmt;
using ::eventhit::TablePrinter;

}  // namespace

int main(int argc, char** argv) {
  const uint64_t seed = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 7;

  // --- 1+2: build environment, train, persist ---
  const auto task = eventhit::data::FindTask("TA1").value();
  eventhit::eval::RunnerConfig config;
  config.seed = seed;
  std::cout << "Training the gate model (VIRAT E1: person opening a "
               "vehicle)...\n";
  const auto env = eventhit::eval::TaskEnvironment::Build(task, config);
  const auto trained = eventhit::eval::TrainEventHit(env, config);

  const std::string model_path = "/tmp/eventhit_gate_model.bin";
  if (const auto status = trained.model->Save(model_path); !status.ok()) {
    std::cerr << "save failed: " << status << "\n";
    return 1;
  }
  std::cout << "  model saved to " << model_path << " ("
            << trained.model->ParameterCount() << " parameters)\n";

  // --- 3: reload into a "deployment" instance ---
  eventhit::core::EventHitConfig model_config = config.model_template;
  model_config.collection_window = env.collection_window();
  model_config.horizon = env.horizon();
  model_config.feature_dim = env.video().feature_dim();
  model_config.num_events = task.event_indices.size();
  model_config.seed = config.seed ^ 0x9E3779B97F4A7C15ULL;
  eventhit::core::EventHitModel deployed(model_config);
  if (const auto status = deployed.Load(model_path); !status.ok()) {
    std::cerr << "load failed: " << status << "\n";
    return 1;
  }

  eventhit::core::EventHitStrategyOptions options;
  options.use_cclassify = true;
  options.use_cregress = true;
  options.confidence = 0.9;
  options.coverage = 0.5;
  const eventhit::core::EventHitStrategy marshaller(
      &deployed, trained.cclassify.get(), trained.cregress.get(), options);

  // --- 4: marshal the live (test) portion of the stream ---
  eventhit::cloud::CloudConfig cloud_config;  // Rekognition-style pricing.
  eventhit::cloud::CloudService cloud(&env.video(), cloud_config, seed + 1);
  eventhit::cloud::CloudService brute_force(&env.video(), cloud_config,
                                            seed + 2);

  const int horizon = env.horizon();
  int64_t horizons = 0;
  int64_t events_caught = 0;
  int64_t events_total = 0;
  int64_t event_frames_detected = 0;
  for (int64_t frame = env.splits().test.start;
       frame + horizon <= env.splits().test.end; frame += horizon) {
    ++horizons;
    const auto record =
        eventhit::data::BuildRecord(env.video(), task, env.extractor(), frame);
    const auto decision = marshaller.Decide(record);

    // Brute force sends everything.
    brute_force.ChargeFrames(horizon);

    if (record.labels[0].present) ++events_total;
    if (decision.exists[0]) {
      // Relay the predicted interval (absolute frames) to the cloud.
      const eventhit::sim::Interval relay{
          frame + decision.intervals[0].start,
          frame + decision.intervals[0].end};
      const auto detections = cloud.Detect(task.event_indices[0], relay);
      bool any = false;
      for (bool hit : detections) {
        any = any || hit;
        event_frames_detected += hit ? 1 : 0;
      }
      if (any && record.labels[0].present) ++events_caught;
    }
  }

  std::cout << "\nProcessed " << horizons << " horizons of " << horizon
            << " frames from the live stream.\n\n";
  TablePrinter table({"Quantity", "EventHit marshaller", "Brute force"});
  table.AddRow({"Frames billed", Fmt(cloud.invoice().frames_processed),
                Fmt(brute_force.invoice().frames_processed)});
  table.AddRow({"Cloud bill", "$" + Fmt(cloud.invoice().total_cost_usd, 2),
                "$" + Fmt(brute_force.invoice().total_cost_usd, 2)});
  table.AddRow({"Cloud compute",
                Fmt(cloud.invoice().compute_seconds, 1) + " s",
                Fmt(brute_force.invoice().compute_seconds, 1) + " s"});
  table.Print(std::cout);

  std::cout << "\nGate events in the live stream: " << events_total
            << "; confirmed by the cloud detector: " << events_caught << " ("
            << event_frames_detected << " event frames)\n";
  const double saving =
      1.0 - cloud.invoice().total_cost_usd /
                brute_force.invoice().total_cost_usd;
  std::cout << "Savings vs brute force: " << Fmt(saving * 100.0, 1) << "%\n";
  return 0;
}
