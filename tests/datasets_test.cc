#include "sim/datasets.h"

#include <cmath>

#include <gtest/gtest.h>

namespace eventhit::sim {
namespace {

TEST(DatasetsTest, Names) {
  EXPECT_STREQ(DatasetName(DatasetId::kVirat), "VIRAT");
  EXPECT_STREQ(DatasetName(DatasetId::kThumos), "THUMOS");
  EXPECT_STREQ(DatasetName(DatasetId::kBreakfast), "Breakfast");
}

TEST(DatasetsTest, SpecShapesMatchPaper) {
  const DatasetSpec virat = MakeDatasetSpec(DatasetId::kVirat);
  EXPECT_EQ(virat.events.size(), 6u);
  EXPECT_EQ(virat.collection_window, 25);
  EXPECT_EQ(virat.horizon, 500);

  const DatasetSpec thumos = MakeDatasetSpec(DatasetId::kThumos);
  EXPECT_EQ(thumos.events.size(), 3u);
  EXPECT_EQ(thumos.collection_window, 10);
  EXPECT_EQ(thumos.horizon, 200);

  const DatasetSpec breakfast = MakeDatasetSpec(DatasetId::kBreakfast);
  EXPECT_EQ(breakfast.events.size(), 3u);
  EXPECT_EQ(breakfast.collection_window, 50);
  EXPECT_EQ(breakfast.horizon, 500);
}

TEST(DatasetsTest, GlobalEventResolution) {
  auto ref = ResolveGlobalEvent(1);
  ASSERT_TRUE(ref.ok());
  EXPECT_EQ(ref.value().dataset, DatasetId::kVirat);
  EXPECT_EQ(ref.value().local_index, 0u);

  ref = ResolveGlobalEvent(6);
  ASSERT_TRUE(ref.ok());
  EXPECT_EQ(ref.value().dataset, DatasetId::kVirat);
  EXPECT_EQ(ref.value().local_index, 5u);

  ref = ResolveGlobalEvent(7);
  ASSERT_TRUE(ref.ok());
  EXPECT_EQ(ref.value().dataset, DatasetId::kThumos);
  EXPECT_EQ(ref.value().local_index, 0u);

  ref = ResolveGlobalEvent(12);
  ASSERT_TRUE(ref.ok());
  EXPECT_EQ(ref.value().dataset, DatasetId::kBreakfast);
  EXPECT_EQ(ref.value().local_index, 2u);

  EXPECT_FALSE(ResolveGlobalEvent(0).ok());
  EXPECT_FALSE(ResolveGlobalEvent(13).ok());
}

// Table I reproduction property: generated streams match the published
// occurrence counts and duration statistics within sampling tolerance.
struct TableOneRow {
  DatasetId dataset;
  size_t local_index;
  double occurrences;
  double duration_mean;
  double duration_std;
};

class TableOneTest : public ::testing::TestWithParam<TableOneRow> {};

TEST_P(TableOneTest, GeneratedStatisticsMatchTableOne) {
  const TableOneRow row = GetParam();
  const DatasetSpec spec = MakeDatasetSpec(row.dataset);
  const SyntheticVideo video = SyntheticVideo::Generate(spec, 20240101);
  const std::vector<EventStats> stats = ComputeEventStats(video);
  ASSERT_GT(stats.size(), row.local_index);
  const EventStats& ev = stats[row.local_index];
  // Occurrence counts are Poisson-ish: allow ~3 sigma.
  EXPECT_NEAR(static_cast<double>(ev.occurrences), row.occurrences,
              3.0 * std::sqrt(row.occurrences) + 3.0);
  EXPECT_NEAR(ev.duration_mean, row.duration_mean,
              0.15 * row.duration_mean + 3.0);
  // Duration std: loose band (clamping at min duration biases it down).
  EXPECT_NEAR(ev.duration_std, row.duration_std,
              0.35 * row.duration_std + 4.0);
}

INSTANTIATE_TEST_SUITE_P(
    AllEvents, TableOneTest,
    ::testing::Values(
        TableOneRow{DatasetId::kVirat, 0, 54, 61.5, 15.4},
        TableOneRow{DatasetId::kVirat, 1, 57, 62.0, 11.9},
        TableOneRow{DatasetId::kVirat, 2, 56, 86.6, 25.0},
        TableOneRow{DatasetId::kVirat, 3, 93, 145.1, 35.1},
        TableOneRow{DatasetId::kVirat, 4, 162, 193.7, 158.8},
        TableOneRow{DatasetId::kVirat, 5, 165, 571.2, 176.4},
        TableOneRow{DatasetId::kThumos, 0, 80, 99.3, 40.1},
        TableOneRow{DatasetId::kThumos, 1, 74, 91.2, 35.4},
        TableOneRow{DatasetId::kThumos, 2, 48, 92.8, 25.9},
        TableOneRow{DatasetId::kBreakfast, 0, 132, 114.0, 48.8},
        TableOneRow{DatasetId::kBreakfast, 1, 121, 97.2, 107.5},
        TableOneRow{DatasetId::kBreakfast, 2, 95, 240.2, 153.8}));

TEST(DatasetsTest, ComputeEventStatsOnTinyTimeline) {
  DatasetSpec spec = MakeDatasetSpec(DatasetId::kThumos);
  spec.num_frames = 30000;  // Shrunk stream still works.
  const SyntheticVideo video = SyntheticVideo::Generate(spec, 3);
  const auto stats = ComputeEventStats(video);
  ASSERT_EQ(stats.size(), 3u);
  for (const auto& ev : stats) {
    EXPECT_FALSE(ev.name.empty());
    EXPECT_GE(ev.occurrences, 0);
  }
}

}  // namespace
}  // namespace eventhit::sim
