#include "core/c_regress.h"

#include <gtest/gtest.h>

namespace eventhit::core {
namespace {

constexpr int kHorizon = 100;

CRegress MakeFixedCRegress() {
  // Event 0: start residuals {1..5}, end residuals {2,4,6,8,10}.
  return CRegress({{1, 2, 3, 4, 5}}, {{2, 4, 6, 8, 10}}, kHorizon);
}

TEST(CRegressTest, QuantilesAreOrderStatistics) {
  const CRegress cregress = MakeFixedCRegress();
  // Ranks use the finite-sample correction ceil(alpha*(n+1)), clamped.
  EXPECT_DOUBLE_EQ(cregress.StartQuantile(0, 0.5), 3.0);  // ceil(0.5*6)=3rd.
  EXPECT_DOUBLE_EQ(cregress.EndQuantile(0, 0.5), 6.0);
  EXPECT_DOUBLE_EQ(cregress.StartQuantile(0, 1.0), 5.0);
  EXPECT_DOUBLE_EQ(cregress.EndQuantile(0, 0.2), 4.0);  // ceil(0.2*6)=2nd.
}

TEST(CRegressTest, AdjustWidensAsymmetrically) {
  const CRegress cregress = MakeFixedCRegress();
  // Eq. 11: start moves earlier by q_s, end later by q_e.
  const sim::Interval adjusted =
      cregress.Adjust(0, sim::Interval{20, 40}, 0.5);
  EXPECT_EQ(adjusted, (sim::Interval{17, 46}));
}

TEST(CRegressTest, AdjustClampsToHorizon) {
  const CRegress cregress = MakeFixedCRegress();
  EXPECT_EQ(cregress.Adjust(0, sim::Interval{2, 98}, 1.0),
            (sim::Interval{1, kHorizon}));
}

TEST(CRegressTest, LargerAlphaNeverShrinksInterval) {
  const CRegress cregress = MakeFixedCRegress();
  const sim::Interval base{30, 60};
  sim::Interval previous = cregress.Adjust(0, base, 0.1);
  for (double alpha : {0.3, 0.5, 0.7, 0.9, 1.0}) {
    const sim::Interval widened = cregress.Adjust(0, base, alpha);
    EXPECT_LE(widened.start, previous.start);
    EXPECT_GE(widened.end, previous.end);
    previous = widened;
  }
}

TEST(CRegressTest, AdjustedIntervalContainsEstimate) {
  const CRegress cregress = MakeFixedCRegress();
  const sim::Interval base{30, 60};
  for (double alpha : {0.2, 0.6, 1.0}) {
    const sim::Interval widened = cregress.Adjust(0, base, alpha);
    EXPECT_LE(widened.start, base.start);
    EXPECT_GE(widened.end, base.end);
  }
}

TEST(CRegressTest, EmptyResidualsNoWidening) {
  const CRegress cregress({{}}, {{}}, kHorizon);
  EXPECT_EQ(cregress.Adjust(0, sim::Interval{10, 20}, 0.9),
            (sim::Interval{10, 20}));
  EXPECT_EQ(cregress.CalibrationSize(0), 0u);
}

TEST(CRegressTest, PerEventResiduals) {
  const CRegress cregress({{1, 1, 1}, {10, 10, 10}},
                          {{1, 1, 1}, {10, 10, 10}}, kHorizon);
  EXPECT_EQ(cregress.Adjust(0, sim::Interval{50, 60}, 0.9),
            (sim::Interval{49, 61}));
  EXPECT_EQ(cregress.Adjust(1, sim::Interval{50, 60}, 0.9),
            (sim::Interval{40, 70}));
}

TEST(CRegressTest, MismatchedResidualSetsDie) {
  EXPECT_DEATH(CRegress({{1.0}}, {{1.0}, {2.0}}, kHorizon), "CHECK failed");
  const CRegress cregress = MakeFixedCRegress();
  EXPECT_DEATH(cregress.Adjust(3, sim::Interval{1, 2}, 0.5), "CHECK failed");
  EXPECT_DEATH(cregress.Adjust(0, sim::Interval::Empty(), 0.5),
               "CHECK failed");
}

TEST(CRegressTest, FractionalQuantileCeiled) {
  // Non-integer residual quantiles are ceiled to whole frames so the
  // adjusted interval stays a frame interval.
  const CRegress cregress({{1.5, 2.5}}, {{0.5, 3.5}}, kHorizon);
  // n=2: rank ceil(0.5*3) = 2 picks the larger residual of each pair.
  const sim::Interval adjusted = cregress.Adjust(0, sim::Interval{20, 30}, 0.5);
  EXPECT_EQ(adjusted.start, 17);  // 20 - ceil(2.5).
  EXPECT_EQ(adjusted.end, 34);    // 30 + ceil(3.5).
}

}  // namespace
}  // namespace eventhit::core
