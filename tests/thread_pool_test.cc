// The deterministic parallel substrate: chunked ParallelFor semantics,
// exception propagation, the serial fallback, seed splitting, and — the
// property everything else leans on — byte-identical results between the
// parallel and serial paths of the wired-in eval stages.
#include "common/thread_pool.h"

#include <algorithm>
#include <mutex>
#include <set>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/strategies.h"
#include "eval/hyper_search.h"
#include "eval/runner.h"

namespace eventhit {
namespace {

TEST(ThreadPoolTest, ParallelForCoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  for (size_t n : {size_t{0}, size_t{1}, size_t{3}, size_t{4}, size_t{1003}}) {
    std::vector<int> hits(n, 0);
    // Each body writes only its own slot, so no synchronisation is needed.
    pool.ParallelFor(n, [&](size_t i) { ++hits[i]; });
    for (size_t i = 0; i < n; ++i) {
      EXPECT_EQ(hits[i], 1) << "n=" << n << " i=" << i;
    }
  }
}

TEST(ThreadPoolTest, ResolveDefaultThreadsClampsUnknownHardwareToOne) {
  // hardware_concurrency() == 0 is the standard's "unknown" answer; it
  // must never propagate a 0 into ThreadPool (whose ctor requires >= 1).
  EXPECT_EQ(ThreadPool::ResolveDefaultThreads(nullptr, 0), 1);
  EXPECT_EQ(ThreadPool::ResolveDefaultThreads("", 0), 1);
  EXPECT_EQ(ThreadPool::ResolveDefaultThreads(nullptr, 8), 8);
}

TEST(ThreadPoolTest, ResolveDefaultThreadsRejectsMalformedEnv) {
  // Junk, zero, negative, trailing-garbage and out-of-range values of
  // EVENTHIT_THREADS all fall back to the hardware answer (atoi used to
  // return 0 for junk and had undefined behaviour on overflow).
  for (const char* bad : {"abc", "0", "-3", "4x", " 7 ", "1e3", "+",
                          "99999999999999999999"}) {
    EXPECT_EQ(ThreadPool::ResolveDefaultThreads(bad, 6), 6) << bad;
    EXPECT_EQ(ThreadPool::ResolveDefaultThreads(bad, 0), 1) << bad;
  }
}

TEST(ThreadPoolTest, ResolveDefaultThreadsParsesValidEnv) {
  EXPECT_EQ(ThreadPool::ResolveDefaultThreads("3", 8), 3);
  EXPECT_EQ(ThreadPool::ResolveDefaultThreads("1", 0), 1);
  EXPECT_EQ(ThreadPool::ResolveDefaultThreads("16", 2), 16);
}

TEST(ThreadPoolTest, ChunksPartitionTheRangeContiguously) {
  ThreadPool pool(3);
  const size_t n = 11;
  std::mutex mu;
  std::vector<std::pair<size_t, size_t>> ranges(3, {0, 0});
  pool.ParallelForChunked(n, [&](int chunk, size_t begin, size_t end) {
    std::lock_guard<std::mutex> lock(mu);
    ranges[static_cast<size_t>(chunk)] = {begin, end};
  });
  // Chunk bounds are a pure function of (n, threads): begin = n*c/t.
  size_t expected_begin = 0;
  for (int c = 0; c < 3; ++c) {
    EXPECT_EQ(ranges[static_cast<size_t>(c)].first, expected_begin);
    EXPECT_EQ(ranges[static_cast<size_t>(c)].first,
              n * static_cast<size_t>(c) / 3);
    expected_begin = ranges[static_cast<size_t>(c)].second;
  }
  EXPECT_EQ(expected_begin, n);
}

TEST(ThreadPoolTest, EmptyChunksNeverInvokeTheBody) {
  // n < threads leaves some chunks with begin >= end; those chunks must
  // never reach the body — a zero-length invocation would hand code a
  // bogus (begin == end) range and burn a chunk id on nothing.
  ThreadPool pool(8);
  for (size_t n : {size_t{1}, size_t{2}, size_t{5}, size_t{7}}) {
    std::mutex mu;
    std::vector<std::pair<size_t, size_t>> seen;  // (chunk, begin)
    std::vector<int> hits(n, 0);
    pool.ParallelForChunked(n, [&](int chunk, size_t begin, size_t end) {
      std::lock_guard<std::mutex> lock(mu);
      EXPECT_LT(begin, end) << "empty chunk " << chunk << " invoked, n=" << n;
      seen.emplace_back(static_cast<size_t>(chunk), begin);
      for (size_t i = begin; i < end; ++i) ++hits[i];
    });
    // Exactly n non-empty chunks fire (each covers one index when n < t),
    // every index exactly once, and each chunk id matches the pure
    // formula begin = n*c/t — stable run to run.
    EXPECT_EQ(seen.size(), n);
    for (const auto& [chunk, begin] : seen) {
      EXPECT_EQ(begin, n * chunk / 8) << "chunk " << chunk << " n=" << n;
    }
    for (size_t i = 0; i < n; ++i) EXPECT_EQ(hits[i], 1) << "n=" << n;
  }
}

TEST(ThreadPoolTest, ZeroLengthRangeInvokesNothing) {
  ThreadPool pool(4);
  int calls = 0;
  pool.ParallelForChunked(0, [&](int, size_t, size_t) { ++calls; });
  pool.ParallelFor(0, [&](size_t) { ++calls; });
  EXPECT_EQ(calls, 0);
}

TEST(ThreadPoolTest, LowestChunkIndexExceptionWins) {
  ThreadPool pool(4);
  for (int round = 0; round < 20; ++round) {
    try {
      pool.ParallelForChunked(8, [&](int chunk, size_t, size_t) {
        throw std::runtime_error(std::to_string(chunk));
      });
      FAIL() << "expected ParallelForChunked to rethrow";
    } catch (const std::runtime_error& e) {
      // Every chunk throws; the caller must always see chunk 0's error,
      // independent of scheduling.
      EXPECT_STREQ(e.what(), "0");
    }
  }
}

TEST(ThreadPoolTest, ExceptionFromSingleIndexPropagates) {
  ThreadPool pool(3);
  EXPECT_THROW(pool.ParallelFor(100,
                                [&](size_t i) {
                                  if (i == 57) {
                                    throw std::runtime_error("boom");
                                  }
                                }),
               std::runtime_error);
  // The pool stays usable after an exception.
  std::vector<int> hits(10, 0);
  pool.ParallelFor(10, [&](size_t i) { ++hits[i]; });
  EXPECT_EQ(std::count(hits.begin(), hits.end(), 1), 10);
}

TEST(ThreadPoolTest, SingleThreadRunsInlineOnCaller) {
  ThreadPool pool(1);
  const std::thread::id caller = std::this_thread::get_id();
  size_t calls = 0;
  pool.ParallelFor(25, [&](size_t) {
    EXPECT_EQ(std::this_thread::get_id(), caller);
    ++calls;
  });
  EXPECT_EQ(calls, 25u);
  EXPECT_THROW(
      pool.ParallelFor(1, [](size_t) { throw std::logic_error("serial"); }),
      std::logic_error);
}

TEST(ThreadPoolTest, ReusableAcrossManyRounds) {
  ThreadPool pool(4);
  const size_t n = 64;
  std::vector<int> counts(n, 0);
  for (int round = 0; round < 300; ++round) {
    pool.ParallelFor(n, [&](size_t i) { ++counts[i]; });
  }
  for (size_t i = 0; i < n; ++i) EXPECT_EQ(counts[i], 300);
}

TEST(ExecutionContextTest, DefaultIsSerial) {
  const ExecutionContext ctx;
  EXPECT_EQ(ctx.threads(), 1);
  EXPECT_EQ(ctx.pool(), nullptr);
  size_t calls = 0;
  ctx.ParallelFor(7, [&](size_t) { ++calls; });
  EXPECT_EQ(calls, 7u);
}

TEST(ExecutionContextTest, SeedsAreDeterministicPerStream) {
  const ExecutionContext a(2, 42);
  const ExecutionContext same(2, 42);
  const ExecutionContext other(2, 43);
  EXPECT_EQ(a.SeedFor(0), same.SeedFor(0));
  EXPECT_EQ(a.SeedFor(9), same.SeedFor(9));
  EXPECT_NE(a.SeedFor(0), a.SeedFor(1));
  EXPECT_NE(a.SeedFor(0), other.SeedFor(0));
  // Inner() drops to one thread but keeps the seed streams aligned.
  const ExecutionContext inner = a.Inner();
  EXPECT_EQ(inner.threads(), 1);
  EXPECT_EQ(inner.SeedFor(3), a.SeedFor(3));
}

TEST(SplitSeedTest, StreamsAreStableAndDistinct) {
  EXPECT_EQ(SplitSeed(1, 0), SplitSeed(1, 0));
  EXPECT_NE(SplitSeed(1, 0), SplitSeed(1, 1));
  EXPECT_NE(SplitSeed(1, 0), SplitSeed(2, 0));
  std::set<uint64_t> seen;
  for (uint64_t stream = 0; stream < 1000; ++stream) {
    seen.insert(SplitSeed(12345, stream));
  }
  EXPECT_EQ(seen.size(), 1000u);
}

}  // namespace
}  // namespace eventhit

namespace eventhit::eval {
namespace {

constexpr int kWindow = 5;
constexpr int kHorizon = 20;
constexpr size_t kDim = 3;

// Same toy problem as the hyper-search tests: channel 0 level drives both
// existence and location.
data::Record ToyRecord(double level, Rng& rng) {
  data::Record record;
  record.covariates.resize(kWindow * kDim);
  for (int m = 0; m < kWindow; ++m) {
    float* row = record.covariates.data() + m * kDim;
    row[0] = static_cast<float>(level + rng.Gaussian(0, 0.03));
    row[1] = static_cast<float>(rng.Uniform());
    row[2] = 0.5f;
  }
  data::EventLabel label;
  if (level > 0.4) {
    label.present = true;
    label.start = std::max(1, static_cast<int>((1.0 - level) * kHorizon));
    label.end = std::min(kHorizon, label.start + 4);
  }
  record.labels.push_back(label);
  return record;
}

std::vector<data::Record> ToyDataset(size_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<data::Record> records;
  for (size_t i = 0; i < n; ++i) {
    records.push_back(ToyRecord(rng.Uniform(), rng));
  }
  return records;
}

core::EventHitConfig BaseConfig() {
  core::EventHitConfig config;
  config.collection_window = kWindow;
  config.horizon = kHorizon;
  config.feature_dim = kDim;
  config.num_events = 1;
  config.lstm_hidden = 8;
  config.shared_dim = 8;
  config.event_hidden = 12;
  config.epochs = 6;
  return config;
}

HyperGrid TinyGrid() {
  HyperGrid grid;
  grid.lstm_hidden = {8};
  grid.event_hidden = {12};
  grid.learning_rate = {3e-3};
  grid.beta = {1.0, 2.0};
  grid.gamma = {0.5, 1.0};
  return grid;
}

void ExpectIdenticalResults(const std::vector<HyperResult>& serial,
                            const std::vector<HyperResult>& parallel) {
  ASSERT_EQ(serial.size(), parallel.size());
  for (size_t i = 0; i < serial.size(); ++i) {
    // Exact equality, not near-equality: the parallel path must perform
    // the same arithmetic in the same order as the serial one.
    EXPECT_EQ(serial[i].objective, parallel[i].objective) << "i=" << i;
    EXPECT_EQ(serial[i].validation.rec, parallel[i].validation.rec);
    EXPECT_EQ(serial[i].validation.spl, parallel[i].validation.spl);
    EXPECT_EQ(serial[i].validation.rec_c, parallel[i].validation.rec_c);
    EXPECT_EQ(serial[i].validation.relayed_frames,
              parallel[i].validation.relayed_frames);
    ASSERT_EQ(serial[i].config.beta.size(), parallel[i].config.beta.size());
    EXPECT_EQ(serial[i].config.beta[0], parallel[i].config.beta[0]);
    EXPECT_EQ(serial[i].config.gamma[0], parallel[i].config.gamma[0]);
  }
}

TEST(ParallelDeterminismTest, GridSearchMatchesSerialExactly) {
  const auto train = ToyDataset(100, 21);
  const auto validation = ToyDataset(60, 22);
  const auto serial =
      GridSearch(BaseConfig(), TinyGrid(), train, validation);
  HyperSearchOptions options;
  options.exec = ExecutionContext(3, 7);
  const auto parallel =
      GridSearch(BaseConfig(), TinyGrid(), train, validation, options);
  ExpectIdenticalResults(serial, parallel);
}

TEST(ParallelDeterminismTest, RandomSearchMatchesSerialExactly) {
  const auto train = ToyDataset(100, 23);
  const auto validation = ToyDataset(60, 24);
  Rng serial_rng(31);
  const auto serial = RandomSearch(BaseConfig(), TinyGrid(), 3, train,
                                   validation, serial_rng);
  Rng parallel_rng(31);
  HyperSearchOptions options;
  options.exec = ExecutionContext(4, 7);
  const auto parallel = RandomSearch(BaseConfig(), TinyGrid(), 3, train,
                                     validation, parallel_rng, options);
  ExpectIdenticalResults(serial, parallel);
}

TEST(ParallelDeterminismTest, TrainAndEvaluateMatchSerialExactly) {
  const data::Task task = data::FindTask("TA10").value();
  RunnerConfig config;
  config.stream_frames_override = 30000;
  config.train_records = 80;
  config.calib_records = 120;
  config.test_records = 100;
  config.model_template.epochs = 4;
  config.seed = 99;
  const TaskEnvironment env = TaskEnvironment::Build(task, config);

  const TrainedEventHit serial = TrainEventHit(env, config);
  const ExecutionContext ctx(3, config.seed);
  const TrainedEventHit parallel = TrainEventHit(env, config, 0.5, ctx);

  // Per-record raw scores from the parallel PredictBatch must be
  // bit-identical to the serial loop.
  ASSERT_EQ(serial.test_scores.size(), parallel.test_scores.size());
  for (size_t i = 0; i < serial.test_scores.size(); ++i) {
    ASSERT_EQ(serial.test_scores[i].existence.size(),
              parallel.test_scores[i].existence.size());
    for (size_t k = 0; k < serial.test_scores[i].existence.size(); ++k) {
      EXPECT_EQ(serial.test_scores[i].existence[k],
                parallel.test_scores[i].existence[k]);
    }
  }

  // Full EHCR evaluation: parallel conformal calibration + parallel
  // decision loop must reproduce the serial metrics field for field.
  core::EventHitStrategyOptions strategy_options;
  strategy_options.use_cclassify = true;
  strategy_options.use_cregress = true;
  const core::EventHitStrategy serial_strategy(
      serial.model.get(), serial.cclassify.get(), serial.cregress.get(),
      strategy_options);
  const core::EventHitStrategy parallel_strategy(
      parallel.model.get(), parallel.cclassify.get(), parallel.cregress.get(),
      strategy_options);
  const Metrics serial_metrics = EvaluateStrategy(
      serial_strategy, env.test_records(), env.horizon());
  const Metrics parallel_metrics = EvaluateStrategy(
      parallel_strategy, env.test_records(), env.horizon(), ctx);
  EXPECT_EQ(serial_metrics.rec, parallel_metrics.rec);
  EXPECT_EQ(serial_metrics.spl, parallel_metrics.spl);
  EXPECT_EQ(serial_metrics.rec_c, parallel_metrics.rec_c);
  EXPECT_EQ(serial_metrics.rec_r, parallel_metrics.rec_r);
  EXPECT_EQ(serial_metrics.pre_c, parallel_metrics.pre_c);
  EXPECT_EQ(serial_metrics.relayed_frames, parallel_metrics.relayed_frames);
  EXPECT_EQ(serial_metrics.records, parallel_metrics.records);
}

}  // namespace
}  // namespace eventhit::eval
