#include "nn/dropout.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace eventhit::nn {
namespace {

TEST(DropoutTest, EvalIsIdentity) {
  Dropout dropout(0.5);
  const float x[] = {1.0f, -2.0f, 3.0f};
  Vec y;
  dropout.ForwardEval(x, 3, y);
  ASSERT_EQ(y.size(), 3u);
  EXPECT_FLOAT_EQ(y[0], 1.0f);
  EXPECT_FLOAT_EQ(y[1], -2.0f);
  EXPECT_FLOAT_EQ(y[2], 3.0f);
}

TEST(DropoutTest, ZeroRateTrainIsIdentity) {
  Dropout dropout(0.0);
  Rng rng(1);
  const float x[] = {1.0f, 2.0f};
  Vec y;
  dropout.ForwardTrain(x, 2, rng, y);
  EXPECT_FLOAT_EQ(y[0], 1.0f);
  EXPECT_FLOAT_EQ(y[1], 2.0f);
}

TEST(DropoutTest, InvertedScalingPreservesExpectation) {
  Dropout dropout(0.4);
  Rng rng(2);
  const size_t n = 20000;
  Vec x(n, 1.0f);
  Vec y;
  dropout.ForwardTrain(x.data(), n, rng, y);
  double sum = 0.0;
  for (float v : y) sum += v;
  EXPECT_NEAR(sum / static_cast<double>(n), 1.0, 0.03);
}

TEST(DropoutTest, DropsApproximatelyRateFraction) {
  Dropout dropout(0.3);
  Rng rng(3);
  const size_t n = 20000;
  Vec x(n, 1.0f);
  Vec y;
  dropout.ForwardTrain(x.data(), n, rng, y);
  size_t zeros = 0;
  for (float v : y) zeros += v == 0.0f ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(zeros) / static_cast<double>(n), 0.3, 0.02);
}

TEST(DropoutTest, BackwardUsesSameMask) {
  Dropout dropout(0.5);
  Rng rng(4);
  Vec x(64, 2.0f);
  Vec y;
  dropout.ForwardTrain(x.data(), x.size(), rng, y);
  Vec dy(64, 1.0f);
  Vec dx(64);
  dropout.Backward(dy.data(), dx.data());
  for (size_t i = 0; i < x.size(); ++i) {
    if (y[i] == 0.0f) {
      EXPECT_FLOAT_EQ(dx[i], 0.0f);
    } else {
      EXPECT_FLOAT_EQ(dx[i], 2.0f);  // 1/(1-0.5) scaling.
    }
  }
}

TEST(DropoutTest, RateValidation) {
  EXPECT_DEATH(Dropout(-0.1), "CHECK failed");
  EXPECT_DEATH(Dropout(1.0), "CHECK failed");
}

}  // namespace
}  // namespace eventhit::nn
