#include "core/strategies.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace eventhit::core {
namespace {

constexpr int kHorizon = 20;

EventHitConfig TinyConfig() {
  EventHitConfig config;
  config.collection_window = 4;
  config.horizon = kHorizon;
  config.feature_dim = 2;
  config.num_events = 1;
  config.lstm_hidden = 6;
  config.shared_dim = 6;
  config.event_hidden = 8;
  config.epochs = 1;
  return config;
}

EventScores MakeScores(double b, std::vector<float> theta) {
  EventScores scores;
  scores.existence = {b};
  scores.occupancy = {std::move(theta)};
  return scores;
}

std::vector<float> ThetaWithBump(int from, int to, float level = 0.9f) {
  std::vector<float> theta(kHorizon, 0.05f);
  for (int v = from; v <= to; ++v) theta[v - 1] = level;
  return theta;
}

class StrategiesTest : public ::testing::Test {
 protected:
  StrategiesTest()
      : model_(TinyConfig()),
        cclassify_(std::vector<std::vector<double>>{{0.1, 0.2, 0.3, 0.4}}),
        cregress_({{2, 2, 2}}, {{3, 3, 3}}, kHorizon) {}

  EventHitModel model_;
  CClassify cclassify_;
  CRegress cregress_;
};

TEST_F(StrategiesTest, NamesFollowVariantFlags) {
  EventHitStrategyOptions options;
  EXPECT_EQ(EventHitStrategy(&model_, nullptr, nullptr, options).name(),
            "EHO");
  options.use_cclassify = true;
  EXPECT_EQ(EventHitStrategy(&model_, &cclassify_, nullptr, options).name(),
            "EHC");
  options.use_cclassify = false;
  options.use_cregress = true;
  EXPECT_EQ(EventHitStrategy(&model_, nullptr, &cregress_, options).name(),
            "EHR");
  options.use_cclassify = true;
  EXPECT_EQ(
      EventHitStrategy(&model_, &cclassify_, &cregress_, options).name(),
      "EHCR");
}

TEST_F(StrategiesTest, EhoThresholdsExistenceAtTau1) {
  EventHitStrategyOptions options;
  options.tau1 = 0.5;
  const EventHitStrategy strategy(&model_, nullptr, nullptr, options);
  const auto positive =
      strategy.DecideFromScores(MakeScores(0.6, ThetaWithBump(5, 9)));
  EXPECT_TRUE(positive.exists[0]);
  EXPECT_EQ(positive.intervals[0], (sim::Interval{5, 9}));
  const auto negative =
      strategy.DecideFromScores(MakeScores(0.4, ThetaWithBump(5, 9)));
  EXPECT_FALSE(negative.exists[0]);
  EXPECT_TRUE(negative.intervals[0].empty());
}

TEST_F(StrategiesTest, EhcUsesConformalExistence) {
  EventHitStrategyOptions options;
  options.use_cclassify = true;
  options.confidence = 0.9;
  EventHitStrategy strategy(&model_, &cclassify_, nullptr, options);
  // b = 0.75 -> a = 0.25 -> p = (2+1)/5 = 0.6 >= 1-0.9: positive even
  // though a tau1-style threshold at 0.8 would reject it.
  const auto decision =
      strategy.DecideFromScores(MakeScores(0.75, ThetaWithBump(3, 6)));
  EXPECT_TRUE(decision.exists[0]);
  // At c = 0.3: 0.6 < 1 - 0.3 -> negative.
  strategy.set_confidence(0.3);
  EXPECT_FALSE(
      strategy.DecideFromScores(MakeScores(0.75, ThetaWithBump(3, 6)))
          .exists[0]);
}

TEST_F(StrategiesTest, EhrWidensIntervals) {
  EventHitStrategyOptions options;
  options.use_cregress = true;
  options.coverage = 0.9;
  const EventHitStrategy strategy(&model_, nullptr, &cregress_, options);
  const auto decision =
      strategy.DecideFromScores(MakeScores(0.9, ThetaWithBump(8, 12)));
  ASSERT_TRUE(decision.exists[0]);
  EXPECT_EQ(decision.intervals[0], (sim::Interval{6, 15}));
}

TEST_F(StrategiesTest, EhcrCombinesBoth) {
  EventHitStrategyOptions options;
  options.use_cclassify = true;
  options.use_cregress = true;
  options.confidence = 0.9;
  options.coverage = 0.9;
  const EventHitStrategy strategy(&model_, &cclassify_, &cregress_, options);
  const auto decision =
      strategy.DecideFromScores(MakeScores(0.75, ThetaWithBump(8, 12)));
  ASSERT_TRUE(decision.exists[0]);
  EXPECT_EQ(decision.intervals[0], (sim::Interval{6, 15}));
}

TEST_F(StrategiesTest, AbsentEventHasEmptyInterval) {
  EventHitStrategyOptions options;
  options.use_cclassify = true;
  options.confidence = 0.05;  // Nearly impossible to predict positive.
  const EventHitStrategy strategy(&model_, &cclassify_, &cregress_, options);
  const auto decision =
      strategy.DecideFromScores(MakeScores(0.3, ThetaWithBump(8, 12)));
  EXPECT_FALSE(decision.exists[0]);
  EXPECT_TRUE(decision.intervals[0].empty());
}

TEST_F(StrategiesTest, MissingCalibratorsDie) {
  EventHitStrategyOptions options;
  options.use_cclassify = true;
  EXPECT_DEATH(EventHitStrategy(&model_, nullptr, nullptr, options),
               "CHECK failed");
  options.use_cclassify = false;
  options.use_cregress = true;
  EXPECT_DEATH(EventHitStrategy(&model_, nullptr, nullptr, options),
               "CHECK failed");
}

TEST_F(StrategiesTest, DecideRunsModelEndToEnd) {
  EventHitStrategyOptions options;
  const EventHitStrategy strategy(&model_, nullptr, nullptr, options);
  data::Record record;
  record.covariates.assign(4 * 2, 0.5f);
  record.labels.resize(1);
  const MarshalDecision decision = strategy.Decide(record);
  EXPECT_EQ(decision.exists.size(), 1u);
  EXPECT_EQ(decision.intervals.size(), 1u);
  if (decision.exists[0]) {
    EXPECT_GE(decision.intervals[0].start, 1);
    EXPECT_LE(decision.intervals[0].end, kHorizon);
  }
}

}  // namespace
}  // namespace eventhit::core
