#include "core/recalibrator.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace eventhit::core {
namespace {

constexpr int kWindow = 4;
constexpr int kHorizon = 15;
constexpr size_t kDim = 2;

EventHitConfig TinyConfig() {
  EventHitConfig config;
  config.collection_window = kWindow;
  config.horizon = kHorizon;
  config.feature_dim = kDim;
  config.num_events = 1;
  config.lstm_hidden = 6;
  config.shared_dim = 6;
  config.event_hidden = 8;
  config.epochs = 2;
  return config;
}

data::Record RecordWithLabel(bool present, float level, Rng& rng) {
  data::Record record;
  record.covariates.resize(kWindow * kDim);
  for (auto& v : record.covariates) {
    v = level + static_cast<float>(rng.Gaussian(0, 0.05));
  }
  data::EventLabel label;
  if (present) {
    label.present = true;
    label.start = 3;
    label.end = 8;
  }
  record.labels.push_back(label);
  return record;
}

TEST(RecalibratorTest, WindowEvictsOldestAtCapacity) {
  EventHitModel model(TinyConfig());
  Recalibrator recalibrator(&model, 5);
  Rng rng(1);
  for (int i = 0; i < 8; ++i) {
    recalibrator.AddLabeledRecord(RecordWithLabel(i >= 3, 0.5f, rng));
  }
  EXPECT_EQ(recalibrator.size(), 5u);
  // The first 3 (negative) records were evicted: all remaining positive.
  EXPECT_EQ(recalibrator.PositiveCount(0), 5u);
}

TEST(RecalibratorTest, BuildsWorkingCalibrators) {
  EventHitModel model(TinyConfig());
  Recalibrator recalibrator(&model, 50);
  Rng rng(2);
  for (int i = 0; i < 30; ++i) {
    recalibrator.AddLabeledRecord(
        RecordWithLabel(rng.Bernoulli(0.5), 0.5f, rng));
  }
  const auto cclassify = recalibrator.BuildCClassify();
  ASSERT_NE(cclassify, nullptr);
  EXPECT_EQ(cclassify->num_events(), 1u);
  EXPECT_EQ(cclassify->CalibrationSize(0), recalibrator.PositiveCount(0));

  const auto cregress = recalibrator.BuildCRegress();
  ASSERT_NE(cregress, nullptr);
  EXPECT_EQ(cregress->CalibrationSize(0), recalibrator.PositiveCount(0));
}

TEST(RecalibratorTest, RecalibrationTracksScoreShift) {
  // Simulate post-drift behaviour: the fresh window contains records whose
  // b-scores differ from an old calibration; predictions at the same c
  // must follow the *window's* score distribution.
  EventHitModel model(TinyConfig());
  Recalibrator recalibrator(&model, 100);
  Rng rng(3);
  // Window of positives with low input levels (model scores them however
  // it does — the p-values must be internally consistent).
  for (int i = 0; i < 60; ++i) {
    recalibrator.AddLabeledRecord(RecordWithLabel(true, 0.2f, rng));
  }
  const auto calibrated = recalibrator.BuildCClassify();
  // A fresh record from the same regime: its p-value should not be extreme
  // (it is exchangeable with the window).
  const data::Record probe = RecordWithLabel(true, 0.2f, rng);
  const auto p = calibrated->PValues(model.Predict(probe));
  EXPECT_GT(p[0], 0.02);
  EXPECT_LE(p[0], 1.0);
}

TEST(RecalibratorTest, ClearEmptiesWindow) {
  EventHitModel model(TinyConfig());
  Recalibrator recalibrator(&model, 10);
  Rng rng(4);
  recalibrator.AddLabeledRecord(RecordWithLabel(true, 0.5f, rng));
  recalibrator.Clear();
  EXPECT_EQ(recalibrator.size(), 0u);
  EXPECT_EQ(recalibrator.PositiveCount(0), 0u);
}

TEST(RecalibratorTest, CanRebuildGuardsSmallWindows) {
  EventHitModel model(TinyConfig());
  Recalibrator recalibrator(&model, 10);
  Rng rng(5);
  // Empty window: nothing to rebuild from.
  EXPECT_FALSE(recalibrator.CanRebuild(1, 1));
  // Negatives-only window: min_records can be met but a positive never is
  // (an empty positive set would make C-CLASSIFY answer p == 1 always).
  recalibrator.AddLabeledRecord(RecordWithLabel(false, 0.5f, rng));
  recalibrator.AddLabeledRecord(RecordWithLabel(false, 0.5f, rng));
  EXPECT_FALSE(recalibrator.CanRebuild(1, 1));
  EXPECT_FALSE(recalibrator.CanRebuild(2, 1));
  // One positive: the (1, 1) floor passes, stricter floors still refuse.
  recalibrator.AddLabeledRecord(RecordWithLabel(true, 0.5f, rng));
  EXPECT_TRUE(recalibrator.CanRebuild(1, 1));
  EXPECT_TRUE(recalibrator.CanRebuild(3, 1));
  EXPECT_FALSE(recalibrator.CanRebuild(1, 2));
  EXPECT_FALSE(recalibrator.CanRebuild(4, 1));
}

TEST(RecalibratorTest, DegenerateWindowRebuildsDie) {
  EventHitModel model(TinyConfig());
  Recalibrator empty(&model, 10);
  EXPECT_DEATH(empty.BuildCClassify(), "CHECK failed");
  EXPECT_DEATH(empty.BuildCRegress(), "CHECK failed");

  Recalibrator negatives_only(&model, 10);
  Rng rng(6);
  negatives_only.AddLabeledRecord(RecordWithLabel(false, 0.5f, rng));
  EXPECT_DEATH(negatives_only.BuildCClassify(), "CHECK failed");
  EXPECT_DEATH(negatives_only.BuildCRegress(), "CHECK failed");
}

TEST(RecalibratorTest, Validation) {
  EventHitModel model(TinyConfig());
  EXPECT_DEATH(Recalibrator(nullptr, 10), "CHECK failed");
  EXPECT_DEATH(Recalibrator(&model, 0), "CHECK failed");
  Recalibrator recalibrator(&model, 10);
  data::Record wrong_arity;
  wrong_arity.labels.resize(2);
  EXPECT_DEATH(recalibrator.AddLabeledRecord(wrong_arity), "CHECK failed");
}

}  // namespace
}  // namespace eventhit::core
