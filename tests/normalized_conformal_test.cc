// Tests of the normalized conformal regressor and its EventHit wrapper
// (adaptive C-REGRESS).
#include <cmath>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "conformal/normalized_conformal_regressor.h"
#include "core/adaptive_c_regress.h"

namespace eventhit::conformal {
namespace {

TEST(NormalizedConformalTest, QuantileOverRatios) {
  // Residuals {2, 8}, difficulties {1, 4} -> ratios {2, 2}.
  NormalizedConformalRegressor regressor({2.0, 8.0}, {1.0, 4.0});
  EXPECT_DOUBLE_EQ(regressor.Quantile(0.5), 2.0);
  EXPECT_DOUBLE_EQ(regressor.Quantile(1.0), 2.0);
}

TEST(NormalizedConformalTest, BandScalesWithDifficulty) {
  NormalizedConformalRegressor regressor({1.0, 2.0, 3.0}, {1.0, 1.0, 1.0});
  const PredictionBand easy = regressor.Band(10.0, 0.5, 1.0);
  const PredictionBand hard = regressor.Band(10.0, 4.0, 1.0);
  EXPECT_DOUBLE_EQ(easy.hi - easy.lo, 3.0);   // q=3, sigma=0.5 -> width 1.5*2
  EXPECT_DOUBLE_EQ(hard.hi - hard.lo, 24.0);  // sigma=4 -> width 12*2
}

TEST(NormalizedConformalTest, EmptyCalibrationZeroWidth) {
  NormalizedConformalRegressor regressor({}, {});
  const PredictionBand band = regressor.Band(5.0, 2.0, 0.9);
  EXPECT_DOUBLE_EQ(band.lo, 5.0);
  EXPECT_DOUBLE_EQ(band.hi, 5.0);
}

TEST(NormalizedConformalTest, Validation) {
  EXPECT_DEATH(NormalizedConformalRegressor({1.0}, {}), "CHECK failed");
  EXPECT_DEATH(NormalizedConformalRegressor({1.0}, {0.0}), "CHECK failed");
  EXPECT_DEATH(NormalizedConformalRegressor({-1.0}, {1.0}), "CHECK failed");
}

// Coverage property with heteroscedastic noise: the normalized bands cover
// at >= alpha while being narrower than the fixed bands on easy examples.
class NormalizedCoverageTest : public ::testing::TestWithParam<double> {};

TEST_P(NormalizedCoverageTest, CoversAndAdapts) {
  const double alpha = GetParam();
  Rng rng(31);
  // y = noise with std sigma(x); sigma known to the difficulty oracle.
  auto draw = [&](double sigma) { return rng.Gaussian(0.0, sigma); };
  std::vector<double> residuals, difficulties;
  for (int i = 0; i < 600; ++i) {
    const double sigma = rng.Uniform(0.5, 5.0);
    residuals.push_back(std::fabs(draw(sigma)));
    difficulties.push_back(sigma);
  }
  const NormalizedConformalRegressor normalized(residuals, difficulties);
  const SplitConformalRegressor fixed(residuals);

  int covered = 0;
  double easy_width_normalized = 0.0;
  double easy_width_fixed = 0.0;
  const int trials = 4000;
  for (int i = 0; i < trials; ++i) {
    const double sigma = rng.Uniform(0.5, 5.0);
    const double y = draw(sigma);
    const PredictionBand band = normalized.Band(0.0, sigma, alpha);
    if (y >= band.lo && y <= band.hi) ++covered;
    if (sigma < 1.0) {
      easy_width_normalized += band.hi - band.lo;
      easy_width_fixed += fixed.Band(0.0, alpha).hi - fixed.Band(0.0, alpha).lo;
    }
  }
  EXPECT_GE(static_cast<double>(covered) / trials, alpha - 0.03);
  // Easy examples get much narrower bands than one-size-fits-all.
  EXPECT_LT(easy_width_normalized, 0.5 * easy_width_fixed);
}

INSTANTIATE_TEST_SUITE_P(Coverage, NormalizedCoverageTest,
                         ::testing::Values(0.5, 0.8, 0.9));

}  // namespace
}  // namespace eventhit::conformal

namespace eventhit::core {
namespace {

TEST(IntervalDifficultyTest, GrowsWithEnvelopeWidth) {
  std::vector<float> narrow(50, 0.1f);
  narrow[10] = 0.9f;
  std::vector<float> wide(50, 0.1f);
  for (int v = 5; v < 45; ++v) wide[v] = 0.9f;
  EXPECT_LT(IntervalDifficulty(narrow, 0.5), IntervalDifficulty(wide, 0.5));
  EXPECT_GE(IntervalDifficulty(narrow, 0.5), 1.0);
}

TEST(AdaptiveCRegressTest, WidensConfidentRecordsLess) {
  // Build a model (untrained is fine: we exercise the calibration and
  // adjustment mechanics, not accuracy) and calibration records.
  EventHitConfig config;
  config.collection_window = 4;
  config.horizon = 60;
  config.feature_dim = 2;
  config.num_events = 1;
  config.epochs = 1;
  EventHitModel model(config);
  Rng rng(5);
  std::vector<data::Record> calibration;
  for (int i = 0; i < 40; ++i) {
    data::Record record;
    record.covariates.resize(4 * 2);
    for (auto& v : record.covariates) v = static_cast<float>(rng.Uniform());
    data::EventLabel label;
    label.present = true;
    label.start = static_cast<int>(rng.UniformInt(1, 30));
    label.end = label.start + 10;
    record.labels.push_back(label);
    calibration.push_back(std::move(record));
  }
  const AdaptiveCRegress adaptive(model, calibration, 0.5);
  ASSERT_GT(adaptive.CalibrationSize(0), 0u);

  std::vector<float> crisp(60, 0.1f);
  crisp[20] = 0.9f;
  std::vector<float> diffuse(60, 0.1f);
  for (int v = 5; v < 55; ++v) diffuse[v] = 0.9f;
  const sim::Interval estimate{25, 35};
  const sim::Interval crisp_adjusted =
      adaptive.Adjust(0, estimate, crisp, 0.9);
  const sim::Interval diffuse_adjusted =
      adaptive.Adjust(0, estimate, diffuse, 0.9);
  EXPECT_LE(crisp_adjusted.length(), diffuse_adjusted.length());
  EXPECT_LE(crisp_adjusted.start, estimate.start);
  EXPECT_GE(crisp_adjusted.end, estimate.end);
  EXPECT_GE(crisp_adjusted.start, 1);
  EXPECT_LE(diffuse_adjusted.end, 60);
}

TEST(AdaptiveCRegressTest, AlphaMonotone) {
  EventHitConfig config;
  config.collection_window = 4;
  config.horizon = 60;
  config.feature_dim = 2;
  config.num_events = 1;
  config.epochs = 1;
  EventHitModel model(config);
  Rng rng(7);
  std::vector<data::Record> calibration;
  for (int i = 0; i < 30; ++i) {
    data::Record record;
    record.covariates.assign(8, static_cast<float>(rng.Uniform()));
    data::EventLabel label;
    label.present = true;
    label.start = 10;
    label.end = 20;
    record.labels.push_back(label);
    calibration.push_back(std::move(record));
  }
  const AdaptiveCRegress adaptive(model, calibration, 0.5);
  std::vector<float> theta(60, 0.1f);
  theta[30] = 0.9f;
  const sim::Interval estimate{28, 33};
  int64_t previous = 0;
  for (double alpha : {0.2, 0.5, 0.8, 0.95}) {
    const sim::Interval adjusted = adaptive.Adjust(0, estimate, theta, alpha);
    EXPECT_GE(adjusted.length(), previous);
    previous = adjusted.length();
  }
}

}  // namespace
}  // namespace eventhit::core
