#include "nn/mlp.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "gradient_check.h"
#include "nn/loss.h"

namespace eventhit::nn {
namespace {

TEST(MlpTest, SingleLayerIsAffine) {
  Rng rng(1);
  Mlp mlp("m", {3, 2}, rng);
  EXPECT_EQ(mlp.in_dim(), 3u);
  EXPECT_EQ(mlp.out_dim(), 2u);
  EXPECT_EQ(mlp.layers().size(), 1u);
}

TEST(MlpTest, ForwardCachedMatchesEvalForward) {
  Rng rng(2);
  Mlp mlp("m", {4, 8, 3}, rng);
  Rng data_rng(3);
  Vec x(4);
  for (auto& v : x) v = static_cast<float>(data_rng.Gaussian());
  Vec cached, eval;
  mlp.ForwardCached(x.data(), cached);
  mlp.Forward(x.data(), eval);
  ASSERT_EQ(cached.size(), eval.size());
  for (size_t i = 0; i < cached.size(); ++i) {
    EXPECT_NEAR(cached[i], eval[i], 1e-6);
  }
}

TEST(MlpTest, ParameterCountsAcrossLayers) {
  Rng rng(4);
  Mlp mlp("m", {5, 7, 2}, rng);
  ParameterRefs params;
  mlp.CollectParameters(params);
  // Two layers x (W, b).
  ASSERT_EQ(params.size(), 4u);
  EXPECT_EQ(ParameterCount(params), 5u * 7 + 7 + 7 * 2 + 2);
}

TEST(MlpTest, DeepGradientsMatchFiniteDifferences) {
  Rng rng(5);
  Mlp mlp("m", {3, 6, 4, 2}, rng);
  Rng data_rng(6);
  Vec x(3);
  for (auto& v : x) v = static_cast<float>(data_rng.Gaussian());
  const Vec targets = {1.0f, 0.0f};
  const Vec weights = {1.0f, 2.0f};

  auto loss_fn = [&]() {
    Vec logits;
    mlp.Forward(x.data(), logits);
    Vec scratch(2);
    return BceWithLogitsVector(logits.data(), targets.data(), weights.data(),
                               2, scratch.data());
  };

  ParameterRefs params;
  mlp.CollectParameters(params);
  ZeroGradients(params);
  Vec logits;
  mlp.ForwardCached(x.data(), logits);
  Vec dlogits(2);
  BceWithLogitsVector(logits.data(), targets.data(), weights.data(), 2,
                      dlogits.data());
  Vec dx(3, 0.0f);
  mlp.Backward(x.data(), dlogits.data(), dx.data());

  ExpectParameterGradientsMatch(params, loss_fn);
}

TEST(MlpTest, InputGradientMatchesFiniteDifferences) {
  Rng rng(7);
  Mlp mlp("m", {2, 5, 1}, rng);
  Rng data_rng(8);
  Vec x(2);
  for (auto& v : x) v = static_cast<float>(data_rng.Gaussian());
  const Vec targets = {1.0f};
  const Vec weights = {1.0f};

  auto loss_fn = [&]() {
    Vec logits;
    mlp.Forward(x.data(), logits);
    Vec scratch(1);
    return BceWithLogitsVector(logits.data(), targets.data(), weights.data(),
                               1, scratch.data());
  };

  Vec logits;
  mlp.ForwardCached(x.data(), logits);
  Vec dlogits(1);
  BceWithLogitsVector(logits.data(), targets.data(), weights.data(), 1,
                      dlogits.data());
  Vec dx(2, 0.0f);
  mlp.Backward(x.data(), dlogits.data(), dx.data());

  const double eps = 1e-3;
  for (size_t i = 0; i < x.size(); ++i) {
    const float saved = x[i];
    x[i] = saved + static_cast<float>(eps);
    const double up = loss_fn();
    x[i] = saved - static_cast<float>(eps);
    const double down = loss_fn();
    x[i] = saved;
    EXPECT_NEAR(dx[i], (up - down) / (2 * eps), 2e-2);
  }
}

}  // namespace
}  // namespace eventhit::nn
