// Tests of the footnote-1 extension: multiple occurrence instances of the
// same event type within one horizon.
#include <gtest/gtest.h>

#include "core/interval_extraction.h"
#include "sim/synthetic_video.h"

namespace eventhit::core {
namespace {

TEST(MultiInstanceExtractionTest, SplitsSeparatedRuns) {
  std::vector<float> theta(20, 0.1f);
  for (int v = 3; v <= 5; ++v) theta[v - 1] = 0.9f;
  for (int v = 12; v <= 15; ++v) theta[v - 1] = 0.8f;
  const auto intervals = ExtractOccurrenceIntervals(theta, 0.5, 2);
  ASSERT_EQ(intervals.size(), 2u);
  EXPECT_EQ(intervals[0], (sim::Interval{3, 5}));
  EXPECT_EQ(intervals[1], (sim::Interval{12, 15}));
}

TEST(MultiInstanceExtractionTest, MergesCloseRuns) {
  std::vector<float> theta(20, 0.1f);
  for (int v = 3; v <= 5; ++v) theta[v - 1] = 0.9f;
  for (int v = 7; v <= 9; ++v) theta[v - 1] = 0.9f;  // Gap of 1 frame (v=6).
  const auto merged = ExtractOccurrenceIntervals(theta, 0.5, 2);
  ASSERT_EQ(merged.size(), 1u);
  EXPECT_EQ(merged[0], (sim::Interval{3, 9}));
  // min_gap = 1 keeps them separate.
  const auto split = ExtractOccurrenceIntervals(theta, 0.5, 1);
  ASSERT_EQ(split.size(), 2u);
}

TEST(MultiInstanceExtractionTest, EmptyWhenNothingClears) {
  const std::vector<float> theta(10, 0.2f);
  EXPECT_TRUE(ExtractOccurrenceIntervals(theta, 0.5).empty());
}

TEST(MultiInstanceExtractionTest, RunsTouchingBoundaries) {
  std::vector<float> theta(10, 0.1f);
  theta[0] = 0.9f;
  theta[9] = 0.9f;
  const auto intervals = ExtractOccurrenceIntervals(theta, 0.5, 1);
  ASSERT_EQ(intervals.size(), 2u);
  EXPECT_EQ(intervals[0], (sim::Interval{1, 1}));
  EXPECT_EQ(intervals[1], (sim::Interval{10, 10}));
}

TEST(MultiInstanceExtractionTest, SingleInstanceAgreesWithEqSix) {
  // With exactly one run, the multi-instance extraction and the paper's
  // min/max extraction coincide.
  std::vector<float> theta(30, 0.2f);
  for (int v = 8; v <= 17; ++v) theta[v - 1] = 0.7f;
  const auto intervals = ExtractOccurrenceIntervals(theta, 0.5);
  const sim::Interval single = ExtractOccurrenceInterval(theta, 0.5);
  ASSERT_EQ(intervals.size(), 1u);
  EXPECT_EQ(intervals[0], single);
}

TEST(MultiInstanceExtractionTest, SpanOfAllRunsMatchesEqSix) {
  // Eq. (6) is the envelope [min run start, max run end] of the runs.
  std::vector<float> theta(30, 0.1f);
  for (int v = 4; v <= 6; ++v) theta[v - 1] = 0.9f;
  for (int v = 20; v <= 22; ++v) theta[v - 1] = 0.9f;
  const auto intervals = ExtractOccurrenceIntervals(theta, 0.5, 1);
  const sim::Interval envelope = ExtractOccurrenceInterval(theta, 0.5);
  ASSERT_EQ(intervals.size(), 2u);
  EXPECT_EQ(envelope.start, intervals.front().start);
  EXPECT_EQ(envelope.end, intervals.back().end);
  // The multi-instance mode relays strictly fewer frames here.
  int64_t multi_frames = 0;
  for (const auto& interval : intervals) multi_frames += interval.length();
  EXPECT_LT(multi_frames, envelope.length());
}

TEST(MultiInstanceExtractionTest, Validation) {
  EXPECT_DEATH(ExtractOccurrenceIntervals({}, 0.5), "CHECK failed");
  EXPECT_DEATH(ExtractOccurrenceIntervals({0.5f}, 0.5, 0), "CHECK failed");
}

}  // namespace
}  // namespace eventhit::core

namespace eventhit::sim {
namespace {

TEST(ShiftedStreamTest, ConcatenatesRegimes) {
  DatasetSpec before;
  before.name = "before";
  before.num_frames = 20000;
  EventTypeSpec ev;
  ev.name = "e";
  ev.mean_gap = 900.0;
  ev.duration_mean = 50.0;
  ev.duration_std = 10.0;
  before.events.push_back(ev);

  DatasetSpec after = before;
  after.name = "after";
  after.num_frames = 20000;
  after.events[0].mean_gap = 200.0;  // Events arrive ~4x as often.

  const SyntheticVideo video =
      SyntheticVideo::GenerateWithShift(before, after, 5);
  EXPECT_EQ(video.num_frames(), 40000);
  EXPECT_EQ(video.shift_frame(), 20000);

  // Occurrence density must jump at the shift point.
  int64_t early = 0, late = 0;
  for (const Interval& occ : video.timeline().occurrences(0)) {
    EXPECT_GE(occ.start, 0);
    EXPECT_LT(occ.end, 40000);
    (occ.start < 20000 ? early : late) += 1;
  }
  EXPECT_GT(late, 2 * early);

  // Features are continuous (valid) across the boundary.
  for (int64_t t = 19990; t < 20010; ++t) {
    for (size_t c = 0; c < video.feature_dim(); ++c) {
      const float v = video.FrameFeatures(t)[c];
      EXPECT_GE(v, 0.0f);
      EXPECT_LE(v, 1.6f);
    }
  }
  // Object counts accessible across the whole concatenated stream.
  EXPECT_GE(video.ObjectCount(0, 39999), 0.0);
}

TEST(ShiftedStreamTest, ActionUnitsCoverBothRegimes) {
  DatasetSpec spec;
  spec.num_frames = 15000;
  EventTypeSpec ev;
  ev.name = "e";
  ev.mean_gap = 500.0;
  spec.events.push_back(ev);
  const SyntheticVideo video =
      SyntheticVideo::GenerateWithShift(spec, spec, 9);
  bool any_late = false;
  for (const ActionUnit& unit : video.action_units()) {
    any_late = any_late || unit.interval.start >= 15000;
  }
  EXPECT_TRUE(any_late);
}

TEST(ShiftedStreamTest, MismatchedSpecsDie) {
  DatasetSpec a;
  a.num_frames = 1000;
  a.events.emplace_back();
  a.events[0].duration_mean = 20;
  DatasetSpec b = a;
  b.events.emplace_back();
  b.events[1].duration_mean = 20;
  EXPECT_DEATH(SyntheticVideo::GenerateWithShift(a, b, 1), "CHECK failed");
}

}  // namespace
}  // namespace eventhit::sim
