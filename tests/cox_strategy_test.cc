#include "baselines/cox_strategy.h"

#include <cmath>

#include <gtest/gtest.h>

#include "common/rng.h"

namespace eventhit::baselines {
namespace {

constexpr int kWindow = 5;
constexpr int kHorizon = 50;
constexpr size_t kFeatureDim = 3;

// Toy survival problem: channel 0 level drives the time-to-start; high
// level -> early event.
data::Record MakeRecord(double level, Rng& rng) {
  data::Record record;
  record.covariates.resize(kWindow * kFeatureDim);
  for (int m = 0; m < kWindow; ++m) {
    float* row = record.covariates.data() + m * kFeatureDim;
    row[0] = static_cast<float>(level + rng.Gaussian(0.0, 0.05));
    row[1] = static_cast<float>(rng.Uniform());
    row[2] = 0.3f;
  }
  data::EventLabel label;
  const double rate = 0.01 * std::exp(2.0 * level);
  const double draw = rng.Exponential(1.0 / rate);
  if (draw < kHorizon - 5) {
    label.present = true;
    label.start = std::max(1, static_cast<int>(draw));
    label.end = std::min(kHorizon, label.start + 4);
  }
  record.labels.push_back(label);
  return record;
}

std::vector<data::Record> MakeDataset(size_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<data::Record> records;
  for (size_t i = 0; i < n; ++i) {
    records.push_back(MakeRecord(rng.Uniform(), rng));
  }
  return records;
}

TEST(CoxCovariatesTest, LastFrameAndWindowMean) {
  Rng rng(1);
  data::Record record;
  record.covariates.resize(kWindow * kFeatureDim);
  for (size_t i = 0; i < record.covariates.size(); ++i) {
    record.covariates[i] = static_cast<float>(i);
  }
  const auto covariates = CoxCovariates(record, kWindow, kFeatureDim);
  ASSERT_EQ(covariates.size(), 2 * kFeatureDim);
  // Last frame is the final row: 12, 13, 14.
  EXPECT_DOUBLE_EQ(covariates[0], 12.0);
  EXPECT_DOUBLE_EQ(covariates[2], 14.0);
  // Window means of channel 0: (0+3+6+9+12)/5 = 6.
  EXPECT_NEAR(covariates[3], 6.0, 1e-9);
}

TEST(CoxStrategyTest, FitAndPredictEndToEnd) {
  const auto training = MakeDataset(600, 7);
  auto fitted = CoxStrategy::Fit(training, kWindow, kFeatureDim, kHorizon);
  ASSERT_TRUE(fitted.ok()) << fitted.status();
  CoxStrategy& strategy = fitted.value();
  strategy.set_threshold(0.5);

  Rng rng(9);
  // High-risk record: early predicted start; interval runs to horizon end.
  const auto high = strategy.Decide(MakeRecord(0.95, rng));
  ASSERT_EQ(high.exists.size(), 1u);
  if (high.exists[0]) {
    EXPECT_EQ(high.intervals[0].end, kHorizon);
    EXPECT_GE(high.intervals[0].start, 1);
  }

  // Risk ordering: averaged over draws, high level predicts existence more
  // often and earlier than low level.
  int high_hits = 0, low_hits = 0;
  int64_t high_start = 0, low_start = 0;
  for (int i = 0; i < 40; ++i) {
    const auto h = strategy.Decide(MakeRecord(0.95, rng));
    const auto l = strategy.Decide(MakeRecord(0.05, rng));
    if (h.exists[0]) {
      ++high_hits;
      high_start += h.intervals[0].start;
    }
    if (l.exists[0]) {
      ++low_hits;
      low_start += l.intervals[0].start;
    }
  }
  EXPECT_GT(high_hits, low_hits);
  if (high_hits > 0 && low_hits > 0) {
    EXPECT_LT(high_start / high_hits, low_start / low_hits);
  }
}

TEST(CoxStrategyTest, ThresholdSweepIsMonotone) {
  const auto training = MakeDataset(400, 11);
  auto fitted = CoxStrategy::Fit(training, kWindow, kFeatureDim, kHorizon);
  ASSERT_TRUE(fitted.ok());
  CoxStrategy& strategy = fitted.value();
  Rng rng(13);
  const data::Record probe = MakeRecord(0.7, rng);
  int64_t previous_length = kHorizon + 1;
  for (double tau : {0.1, 0.3, 0.5, 0.7, 0.9}) {
    strategy.set_threshold(tau);
    const auto decision = strategy.Decide(probe);
    const int64_t length =
        decision.exists[0] ? decision.intervals[0].length() : 0;
    // Higher threshold -> later start (or no prediction) -> shorter relay.
    EXPECT_LE(length, previous_length);
    previous_length = length;
  }
}

TEST(CoxStrategyTest, EmptyTrainingRejected) {
  EXPECT_FALSE(CoxStrategy::Fit({}, kWindow, kFeatureDim, kHorizon).ok());
}

TEST(CoxStrategyTest, NameIsCox) {
  const auto training = MakeDataset(200, 17);
  auto fitted = CoxStrategy::Fit(training, kWindow, kFeatureDim, kHorizon);
  ASSERT_TRUE(fitted.ok());
  EXPECT_EQ(fitted.value().name(), "COX");
}

}  // namespace
}  // namespace eventhit::baselines
