#include "eval/hyper_search.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace eventhit::eval {
namespace {

constexpr int kWindow = 5;
constexpr int kHorizon = 20;
constexpr size_t kDim = 3;

// The same toy problem as the model tests: channel 0 level drives both
// existence and location.
data::Record ToyRecord(double level, Rng& rng) {
  data::Record record;
  record.covariates.resize(kWindow * kDim);
  for (int m = 0; m < kWindow; ++m) {
    float* row = record.covariates.data() + m * kDim;
    row[0] = static_cast<float>(level + rng.Gaussian(0, 0.03));
    row[1] = static_cast<float>(rng.Uniform());
    row[2] = 0.5f;
  }
  data::EventLabel label;
  if (level > 0.4) {
    label.present = true;
    label.start = std::max(1, static_cast<int>((1.0 - level) * kHorizon));
    label.end = std::min(kHorizon, label.start + 4);
  }
  record.labels.push_back(label);
  return record;
}

std::vector<data::Record> ToyDataset(size_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<data::Record> records;
  for (size_t i = 0; i < n; ++i) records.push_back(ToyRecord(rng.Uniform(), rng));
  return records;
}

core::EventHitConfig BaseConfig() {
  core::EventHitConfig config;
  config.collection_window = kWindow;
  config.horizon = kHorizon;
  config.feature_dim = kDim;
  config.num_events = 1;
  config.lstm_hidden = 8;
  config.shared_dim = 8;
  config.event_hidden = 12;
  config.epochs = 8;
  return config;
}

HyperGrid TinyGrid() {
  HyperGrid grid;
  grid.lstm_hidden = {8};
  grid.event_hidden = {12};
  grid.learning_rate = {3e-3};
  grid.beta = {1.0, 2.0};
  grid.gamma = {0.5, 1.0};
  return grid;
}

TEST(HyperSearchTest, GridEnumeratesAllCombinations) {
  const auto train = ToyDataset(120, 1);
  const auto validation = ToyDataset(80, 2);
  const auto results = GridSearch(BaseConfig(), TinyGrid(), train, validation);
  EXPECT_EQ(results.size(), 4u);
  // Best first.
  for (size_t i = 1; i < results.size(); ++i) {
    EXPECT_GE(results[i - 1].objective, results[i].objective);
  }
}

TEST(HyperSearchTest, CandidateConfigsCarrySearchedValues) {
  const auto train = ToyDataset(100, 3);
  const auto validation = ToyDataset(60, 4);
  HyperGrid grid = TinyGrid();
  grid.beta = {2.5};
  grid.gamma = {0.25};
  const auto results = GridSearch(BaseConfig(), grid, train, validation);
  ASSERT_EQ(results.size(), 1u);
  ASSERT_EQ(results[0].config.beta.size(), 1u);
  EXPECT_DOUBLE_EQ(results[0].config.beta[0], 2.5);
  EXPECT_DOUBLE_EQ(results[0].config.gamma[0], 0.25);
}

TEST(HyperSearchTest, ObjectivePenalisesSpillage) {
  const auto train = ToyDataset(100, 5);
  const auto validation = ToyDataset(60, 6);
  HyperSearchOptions options;
  options.spillage_weight = 0.5;
  const auto result =
      EvaluateCandidate(BaseConfig(), train, validation, options);
  EXPECT_NEAR(result.objective,
              result.validation.rec - 0.5 * result.validation.spl, 1e-12);
}

TEST(HyperSearchTest, BestCandidateLearnsTheTask) {
  const auto train = ToyDataset(200, 7);
  const auto validation = ToyDataset(120, 8);
  const auto results = GridSearch(BaseConfig(), TinyGrid(), train, validation);
  EXPECT_GT(results.front().validation.rec, 0.5);
}

TEST(HyperSearchTest, RandomSearchSamplesRequestedCount) {
  const auto train = ToyDataset(100, 9);
  const auto validation = ToyDataset(60, 10);
  Rng rng(11);
  const auto results =
      RandomSearch(BaseConfig(), TinyGrid(), 3, train, validation, rng);
  EXPECT_EQ(results.size(), 3u);
  for (size_t i = 1; i < results.size(); ++i) {
    EXPECT_GE(results[i - 1].objective, results[i].objective);
  }
}

TEST(HyperSearchTest, EmptyInputsDie) {
  const auto records = ToyDataset(10, 12);
  EXPECT_DEATH(EvaluateCandidate(BaseConfig(), {}, records), "CHECK failed");
  EXPECT_DEATH(EvaluateCandidate(BaseConfig(), records, {}), "CHECK failed");
}

}  // namespace
}  // namespace eventhit::eval
