// End-to-end check of the pipeline instrumentation: drives a Marshaller
// (and a CloudService relay sink) against a private MetricsRegistry and
// asserts the frame-accounting invariant documented in docs/TELEMETRY.md:
//   marshaller.frames.relayed + marshaller.frames.filtered
//     == marshaller.frames.total
// plus consistency between the telemetry and the component's own stats.

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "cloud/cloud_service.h"
#include "core/marshaller.h"
#include "obs/metrics.h"
#include "obs/schema.h"
#include "sim/datasets.h"
#include "sim/synthetic_video.h"

namespace eventhit {
namespace {

constexpr int kWindow = 4;
constexpr int kHorizon = 10;
constexpr size_t kFeatureDim = 2;

// Alternates between a present prediction (with an interval that spills
// past the horizon boundary every other time) and an absent one, so the
// run exercises relay, filtering and the max(H, billed) spill case.
class AlternatingStrategy : public core::MarshalStrategy {
 public:
  std::string name() const override { return "alternating"; }

  core::MarshalDecision Decide(const data::Record&) const override {
    ++calls;
    core::MarshalDecision decision;
    if (calls % 3 == 0) {
      decision.exists = {false};
      decision.intervals = {sim::Interval::Empty()};
    } else if (calls % 3 == 1) {
      decision.exists = {true};
      decision.intervals = {sim::Interval{2, 5}};
    } else {
      // Wider than the horizon: billed = 12 > H = 10 (the spill case).
      decision.exists = {true};
      decision.intervals = {sim::Interval{1, 12}};
    }
    return decision;
  }

  mutable int calls = 0;
};

std::map<std::string, int64_t> CounterMap(obs::MetricsRegistry& registry) {
  std::map<std::string, int64_t> counters;
  for (const auto& counter : registry.Snapshot().counters) {
    counters[counter.name] = counter.value;
  }
  return counters;
}

TEST(ObsIntegrationTest, FrameAccountingInvariantHolds) {
  obs::MetricsRegistry registry;
  AlternatingStrategy strategy;
  core::Marshaller marshaller(&strategy, kWindow, kHorizon, kFeatureDim, 1,
                              &registry);
  const std::vector<float> frame(kFeatureDim, 0.5f);
  for (int64_t f = 0; f < 200; ++f) {
    marshaller.PushFrame(frame.data());
    // The invariant holds at *every* prediction boundary, not just at the
    // end of the stream.
    const auto counters = CounterMap(registry);
    EXPECT_EQ(counters.at(obs::names::kMarshallerFramesRelayed) +
                  counters.at(obs::names::kMarshallerFramesFiltered),
              counters.at(obs::names::kMarshallerFramesTotal));
  }

  const auto counters = CounterMap(registry);
  EXPECT_GT(counters.at(obs::names::kMarshallerFramesRelayed), 0);
  EXPECT_GT(counters.at(obs::names::kMarshallerFramesFiltered), 0);
  // Telemetry agrees with the component's own session stats.
  const core::MarshallerStats& stats = marshaller.stats();
  EXPECT_EQ(counters.at(obs::names::kMarshallerFramesRelayed),
            stats.frames_relayed);
  EXPECT_EQ(counters.at(obs::names::kMarshallerHorizonsPredicted),
            stats.horizons_predicted);
  EXPECT_EQ(counters.at(obs::names::kMarshallerRelayOrders),
            stats.relay_orders);
  EXPECT_EQ(counters.at(obs::names::kMarshallerEventsPredictedPresent) +
                counters.at(obs::names::kMarshallerEventsPredictedAbsent),
            stats.horizons_predicted);
  // Every horizon contributes at least H frames to the total (spilled
  // horizons contribute more).
  EXPECT_GE(counters.at(obs::names::kMarshallerFramesTotal),
            stats.horizons_predicted * kHorizon);
}

TEST(ObsIntegrationTest, CloudMetricsMirrorInvoice) {
  obs::MetricsRegistry registry;
  const sim::SyntheticVideo video = sim::SyntheticVideo::Generate(
      sim::MakeDatasetSpec(sim::DatasetId::kVirat), /*seed=*/7);
  cloud::CloudConfig config;
  cloud::CloudService service(&video, config, /*seed=*/11, &registry);

  AlternatingStrategy strategy;
  core::Marshaller marshaller(&strategy, kWindow, kHorizon, kFeatureDim, 1,
                              &registry);
  marshaller.set_relay_callback([&](const core::RelayOrder& order) {
    service.Detect(order.event, order.frames);
  });
  const std::vector<float> frame(kFeatureDim, 0.5f);
  for (int64_t f = 0; f < 100; ++f) {
    marshaller.PushFrame(frame.data());
  }

  const auto counters = CounterMap(registry);
  const cloud::Invoice& invoice = service.invoice();
  EXPECT_GT(invoice.requests, 0);
  EXPECT_EQ(counters.at(obs::names::kCloudRequests), invoice.requests);
  EXPECT_EQ(counters.at(obs::names::kCloudFramesProcessed),
            invoice.frames_processed);
  // Each relay order became exactly one cloud request.
  EXPECT_EQ(counters.at(obs::names::kMarshallerRelayOrders),
            invoice.requests);
  // The billed union equals the frames the cloud actually processed
  // (single event: union == per-order sum).
  EXPECT_EQ(counters.at(obs::names::kMarshallerFramesRelayed),
            invoice.frames_processed);

  for (const auto& gauge : registry.Snapshot().gauges) {
    if (gauge.name == obs::names::kCloudInvoiceCostUsd) {
      EXPECT_DOUBLE_EQ(gauge.value, invoice.total_cost_usd);
    }
    if (gauge.name == obs::names::kCloudInvoiceComputeSeconds) {
      EXPECT_DOUBLE_EQ(gauge.value, invoice.compute_seconds);
    }
  }
}

}  // namespace
}  // namespace eventhit
