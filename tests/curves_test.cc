#include "eval/curves.h"

#include <gtest/gtest.h>

namespace eventhit::eval {
namespace {

CurvePoint Point(double rec, double spl) {
  CurvePoint point;
  point.metrics.rec = rec;
  point.metrics.spl = spl;
  return point;
}

TEST(LinearGridTest, EndpointsAndSpacing) {
  const auto grid = LinearGrid(0.1, 0.9, 5);
  ASSERT_EQ(grid.size(), 5u);
  EXPECT_DOUBLE_EQ(grid.front(), 0.1);
  EXPECT_DOUBLE_EQ(grid.back(), 0.9);
  EXPECT_NEAR(grid[1] - grid[0], 0.2, 1e-12);
}

TEST(LinearGridTest, Validation) {
  EXPECT_DEATH(LinearGrid(0.0, 1.0, 1), "CHECK failed");
  EXPECT_DEATH(LinearGrid(1.0, 0.0, 3), "CHECK failed");
}

TEST(ParetoFrontierTest, RemovesDominatedPoints) {
  const auto frontier = ParetoFrontier({
      Point(0.5, 0.10),
      Point(0.6, 0.10),  // Dominates the previous (same SPL, more REC).
      Point(0.55, 0.20),  // Dominated: more SPL, less REC than (0.6, 0.1).
      Point(0.9, 0.40),
      Point(0.8, 0.50),  // Dominated.
  });
  ASSERT_EQ(frontier.size(), 2u);
  EXPECT_DOUBLE_EQ(frontier[0].metrics.rec, 0.6);
  EXPECT_DOUBLE_EQ(frontier[0].metrics.spl, 0.10);
  EXPECT_DOUBLE_EQ(frontier[1].metrics.rec, 0.9);
}

TEST(ParetoFrontierTest, SortedBySplAndStrictlyIncreasingRec) {
  const auto frontier = ParetoFrontier({
      Point(0.9, 0.4), Point(0.3, 0.05), Point(0.7, 0.2), Point(0.7, 0.3),
  });
  for (size_t i = 1; i < frontier.size(); ++i) {
    EXPECT_LE(frontier[i - 1].metrics.spl, frontier[i].metrics.spl);
    EXPECT_LT(frontier[i - 1].metrics.rec, frontier[i].metrics.rec);
  }
}

TEST(ParetoFrontierTest, EmptyInput) {
  EXPECT_TRUE(ParetoFrontier({}).empty());
}

TEST(MinSplAtRecallTest, FindsCheapestQualifyingPoint) {
  const std::vector<CurvePoint> points{
      Point(0.5, 0.05), Point(0.8, 0.2), Point(0.85, 0.15), Point(0.95, 0.6),
  };
  double spl = -1.0;
  ASSERT_TRUE(MinSplAtRecall(points, 0.8, &spl));
  EXPECT_DOUBLE_EQ(spl, 0.15);
  ASSERT_TRUE(MinSplAtRecall(points, 0.9, &spl));
  EXPECT_DOUBLE_EQ(spl, 0.6);
  EXPECT_FALSE(MinSplAtRecall(points, 0.99, &spl));
}

TEST(MinSplAtRecallTest, NullOutputPointerAllowed) {
  EXPECT_TRUE(MinSplAtRecall({Point(1.0, 0.3)}, 0.9, nullptr));
}

}  // namespace
}  // namespace eventhit::eval
