#include "eval/metrics.h"

#include <gtest/gtest.h>

namespace eventhit::eval {
namespace {

constexpr int kHorizon = 100;

data::Record RecordWithLabels(std::vector<data::EventLabel> labels) {
  data::Record record;
  record.labels = std::move(labels);
  return record;
}

data::EventLabel Present(int start, int end) {
  data::EventLabel label;
  label.present = true;
  label.start = start;
  label.end = end;
  return label;
}

core::MarshalDecision Decide(
    std::vector<std::pair<bool, sim::Interval>> per_event) {
  core::MarshalDecision decision;
  for (auto& [exists, interval] : per_event) {
    decision.exists.push_back(exists);
    decision.intervals.push_back(exists ? interval : sim::Interval::Empty());
  }
  return decision;
}

TEST(FrameRecallTest, FullPartialAndMiss) {
  const data::EventLabel label = Present(11, 20);
  EXPECT_DOUBLE_EQ(FrameRecall(label, true, sim::Interval{11, 20}), 1.0);
  EXPECT_DOUBLE_EQ(FrameRecall(label, true, sim::Interval{16, 30}), 0.5);
  EXPECT_DOUBLE_EQ(FrameRecall(label, true, sim::Interval{40, 60}), 0.0);
  EXPECT_DOUBLE_EQ(FrameRecall(label, false, sim::Interval::Empty()), 0.0);
}

TEST(MetricsTest, PerfectPredictionIsOptLike) {
  const auto records = std::vector<data::Record>{
      RecordWithLabels({Present(11, 20)}),
      RecordWithLabels({data::EventLabel{}}),
  };
  const auto decisions = std::vector<core::MarshalDecision>{
      Decide({{true, sim::Interval{11, 20}}}),
      Decide({{false, sim::Interval::Empty()}}),
  };
  const Metrics metrics = ComputeMetrics(records, decisions, kHorizon);
  EXPECT_DOUBLE_EQ(metrics.rec, 1.0);
  EXPECT_DOUBLE_EQ(metrics.spl, 0.0);
  EXPECT_DOUBLE_EQ(metrics.rec_c, 1.0);
  EXPECT_DOUBLE_EQ(metrics.rec_r, 1.0);
  EXPECT_EQ(metrics.relayed_frames, 10);
  EXPECT_EQ(metrics.positives, 1);
}

TEST(MetricsTest, BruteForceHasSplOne) {
  const auto records = std::vector<data::Record>{
      RecordWithLabels({Present(11, 20)}),
      RecordWithLabels({data::EventLabel{}}),
  };
  const auto decisions = std::vector<core::MarshalDecision>{
      Decide({{true, sim::Interval{1, kHorizon}}}),
      Decide({{true, sim::Interval{1, kHorizon}}}),
  };
  const Metrics metrics = ComputeMetrics(records, decisions, kHorizon);
  EXPECT_DOUBLE_EQ(metrics.rec, 1.0);
  // Positive record: excess 90 over (H - 10) = 90 -> 1. Negative: 100/100.
  EXPECT_DOUBLE_EQ(metrics.spl, 1.0);
}

TEST(MetricsTest, SplMatchesEquationThirteenByHand) {
  // Record A: event at [11,20], predicted [16,40]:
  //   excess = |[16,40] \ [11,20]| = 20; spl term = 20 / (100-10) = 2/9.
  // Record B: no event, predicted [1,50]: term = 50/100 = 0.5.
  // SPL = (2/9 + 0.5) / 2.
  const auto records = std::vector<data::Record>{
      RecordWithLabels({Present(11, 20)}),
      RecordWithLabels({data::EventLabel{}}),
  };
  const auto decisions = std::vector<core::MarshalDecision>{
      Decide({{true, sim::Interval{16, 40}}}),
      Decide({{true, sim::Interval{1, 50}}}),
  };
  const Metrics metrics = ComputeMetrics(records, decisions, kHorizon);
  EXPECT_NEAR(metrics.spl, (20.0 / 90.0 + 0.5) / 2.0, 1e-12);
  // REC: record A covered 5/10, record B has no positive pair.
  EXPECT_NEAR(metrics.rec, 0.5, 1e-12);
}

TEST(MetricsTest, RecCountsMissedPositivesAsZero) {
  const auto records = std::vector<data::Record>{
      RecordWithLabels({Present(11, 20)}),
      RecordWithLabels({Present(31, 40)}),
  };
  const auto decisions = std::vector<core::MarshalDecision>{
      Decide({{true, sim::Interval{11, 20}}}),
      Decide({{false, sim::Interval::Empty()}}),
  };
  const Metrics metrics = ComputeMetrics(records, decisions, kHorizon);
  EXPECT_DOUBLE_EQ(metrics.rec, 0.5);
  EXPECT_DOUBLE_EQ(metrics.rec_c, 0.5);
  EXPECT_DOUBLE_EQ(metrics.rec_r, 1.0);  // Over hits only.
}

TEST(MetricsTest, MultiEventRecordAveragesPerPair) {
  const auto records = std::vector<data::Record>{
      RecordWithLabels({Present(11, 20), data::EventLabel{}}),
  };
  const auto decisions = std::vector<core::MarshalDecision>{
      Decide({{true, sim::Interval{11, 20}}, {true, sim::Interval{1, 25}}}),
  };
  const Metrics metrics = ComputeMetrics(records, decisions, kHorizon);
  EXPECT_DOUBLE_EQ(metrics.rec, 1.0);
  // Pair 1 contributes 0; pair 2 contributes 25/100; averaged over 2 pairs.
  EXPECT_NEAR(metrics.spl, (0.0 + 0.25) / 2.0, 1e-12);
  // Union billing: [11,20] U [1,25] = [1,25] -> 25 frames.
  EXPECT_EQ(metrics.relayed_frames, 25);
}

TEST(MetricsTest, UnionBillingMergesAdjacentIntervals) {
  const auto records = std::vector<data::Record>{
      RecordWithLabels({data::EventLabel{}, data::EventLabel{}}),
  };
  const auto decisions = std::vector<core::MarshalDecision>{
      Decide({{true, sim::Interval{1, 10}}, {true, sim::Interval{11, 20}}}),
  };
  const Metrics metrics = ComputeMetrics(records, decisions, kHorizon);
  EXPECT_EQ(metrics.relayed_frames, 20);
}

TEST(MetricsTest, FullHorizonTruthSkipsSplTerm) {
  // True interval covers the whole horizon: H - |truth| = 0; the Eq. 13
  // term is skipped rather than dividing by zero.
  const auto records = std::vector<data::Record>{
      RecordWithLabels({Present(1, kHorizon)}),
  };
  const auto decisions = std::vector<core::MarshalDecision>{
      Decide({{true, sim::Interval{1, kHorizon}}}),
  };
  const Metrics metrics = ComputeMetrics(records, decisions, kHorizon);
  EXPECT_DOUBLE_EQ(metrics.spl, 0.0);
  EXPECT_DOUBLE_EQ(metrics.rec, 1.0);
}

TEST(MetricsTest, PrecisionMetrics) {
  // Record A: event [11,20] predicted [11,30] (hit, half the relay inside).
  // Record B: no event, predicted [1,10] (false positive).
  const auto records = std::vector<data::Record>{
      RecordWithLabels({Present(11, 20)}),
      RecordWithLabels({data::EventLabel{}}),
  };
  const auto decisions = std::vector<core::MarshalDecision>{
      Decide({{true, sim::Interval{11, 30}}}),
      Decide({{true, sim::Interval{1, 10}}}),
  };
  const Metrics metrics = ComputeMetrics(records, decisions, kHorizon);
  EXPECT_DOUBLE_EQ(metrics.pre_c, 0.5);  // 1 hit of 2 predicted pairs.
  // Relayed frames: 20 + 10; inside-truth: 10.
  EXPECT_DOUBLE_EQ(metrics.pre_f, 10.0 / 30.0);
}

TEST(MetricsTest, PrecisionDegenerateCases) {
  // Nothing predicted: precision defined as 0.
  const auto records = std::vector<data::Record>{
      RecordWithLabels({Present(11, 20)}),
  };
  const auto decisions = std::vector<core::MarshalDecision>{
      Decide({{false, sim::Interval::Empty()}}),
  };
  const Metrics metrics = ComputeMetrics(records, decisions, kHorizon);
  EXPECT_DOUBLE_EQ(metrics.pre_c, 0.0);
  EXPECT_DOUBLE_EQ(metrics.pre_f, 0.0);
}

TEST(MetricsTest, EmptyTestSetYieldsZeros) {
  const Metrics metrics = ComputeMetrics({}, {}, kHorizon);
  EXPECT_DOUBLE_EQ(metrics.rec, 0.0);
  EXPECT_DOUBLE_EQ(metrics.spl, 0.0);
  EXPECT_EQ(metrics.records, 0);
}

TEST(MetricsTest, MalformedDecisionsDie) {
  const auto records = std::vector<data::Record>{
      RecordWithLabels({Present(11, 20)}),
  };
  // Predicted-present with empty interval.
  core::MarshalDecision bad;
  bad.exists = {true};
  bad.intervals = {sim::Interval::Empty()};
  EXPECT_DEATH(ComputeMetrics(records, {bad}, kHorizon), "CHECK failed");
  // Interval outside [1, H].
  bad.intervals = {sim::Interval{0, 5}};
  EXPECT_DEATH(ComputeMetrics(records, {bad}, kHorizon), "CHECK failed");
  // Predicted-absent with non-empty interval.
  bad.exists = {false};
  bad.intervals = {sim::Interval{1, 5}};
  EXPECT_DEATH(ComputeMetrics(records, {bad}, kHorizon), "CHECK failed");
  // Arity mismatch.
  EXPECT_DEATH(ComputeMetrics(records, {}, kHorizon), "CHECK failed");
}

}  // namespace
}  // namespace eventhit::eval
