#include "baselines/app_vae.h"

#include <gtest/gtest.h>

#include "data/record_extractor.h"
#include "eval/metrics.h"

namespace eventhit::baselines {
namespace {

class AppVaeTest : public ::testing::Test {
 protected:
  AppVaeTest() {
    sim::DatasetSpec spec = sim::MakeDatasetSpec(sim::DatasetId::kBreakfast);
    spec.num_frames = 60000;
    video_ = std::make_unique<sim::SyntheticVideo>(
        sim::SyntheticVideo::Generate(spec, 41));
    task_ = data::FindTask("TA13").value();
    config_.collection_window = 50;
    config_.horizon = 500;
    train_range_ = sim::Interval{0, 40000};
  }

  AppVaeStrategy MakeStrategy(int window) const {
    AppVaeOptions options;
    options.window = window;
    return AppVaeStrategy(video_.get(), &task_, config_.horizon, train_range_,
                          options);
  }

  std::unique_ptr<sim::SyntheticVideo> video_;
  data::Task task_;
  data::ExtractorConfig config_;
  sim::Interval train_range_;
};

TEST_F(AppVaeTest, NameEncodesWindow) {
  EXPECT_EQ(MakeStrategy(200).name(), "APP-VAE_200");
  EXPECT_EQ(MakeStrategy(1500).name(), "APP-VAE_1500");
}

TEST_F(AppVaeTest, ConditionalProbabilityMatchesEmpiricalGaps) {
  // The conditional start probability must equal the empirical renewal
  // estimate computed independently from the same training occurrences:
  // P(start within H | elapsed e) = #gaps in (e, e+H] / #gaps > e.
  const AppVaeStrategy strategy = MakeStrategy(5000);
  const auto& occurrences =
      video_->timeline().occurrences(task_.event_indices[0]);
  std::vector<double> gaps;
  const sim::Interval* previous = nullptr;
  for (const sim::Interval& occ : occurrences) {
    if (occ.start < train_range_.start || occ.end > train_range_.end) {
      previous = nullptr;
      continue;
    }
    if (previous != nullptr) {
      gaps.push_back(static_cast<double>(occ.start - previous->end));
    }
    previous = &occ;
  }
  for (int64_t elapsed : {10, 200, 900}) {
    int surviving = 0, within = 0;
    for (double g : gaps) {
      if (g > static_cast<double>(elapsed)) {
        ++surviving;
        if (g <= static_cast<double>(elapsed + config_.horizon)) ++within;
      }
    }
    ASSERT_GT(surviving, 0);
    EXPECT_NEAR(strategy.ConditionalStartProbability(0, elapsed),
                static_cast<double>(within) / surviving, 1e-12)
        << "elapsed=" << elapsed;
  }
}

TEST_F(AppVaeTest, UnknownElapsedFallsBackToMarginal) {
  const AppVaeStrategy strategy = MakeStrategy(200);
  const double marginal = strategy.ConditionalStartProbability(0, -1);
  EXPECT_GT(marginal, 0.0);
  EXPECT_LE(marginal, 1.0);
}

TEST_F(AppVaeTest, OverdueElapsedIsCertain) {
  const AppVaeStrategy strategy = MakeStrategy(100000);
  EXPECT_DOUBLE_EQ(strategy.ConditionalStartProbability(0, 10000000), 1.0);
}

TEST_F(AppVaeTest, DecisionsAreWellFormed) {
  const AppVaeStrategy strategy = MakeStrategy(1500);
  for (int64_t frame = 2000; frame < 55000; frame += 1700) {
    const auto record = data::BuildRecord(*video_, task_, config_, frame);
    const auto decision = strategy.Decide(record);
    ASSERT_EQ(decision.exists.size(), 1u);
    if (decision.exists[0]) {
      EXPECT_GE(decision.intervals[0].start, 1);
      EXPECT_LE(decision.intervals[0].end, config_.horizon);
      EXPECT_LE(decision.intervals[0].start, decision.intervals[0].end);
    } else {
      EXPECT_TRUE(decision.intervals[0].empty());
    }
  }
}

TEST_F(AppVaeTest, LargerWindowIsMoreEfficientOnDenseStream) {
  // The paper's structural claim: APP-VAE needs a very large window. A
  // small window is blind to the elapsed time most of the time and falls
  // back to relaying whole horizons, so at whatever recall it reaches it
  // pays far more spillage per unit of recall than the large window.
  const AppVaeStrategy small = MakeStrategy(200);
  const AppVaeStrategy large = MakeStrategy(1500);
  std::vector<data::Record> records;
  for (int64_t frame = 41000;
       frame + config_.horizon < video_->num_frames(); frame += 300) {
    records.push_back(data::BuildRecord(*video_, task_, config_, frame));
  }
  auto evaluate = [&](const AppVaeStrategy& strategy) {
    std::vector<eventhit::core::MarshalDecision> decisions;
    for (const auto& record : records) {
      decisions.push_back(strategy.Decide(record));
    }
    return eventhit::eval::ComputeMetrics(records, decisions,
                                          config_.horizon);
  };
  const auto small_metrics = evaluate(small);
  const auto large_metrics = evaluate(large);
  ASSERT_GT(small_metrics.positives, 12);
  // Efficiency: recall bought per unit of spillage.
  const double small_eff =
      small_metrics.rec / std::max(small_metrics.spl, 1e-9);
  const double large_eff =
      large_metrics.rec / std::max(large_metrics.spl, 1e-9);
  EXPECT_GT(large_eff, small_eff);
}

TEST_F(AppVaeTest, MarginalProbabilityTracksDensity) {
  // A horizon as long as the mean cycle makes the marginal probability
  // substantial on the dense Breakfast-like stream.
  const AppVaeStrategy strategy = MakeStrategy(200);
  const double p = strategy.ConditionalStartProbability(0, -1);
  EXPECT_GT(p, 0.2);
  EXPECT_LT(p, 0.95);
}

}  // namespace
}  // namespace eventhit::baselines
