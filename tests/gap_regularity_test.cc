// Statistical tests of the gap-regularity extension of the occurrence
// process (lognormal vs exponential inter-arrivals), and its wiring through
// the Breakfast dataset spec.
#include <cmath>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "common/stats.h"
#include "sim/datasets.h"
#include "sim/event_timeline.h"

namespace eventhit::sim {
namespace {

std::vector<double> GapsOf(const EventTimeline& timeline, size_t k) {
  std::vector<double> gaps;
  const auto& occurrences = timeline.occurrences(k);
  for (size_t i = 1; i < occurrences.size(); ++i) {
    gaps.push_back(
        static_cast<double>(occurrences[i].start - occurrences[i - 1].end));
  }
  return gaps;
}

TEST(GapRegularityTest, ExponentialGapsHaveUnitCv) {
  Rng rng(3);
  OccurrenceProcess proc;
  proc.mean_gap = 500.0;
  proc.duration_mean = 20.0;
  proc.duration_std = 2.0;
  const EventTimeline timeline = EventTimeline::Generate({proc}, 600000, rng);
  const auto gaps = GapsOf(timeline, 0);
  ASSERT_GT(gaps.size(), 400u);
  EXPECT_NEAR(Mean(gaps), 500.0, 50.0);
  // Exponential: cv = 1.
  EXPECT_NEAR(SampleStdDev(gaps) / Mean(gaps), 1.0, 0.12);
}

TEST(GapRegularityTest, LognormalGapsMatchRequestedCv) {
  Rng rng(5);
  OccurrenceProcess proc;
  proc.mean_gap = 500.0;
  proc.gap_cv = 0.4;
  proc.duration_mean = 20.0;
  proc.duration_std = 2.0;
  const EventTimeline timeline = EventTimeline::Generate({proc}, 600000, rng);
  const auto gaps = GapsOf(timeline, 0);
  ASSERT_GT(gaps.size(), 400u);
  EXPECT_NEAR(Mean(gaps), 500.0, 40.0);
  EXPECT_NEAR(SampleStdDev(gaps) / Mean(gaps), 0.4, 0.08);
}

TEST(GapRegularityTest, RegularGapsConcentrateHazard) {
  // The structural property APP-VAE exploits: with regular gaps, the
  // conditional probability of a start soon *rises* with the elapsed time;
  // with exponential gaps it is flat (memoryless).
  Rng rng(7);
  OccurrenceProcess regular;
  regular.mean_gap = 1000.0;
  regular.gap_cv = 0.35;
  regular.duration_mean = 20.0;
  regular.duration_std = 2.0;
  const EventTimeline timeline =
      EventTimeline::Generate({regular}, 3000000, rng);
  const auto gaps = GapsOf(timeline, 0);
  ASSERT_GT(gaps.size(), 1000u);
  auto conditional = [&](double elapsed, double window) {
    int surviving = 0, within = 0;
    for (double g : gaps) {
      if (g > elapsed) {
        ++surviving;
        if (g <= elapsed + window) ++within;
      }
    }
    return static_cast<double>(within) / std::max(surviving, 1);
  };
  // At 1.2x the mean gap, a start within the next half-mean is far more
  // likely than right after the previous occurrence.
  EXPECT_GT(conditional(1200.0, 500.0), conditional(50.0, 500.0) + 0.25);
}

TEST(GapRegularityTest, BreakfastSpecIsRegularOthersAreNot) {
  const DatasetSpec breakfast = MakeDatasetSpec(DatasetId::kBreakfast);
  for (const EventTypeSpec& ev : breakfast.events) {
    EXPECT_GT(ev.gap_cv, 0.0) << ev.name;
  }
  for (const DatasetId id : {DatasetId::kVirat, DatasetId::kThumos}) {
    for (const EventTypeSpec& ev : MakeDatasetSpec(id).events) {
      EXPECT_DOUBLE_EQ(ev.gap_cv, 0.0) << ev.name;
    }
  }
}

TEST(GapRegularityTest, NegativeCvDies) {
  Rng rng(9);
  OccurrenceProcess proc;
  proc.gap_cv = -0.1;
  EXPECT_DEATH(EventTimeline::Generate({proc}, 10000, rng), "CHECK failed");
}

}  // namespace
}  // namespace eventhit::sim
