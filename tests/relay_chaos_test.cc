// Deterministic chaos harness for the resilient cloud relay: replays
// seeded fault schedules (error bursts, latency spikes, blackout windows)
// against a ground-truth order schedule and asserts the invariants of
// DESIGN.md §5f — exact frame accounting at every breaker transition,
// byte-identical replays from the same seed, zero-overhead pass-through
// parity, and bounded, monotone recall degradation under outages.
#include <algorithm>
#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "cloud/cloud_service.h"
#include "cloud/relay.h"
#include "obs/metrics.h"
#include "sim/datasets.h"
#include "sim/fault_injector.h"

namespace eventhit::cloud {
namespace {

constexpr uint64_t kVideoSeed = 51;
constexpr uint64_t kRelaySeed = 1234;
constexpr int64_t kMaxOrderFrames = 60;  // 2 s of cloud latency at 30 FPS.

sim::SyntheticVideo SmallVideo() {
  sim::DatasetSpec spec = sim::MakeDatasetSpec(sim::DatasetId::kThumos);
  // Long enough for a few hundred orders, so duty-cycle bounds on the
  // degradation tests are not dominated by small-sample noise.
  spec.num_frames = 120000;
  return sim::SyntheticVideo::Generate(spec, kVideoSeed);
}

struct OracleOrder {
  size_t event = 0;
  sim::Interval frames;
};

// Oracle order schedule: every ground-truth occurrence of every event
// type, chunked into kMaxOrderFrames pieces and submitted the moment the
// chunk starts. With accuracy = 1.0 every delivered frame is a true
// detection, so delivered fraction == recall of the schedule.
std::vector<OracleOrder> OracleOrders(const sim::SyntheticVideo& video) {
  std::vector<OracleOrder> orders;
  for (size_t k = 0; k < video.timeline().num_event_types(); ++k) {
    for (const sim::Interval& occurrence : video.timeline().occurrences(k)) {
      for (int64_t start = occurrence.start; start <= occurrence.end;
           start += kMaxOrderFrames) {
        const sim::Interval piece{
            start, std::min(occurrence.end, start + kMaxOrderFrames - 1)};
        if (piece.end < video.num_frames()) orders.push_back({k, piece});
      }
    }
  }
  std::sort(orders.begin(), orders.end(),
            [](const OracleOrder& a, const OracleOrder& b) {
              return a.frames.start < b.frames.start;
            });
  return orders;
}

struct ScheduleRun {
  RelayStats stats;
  std::vector<bool> detections;  // Concatenated delivery payloads.
  std::vector<int64_t> delivered_requests;
  int64_t breaker_opens = 0;
  int64_t breaker_transitions = 0;
  int64_t invoice_frames = 0;
  int64_t invoice_requests = 0;
  double invoice_cost_usd = 0.0;
  double delivered_fraction = 1.0;
};

// Streams the oracle schedule through a fresh relay under `profile`.
// Everything is seeded, so two calls with the same arguments must be
// byte-identical.
ScheduleRun RunSchedule(const sim::SyntheticVideo& video,
                        const sim::FaultProfile& profile,
                        const RelayConfig& config,
                        bool check_invariant_at_transitions = true) {
  CloudConfig cloud_config;
  cloud_config.accuracy = 1.0;
  CloudService service(&video, cloud_config, kVideoSeed + 1);
  const sim::FaultInjector injector(profile);
  obs::MetricsRegistry metrics;  // Private: keep the global registry clean.
  CloudRelay relay(&service, config, kRelaySeed, &injector, &metrics);

  ScheduleRun run;
  relay.set_delivery_callback([&](const RelayDelivery& delivery) {
    run.delivered_requests.push_back(delivery.request_id);
    run.detections.insert(run.detections.end(), delivery.detections.begin(),
                          delivery.detections.end());
  });
  if (check_invariant_at_transitions) {
    relay.set_breaker_transition_callback(
        [&](BreakerState, BreakerState, double) {
          const RelayStats& s = relay.stats();
          ASSERT_EQ(s.frames_delivered + s.frames_dropped + s.frames_pending +
                        s.frames_in_flight,
                    s.frames_submitted);
          ++run.breaker_transitions;
        });
  }

  for (const OracleOrder& order : OracleOrders(video)) {
    relay.AdvanceTo(order.frames.start);
    relay.Submit(order.event, order.frames, order.frames.start);
  }
  relay.Flush(video.num_frames());

  run.stats = relay.stats();
  run.breaker_opens = relay.breaker().opens();
  if (!check_invariant_at_transitions) {
    run.breaker_transitions = relay.breaker().transitions();
  }
  run.invoice_frames = service.invoice().frames_processed;
  run.invoice_requests = service.invoice().requests;
  run.invoice_cost_usd = service.invoice().total_cost_usd;
  run.delivered_fraction =
      static_cast<double>(run.stats.frames_delivered) /
      static_cast<double>(run.stats.frames_submitted);
  return run;
}

void ExpectIdenticalRuns(const ScheduleRun& a, const ScheduleRun& b) {
  EXPECT_EQ(a.stats.orders_submitted, b.stats.orders_submitted);
  EXPECT_EQ(a.stats.orders_delivered, b.stats.orders_delivered);
  EXPECT_EQ(a.stats.orders_replayed, b.stats.orders_replayed);
  EXPECT_EQ(a.stats.orders_dropped, b.stats.orders_dropped);
  EXPECT_EQ(a.stats.frames_submitted, b.stats.frames_submitted);
  EXPECT_EQ(a.stats.frames_delivered, b.stats.frames_delivered);
  EXPECT_EQ(a.stats.frames_dropped, b.stats.frames_dropped);
  EXPECT_EQ(a.stats.attempts, b.stats.attempts);
  EXPECT_EQ(a.stats.retries, b.stats.retries);
  EXPECT_EQ(a.stats.failed_attempts, b.stats.failed_attempts);
  EXPECT_EQ(a.stats.injected_errors, b.stats.injected_errors);
  EXPECT_EQ(a.stats.injected_latency_spikes, b.stats.injected_latency_spikes);
  EXPECT_EQ(a.breaker_opens, b.breaker_opens);
  EXPECT_EQ(a.delivered_requests, b.delivered_requests);
  EXPECT_EQ(a.detections, b.detections);  // Byte-identical payloads.
  EXPECT_EQ(a.invoice_frames, b.invoice_frames);
  EXPECT_EQ(a.invoice_requests, b.invoice_requests);
  EXPECT_EQ(a.invoice_cost_usd, b.invoice_cost_usd);
}

sim::FaultProfile NamedProfile(const char* name) {
  const auto profile = sim::MakeFaultProfile(name, kRelaySeed);
  EXPECT_TRUE(profile.ok());
  return profile.value();
}

RelayConfig DropConfig() {
  RelayConfig config;
  config.degraded_mode = DegradedMode::kDropWithAccounting;
  // Spiked attempts (8 s) are cancelled at the timeout and retried; the
  // clipped orders cost at most 2 s, so clean attempts always fit.
  config.attempt_timeout_seconds = 4.0;
  return config;
}

// --- Acceptance: fault injection disabled -> bit-identical behaviour. ---

TEST(RelayChaosTest, PassThroughParityIsBitIdentical) {
  const sim::SyntheticVideo video = SmallVideo();
  const std::vector<OracleOrder> orders = OracleOrders(video);
  ASSERT_GT(orders.size(), 100u);

  // Reference: the pre-relay pipeline calling the service directly.
  CloudConfig cloud_config;
  cloud_config.accuracy = 1.0;
  CloudService direct(&video, cloud_config, kVideoSeed + 1);
  std::vector<bool> direct_detections;
  for (const OracleOrder& order : orders) {
    const auto result = direct.Detect(order.event, order.frames);
    direct_detections.insert(direct_detections.end(), result.begin(),
                             result.end());
  }

  // Same schedule through the relay with an inactive profile: the fast
  // path must issue the exact same Detect call sequence, so the service's
  // internal RNG consumption — and thus every detection bit — matches.
  const ScheduleRun relayed =
      RunSchedule(video, sim::FaultProfile{}, DropConfig());
  EXPECT_EQ(relayed.detections, direct_detections);
  EXPECT_EQ(relayed.invoice_frames, direct.invoice().frames_processed);
  EXPECT_EQ(relayed.invoice_requests, direct.invoice().requests);
  EXPECT_EQ(relayed.invoice_cost_usd, direct.invoice().total_cost_usd);
  EXPECT_EQ(relayed.stats.frames_delivered, relayed.stats.frames_submitted);
  EXPECT_EQ(relayed.stats.retries, 0);
  EXPECT_EQ(relayed.breaker_opens, 0);
  EXPECT_EQ(relayed.breaker_transitions, 0);
}

// --- Acceptance: committed blackout schedule replays deterministically. ---

TEST(RelayChaosTest, BlackoutReplayIsByteIdentical) {
  const sim::SyntheticVideo video = SmallVideo();
  RelayConfig config = DropConfig();
  config.degraded_mode = DegradedMode::kBufferAndReplay;
  config.replay_horizon_frames = 600;
  const sim::FaultProfile profile = NamedProfile("blackout");
  const ScheduleRun first = RunSchedule(video, profile, config);
  const ScheduleRun second = RunSchedule(video, profile, config);
  ExpectIdenticalRuns(first, second);
  // The schedule actually exercised the failure machinery.
  EXPECT_GT(first.breaker_opens, 0);
  EXPECT_GT(first.stats.orders_dropped, 0);
}

TEST(RelayChaosTest, FlakyReplayIsByteIdentical) {
  const sim::SyntheticVideo video = SmallVideo();
  const ScheduleRun first =
      RunSchedule(video, NamedProfile("flaky"), DropConfig());
  const ScheduleRun second =
      RunSchedule(video, NamedProfile("flaky"), DropConfig());
  ExpectIdenticalRuns(first, second);
  EXPECT_GT(first.stats.retries, 0);
}

TEST(RelayChaosTest, DifferentFaultSeedsDiverge) {
  const sim::SyntheticVideo video = SmallVideo();
  sim::FaultProfile a = NamedProfile("flaky");
  sim::FaultProfile b = a;
  b.seed = a.seed + 1;
  const ScheduleRun run_a = RunSchedule(video, a, DropConfig());
  const ScheduleRun run_b = RunSchedule(video, b, DropConfig());
  EXPECT_NE(run_a.stats.injected_errors, run_b.stats.injected_errors);
}

// --- Invariant: exact accounting at every breaker transition. ---

TEST(RelayChaosTest, AccountingIdentityHoldsAtEveryTransition) {
  const sim::SyntheticVideo video = SmallVideo();
  // RunSchedule asserts the identity inside the transition callback; this
  // test additionally demands the blackout schedule fired transitions in
  // both degradation modes.
  RelayConfig drop = DropConfig();
  const ScheduleRun dropped =
      RunSchedule(video, NamedProfile("blackout"), drop);
  EXPECT_GT(dropped.breaker_transitions, 0);

  RelayConfig buffered = DropConfig();
  buffered.degraded_mode = DegradedMode::kBufferAndReplay;
  buffered.replay_horizon_frames = 600;
  const ScheduleRun replayed =
      RunSchedule(video, NamedProfile("blackout"), buffered);
  EXPECT_GT(replayed.breaker_transitions, 0);
  // Settled identity after Flush (in-flight and pending drained).
  EXPECT_EQ(replayed.stats.frames_in_flight, 0);
  EXPECT_EQ(replayed.stats.frames_pending, 0);
  EXPECT_EQ(replayed.stats.frames_delivered + replayed.stats.frames_dropped,
            replayed.stats.frames_submitted);
}

// --- Degradation: bounded and monotone in outage length. ---

TEST(RelayChaosTest, RecallDegradationIsBoundedAndMonotone) {
  const sim::SyntheticVideo video = SmallVideo();
  sim::FaultProfile profile;  // Pure blackout: no random draws at all.
  profile.blackout_period_frames = 6000;
  profile.blackout_offset_frames = 900;
  profile.seed = kRelaySeed;
  double previous_fraction = 1.0;
  for (const int64_t length : {0, 300, 900, 1800, 3000}) {
    profile.blackout_length_frames = length;
    const ScheduleRun run = RunSchedule(video, profile, DropConfig());
    if (length == 0) {
      EXPECT_EQ(run.delivered_fraction, 1.0);
    }
    // Monotone: a strictly longer outage never delivers more.
    EXPECT_LE(run.delivered_fraction, previous_fraction + 1e-12)
        << "length " << length;
    // Bounded: the loss cannot exceed the outage duty cycle plus the
    // breaker's cool-down tail (open_seconds after the window ends).
    const double duty =
        static_cast<double>(length) / 6000.0 +
        DropConfig().breaker.open_seconds * 30.0 / 6000.0;
    EXPECT_GE(run.delivered_fraction, 1.0 - duty - 0.1)
        << "length " << length;
    previous_fraction = run.delivered_fraction;
  }
}

// --- Golden regression: the three committed chaos profiles. ---

struct GoldenExpectation {
  const char* profile;
  double min_delivered;  // Lower bound on delivered fraction (== recall).
  double max_delivered;  // Upper bound: the profile must actually bite.
};

TEST(RelayChaosTest, GoldenProfilesStayWithinTolerances) {
  const sim::SyntheticVideo video = SmallVideo();
  const GoldenExpectation expectations[] = {
      // Flaky link: retries recover nearly everything; only a 0.3^4 tail
      // plus occasional breaker trips leak. Committed value: 0.9949.
      {"flaky", 0.97, 0.9999},
      // Latency spikes: cancelled at the attempt timeout and retried, so
      // losses stay small but nonzero. Committed value: 0.9949.
      {"latency", 0.96, 0.9999},
      // Blackout: 60 s dead air every 200 s bounds recall near the duty
      // cycle; it must bite, and must not collapse. Committed: 0.7051.
      {"blackout", 0.60, 0.85},
  };
  for (const GoldenExpectation& expectation : expectations) {
    const ScheduleRun run =
        RunSchedule(video, NamedProfile(expectation.profile), DropConfig());
    EXPECT_GE(run.delivered_fraction, expectation.min_delivered)
        << expectation.profile;
    EXPECT_LE(run.delivered_fraction, expectation.max_delivered)
        << expectation.profile;
    // The cost model only ever bills delivered frames.
    EXPECT_EQ(run.invoice_frames, run.stats.frames_delivered)
        << expectation.profile;
  }
}

// --- Buffer-and-replay mechanics. ---

TEST(RelayChaosTest, BufferedOrderReplaysAfterOutageEnds) {
  const sim::SyntheticVideo video = SmallVideo();
  CloudConfig cloud_config;
  cloud_config.accuracy = 1.0;
  CloudService service(&video, cloud_config, 7);
  sim::FaultProfile profile;  // One-shot blackout over frames [0, 60).
  profile.blackout_period_frames = 1000000;
  profile.blackout_length_frames = 60;
  const sim::FaultInjector injector(profile);
  RelayConfig config;
  config.degraded_mode = DegradedMode::kBufferAndReplay;
  config.replay_horizon_frames = 1200;
  obs::MetricsRegistry metrics;
  CloudRelay relay(&service, config, kRelaySeed, &injector, &metrics);

  bool replayed_delivery = false;
  relay.set_delivery_callback([&](const RelayDelivery& delivery) {
    replayed_delivery = delivery.replayed;
  });
  const RelayResult result = relay.Submit(0, sim::Interval{100, 159}, 10);
  EXPECT_EQ(result.outcome, RelayOutcome::kBuffered);
  EXPECT_EQ(relay.queue_depth(), 1u);
  EXPECT_EQ(relay.stats().frames_pending, 60);

  // Past the blackout and the breaker cool-down the probe succeeds.
  relay.AdvanceTo(600);
  EXPECT_EQ(relay.queue_depth(), 0u);
  EXPECT_TRUE(replayed_delivery);
  EXPECT_EQ(relay.stats().orders_replayed, 1);
  EXPECT_EQ(relay.stats().frames_delivered, 60);
  EXPECT_EQ(relay.stats().frames_pending, 0);
  relay.Flush(1000);
}

TEST(RelayChaosTest, BufferedOrderExpiresPastTheHorizon) {
  const sim::SyntheticVideo video = SmallVideo();
  CloudService service(&video, CloudConfig{}, 7);
  sim::FaultProfile profile;
  profile.blackout_period_frames = 1000000;
  profile.blackout_length_frames = 5000;  // Longer than the horizon.
  const sim::FaultInjector injector(profile);
  RelayConfig config;
  config.degraded_mode = DegradedMode::kBufferAndReplay;
  config.replay_horizon_frames = 300;
  obs::MetricsRegistry metrics;
  CloudRelay relay(&service, config, kRelaySeed, &injector, &metrics);

  EXPECT_EQ(relay.Submit(0, sim::Interval{100, 159}, 10).outcome,
            RelayOutcome::kBuffered);
  relay.AdvanceTo(400);  // 10 + 300 < 400: stale, dropped unserved.
  EXPECT_EQ(relay.queue_depth(), 0u);
  EXPECT_EQ(relay.stats().orders_replayed, 0);
  EXPECT_EQ(relay.stats().frames_dropped, 60);
  EXPECT_EQ(service.invoice().frames_processed, 0);
  relay.Flush(1000);
}

TEST(RelayChaosTest, QueueOverflowDropsWithAccounting) {
  const sim::SyntheticVideo video = SmallVideo();
  CloudService service(&video, CloudConfig{}, 7);
  sim::FaultProfile profile;
  profile.blackout_period_frames = 1000000;
  profile.blackout_length_frames = 100000;
  const sim::FaultInjector injector(profile);
  RelayConfig config;
  config.degraded_mode = DegradedMode::kBufferAndReplay;
  config.replay_horizon_frames = 300;
  config.max_queue_depth = 1;
  obs::MetricsRegistry metrics;
  CloudRelay relay(&service, config, kRelaySeed, &injector, &metrics);

  EXPECT_EQ(relay.Submit(0, sim::Interval{100, 109}, 10).outcome,
            RelayOutcome::kBuffered);
  EXPECT_EQ(relay.Submit(0, sim::Interval{110, 119}, 11).outcome,
            RelayOutcome::kDroppedQueueFull);
  EXPECT_EQ(relay.stats().frames_dropped, 10);
  EXPECT_EQ(relay.stats().frames_pending, 10);
  relay.Flush(100000);
  EXPECT_EQ(relay.stats().frames_dropped, 20);
}

TEST(RelayChaosTest, EmptySubmissionDies) {
  const sim::SyntheticVideo video = SmallVideo();
  CloudService service(&video, CloudConfig{}, 7);
  obs::MetricsRegistry metrics;
  CloudRelay relay(&service, RelayConfig{}, kRelaySeed, nullptr, &metrics);
  EXPECT_DEATH(relay.Submit(0, sim::Interval::Empty(), 0), "CHECK failed");
}

}  // namespace
}  // namespace eventhit::cloud
