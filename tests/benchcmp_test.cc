// Tests for the bench regression comparator behind tools/bench_diff and
// the CI bench gate.
#include "common/benchcmp.h"

#include <cmath>
#include <map>
#include <string>

#include <gtest/gtest.h>

namespace eventhit {
namespace {

TEST(ParseBenchJsonTest, ParsesFlatAndNestedNumbers) {
  const auto parsed = ParseBenchJson(
      R"({"per_record_fps": 50876.9, "records": 600, "fast_mode": false,)"
      R"( "name": "fig9", "warm": {"batched_fps": 1e5}, "list": [1, 2]})");
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  const auto& map = parsed.value();
  EXPECT_DOUBLE_EQ(map.at("per_record_fps"), 50876.9);
  EXPECT_DOUBLE_EQ(map.at("records"), 600.0);
  EXPECT_DOUBLE_EQ(map.at("warm.batched_fps"), 1e5);
  // Strings, booleans and arrays are skipped, not errors.
  EXPECT_EQ(map.count("name"), 0u);
  EXPECT_EQ(map.count("fast_mode"), 0u);
  EXPECT_EQ(map.count("list"), 0u);
}

TEST(ParseBenchJsonTest, RejectsMalformedJson) {
  EXPECT_FALSE(ParseBenchJson("{\"a\": }").ok());
  EXPECT_FALSE(ParseBenchJson("{\"a\": 1").ok());
  EXPECT_FALSE(ParseBenchJson("{\"a\": 1} trailing").ok());
  EXPECT_FALSE(ParseBenchJson("").ok());
}

TEST(DirectionForKeyTest, InfersFromLeafName) {
  EXPECT_EQ(DirectionForKey("batched_fps"), BenchDirection::kHigherBetter);
  EXPECT_EQ(DirectionForKey("speedup_1t"), BenchDirection::kHigherBetter);
  EXPECT_EQ(DirectionForKey("warm.batched_fps"),
            BenchDirection::kHigherBetter);
  EXPECT_EQ(DirectionForKey("scores_max_abs_diff"),
            BenchDirection::kLowerBetter);
  EXPECT_EQ(DirectionForKey("latency_ms"), BenchDirection::kLowerBetter);
  EXPECT_EQ(DirectionForKey("records"), BenchDirection::kInformational);
  EXPECT_EQ(DirectionForKey("threads"), BenchDirection::kInformational);
}

std::map<std::string, double> Baseline() {
  return {{"batched_fps", 100000.0},
          {"speedup_1t", 2.0},
          {"scores_max_abs_diff", 0.0},
          {"records", 600.0}};
}

TEST(DiffBenchJsonTest, WithinToleranceIsClean) {
  auto current = Baseline();
  current["batched_fps"] = 90000.0;  // -10% against a 15% band.
  current["records"] = 250.0;        // Informational: never gates.
  const BenchDiff diff =
      DiffBenchJson(Baseline(), current, BenchToleranceSpec{});
  EXPECT_FALSE(diff.regressed);
  for (const BenchDelta& delta : diff.deltas) {
    EXPECT_FALSE(delta.regressed) << delta.key;
  }
}

TEST(DiffBenchJsonTest, HigherBetterRegressionIsFlagged) {
  auto current = Baseline();
  current["batched_fps"] = 50000.0;  // -50%.
  const BenchDiff diff =
      DiffBenchJson(Baseline(), current, BenchToleranceSpec{});
  EXPECT_TRUE(diff.regressed);
  for (const BenchDelta& delta : diff.deltas) {
    if (delta.key == "batched_fps") {
      EXPECT_TRUE(delta.regressed);
      EXPECT_DOUBLE_EQ(delta.rel_change, -0.5);
    } else {
      EXPECT_FALSE(delta.regressed) << delta.key;
    }
  }
}

TEST(DiffBenchJsonTest, ImprovementNeverRegresses) {
  auto current = Baseline();
  current["batched_fps"] = 250000.0;  // +150% is an improvement.
  EXPECT_FALSE(
      DiffBenchJson(Baseline(), current, BenchToleranceSpec{}).regressed);
}

TEST(DiffBenchJsonTest, ZeroBaselineLowerBetterUsesAbsoluteGrowth) {
  auto current = Baseline();
  current["scores_max_abs_diff"] = 0.5;
  // Relative tolerance off a zero baseline cannot save this.
  EXPECT_TRUE(
      DiffBenchJson(Baseline(), current, BenchToleranceSpec{}).regressed);
  // An explicit absolute tolerance can.
  BenchToleranceSpec spec;
  spec.abs_tol["scores_max_abs_diff"] = 1.0;
  EXPECT_FALSE(DiffBenchJson(Baseline(), current, spec).regressed);
}

TEST(DiffBenchJsonTest, ZeroBaselineNeverDividesAndRelChangeIsFinite) {
  // A zero baseline used to make the relative band collapse (and a naive
  // rel_change divide by zero). Both directions must stay well-defined.
  std::map<std::string, double> baseline = {{"idle_fps", 0.0},
                                            {"overhead_ms", 0.0}};
  auto current = baseline;
  const BenchDiff same =
      DiffBenchJson(baseline, current, BenchToleranceSpec{});
  EXPECT_FALSE(same.regressed);
  for (const BenchDelta& delta : same.deltas) {
    EXPECT_TRUE(std::isfinite(delta.rel_change)) << delta.key;
    EXPECT_DOUBLE_EQ(delta.rel_change, 0.0) << delta.key;
  }
  // Higher-better off zero: any measurable value is an improvement, and
  // rounding noise below the epsilon cannot regress.
  current["idle_fps"] = 123.0;
  EXPECT_FALSE(DiffBenchJson(baseline, current, BenchToleranceSpec{})
                   .regressed);
  current["idle_fps"] = -1e-12;
  EXPECT_FALSE(DiffBenchJson(baseline, current, BenchToleranceSpec{})
                   .regressed);
  // Lower-better off zero: measurable growth regresses, noise does not.
  current["idle_fps"] = 0.0;
  current["overhead_ms"] = 1e-12;
  EXPECT_FALSE(DiffBenchJson(baseline, current, BenchToleranceSpec{})
                   .regressed);
  current["overhead_ms"] = 0.5;
  EXPECT_TRUE(DiffBenchJson(baseline, current, BenchToleranceSpec{})
                  .regressed);
}

TEST(DiffBenchJsonTest, PerKeyRelativeOverrideWins) {
  auto current = Baseline();
  current["speedup_1t"] = 1.8;  // -10%.
  BenchToleranceSpec spec;
  spec.rel_tol["speedup_1t"] = 0.05;  // Tighter than the 15% default.
  EXPECT_TRUE(DiffBenchJson(Baseline(), current, spec).regressed);
  spec.rel_tol["speedup_1t"] = 0.20;
  EXPECT_FALSE(DiffBenchJson(Baseline(), current, spec).regressed);
}

TEST(DiffBenchJsonTest, MissingGatedKeyRegresses) {
  auto current = Baseline();
  current.erase("batched_fps");
  const BenchDiff diff =
      DiffBenchJson(Baseline(), current, BenchToleranceSpec{});
  EXPECT_TRUE(diff.regressed);
  ASSERT_EQ(diff.missing_keys.size(), 1u);
  EXPECT_EQ(diff.missing_keys[0], "batched_fps");
  // A missing informational key is not a regression.
  auto current2 = Baseline();
  current2.erase("records");
  EXPECT_FALSE(
      DiffBenchJson(Baseline(), current2, BenchToleranceSpec{}).regressed);
}

TEST(DiffBenchJsonTest, CurrentOnlyKeysSurfaceAsNewWithoutGating) {
  // A freshly added bench key (gated direction or not) has no baseline
  // yet; it must show up in new_keys and pass, never regress.
  auto current = Baseline();
  current["pareto_speedup_frames_duty50"] = 39.7;  // Would gate if based.
  current["pareto_rec_diff_adaptive"] = 0.0;
  const BenchDiff diff =
      DiffBenchJson(Baseline(), current, BenchToleranceSpec{});
  EXPECT_FALSE(diff.regressed);
  ASSERT_EQ(diff.new_keys.size(), 2u);
  EXPECT_EQ(diff.new_keys[0], "pareto_rec_diff_adaptive");
  EXPECT_EQ(diff.new_keys[1], "pareto_speedup_frames_duty50");
  for (const BenchDelta& delta : diff.deltas) {
    EXPECT_NE(delta.key, "pareto_speedup_frames_duty50");
    EXPECT_NE(delta.key, "pareto_rec_diff_adaptive");
  }
  // Keys present in both sides never appear as new.
  EXPECT_TRUE(DiffBenchJson(Baseline(), Baseline(), BenchToleranceSpec{})
                  .new_keys.empty());
}

TEST(DiffBenchJsonTest, AbsoluteToleranceOnHigherBetterActsAsFloor) {
  auto current = Baseline();
  current["batched_fps"] = 30000.0;  // Way down, but above the floor.
  BenchToleranceSpec spec;
  spec.abs_tol["batched_fps"] = 80000.0;  // baseline - 80k = 20k floor.
  EXPECT_FALSE(DiffBenchJson(Baseline(), current, spec).regressed);
  current["batched_fps"] = 10000.0;  // Below the floor.
  EXPECT_TRUE(DiffBenchJson(Baseline(), current, spec).regressed);
}

}  // namespace
}  // namespace eventhit
