// Layer-level tests of the int8 quantized mirrors (nn/int8.h): the
// quantization scheme itself, accuracy against the float layers on
// unit-range inputs, and the bit-level batch invariance the fleet's
// solo==batched digest contract relies on.
#include "nn/int8.h"

#include <cmath>
#include <cstddef>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "nn/backend.h"
#include "nn/workspace.h"

namespace eventhit::nn {
namespace {

constexpr float kUnitScale = 1.0f / 127.0f;

std::vector<float> UnitBuffer(size_t n, Rng& rng) {
  std::vector<float> buf(n);
  for (auto& v : buf) v = static_cast<float>(rng.Uniform(-1.0, 1.0));
  return buf;
}

TEST(QuantizeTensorTest, ScaleIsMaxAbsOver127) {
  Matrix w(2, 3);
  const float values[] = {0.1f, -2.54f, 0.7f, 1.0f, -0.3f, 0.0f};
  for (size_t i = 0; i < 6; ++i) w.data()[i] = values[i];
  const Int8Tensor q = QuantizeTensor(w);
  EXPECT_EQ(q.rows, 2u);
  EXPECT_EQ(q.cols, 3u);
  EXPECT_FLOAT_EQ(q.scale, 2.54f / 127.0f);
  // The max-magnitude element maps to ±127 exactly.
  EXPECT_EQ(q.data[1], -127);
  // Round-trip error is at most half a quantization step per element.
  for (size_t i = 0; i < 6; ++i) {
    EXPECT_NEAR(q.scale * static_cast<float>(q.data[i]), values[i],
                0.5f * q.scale + 1e-7f)
        << i;
  }
}

TEST(QuantizeTensorTest, AllZeroMatrixKeepsUnitScale) {
  Matrix w(3, 3);
  const Int8Tensor q = QuantizeTensor(w);
  EXPECT_FLOAT_EQ(q.scale, 1.0f);
  for (const int8_t v : q.data) EXPECT_EQ(v, 0);
}

class Int8LayerTest : public ::testing::Test {
 protected:
  const Backend& backend_ = GetBackend(BackendKind::kInt8);
  Workspace ws_;
};

TEST_F(Int8LayerTest, DenseTracksFloatWithinQuantizationError) {
  const size_t in = 24, out = 16, batch = 9;
  Rng rng(7);
  const Dense dense("d", in, out, rng);
  const Int8Dense qdense = Int8Dense::FromFloat(dense, kUnitScale);
  const std::vector<float> x = UnitBuffer(in * batch, rng);
  std::vector<float> y_float(out * batch), y_int8(out * batch);
  dense.ForwardBatch(x.data(), batch, y_float.data());
  qdense.ForwardBatch(x.data(), batch, y_int8.data(), ws_, backend_);
  // Worst case: each of the `in` products carries one weight step and one
  // activation step of error; in practice the rounding is unbiased and the
  // observed error is far below this analytic envelope.
  const float bound =
      static_cast<float>(in) * (qdense.weight.scale + kUnitScale);
  for (size_t i = 0; i < y_float.size(); ++i) {
    EXPECT_NEAR(y_int8[i], y_float[i], bound) << i;
  }
}

TEST_F(Int8LayerTest, DenseIsBatchInvariantToTheBit) {
  const size_t in = 10, out = 12, batch = 7;
  Rng rng(8);
  const Dense dense("d", in, out, rng);
  const Int8Dense qdense = Int8Dense::FromFloat(dense, kUnitScale);
  // Batch-minor input: element b of the batch is the strided column b.
  const std::vector<float> x = UnitBuffer(in * batch, rng);
  std::vector<float> y(out * batch);
  qdense.ForwardBatch(x.data(), batch, y.data(), ws_, backend_);
  for (size_t b = 0; b < batch; ++b) {
    std::vector<float> x1(in), y1(out);
    for (size_t i = 0; i < in; ++i) x1[i] = x[i * batch + b];
    Workspace solo_ws;
    qdense.ForwardBatch(x1.data(), 1, y1.data(), solo_ws, backend_);
    for (size_t o = 0; o < out; ++o) {
      ASSERT_EQ(y1[o], y[o * batch + b]) << "batch " << b << " out " << o;
    }
  }
}

TEST_F(Int8LayerTest, LstmTracksFloatWithinTolerance) {
  const size_t dim = 8, hidden = 12, steps = 10, batch = 5;
  Rng rng(9);
  const Lstm lstm("l", dim, hidden, rng);
  const Int8Lstm qlstm = Int8Lstm::FromFloat(lstm, kUnitScale, kUnitScale);
  const std::vector<float> inputs = UnitBuffer(steps * dim * batch, rng);
  std::vector<float> h_float(hidden * batch), h_int8(hidden * batch);
  ws_.Reset();
  lstm.ForwardBatch(inputs.data(), steps, batch, h_float.data(), ws_);
  Workspace qws;
  qlstm.ForwardBatch(inputs.data(), steps, batch, h_int8.data(), qws,
                     backend_);
  // Gates saturate, so the recurrent error stays small instead of
  // compounding; 0.05 on (-1,1) hidden states is a loose empirical bound.
  for (size_t i = 0; i < h_float.size(); ++i) {
    EXPECT_NEAR(h_int8[i], h_float[i], 0.05f) << i;
  }
}

TEST_F(Int8LayerTest, LstmIsBatchInvariantToTheBit) {
  const size_t dim = 6, hidden = 9, steps = 8, batch = 4;
  Rng rng(10);
  const Lstm lstm("l", dim, hidden, rng);
  const Int8Lstm qlstm = Int8Lstm::FromFloat(lstm, kUnitScale, kUnitScale);
  const std::vector<float> inputs = UnitBuffer(steps * dim * batch, rng);
  std::vector<float> h(hidden * batch);
  qlstm.ForwardBatch(inputs.data(), steps, batch, h.data(), ws_, backend_);
  for (size_t b = 0; b < batch; ++b) {
    // Gather element b's time-major sequence out of the batch-minor block.
    std::vector<float> x1(steps * dim), h1(hidden);
    for (size_t t = 0; t < steps; ++t) {
      for (size_t d = 0; d < dim; ++d) {
        x1[t * dim + d] = inputs[(t * dim + d) * batch + b];
      }
    }
    Workspace solo_ws;
    qlstm.ForwardBatch(x1.data(), steps, 1, h1.data(), solo_ws, backend_);
    for (size_t o = 0; o < hidden; ++o) {
      ASSERT_EQ(h1[o], h[o * batch + b]) << "batch " << b << " out " << o;
    }
  }
}

TEST_F(Int8LayerTest, MlpTracksFloatAndStaysBatchInvariant) {
  const size_t batch = 6;
  Rng rng(11);
  const Mlp mlp("m", {14, 20, 11}, rng);
  const Int8Mlp qmlp = Int8Mlp::FromFloat(mlp, kUnitScale);
  ASSERT_EQ(qmlp.out_dim(), 11u);
  const std::vector<float> x = UnitBuffer(14 * batch, rng);
  std::vector<float> y_float(11 * batch), y_int8(11 * batch);
  mlp.ForwardBatch(x.data(), batch, y_float.data(), ws_);
  Workspace qws;
  qmlp.ForwardBatch(x.data(), batch, y_int8.data(), qws, backend_);
  for (size_t i = 0; i < y_float.size(); ++i) {
    EXPECT_NEAR(y_int8[i], y_float[i], 0.5f) << i;  // pre-sigmoid logits
  }
  for (size_t b = 0; b < batch; ++b) {
    std::vector<float> x1(14), y1(11);
    for (size_t i = 0; i < 14; ++i) x1[i] = x[i * batch + b];
    Workspace solo_ws;
    qmlp.ForwardBatch(x1.data(), 1, y1.data(), solo_ws, backend_);
    for (size_t o = 0; o < 11; ++o) {
      ASSERT_EQ(y1[o], y_int8[o * batch + b]) << "batch " << b << " out "
                                              << o;
    }
  }
}

}  // namespace
}  // namespace eventhit::nn
