// Cross-cutting property sweeps over the marshalling pipeline: knob
// monotonicities of the EventHit strategies, metric invariants under
// arbitrary decisions, and Cox survival-curve laws — parameterized so each
// property is checked across a range of operating points.
#include <cmath>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/strategies.h"
#include "eval/metrics.h"
#include "survival/cox_model.h"

namespace eventhit {
namespace {

constexpr int kHorizon = 40;

// ---------- Metric invariants under random decisions ----------

data::Record RandomRecord(Rng& rng, size_t k_events) {
  data::Record record;
  record.labels.resize(k_events);
  for (auto& label : record.labels) {
    if (rng.Bernoulli(0.5)) {
      label.present = true;
      label.start = static_cast<int>(rng.UniformInt(1, kHorizon - 5));
      label.end = static_cast<int>(
          rng.UniformInt(label.start, kHorizon));
    }
  }
  return record;
}

core::MarshalDecision RandomDecision(Rng& rng, size_t k_events) {
  core::MarshalDecision decision;
  decision.exists.resize(k_events);
  decision.intervals.assign(k_events, sim::Interval::Empty());
  for (size_t k = 0; k < k_events; ++k) {
    decision.exists[k] = rng.Bernoulli(0.6);
    if (decision.exists[k]) {
      const int64_t start = rng.UniformInt(1, kHorizon);
      decision.intervals[k] =
          sim::Interval{start, rng.UniformInt(start, kHorizon)};
    }
  }
  return decision;
}

class MetricsPropertyTest : public ::testing::TestWithParam<size_t> {};

TEST_P(MetricsPropertyTest, AllMetricsStayInUnitRange) {
  const size_t k_events = GetParam();
  Rng rng(17 + k_events);
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<data::Record> records;
    std::vector<core::MarshalDecision> decisions;
    const auto n = static_cast<size_t>(rng.UniformInt(1, 40));
    for (size_t i = 0; i < n; ++i) {
      records.push_back(RandomRecord(rng, k_events));
      decisions.push_back(RandomDecision(rng, k_events));
    }
    const eval::Metrics metrics =
        eval::ComputeMetrics(records, decisions, kHorizon);
    EXPECT_GE(metrics.rec, 0.0);
    EXPECT_LE(metrics.rec, 1.0);
    EXPECT_GE(metrics.spl, 0.0);
    EXPECT_LE(metrics.spl, 1.0);
    EXPECT_GE(metrics.rec_c, 0.0);
    EXPECT_LE(metrics.rec_c, 1.0);
    EXPECT_GE(metrics.rec_r, 0.0);
    EXPECT_LE(metrics.rec_r, 1.0);
    EXPECT_GE(metrics.rec_r + 1e-12, metrics.rec * 0.0);  // Defined.
    // rec <= rec_c (covering a fraction of each hit cannot beat hitting).
    EXPECT_LE(metrics.rec, metrics.rec_c + 1e-12);
    EXPECT_LE(metrics.relayed_frames,
              static_cast<int64_t>(n) * kHorizon);
  }
}

TEST_P(MetricsPropertyTest, OptimalDecisionsAreOptimal) {
  const size_t k_events = GetParam();
  Rng rng(31 + k_events);
  std::vector<data::Record> records;
  std::vector<core::MarshalDecision> decisions;
  for (int i = 0; i < 30; ++i) {
    data::Record record = RandomRecord(rng, k_events);
    core::MarshalDecision decision;
    for (const auto& label : record.labels) {
      decision.exists.push_back(label.present);
      decision.intervals.push_back(
          label.present ? sim::Interval{label.start, label.end}
                        : sim::Interval::Empty());
    }
    records.push_back(std::move(record));
    decisions.push_back(std::move(decision));
  }
  const eval::Metrics metrics =
      eval::ComputeMetrics(records, decisions, kHorizon);
  if (metrics.positives > 0) {
    EXPECT_DOUBLE_EQ(metrics.rec, 1.0);
    EXPECT_DOUBLE_EQ(metrics.rec_c, 1.0);
    EXPECT_DOUBLE_EQ(metrics.rec_r, 1.0);
  }
  EXPECT_DOUBLE_EQ(metrics.spl, 0.0);
}

INSTANTIATE_TEST_SUITE_P(EventCounts, MetricsPropertyTest,
                         ::testing::Values(1u, 2u, 4u));

// ---------- Strategy knob monotonicities ----------

class StrategyKnobTest : public ::testing::TestWithParam<double> {};

core::EventScores ScoresWithBump(double b, int from, int to) {
  core::EventScores scores;
  scores.existence = {b};
  scores.occupancy.resize(1);
  scores.occupancy[0].assign(kHorizon, 0.05f);
  for (int v = from; v <= to; ++v) scores.occupancy[0][v - 1] = 0.9f;
  return scores;
}

TEST_P(StrategyKnobTest, Tau1MonotoneInPredictions) {
  const double b = GetParam();
  core::EventHitConfig config;
  config.collection_window = 3;
  config.horizon = kHorizon;
  config.feature_dim = 2;
  config.num_events = 1;
  config.epochs = 1;
  core::EventHitModel model(config);
  core::EventHitStrategyOptions options;
  core::EventHitStrategy strategy(&model, nullptr, nullptr, options);
  bool was_positive = true;
  for (double tau1 : {0.0, 0.2, 0.4, 0.6, 0.8, 1.0}) {
    strategy.set_tau1(tau1);
    const bool positive =
        strategy.DecideFromScores(ScoresWithBump(b, 10, 15)).exists[0];
    // Raising tau1 can only turn positives into negatives: once the
    // decision flips to negative it must stay negative.
    EXPECT_TRUE(!positive || was_positive)
        << "b=" << b << " tau1=" << tau1;
    was_positive = positive;
  }
}

TEST_P(StrategyKnobTest, Tau2WidensThenNarrowsEnvelope) {
  const double b = GetParam();
  core::EventHitConfig config;
  config.collection_window = 3;
  config.horizon = kHorizon;
  config.feature_dim = 2;
  config.num_events = 1;
  config.epochs = 1;
  core::EventHitModel model(config);
  core::EventHitStrategyOptions options;
  options.tau1 = 0.0;  // Always predict present; isolate tau2.
  core::EventHitStrategy strategy(&model, nullptr, nullptr, options);
  // Graded occupancy: 0.9 on [10,12], 0.5 on [8,15], 0.05 elsewhere.
  core::EventScores scores = ScoresWithBump(b, 10, 12);
  for (int v = 8; v <= 15; ++v) {
    scores.occupancy[0][v - 1] =
        std::max(scores.occupancy[0][v - 1], 0.5f);
  }
  int64_t previous = kHorizon + 1;
  for (double tau2 : {0.1, 0.5, 0.8}) {
    strategy.set_tau2(tau2);
    const auto decision = strategy.DecideFromScores(scores);
    ASSERT_TRUE(decision.exists[0]);
    // Higher tau2 -> equal or shorter envelope.
    EXPECT_LE(decision.intervals[0].length(), previous);
    previous = decision.intervals[0].length();
  }
}

INSTANTIATE_TEST_SUITE_P(Scores, StrategyKnobTest,
                         ::testing::Values(0.1, 0.5, 0.9));

// ---------- Cox survival laws across thresholds ----------

class CoxLawTest : public ::testing::TestWithParam<double> {};

TEST_P(CoxLawTest, SurvivalMonotoneAndCalibratedAtScale) {
  const double beta = GetParam();
  Rng rng(static_cast<uint64_t>(beta * 100) + 7);
  std::vector<survival::CoxObservation> data;
  for (int i = 0; i < 800; ++i) {
    survival::CoxObservation obs;
    obs.covariates = {rng.Gaussian()};
    const double rate = 0.02 * std::exp(beta * obs.covariates[0]);
    obs.time = std::max(1e-3, rng.Exponential(1.0 / rate));
    obs.observed = obs.time < 200.0;
    if (!obs.observed) obs.time = 200.0;
    data.push_back(std::move(obs));
  }
  const auto fit = survival::CoxModel::Fit(data);
  ASSERT_TRUE(fit.ok());
  const auto& model = fit.value();
  // Sign of the fitted coefficient matches the generator.
  if (beta > 0.2) {
    EXPECT_GT(model.coefficients()[0], 0.0);
  }
  if (beta < -0.2) {
    EXPECT_LT(model.coefficients()[0], 0.0);
  }
  // S is non-increasing for every covariate value.
  for (double x : {-1.5, 0.0, 1.5}) {
    double previous = 1.0;
    for (double t = 0.0; t <= 200.0; t += 10.0) {
      const double s = model.Survival(t, {x});
      EXPECT_LE(s, previous + 1e-12);
      previous = s;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Betas, CoxLawTest,
                         ::testing::Values(-0.8, 0.0, 0.5, 1.2));

}  // namespace
}  // namespace eventhit
