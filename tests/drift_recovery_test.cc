// Golden end-to-end drift-recovery tests (DESIGN.md §5j): for each
// deterministic drift scenario the breached → recalibrated → restored
// chain must hold with the loop armed while the recal=off control stays
// breached to stream end; runs must be byte-identical across repeats and
// thread counts; and freshly rebuilt conformal wrappers must still satisfy
// the C-CLASSIFY / C-REGRESS budgets on a stationary slice (the property
// the hot swap is allowed to promise).
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "adapt/recovery_lab.h"
#include "common/rng.h"
#include "core/c_classify.h"
#include "core/c_regress.h"
#include "core/eventhit_model.h"
#include "core/recalibrator.h"
#include "core/strategies.h"
#include "data/record_extractor.h"
#include "data/tasks.h"
#include "sim/drift_scenario.h"
#include "sim/synthetic_video.h"

namespace eventhit::adapt {
namespace {

// Generous ceiling on time-to-restore: every scenario's golden value is
// well under this (8000 / 5800 / 10200 frames at seed 42); the bound only
// guards against a rig that technically restores but drifts for an epoch.
constexpr int64_t kMaxTimeToRestore = 20000;

class DriftRecoveryTest : public ::testing::TestWithParam<std::string> {};

TEST_P(DriftRecoveryTest, BreachRecalibrateRestoreWithBreachedControl) {
  RecoveryLabConfig config;
  config.scenario = GetParam();
  const auto control = RunRecoveryControl(config);
  ASSERT_TRUE(control.ok()) << control.status().message();
  const RecoveryReport& on = control.value().with_recal;
  const RecoveryReport& off = control.value().without_recal;

  // Both arms share the trained rig and must see the same injected shift.
  EXPECT_EQ(on.scenario, GetParam());
  EXPECT_EQ(on.shift_frame, off.shift_frame);
  EXPECT_GT(on.shift_frame, on.stream_begin);

  // The control arm: drifted guarantees breach and never come back.
  EXPECT_FALSE(off.recal_enabled);
  EXPECT_GE(off.breach_time, off.shift_frame);
  EXPECT_TRUE(off.end_breached);
  EXPECT_EQ(off.restore_time, -1);
  EXPECT_EQ(off.time_to_restore, -1);
  EXPECT_EQ(off.recal.swaps, 0);
  EXPECT_EQ(off.swap_count, 0);

  // The armed arm walks the full causal chain on the simulated clock:
  // breach after the shift, swap at/after the breach, restore after the
  // swap, all within the pinned budget.
  EXPECT_TRUE(on.recal_enabled);
  ASSERT_GE(on.breach_time, on.shift_frame);
  ASSERT_GE(on.swap_count, 1);
  EXPECT_GE(on.first_swap_time, on.breach_time);
  ASSERT_GE(on.restore_time, on.first_swap_time);
  EXPECT_GT(on.time_to_restore, 0);
  EXPECT_LE(on.time_to_restore, kMaxTimeToRestore);
  EXPECT_EQ(on.recal.swaps, on.swap_count);
  EXPECT_GE(on.recal.triggers_breach + on.recal.triggers_drift, 1);

  // Coverage is visibly broken between shift and swap and visibly repaired
  // after it: the post-swap failure rates sit back inside the audited
  // budgets (with sampling slack) while the post-shift phase exceeded at
  // least one of them — otherwise nothing would have breached.
  const double miss_budget = 1.0 - config.confidence;
  const double miscover_budget = 1.0 - config.coverage;
  EXPECT_GT(on.post_shift.boundaries, 0);
  EXPECT_GT(on.post_swap.boundaries, 0);
  EXPECT_TRUE(on.post_shift.MissRate() > miss_budget ||
              on.post_shift.MiscoverRate() > miscover_budget)
      << "post-shift phase never violated a budget, yet a breach latched";
  EXPECT_LE(on.post_swap.MissRate(), miss_budget + 0.08);
  EXPECT_LE(on.post_swap.MiscoverRate(), miscover_budget + 0.08);

  // Identical stationary warmups: the two arms decide identically until
  // the first swap, so their pre-shift accounting matches exactly.
  EXPECT_EQ(on.pre_shift.boundaries, off.pre_shift.boundaries);
  EXPECT_EQ(on.pre_shift.misses, off.pre_shift.misses);
  EXPECT_EQ(on.pre_shift.miscovered, off.pre_shift.miscovered);
}

INSTANTIATE_TEST_SUITE_P(AllScenarios, DriftRecoveryTest,
                         ::testing::ValuesIn(sim::DriftScenarioNames()),
                         [](const auto& info) {
                           std::string name = info.param;
                           for (char& c : name) {
                             if (c == '-') c = '_';
                           }
                           return name;
                         });

// One rig, replayed at different calibration thread counts and once more
// at the original count: every observable — the decision digest, the
// causal-chain timestamps, the loop counters — must be byte-identical.
TEST(DriftRecoveryDeterminismTest, ByteIdenticalAcrossThreadsAndRepeats) {
  RecoveryLabConfig config;
  config.scenario = "precursor-shift";
  config.threads = 1;
  const auto one = RunRecovery(config);
  ASSERT_TRUE(one.ok()) << one.status().message();
  config.threads = 4;
  const auto four = RunRecovery(config);
  ASSERT_TRUE(four.ok()) << four.status().message();
  config.threads = 1;
  const auto replay = RunRecovery(config);
  ASSERT_TRUE(replay.ok()) << replay.status().message();

  ASSERT_GE(one.value().swap_count, 1);
  for (const RecoveryReport* other :
       {&four.value(), &replay.value()}) {
    EXPECT_EQ(one.value().decision_digest, other->decision_digest);
    EXPECT_EQ(one.value().breach_time, other->breach_time);
    EXPECT_EQ(one.value().alarm_time, other->alarm_time);
    EXPECT_EQ(one.value().first_swap_time, other->first_swap_time);
    EXPECT_EQ(one.value().swap_count, other->swap_count);
    EXPECT_EQ(one.value().restore_time, other->restore_time);
    EXPECT_EQ(one.value().time_to_restore, other->time_to_restore);
    EXPECT_EQ(one.value().recal.records_observed,
              other->recal.records_observed);
    EXPECT_EQ(one.value().recal.triggers_breach,
              other->recal.triggers_breach);
    EXPECT_EQ(one.value().recal.triggers_drift,
              other->recal.triggers_drift);
  }
}

// With the breach trigger disarmed the martingale alone must close the
// loop: drift alarm → swap → restore, with the auditor reduced to a
// scorer.
TEST(DriftRecoveryDeterminismTest, MartingaleOnlyRecoveryCloses) {
  RecoveryLabConfig config;
  config.scenario = "precursor-shift";
  config.breach_trigger = false;
  const auto run = RunRecovery(config);
  ASSERT_TRUE(run.ok()) << run.status().message();
  const RecoveryReport& report = run.value();
  EXPECT_EQ(report.recal.triggers_breach, 0);
  ASSERT_GE(report.recal.triggers_drift, 1);
  ASSERT_GE(report.alarm_time, report.shift_frame);
  ASSERT_GE(report.swap_count, 1);
  EXPECT_GE(report.first_swap_time, report.alarm_time);
  ASSERT_GE(report.restore_time, report.first_swap_time);
  EXPECT_LE(report.time_to_restore, kMaxTimeToRestore);
}

TEST(DriftRecoveryDeterminismTest, UnknownScenarioIsInvalidArgument) {
  RecoveryLabConfig config;
  config.scenario = "no-such-shift";
  const auto run = RunRecovery(config);
  EXPECT_FALSE(run.ok());
}

// Property test (conformal_validity_test.cc style): calibrators rebuilt by
// the Recalibrator from a rolling window of stationary records must honour
// the same marginal budgets as first-build calibration — the statistical
// contract that makes a hot swap safe, checked on a fresh held-out slice.
TEST(RecalibratedValidityTest, RebuiltCalibratorsKeepBudgetsOnFreshSlice) {
  const auto scenario = sim::MakeDriftScenario("precursor-shift", 60000, 100);
  ASSERT_TRUE(scenario.ok());
  const data::Task task{"recal-validity", sim::DatasetId::kThumos, {0}, {7}};
  const double confidence = 0.9;
  const double alpha = 0.9;

  int64_t positives = 0;
  int64_t misses = 0;
  int64_t endpoints = 0;
  int64_t covered = 0;
  for (const uint64_t seed : {21ULL, 22ULL}) {
    const sim::SyntheticVideo video =
        sim::SyntheticVideo::Generate(scenario.value().before, seed);
    data::ExtractorConfig extractor;
    extractor.collection_window = scenario.value().before.collection_window;
    extractor.horizon = scenario.value().before.horizon;
    const int horizon = extractor.horizon;

    Rng rng(seed * 17 + 1);
    const auto train = data::SampleBalancedRecords(
        video, task, extractor,
        sim::Interval{extractor.collection_window, 20000}, 300, 0.5, rng);
    core::EventHitConfig model_config;
    model_config.collection_window = extractor.collection_window;
    model_config.horizon = horizon;
    model_config.feature_dim = video.feature_dim();
    model_config.num_events = 1;
    model_config.epochs = 8;
    core::EventHitModel model(model_config);
    model.Train(train);

    // Fill the rolling window the way the loop does — one confirmed record
    // at a time — then rebuild both wrappers from it.
    core::Recalibrator recalibrator(&model, /*capacity=*/200, /*tau2=*/0.5);
    for (const auto& record : data::SampleUniformRecords(
             video, task, extractor, sim::Interval{20001, 40000}, 200,
             rng)) {
      recalibrator.AddLabeledRecord(record);
    }
    ASSERT_TRUE(recalibrator.CanRebuild(64, 16));
    const std::unique_ptr<core::CClassify> cclassify =
        recalibrator.BuildCClassify();
    const std::unique_ptr<core::CRegress> cregress =
        recalibrator.BuildCRegress();

    core::EventHitStrategyOptions options;
    options.use_cclassify = true;
    options.use_cregress = true;
    options.confidence = confidence;
    options.coverage = alpha;
    const core::EventHitStrategy strategy(&model, cclassify.get(),
                                          cregress.get(), options);

    for (const auto& record : data::SampleUniformRecords(
             video, task, extractor,
             sim::Interval{40001, video.num_frames() - horizon - 1}, 300,
             rng)) {
      const data::EventLabel& label = record.labels[0];
      if (!label.present) continue;
      const core::MarshalDecision decision = strategy.Decide(record);
      ++positives;
      if (!decision.exists[0]) {
        ++misses;
        continue;
      }
      // Clamp-aware endpoint scoring, as in conformal_validity_test.cc:
      // an interval pinned at 1 / H cannot fail on that side.
      endpoints += 2;
      if (decision.intervals[0].start <= label.start ||
          decision.intervals[0].start == 1) {
        ++covered;
      }
      if (decision.intervals[0].end >= label.end ||
          decision.intervals[0].end == horizon) {
        ++covered;
      }
    }
  }

  ASSERT_GT(positives, 100);
  ASSERT_GT(endpoints, 100);
  const double miss_rate = static_cast<double>(misses) / positives;
  const double endpoint_coverage = static_cast<double>(covered) / endpoints;
  // C-CLASSIFY Theorem 4.2: P(miss) <= 1 - c, with finite-sample slack.
  EXPECT_LE(miss_rate, (1.0 - confidence) + 0.08);
  // C-REGRESS Theorem 5.2: each endpoint covered w.p. >= alpha.
  EXPECT_GE(endpoint_coverage, alpha - 0.07);
}

}  // namespace
}  // namespace eventhit::adapt
