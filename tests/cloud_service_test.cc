#include "cloud/cloud_service.h"

#include <gtest/gtest.h>

#include "sim/datasets.h"

namespace eventhit::cloud {
namespace {

sim::SyntheticVideo SmallVideo() {
  sim::DatasetSpec spec = sim::MakeDatasetSpec(sim::DatasetId::kThumos);
  spec.num_frames = 30000;
  return sim::SyntheticVideo::Generate(spec, 51);
}

TEST(CloudServiceTest, InvoiceAccrual) {
  const sim::SyntheticVideo video = SmallVideo();
  CloudConfig config;
  config.price_per_frame_usd = 0.001;
  config.frames_per_second = 30.0;
  CloudService service(&video, config, 1);

  service.Detect(0, sim::Interval{100, 199});
  EXPECT_EQ(service.invoice().frames_processed, 100);
  EXPECT_EQ(service.invoice().requests, 1);
  EXPECT_NEAR(service.invoice().total_cost_usd, 0.1, 1e-12);
  EXPECT_NEAR(service.invoice().compute_seconds, 100.0 / 30.0, 1e-9);

  service.Detect(0, sim::Interval{200, 249});
  EXPECT_EQ(service.invoice().frames_processed, 150);
  EXPECT_EQ(service.invoice().requests, 2);

  service.ResetInvoice();
  EXPECT_EQ(service.invoice().frames_processed, 0);
  EXPECT_EQ(service.invoice().total_cost_usd, 0.0);
}

TEST(CloudServiceTest, PerfectAccuracyMatchesGroundTruth) {
  const sim::SyntheticVideo video = SmallVideo();
  CloudConfig config;
  config.accuracy = 1.0;
  CloudService service(&video, config, 2);
  const sim::Interval window{1000, 1999};
  const auto detections = service.Detect(0, window);
  ASSERT_EQ(detections.size(), 1000u);
  for (int64_t t = window.start; t <= window.end; ++t) {
    EXPECT_EQ(detections[static_cast<size_t>(t - window.start)],
              video.timeline().IsActive(0, t));
  }
}

TEST(CloudServiceTest, ImperfectAccuracyFlipsSomeLabels) {
  const sim::SyntheticVideo video = SmallVideo();
  CloudConfig config;
  config.accuracy = 0.9;
  CloudService service(&video, config, 3);
  const sim::Interval window{0, 9999};
  const auto detections = service.Detect(0, window);
  int64_t flips = 0;
  for (int64_t t = 0; t < 10000; ++t) {
    if (detections[static_cast<size_t>(t)] !=
        video.timeline().IsActive(0, t)) {
      ++flips;
    }
  }
  EXPECT_NEAR(static_cast<double>(flips) / 10000.0, 0.1, 0.02);
}

TEST(CloudServiceTest, ChargeFramesWithoutDetection) {
  const sim::SyntheticVideo video = SmallVideo();
  CloudService service(&video, CloudConfig{}, 4);
  service.ChargeFrames(500);
  EXPECT_EQ(service.invoice().frames_processed, 500);
  EXPECT_EQ(service.invoice().requests, 0);
}

TEST(CloudServiceTest, InvalidIntervalDies) {
  const sim::SyntheticVideo video = SmallVideo();
  CloudService service(&video, CloudConfig{}, 5);
  EXPECT_DEATH(service.Detect(0, sim::Interval::Empty()), "CHECK failed");
  EXPECT_DEATH(service.Detect(0, sim::Interval{-5, 10}), "CHECK failed");
  EXPECT_DEATH(
      service.Detect(0, sim::Interval{0, video.num_frames() + 5}),
      "CHECK failed");
  EXPECT_DEATH(service.ChargeFrames(-1), "CHECK failed");
}

}  // namespace
}  // namespace eventhit::cloud
