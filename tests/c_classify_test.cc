#include "core/c_classify.h"

#include <gtest/gtest.h>

namespace eventhit::core {
namespace {

EventScores ScoresFor(std::vector<double> existence) {
  EventScores scores;
  scores.existence = std::move(existence);
  scores.occupancy.resize(scores.existence.size());
  return scores;
}

TEST(CClassifyTest, PValuesMatchAlgorithmOne) {
  // Event 0 calibration b-scores {0.9, 0.8, 0.7, 0.6} -> non-conformity
  // a = 1-b in {0.1, 0.2, 0.3, 0.4}.
  CClassify cclassify(
      std::vector<std::vector<double>>{{0.1, 0.2, 0.3, 0.4}});
  // New score b = 0.75 -> a = 0.25 -> two calibration scores >= 0.25; the
  // test point counts itself, so p = (2+1)/(4+1) = 3/5.
  const auto p = cclassify.PValues(ScoresFor({0.75}));
  ASSERT_EQ(p.size(), 1u);
  EXPECT_DOUBLE_EQ(p[0], 3.0 / 5.0);
}

TEST(CClassifyTest, ExistenceDecisionThresholdsPValue) {
  CClassify cclassify(
      std::vector<std::vector<double>>{{0.1, 0.2, 0.3, 0.4}});
  // p(b=0.75) = 0.6: positive iff 0.6 >= 1-c, i.e. c >= 0.4.
  EXPECT_FALSE(cclassify.PredictExistence(ScoresFor({0.75}), 0.3)[0]);
  EXPECT_TRUE(cclassify.PredictExistence(ScoresFor({0.75}), 0.4)[0]);
  EXPECT_TRUE(cclassify.PredictExistence(ScoresFor({0.75}), 0.9)[0]);
}

TEST(CClassifyTest, PerEventIndependence) {
  CClassify cclassify(std::vector<std::vector<double>>{
      {0.1, 0.2},          // Event 0: strong calibration scores.
      {0.7, 0.8, 0.9}});   // Event 1: weak calibration scores.
  const auto p = cclassify.PValues(ScoresFor({0.5, 0.5}));
  // Event 0: a=0.5, none >= 0.5 -> (0+1)/3. Event 1: all 3 >= -> (3+1)/4.
  EXPECT_DOUBLE_EQ(p[0], 1.0 / 3.0);
  EXPECT_DOUBLE_EQ(p[1], 1.0);
  EXPECT_EQ(cclassify.CalibrationSize(0), 2u);
  EXPECT_EQ(cclassify.CalibrationSize(1), 3u);
}

TEST(CClassifyTest, MonotoneSetGrowthInConfidence) {
  // Eq. (10): the predicted-positive set grows with c.
  CClassify cclassify(std::vector<std::vector<double>>{
      {0.05, 0.15, 0.35, 0.55}, {0.2, 0.4, 0.6, 0.8}});
  const EventScores scores = ScoresFor({0.7, 0.45});
  size_t previous = 0;
  for (double c : {0.2, 0.4, 0.6, 0.8, 0.95, 1.0}) {
    const auto exists = cclassify.PredictExistence(scores, c);
    size_t count = 0;
    for (bool e : exists) count += e ? 1 : 0;
    EXPECT_GE(count, previous) << "c=" << c;
    previous = count;
  }
  EXPECT_EQ(previous, 2u);  // c=1 predicts everything.
}

TEST(CClassifyTest, HigherScoreNeverHurts) {
  CClassify cclassify(
      std::vector<std::vector<double>>{{0.1, 0.3, 0.5, 0.7, 0.9}});
  for (double c : {0.3, 0.6, 0.9}) {
    bool was_positive = false;
    for (double b : {0.05, 0.2, 0.5, 0.8, 0.95}) {
      const bool positive = cclassify.PredictExistence(ScoresFor({b}), c)[0];
      EXPECT_TRUE(positive || !was_positive)
          << "b=" << b << " c=" << c;
      was_positive = positive;
    }
  }
}

TEST(CClassifyTest, ScoreArityMismatchDies) {
  CClassify cclassify(std::vector<std::vector<double>>{{0.1}});
  EXPECT_DEATH(cclassify.PValues(ScoresFor({0.5, 0.5})), "CHECK failed");
}

}  // namespace
}  // namespace eventhit::core
