#include "nn/matrix.h"

#include <cmath>

#include <gtest/gtest.h>

#include "common/rng.h"

namespace eventhit::nn {
namespace {

TEST(MatrixTest, ZeroConstruction) {
  Matrix m(3, 4);
  EXPECT_EQ(m.rows(), 3u);
  EXPECT_EQ(m.cols(), 4u);
  EXPECT_EQ(m.size(), 12u);
  for (size_t r = 0; r < 3; ++r) {
    for (size_t c = 0; c < 4; ++c) EXPECT_EQ(m.At(r, c), 0.0f);
  }
}

TEST(MatrixTest, RowMajorLayout) {
  Matrix m(2, 3);
  m.At(1, 2) = 7.0f;
  EXPECT_EQ(m.data()[1 * 3 + 2], 7.0f);
  EXPECT_EQ(m.Row(1)[2], 7.0f);
}

TEST(MatrixTest, GlorotBoundsRespected) {
  Rng rng(5);
  const Matrix m = Matrix::GlorotUniform(20, 30, rng);
  const double bound = std::sqrt(6.0 / 50.0);
  bool any_nonzero = false;
  for (size_t i = 0; i < m.size(); ++i) {
    EXPECT_LE(std::fabs(m.data()[i]), bound + 1e-6);
    any_nonzero = any_nonzero || m.data()[i] != 0.0f;
  }
  EXPECT_TRUE(any_nonzero);
}

TEST(MatrixTest, SetZeroAndAxpy) {
  Matrix a(2, 2);
  Matrix b(2, 2);
  a.At(0, 0) = 1.0f;
  b.At(0, 0) = 2.0f;
  b.At(1, 1) = 4.0f;
  a.Axpy(0.5f, b);
  EXPECT_EQ(a.At(0, 0), 2.0f);
  EXPECT_EQ(a.At(1, 1), 2.0f);
  a.SetZero();
  EXPECT_EQ(a.At(0, 0), 0.0f);
}

TEST(MatrixTest, SquaredNorm) {
  Matrix m(1, 3);
  m.At(0, 0) = 1.0f;
  m.At(0, 1) = 2.0f;
  m.At(0, 2) = -2.0f;
  EXPECT_DOUBLE_EQ(m.SquaredNorm(), 9.0);
}

TEST(KernelsTest, MatVec) {
  Matrix w(2, 3);
  // [[1 2 3], [4 5 6]] * [1, 0, -1] = [-2, -2]
  float vals[] = {1, 2, 3, 4, 5, 6};
  for (size_t i = 0; i < 6; ++i) w.data()[i] = vals[i];
  const float x[] = {1.0f, 0.0f, -1.0f};
  float y[2];
  MatVec(w, x, y);
  EXPECT_FLOAT_EQ(y[0], -2.0f);
  EXPECT_FLOAT_EQ(y[1], -2.0f);
}

TEST(KernelsTest, MatVecAccumAddsToExisting) {
  Matrix w(1, 2);
  w.At(0, 0) = 1.0f;
  w.At(0, 1) = 1.0f;
  const float x[] = {2.0f, 3.0f};
  float y[1] = {10.0f};
  MatVecAccum(w, x, y);
  EXPECT_FLOAT_EQ(y[0], 15.0f);
}

TEST(KernelsTest, MatTVecAccumIsTransposeProduct) {
  Matrix w(2, 3);
  float vals[] = {1, 2, 3, 4, 5, 6};
  for (size_t i = 0; i < 6; ++i) w.data()[i] = vals[i];
  const float dy[] = {1.0f, -1.0f};
  float dx[3] = {0.0f, 0.0f, 0.0f};
  MatTVecAccum(w, dy, dx);
  EXPECT_FLOAT_EQ(dx[0], -3.0f);  // 1*1 + 4*(-1)
  EXPECT_FLOAT_EQ(dx[1], -3.0f);  // 2 - 5
  EXPECT_FLOAT_EQ(dx[2], -3.0f);  // 3 - 6
}

TEST(KernelsTest, OuterAccum) {
  Matrix dw(2, 2);
  const float dy[] = {1.0f, 2.0f};
  const float x[] = {3.0f, 4.0f};
  OuterAccum(dw, dy, x);
  OuterAccum(dw, dy, x);  // Accumulates.
  EXPECT_FLOAT_EQ(dw.At(0, 0), 6.0f);
  EXPECT_FLOAT_EQ(dw.At(0, 1), 8.0f);
  EXPECT_FLOAT_EQ(dw.At(1, 0), 12.0f);
  EXPECT_FLOAT_EQ(dw.At(1, 1), 16.0f);
}

TEST(KernelsTest, MatVecThenTransposeRoundTripConsistency) {
  // Property: dy . (W x) == x . (W^T dy) for random data.
  Rng rng(99);
  const Matrix w = Matrix::GlorotUniform(5, 7, rng);
  Vec x(7), dy(5);
  for (auto& v : x) v = static_cast<float>(rng.Gaussian());
  for (auto& v : dy) v = static_cast<float>(rng.Gaussian());
  Vec y(5, 0.0f);
  MatVec(w, x.data(), y.data());
  Vec dx(7, 0.0f);
  MatTVecAccum(w, dy.data(), dx.data());
  double lhs = 0.0, rhs = 0.0;
  for (size_t i = 0; i < 5; ++i) lhs += static_cast<double>(dy[i]) * y[i];
  for (size_t i = 0; i < 7; ++i) rhs += static_cast<double>(x[i]) * dx[i];
  EXPECT_NEAR(lhs, rhs, 1e-4);
}

}  // namespace
}  // namespace eventhit::nn
