#include "core/interval_extraction.h"

#include <gtest/gtest.h>

namespace eventhit::core {
namespace {

TEST(IntervalExtractionTest, MinMaxAboveThreshold) {
  // Offsets are 1-based: theta[0] scores offset 1.
  const std::vector<float> theta{0.1f, 0.6f, 0.4f, 0.7f, 0.2f};
  const sim::Interval interval = ExtractOccurrenceInterval(theta, 0.5);
  EXPECT_EQ(interval, (sim::Interval{2, 4}));
}

TEST(IntervalExtractionTest, DiscontinuousScoresSpanned) {
  // Eq. (6) takes min..max even when intermediate frames dip below tau2.
  const std::vector<float> theta{0.9f, 0.1f, 0.1f, 0.9f};
  EXPECT_EQ(ExtractOccurrenceInterval(theta, 0.5), (sim::Interval{1, 4}));
}

TEST(IntervalExtractionTest, AllAboveThreshold) {
  const std::vector<float> theta{0.8f, 0.9f, 0.8f};
  EXPECT_EQ(ExtractOccurrenceInterval(theta, 0.5), (sim::Interval{1, 3}));
}

TEST(IntervalExtractionTest, FallbackToArgmaxWhenNothingClears) {
  const std::vector<float> theta{0.1f, 0.3f, 0.2f};
  EXPECT_EQ(ExtractOccurrenceInterval(theta, 0.5), (sim::Interval{2, 2}));
}

TEST(IntervalExtractionTest, ThresholdIsInclusive) {
  const std::vector<float> theta{0.5f, 0.4f};
  EXPECT_EQ(ExtractOccurrenceInterval(theta, 0.5), (sim::Interval{1, 1}));
}

TEST(IntervalExtractionTest, SingleFrameHorizon) {
  EXPECT_EQ(ExtractOccurrenceInterval({0.9f}, 0.5), (sim::Interval{1, 1}));
  EXPECT_EQ(ExtractOccurrenceInterval({0.1f}, 0.5), (sim::Interval{1, 1}));
}

TEST(IntervalExtractionTest, EmptyThetaDies) {
  EXPECT_DEATH(ExtractOccurrenceInterval({}, 0.5), "CHECK failed");
}

TEST(ClampToHorizonTest, InsideUnchanged) {
  EXPECT_EQ(ClampToHorizon(sim::Interval{2, 5}, 10), (sim::Interval{2, 5}));
}

TEST(ClampToHorizonTest, ClipsBothEnds) {
  EXPECT_EQ(ClampToHorizon(sim::Interval{-3, 15}, 10),
            (sim::Interval{1, 10}));
}

TEST(ClampToHorizonTest, SnapsWhenFullyOutside) {
  EXPECT_EQ(ClampToHorizon(sim::Interval{-9, -2}, 10), (sim::Interval{1, 1}));
  EXPECT_EQ(ClampToHorizon(sim::Interval{12, 20}, 10),
            (sim::Interval{10, 10}));
}

TEST(ClampToHorizonTest, EmptyStaysEmpty) {
  EXPECT_TRUE(ClampToHorizon(sim::Interval::Empty(), 10).empty());
}

}  // namespace
}  // namespace eventhit::core
