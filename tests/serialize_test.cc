#include "nn/serialize.h"

#include <cstdio>
#include <string>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "nn/matrix.h"
#include "nn/parameter.h"

namespace eventhit::nn {
namespace {

std::string TempPath(const char* name) {
  return std::string(::testing::TempDir()) + "/" + name;
}

TEST(SerializeTest, RoundTrip) {
  Rng rng(1);
  Parameter a("a", Matrix::GlorotUniform(3, 4, rng));
  Parameter b("b", Matrix::GlorotUniform(2, 2, rng));
  const std::string path = TempPath("roundtrip.bin");
  ASSERT_TRUE(SaveParameters({&a, &b}, path).ok());

  Parameter a2("a", Matrix::Zeros(3, 4));
  Parameter b2("b", Matrix::Zeros(2, 2));
  ASSERT_TRUE(LoadParameters({&a2, &b2}, path).ok());
  for (size_t i = 0; i < a.value.size(); ++i) {
    EXPECT_EQ(a.value.data()[i], a2.value.data()[i]);
  }
  for (size_t i = 0; i < b.value.size(); ++i) {
    EXPECT_EQ(b.value.data()[i], b2.value.data()[i]);
  }
  std::remove(path.c_str());
}

TEST(SerializeTest, MissingFileIsNotFound) {
  Parameter a("a", Matrix::Zeros(1, 1));
  const Status status = LoadParameters({&a}, TempPath("does_not_exist.bin"));
  EXPECT_EQ(status.code(), StatusCode::kNotFound);
}

TEST(SerializeTest, NameMismatchRejected) {
  Rng rng(2);
  Parameter a("a", Matrix::GlorotUniform(2, 2, rng));
  const std::string path = TempPath("name_mismatch.bin");
  ASSERT_TRUE(SaveParameters({&a}, path).ok());
  Parameter wrong("different", Matrix::Zeros(2, 2));
  const Status status = LoadParameters({&wrong}, path);
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  std::remove(path.c_str());
}

TEST(SerializeTest, ShapeMismatchRejected) {
  Rng rng(3);
  Parameter a("a", Matrix::GlorotUniform(2, 2, rng));
  const std::string path = TempPath("shape_mismatch.bin");
  ASSERT_TRUE(SaveParameters({&a}, path).ok());
  Parameter wrong("a", Matrix::Zeros(2, 3));
  EXPECT_EQ(LoadParameters({&wrong}, path).code(),
            StatusCode::kInvalidArgument);
  std::remove(path.c_str());
}

TEST(SerializeTest, CountMismatchRejected) {
  Rng rng(4);
  Parameter a("a", Matrix::GlorotUniform(2, 2, rng));
  const std::string path = TempPath("count_mismatch.bin");
  ASSERT_TRUE(SaveParameters({&a}, path).ok());
  Parameter a2("a", Matrix::Zeros(2, 2));
  Parameter extra("extra", Matrix::Zeros(1, 1));
  EXPECT_EQ(LoadParameters({&a2, &extra}, path).code(),
            StatusCode::kInvalidArgument);
  std::remove(path.c_str());
}

TEST(SerializeTest, CorruptMagicRejected) {
  const std::string path = TempPath("corrupt.bin");
  std::FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  const char junk[] = "not a model file at all";
  std::fwrite(junk, 1, sizeof(junk), f);
  std::fclose(f);
  Parameter a("a", Matrix::Zeros(1, 1));
  EXPECT_EQ(LoadParameters({&a}, path).code(), StatusCode::kInvalidArgument);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace eventhit::nn
