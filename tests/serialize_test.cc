#include "nn/serialize.h"

#include <cstdint>
#include <cstdio>
#include <string>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "nn/matrix.h"
#include "nn/parameter.h"

namespace eventhit::nn {
namespace {

std::string TempPath(const char* name) {
  return std::string(::testing::TempDir()) + "/" + name;
}

TEST(SerializeTest, RoundTrip) {
  Rng rng(1);
  Parameter a("a", Matrix::GlorotUniform(3, 4, rng));
  Parameter b("b", Matrix::GlorotUniform(2, 2, rng));
  const std::string path = TempPath("roundtrip.bin");
  ASSERT_TRUE(SaveParameters({&a, &b}, path).ok());

  Parameter a2("a", Matrix::Zeros(3, 4));
  Parameter b2("b", Matrix::Zeros(2, 2));
  ASSERT_TRUE(LoadParameters({&a2, &b2}, path).ok());
  for (size_t i = 0; i < a.value.size(); ++i) {
    EXPECT_EQ(a.value.data()[i], a2.value.data()[i]);
  }
  for (size_t i = 0; i < b.value.size(); ++i) {
    EXPECT_EQ(b.value.data()[i], b2.value.data()[i]);
  }
  std::remove(path.c_str());
}

TEST(SerializeTest, MissingFileIsNotFound) {
  Parameter a("a", Matrix::Zeros(1, 1));
  const Status status = LoadParameters({&a}, TempPath("does_not_exist.bin"));
  EXPECT_EQ(status.code(), StatusCode::kNotFound);
}

TEST(SerializeTest, NameMismatchRejected) {
  Rng rng(2);
  Parameter a("a", Matrix::GlorotUniform(2, 2, rng));
  const std::string path = TempPath("name_mismatch.bin");
  ASSERT_TRUE(SaveParameters({&a}, path).ok());
  Parameter wrong("different", Matrix::Zeros(2, 2));
  const Status status = LoadParameters({&wrong}, path);
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  std::remove(path.c_str());
}

TEST(SerializeTest, ShapeMismatchRejected) {
  Rng rng(3);
  Parameter a("a", Matrix::GlorotUniform(2, 2, rng));
  const std::string path = TempPath("shape_mismatch.bin");
  ASSERT_TRUE(SaveParameters({&a}, path).ok());
  Parameter wrong("a", Matrix::Zeros(2, 3));
  EXPECT_EQ(LoadParameters({&wrong}, path).code(),
            StatusCode::kInvalidArgument);
  std::remove(path.c_str());
}

TEST(SerializeTest, CountMismatchRejected) {
  Rng rng(4);
  Parameter a("a", Matrix::GlorotUniform(2, 2, rng));
  const std::string path = TempPath("count_mismatch.bin");
  ASSERT_TRUE(SaveParameters({&a}, path).ok());
  Parameter a2("a", Matrix::Zeros(2, 2));
  Parameter extra("extra", Matrix::Zeros(1, 1));
  EXPECT_EQ(LoadParameters({&a2, &extra}, path).code(),
            StatusCode::kInvalidArgument);
  std::remove(path.c_str());
}

TEST(SerializeTest, TruncatedDataRejectedAndDestinationUntouched) {
  Rng rng(5);
  Parameter a("a", Matrix::GlorotUniform(2, 2, rng));
  Parameter b("b", Matrix::GlorotUniform(3, 3, rng));
  const std::string path = TempPath("truncated.bin");
  ASSERT_TRUE(SaveParameters({&a, &b}, path).ok());

  // Chop the file mid-way through the last parameter's float payload.
  std::FILE* f = std::fopen(path.c_str(), "rb");
  ASSERT_NE(f, nullptr);
  std::fseek(f, 0, SEEK_END);
  const long full_size = std::ftell(f);
  std::fclose(f);
  std::string bytes(static_cast<size_t>(full_size), '\0');
  f = std::fopen(path.c_str(), "rb");
  ASSERT_EQ(std::fread(bytes.data(), 1, bytes.size(), f), bytes.size());
  std::fclose(f);
  bytes.resize(bytes.size() - 2 * sizeof(float));
  f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  ASSERT_EQ(std::fwrite(bytes.data(), 1, bytes.size(), f), bytes.size());
  std::fclose(f);

  // Load must fail — and, because loading is atomic, parameter "a" (whose
  // bytes were intact in the truncated file) must not be overwritten.
  Parameter a2("a", Matrix::Zeros(2, 2));
  Parameter b2("b", Matrix::Zeros(3, 3));
  const Status status = LoadParameters({&a2, &b2}, path);
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  for (size_t i = 0; i < a2.value.size(); ++i) {
    EXPECT_EQ(a2.value.data()[i], 0.0f);
  }
  for (size_t i = 0; i < b2.value.size(); ++i) {
    EXPECT_EQ(b2.value.data()[i], 0.0f);
  }
  std::remove(path.c_str());
}

TEST(SerializeTest, TrailingGarbageRejected) {
  Rng rng(6);
  Parameter a("a", Matrix::GlorotUniform(2, 2, rng));
  const std::string path = TempPath("trailing.bin");
  ASSERT_TRUE(SaveParameters({&a}, path).ok());
  std::FILE* f = std::fopen(path.c_str(), "ab");
  ASSERT_NE(f, nullptr);
  const char junk[] = "leftover";
  std::fwrite(junk, 1, sizeof(junk), f);
  std::fclose(f);
  Parameter a2("a", Matrix::Zeros(2, 2));
  EXPECT_EQ(LoadParameters({&a2}, path).code(), StatusCode::kInvalidArgument);
  std::remove(path.c_str());
}

TEST(SerializeTest, ImplausibleNameLengthRejected) {
  // A header followed by a name length in the megabytes is a corrupt
  // stream; it must be rejected up front rather than trusted as an
  // allocation size.
  const std::string path = TempPath("bad_name_len.bin");
  std::FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  const uint32_t header[] = {0x45564849u, 1u, 1u, 0x7FFFFFFFu};
  std::fwrite(header, sizeof(uint32_t), 4, f);
  std::fclose(f);
  Parameter a("a", Matrix::Zeros(1, 1));
  EXPECT_EQ(LoadParameters({&a}, path).code(), StatusCode::kInvalidArgument);
  std::remove(path.c_str());
}

TEST(SerializeTest, CorruptMagicRejected) {
  const std::string path = TempPath("corrupt.bin");
  std::FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  const char junk[] = "not a model file at all";
  std::fwrite(junk, 1, sizeof(junk), f);
  std::fclose(f);
  Parameter a("a", Matrix::Zeros(1, 1));
  EXPECT_EQ(LoadParameters({&a}, path).code(), StatusCode::kInvalidArgument);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace eventhit::nn
