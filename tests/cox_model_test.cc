#include "survival/cox_model.h"

#include <cmath>

#include <gtest/gtest.h>

#include "common/rng.h"

namespace eventhit::survival {
namespace {

// Synthetic proportional-hazards data: hazard(t|x) = h0 * exp(beta . x),
// i.e. time ~ Exponential(mean = 1 / (h0 * exp(beta . x))).
std::vector<CoxObservation> SimulateCoxData(const std::vector<double>& beta,
                                            double h0, size_t n,
                                            double censor_time, Rng& rng) {
  std::vector<CoxObservation> observations;
  observations.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    CoxObservation obs;
    obs.covariates.resize(beta.size());
    double eta = 0.0;
    for (size_t c = 0; c < beta.size(); ++c) {
      obs.covariates[c] = rng.Gaussian(0.0, 1.0);
      eta += beta[c] * obs.covariates[c];
    }
    const double rate = h0 * std::exp(eta);
    const double time = rng.Exponential(1.0 / rate);
    if (time < censor_time) {
      obs.time = std::max(time, 1e-3);
      obs.observed = true;
    } else {
      obs.time = censor_time;
      obs.observed = false;
    }
    observations.push_back(std::move(obs));
  }
  return observations;
}

TEST(CoxModelTest, RecoversCoefficients) {
  Rng rng(42);
  const std::vector<double> beta{0.8, -0.5};
  const auto data = SimulateCoxData(beta, 0.05, 2000, 100.0, rng);
  const auto fit = CoxModel::Fit(data);
  ASSERT_TRUE(fit.ok()) << fit.status();
  const auto& coefficients = fit.value().coefficients();
  ASSERT_EQ(coefficients.size(), 2u);
  EXPECT_NEAR(coefficients[0], 0.8, 0.12);
  EXPECT_NEAR(coefficients[1], -0.5, 0.12);
}

TEST(CoxModelTest, NullModelOnNoise) {
  Rng rng(43);
  const auto data = SimulateCoxData({0.0}, 0.05, 1500, 100.0, rng);
  const auto fit = CoxModel::Fit(data);
  ASSERT_TRUE(fit.ok());
  EXPECT_NEAR(fit.value().coefficients()[0], 0.0, 0.1);
}

TEST(CoxModelTest, SurvivalCurveProperties) {
  Rng rng(44);
  const auto data = SimulateCoxData({0.6}, 0.05, 800, 100.0, rng);
  const auto fit = CoxModel::Fit(data);
  ASSERT_TRUE(fit.ok());
  const CoxModel& model = fit.value();
  const std::vector<double> x{0.5};
  // S(0) = 1; non-increasing in t; event probability complementary.
  EXPECT_DOUBLE_EQ(model.Survival(0.0, x), 1.0);
  double previous = 1.0;
  for (double t : {1.0, 5.0, 10.0, 25.0, 50.0, 90.0}) {
    const double s = model.Survival(t, x);
    EXPECT_LE(s, previous + 1e-12);
    EXPECT_GE(s, 0.0);
    EXPECT_NEAR(model.EventProbability(t, x), 1.0 - s, 1e-12);
    previous = s;
  }
}

TEST(CoxModelTest, HigherRiskCovariateLowersSurvival) {
  Rng rng(45);
  const auto data = SimulateCoxData({1.0}, 0.05, 1500, 100.0, rng);
  const auto fit = CoxModel::Fit(data);
  ASSERT_TRUE(fit.ok());
  const CoxModel& model = fit.value();
  EXPECT_LT(model.Survival(20.0, {1.0}), model.Survival(20.0, {-1.0}));
}

TEST(CoxModelTest, BaselineHazardIsStepwiseNondecreasing) {
  Rng rng(46);
  const auto data = SimulateCoxData({0.3}, 0.1, 300, 50.0, rng);
  const auto fit = CoxModel::Fit(data);
  ASSERT_TRUE(fit.ok());
  const CoxModel& model = fit.value();
  double previous = 0.0;
  for (double t = 0.0; t <= 50.0; t += 2.5) {
    const double h = model.BaselineCumulativeHazard(t);
    EXPECT_GE(h, previous);
    previous = h;
  }
  EXPECT_GT(previous, 0.0);
}

TEST(CoxModelTest, HandlesHeavyCensoring) {
  Rng rng(47);
  // Censor early -> most observations censored.
  const auto data = SimulateCoxData({0.5}, 0.01, 1500, 20.0, rng);
  size_t events = 0;
  for (const auto& o : data) events += o.observed ? 1 : 0;
  ASSERT_LT(events, data.size() / 2);
  const auto fit = CoxModel::Fit(data);
  ASSERT_TRUE(fit.ok());
  EXPECT_GT(fit.value().coefficients()[0], 0.1);
}

TEST(CoxModelTest, TiedEventTimesSupported) {
  // Integer times force ties; Breslow handling must not crash or diverge.
  Rng rng(48);
  std::vector<CoxObservation> data;
  for (int i = 0; i < 400; ++i) {
    CoxObservation obs;
    obs.covariates = {rng.Gaussian()};
    const double raw = rng.Exponential(10.0 * std::exp(-0.5 * obs.covariates[0]));
    obs.time = std::max(1.0, std::floor(raw));  // Heavy ties at small ints.
    obs.observed = true;
    data.push_back(std::move(obs));
  }
  const auto fit = CoxModel::Fit(data);
  ASSERT_TRUE(fit.ok());
  EXPECT_GT(fit.value().coefficients()[0], 0.2);
}

TEST(CoxModelTest, InputValidation) {
  EXPECT_FALSE(CoxModel::Fit({}).ok());

  CoxObservation no_covariates;
  no_covariates.time = 1.0;
  no_covariates.observed = true;
  EXPECT_FALSE(CoxModel::Fit({no_covariates}).ok());

  CoxObservation bad_time;
  bad_time.covariates = {1.0};
  bad_time.time = 0.0;
  bad_time.observed = true;
  EXPECT_FALSE(CoxModel::Fit({bad_time}).ok());

  CoxObservation censored_only;
  censored_only.covariates = {1.0};
  censored_only.time = 5.0;
  censored_only.observed = false;
  EXPECT_EQ(CoxModel::Fit({censored_only}).status().code(),
            StatusCode::kFailedPrecondition);

  CoxObservation a, b;
  a.covariates = {1.0};
  a.time = 1.0;
  a.observed = true;
  b.covariates = {1.0, 2.0};
  b.time = 2.0;
  b.observed = true;
  EXPECT_FALSE(CoxModel::Fit({a, b}).ok());
}

TEST(CoxModelTest, LikelihoodImprovesOverNull) {
  Rng rng(49);
  const auto data = SimulateCoxData({1.2}, 0.05, 600, 100.0, rng);
  const auto fit = CoxModel::Fit(data);
  ASSERT_TRUE(fit.ok());
  // Evaluate the null model's likelihood by fitting with a huge ridge, which
  // pins beta ~ 0.
  CoxFitOptions null_options;
  null_options.ridge = 1e9;
  const auto null_fit = CoxModel::Fit(data, null_options);
  ASSERT_TRUE(null_fit.ok());
  EXPECT_GT(fit.value().final_log_likelihood(),
            null_fit.value().final_log_likelihood());
}

}  // namespace
}  // namespace eventhit::survival
