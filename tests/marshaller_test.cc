#include "core/marshaller.h"

#include <gtest/gtest.h>

#include "obs/metrics.h"
#include "obs/schema.h"

namespace eventhit::core {
namespace {

constexpr int kWindow = 4;
constexpr int kHorizon = 10;
constexpr size_t kFeatureDim = 2;

// A scripted strategy that records the covariates it is shown and returns a
// fixed decision.
class ScriptedStrategy : public MarshalStrategy {
 public:
  std::string name() const override { return "scripted"; }

  MarshalDecision Decide(const data::Record& record) const override {
    last_record = record;
    ++calls;
    MarshalDecision decision;
    decision.exists = {next_exists};
    decision.intervals = {next_exists ? next_interval
                                      : sim::Interval::Empty()};
    return decision;
  }

  mutable data::Record last_record;
  mutable int calls = 0;
  bool next_exists = true;
  sim::Interval next_interval{2, 5};
};

std::vector<float> FrameOf(float value) {
  return {value, value + 100.0f};
}

TEST(MarshallerTest, FiresAtWindowFillThenEveryHorizon) {
  ScriptedStrategy strategy;
  Marshaller marshaller(&strategy, kWindow, kHorizon, kFeatureDim, 1);
  std::vector<int64_t> fired_at;
  for (int64_t f = 0; f < 40; ++f) {
    if (marshaller.PushFrame(FrameOf(static_cast<float>(f)).data())) {
      fired_at.push_back(f);
    }
  }
  // First at M-1 = 3, then every H = 10 frames: 3, 13, 23, 33.
  EXPECT_EQ(fired_at, (std::vector<int64_t>{3, 13, 23, 33}));
  EXPECT_EQ(strategy.calls, 4);
  EXPECT_EQ(marshaller.stats().frames_seen, 40);
  EXPECT_EQ(marshaller.stats().horizons_predicted, 4);
}

TEST(MarshallerTest, WindowContentsInLogicalOrder) {
  ScriptedStrategy strategy;
  Marshaller marshaller(&strategy, kWindow, kHorizon, kFeatureDim, 1);
  for (int64_t f = 0; f <= 13; ++f) {
    marshaller.PushFrame(FrameOf(static_cast<float>(f)).data());
  }
  // The prediction at frame 13 must see frames 10..13, oldest first.
  const auto& covariates = strategy.last_record.covariates;
  ASSERT_EQ(covariates.size(), kWindow * kFeatureDim);
  for (int m = 0; m < kWindow; ++m) {
    EXPECT_FLOAT_EQ(covariates[m * kFeatureDim], static_cast<float>(10 + m));
    EXPECT_FLOAT_EQ(covariates[m * kFeatureDim + 1],
                    static_cast<float>(110 + m));
  }
  EXPECT_EQ(strategy.last_record.frame, 13);
}

TEST(MarshallerTest, RelayOrdersUseAbsoluteFrames) {
  ScriptedStrategy strategy;
  strategy.next_interval = sim::Interval{2, 5};
  Marshaller marshaller(&strategy, kWindow, kHorizon, kFeatureDim, 1);
  std::vector<RelayOrder> orders;
  marshaller.set_relay_callback(
      [&](const RelayOrder& order) { orders.push_back(order); });
  for (int64_t f = 0; f <= 3; ++f) {
    marshaller.PushFrame(FrameOf(0.0f).data());
  }
  ASSERT_EQ(orders.size(), 1u);
  EXPECT_EQ(orders[0].event, 0u);
  // Prediction at frame 3, offsets [2,5] -> absolute [5, 8].
  EXPECT_EQ(orders[0].frames, (sim::Interval{5, 8}));
  EXPECT_EQ(marshaller.stats().frames_relayed, 4);
  EXPECT_EQ(marshaller.stats().relay_orders, 1);
}

TEST(MarshallerTest, AbsentPredictionsRelayNothing) {
  ScriptedStrategy strategy;
  strategy.next_exists = false;
  Marshaller marshaller(&strategy, kWindow, kHorizon, kFeatureDim, 1);
  int callbacks = 0;
  marshaller.set_relay_callback([&](const RelayOrder&) { ++callbacks; });
  for (int64_t f = 0; f < 25; ++f) {
    marshaller.PushFrame(FrameOf(0.0f).data());
  }
  EXPECT_EQ(callbacks, 0);
  EXPECT_EQ(marshaller.stats().frames_relayed, 0);
  EXPECT_GT(marshaller.stats().horizons_predicted, 0);
}

// Two-event strategy with overlapping intervals: billed frames must count
// the union once.
class TwoEventStrategy : public MarshalStrategy {
 public:
  std::string name() const override { return "two"; }
  MarshalDecision Decide(const data::Record&) const override {
    MarshalDecision decision;
    decision.exists = {true, true};
    decision.intervals = {sim::Interval{1, 6}, sim::Interval{4, 9}};
    return decision;
  }
};

TEST(MarshallerTest, UnionBillingAcrossEvents) {
  TwoEventStrategy strategy;
  Marshaller marshaller(&strategy, kWindow, kHorizon, kFeatureDim, 2);
  for (int64_t f = 0; f <= 3; ++f) {
    marshaller.PushFrame(FrameOf(0.0f).data());
  }
  // [1,6] U [4,9] = 9 frames, not 12.
  EXPECT_EQ(marshaller.stats().frames_relayed, 9);
  EXPECT_EQ(marshaller.stats().relay_orders, 2);
}

// A strategy that predicts "present" but hands back an empty interval —
// the zero-relay edge: nothing may be ordered from the cloud, and the
// whole horizon must land in the filtered bucket.
class PresentButEmptyStrategy : public MarshalStrategy {
 public:
  std::string name() const override { return "present_empty"; }
  MarshalDecision Decide(const data::Record&) const override {
    MarshalDecision decision;
    decision.exists = {true};
    decision.intervals = {sim::Interval::Empty()};
    return decision;
  }
};

TEST(MarshallerTest, PresentPredictionWithEmptyIntervalRelaysNothing) {
  PresentButEmptyStrategy strategy;
  obs::MetricsRegistry metrics;
  Marshaller marshaller(&strategy, kWindow, kHorizon, kFeatureDim, 1,
                        &metrics);
  int callbacks = 0;
  marshaller.set_relay_callback([&](const RelayOrder&) { ++callbacks; });
  for (int64_t f = 0; f <= 3; ++f) {
    marshaller.PushFrame(FrameOf(0.0f).data());
  }
  // No order is issued (the cloud service rejects empty requests)...
  EXPECT_EQ(callbacks, 0);
  EXPECT_EQ(marshaller.stats().relay_orders, 0);
  EXPECT_EQ(marshaller.stats().frames_relayed, 0);
  // ...and the obs counters keep the accounting identity
  // relayed + filtered == total with the whole horizon filtered.
  const int64_t relayed =
      metrics.GetCounter(obs::names::kMarshallerFramesRelayed)->Value();
  const int64_t filtered =
      metrics.GetCounter(obs::names::kMarshallerFramesFiltered)->Value();
  const int64_t total =
      metrics.GetCounter(obs::names::kMarshallerFramesTotal)->Value();
  EXPECT_EQ(relayed, 0);
  EXPECT_EQ(filtered, kHorizon);
  EXPECT_EQ(total, relayed + filtered);
  // The event still counts as predicted-present.
  EXPECT_EQ(
      metrics.GetCounter(obs::names::kMarshallerEventsPredictedPresent)
          ->Value(),
      1);
}

TEST(MarshallerTest, DeferredCompletionMatchesInlinePushFrame) {
  // Drive two marshallers over the same frame schedule: one inline, one
  // through the two-phase PushFrameDeferred/CompletePrediction path the
  // fleet batcher uses. Every observable — fired frames, relay orders,
  // stats, metric counters, the record handed to the strategy — must be
  // byte-identical; deferring the decision may change nothing but timing.
  ScriptedStrategy inline_strategy;
  ScriptedStrategy deferred_strategy;
  obs::MetricsRegistry inline_metrics;
  obs::MetricsRegistry deferred_metrics;
  Marshaller inline_m(&inline_strategy, kWindow, kHorizon, kFeatureDim, 1,
                      &inline_metrics);
  Marshaller deferred_m(&deferred_strategy, kWindow, kHorizon, kFeatureDim,
                        1, &deferred_metrics);
  std::vector<RelayOrder> inline_orders, deferred_orders;
  inline_m.set_relay_callback(
      [&](const RelayOrder& order) { inline_orders.push_back(order); });
  deferred_m.set_relay_callback(
      [&](const RelayOrder& order) { deferred_orders.push_back(order); });

  std::vector<int64_t> inline_fired, deferred_fired;
  data::Record pending;
  for (int64_t f = 0; f < 40; ++f) {
    const auto frame = FrameOf(static_cast<float>(f));
    if (inline_m.PushFrame(frame.data())) inline_fired.push_back(f);
    if (deferred_m.PushFrameDeferred(frame.data(), &pending)) {
      deferred_fired.push_back(f);
      EXPECT_EQ(deferred_m.pending_predictions(), 1u);
      // The pending record carries the anchored window, like the record
      // the inline path hands its strategy.
      EXPECT_EQ(pending.frame, f);
      EXPECT_EQ(pending.covariates, inline_strategy.last_record.covariates);
      // Score out of band (the fleet runs this through PredictBatched).
      deferred_m.CompletePrediction(deferred_strategy.Decide(pending));
      EXPECT_EQ(deferred_m.pending_predictions(), 0u);
    }
  }
  EXPECT_EQ(inline_fired, deferred_fired);
  EXPECT_EQ(inline_orders.size(), deferred_orders.size());
  for (size_t i = 0; i < inline_orders.size(); ++i) {
    EXPECT_EQ(inline_orders[i].event, deferred_orders[i].event);
    EXPECT_EQ(inline_orders[i].frames, deferred_orders[i].frames);
  }
  EXPECT_EQ(inline_m.stats().frames_seen, deferred_m.stats().frames_seen);
  EXPECT_EQ(inline_m.stats().horizons_predicted,
            deferred_m.stats().horizons_predicted);
  EXPECT_EQ(inline_m.stats().frames_relayed,
            deferred_m.stats().frames_relayed);
  EXPECT_EQ(inline_m.stats().relay_orders, deferred_m.stats().relay_orders);
  for (const char* name :
       {obs::names::kMarshallerFramesTotal,
        obs::names::kMarshallerFramesRelayed,
        obs::names::kMarshallerFramesFiltered,
        obs::names::kMarshallerHorizonsPredicted}) {
    EXPECT_EQ(inline_metrics.GetCounter(name)->Value(),
              deferred_metrics.GetCounter(name)->Value())
        << name;
  }
}

TEST(MarshallerTest, DeferredCompletionsQueueInFifoOrder) {
  // A batcher may hold several prediction boundaries before flushing;
  // completions apply to anchors oldest-first.
  ScriptedStrategy strategy;
  Marshaller marshaller(&strategy, kWindow, kHorizon, kFeatureDim, 1);
  std::vector<RelayOrder> orders;
  marshaller.set_relay_callback(
      [&](const RelayOrder& order) { orders.push_back(order); });
  data::Record pending;
  std::vector<int64_t> anchors;
  for (int64_t f = 0; f < 25; ++f) {
    if (marshaller.PushFrameDeferred(FrameOf(0.0f).data(), &pending)) {
      anchors.push_back(pending.frame);
    }
  }
  ASSERT_EQ(anchors, (std::vector<int64_t>{3, 13, 23}));
  EXPECT_EQ(marshaller.pending_predictions(), 3u);
  MarshalDecision decision;
  decision.exists = {true};
  decision.intervals = {sim::Interval{2, 5}};
  for (size_t i = 0; i < anchors.size(); ++i) {
    marshaller.CompletePrediction(decision);
    ASSERT_EQ(orders.size(), i + 1);
    // Offsets [2,5] anchored at 3/13/23 -> absolute starts 5/15/25.
    EXPECT_EQ(orders[i].frames, (sim::Interval{anchors[i] + 2,
                                               anchors[i] + 5}));
  }
  EXPECT_EQ(marshaller.pending_predictions(), 0u);
}

TEST(MarshallerTest, NextPredictionFrameAdvances) {
  ScriptedStrategy strategy;
  Marshaller marshaller(&strategy, kWindow, kHorizon, kFeatureDim, 1);
  EXPECT_EQ(marshaller.next_prediction_frame(), 3);
  for (int64_t f = 0; f <= 3; ++f) {
    marshaller.PushFrame(FrameOf(0.0f).data());
  }
  EXPECT_EQ(marshaller.next_prediction_frame(), 13);
  for (int64_t f = 4; f <= 12; ++f) {
    marshaller.PushFrame(FrameOf(0.0f).data());
  }
  EXPECT_EQ(marshaller.next_prediction_frame(), 13);
}

TEST(MarshallerTest, InvalidConstructionDies) {
  ScriptedStrategy strategy;
  EXPECT_DEATH(Marshaller(nullptr, kWindow, kHorizon, kFeatureDim, 1),
               "CHECK failed");
  EXPECT_DEATH(Marshaller(&strategy, 0, kHorizon, kFeatureDim, 1),
               "CHECK failed");
  EXPECT_DEATH(Marshaller(&strategy, kWindow, 0, kFeatureDim, 1),
               "CHECK failed");
}

}  // namespace
}  // namespace eventhit::core
