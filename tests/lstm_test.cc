#include "nn/lstm.h"

#include <cmath>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "gradient_check.h"

namespace eventhit::nn {
namespace {

Vec RandomSequence(size_t steps, size_t dim, Rng& rng) {
  Vec seq(steps * dim);
  for (auto& v : seq) v = static_cast<float>(rng.Gaussian(0.0, 0.5));
  return seq;
}

TEST(LstmTest, ShapesAndDeterminism) {
  Rng rng(1);
  Lstm lstm("l", 3, 5, rng);
  EXPECT_EQ(lstm.input_dim(), 3u);
  EXPECT_EQ(lstm.hidden_dim(), 5u);
  Rng data_rng(2);
  const Vec seq = RandomSequence(4, 3, data_rng);
  const Vec h1 = lstm.Forward(seq.data(), 4);
  const Vec h2 = lstm.Forward(seq.data(), 4);
  ASSERT_EQ(h1.size(), 5u);
  EXPECT_EQ(h1, h2);
}

TEST(LstmTest, CachedAndUncachedForwardAgree) {
  Rng rng(3);
  Lstm lstm("l", 4, 6, rng);
  Rng data_rng(4);
  const Vec seq = RandomSequence(7, 4, data_rng);
  const Vec h_eval = lstm.Forward(seq.data(), 7);
  const Vec h_cached = lstm.ForwardCached(seq.data(), 7);
  ASSERT_EQ(h_eval.size(), h_cached.size());
  for (size_t i = 0; i < h_eval.size(); ++i) {
    EXPECT_NEAR(h_eval[i], h_cached[i], 1e-6);
  }
}

TEST(LstmTest, HiddenStateBounded) {
  // h = o * tanh(c) with o in (0,1): |h| < 1 always.
  Rng rng(5);
  Lstm lstm("l", 2, 8, rng);
  Rng data_rng(6);
  const Vec seq = RandomSequence(50, 2, data_rng);
  const Vec h = lstm.Forward(seq.data(), 50);
  for (float v : h) EXPECT_LT(std::fabs(v), 1.0f);
}

TEST(LstmTest, ForgetBiasInitialisedToOne) {
  Rng rng(7);
  Lstm lstm("l", 2, 4, rng);
  for (size_t j = 0; j < 4; ++j) {
    EXPECT_FLOAT_EQ(lstm.bias().value.At(4 + j, 0), 1.0f);  // Forget block.
    EXPECT_FLOAT_EQ(lstm.bias().value.At(j, 0), 0.0f);      // Input block.
  }
}

TEST(LstmTest, ParameterGradientsMatchFiniteDifferences) {
  Rng rng(8);
  Lstm lstm("l", 3, 4, rng);
  Rng data_rng(9);
  const Vec seq = RandomSequence(5, 3, data_rng);
  // Scalar loss: weighted sum of final hidden state.
  Vec loss_weights(4);
  for (auto& w : loss_weights) w = static_cast<float>(data_rng.Gaussian());

  auto loss_fn = [&]() {
    const Vec h = lstm.Forward(seq.data(), 5);
    double loss = 0.0;
    for (size_t i = 0; i < h.size(); ++i) {
      loss += static_cast<double>(loss_weights[i]) * h[i];
    }
    return loss;
  };

  ParameterRefs params;
  lstm.CollectParameters(params);
  ZeroGradients(params);
  lstm.ForwardCached(seq.data(), 5);
  lstm.Backward(loss_weights.data());
  ExpectParameterGradientsMatch(params, loss_fn);
}

TEST(LstmTest, InputGradientsMatchFiniteDifferences) {
  Rng rng(10);
  Lstm lstm("l", 2, 3, rng);
  Rng data_rng(11);
  Vec seq = RandomSequence(4, 2, data_rng);
  Vec loss_weights(3);
  for (auto& w : loss_weights) w = static_cast<float>(data_rng.Gaussian());

  auto loss_fn = [&]() {
    const Vec h = lstm.Forward(seq.data(), 4);
    double loss = 0.0;
    for (size_t i = 0; i < h.size(); ++i) {
      loss += static_cast<double>(loss_weights[i]) * h[i];
    }
    return loss;
  };

  ParameterRefs params;
  lstm.CollectParameters(params);
  ZeroGradients(params);
  lstm.ForwardCached(seq.data(), 4);
  Vec dinputs(seq.size(), 0.0f);
  lstm.Backward(loss_weights.data(), dinputs.data());

  const double eps = 1e-3;
  for (size_t i = 0; i < seq.size(); ++i) {
    const float saved = seq[i];
    seq[i] = saved + static_cast<float>(eps);
    const double up = loss_fn();
    seq[i] = saved - static_cast<float>(eps);
    const double down = loss_fn();
    seq[i] = saved;
    EXPECT_NEAR(dinputs[i], (up - down) / (2 * eps), 2e-2) << "input " << i;
  }
}

TEST(LstmTest, LongerSequencePropagatesEarlySignal) {
  // The final hidden state must depend on the first input (non-zero input
  // gradient at t=0), i.e. BPTT spans the window.
  Rng rng(12);
  Lstm lstm("l", 2, 6, rng);
  Rng data_rng(13);
  const Vec seq = RandomSequence(20, 2, data_rng);
  lstm.ForwardCached(seq.data(), 20);
  Vec dh(6, 1.0f);
  Vec dinputs(seq.size(), 0.0f);
  lstm.Backward(dh.data(), dinputs.data());
  double first_step_norm = 0.0;
  for (size_t c = 0; c < 2; ++c) {
    first_step_norm += std::fabs(static_cast<double>(dinputs[c]));
  }
  EXPECT_GT(first_step_norm, 1e-6);
}

}  // namespace
}  // namespace eventhit::nn
