#include "nn/lstm.h"

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "gradient_check.h"
#include "nn/workspace.h"

namespace eventhit::nn {
namespace {

Vec RandomSequence(size_t steps, size_t dim, Rng& rng) {
  Vec seq(steps * dim);
  for (auto& v : seq) v = static_cast<float>(rng.Gaussian(0.0, 0.5));
  return seq;
}

TEST(LstmTest, ShapesAndDeterminism) {
  Rng rng(1);
  Lstm lstm("l", 3, 5, rng);
  EXPECT_EQ(lstm.input_dim(), 3u);
  EXPECT_EQ(lstm.hidden_dim(), 5u);
  Rng data_rng(2);
  const Vec seq = RandomSequence(4, 3, data_rng);
  const Vec h1 = lstm.Forward(seq.data(), 4);
  const Vec h2 = lstm.Forward(seq.data(), 4);
  ASSERT_EQ(h1.size(), 5u);
  EXPECT_EQ(h1, h2);
}

TEST(LstmTest, CachedAndUncachedForwardAgree) {
  Rng rng(3);
  Lstm lstm("l", 4, 6, rng);
  Rng data_rng(4);
  const Vec seq = RandomSequence(7, 4, data_rng);
  const Vec h_eval = lstm.Forward(seq.data(), 7);
  const Vec h_cached = lstm.ForwardCached(seq.data(), 7);
  ASSERT_EQ(h_eval.size(), h_cached.size());
  for (size_t i = 0; i < h_eval.size(); ++i) {
    EXPECT_NEAR(h_eval[i], h_cached[i], 1e-6);
  }
}

TEST(LstmTest, HiddenStateBounded) {
  // h = o * tanh(c) with o in (0,1): |h| < 1 always.
  Rng rng(5);
  Lstm lstm("l", 2, 8, rng);
  Rng data_rng(6);
  const Vec seq = RandomSequence(50, 2, data_rng);
  const Vec h = lstm.Forward(seq.data(), 50);
  for (float v : h) EXPECT_LT(std::fabs(v), 1.0f);
}

TEST(LstmTest, ForgetBiasInitialisedToOne) {
  Rng rng(7);
  Lstm lstm("l", 2, 4, rng);
  for (size_t j = 0; j < 4; ++j) {
    EXPECT_FLOAT_EQ(lstm.bias().value.At(4 + j, 0), 1.0f);  // Forget block.
    EXPECT_FLOAT_EQ(lstm.bias().value.At(j, 0), 0.0f);      // Input block.
  }
}

TEST(LstmTest, ParameterGradientsMatchFiniteDifferences) {
  Rng rng(8);
  Lstm lstm("l", 3, 4, rng);
  Rng data_rng(9);
  const Vec seq = RandomSequence(5, 3, data_rng);
  // Scalar loss: weighted sum of final hidden state.
  Vec loss_weights(4);
  for (auto& w : loss_weights) w = static_cast<float>(data_rng.Gaussian());

  auto loss_fn = [&]() {
    const Vec h = lstm.Forward(seq.data(), 5);
    double loss = 0.0;
    for (size_t i = 0; i < h.size(); ++i) {
      loss += static_cast<double>(loss_weights[i]) * h[i];
    }
    return loss;
  };

  ParameterRefs params;
  lstm.CollectParameters(params);
  ZeroGradients(params);
  lstm.ForwardCached(seq.data(), 5);
  lstm.Backward(loss_weights.data());
  ExpectParameterGradientsMatch(params, loss_fn);
}

TEST(LstmTest, InputGradientsMatchFiniteDifferences) {
  Rng rng(10);
  Lstm lstm("l", 2, 3, rng);
  Rng data_rng(11);
  Vec seq = RandomSequence(4, 2, data_rng);
  Vec loss_weights(3);
  for (auto& w : loss_weights) w = static_cast<float>(data_rng.Gaussian());

  auto loss_fn = [&]() {
    const Vec h = lstm.Forward(seq.data(), 4);
    double loss = 0.0;
    for (size_t i = 0; i < h.size(); ++i) {
      loss += static_cast<double>(loss_weights[i]) * h[i];
    }
    return loss;
  };

  ParameterRefs params;
  lstm.CollectParameters(params);
  ZeroGradients(params);
  lstm.ForwardCached(seq.data(), 4);
  Vec dinputs(seq.size(), 0.0f);
  lstm.Backward(loss_weights.data(), dinputs.data());

  const double eps = 1e-3;
  for (size_t i = 0; i < seq.size(); ++i) {
    const float saved = seq[i];
    seq[i] = saved + static_cast<float>(eps);
    const double up = loss_fn();
    seq[i] = saved - static_cast<float>(eps);
    const double down = loss_fn();
    seq[i] = saved;
    EXPECT_NEAR(dinputs[i], (up - down) / (2 * eps), 2e-2) << "input " << i;
  }
}

// Packs `batch` time-major sequences (each steps x dim) into the
// batch-minor layout ForwardBatch expects.
Vec PackBatchMinor(const std::vector<Vec>& seqs, size_t steps, size_t dim) {
  const size_t batch = seqs.size();
  Vec packed(steps * dim * batch);
  for (size_t b = 0; b < batch; ++b) {
    for (size_t t = 0; t < steps; ++t) {
      for (size_t j = 0; j < dim; ++j) {
        packed[(t * dim + j) * batch + b] = seqs[b][t * dim + j];
      }
    }
  }
  return packed;
}

TEST(LstmTest, ForwardBatchOfOneIsBitIdenticalToForward) {
  Rng rng(20);
  Lstm lstm("l", 3, 6, rng);
  Rng data_rng(21);
  const Vec seq = RandomSequence(5, 3, data_rng);
  const Vec h_scalar = lstm.Forward(seq.data(), 5);

  Workspace ws;
  Vec h_batch(6);
  lstm.ForwardBatch(seq.data(), 5, 1, h_batch.data(), ws);
  // Exact equality, not tolerance: batch=1 must replay the scalar path's
  // float operations in the same order (the gemm.h contract).
  EXPECT_EQ(h_scalar, h_batch);
}

TEST(LstmTest, ForwardBatchMatchesPerSequenceForward) {
  const size_t steps = 7, dim = 4, hidden = 5, batch = 9;
  Rng rng(22);
  Lstm lstm("l", dim, hidden, rng);
  Rng data_rng(23);
  std::vector<Vec> seqs;
  for (size_t b = 0; b < batch; ++b) {
    seqs.push_back(RandomSequence(steps, dim, data_rng));
  }
  const Vec packed = PackBatchMinor(seqs, steps, dim);

  Workspace ws;
  Vec h_batch(hidden * batch);
  lstm.ForwardBatch(packed.data(), steps, batch, h_batch.data(), ws);

  for (size_t b = 0; b < batch; ++b) {
    const Vec h = lstm.Forward(seqs[b].data(), steps);
    for (size_t j = 0; j < hidden; ++j) {
      EXPECT_EQ(h[j], h_batch[j * batch + b]) << "seq " << b << " dim " << j;
    }
  }
}

TEST(LstmTest, ForwardBatchSingleStep) {
  Rng rng(24);
  Lstm lstm("l", 2, 4, rng);
  Rng data_rng(25);
  std::vector<Vec> seqs = {RandomSequence(1, 2, data_rng),
                           RandomSequence(1, 2, data_rng),
                           RandomSequence(1, 2, data_rng)};
  const Vec packed = PackBatchMinor(seqs, 1, 2);
  Workspace ws;
  Vec h_batch(4 * 3);
  lstm.ForwardBatch(packed.data(), 1, 3, h_batch.data(), ws);
  for (size_t b = 0; b < 3; ++b) {
    const Vec h = lstm.Forward(seqs[b].data(), 1);
    for (size_t j = 0; j < 4; ++j) {
      EXPECT_EQ(h[j], h_batch[j * 3 + b]) << "seq " << b << " dim " << j;
    }
  }
}

TEST(LstmTest, ForwardBatchDeterministicWithWarmWorkspace) {
  // Re-running on a warm (Reset) Workspace must give identical results —
  // scratch reuse may not leak state between batches.
  const size_t steps = 4, dim = 3, hidden = 6, batch = 5;
  Rng rng(26);
  Lstm lstm("l", dim, hidden, rng);
  Rng data_rng(27);
  std::vector<Vec> seqs;
  for (size_t b = 0; b < batch; ++b) {
    seqs.push_back(RandomSequence(steps, dim, data_rng));
  }
  const Vec packed = PackBatchMinor(seqs, steps, dim);

  Workspace ws;
  Vec h1(hidden * batch), h2(hidden * batch);
  lstm.ForwardBatch(packed.data(), steps, batch, h1.data(), ws);
  ws.Reset();
  lstm.ForwardBatch(packed.data(), steps, batch, h2.data(), ws);
  EXPECT_EQ(h1, h2);
  const size_t capacity_after_two = ws.capacity();
  ws.Reset();
  lstm.ForwardBatch(packed.data(), steps, batch, h1.data(), ws);
  // Steady state: capacity has stopped growing (allocation-free reuse).
  EXPECT_EQ(ws.capacity(), capacity_after_two);
}

TEST(LstmTest, LongerSequencePropagatesEarlySignal) {
  // The final hidden state must depend on the first input (non-zero input
  // gradient at t=0), i.e. BPTT spans the window.
  Rng rng(12);
  Lstm lstm("l", 2, 6, rng);
  Rng data_rng(13);
  const Vec seq = RandomSequence(20, 2, data_rng);
  lstm.ForwardCached(seq.data(), 20);
  Vec dh(6, 1.0f);
  Vec dinputs(seq.size(), 0.0f);
  lstm.Backward(dh.data(), dinputs.data());
  double first_step_norm = 0.0;
  for (size_t c = 0; c < 2; ++c) {
    first_step_norm += std::fabs(static_cast<double>(dinputs[c]));
  }
  EXPECT_GT(first_step_norm, 1e-6);
}

}  // namespace
}  // namespace eventhit::nn
