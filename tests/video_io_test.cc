#include "sim/video_io.h"

#include <cstdio>
#include <string>

#include <gtest/gtest.h>

#include "sim/datasets.h"

namespace eventhit::sim {
namespace {

std::string TempPath(const char* name) {
  return std::string(::testing::TempDir()) + "/" + name;
}

SyntheticVideo SmallVideo(uint64_t seed = 61) {
  DatasetSpec spec = MakeDatasetSpec(DatasetId::kThumos);
  spec.num_frames = 20000;
  return SyntheticVideo::Generate(spec, seed);
}

TEST(VideoIoTest, RoundTripPreservesEverything) {
  const SyntheticVideo original = SmallVideo();
  const std::string path = TempPath("video_roundtrip.evvs");
  ASSERT_TRUE(SaveVideo(original, path).ok());
  auto loaded = LoadVideo(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  const SyntheticVideo& video = loaded.value();

  EXPECT_EQ(video.num_frames(), original.num_frames());
  EXPECT_EQ(video.feature_dim(), original.feature_dim());
  EXPECT_EQ(video.num_event_types(), original.num_event_types());
  EXPECT_EQ(video.shift_frame(), original.shift_frame());
  EXPECT_EQ(video.spec().name, original.spec().name);
  EXPECT_EQ(video.spec().collection_window,
            original.spec().collection_window);
  EXPECT_EQ(video.spec().horizon, original.spec().horizon);

  for (size_t k = 0; k < original.num_event_types(); ++k) {
    ASSERT_EQ(video.timeline().occurrences(k).size(),
              original.timeline().occurrences(k).size());
    for (size_t i = 0; i < original.timeline().occurrences(k).size(); ++i) {
      EXPECT_EQ(video.timeline().occurrences(k)[i],
                original.timeline().occurrences(k)[i]);
    }
  }
  for (int64_t t = 0; t < original.num_frames(); t += 997) {
    for (size_t c = 0; c < original.feature_dim(); ++c) {
      EXPECT_EQ(video.FrameFeatures(t)[c], original.FrameFeatures(t)[c]);
    }
    for (size_t k = 0; k < original.num_event_types(); ++k) {
      EXPECT_EQ(video.ObjectCount(k, t), original.ObjectCount(k, t));
    }
  }
  EXPECT_EQ(video.action_units().size(), original.action_units().size());
  std::remove(path.c_str());
}

TEST(VideoIoTest, MissingFileNotFound) {
  EXPECT_EQ(LoadVideo(TempPath("nope.evvs")).status().code(),
            StatusCode::kNotFound);
}

TEST(VideoIoTest, CorruptFileRejected) {
  const std::string path = TempPath("corrupt.evvs");
  std::FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  const char junk[] = "this is not a video stream";
  std::fwrite(junk, 1, sizeof(junk), f);
  std::fclose(f);
  EXPECT_EQ(LoadVideo(path).status().code(), StatusCode::kInvalidArgument);
  std::remove(path.c_str());
}

TEST(VideoIoTest, TruncatedFileRejected) {
  const SyntheticVideo original = SmallVideo(63);
  const std::string path = TempPath("truncated.evvs");
  ASSERT_TRUE(SaveVideo(original, path).ok());
  // Truncate to the first kilobyte.
  std::FILE* f = std::fopen(path.c_str(), "rb");
  ASSERT_NE(f, nullptr);
  char buffer[1024];
  const size_t read = std::fread(buffer, 1, sizeof(buffer), f);
  std::fclose(f);
  f = std::fopen(path.c_str(), "wb");
  std::fwrite(buffer, 1, read, f);
  std::fclose(f);
  EXPECT_FALSE(LoadVideo(path).ok());
  std::remove(path.c_str());
}

TEST(VideoIoTest, ShiftedStreamRoundTrips) {
  DatasetSpec before = MakeDatasetSpec(DatasetId::kThumos);
  before.num_frames = 8000;
  DatasetSpec after = before;
  after.num_frames = 6000;
  const SyntheticVideo original =
      SyntheticVideo::GenerateWithShift(before, after, 65);
  const std::string path = TempPath("shifted.evvs");
  ASSERT_TRUE(SaveVideo(original, path).ok());
  auto loaded = LoadVideo(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded.value().shift_frame(), 8000);
  EXPECT_EQ(loaded.value().num_frames(), 14000);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace eventhit::sim
