#include "conformal/split_conformal_regressor.h"

#include <cmath>

#include <gtest/gtest.h>

#include "common/rng.h"

namespace eventhit::conformal {
namespace {

TEST(SplitConformalRegressorTest, QuantileIsOrderStatistic) {
  SplitConformalRegressor regressor({4.0, 1.0, 3.0, 2.0, 5.0});
  // Ranks use the finite-sample correction ceil(alpha*(n+1)), clamped.
  EXPECT_DOUBLE_EQ(regressor.Quantile(0.2), 2.0);  // ceil(0.2*6)=2nd.
  EXPECT_DOUBLE_EQ(regressor.Quantile(0.5), 3.0);  // ceil(0.5*6)=3rd.
  EXPECT_DOUBLE_EQ(regressor.Quantile(0.9), 5.0);  // ceil(0.9*6)=6th -> 5th.
  EXPECT_DOUBLE_EQ(regressor.Quantile(1.0), 5.0);
  EXPECT_DOUBLE_EQ(regressor.Quantile(0.0), 1.0);  // Clamped to rank 1.
}

TEST(SplitConformalRegressorTest, EmptyCalibrationGivesZeroWidth) {
  SplitConformalRegressor regressor({});
  EXPECT_DOUBLE_EQ(regressor.Quantile(0.9), 0.0);
  const PredictionBand band = regressor.Band(10.0, 0.9);
  EXPECT_DOUBLE_EQ(band.lo, 10.0);
  EXPECT_DOUBLE_EQ(band.hi, 10.0);
}

TEST(SplitConformalRegressorTest, BandIsSymmetric) {
  SplitConformalRegressor regressor({1.0, 2.0, 3.0});
  // q = ceil(0.5 * 4) = 2nd smallest residual = 2.0.
  const PredictionBand band = regressor.Band(5.0, 0.5);
  EXPECT_DOUBLE_EQ(band.lo, 3.0);
  EXPECT_DOUBLE_EQ(band.hi, 7.0);
}

TEST(SplitConformalRegressorTest, QuantileMonotoneInAlpha) {
  Rng rng(1);
  std::vector<double> residuals;
  for (int i = 0; i < 200; ++i) residuals.push_back(std::fabs(rng.Gaussian()));
  SplitConformalRegressor regressor(residuals);
  double previous = -1.0;
  for (double alpha : {0.1, 0.3, 0.5, 0.7, 0.9, 0.99}) {
    const double q = regressor.Quantile(alpha);
    EXPECT_GE(q, previous);
    previous = q;
  }
}

TEST(SplitConformalRegressorTest, NegativeResidualsDie) {
  EXPECT_DEATH(SplitConformalRegressor({1.0, -0.5}), "CHECK failed");
}

// Empirical validity (Theorem 5.1): bands built from exchangeable residuals
// cover fresh responses with probability >= alpha.
class SplitConformalCoverageTest : public ::testing::TestWithParam<double> {};

TEST_P(SplitConformalCoverageTest, CoverageHolds) {
  const double alpha = GetParam();
  Rng rng(777);
  // Model: y = 2x + noise; mu_hat = 2x exactly, residuals are |noise|.
  auto noise = [&]() { return rng.Gaussian(0.0, 1.5); };
  std::vector<double> residuals;
  for (int i = 0; i < 400; ++i) residuals.push_back(std::fabs(noise()));
  SplitConformalRegressor regressor(residuals);

  int covered = 0;
  const int trials = 4000;
  for (int i = 0; i < trials; ++i) {
    const double x = rng.Uniform(-5.0, 5.0);
    const double y = 2.0 * x + noise();
    const PredictionBand band = regressor.Band(2.0 * x, alpha);
    if (y >= band.lo && y <= band.hi) ++covered;
  }
  const double coverage = static_cast<double>(covered) / trials;
  EXPECT_GE(coverage, alpha - 0.03) << "alpha=" << alpha;
  EXPECT_LE(coverage, alpha + 0.07) << "alpha=" << alpha;
}

INSTANTIATE_TEST_SUITE_P(Coverage, SplitConformalCoverageTest,
                         ::testing::Values(0.5, 0.7, 0.8, 0.9, 0.95));

}  // namespace
}  // namespace eventhit::conformal
