// Link checker for the repo documentation: every relative markdown link in
// README.md, DESIGN.md, ROADMAP.md and docs/*.md must point at a file or
// directory that exists, and every backticked repo path (`src/...`,
// `docs/...`, `tests/...`, `tools/...`, `bench/...`) must too. Renaming or
// deleting a file without updating the docs that reference it fails here.
// Wired into CI with the rest of the suite.

#include <filesystem>
#include <fstream>
#include <regex>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

namespace {

namespace fs = std::filesystem;

const fs::path& SourceRoot() {
  static const fs::path root(EVENTHIT_SOURCE_DIR);
  return root;
}

std::vector<fs::path> DocFiles() {
  std::vector<fs::path> docs;
  for (const char* name : {"README.md", "DESIGN.md", "ROADMAP.md"}) {
    const fs::path path = SourceRoot() / name;
    if (fs::exists(path)) docs.push_back(path);
  }
  for (const auto& entry : fs::directory_iterator(SourceRoot() / "docs")) {
    if (entry.path().extension() == ".md") docs.push_back(entry.path());
  }
  return docs;
}

std::string ReadFile(const fs::path& path) {
  std::ifstream in(path);
  EXPECT_TRUE(in.good()) << "cannot open " << path;
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

// Resolves a relative doc reference against the doc's own directory first
// (how markdown viewers resolve it), then against the repo root (how many
// of the prose paths are written).
bool Resolves(const fs::path& doc, const std::string& target) {
  return fs::exists(doc.parent_path() / target) ||
         fs::exists(SourceRoot() / target);
}

// Prose often names a module (`src/baselines/vqs_filter`) or a build
// target (`tools/bench_diff`) rather than one file; accept the bare path
// or any common extension of it.
bool ResolvesAsRepoPath(const fs::path& doc, const std::string& target) {
  if (Resolves(doc, target)) return true;
  for (const char* ext : {".h", ".cc", ".md"}) {
    if (Resolves(doc, target + ext)) return true;
  }
  return false;
}

TEST(DocLinkTest, MarkdownLinksResolve) {
  const std::regex link(R"(\[[^\]]*\]\(([^)\s]+)\))");
  for (const fs::path& doc : DocFiles()) {
    const std::string text = ReadFile(doc);
    for (auto it = std::sregex_iterator(text.begin(), text.end(), link);
         it != std::sregex_iterator(); ++it) {
      std::string target = (*it)[1].str();
      if (target.rfind("http://", 0) == 0 ||
          target.rfind("https://", 0) == 0 || target[0] == '#') {
        continue;  // external links and intra-doc anchors
      }
      const auto anchor = target.find('#');
      if (anchor != std::string::npos) target.resize(anchor);
      if (target.empty()) continue;
      EXPECT_TRUE(Resolves(doc, target))
          << doc.filename() << " links to missing target '" << target << "'";
    }
  }
}

TEST(DocLinkTest, BacktickedRepoPathsExist) {
  // `src/nn/backend.h`, `docs/BACKENDS.md`, `tools/eventhit_cli.cc`, ...
  // Only path-shaped tokens rooted at a repo directory are checked, so
  // prose backticks (flags, identifiers) pass through untouched.
  const std::regex repo_path(
      R"(`((?:src|docs|tests|tools|bench)/[A-Za-z0-9_\-./]+)`)");
  for (const fs::path& doc : DocFiles()) {
    const std::string text = ReadFile(doc);
    for (auto it = std::sregex_iterator(text.begin(), text.end(), repo_path);
         it != std::sregex_iterator(); ++it) {
      const std::string target = (*it)[1].str();
      EXPECT_TRUE(ResolvesAsRepoPath(doc, target))
          << doc.filename() << " references missing path `" << target << "`";
    }
  }
}

TEST(DocLinkTest, TentpoleDocsExist) {
  for (const char* name :
       {"docs/BACKENDS.md", "docs/ARCHITECTURE.md", "docs/BENCHMARKS.md",
        "docs/TELEMETRY.md"}) {
    EXPECT_TRUE(fs::exists(SourceRoot() / name)) << name;
  }
}

}  // namespace
